#pragma once
// Non-HPL workloads from Table 3: FIRESTARTER (a processor stress test
// engineered for maximal, constant power draw), MPrime/Prime95 (sustained
// FFT torture test, near-flat), and Rodinia CFD (an iterative GPU solver
// whose per-iteration structure gives a periodic power ripple).

#include "workload/workload.hpp"

namespace pv {

/// Constant-intensity stress test (FIRESTARTER): intensity `level`
/// throughout the core phase.  The flattest possible profile — the
/// reference against which HPL's time variability is judged.
class FirestarterWorkload final : public Workload {
 public:
  explicit FirestarterWorkload(Seconds core_duration, double level = 1.0,
                               Seconds setup = Seconds{30.0},
                               Seconds teardown = Seconds{10.0});

  [[nodiscard]] std::string name() const override { return "FIRESTARTER"; }
  [[nodiscard]] RunPhases phases() const override { return phases_; }
  [[nodiscard]] double intensity(double t) const override;
  [[nodiscard]] double core_mean_intensity() const override { return level_; }

 private:
  RunPhases phases_;
  double level_;
};

/// MPrime (Prime95) torture test: high sustained intensity with a slow
/// drift as the working set cycles through FFT sizes.
class MprimeWorkload final : public Workload {
 public:
  explicit MprimeWorkload(Seconds core_duration, double level = 0.93,
                          double drift_amp = 0.02,
                          Seconds setup = Seconds{60.0},
                          Seconds teardown = Seconds{10.0});

  [[nodiscard]] std::string name() const override { return "MPrime"; }
  [[nodiscard]] RunPhases phases() const override { return phases_; }
  [[nodiscard]] double intensity(double t) const override;

 private:
  RunPhases phases_;
  double level_;
  double drift_amp_;
};

/// Rodinia CFD: iterative unstructured-grid solver.  Each iteration is a
/// compute burst followed by a reduction/exchange dip, giving a sawtooth
/// ripple around a high mean.
class RodiniaCfdWorkload final : public Workload {
 public:
  RodiniaCfdWorkload(Seconds core_duration, double level = 0.88,
                     double ripple = 0.08, Seconds iteration = Seconds{2.0},
                     Seconds setup = Seconds{45.0},
                     Seconds teardown = Seconds{15.0});

  [[nodiscard]] std::string name() const override { return "Rodinia CFD"; }
  [[nodiscard]] RunPhases phases() const override { return phases_; }
  [[nodiscard]] double intensity(double t) const override;

 private:
  RunPhases phases_;
  double level_;
  double ripple_;
  double iteration_s_;
};

}  // namespace pv
