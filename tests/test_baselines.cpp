// Unit tests for the baseline sample-size rules (§2.1: Davis et al.'s
// Chernoff-Hoeffding approach, plus a Chebyshev rule).

#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sample_size.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"
#include "util/expects.hpp"
#include "util/mathx.hpp"

namespace pv {
namespace {

TEST(Hoeffding, MatchesClosedForm) {
  // range 100 W around mean 500 W, lambda 1%, alpha 5%:
  // n = 100^2 ln(40) / (2 * 25) = 200 ln 40 = 737.8 -> 738.
  const std::size_t n =
      hoeffding_required_sample_size(0.05, 0.01, 500.0, 100.0);
  EXPECT_EQ(n, static_cast<std::size_t>(
                   std::ceil(10000.0 * std::log(40.0) / 50.0 - 1e-12)));
}

TEST(Hoeffding, GrowsWithRangeSquared) {
  const std::size_t narrow =
      hoeffding_required_sample_size(0.05, 0.01, 500.0, 50.0);
  const std::size_t wide =
      hoeffding_required_sample_size(0.05, 0.01, 500.0, 100.0);
  EXPECT_NEAR(static_cast<double>(wide) / static_cast<double>(narrow), 4.0,
              0.05);
}

TEST(Chebyshev, MatchesClosedForm) {
  // cv 2%, lambda 1%, alpha 5%: n = 0.0004 / (0.05 * 0.0001) = 80.
  EXPECT_EQ(chebyshev_required_sample_size(0.05, 0.01, 0.02), 80u);
}

TEST(Baselines, OrderingNormalLtChebyshevLtHoeffding) {
  // The paper's point: for near-normal fleets the normal-theory rule is
  // far less conservative.  With a +/-3 sigma range (6 sigma width):
  const double cv = 0.02, mean = 500.0;
  const std::size_t n_normal = required_sample_size(0.05, 0.01, cv, 100000);
  const std::size_t n_cheb = chebyshev_required_sample_size(0.05, 0.01, cv);
  const std::size_t n_hoef =
      hoeffding_required_sample_size(0.05, 0.01, mean, 6.0 * cv * mean);
  EXPECT_LT(n_normal, n_cheb);
  EXPECT_LT(n_cheb, n_hoef);
  // Conservatism factors in the ranges the paper implies (several-fold).
  EXPECT_GT(conservatism_vs_normal(n_hoef, 0.05, 0.01, cv, 100000), 5.0);
}

TEST(Baselines, AllRulesActuallyCoverOnGaussianFleet) {
  // Every rule must deliver >= 95% empirical coverage; the baselines just
  // pay for it with much larger n.
  constexpr double cv = 0.02, lambda = 0.015, mean = 400.0;
  constexpr std::size_t kN = 20000;
  Rng fleet_rng(5);
  std::vector<double> fleet(kN);
  for (auto& x : fleet) x = fleet_rng.normal(mean, cv * mean);
  const double mu = mean_of(fleet);

  const auto coverage = [&](std::size_t n) {
    Rng rng(17);
    int hit = 0;
    constexpr int kTrials = 600;
    for (int t = 0; t < kTrials; ++t) {
      const auto idx = sample_without_replacement(rng, kN, n);
      const double est = mean_of(gather(fleet, idx));
      if (std::fabs(est - mu) <= lambda * mu) ++hit;
    }
    return hit / static_cast<double>(kTrials);
  };

  const std::size_t n_normal = required_sample_size(0.05, lambda, cv, kN);
  const std::size_t n_cheb = chebyshev_required_sample_size(0.05, lambda, cv);
  const std::size_t n_hoef =
      hoeffding_required_sample_size(0.05, lambda, mean, 6.0 * cv * mean);
  EXPECT_GE(coverage(n_normal), 0.90);
  EXPECT_GE(coverage(n_cheb), 0.97);   // conservative rules overshoot
  EXPECT_GE(coverage(std::min(n_hoef, kN / 2)), 0.99);
}

TEST(Baselines, DomainChecks) {
  EXPECT_THROW(hoeffding_required_sample_size(0.0, 0.01, 500.0, 100.0),
               contract_error);
  EXPECT_THROW(hoeffding_required_sample_size(0.05, 0.0, 500.0, 100.0),
               contract_error);
  EXPECT_THROW(hoeffding_required_sample_size(0.05, 0.01, 0.0, 100.0),
               contract_error);
  EXPECT_THROW(hoeffding_required_sample_size(0.05, 0.01, 500.0, 0.0),
               contract_error);
  EXPECT_THROW(chebyshev_required_sample_size(0.05, 0.01, 0.0),
               contract_error);
}

}  // namespace
}  // namespace pv
