#include "service/chaos.hpp"

namespace pv {

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// splitmix64 finalizer: turns the (seed, id-hash) combination into
/// well-mixed bits so nearby seeds/ids decorrelate.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_of(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* to_string(ServiceFault fault) {
  switch (fault) {
    case ServiceFault::kNone:
      return "none";
    case ServiceFault::kThrowStage:
      return "throw_stage";
    case ServiceFault::kStallStage:
      return "stall_stage";
    case ServiceFault::kCacheCorrupt:
      return "cache_corrupt";
    case ServiceFault::kWorkerDeath:
      return "worker_death";
  }
  return "unknown";
}

ServiceFault ServiceFaultPlan::decide(const std::string& id) const {
  const double u = unit_of(mix(seed ^ fnv1a(id)));
  double edge = throw_prob;
  if (u < edge) return ServiceFault::kThrowStage;
  edge += stall_prob;
  if (u < edge) return ServiceFault::kStallStage;
  edge += cache_corrupt_prob;
  if (u < edge) return ServiceFault::kCacheCorrupt;
  edge += worker_death_prob;
  if (u < edge) return ServiceFault::kWorkerDeath;
  return ServiceFault::kNone;
}

std::size_t ServiceFaultPlan::stage_of(const std::string& id) const {
  // A second independent draw (different stream constant) so the target
  // stage does not correlate with the fault decision.
  return static_cast<std::size_t>(
      mix(seed ^ fnv1a(id) ^ 0xa5a5a5a5a5a5a5a5ULL));
}

}  // namespace pv
