file(REMOVE_RECURSE
  "libpowervar_stats.a"
)
