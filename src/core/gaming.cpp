#include "core/gaming.hpp"

#include <algorithm>
#include <numeric>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"
#include "util/mathx.hpp"

namespace pv {

WindowGamingResult analyze_window_gaming(const PowerTrace& core_trace,
                                         const RunPhases& run) {
  WindowGamingResult result;
  result.full_core_avg = core_trace.mean_power(run.core_window());
  const TimeWindow bounds = run.middle_80();
  const Seconds width = run.level1_min_duration();
  result.best_window = min_average_window(core_trace, bounds, width);
  result.worst_window = max_average_window(core_trace, bounds, width);
  result.best_reduction =
      1.0 - result.best_window.mean / result.full_core_avg;
  result.spread = (result.worst_window.mean - result.best_window.mean) /
                  result.full_core_avg;
  return result;
}

Volts min_stable_voltage(const GpuModel& gpu, Hertz f) {
  PV_EXPECTS(f.value() > 0.0, "frequency must be positive");
  const double f_rel = f / gpu.spec().reference.frequency;
  PV_EXPECTS(f_rel <= 1.3, "frequency beyond the ASIC's validated range");
  const double scaled = gpu.default_voltage().value() * (0.55 + 0.45 * f_rel);
  return Volts{std::max(scaled, gpu.spec().min_voltage_v)};
}

DvfsSearchResult dvfs_search(const NodeInstance& node, Hertz f_lo, Hertz f_hi,
                             Hertz f_step) {
  PV_EXPECTS(!node.gpus().empty(), "DVFS search targets GPU nodes");
  PV_EXPECTS(f_lo.value() > 0.0 && f_hi.value() >= f_lo.value(),
             "invalid frequency range");
  PV_EXPECTS(f_step.value() > 0.0, "frequency step must be positive");

  DvfsSearchResult result;
  result.default_gflops_per_watt =
      node.hpl_gflops_per_watt(NodeSettings::defaults());

  for (double f = f_lo.value(); f <= f_hi.value() + 1e-6;
       f += f_step.value()) {
    // The node-wide voltage must be stable on every board.
    double v_need = 0.0;
    for (const auto& gpu : node.gpus()) {
      v_need = std::max(v_need,
                        min_stable_voltage(gpu, Hertz{f}).value());
    }
    NodeSettings s;
    s.gpu_mode = NodeSettings::GpuMode::kFixed;
    s.gpu_fixed_op = {Hertz{f}, Volts{v_need}};
    s.fan_policy = NodeSettings::defaults().fan_policy;
    const double eff = node.hpl_gflops_per_watt(s);
    if (eff > result.best_gflops_per_watt) {
      result.best_gflops_per_watt = eff;
      result.best_op = s.gpu_fixed_op;
    }
  }
  result.gain = result.best_gflops_per_watt / result.default_gflops_per_watt -
                1.0;
  return result;
}

namespace {

std::vector<std::size_t> lowest_vid_indices(
    std::span<const NodeInstance> fleet, std::size_t k) {
  PV_EXPECTS(k >= 1 && k <= fleet.size(), "invalid screening count");
  std::vector<std::size_t> idx(fleet.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return fleet[a].vid_bin() < fleet[b].vid_bin();
  });
  idx.resize(k);
  return idx;
}

VidScreeningResult screening_bias(std::span<const double> metric,
                                  std::span<const std::size_t> screened) {
  VidScreeningResult r;
  r.fleet_mean = mean_of(metric);
  double acc = 0.0;
  for (std::size_t i : screened) acc += metric[i];
  r.screened_mean = acc / static_cast<double>(screened.size());
  r.bias = (r.screened_mean - r.fleet_mean) / r.fleet_mean;
  return r;
}

}  // namespace

VidScreeningResult vid_screening_power_bias(std::span<const NodeInstance> fleet,
                                            const NodeSettings& settings,
                                            std::size_t k, double activity) {
  const auto powers = fleet_dc_powers(fleet, activity, settings);
  return screening_bias(powers, lowest_vid_indices(fleet, k));
}

VidScreeningResult vid_screening_efficiency_bias(
    std::span<const NodeInstance> fleet, const NodeSettings& settings,
    std::size_t k) {
  const auto effs = fleet_efficiencies(fleet, settings);
  return screening_bias(effs, lowest_vid_indices(fleet, k));
}

FanPolicyImpact fan_policy_impact(std::span<const NodeInstance> fleet,
                                  const NodeSettings& base_settings,
                                  double pinned_speed, double activity) {
  PV_EXPECTS(!fleet.empty(), "fleet must be non-empty");
  NodeSettings auto_settings = base_settings;
  auto_settings.fan_policy = FanPolicy::automatic();
  NodeSettings pinned_settings = base_settings;
  pinned_settings.fan_policy = FanPolicy::pinned(pinned_speed);

  FanPolicyImpact impact;
  RunningStats p_auto, p_pinned, f_auto, f_pinned;
  for (const auto& node : fleet) {
    p_auto.add(node.dc_power(activity, auto_settings).value());
    p_pinned.add(node.dc_power(activity, pinned_settings).value());
    f_auto.add(node.thermal_state(activity, auto_settings).fan_power_w.value());
    f_pinned.add(
        node.thermal_state(activity, pinned_settings).fan_power_w.value());
  }
  impact.cv_auto = p_auto.cv();
  impact.cv_pinned = p_pinned.cv();
  impact.mean_fan_power_auto_w = f_auto.mean();
  impact.mean_fan_power_pinned_w = f_pinned.mean();
  return impact;
}

}  // namespace pv
