#pragma once
// Seeded fault injection for the campaign service.
//
// The chaos harness needs faults that are (a) injected below the
// service's own abstractions — inside stages, inside the cache, inside
// worker threads — and (b) reproducible enough that a test can compute,
// from the plan alone, exactly which fault every request suffered and
// therefore exactly which typed response it must receive.  So the plan
// is a pure function: decide(id) hashes the request id, mixes it with
// the plan seed, and maps the result through the configured
// probabilities.  No global state, no arrival-order dependence — two
// service runs (or a test re-deriving expectations) agree byte for
// byte on who gets hurt.

#include <cstdint>
#include <stdexcept>
#include <string>

namespace pv {

/// The faults the plan can inject, one per request at most (the matrix
/// in docs/robustness.md maps each to its required response code).
enum class ServiceFault {
  kNone,
  kThrowStage,    ///< a pipeline stage throws mid-campaign
  kStallStage,    ///< a stage eats the whole deadline budget
  kCacheCorrupt,  ///< the request's cache entry is corrupted pre-read
  kWorkerDeath,   ///< the worker thread dies while running the request
};

[[nodiscard]] const char* to_string(ServiceFault fault);

/// Thrown by a chaos-wrapped stage for ServiceFault::kThrowStage; the
/// service maps it to the `stage_failed` response.
class InjectedStageError : public std::runtime_error {
 public:
  explicit InjectedStageError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Thrown by a chaos-wrapped stage for ServiceFault::kWorkerDeath.  The
/// service treats it as the worker thread dying mid-request: the
/// request gets the `worker_lost` response and the service accounts a
/// worker replacement.  (The pool's catch-all already guarantees the
/// thread itself survives any stage exception; modeling death as a
/// typed throw keeps the soak test in one process.)
class WorkerDeathError : public std::runtime_error {
 public:
  explicit WorkerDeathError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Seeded, per-request fault schedule.  Probabilities are cumulative in
/// declaration order (throw, stall, corrupt, death); their sum must be
/// <= 1.  drain_after additionally trips a service-wide shutdown after
/// that many admissions (0 = never) — the shutdown-mid-request fault.
struct ServiceFaultPlan {
  std::uint64_t seed = 0;
  double throw_prob = 0.0;
  double stall_prob = 0.0;
  double cache_corrupt_prob = 0.0;
  double worker_death_prob = 0.0;
  std::size_t drain_after = 0;

  [[nodiscard]] bool any() const {
    return throw_prob > 0.0 || stall_prob > 0.0 || cache_corrupt_prob > 0.0 ||
           worker_death_prob > 0.0 || drain_after > 0;
  }

  /// The fault this request suffers — a pure function of (seed, id).
  [[nodiscard]] ServiceFault decide(const std::string& id) const;

  /// Which stage (by index, modulo the stage count) a kThrowStage or
  /// kStallStage fault targets — also pure in (seed, id), so faults
  /// land on different pipeline stages across requests.
  [[nodiscard]] std::size_t stage_of(const std::string& id) const;
};

}  // namespace pv
