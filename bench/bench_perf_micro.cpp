// Library micro-benchmarks (google-benchmark): the hot paths behind the
// reproduction — RNG, quantiles, trace window statistics, fleet
// generation, sliding-window sweeps and the coverage inner loop.

#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/coverage.hpp"
#include "core/sample_size.hpp"
#include "sim/catalog.hpp"
#include "sim/fleet.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"
#include "stats/special.hpp"
#include "trace/window_select.hpp"
#include "workload/hpl.hpp"

namespace {

/// Every micro-benchmark reports the process peak-RSS high-watermark as
/// a counter (ru_maxrss is monotone, so the number is the peak up to and
/// including this benchmark's run) — the bench-hygiene counterpart of
/// the per-scenario peak_rss_mb in the end-to-end perf JSONs.
void report_peak_rss(benchmark::State& state) {
  state.counters["peak_rss_mb"] =
      benchmark::Counter(pv::bench::peak_rss_mb());
}

void BM_RngNext(benchmark::State& state) {
  pv::Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
  report_peak_rss(state);
}
BENCHMARK(BM_RngNext);

void BM_RngNormal(benchmark::State& state) {
  pv::Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.normal());
  report_peak_rss(state);
}
BENCHMARK(BM_RngNormal);

void BM_NormQuantile(benchmark::State& state) {
  double p = 0.0001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv::norm_quantile(p));
    p += 1e-6;
    if (p >= 1.0) p = 0.0001;
  }
  report_peak_rss(state);
}
BENCHMARK(BM_NormQuantile);

void BM_TQuantile(benchmark::State& state) {
  const double nu = static_cast<double>(state.range(0));
  double p = 0.7;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv::t_quantile(p, nu));
    p += 1e-5;
    if (p >= 0.999) p = 0.7;
  }
  report_peak_rss(state);
}
BENCHMARK(BM_TQuantile)->Arg(3)->Arg(15)->Arg(291);

void BM_TraceWindowMean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> w(n, 100.0);
  const pv::PowerTrace trace(pv::Seconds{0.0}, pv::Seconds{1.0}, std::move(w));
  const pv::TimeWindow win{pv::Seconds{static_cast<double>(n) * 0.1},
                           pv::Seconds{static_cast<double>(n) * 0.9}};
  for (auto _ : state) benchmark::DoNotOptimize(trace.mean_power(win));
  state.SetItemsProcessed(state.iterations());
  report_peak_rss(state);
}
BENCHMARK(BM_TraceWindowMean)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_WindowSweep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pv::Rng rng(3);
  std::vector<double> w(n);
  for (auto& v : w) v = 100.0 + rng.uniform(0.0, 20.0);
  const pv::PowerTrace trace(pv::Seconds{0.0}, pv::Seconds{1.0}, std::move(w));
  const pv::TimeWindow bounds{pv::Seconds{0.0},
                              pv::Seconds{static_cast<double>(n)}};
  const pv::Seconds width{static_cast<double>(n) / 5.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv::min_average_window(trace, bounds, width));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  report_peak_rss(state);
}
BENCHMARK(BM_WindowSweep)->Arg(1 << 12)->Arg(1 << 15);

void BM_FleetGeneration(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto var = pv::FleetVariability::typical_cpu();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv::generate_node_powers(n, 500.0, var, 1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  report_peak_rss(state);
}
BENCHMARK(BM_FleetGeneration)->Arg(480)->Arg(9216)->Arg(18688);

void BM_NodeInstanceBuild(benchmark::State& state) {
  const pv::NodeSpec spec = pv::catalog::lcsc_node_spec();
  std::uint64_t stream = 0;
  for (auto _ : state) {
    pv::Rng rng(7, stream++);
    pv::NodeInstance node(spec, rng);
    benchmark::DoNotOptimize(
        node.dc_power(1.0, pv::NodeSettings::defaults()));
  }
  report_peak_rss(state);
}
BENCHMARK(BM_NodeInstanceBuild);

void BM_HplIntensity(benchmark::State& state) {
  const pv::HplWorkload hpl(pv::HplParams::gpu_incore(), pv::hours(1.5));
  double t = 0.0;
  const double T = pv::hours(1.5).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpl.intensity(t));
    t += 0.37;
    if (t >= T) t = 0.0;
  }
  report_peak_rss(state);
}
BENCHMARK(BM_HplIntensity);

void BM_SampleWithoutReplacement(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  pv::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv::sample_without_replacement(rng, n, n / 64));
  }
  report_peak_rss(state);
}
BENCHMARK(BM_SampleWithoutReplacement)->Arg(9216)->Arg(18688);

void BM_CoverageStudyInnerLoop(benchmark::State& state) {
  pv::Rng pilot_rng(6);
  std::vector<double> pilot(516);
  for (auto& x : pilot) x = pilot_rng.normal(209.88, 5.31);
  pv::CoverageConfig cfg;
  cfg.full_system_nodes = 9216;
  cfg.sample_sizes = {5};
  cfg.confidence_levels = {0.95};
  cfg.simulations = 200;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv::coverage_study(pilot, cfg));
  }
  state.SetItemsProcessed(state.iterations() * 200);
  report_peak_rss(state);
}
BENCHMARK(BM_CoverageStudyInnerLoop);

void BM_RequiredSampleSize(benchmark::State& state) {
  double cv = 0.015;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pv::required_sample_size(0.05, 0.01, cv, 10000));
    cv += 1e-6;
    if (cv > 0.05) cv = 0.015;
  }
  report_peak_rss(state);
}
BENCHMARK(BM_RequiredSampleSize);

}  // namespace
