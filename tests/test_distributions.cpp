// Unit tests for the samplable distributions of the fleet generator.

#include "stats/distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

Summary sample_summary(const Distribution& d, std::size_t n,
                       std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = d.sample(rng);
  return summarize(xs);
}

TEST(NormalDist, MomentsMatch) {
  NormalDist d(100.0, 5.0);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0);
  EXPECT_DOUBLE_EQ(d.stddev(), 5.0);
  const Summary s = sample_summary(d, 100000);
  EXPECT_NEAR(s.mean, 100.0, 0.1);
  EXPECT_NEAR(s.stddev, 5.0, 0.1);
  EXPECT_THROW(NormalDist(0.0, -1.0), contract_error);
}

TEST(LogNormalDist, TargetsArithmeticMoments) {
  LogNormalDist d(386.86, 5.85);
  EXPECT_DOUBLE_EQ(d.mean(), 386.86);
  EXPECT_DOUBLE_EQ(d.stddev(), 5.85);
  const Summary s = sample_summary(d, 200000);
  EXPECT_NEAR(s.mean, 386.86, 0.2);
  EXPECT_NEAR(s.stddev, 5.85, 0.2);
  // All deviates positive by construction.
  EXPECT_GT(s.min, 0.0);
  EXPECT_THROW(LogNormalDist(-5.0, 1.0), contract_error);
}

TEST(LogNormalDist, LogParametersSatisfyMomentEquations) {
  LogNormalDist d(100.0, 30.0);
  const double mu = d.mu_log();
  const double sg = d.sigma_log();
  EXPECT_NEAR(std::exp(mu + 0.5 * sg * sg), 100.0, 1e-9);
  const double var = (std::exp(sg * sg) - 1.0) * std::exp(2.0 * mu + sg * sg);
  EXPECT_NEAR(std::sqrt(var), 30.0, 1e-9);
}

TEST(TruncatedDist, RespectsBounds) {
  auto inner = std::make_shared<NormalDist>(0.0, 1.0);
  TruncatedDist d(inner, -1.0, 1.0);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = d.sample(rng);
    ASSERT_GE(x, -1.0);
    ASSERT_LE(x, 1.0);
  }
  EXPECT_THROW(TruncatedDist(inner, 2.0, 1.0), contract_error);
  EXPECT_THROW(TruncatedDist(nullptr, 0.0, 1.0), contract_error);
}

TEST(TruncatedDist, NegligibleMassThrowsInsteadOfHanging) {
  auto inner = std::make_shared<NormalDist>(0.0, 1.0);
  TruncatedDist d(inner, 50.0, 51.0);  // ~0 mass
  Rng rng(4);
  EXPECT_THROW(d.sample(rng), contract_error);
}

TEST(MixtureDist, MomentsFollowLawOfTotalVariance) {
  MixtureDist d({{0.9, std::make_shared<NormalDist>(100.0, 2.0)},
                 {0.1, std::make_shared<NormalDist>(120.0, 2.0)}});
  // Mean: 0.9*100 + 0.1*120 = 102.
  EXPECT_NEAR(d.mean(), 102.0, 1e-12);
  // Var: E[s^2 + m^2] - mu^2 = 0.9(4+10000)+0.1(4+14400) - 102^2 = 40.
  EXPECT_NEAR(d.stddev(), std::sqrt(40.0), 1e-9);
  const Summary s = sample_summary(d, 200000);
  EXPECT_NEAR(s.mean, d.mean(), 0.1);
  EXPECT_NEAR(s.stddev, d.stddev(), 0.1);
}

TEST(MixtureDist, WeightsNeedNotBeNormalized) {
  MixtureDist d({{2.0, std::make_shared<NormalDist>(0.0, 1.0)},
                 {6.0, std::make_shared<NormalDist>(10.0, 1.0)}});
  EXPECT_NEAR(d.mean(), 7.5, 1e-12);  // weights 0.25 / 0.75
}

TEST(MixtureDist, InvalidComponentsRejected) {
  EXPECT_THROW(MixtureDist({}), contract_error);
  EXPECT_THROW(
      MixtureDist({{0.0, std::make_shared<NormalDist>(0.0, 1.0)}}),
      contract_error);
  EXPECT_THROW(MixtureDist({{1.0, nullptr}}), contract_error);
}

TEST(EmpiricalDist, ResamplesObservedValuesOnly) {
  EmpiricalDist d({1.0, 2.0, 3.0});
  Rng rng(5);
  std::set<double> seen;
  for (int i = 0; i < 3000; ++i) seen.insert(d.sample(rng));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(1.0) && seen.count(2.0) && seen.count(3.0));
  EXPECT_THROW(EmpiricalDist({}), contract_error);
}

TEST(EmpiricalDist, MomentsAreSampleMoments) {
  const std::vector<double> data{2.0, 4.0, 6.0, 8.0};
  EmpiricalDist d(data);
  const Summary s = summarize(data);
  EXPECT_DOUBLE_EQ(d.mean(), s.mean);
  EXPECT_DOUBLE_EQ(d.stddev(), s.stddev);
  EXPECT_EQ(d.data().size(), 4u);
}

}  // namespace
}  // namespace pv
