#include "workload/imbalance.hpp"

#include <cmath>

#include "stats/distributions.hpp"
#include "stats/rng.hpp"
#include "util/expects.hpp"

namespace pv {

std::vector<double> imbalanced_load_shares(std::size_t n,
                                           const ImbalanceParams& params,
                                           std::uint64_t seed) {
  PV_EXPECTS(n > 0, "need at least one node");
  PV_EXPECTS(params.share_cv >= 0.0, "share cv must be non-negative");
  PV_EXPECTS(params.hot_node_prob >= 0.0 && params.hot_node_prob < 1.0,
             "hot-node probability must be in [0,1)");
  PV_EXPECTS(params.hot_node_factor >= 1.0,
             "hot nodes carry at least the mean load");

  std::vector<double> shares(n, 1.0);
  if (params.share_cv == 0.0 && params.hot_node_prob == 0.0) return shares;

  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Rng rng(seed ^ 0x1357BD5CA1EULL, i);
    double s = 1.0;
    if (params.share_cv > 0.0) {
      const LogNormalDist body(1.0, params.share_cv);
      s = body.sample(rng);
    }
    if (params.hot_node_prob > 0.0 && rng.bernoulli(params.hot_node_prob)) {
      s *= params.hot_node_factor;
    }
    shares[i] = s;
    total += s;
  }
  // Renormalize to mean exactly 1 so total work is conserved.
  const double scale = static_cast<double>(n) / total;
  for (auto& s : shares) s *= scale;
  return shares;
}

void apply_load_shares(std::span<double> node_powers,
                       std::span<const double> shares,
                       double static_fraction) {
  PV_EXPECTS(node_powers.size() == shares.size(),
             "one share per node required");
  PV_EXPECTS(static_fraction >= 0.0 && static_fraction < 1.0,
             "static fraction in [0,1)");
  for (std::size_t i = 0; i < node_powers.size(); ++i) {
    PV_EXPECTS(shares[i] >= 0.0, "load shares must be non-negative");
    node_powers[i] *=
        static_fraction + (1.0 - static_fraction) * shares[i];
  }
}

}  // namespace pv
