# Empty dependencies file for powervar_workload.
# This may be replaced when dependencies are built.
