// Unit tests for the paper's statistical core (Equations 1-5, Table 5, the
// §4 worked examples, and the t-vs-z narrowing claim).

#include "core/sample_size.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

TEST(Equation1, TIntervalMatchesHandComputation) {
  // n=4, mean=100, sd=2: half = t_{3,0.975} * 2 / 2 = 3.18245.
  const Interval ci = t_confidence_interval(100.0, 2.0, 4, 0.05);
  EXPECT_NEAR(ci.lo, 100.0 - 3.18244631, 1e-6);
  EXPECT_NEAR(ci.hi, 100.0 + 3.18244631, 1e-6);
}

TEST(Equation2, ZIntervalMatchesHandComputation) {
  const Interval ci = z_confidence_interval(100.0, 2.0, 4, 0.05);
  EXPECT_NEAR(ci.hi - 100.0, 1.959963985, 1e-6);
}

TEST(Equation1, SampleOverloadAgreesWithSummaryStats) {
  const std::vector<double> xs{98.0, 101.0, 99.5, 102.5, 97.0};
  const Interval a = t_confidence_interval(xs, 0.05);
  // Hand-compute: mean 99.6, sd = sqrt(19.3/4).
  const double sd = std::sqrt((std::pow(98.0 - 99.6, 2) + std::pow(101.0 - 99.6, 2) +
                               std::pow(99.5 - 99.6, 2) + std::pow(102.5 - 99.6, 2) +
                               std::pow(97.0 - 99.6, 2)) /
                              4.0);
  const Interval b = t_confidence_interval(99.6, sd, 5, 0.05);
  EXPECT_NEAR(a.lo, b.lo, 1e-9);
  EXPECT_NEAR(a.hi, b.hi, 1e-9);
}

TEST(Equation4, InfinitePopulationFormula) {
  // (1.959964 / 0.01 * 0.02)^2 = 15.366.
  EXPECT_NEAR(required_sample_size_infinite(0.05, 0.01, 0.02), 15.3658, 1e-3);
  // Quadruples when lambda halves.
  EXPECT_NEAR(required_sample_size_infinite(0.05, 0.005, 0.02) /
                  required_sample_size_infinite(0.05, 0.01, 0.02),
              4.0, 1e-9);
}

TEST(Equation5, FinitePopulationCorrectionShrinksN) {
  const double n0 = required_sample_size_infinite(0.05, 0.005, 0.05);
  const std::size_t n = required_sample_size(0.05, 0.005, 0.05, 10000);
  EXPECT_LT(static_cast<double>(n), n0 + 1.0);
  // For tiny systems the requirement saturates near N.
  EXPECT_EQ(required_sample_size(0.05, 0.005, 0.05, 100), 80u);
}

TEST(Table5, ExactReproduction) {
  // The paper's Table 5 (N = 10000, alpha = 0.05):
  //             cv=0.02  cv=0.03  cv=0.05
  //   0.5%        62       137      370
  //   1.0%        16        35       96
  //   1.5%         7        16       43
  //   2.0%         4         9       24
  const auto table = sample_size_table(table5_lambdas(), table5_cvs(),
                                       kTable5Nodes, 0.05);
  const std::size_t expect[4][3] = {
      {62, 137, 370}, {16, 35, 96}, {7, 16, 43}, {4, 9, 24}};
  ASSERT_EQ(table.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(table[i].size(), 3u);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(table[i][j], expect[i][j]) << "row " << i << " col " << j;
    }
  }
}

TEST(Section4Intro, SmallSystemAccuracyExample) {
  // 210-node system, cv = 2%, old 1/64 rule -> 4 nodes -> ~3.2% at 95%.
  EXPECT_EQ(rule_1_64(210), 4u);
  const double lambda = achievable_accuracy(0.05, 0.02, 4, 210);
  EXPECT_NEAR(lambda, 0.032, 0.0005);
}

TEST(Section4Intro, LargeSystemAccuracyExample) {
  // 18688-node system, cv = 2% -> 292 nodes -> ~0.2%.
  EXPECT_EQ(rule_1_64(18688), 292u);
  const double lambda = achievable_accuracy(0.05, 0.02, 292, 18688);
  EXPECT_NEAR(lambda, 0.002, 0.0005);
}

TEST(AchievableAccuracy, OrderOfMagnitudeGapBetweenSystems) {
  // The same methodology is an order of magnitude less accurate on the
  // small system — the paper's §4 punchline.
  const double small = achievable_accuracy(0.05, 0.02, rule_1_64(210), 210);
  const double large =
      achievable_accuracy(0.05, 0.02, rule_1_64(18688), 18688);
  EXPECT_GT(small / large, 10.0);
}

TEST(AchievableAccuracy, FpcTightensTheBound) {
  const double no_fpc =
      achievable_accuracy(0.05, 0.02, 50, 100, /*use_t=*/true, /*fpc=*/false);
  const double fpc =
      achievable_accuracy(0.05, 0.02, 50, 100, /*use_t=*/true, /*fpc=*/true);
  EXPECT_LT(fpc, no_fpc);
  EXPECT_NEAR(fpc / no_fpc, std::sqrt(50.0 / 99.0), 1e-9);
}

TEST(Rules, Rule2015Floors) {
  EXPECT_EQ(rule_2015(100), 16u);     // 10% = 10 < 16
  EXPECT_EQ(rule_2015(160), 16u);
  EXPECT_EQ(rule_2015(210), 21u);     // 10% wins
  EXPECT_EQ(rule_2015(18688), 1869u);
  EXPECT_EQ(rule_2015(10), 10u);      // capped at N
}

TEST(Conclusion, ElevenNodesSufficeAtCv25AndLambda15) {
  // §6: cv ~ 0.025 and lambda = 1.5% -> at least 11 nodes "even for very
  // large systems".
  EXPECT_EQ(required_sample_size(0.05, 0.015, 0.025, 1000000), 11u);
}

TEST(TvsZ, NinePercentNarrowingAtN15) {
  // §4.2: for n = 15, approximating t by z gives 95% CIs ~9% too narrow.
  EXPECT_NEAR(z_vs_t_narrowing(15, 0.05), 0.0862, 0.002);
  // The narrowing vanishes as n grows (t_{n-1} -> z).
  EXPECT_LT(z_vs_t_narrowing(1000, 0.05), 0.002);
  EXPECT_LT(z_vs_t_narrowing(1000, 0.05), z_vs_t_narrowing(100, 0.05));
}

TEST(TwoStepPilot, RecommendsFromPilotStatistics) {
  // Pilot with cv exactly 2%: recommendation must match the direct formula.
  Rng rng(5);
  std::vector<double> pilot(200);
  for (auto& x : pilot) x = rng.normal(500.0, 10.0);
  const auto rec = two_step_pilot(pilot, 0.05, 0.01, 10000);
  EXPECT_NEAR(rec.pilot_mean, 500.0, 3.0);
  EXPECT_NEAR(rec.pilot_cv, 0.02, 0.004);
  EXPECT_EQ(rec.recommended_n,
            required_sample_size(0.05, 0.01, rec.pilot_cv, 10000));
}

TEST(TwoStepPilot, Guards) {
  EXPECT_THROW(two_step_pilot(std::vector<double>{1.0}, 0.05, 0.01, 100),
               contract_error);
  const std::vector<double> constant{5.0, 5.0, 5.0};
  EXPECT_THROW(two_step_pilot(constant, 0.05, 0.01, 100), contract_error);
}

TEST(SampleSize, MonotonicityProperties) {
  // Required n grows with cv, shrinks with lambda, grows with confidence.
  EXPECT_LE(required_sample_size(0.05, 0.01, 0.02, 10000),
            required_sample_size(0.05, 0.01, 0.03, 10000));
  EXPECT_GE(required_sample_size(0.05, 0.005, 0.02, 10000),
            required_sample_size(0.05, 0.01, 0.02, 10000));
  EXPECT_GE(required_sample_size(0.01, 0.01, 0.02, 10000),
            required_sample_size(0.05, 0.01, 0.02, 10000));
}

TEST(SampleSize, DomainChecks) {
  EXPECT_THROW(required_sample_size_infinite(0.0, 0.01, 0.02),
               contract_error);
  EXPECT_THROW(required_sample_size_infinite(0.05, 0.0, 0.02),
               contract_error);
  EXPECT_THROW(required_sample_size_infinite(0.05, 0.01, 0.0),
               contract_error);
  EXPECT_THROW(required_sample_size(0.05, 0.01, 0.02, 1), contract_error);
  EXPECT_THROW(achievable_accuracy(0.05, 0.02, 1, 100), contract_error);
  EXPECT_THROW(achievable_accuracy(0.05, 0.02, 101, 100), contract_error);
  EXPECT_THROW(t_confidence_interval(0.0, 1.0, 1, 0.05), contract_error);
  EXPECT_THROW(rule_1_64(0), contract_error);
}

}  // namespace
}  // namespace pv
