// Chaos soak for the campaign service (src/service/chaos.hpp).
//
// The ServiceFaultPlan decides each request's fate as a pure function of
// (plan seed, request id), so this test can recompute, for every request
// it submits, exactly which fault the service will inject — and then
// assert the full fault taxonomy: every injected fault maps to exactly
// one typed response code, unfaulted requests stay byte-identical to
// solo runs (zero cross-request contamination), and drain accounts for
// every accepted request.

#include "service/chaos.hpp"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "trace/wal.hpp"

namespace pv {
namespace {

std::string solo_assessment(const ServiceRequest& req) {
  const Scenario scenario = build_scenario(scenario_spec_of(req));
  const MeasurementPlan plan = plan_of(req, scenario);
  const CampaignConfig config = campaign_config_of(req, plan);
  const CampaignResult result =
      run_campaign(*scenario.cluster, *scenario.electrical, plan, config);
  return render_json(assessment_document(plan, result));
}

ServiceRequest soak_request(std::size_t i) {
  ServiceRequest req;
  req.id = "soak-" + std::to_string(i);
  req.nodes = 24 + 8 * (i % 3);  // three scenario specs share the cache
  req.seed = 100 + (i % 3);
  if (i % 4 == 1) req.faults = "mild";
  req.interval_s = 10.0;
  return req;
}

ResponseCode expected_code(ServiceFault fault) {
  switch (fault) {
    case ServiceFault::kNone:
      return ResponseCode::kOk;
    case ServiceFault::kThrowStage:
      return ResponseCode::kStageFailed;
    case ServiceFault::kStallStage:
      return ResponseCode::kDeadlineExceeded;
    case ServiceFault::kCacheCorrupt:
      return ResponseCode::kCacheCorrupt;  // strict mode refuses
    case ServiceFault::kWorkerDeath:
      return ResponseCode::kWorkerLost;
  }
  return ResponseCode::kStageFailed;
}

TEST(ServiceChaos, FaultPlanIsPureAndArrivalOrderIndependent) {
  ServiceFaultPlan plan;
  plan.seed = 42;
  plan.throw_prob = 0.2;
  plan.stall_prob = 0.2;
  plan.cache_corrupt_prob = 0.2;
  plan.worker_death_prob = 0.2;
  std::map<ServiceFault, int> histogram;
  for (int i = 0; i < 500; ++i) {
    const std::string id = "req-" + std::to_string(i);
    const ServiceFault first = plan.decide(id);
    EXPECT_EQ(first, plan.decide(id));  // pure: same id, same verdict
    ++histogram[first];
  }
  // With 20% per fault over 500 ids, every fault kind must appear, and
  // clean requests must survive too.
  EXPECT_EQ(histogram.size(), 5u);
  for (const auto& [fault, count] : histogram) {
    EXPECT_GE(count, 20) << to_string(fault);
  }
}

TEST(ServiceChaos, SoakEveryInjectedFaultMapsToExactlyOneTypedResponse) {
  constexpr std::size_t kRequests = 40;

  ServiceConfig config;
  config.workers = 4;
  config.max_queue = kRequests;
  config.strict_cache = true;  // corruption is refused, not repaired
  config.chaos.seed = 7;
  config.chaos.throw_prob = 0.15;
  config.chaos.stall_prob = 0.15;
  config.chaos.cache_corrupt_prob = 0.15;
  config.chaos.worker_death_prob = 0.15;
  CampaignService service(config);

  // Solo references for the requests the plan leaves untouched.
  std::map<std::string, std::string> solo;
  std::size_t deaths = 0;
  std::map<ServiceFault, int> injected;
  std::vector<ServiceRequest> requests;
  for (std::size_t i = 0; i < kRequests; ++i) {
    const ServiceRequest req = soak_request(i);
    const ServiceFault fault = config.chaos.decide(req.id);
    ++injected[fault];
    if (fault == ServiceFault::kNone && !solo.contains(req.id)) {
      solo[req.id] = solo_assessment(req);
    }
    if (fault == ServiceFault::kWorkerDeath) ++deaths;
    requests.push_back(req);
  }
  // The probabilities must actually exercise the whole matrix.
  ASSERT_EQ(injected.size(), 5u) << "soak seed no longer covers every fault";

  std::vector<std::size_t> tickets;
  for (const auto& req : requests) {
    const AdmissionVerdict verdict = service.submit(req);
    ASSERT_NE(verdict.decision, Admission::kShed) << req.id;
    tickets.push_back(verdict.ticket);
  }

  for (std::size_t i = 0; i < kRequests; ++i) {
    const ServiceFault fault = config.chaos.decide(requests[i].id);
    const ServiceResponse resp = service.wait(tickets[i]);
    ASSERT_EQ(resp.id, requests[i].id);
    // Exactly one typed response per injected fault — never a crash,
    // never a second code.
    EXPECT_EQ(resp.code, expected_code(fault))
        << requests[i].id << " fault " << to_string(fault) << ": "
        << resp.message;
    if (fault == ServiceFault::kNone) {
      // Zero cross-request contamination: byte-identical to solo even
      // while neighbors threw, stalled, corrupted and died.
      EXPECT_EQ(resp.assessment_json, solo.at(requests[i].id));
      EXPECT_TRUE(resp.fault_injected.empty());
    } else {
      EXPECT_EQ(resp.fault_injected, to_string(fault));
      EXPECT_TRUE(resp.assessment_json.empty());
    }
  }

  const DrainReport report = service.drain();
  EXPECT_EQ(report.admitted, kRequests);
  EXPECT_EQ(report.completed, kRequests);
  EXPECT_EQ(report.checkpointed, 0u);
  EXPECT_EQ(report.workers_replaced, deaths);
  EXPECT_GE(report.cache.quarantined, 1u);
}

TEST(ServiceChaos, NonStrictCacheCorruptionQuarantinesAndRebuilds) {
  ServiceConfig config;
  config.workers = 2;
  config.strict_cache = false;
  config.chaos.seed = 3;
  config.chaos.cache_corrupt_prob = 1.0;  // every request corrupts its entry
  CampaignService service(config);

  std::vector<std::size_t> tickets;
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest req;
    req.id = "rebuild-" + std::to_string(i);
    req.nodes = 24;
    req.interval_s = 10.0;
    requests.push_back(req);
    tickets.push_back(service.submit(req).ticket);
  }
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const ServiceResponse resp = service.wait(tickets[i]);
    // Quarantine-and-rebuild: the corruption is detected, the entry
    // evicted, and the request still gets a correct answer.
    ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
    EXPECT_EQ(resp.fault_injected, "cache_corrupt");
    EXPECT_EQ(resp.assessment_json, solo_assessment(requests[i]));
  }
  const DrainReport report = service.drain();
  EXPECT_GE(report.cache.quarantined, 1u);
}

TEST(ServiceChaos, DrainUnderLoadCheckpointsEveryUnstartedRequest) {
  const std::string wal_path =
      testing::TempDir() + "/powervar_service_drain.wal";

  ServiceConfig config;
  config.workers = 1;  // one running slot; the rest queue behind it
  config.max_queue = 16;
  config.checkpoint_path = wal_path;
  CampaignService service(config);

  std::vector<std::size_t> tickets;
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 8; ++i) {
    ServiceRequest req;
    req.id = "load-" + std::to_string(i);
    req.nodes = 24 + 8 * (i % 2);
    req.seed = 7 + i;
    req.interval_s = 10.0;
    requests.push_back(req);
    const AdmissionVerdict verdict = service.submit(req);
    ASSERT_NE(verdict.decision, Admission::kShed);
    tickets.push_back(verdict.ticket);
  }

  // Drain immediately — without waiting — so still-queued requests must
  // be checkpointed, not run and not lost.
  const DrainReport report = service.drain();
  EXPECT_EQ(report.admitted, 8u);
  EXPECT_EQ(report.completed + report.checkpointed, 8u);

  std::size_t completed = 0;
  std::size_t checkpointed = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const ServiceResponse resp = service.wait(tickets[i]);
    if (resp.code == ResponseCode::kOk) {
      ++completed;
    } else {
      ASSERT_EQ(resp.code, ResponseCode::kCheckpointed) << resp.message;
      ++checkpointed;
    }
  }
  EXPECT_EQ(completed, report.completed);
  EXPECT_EQ(checkpointed, report.checkpointed);

  // The journal holds exactly the checkpointed requests, replayable into
  // valid request objects under the service fingerprint.
  const WalReplay replay = replay_wal(wal_path);
  if (checkpointed == 0) {
    EXPECT_FALSE(replay.exists);
  } else {
    ASSERT_TRUE(replay.exists);
    EXPECT_EQ(replay.fingerprint, service_checkpoint_fingerprint());
    EXPECT_EQ(replay.torn_lines, 0u);
    ASSERT_EQ(replay.records.size(), checkpointed);
    for (const auto& record : replay.records) {
      const ServiceRequest restored = parse_request(record);
      EXPECT_EQ(record, render_request_json(restored));  // round-trips
    }
  }
}

TEST(ServiceChaos, ShutdownMidStreamShedsLateArrivals) {
  ServiceConfig config;
  config.workers = 2;
  config.chaos.drain_after = 3;
  CampaignService service(config);
  std::vector<AdmissionVerdict> verdicts;
  for (int i = 0; i < 6; ++i) {
    ServiceRequest req;
    req.id = "mid-" + std::to_string(i);
    req.nodes = 24;
    req.interval_s = 10.0;
    verdicts.push_back(service.submit(req));
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NE(verdicts[i].decision, Admission::kShed) << i;
  }
  for (int i = 3; i < 6; ++i) {
    EXPECT_EQ(verdicts[i].decision, Admission::kShed) << i;
    EXPECT_EQ(service.wait(verdicts[i].ticket).code, ResponseCode::kShed);
  }
  const DrainReport report = service.drain();
  EXPECT_EQ(report.admitted, 3u);
  EXPECT_EQ(report.shed, 3u);
  EXPECT_EQ(report.submitted, 6u);
}

}  // namespace
}  // namespace pv
