#include "collect/retry.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace pv {

double BackoffPolicy::delay_s(std::size_t retry, Rng& rng) const {
  PV_EXPECTS(initial_s >= 0.0 && multiplier >= 1.0 && max_s >= initial_s &&
                 jitter_frac >= 0.0 && jitter_frac < 1.0,
             "backoff policy parameters out of range");
  const double base =
      std::min(max_s, initial_s * std::pow(multiplier,
                                           static_cast<double>(retry)));
  if (jitter_frac == 0.0) return base;
  return base * (1.0 + jitter_frac * (2.0 * rng.uniform() - 1.0));
}

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config)
    : config_(config), next_cooldown_s_(config.cooldown_s) {
  PV_EXPECTS(config.open_after >= 1, "breaker must allow at least one failure");
  PV_EXPECTS(config.cooldown_s > 0.0 && config.cooldown_multiplier >= 1.0 &&
                 config.cooldown_max_s >= config.cooldown_s,
             "breaker cooldown parameters out of range");
}

bool CircuitBreaker::allow(double now_s) {
  if (!config_.enabled) return true;
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      if (now_s >= open_until_s_) {
        state_ = BreakerState::kHalfOpen;
        return true;
      }
      return false;
  }
  return true;
}

void CircuitBreaker::on_success() {
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  next_cooldown_s_ = config_.cooldown_s;  // a healthy meter earns a reset
}

void CircuitBreaker::on_failure(double now_s) {
  if (!config_.enabled) return;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: the meter is still gone.  Back off harder.
    trip(now_s);
    return;
  }
  if (state_ == BreakerState::kClosed) {
    if (++consecutive_failures_ >= config_.open_after) trip(now_s);
  }
}

void CircuitBreaker::trip(double now_s) {
  state_ = BreakerState::kOpen;
  open_until_s_ = now_s + next_cooldown_s_;
  next_cooldown_s_ = std::min(config_.cooldown_max_s,
                              next_cooldown_s_ * config_.cooldown_multiplier);
  consecutive_failures_ = 0;
  ++trips_;
}

}  // namespace pv
