// Unit tests for submissions, validation and ranking.

#include "core/submission.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace pv {
namespace {

Submission lcsc_submission() {
  Submission s;
  s.system_name = "L-CSC";
  s.site = "GSI";
  s.rmax = teraflops(316.7);
  s.power = kilowatts(57.15);
  s.provenance = PowerProvenance::kMeasured;
  s.level = Level::kL2;
  s.revision = Revision::kV1_2;
  s.total_nodes = 160;
  s.nodes_measured = 160;
  s.core_phase_duration = hours(1.5);
  s.window_duration = hours(1.5);
  s.reported_accuracy = 0.01;
  return s;
}

TEST(Submission, EfficiencyMetrics) {
  const Submission s = lcsc_submission();
  // 316.7 TF / 57.15 kW = 5541.5 MFLOPS/W.
  EXPECT_NEAR(s.mflops_per_watt(), 5541.6, 1.0);
  EXPECT_NEAR(s.gflops_per_watt(), 5.5416, 0.001);
}

TEST(Submission, ValidCompliantSubmission) {
  const auto issues = validate_submission(lcsc_submission(), Watts{1200.0});
  EXPECT_TRUE(issues.empty());
}

TEST(Submission, DerivedPowerIsFlaggedButAllowed) {
  Submission s = lcsc_submission();
  s.provenance = PowerProvenance::kDerived;
  const auto issues = validate_submission(s, Watts{1200.0});
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "provenance");
}

TEST(Submission, TooFewNodesFlagged) {
  Submission s = lcsc_submission();
  s.level = Level::kL2;
  s.nodes_measured = 10;  // 1/8 of 160 = 20 needed
  const auto issues = validate_submission(s, Watts{1200.0});
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "fraction");
}

TEST(Submission, ShortWindowFlaggedUnderNewRules) {
  Submission s = lcsc_submission();
  s.level = Level::kL1;
  s.revision = Revision::kV2015;
  s.nodes_measured = 16;
  s.window_duration = minutes(20.0);  // < full 1.5 h core phase
  bool timing = false;
  for (const auto& i : validate_submission(s, Watts{1200.0})) {
    if (i.rule == "timing") timing = true;
  }
  EXPECT_TRUE(timing);
}

TEST(Submission, MissingAccuracyAssessmentFlaggedUnder2015) {
  Submission s = lcsc_submission();
  s.revision = Revision::kV2015;
  s.reported_accuracy.reset();
  bool reporting = false;
  for (const auto& i : validate_submission(s, Watts{1200.0})) {
    if (i.rule == "reporting") reporting = true;
  }
  EXPECT_TRUE(reporting);
}

TEST(RankedList, OrdersByEfficiency) {
  RankedList list("Test500");
  Submission a = lcsc_submission();
  a.system_name = "A";
  a.power = kilowatts(100.0);
  Submission b = lcsc_submission();
  b.system_name = "B";
  b.power = kilowatts(50.0);  // same Rmax, half the power: more efficient
  list.add(a);
  list.add(b);
  const auto ranked = list.ranked_by_efficiency();
  EXPECT_EQ(ranked[0].system_name, "B");
  EXPECT_EQ(list.efficiency_rank("B"), 1u);
  EXPECT_EQ(list.efficiency_rank("A"), 2u);
  EXPECT_EQ(list.efficiency_rank("missing"), 0u);
}

TEST(RankedList, PerformanceOrderDiffersFromEfficiencyOrder) {
  RankedList list("Test500");
  Submission big = lcsc_submission();
  big.system_name = "big";
  big.rmax = petaflops(17.0);
  big.power = megawatts(8.0);  // 2125 MF/W
  Submission small = lcsc_submission();
  small.system_name = "small";  // ~5542 MF/W
  list.add(big);
  list.add(small);
  EXPECT_EQ(list.ranked_by_performance()[0].system_name, "big");
  EXPECT_EQ(list.ranked_by_efficiency()[0].system_name, "small");
}

TEST(RankedList, RenderContainsEntries) {
  RankedList list("MiniGreen500");
  list.add(lcsc_submission());
  const std::string out = list.render();
  EXPECT_NE(out.find("MiniGreen500"), std::string::npos);
  EXPECT_NE(out.find("L-CSC"), std::string::npos);
  EXPECT_NE(out.find("Level 2"), std::string::npos);
}

TEST(RankedList, RejectsDegenerateSubmissions) {
  RankedList list("x");
  Submission s = lcsc_submission();
  s.power = Watts{0.0};
  EXPECT_THROW(list.add(s), contract_error);
  Submission t = lcsc_submission();
  t.system_name.clear();
  EXPECT_THROW(list.add(t), contract_error);
}

TEST(RankedList, RankingVolatilityFromMeasurementSpread) {
  // §1: the #1 vs #3 efficiency gap can be smaller than the measurement
  // spread.  A 20% power understatement flips the order.
  RankedList list("x");
  Submission first = lcsc_submission();
  first.system_name = "first";
  first.power = kilowatts(57.15);
  Submission rival = lcsc_submission();
  rival.system_name = "rival";
  rival.power = kilowatts(57.15 * 1.15);  // honestly 15% less efficient
  list.add(first);
  list.add(rival);
  EXPECT_EQ(list.efficiency_rank("first"), 1u);

  RankedList gamed("x-gamed");
  rival.power = kilowatts(57.15 * 1.15 * 0.80);  // 20% window gaming
  gamed.add(first);
  gamed.add(rival);
  EXPECT_EQ(gamed.efficiency_rank("rival"), 1u);
}

}  // namespace
}  // namespace pv
