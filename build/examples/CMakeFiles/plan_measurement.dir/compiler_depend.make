# Empty compiler generated dependencies file for plan_measurement.
# This may be replaced when dependencies are built.
