# Empty compiler generated dependencies file for powervar_trace.
# This may be replaced when dependencies are built.
