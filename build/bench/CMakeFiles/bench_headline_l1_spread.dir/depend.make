# Empty dependencies file for bench_headline_l1_spread.
# This may be replaced when dependencies are built.
