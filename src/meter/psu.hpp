#pragma once
// Power conversion modeling (methodology aspect 4: "point of measurement").
//
// Measurements "upstream of power conversion" see AC input power; DC-side
// instrumentation sees less, by the PSU's load-dependent efficiency.
// Level 1 lets a site model the conversion with manufacturer-supplied
// data; Level 3 requires the loss to be measured simultaneously.  This
// module provides the efficiency-curve model and both correction paths so
// campaigns can quantify what that choice costs in accuracy.

#include <array>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace pv {

class PsuEfficiencyCurve;

/// Flattened, division-minimal form of a PSU efficiency curve bound to a
/// rated output.  The campaign hot path evaluates AC input for every node
/// at every sample; the curve form matters there.  `efficiency_at` on the
/// source curve costs two divisions per call (load fraction + lerp
/// parameter) plus the pair-vector walk; this form precomputes 1/rated
/// and per-segment slopes so one evaluation is one multiply, a short
/// segment scan, one fma and one divide.
///
/// The eager per-device path and the streaming kernels — compiled in
/// different translation units — must produce bit-identical AC samples;
/// both call this same inline evaluation, and the project builds with
/// -ffp-contract=off so its multiply-add rounds identically everywhere.
class CompiledPsuCurve {
 public:
  CompiledPsuCurve() = default;
  CompiledPsuCurve(const PsuEfficiencyCurve& curve, Watts rated_dc_output);

  /// Clean (error-free) AC input for a DC load, in watts.  Preserves the
  /// clamp-outside / lerp-between semantics of the source curve.
  [[nodiscard]] double ac_from_dc(double dc_w) const {
    if (dc_w == 0.0) return 0.0;
    const double lf = dc_w * inv_rated_;
    const std::size_t last = xs_.size() - 1;
    double eff;
    if (lf <= xs_[0]) {
      eff = ys_[0];
    } else if (lf >= xs_[last]) {
      eff = ys_[last];
    } else {
      std::size_t s = 0;
      while (s + 1 < last && lf > xs_[s + 1]) ++s;
      eff = ys_[s] + (lf - xs_[s]) * slopes_[s];
    }
    return dc_w / eff;
  }

  [[nodiscard]] bool empty() const { return xs_.empty(); }

  /// Batch form of ac_from_dc over a whole window of loads: the segment
  /// scan becomes one blend pass per curve segment (loop inversion), so
  /// every inner loop is elementwise and vectorizes.  Each lane performs
  /// exactly the operations of the scalar call with the same operands, so
  /// ac[k] is bit-identical to ac_from_dc(dc[k]).  `lf_tmp`/`eff_tmp` are
  /// caller-owned scratch reused across calls.
  void ac_from_dc_batch(std::span<const double> dc, std::span<double> ac,
                        std::vector<double>& lf_tmp,
                        std::vector<double>& eff_tmp) const;

 private:
  friend class FleetPsuBank;

  std::vector<double> xs_;      // load fractions, strictly increasing
  std::vector<double> ys_;      // efficiencies at xs_
  std::vector<double> slopes_;  // (ys_[i+1]-ys_[i]) / (xs_[i+1]-xs_[i])
  double inv_rated_ = 0.0;
};

/// Fleet-wide PSU evaluation: ac[i] = curves[i]->ac_from_dc(dc[i]) for one
/// DC value per node, bit-identical per lane to the scalar call.
///
/// Real clusters provision one PSU SKU across a fleet, so every node's
/// CompiledPsuCurve shares the same breakpoint table (xs/ys/slopes are
/// bitwise-equal) and differs only in 1/rated — the rated output scales
/// with the node's provisioned mean draw.  The bank detects that shared
/// shape at build time and flattens the fleet into one breakpoint table
/// plus a contiguous inv_rated[] vector, so the ac_from_dc_batch blend
/// passes run with the node index as the SIMD lane.  Mixed-SKU fleets
/// (or lanes with differing tables) fall back to the scalar evaluation
/// per lane, which produces the same bits by construction.
class FleetPsuBank {
 public:
  FleetPsuBank() = default;

  /// Build from one curve pointer per node.  Null entries mean a DC tap
  /// for that node: the bank passes the DC value through unchanged.
  static FleetPsuBank build(std::span<const CompiledPsuCurve* const> curves);

  [[nodiscard]] std::size_t size() const { return curves_.size(); }
  [[nodiscard]] bool empty() const { return curves_.empty(); }
  /// True when every non-null lane shares one breakpoint table and the
  /// fleet-major blend passes apply (the fast path).
  [[nodiscard]] bool shared() const { return shared_; }

  /// ac[k] = curve(lane_begin + k) ? curve->ac_from_dc(dc[k]) : dc[k] for
  /// k in [0, dc.size()): one DC load per lane of the contiguous lane
  /// range starting at `lane_begin`.  `lf_tmp`/`eff_tmp` are caller-owned
  /// scratch reused across calls (resized to dc.size()).
  void ac_from_dc_fleet(std::span<const double> dc, std::span<double> ac,
                        std::size_t lane_begin, std::vector<double>& lf_tmp,
                        std::vector<double>& eff_tmp) const;

 private:
  std::vector<const CompiledPsuCurve*> curves_;  // per-lane fallback handles
  std::vector<double> inv_rated_;  // per-lane 1/rated (0 for DC-tap lanes)
  std::vector<double> xs_;         // shared breakpoint table (shared_ only)
  std::vector<double> ys_;
  std::vector<double> slopes_;
  bool shared_ = false;
};

/// Load-dependent PSU efficiency curve: efficiency as a function of the
/// DC load expressed as a fraction of rated output.  Shaped like the
/// 80 PLUS certification curves: poor at very light load, peaking near
/// 50%, drooping slightly toward full load.
class PsuEfficiencyCurve {
 public:
  /// Control points: (load fraction, efficiency) pairs, strictly increasing
  /// load in [0, 1], efficiencies in (0, 1].  Linear interpolation between
  /// points; clamped outside.
  explicit PsuEfficiencyCurve(
      std::vector<std::pair<double, double>> points);

  /// 80 PLUS-like presets.
  static PsuEfficiencyCurve gold();
  static PsuEfficiencyCurve platinum();
  static PsuEfficiencyCurve titanium();

  [[nodiscard]] double efficiency_at(double load_fraction) const;

  [[nodiscard]] const std::vector<std::pair<double, double>>& points() const {
    return points_;
  }

 private:
  std::vector<std::pair<double, double>> points_;
};

/// A PSU instance with a rated DC output and an efficiency curve.
class PsuModel {
 public:
  PsuModel(Watts rated_dc_output, PsuEfficiencyCurve curve);

  [[nodiscard]] Watts rated_output() const { return rated_; }

  /// AC input power drawn to deliver the given DC load.
  [[nodiscard]] Watts ac_input(Watts dc_load) const;

  /// Inverse: DC output implied by a measured AC input (solved by
  /// bisection on the monotone ac_input mapping).
  [[nodiscard]] Watts dc_output(Watts ac_input_w) const;

  /// Conversion loss at the given DC load.
  [[nodiscard]] Watts loss(Watts dc_load) const;

  /// The flattened curve `ac_input` evaluates; streaming kernels call it
  /// directly on raw doubles to share the exact arithmetic.
  [[nodiscard]] const CompiledPsuCurve& compiled() const { return compiled_; }

 private:
  Watts rated_;
  PsuEfficiencyCurve curve_;
  CompiledPsuCurve compiled_;
};

/// Manufacturer-supplied conversion data as Level 1 allows: a single
/// nominal efficiency number applied regardless of load.  The gap between
/// this and the true curve is one of the Level 1 error sources.
struct NominalConversionModel {
  double nominal_efficiency = 0.94;

  [[nodiscard]] Watts ac_from_dc(Watts dc_load) const {
    return Watts{dc_load.value() / nominal_efficiency};
  }
  [[nodiscard]] Watts dc_from_ac(Watts ac) const {
    return Watts{ac.value() * nominal_efficiency};
  }
};

}  // namespace pv
