#pragma once
// Journal records of the collection pipeline: one line per fully polled
// meter, encoded for the trace/wal write-ahead log.
//
// A record carries everything the campaign aggregation needs about one
// meter — its reading *and* its poll statistics — so a resumed collection
// can rebuild the exact totals (polls, retries, breaker trips, busy time)
// of the uninterrupted run without re-polling finished meters.  Doubles
// are printed with max_digits10 and re-parsed bit-exactly; that is what
// makes a kill-and-resume report byte-identical to a clean run.

#include <cstddef>
#include <string>

#include "core/campaign.hpp"

namespace pv {

/// Everything one meter's poll loop produced.
struct MeterRecord {
  NodeReading reading;          ///< mean/energy (or lost) for aggregation
  bool abandoned = false;       ///< breaker still open when polling ended
  std::size_t samples_expected = 0;
  std::size_t samples_lost = 0;
  // --- poll statistics ---------------------------------------------------
  std::size_t polls = 0;        ///< exchanges issued
  std::size_t timeouts = 0;     ///< exchanges that timed out
  std::size_t retries = 0;      ///< attempts beyond a chunk's first
  std::size_t duplicates = 0;   ///< duplicate replies discarded
  std::size_t breaker_trips = 0;
  double busy_s = 0.0;          ///< virtual seconds spent polling this meter
};

/// Serializes a record into a single-line WAL payload.
[[nodiscard]] std::string encode_meter_record(const MeterRecord& record);

/// Parses a payload produced by encode_meter_record.  Throws
/// std::runtime_error on malformed input (a journal from a different
/// build or a corrupted-but-CRC-colliding line).
[[nodiscard]] MeterRecord decode_meter_record(const std::string& payload);

}  // namespace pv
