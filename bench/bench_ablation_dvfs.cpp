// Ablation (§5) — DVFS tuning on L-CSC: exhaustive frequency/voltage
// search per node.  Paper reference: 22% efficiency improvement through
// DVFS; optimum at 774 MHz / ~1.018 V.

#include <iostream>

#include "bench_common.hpp"
#include "core/gaming.hpp"
#include "sim/catalog.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

int main() {
  using namespace pv;
  bench::banner("Ablation: DVFS search (§5)",
                "per-node frequency/voltage optimization on L-CSC");

  const std::size_t n_nodes = bench::env_size("PV_DVFS_NODES", 24);
  const auto fleet =
      build_fleet(catalog::lcsc_node_spec(), n_nodes, /*seed=*/7);

  TextTable t({"node", "VID bin", "default GF/W", "best GF/W", "best f (MHz)",
               "best V", "gain"});
  RunningStats gains, best_f;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const auto r = dvfs_search(fleet[i], megahertz(500.0), megahertz(950.0),
                               megahertz(2.0));
    gains.add(r.gain);
    best_f.add(r.best_op.frequency.value() / 1e6);
    if (i < 10) {
      t.add_row({std::to_string(i), std::to_string(fleet[i].vid_bin()),
                 fmt_fixed(r.default_gflops_per_watt, 3),
                 fmt_fixed(r.best_gflops_per_watt, 3),
                 fmt_fixed(r.best_op.frequency.value() / 1e6, 0),
                 fmt_fixed(r.best_op.voltage.value(), 3),
                 fmt_percent(r.gain, 1)});
    }
  }
  std::cout << t.render();
  std::cout << "\nfleet (" << fleet.size() << " nodes): mean gain "
            << fmt_percent(gains.mean(), 1) << " (paper: ~22%), mean optimal "
            << fmt_fixed(best_f.mean(), 0)
            << " MHz (paper: 774 MHz at 1.018 V)\n";
  std::cout << "\nInteraction with §3: DVFS is legal, but with a partial\n"
               "window the low-voltage phase can be the only thing metered —\n"
               "another reason the 2015 rules require the full core phase.\n";
  return 0;
}
