// Unit tests for campaign execution: metering, extrapolation, accuracy.

#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/scenario.hpp"
#include "sim/fleet.hpp"
#include "stats/descriptive.hpp"
#include "util/expects.hpp"
#include "util/mathx.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  PlanInputs inputs;
};

Rig make_rig(std::size_t n_nodes, double cv = 0.02,
             double mean_w = 400.0) {
  ScenarioSpec spec;
  spec.name = "rig";
  spec.nodes = n_nodes;
  spec.cv = cv;
  spec.mean_node_w = mean_w;
  spec.fleet_seed = 99;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  rig.inputs = built.inputs;
  return rig;
}

CampaignConfig fast_config() {
  CampaignConfig c;
  c.meter_accuracy = MeterAccuracy::perfect();
  c.meter_interval_override = Seconds{10.0};
  return c;
}

TEST(Campaign, Level3MeasuresEverythingAccurately) {
  const Rig rig = make_rig(64);
  const auto spec = MethodologySpec::get(Level::kL3, Revision::kV1_2);
  Rng rng(1);
  const auto plan = plan_measurement(spec, rig.inputs, rng);
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());
  EXPECT_EQ(result.nodes_measured, 64u);
  // Perfect meters + whole machine + full window: error from subsystem
  // estimation and PDU loss only.  L3 truth includes aux, and the campaign
  // adds measured aux, so the residual is the PDU loss (~2%).
  EXPECT_LT(result.relative_error, 0.03);
  EXPECT_GT(result.submitted_power.value(), 0.0);
}

TEST(Campaign, ExtrapolationErrorShrinksWithSampleSize) {
  const Rig rig = make_rig(512, /*cv=*/0.03);
  Rng rng(2);
  const auto l1 = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  const auto l2 = MethodologySpec::get(Level::kL2, Revision::kV1_2);
  // Average absolute error over several random subsets.
  double err1 = 0.0, err2 = 0.0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    CampaignConfig cfg = fast_config();
    cfg.seed = 100 + static_cast<std::uint64_t>(t);
    const auto plan1 = plan_measurement(l1, rig.inputs, rng);
    const auto plan2 = plan_measurement(l2, rig.inputs, rng);
    err1 += run_campaign(*rig.cluster, *rig.electrical, plan1, cfg)
                .relative_halfwidth;
    err2 += run_campaign(*rig.cluster, *rig.electrical, plan2, cfg)
                .relative_halfwidth;
  }
  // L2 meters 8x the nodes of L1 -> CI roughly sqrt(8)x tighter.
  EXPECT_LT(err2, err1);
}

TEST(Campaign, AccuracyAssessmentBracketsNodeMean) {
  const Rig rig = make_rig(256);
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  Rng rng(3);
  const auto plan = plan_measurement(spec, rig.inputs, rng);
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());
  EXPECT_GE(result.nodes_measured, 16u);
  EXPECT_GT(result.relative_halfwidth, 0.0);
  // The CI on node-mean AC power should bracket the true node-mean AC
  // power most of the time; with this seed it must.
  const double true_node_mean =
      result.true_power.value() / static_cast<double>(rig.cluster->node_count());
  // True compute power includes the ~2% PDU loss that node taps miss;
  // correct for it before comparing.
  EXPECT_TRUE(result.node_mean_ci.contains(true_node_mean * 0.98));
}

TEST(Campaign, BiasedSubsetUnderestimates) {
  const Rig rig = make_rig(512, /*cv=*/0.05);
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  PlanInputs in = rig.inputs;
  in.node_powers.assign(rig.cluster->node_means().begin(),
                        rig.cluster->node_means().end());
  Rng rng(4);
  const auto honest = plan_measurement(spec, in, rng);
  const auto gamed =
      plan_measurement(spec, in, rng, SubsetStrategy::kLowPower);
  const auto r_honest =
      run_campaign(*rig.cluster, *rig.electrical, honest, fast_config());
  const auto r_gamed =
      run_campaign(*rig.cluster, *rig.electrical, gamed, fast_config());
  EXPECT_LT(r_gamed.submitted_power.value(),
            r_honest.submitted_power.value());
  // The gamed submission understates the true power materially.
  EXPECT_LT(r_gamed.submitted_power.value(), r_gamed.true_power.value());
}

TEST(Campaign, SubsystemInclusionChangesScope) {
  const Rig rig = make_rig(64);
  Rng rng(5);
  const auto l1 = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  const auto l2 = MethodologySpec::get(Level::kL2, Revision::kV1_2);
  const Watts t1 = true_scope_power(*rig.cluster, *rig.electrical, l1);
  const Watts t2 = true_scope_power(*rig.cluster, *rig.electrical, l2);
  EXPECT_GT(t2.value(), t1.value());  // L2 scope includes auxiliaries
  const auto plan2 = plan_measurement(l2, rig.inputs, rng);
  const auto r2 =
      run_campaign(*rig.cluster, *rig.electrical, plan2, fast_config());
  // Submitted power includes the aux estimate.
  EXPECT_GT(r2.submitted_power.value(),
            r2.node_mean_powers_w.size() > 0
                ? mean_of(r2.node_mean_powers_w) * 64.0 * 0.999
                : 0.0);
}

TEST(Campaign, MeterCalibrationSpreadsResults) {
  const Rig rig = make_rig(128, 0.02);
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(6);
  const auto plan = plan_measurement(spec, rig.inputs, rng);
  CampaignConfig noisy = fast_config();
  noisy.meter_accuracy = MeterAccuracy::commodity_grade();
  std::vector<double> submissions;
  for (std::uint64_t s = 0; s < 10; ++s) {
    CampaignConfig cfg = noisy;
    cfg.seed = s;
    submissions.push_back(
        run_campaign(*rig.cluster, *rig.electrical, plan, cfg)
            .submitted_power.value());
  }
  const Summary st = summarize(submissions);
  EXPECT_GT(st.cv, 0.0005);  // meter class is visible in the spread
}

TEST(Campaign, Guards) {
  const Rig rig = make_rig(32);
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(7);
  auto plan = plan_measurement(spec, rig.inputs, rng);
  plan.node_indices.clear();
  EXPECT_THROW(
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config()),
      contract_error);
}

}  // namespace
}  // namespace pv
