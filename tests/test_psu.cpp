// Unit tests for PSU efficiency curves and conversion-loss modeling.

#include "meter/psu.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace pv {
namespace {

TEST(PsuEfficiencyCurve, InterpolatesBetweenPoints) {
  const PsuEfficiencyCurve c({{0.0, 0.80}, {0.5, 0.90}, {1.0, 0.86}});
  EXPECT_DOUBLE_EQ(c.efficiency_at(0.0), 0.80);
  EXPECT_DOUBLE_EQ(c.efficiency_at(0.25), 0.85);
  EXPECT_DOUBLE_EQ(c.efficiency_at(0.5), 0.90);
  EXPECT_DOUBLE_EQ(c.efficiency_at(0.75), 0.88);
  EXPECT_DOUBLE_EQ(c.efficiency_at(1.0), 0.86);
}

TEST(PsuEfficiencyCurve, ClampsOutsideControlPoints) {
  const PsuEfficiencyCurve c({{0.2, 0.85}, {0.8, 0.92}});
  EXPECT_DOUBLE_EQ(c.efficiency_at(0.05), 0.85);
  EXPECT_DOUBLE_EQ(c.efficiency_at(2.0), 0.92);  // overload: last point
}

TEST(PsuEfficiencyCurve, ValidatesInput) {
  EXPECT_THROW(PsuEfficiencyCurve({{0.5, 0.9}}), contract_error);
  EXPECT_THROW(PsuEfficiencyCurve({{0.5, 0.9}, {0.4, 0.8}}), contract_error);
  EXPECT_THROW(PsuEfficiencyCurve({{0.1, 0.0}, {0.5, 0.9}}), contract_error);
  EXPECT_THROW(PsuEfficiencyCurve({{0.1, 0.9}, {1.5, 0.9}}), contract_error);
}

TEST(PsuEfficiencyCurve, PresetsOrderedByCertification) {
  EXPECT_LT(PsuEfficiencyCurve::gold().efficiency_at(0.5),
            PsuEfficiencyCurve::platinum().efficiency_at(0.5));
  EXPECT_LT(PsuEfficiencyCurve::platinum().efficiency_at(0.5),
            PsuEfficiencyCurve::titanium().efficiency_at(0.5));
}

TEST(PsuModel, AcInputExceedsDcLoad) {
  const PsuModel psu(Watts{1000.0}, PsuEfficiencyCurve::platinum());
  const Watts ac = psu.ac_input(Watts{500.0});
  // 50% load on platinum: 0.94 efficiency.
  EXPECT_NEAR(ac.value(), 500.0 / 0.94, 1e-9);
  EXPECT_NEAR(psu.loss(Watts{500.0}).value(), 500.0 / 0.94 - 500.0, 1e-9);
  EXPECT_DOUBLE_EQ(psu.ac_input(Watts{0.0}).value(), 0.0);
}

TEST(PsuModel, LightLoadIsLessEfficient) {
  const PsuModel psu(Watts{1000.0}, PsuEfficiencyCurve::gold());
  const double eff_light =
      20.0 / psu.ac_input(Watts{20.0}).value();
  const double eff_mid = 500.0 / psu.ac_input(Watts{500.0}).value();
  EXPECT_LT(eff_light, eff_mid);
}

TEST(PsuModel, DcOutputInvertsAcInput) {
  const PsuModel psu(Watts{1200.0}, PsuEfficiencyCurve::titanium());
  for (double dc : {5.0, 100.0, 600.0, 1100.0}) {
    const Watts ac = psu.ac_input(Watts{dc});
    EXPECT_NEAR(psu.dc_output(ac).value(), dc, 1e-5) << "dc=" << dc;
  }
  EXPECT_DOUBLE_EQ(psu.dc_output(Watts{0.0}).value(), 0.0);
}

TEST(PsuModel, DomainChecks) {
  EXPECT_THROW(PsuModel(Watts{0.0}, PsuEfficiencyCurve::gold()),
               contract_error);
  const PsuModel psu(Watts{100.0}, PsuEfficiencyCurve::gold());
  EXPECT_THROW(psu.ac_input(Watts{-1.0}), contract_error);
}

TEST(PsuModel, AcInputIsMonotoneInTheDcLoad) {
  // Losses never make more load cost less at the wall: the AC draw is
  // strictly increasing in DC load for every certification tier.
  for (const auto& curve :
       {PsuEfficiencyCurve::gold(), PsuEfficiencyCurve::platinum(),
        PsuEfficiencyCurve::titanium()}) {
    const PsuModel psu(Watts{1000.0}, curve);
    double prev = psu.ac_input(Watts{1.0}).value();
    for (double dc = 26.0; dc <= 1101.0; dc += 25.0) {
      const double cur = psu.ac_input(Watts{dc}).value();
      EXPECT_GT(cur, prev) << "dc=" << dc;
      prev = cur;
    }
  }
}

TEST(PsuModel, RoundTripIsExactAcrossTheWholeLoadRange) {
  const PsuModel psu(Watts{800.0}, PsuEfficiencyCurve::gold());
  // Including far below the lightest control point and above rated.
  for (double dc = 0.5; dc <= 900.0; dc *= 1.7) {
    const Watts ac = psu.ac_input(Watts{dc});
    EXPECT_GT(ac.value(), dc);
    EXPECT_NEAR(psu.dc_output(ac).value(), dc, 1e-5 * dc) << "dc=" << dc;
  }
}

TEST(NominalConversionModel, RoundTrips) {
  const NominalConversionModel m{0.94};
  const Watts dc{940.0};
  const Watts ac = m.ac_from_dc(dc);
  EXPECT_NEAR(ac.value(), 1000.0, 1e-9);
  EXPECT_NEAR(m.dc_from_ac(ac).value(), dc.value(), 1e-9);
}

TEST(NominalConversionModel, DisagreesWithTrueCurveOffPeak) {
  // The Level 1 vendor-nominal model applies one efficiency everywhere;
  // at light load the true curve is worse, so the nominal model
  // *underestimates* AC power — one of the Level 1 error channels.
  const PsuModel psu(Watts{1000.0}, PsuEfficiencyCurve::gold());
  const NominalConversionModel nominal{0.90};  // matches the 50% point
  const Watts dc{50.0};
  EXPECT_LT(nominal.ac_from_dc(dc).value(), psu.ac_input(dc).value());
}

}  // namespace
}  // namespace pv
