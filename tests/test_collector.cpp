// Tests for the asynchronous collection pipeline: transport faults,
// retry/backoff, circuit breakers, the bounded queue, and crash-safe
// checkpoint/resume.  The load-bearing property throughout: the collected
// result is a pure function of (plan, config) — thread count, scheduling
// and crashes cannot change a bit of it.

#include "collect/collector.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "collect/queue.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "sim/fleet.hpp"
#include "util/expects.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
};

Rig make_rig(std::size_t n_nodes, std::uint64_t seed = 3) {
  ScenarioSpec spec;
  spec.name = "collect-rig";
  spec.nodes = n_nodes;
  spec.fleet_seed = 99;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  rig.plan = built.plan(MethodologySpec::get(Level::kL1, Revision::kV2015),
                        seed);
  return rig;
}

CollectorConfig fast_config() {
  CollectorConfig c;
  c.campaign.meter_interval_override = Seconds{10.0};
  c.threads = 4;
  // Generous deadline: with the default latency model, a healthy meter
  // essentially never times out, so fault-free runs have clean tallies.
  c.poller.timeout_s = 5.0;
  return c;
}

std::string temp_journal(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// A stable serialization of everything the user would see, for
// byte-identity comparisons between runs.
std::string result_signature(const MeasurementPlan& plan,
                             const CampaignResult& r) {
  return accuracy_report(plan, r);
}

TEST(Collector, FaultFreeCollectionTracksGroundTruth) {
  const Rig rig = make_rig(160);
  const CollectionOutcome out = collect_campaign(
      *rig.cluster, *rig.electrical, rig.plan, fast_config());
  EXPECT_EQ(out.meters_polled, rig.plan.node_count());
  EXPECT_EQ(out.meters_resumed, 0u);
  const CampaignResult& r = out.result;
  EXPECT_EQ(r.nodes_measured, rig.plan.node_count());
  EXPECT_LT(r.relative_error, 0.05);  // same structural L1 bias as sync path
  const DataQuality& dq = r.data_quality;
  EXPECT_TRUE(dq.collection.used);
  EXPECT_EQ(dq.meters_lost, 0u);
  EXPECT_EQ(dq.samples_lost, 0u);
  EXPECT_EQ(dq.collection.polls_timed_out, 0u);
  EXPECT_EQ(dq.collection.breaker_trips, 0u);
  EXPECT_GT(dq.collection.polls_attempted, 0u);
  EXPECT_GT(dq.collection.busy_total_s, 0.0);
  EXPECT_GE(dq.collection.busy_total_s, dq.collection.busy_max_meter_s);
  EXPECT_GE(dq.collection.makespan_s, dq.collection.busy_max_meter_s);
  EXPECT_LE(dq.collection.makespan_s, dq.collection.busy_total_s);
}

TEST(Collector, ResultIsIndependentOfThreadCount) {
  const Rig rig = make_rig(160);
  CollectorConfig one = fast_config();
  one.threads = 1;
  CollectorConfig eight = fast_config();
  eight.threads = 8;
  const auto a =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, one);
  const auto b =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, eight);
  EXPECT_EQ(a.result.submitted_power.value(),
            b.result.submitted_power.value());
  EXPECT_EQ(a.result.submitted_energy.value(),
            b.result.submitted_energy.value());
  ASSERT_EQ(a.result.node_mean_powers_w.size(),
            b.result.node_mean_powers_w.size());
  for (std::size_t i = 0; i < a.result.node_mean_powers_w.size(); ++i) {
    EXPECT_EQ(a.result.node_mean_powers_w[i],
              b.result.node_mean_powers_w[i]);
  }
}

TEST(Collector, FlakyTransportIsDeterministicAndRecovers) {
  const Rig rig = make_rig(160);
  CollectorConfig config = fast_config();
  config.transport.drop_prob = 0.2;
  config.transport.duplicate_prob = 0.05;
  config.poller.max_attempts = 4;
  const auto a =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  const auto b =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  EXPECT_EQ(result_signature(rig.plan, a.result),
            result_signature(rig.plan, b.result));
  // 20% drop with 4 attempts: effectively everything arrives eventually.
  const DataQuality& dq = a.result.data_quality;
  EXPECT_GT(dq.collection.polls_retried, 0u);
  EXPECT_GT(dq.collection.polls_timed_out, 0u);
  EXPECT_EQ(dq.meters_lost, 0u);
  EXPECT_LT(a.result.relative_error, 0.05);
}

TEST(Collector, BlackholeMetersAreAbandonedAndDisclosed) {
  const Rig rig = make_rig(160);
  CollectorConfig config = fast_config();
  config.campaign.faults.dead_meters = {rig.plan.node_indices[0],
                                        rig.plan.node_indices[3]};
  const auto out =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  const DataQuality& dq = out.result.data_quality;
  EXPECT_EQ(dq.meters_lost, 2u);
  EXPECT_EQ(dq.collection.meters_abandoned, 2u);
  EXPECT_GT(dq.collection.breaker_trips, 0u);
  ASSERT_EQ(dq.lost_meter_ids.size(), 2u);
  EXPECT_EQ(dq.lost_meter_ids[0], rig.plan.node_indices[0]);
  EXPECT_EQ(dq.lost_meter_ids[1], rig.plan.node_indices[3]);
  EXPECT_EQ(out.result.nodes_measured, rig.plan.node_count() - 2);
  // The degradation path re-based the extrapolation: still near truth.
  EXPECT_LT(out.result.relative_error, 0.06);
  // And the report discloses the collection path.
  const std::string report = data_quality_report(dq);
  EXPECT_NE(report.find("collection path"), std::string::npos);
  EXPECT_NE(report.find("abandoned"), std::string::npos);
}

TEST(Collector, BreakerBoundsTheBusyTimeOfDeadMeters) {
  const Rig rig = make_rig(160);
  CollectorConfig with_breaker = fast_config();
  with_breaker.transport.blackhole_meters = {rig.plan.node_indices[1],
                                             rig.plan.node_indices[5],
                                             rig.plan.node_indices[9]};
  CollectorConfig without = with_breaker;
  without.poller.breaker.enabled = false;
  const auto guarded = collect_campaign(*rig.cluster, *rig.electrical,
                                        rig.plan, with_breaker);
  const auto unguarded =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, without);
  // Same meters lost either way, but the breaker pays far fewer timeouts.
  EXPECT_EQ(guarded.result.data_quality.meters_lost,
            unguarded.result.data_quality.meters_lost);
  EXPECT_LT(guarded.result.data_quality.collection.polls_timed_out,
            unguarded.result.data_quality.collection.polls_timed_out);
  EXPECT_LT(guarded.result.data_quality.collection.busy_max_meter_s,
            unguarded.result.data_quality.collection.busy_max_meter_s);
}

TEST(Collector, KillAndResumeIsByteIdenticalToUninterrupted) {
  const Rig rig = make_rig(160);
  CollectorConfig config = fast_config();
  config.transport.drop_prob = 0.1;
  config.transport.blackhole_fraction = 0.1;

  CollectorConfig clean = config;
  clean.journal_path = temp_journal("collector_clean.wal");
  const auto uninterrupted =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, clean);

  CollectorConfig crashing = config;
  crashing.journal_path = temp_journal("collector_crash.wal");
  crashing.crash_after_meters = 5;
  EXPECT_THROW(
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, crashing),
      CollectionAborted);

  CollectorConfig resuming = config;
  resuming.journal_path = crashing.journal_path;
  resuming.resume = true;
  const auto resumed =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, resuming);
  EXPECT_EQ(resumed.meters_resumed, 5u);
  EXPECT_EQ(resumed.meters_polled, rig.plan.node_count() - 5);
  EXPECT_EQ(resumed.journal_torn_lines, 0u);

  // The headline contract: not close — byte-identical.
  EXPECT_EQ(result_signature(rig.plan, uninterrupted.result),
            result_signature(rig.plan, resumed.result));
  EXPECT_EQ(uninterrupted.result.submitted_power.value(),
            resumed.result.submitted_power.value());
  EXPECT_EQ(uninterrupted.result.submitted_energy.value(),
            resumed.result.submitted_energy.value());
  EXPECT_EQ(uninterrupted.result.data_quality.collection.busy_total_s,
            resumed.result.data_quality.collection.busy_total_s);
}

TEST(Collector, ResumingACompleteJournalRepollsNothing) {
  const Rig rig = make_rig(160);
  CollectorConfig config = fast_config();
  config.journal_path = temp_journal("collector_complete.wal");
  const auto first =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  config.resume = true;
  const auto second =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  EXPECT_EQ(second.meters_polled, 0u);
  EXPECT_EQ(second.meters_resumed, rig.plan.node_count());
  EXPECT_EQ(result_signature(rig.plan, first.result),
            result_signature(rig.plan, second.result));
}

TEST(Collector, ResumeRejectsAForeignJournal) {
  const Rig rig = make_rig(160);
  CollectorConfig config = fast_config();
  config.journal_path = temp_journal("collector_foreign.wal");
  (void)collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  config.resume = true;
  config.campaign.seed += 1;  // a different campaign identity
  EXPECT_THROW(
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config),
      std::runtime_error);
}

TEST(Collector, FingerprintSeparatesCampaigns) {
  const Rig rig = make_rig(160);
  const CollectorConfig base = fast_config();
  CollectorConfig other = base;
  other.campaign.seed = 999;
  EXPECT_NE(collection_fingerprint(rig.plan, base),
            collection_fingerprint(rig.plan, other));
  other = base;
  other.transport.drop_prob = 0.5;
  EXPECT_NE(collection_fingerprint(rig.plan, base),
            collection_fingerprint(rig.plan, other));
  other = base;
  other.poller.timeout_s = 9.0;
  EXPECT_NE(collection_fingerprint(rig.plan, base),
            collection_fingerprint(rig.plan, other));
  // Journal bookkeeping knobs do NOT change the campaign identity.
  other = base;
  other.crash_after_meters = 3;
  other.journal_path = "somewhere.wal";
  EXPECT_EQ(collection_fingerprint(rig.plan, base),
            collection_fingerprint(rig.plan, other));
}

TEST(Collector, EveryMeterDeadThrows) {
  const Rig rig = make_rig(160);
  CollectorConfig config = fast_config();
  config.transport.blackhole_fraction = 1.0;
  EXPECT_THROW(
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config),
      std::runtime_error);
}

TEST(Collector, RejectsDataFaultInjectionAndNonNodePlans) {
  const Rig rig = make_rig(160);
  CollectorConfig config = fast_config();
  config.campaign.faults.spec = FaultSpec::mild();
  EXPECT_THROW(
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config),
      contract_error);
  MeasurementPlan facility = rig.plan;
  facility.point = MeasurementPoint::kFacilityFeed;
  EXPECT_THROW(collect_campaign(*rig.cluster, *rig.electrical, facility,
                                fast_config()),
               contract_error);
  config = fast_config();
  config.resume = true;  // resume without a journal path
  EXPECT_THROW(
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config),
      contract_error);
}

TEST(BoundedQueue, BackpressureBlocksUntilConsumed) {
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<bool> third_pushed{false};
  std::thread producer([&] {
    q.push(3);  // must block: capacity 2
    third_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());  // still stuck behind the full queue
  EXPECT_EQ(q.pop().value(), 1);      // frees a slot
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, CloseUnblocksProducersAndDrainsConsumers) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(7));
  std::thread producer([&] {
    EXPECT_FALSE(q.push(8));  // blocked on full, woken by close -> false
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(q.pop().value(), 7);          // close still drains queued items
  EXPECT_FALSE(q.pop().has_value());      // then reports end-of-stream
  EXPECT_FALSE(q.push(9));                // closed for good
  q.close();                              // idempotent
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>{0}, contract_error);
}

}  // namespace
}  // namespace pv
