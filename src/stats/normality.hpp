#pragma once
// Normality diagnostics.
//
// §4.2: "We should check for all the available data that any violations of
// normality are small enough that the sample size determination procedure
// is still valid."  The paper does that by bootstrap coverage simulation
// (core/coverage); these classical tests give the quick analytic check a
// site would run on its pilot sample first:
//   * Jarque–Bera: moment-based (skewness + kurtosis), chi-square(2) null;
//   * Anderson–Darling (case 3: mean and variance estimated), with the
//     Stephens small-sample correction and the D'Agostino p-value fit.

#include <span>

namespace pv {

/// Outcome of a normality test.
struct NormalityResult {
  double statistic = 0.0;
  double p_value = 0.0;
  /// Convenience verdict at the given significance (true = "no evidence
  /// against normality").
  [[nodiscard]] bool consistent_with_normal(double alpha = 0.05) const {
    return p_value >= alpha;
  }
};

/// Jarque–Bera test.  Requires n >= 8 and a non-constant sample.
/// JB = n/6 (S^2 + K^2/4) with S the sample skewness and K the excess
/// kurtosis; p-value from the asymptotic chi-square(2) distribution.
[[nodiscard]] NormalityResult jarque_bera(std::span<const double> xs);

/// Anderson–Darling test for normality with estimated parameters.
/// Requires n >= 8 and a non-constant sample.  The statistic uses the
/// Stephens (1986) correction A*^2 = A^2 (1 + 0.75/n + 2.25/n^2); the
/// p-value follows D'Agostino & Stephens' piecewise exponential fit.
[[nodiscard]] NormalityResult anderson_darling(std::span<const double> xs);

/// Upper tail of the chi-square distribution with k degrees of freedom
/// (via the regularized incomplete gamma function; exposed for reuse).
[[nodiscard]] double chi_square_sf(double x, double k);

}  // namespace pv
