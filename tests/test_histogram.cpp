// Unit tests for the histogram used by the Figure 2 reproduction.

#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "stats/rng.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_THROW(h.count(5), contract_error);
}

TEST(Histogram, CountsFallIntoCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(0.0, 0.0, 5), contract_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), contract_error);
}

TEST(Histogram, AutoBinnedCoversSampleRange) {
  Rng rng(7);
  std::vector<double> xs(5000);
  for (auto& x : xs) x = rng.normal(580.0, 12.0);
  const Histogram h = Histogram::auto_binned(xs);
  EXPECT_EQ(h.total(), xs.size());
  EXPECT_GE(h.bin_count(), 10u);
  // Every sample landed in some bin; mode near the mean.
  const double mode_center =
      0.5 * (h.bin_lo(h.mode_bin()) + h.bin_hi(h.mode_bin()));
  EXPECT_NEAR(mode_center, 580.0, 12.0);
}

TEST(Histogram, AutoBinnedHandlesConstantSample) {
  const std::vector<double> xs{5.0, 5.0, 5.0};
  const Histogram h = Histogram::auto_binned(xs);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_GE(h.bin_count(), 1u);
}

TEST(Histogram, UnimodalGaussianDetectedAsOneMode) {
  Rng rng(11);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(0.0, 1.0);
  Histogram h(-4.0, 4.0, 40);
  h.add_all(xs);
  EXPECT_EQ(h.modality(), 1u);
}

TEST(Histogram, BimodalMixtureDetected) {
  Rng rng(13);
  std::vector<double> xs(20000);
  for (auto& x : xs) {
    x = rng.bernoulli(0.5) ? rng.normal(-4.0, 0.6) : rng.normal(4.0, 0.6);
  }
  Histogram h(-7.0, 7.0, 40);
  h.add_all(xs);
  EXPECT_EQ(h.modality(), 2u);
}

TEST(Histogram, RenderShowsBarsAndCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string out = h.render(20);
  EXPECT_NE(out.find('#'), std::string::npos);
  EXPECT_NE(out.find('2'), std::string::npos);
  // Two lines, one per bin.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Histogram, RenderEmptyHistogramIsAllBlank) {
  Histogram h(0.0, 1.0, 3);
  const std::string out = h.render();
  EXPECT_EQ(out.find('#'), std::string::npos);
}

}  // namespace
}  // namespace pv
