#pragma once
// High-Performance Linpack power-profile model.
//
// HPL factors an N x N matrix by blocked LU.  After a fraction c of the
// columns is eliminated, the trailing submatrix has relative dimension
// m = 1 - c; the remaining work density is dW/dc = 3 m^2 (of the total
// 2/3 N^3 flops).  The machine's execution efficiency depends on the
// trailing-matrix size: DGEMM saturates the pipelines only for large
// panels.  We model the instantaneous efficiency with a Hill saturation
//
//     e(m) = e_min + (e_max - e_min) * m^g / (m^g + h^g)
//
// and obtain time as t(c) = K * integral_0^c [3 m^2 / e(m)] dc, scaled so
// the core phase lasts the requested duration.  Compute intensity at time
// t is e(m(t)) (plus an optional warm-up bump and a panel-vs-update
// oscillation whose relative weight grows as panels shrink).
//
// Two regimes reproduce §3's dichotomy:
//   * CPU systems fill main memory, so the matrix is huge relative to the
//     saturation knee (small h): the profile is flat until the last few
//     percent of the run (Colosse, Sequoia).
//   * "In-core" GPU HPL stores the matrix in device memory, so N is small
//     and the knee is comparatively large: efficiency sags over much of
//     the run and collapses at the end (Piz Daint, L-CSC), producing the
//     >20% first-vs-last-20% spread of Table 2.

#include <vector>

#include "workload/workload.hpp"

namespace pv {

/// Tunable parameters of the HPL profile model.
struct HplParams {
  double e_max = 0.95;   ///< peak execution efficiency (fraction of peak power)
  double e_min = 0.25;   ///< efficiency as the trailing matrix vanishes
  double knee = 0.02;    ///< h: trailing fraction at half saturation
  double hill_gamma = 1.6;  ///< g: knee sharpness
  double warmup_amp = 0.0;  ///< extra intensity at t=0 decaying over warmup_tau
  double warmup_tau_frac = 0.05;  ///< warm-up time constant / core duration
  double osc_depth = 0.0;  ///< panel/update oscillation amplitude at run end
  double osc_cycles = 300.0;  ///< oscillation cycles across the core phase
  double setup_intensity = 0.15;
  double teardown_intensity = 0.10;

  /// Traditional CPU cluster preset (flat profile; Colosse/Sequoia-like).
  static HplParams cpu_traditional();
  /// In-core GPU preset (sloped, tailing profile; Piz Daint/L-CSC-like).
  static HplParams gpu_incore();
};

/// HPL benchmark run: LU-progress power model.
class HplWorkload final : public Workload {
 public:
  HplWorkload(HplParams params, Seconds core_duration,
              Seconds setup = Seconds{0.0}, Seconds teardown = Seconds{0.0});

  [[nodiscard]] std::string name() const override { return "HPL"; }
  [[nodiscard]] RunPhases phases() const override { return phases_; }
  [[nodiscard]] double intensity(double t) const override;

  /// Efficiency as a function of trailing-matrix fraction m in [0, 1].
  [[nodiscard]] double efficiency(double m) const;

  /// Trailing-matrix fraction at core-phase progress time tc in
  /// [0, core duration] (interpolated from the integrated progress table).
  [[nodiscard]] double trailing_fraction(double tc) const;

  [[nodiscard]] const HplParams& params() const { return params_; }

 private:
  HplParams params_;
  RunPhases phases_;
  // Progress table: time_frac_[k] is the fraction of the core phase elapsed
  // when the factorization has completed column fraction k / (table size-1).
  std::vector<double> time_frac_;

  void build_progress_table();
};

}  // namespace pv
