#include "trace/segment.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"

namespace pv {

TimeWindow RunPhases::core_fraction(double begin_frac, double end_frac) const {
  PV_EXPECTS(core.value() > 0.0, "run has no core phase");
  PV_EXPECTS(begin_frac >= 0.0 && end_frac <= 1.0 && begin_frac < end_frac,
             "fractions must satisfy 0 <= begin < end <= 1");
  const double b = core_begin().value() + begin_frac * core.value();
  const double e = core_begin().value() + end_frac * core.value();
  return {Seconds{b}, Seconds{e}};
}

Seconds RunPhases::level1_min_duration() const {
  PV_EXPECTS(core.value() > 0.0, "run has no core phase");
  const double middle = 0.8 * core.value();
  return Seconds{std::max(60.0, 0.2 * middle)};
}

TimeWindow RunPhases::level1_window(double position) const {
  PV_EXPECTS(position >= 0.0 && position <= 1.0,
             "window position must lie in [0,1]");
  const TimeWindow allowed = middle_80();
  const double need = level1_min_duration().value();
  const double slack = allowed.duration().value() - need;
  PV_EXPECTS(slack >= 0.0,
             "core phase too short for a Level 1 window inside its middle 80%");
  const double begin = allowed.begin.value() + position * slack;
  return {Seconds{begin}, Seconds{begin + need}};
}

std::vector<TimeWindow> RunPhases::level2_windows() const {
  PV_EXPECTS(core.value() > 0.0, "run has no core phase");
  std::vector<TimeWindow> out;
  out.reserve(10);
  for (int i = 0; i < 10; ++i) {
    out.push_back(core_fraction(0.1 * i, 0.1 * (i + 1)));
  }
  return out;
}

TimeWindow detect_core_phase(const PowerTrace& trace, double threshold_frac) {
  PV_EXPECTS(threshold_frac > 0.0 && threshold_frac < 1.0,
             "threshold fraction must be in (0,1)");
  const auto watts = trace.watts();
  // Use robust percentiles so a few spikes don't move the threshold.
  const double lo = quantile(watts, 0.05);
  const double hi = quantile(watts, 0.95);
  PV_EXPECTS(hi > lo, "trace has no dynamic range to detect phases in");
  const double threshold = lo + threshold_frac * (hi - lo);

  std::size_t first = watts.size(), last = 0;
  for (std::size_t i = 0; i < watts.size(); ++i) {
    if (watts[i] >= threshold) {
      first = std::min(first, i);
      last = i;
    }
  }
  PV_EXPECTS(first < watts.size(), "no samples above the phase threshold");
  const double t0 = trace.t0().value();
  const double dt = trace.dt().value();
  return {Seconds{t0 + dt * static_cast<double>(first)},
          Seconds{t0 + dt * static_cast<double>(last + 1)}};
}

}  // namespace pv
