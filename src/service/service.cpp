#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "core/doc.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "trace/wal.hpp"
#include "util/expects.hpp"

namespace pv {

namespace {

/// Decorator injecting one stage-level fault.  kThrowStage and
/// kWorkerDeath throw before the inner stage runs; kStallStage models a
/// stage that eats the whole deadline budget — it exhausts the token and
/// returns without running the inner stage, so the *next* boundary check
/// in run_pipeline (there is one after the last stage too) unwinds the
/// campaign exactly as a real overrun would.
class ChaosStage final : public CampaignStage {
 public:
  ChaosStage(StagePtr inner, ServiceFault fault, CancelToken* token)
      : inner_(std::move(inner)), fault_(fault), token_(token) {}

  [[nodiscard]] const char* name() const override { return inner_->name(); }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    switch (fault_) {
      case ServiceFault::kThrowStage:
        throw InjectedStageError(std::string("injected failure in stage '") +
                                 inner_->name() + "'");
      case ServiceFault::kWorkerDeath:
        throw WorkerDeathError(std::string("worker died in stage '") +
                               inner_->name() + "'");
      case ServiceFault::kStallStage:
        if (token_ != nullptr) token_->exhaust_deadline();
        return;  // the stalled stage never finishes; boundary check fires
      case ServiceFault::kNone:
      case ServiceFault::kCacheCorrupt:
        break;
    }
    inner_->run(ctx, trace);
  }

 private:
  StagePtr inner_;
  ServiceFault fault_;
  CancelToken* token_;
};

}  // namespace

std::uint64_t service_checkpoint_fingerprint() {
  // FNV-1a of the journal schema tag: binds drain-checkpoint journals to
  // this format so replay rejects journals written by anything else.
  const std::string tag = "powervar-service-checkpoint-v1";
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

CampaignService::CampaignService(ServiceConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<ThreadPool>(std::max(1u, config_.workers))),
      cache_(config_.cache_capacity) {
  config_.workers = pool_->size();
}

CampaignService::~CampaignService() {
  try {
    drain();
  } catch (...) {
    // Destruction must not throw; drain errors are already reflected in
    // per-request responses.
  }
}

AdmissionVerdict CampaignService::submit_line(const std::string& json_line) {
  try {
    return submit(parse_request(json_line));
  } catch (const std::exception& e) {
    // JsonParseError or RequestParseError: the line never reaches
    // admission, but still resolves to exactly one typed response.
    std::unique_lock lock(mu_);
    ++report_.submitted;
    ++report_.invalid;
    auto slot = std::make_unique<Slot>();
    slot->state = State::kDone;
    slot->response.code = ResponseCode::kInvalidRequest;
    slot->response.message = e.what();
    AdmissionVerdict verdict;
    verdict.decision = Admission::kShed;
    verdict.ticket = slots_.size();
    verdict.has_ticket = true;
    slots_.push_back(std::move(slot));
    return verdict;
  }
}

AdmissionVerdict CampaignService::submit(const ServiceRequest& req) {
  std::size_t ticket = 0;
  const CancelToken* token = nullptr;
  AdmissionVerdict verdict;
  {
    std::unique_lock lock(mu_);
    ++report_.submitted;
    const std::size_t in_flight = running_ + queued_;
    const bool over_queue =
        in_flight >= config_.workers &&
        in_flight - config_.workers >= config_.max_queue;
    if (draining_ || over_queue) {
      ++report_.shed;
      auto slot = std::make_unique<Slot>();
      slot->state = State::kDone;
      slot->response.id = req.id;
      slot->response.code = ResponseCode::kShed;
      slot->response.retry_after_s = config_.retry_after_s;
      slot->response.message =
          draining_ ? "service is draining" : "admission queue is full";
      verdict.decision = Admission::kShed;
      verdict.ticket = slots_.size();
      verdict.has_ticket = true;
      verdict.retry_after_s = config_.retry_after_s;
      slots_.push_back(std::move(slot));
      return verdict;
    }

    ++report_.admitted;
    auto slot = std::make_unique<Slot>();
    slot->request = req;
    slot->counts_admitted = true;
    slot->cancel = std::make_unique<CancelToken>();
    const double budget =
        req.deadline_ms > 0.0 ? req.deadline_ms : config_.default_deadline_ms;
    if (budget > 0.0) slot->cancel->arm_deadline(budget);
    token = slot->cancel.get();
    ticket = slots_.size();
    ++queued_;
    verdict.decision =
        in_flight < config_.workers ? Admission::kAccepted : Admission::kQueued;
    verdict.ticket = ticket;
    verdict.has_ticket = true;
    verdict.queue_depth =
        in_flight >= config_.workers ? in_flight - config_.workers + 1 : 0;
    slots_.push_back(std::move(slot));

    // Chaos: shutdown-mid-request — trip the drain flag after the Nth
    // admission; later submits shed, queued work gets checkpointed by
    // the (user-initiated) drain.
    if (config_.chaos.drain_after > 0 &&
        report_.admitted >= config_.chaos.drain_after) {
      draining_ = true;
    }
  }
  // The pool skips the job if the token is already cancelled at dequeue
  // (drain handles those slots itself).
  pool_->submit([this, ticket] { execute(ticket); }, token);
  return verdict;
}

ServiceResponse CampaignService::run_request(const ServiceRequest& req,
                                             CancelToken* token,
                                             ServiceFault fault) {
  ServiceResponse resp;
  resp.id = req.id;
  try {
    token->check("admission");
    const auto scenario =
        cache_.acquire(scenario_spec_of(req), config_.strict_cache,
                       fault == ServiceFault::kCacheCorrupt);
    const MeasurementPlan plan = plan_of(req, *scenario);
    const CampaignConfig config = campaign_config_of(req, plan);
    std::vector<StagePtr> stages = make_campaign_stages(plan, config);
    if (fault == ServiceFault::kThrowStage ||
        fault == ServiceFault::kStallStage ||
        fault == ServiceFault::kWorkerDeath) {
      const std::size_t idx = config_.chaos.stage_of(req.id) % stages.size();
      stages[idx] =
          std::make_unique<ChaosStage>(std::move(stages[idx]), fault, token);
    }
    const CampaignResult result = run_campaign_stages(
        *scenario->cluster, *scenario->electrical, plan, config, stages, token);
    resp.code = ResponseCode::kOk;
    resp.assessment_json = render_json(assessment_document(plan, result));
  } catch (const DeadlineExceededError& e) {
    resp.code = ResponseCode::kDeadlineExceeded;
    resp.message = e.what();
  } catch (const CancelledError& e) {
    resp.code = ResponseCode::kCancelled;
    resp.message = e.what();
  } catch (const CacheCorruptError& e) {
    resp.code = ResponseCode::kCacheCorrupt;
    resp.message = e.what();
  } catch (const WorkerDeathError& e) {
    resp.code = ResponseCode::kWorkerLost;
    resp.message = e.what();
  } catch (const InjectedStageError& e) {
    resp.code = ResponseCode::kStageFailed;
    resp.message = e.what();
  } catch (const NoUsableDataError& e) {
    resp.code = ResponseCode::kNoUsableData;
    resp.message = e.what();
  } catch (const std::exception& e) {
    resp.code = ResponseCode::kStageFailed;
    resp.message = e.what();
  }
  return resp;
}

void CampaignService::execute(std::size_t ticket) {
  Slot* slot = nullptr;
  ServiceRequest req;
  CancelToken* token = nullptr;
  {
    std::unique_lock lock(mu_);
    slot = slots_[ticket].get();
    if (slot->state != State::kQueued) return;  // drained before start
    slot->state = State::kRunning;
    --queued_;
    ++running_;
    req = slot->request;
    token = slot->cancel.get();
  }
  const ServiceFault fault = config_.chaos.decide(req.id);
  ServiceResponse resp = run_request(req, token, fault);
  if (fault != ServiceFault::kNone) resp.fault_injected = to_string(fault);
  {
    std::unique_lock lock(mu_);
    if (resp.code == ResponseCode::kWorkerLost) ++report_.workers_replaced;
    --running_;
    finish_locked(*slot, std::move(resp));
  }
}

void CampaignService::finish_locked(Slot& slot, ServiceResponse resp) {
  slot.state = State::kDone;
  slot.response = std::move(resp);
  ++report_.completed;
  cv_done_.notify_all();
}

ServiceResponse CampaignService::wait(std::size_t ticket) {
  std::unique_lock lock(mu_);
  PV_EXPECTS(ticket < slots_.size(), "wait() on an unknown ticket");
  cv_done_.wait(lock,
                [&] { return slots_[ticket]->state == State::kDone; });
  return slots_[ticket]->response;
}

DrainReport CampaignService::drain() {
  std::unique_lock lock(mu_);
  if (drained_) {
    report_.cache = cache_.stats();
    return report_;
  }
  draining_ = true;

  // Checkpoint (or cancel) everything admitted but not yet started.  The
  // cancelled tokens also make the pool skip those jobs at dequeue.
  std::unique_ptr<WalWriter> wal;
  for (auto& owned : slots_) {
    Slot& slot = *owned;
    if (slot.state != State::kQueued) continue;
    slot.cancel->cancel();
    ServiceResponse resp;
    resp.id = slot.request.id;
    if (!config_.checkpoint_path.empty()) {
      if (!wal) {
        wal = std::make_unique<WalWriter>(config_.checkpoint_path,
                                          service_checkpoint_fingerprint());
      }
      wal->append(render_request_json(slot.request));
      resp.code = ResponseCode::kCheckpointed;
      resp.message = "drained before start; request checkpointed";
    } else {
      resp.code = ResponseCode::kCancelled;
      resp.message = "drained before start (no checkpoint journal)";
    }
    slot.state = State::kDone;
    slot.response = std::move(resp);
    --queued_;
    ++report_.checkpointed;
  }
  cv_done_.notify_all();

  // Let running requests finish — they are never torn mid-stage.
  cv_done_.wait(lock, [&] { return running_ == 0 && queued_ == 0; });
  drained_ = true;
  lock.unlock();
  pool_->shutdown();
  lock.lock();
  report_.cache = cache_.stats();
  return report_;
}

}  // namespace pv
