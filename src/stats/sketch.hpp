#pragma once
// Mergeable quantile sketch for the streaming assessment path.
//
// A QuantileSketch is a DDSketch-style log-binned counter table: value x
// lands in the bin whose key is ceil(log(x) / log(gamma)) with
// gamma = (1 + alpha) / (1 - alpha), so every bin spans at most a
// relative width of alpha and the reported quantile is within alpha
// *relative* error of the true order statistic.  The whole state is
// integer bin counts plus exact min/max, which makes merging exact:
// adding integer counters is commutative and associative, so
//
//   sketch(full stream) == merge(sketch(window_1), ..., sketch(window_k))
//
// bit-for-bit, in any merge order.  That is the property the per-window
// streaming engine needs — each closed window contributes a small sketch
// and the campaign-wide quantiles come from merging them, with no
// dependence on window boundaries or merge schedule.
//
// Negative values are binned symmetrically on |x|; values too small to
// index (|x| < DBL_MIN) are counted in a dedicated zero bin.

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>

#include "stats/fused.hpp"

namespace pv {

class QuantileSketch {
 public:
  /// `alpha` is the relative-accuracy target in (0, 1).
  explicit QuantileSketch(double alpha = 0.01);

  void push(double x);
  void push(std::span<const double> xs) {
    for (double x : xs) push(x);
  }

  /// Adds another sketch's counters into this one.  Both sides must have
  /// been built with the same alpha.
  void merge(const QuantileSketch& other);

  /// Estimate of the q-quantile (the item at floor(q * (n - 1)) in sorted
  /// order), within `alpha()` relative error; requires count() > 0.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Number of occupied bins — the sketch's footprint is O(bins), not O(n).
  [[nodiscard]] std::size_t bin_count() const {
    return positive_.size() + negative_.size() + (zero_ > 0 ? 1 : 0);
  }

  /// True iff both sketches hold the identical state (same counters,
  /// min/max bits, alpha).  Used by the bit-for-bit merge property tests.
  [[nodiscard]] bool identical(const QuantileSketch& other) const;

 private:
  [[nodiscard]] long long key_for(double magnitude) const;
  [[nodiscard]] double bin_value(long long key) const;
  [[nodiscard]] double clamp_estimate(double v) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t zero_ = 0;
  // Ordered maps so the quantile walk visits bins in ascending value
  // order deterministically; keys are log-gamma indices of |x|.
  std::map<long long, std::uint64_t> positive_;
  std::map<long long, std::uint64_t> negative_;
};

/// One window's worth of streaming statistics: the PR4 fused accumulator
/// (exact in-order sum, Welford moments, min/max) extended with the
/// mergeable quantile sketch.  Window sketches merge into campaign-wide
/// state as windows close — the pair is what the live meter stage keeps
/// per scope instead of a materialized trace.
struct WindowStats {
  explicit WindowStats(double alpha = 0.01) : quantiles(alpha) {}

  FusedAccumulator moments;
  QuantileSketch quantiles;

  void push(double x) {
    moments.push(x);
    quantiles.push(x);
  }
  void push(std::span<const double> xs) {
    moments.push(xs);
    quantiles.push(xs);
  }
  void merge(const WindowStats& other) {
    moments.merge(other.moments);
    quantiles.merge(other.quantiles);
  }
  [[nodiscard]] std::size_t count() const { return moments.count(); }
};

}  // namespace pv
