#pragma once
// Catalog of the systems studied in the paper.
//
// Two groups:
//   * Table 2 / Figure 1 systems (power-over-time): Colosse, Sequoia-25,
//     Piz Daint, L-CSC — plus TSUBAME-KFC, whose window-gaming episode §3
//     recounts.  Each carries its published segment averages, which the
//     calibration layer reproduces exactly.
//   * Table 3 / Table 4 / Figure 2 systems (per-node fleets): Calcul
//     Québec, CEA (Fat/Thin), LRZ, Titan (ORNL), TU Dresden — each with
//     its published (N, mu-hat, sigma-hat) and workload.
//
// The numbers below are the paper's published summary statistics; the
// generators are calibrated to them (DESIGN.md §4 explains why that is the
// faithful substitution for the unavailable raw traces).

#include <memory>
#include <string>
#include <vector>

#include "sim/fleet.hpp"
#include "workload/calibration.hpp"
#include "workload/workload.hpp"

namespace pv::catalog {

/// A Table 2 / Figure 1 system: full-run power profile.
struct ProfiledSystem {
  std::string name;
  Seconds hpl_runtime{0.0};     ///< core-phase duration
  Watts core_avg{0.0};          ///< published core-phase average
  Watts first20_avg{0.0};       ///< published first-20% average
  Watts last20_avg{0.0};        ///< published last-20% average
  bool gpu_shape = false;       ///< in-core GPU HPL regime?
  double noise_sigma_frac = 0.004;  ///< AR(1) texture amplitude
};

/// A Table 3/4 / Figure 2 system: per-node fleet statistics.
struct FleetSystem {
  std::string name;
  std::string cpus_per_node;
  std::string ram_per_node;
  std::string components_measured;
  std::string workload_name;
  std::size_t total_nodes = 0;     ///< N in Table 4 (nodes or blades)
  std::size_t measured_nodes = 0;  ///< instrumented subset (Table 3)
  double mean_w = 0.0;             ///< published mu-hat
  double sd_w = 0.0;               ///< published sigma-hat
  FleetVariability variability;    ///< channel decomposition used to generate

  enum class Profile { kHplCpu, kHplGpu, kMprime, kFirestarter, kRodinia };
  Profile profile = Profile::kHplCpu;
  Seconds core_duration{hours(4.0).value()};

  [[nodiscard]] double cv() const { return sd_w / mean_w; }
};

/// The four Table 2 systems, in the paper's order
/// (Colosse, Sequoia, Piz Daint, L-CSC).
[[nodiscard]] const std::vector<ProfiledSystem>& table2_systems();

/// TSUBAME-KFC: the November 2013 window-gaming case (−10.9% via interval
/// selection).  Segment targets are reconstructed from its Green500-era
/// scale (~28 kW under HPL) with an in-core GPU tail strong enough to
/// reproduce the reported gaming gain.
[[nodiscard]] const ProfiledSystem& tsubame_kfc();

/// The six Table 3/4 fleet systems, in the paper's row order.
[[nodiscard]] const std::vector<FleetSystem>& table4_systems();

/// Looks up a fleet system by name; throws if absent.
[[nodiscard]] const FleetSystem& fleet_system(const std::string& name);

/// Builds the calibrated full-run profile for a Table 2 system.
[[nodiscard]] CalibratedSystemProfile make_profile(const ProfiledSystem& sys);

/// Builds the workload model for a fleet system.
[[nodiscard]] std::shared_ptr<const Workload> make_workload(
    const FleetSystem& sys);

/// Generates the per-node mean powers of a fleet system.  With
/// `condition_exact`, the sample is affine-conditioned to the published
/// (mu, sigma) to the digit (used by the Table 4 bench); otherwise the
/// statistics match in expectation only.
[[nodiscard]] std::vector<double> make_fleet_powers(const FleetSystem& sys,
                                                    std::uint64_t seed,
                                                    bool condition_exact);

/// L-CSC node SKU for the §5 case study: 4x AMD FirePro S9150 per node.
[[nodiscard]] NodeSpec lcsc_node_spec();

/// Number of L-CSC compute nodes (160 in the Green500 configuration).
[[nodiscard]] std::size_t lcsc_node_count();

/// Titan XK7 node SKU (1x Opteron 6274 + 1x Tesla K20X).  The ORNL
/// measurement in Table 3/4 covers the *GPUs* of 1000 such nodes under
/// Rodinia CFD; NodeInstance::gpu_power gives that scope.
[[nodiscard]] NodeSpec titan_node_spec();

/// The Rodinia CFD GPU activity that reproduces Titan's published
/// per-GPU mean of 90.74 W on this SKU.
[[nodiscard]] double titan_rodinia_gpu_activity();

}  // namespace pv::catalog
