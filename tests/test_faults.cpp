// Unit tests for the meter fault models: dropout, bursts, stuck sensors,
// spikes, clipping, meter death, and the stuck-run detector.

#include "meter/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace pv {
namespace {

PowerTrace noisy_trace(std::size_t n, std::uint64_t seed = 1,
                       double mean = 400.0) {
  Rng rng(seed);
  std::vector<double> w(n);
  for (auto& v : w) v = mean + rng.normal(0.0, 3.0);
  return PowerTrace(Seconds{0.0}, Seconds{1.0}, std::move(w));
}

const TimeWindow kWindow{Seconds{0.0}, Seconds{1000.0}};

TEST(FaultSpec, DefaultIsFaultFree) {
  EXPECT_FALSE(FaultSpec{}.any());
  EXPECT_FALSE(FaultSpec::none().any());
  EXPECT_TRUE(FaultSpec::mild().any());
  EXPECT_TRUE(FaultSpec::harsh().any());
}

TEST(Faults, NoFaultsPassThroughUntouched) {
  const PowerTrace clean = noisy_trace(200);
  Rng rng(5);
  FaultEvents ev;
  const GappyTrace g =
      inject_faults(clean, FaultSpec::none(), MeterFate{}, rng, &ev);
  EXPECT_EQ(g.valid_count(), 200u);
  EXPECT_EQ(ev.samples_dropped + ev.samples_dead + ev.samples_stuck +
                ev.samples_spiked + ev.samples_clipped,
            0u);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_DOUBLE_EQ(g.trace().watt_at(i), clean.watt_at(i));
  }
}

TEST(Faults, DropoutLosesRoughlyTheConfiguredFraction) {
  const PowerTrace clean = noisy_trace(5000);
  FaultSpec spec;
  spec.dropout_prob = 0.10;
  Rng rng(6);
  FaultEvents ev;
  const GappyTrace g = inject_faults(clean, spec, MeterFate{}, rng, &ev);
  const double lost = static_cast<double>(ev.samples_dropped) / 5000.0;
  EXPECT_NEAR(lost, 0.10, 0.02);
  EXPECT_EQ(g.valid_count(), 5000u - ev.samples_dropped);
}

TEST(Faults, BurstOutagesProduceContiguousGaps) {
  const PowerTrace clean = noisy_trace(3600);
  FaultSpec spec;
  spec.burst_rate_per_hour = 4.0;
  spec.burst_mean_s = 60.0;
  Rng rng(7);
  const GappyTrace g = inject_faults(clean, spec, MeterFate{}, rng);
  const GapStats s = g.gap_stats();
  EXPECT_GT(s.missing, 0u);
  // Bursts are long: the longest gap dwarfs a single sample.
  EXPECT_GE(s.longest_gap, 10u);
}

TEST(Faults, MeterDeathKillsEverythingAfterDeathTime) {
  const PowerTrace clean = noisy_trace(100);
  MeterFate fate;
  fate.dies = true;
  fate.death_time_s = 40.0;
  Rng rng(8);
  FaultEvents ev;
  const GappyTrace g =
      inject_faults(clean, FaultSpec::none(), fate, rng, &ev);
  EXPECT_EQ(ev.samples_dead, 60u);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_TRUE(g.valid_at(i));
  for (std::size_t i = 40; i < 100; ++i) EXPECT_FALSE(g.valid_at(i));
}

TEST(Faults, StuckSensorFreezesAtLastValue) {
  const PowerTrace clean = noisy_trace(100);
  MeterFate fate;
  fate.sticks = true;
  fate.stuck_begin_s = 20.0;
  fate.stuck_end_s = 60.0;
  Rng rng(9);
  FaultEvents ev;
  const GappyTrace g =
      inject_faults(clean, FaultSpec::none(), fate, rng, &ev);
  EXPECT_EQ(ev.samples_stuck, 40u);
  const double frozen = g.trace().watt_at(19);
  for (std::size_t i = 20; i < 60; ++i) {
    EXPECT_DOUBLE_EQ(g.trace().watt_at(i), frozen) << "i=" << i;
    EXPECT_TRUE(g.valid_at(i));  // stuck readings arrive "valid"
  }
  EXPECT_NE(g.trace().watt_at(60), frozen);
}

TEST(Faults, SpikesMultiplyReadings) {
  const PowerTrace clean = noisy_trace(2000);
  FaultSpec spec;
  spec.spike_prob = 0.01;
  spec.spike_max_gain = 5.0;
  Rng rng(10);
  FaultEvents ev;
  const GappyTrace g = inject_faults(clean, spec, MeterFate{}, rng, &ev);
  EXPECT_GT(ev.samples_spiked, 0u);
  // Spiked readings are at least 1.5x the clean value.
  std::size_t big = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g.trace().watt_at(i) > 1.4 * clean.watt_at(i)) ++big;
  }
  EXPECT_EQ(big, ev.samples_spiked);
}

TEST(Faults, ClippingSaturatesAtFullScale) {
  const PowerTrace clean = noisy_trace(500, 2, 400.0);
  FaultSpec spec;
  spec.clip_max_w = 398.0;
  Rng rng(11);
  FaultEvents ev;
  const GappyTrace g = inject_faults(clean, spec, MeterFate{}, rng, &ev);
  EXPECT_GT(ev.samples_clipped, 0u);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_LE(g.trace().watt_at(i), 398.0);
  }
}

TEST(Faults, InjectionIsDeterministicPerSeed) {
  const PowerTrace clean = noisy_trace(1000);
  const FaultSpec spec = FaultSpec::harsh();
  Rng fate_a(33), fate_b(33);
  const MeterFate fa = draw_meter_fate(spec, kWindow, fate_a);
  const MeterFate fb = draw_meter_fate(spec, kWindow, fate_b);
  EXPECT_EQ(fa.dies, fb.dies);
  EXPECT_DOUBLE_EQ(fa.death_time_s, fb.death_time_s);
  Rng ra(44), rb(44);
  const GappyTrace ga = inject_faults(clean, spec, fa, ra);
  const GappyTrace gb = inject_faults(clean, spec, fb, rb);
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) {
    EXPECT_EQ(ga.valid_at(i), gb.valid_at(i));
    EXPECT_DOUBLE_EQ(ga.trace().watt_at(i), gb.trace().watt_at(i));
  }
}

TEST(Faults, FlagStuckRunsInvalidatesFrozenStretch) {
  // Real signal, then 30 frozen samples, then real again.
  std::vector<double> w;
  Rng rng(12);
  for (int i = 0; i < 20; ++i) w.push_back(400.0 + rng.normal(0.0, 2.0));
  for (int i = 0; i < 30; ++i) w.push_back(w.back());
  for (int i = 0; i < 20; ++i) w.push_back(400.0 + rng.normal(0.0, 2.0));
  GappyTrace g = GappyTrace::fully_valid(
      PowerTrace(Seconds{0.0}, Seconds{1.0}, std::move(w)));
  const std::size_t flagged = flag_stuck_runs(g, 5);
  // The run is 31 identical values (the honest last reading + 30 repeats);
  // everything but the first is flagged.
  EXPECT_EQ(flagged, 30u);
  EXPECT_TRUE(g.valid_at(19));
  for (std::size_t i = 20; i < 50; ++i) EXPECT_FALSE(g.valid_at(i));
  EXPECT_TRUE(g.valid_at(50));
}

TEST(Faults, FlagStuckRunsSparesShortRepeats) {
  // 3 identical readings < min_run of 5: an honest flat stretch survives.
  std::vector<double> w{1, 2, 3, 3, 3, 4, 5};
  GappyTrace g = GappyTrace::fully_valid(
      PowerTrace(Seconds{0.0}, Seconds{1.0}, std::move(w)));
  EXPECT_EQ(flag_stuck_runs(g, 5), 0u);
  EXPECT_EQ(g.valid_count(), 7u);
}

TEST(FaultPlan, EnabledAndForcedDead) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.dead_meters = {3, 9};
  EXPECT_TRUE(plan.enabled());
  EXPECT_TRUE(plan.forced_dead(3));
  EXPECT_FALSE(plan.forced_dead(4));
  FaultPlan spiky;
  spiky.spec.spike_prob = 0.01;
  EXPECT_TRUE(spiky.enabled());
}

TEST(Faults, FateRespectsProbabilities) {
  FaultSpec never;
  Rng rng(13);
  const MeterFate f = draw_meter_fate(never, kWindow, rng);
  EXPECT_FALSE(f.dies);
  EXPECT_FALSE(f.sticks);

  FaultSpec always;
  always.death_prob = 1.0;
  always.stuck_prob = 1.0;
  Rng rng2(14);
  const MeterFate g = draw_meter_fate(always, kWindow, rng2);
  EXPECT_TRUE(g.dies);
  EXPECT_GE(g.death_time_s, 0.0);
  EXPECT_LE(g.death_time_s, 1000.0);
  EXPECT_TRUE(g.sticks);
  EXPECT_GT(g.stuck_end_s, g.stuck_begin_s);
}

}  // namespace
}  // namespace pv
