#pragma once
// Crash-safe write-ahead journal for collection campaigns.
//
// A long-running collection must survive its own process dying: every
// completed unit of work is appended to an on-disk journal *before* it is
// considered collected, so a restart can replay the journal and continue
// where the dead run stopped.  The format is deliberately dumb — one text
// line per record, each protected by its own CRC32 — because dumb formats
// have dumb failure modes: a crash mid-append leaves exactly one torn
// trailing line, which replay detects (bad CRC) and drops.
//
// Layout:
//   H <fingerprint-hex> <crc32-hex>        header: binds the journal to a
//                                          campaign identity (seed + config)
//   R <payload> <crc32-hex>                one record per line
//
// Payloads are opaque to this layer (no '\n' allowed); the collect
// subsystem encodes per-meter readings into them.  Doubles inside payloads
// must be printed with max_digits10 so replayed values are bit-identical
// to the originals — that is what makes kill-and-resume reports byte-equal
// to uninterrupted runs.

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace pv {

/// CRC32 (IEEE 802.3 polynomial, reflected) of a byte string.
[[nodiscard]] std::uint32_t crc32(const std::string& data);

/// Append-only journal writer.  Each append is flushed to the OS before
/// returning, so a record either fully precedes a crash or is a torn tail
/// the reader drops.
class WalWriter {
 public:
  /// Creates `path` (truncating any previous file) and writes the header.
  WalWriter(const std::string& path, std::uint64_t fingerprint);
  /// Opens `path` for appending after a replay validated its header.
  static WalWriter append_to(const std::string& path,
                             std::uint64_t fingerprint);

  /// Appends one record line.  `payload` must not contain newlines.
  void append(const std::string& payload);

  [[nodiscard]] std::size_t records_written() const { return written_; }

 private:
  WalWriter() = default;
  std::ofstream out_;
  std::size_t written_ = 0;
};

/// Result of replaying a journal.
struct WalReplay {
  bool exists = false;             ///< file was present and had a header
  std::uint64_t fingerprint = 0;   ///< campaign identity from the header
  std::vector<std::string> records;
  std::size_t torn_lines = 0;      ///< trailing lines dropped (bad CRC/format)
};

/// Replays `path`.  Missing file -> exists=false.  A malformed header
/// throws (the file is not a journal); malformed or torn record lines end
/// the replay — everything after the first bad line is dropped and
/// counted, because an append-only log is only trustworthy up to its first
/// tear.
[[nodiscard]] WalReplay replay_wal(const std::string& path);

}  // namespace pv
