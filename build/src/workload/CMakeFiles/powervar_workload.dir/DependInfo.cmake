
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/calibration.cpp" "src/workload/CMakeFiles/powervar_workload.dir/calibration.cpp.o" "gcc" "src/workload/CMakeFiles/powervar_workload.dir/calibration.cpp.o.d"
  "/root/repo/src/workload/hpl.cpp" "src/workload/CMakeFiles/powervar_workload.dir/hpl.cpp.o" "gcc" "src/workload/CMakeFiles/powervar_workload.dir/hpl.cpp.o.d"
  "/root/repo/src/workload/imbalance.cpp" "src/workload/CMakeFiles/powervar_workload.dir/imbalance.cpp.o" "gcc" "src/workload/CMakeFiles/powervar_workload.dir/imbalance.cpp.o.d"
  "/root/repo/src/workload/noise.cpp" "src/workload/CMakeFiles/powervar_workload.dir/noise.cpp.o" "gcc" "src/workload/CMakeFiles/powervar_workload.dir/noise.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/workload/CMakeFiles/powervar_workload.dir/profiles.cpp.o" "gcc" "src/workload/CMakeFiles/powervar_workload.dir/profiles.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/powervar_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/powervar_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/powervar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/powervar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/powervar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
