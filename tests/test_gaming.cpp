// Unit tests for the gaming analyses (§3 windows, §5 DVFS/VID/fans).

#include "core/gaming.hpp"

#include <gtest/gtest.h>

#include "sim/catalog.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

TEST(WindowGaming, LcscProfileYieldsLargeReduction) {
  const auto prof = catalog::make_profile(catalog::table2_systems()[3]);
  const PowerTrace trace = prof.full_run_trace(Seconds{10.0});
  const auto result = analyze_window_gaming(trace, prof.phases());
  EXPECT_NEAR(result.full_core_avg.value(), 59100.0, 59100.0 * 0.002);
  // The paper reports ~23.9% efficiency improvement for L-CSC via interval
  // tweaking; inside the *legal* middle-80% region our calibrated profile
  // yields ~11% power reduction, and the full legal-window spread exceeds
  // 20% — the headline §1 number.
  EXPECT_GT(result.best_reduction, 0.08);
  EXPECT_LT(result.best_reduction, 0.35);
  EXPECT_GT(result.spread, 0.18);
  // The best window sits late in the run (the tail).
  const RunPhases p = prof.phases();
  EXPECT_GT(result.best_window.window.begin.value(),
            p.core_begin().value() + 0.5 * p.core.value());
}

TEST(WindowGaming, FlatProfileCannotBeGamed) {
  const auto prof = catalog::make_profile(catalog::table2_systems()[0]);
  const PowerTrace trace = prof.full_run_trace(Seconds{30.0});
  const auto result = analyze_window_gaming(trace, prof.phases());
  EXPECT_LT(result.best_reduction, 0.01);  // Colosse: nothing to exploit
  EXPECT_LT(result.spread, 0.02);
}

TEST(WindowGaming, SpreadIsBestPlusWorst) {
  const auto prof = catalog::make_profile(catalog::table2_systems()[2]);
  const PowerTrace trace = prof.full_run_trace(Seconds{10.0});
  const auto r = analyze_window_gaming(trace, prof.phases());
  EXPECT_GE(r.worst_window.mean.value(), r.best_window.mean.value());
  EXPECT_NEAR(r.spread,
              (r.worst_window.mean.value() - r.best_window.mean.value()) /
                  r.full_core_avg.value(),
              1e-12);
}

TEST(MinStableVoltage, MatchesLcscDataPoint) {
  // A mid-ladder ASIC (VID ~ 1.09 V at 900 MHz) should need ~1.02 V at
  // 774 MHz — the voltage the L-CSC submission used.
  const GpuSpec spec = catalog::lcsc_node_spec().gpu;
  const GpuModel gpu(spec, GpuAsic{5, 1.0});  // 1.09 V default
  const Volts v = min_stable_voltage(gpu, megahertz(774.0));
  EXPECT_NEAR(v.value(), 1.018, 0.01);
  // Monotone in frequency.
  EXPECT_LT(min_stable_voltage(gpu, megahertz(600.0)).value(), v.value());
  EXPECT_THROW(min_stable_voltage(gpu, Hertz{0.0}), contract_error);
}

TEST(DvfsSearch, FindsEfficiencyGainOverDefault) {
  Rng rng(1);
  const NodeInstance node(catalog::lcsc_node_spec(), rng);
  const auto result = dvfs_search(node, megahertz(500.0), megahertz(950.0),
                                  megahertz(25.0));
  // The paper: ~22% efficiency gain through DVFS on L-CSC.
  EXPECT_GT(result.gain, 0.05);
  EXPECT_LT(result.gain, 0.60);
  // The optimum is below the 900 MHz default.
  EXPECT_LT(result.best_op.frequency.value(), 900e6);
  EXPECT_GT(result.best_gflops_per_watt, result.default_gflops_per_watt);
}

TEST(DvfsSearch, Guards) {
  NodeSpec cpu_only;
  cpu_only.gpu_count = 0;
  Rng rng(2);
  const NodeInstance node(cpu_only, rng);
  EXPECT_THROW(dvfs_search(node, megahertz(500.0), megahertz(900.0),
                           megahertz(50.0)),
               contract_error);
}

TEST(VidScreening, LowVidNodesLookBetter) {
  const auto fleet = build_fleet(catalog::lcsc_node_spec(), 160, 3);
  const auto power_bias = vid_screening_power_bias(
      fleet, NodeSettings::defaults(), 16);
  // Screened (low-VID) nodes draw less power than the fleet mean.
  EXPECT_LT(power_bias.bias, 0.0);
  const auto eff_bias = vid_screening_efficiency_bias(
      fleet, NodeSettings::defaults(), 16);
  // And look more efficient.
  EXPECT_GT(eff_bias.bias, 0.0);
}

TEST(VidScreening, NoBiasUnderFixedVoltage) {
  // §5: at a fixed operating point the VID no longer predicts power, so
  // screening buys (almost) nothing.
  const auto fleet = build_fleet(catalog::lcsc_node_spec(), 160, 4);
  const auto gamed = vid_screening_power_bias(
      fleet, NodeSettings::tuned_lcsc(), 16);
  const auto gamed_default = vid_screening_power_bias(
      fleet, NodeSettings::defaults(), 16);
  EXPECT_LT(std::fabs(gamed.bias), std::fabs(gamed_default.bias));
}

TEST(FanPolicy, PinningShrinksFleetCv) {
  const auto fleet = build_fleet(catalog::lcsc_node_spec(), 160, 5);
  const auto impact = fan_policy_impact(fleet, NodeSettings::defaults(),
                                        /*pinned_speed=*/0.5);
  EXPECT_LT(impact.cv_pinned, impact.cv_auto);
  // Pinned at a single speed the fan contribution to the spread is gone;
  // the fan *mean* power is still nonzero.
  EXPECT_GT(impact.mean_fan_power_pinned_w, 0.0);
}

TEST(FanPolicy, EmptyFleetRejected) {
  EXPECT_THROW(fan_policy_impact({}, NodeSettings::defaults(), 0.5),
               contract_error);
}

}  // namespace
}  // namespace pv
