// Unit tests for ClusterPowerModel and its lowering into the electrical
// hierarchy.

#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"
#include "workload/hpl.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

ClusterPowerModel small_cluster(double static_fraction = 0.35) {
  auto workload =
      std::make_shared<FirestarterWorkload>(hours(1.0), 1.0, minutes(2.0),
                                            minutes(1.0));
  std::vector<double> means{400.0, 410.0, 390.0, 405.0};
  return ClusterPowerModel("mini", std::move(means), std::move(workload),
                           static_fraction);
}

TEST(Cluster, NodeMeansAreReproducedAsTimeAverages) {
  const ClusterPowerModel cluster = small_cluster();
  const RunPhases p = cluster.phases();
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    const double avg = average_over(
        [&](double t) { return cluster.node_power_w(i, t); },
        p.core_begin().value(), p.core_end().value());
    EXPECT_NEAR(avg, cluster.node_means()[i], 1e-6) << "node " << i;
  }
}

TEST(Cluster, SystemPowerIsSumOfNodes) {
  const ClusterPowerModel cluster = small_cluster();
  const double t = cluster.phases().core_begin().value() + 100.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < cluster.node_count(); ++i) {
    sum += cluster.node_power_w(i, t);
  }
  EXPECT_NEAR(cluster.system_power_w(t), sum, 1e-9);
}

TEST(Cluster, SystemCoreMeanIsSumOfNodeMeans) {
  const ClusterPowerModel cluster = small_cluster();
  EXPECT_NEAR(cluster.system_core_mean().value(), 1605.0, 1e-9);
}

TEST(Cluster, StaticFractionBoundsTheDynamicRange) {
  // With static fraction 1 - eps the profile barely moves; with 0 the
  // power is fully proportional to intensity.
  auto hpl = std::make_shared<HplWorkload>(HplParams::gpu_incore(),
                                           hours(1.0));
  std::vector<double> means{100.0};
  const ClusterPowerModel rigid("rigid", means, hpl, 0.9);
  const ClusterPowerModel elastic("elastic", means, hpl, 0.0);
  const RunPhases p = hpl->phases();
  const double t_hi = p.core_begin().value() + 0.1 * p.core.value();
  const double t_lo = p.core_end().value() - 1.0;
  const double swing_rigid =
      rigid.node_power_w(0, t_hi) - rigid.node_power_w(0, t_lo);
  const double swing_elastic =
      elastic.node_power_w(0, t_hi) - elastic.node_power_w(0, t_lo);
  EXPECT_GT(swing_elastic, 5.0 * swing_rigid);
}

TEST(Cluster, TracesMatchFunctions) {
  const ClusterPowerModel cluster = small_cluster();
  const PowerTrace core = cluster.system_core_trace(Seconds{10.0});
  EXPECT_NEAR(core.mean_power().value(), 1605.0, 1.0);
  const PowerTrace full = cluster.system_full_trace(Seconds{10.0});
  EXPECT_GT(full.size(), core.size());
  // Setup power lower than core power.
  EXPECT_LT(full.watt_at(0), core.watt_at(0));
}

TEST(Cluster, ConstructionGuards) {
  auto w = std::make_shared<FirestarterWorkload>(hours(1.0));
  EXPECT_THROW(ClusterPowerModel("x", {}, w), contract_error);
  EXPECT_THROW(ClusterPowerModel("x", {0.0}, w), contract_error);
  EXPECT_THROW(ClusterPowerModel("x", {1.0}, nullptr), contract_error);
  EXPECT_THROW(ClusterPowerModel("x", {1.0}, w, 1.0), contract_error);
  const ClusterPowerModel c = small_cluster();
  EXPECT_THROW(c.node_power_w(99, 0.0), contract_error);
}

TEST(MakeSystemPowerModel, StructureAndScale) {
  const ClusterPowerModel cluster = small_cluster();
  const SystemPowerModel sys = make_system_power_model(
      cluster, /*nodes_per_rack=*/2, PsuEfficiencyCurve::platinum(),
      AuxiliaryConfig{});
  EXPECT_EQ(sys.node_count(), 4u);
  EXPECT_EQ(sys.rack_count(), 2u);
  const double t = cluster.phases().core_begin().value() + 10.0;
  // AC > DC for every node.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(sys.node_ac_w(i, t), sys.node_dc_w(i, t));
  }
  // Facility includes auxiliaries.
  EXPECT_GT(sys.facility_w(t), sys.compute_ac_w(t));
}

TEST(MakeSystemPowerModel, AuxiliarySizingFollowsConfig) {
  const ClusterPowerModel cluster = small_cluster();
  AuxiliaryConfig aux;
  aux.network_frac = 0.10;
  aux.storage_frac = 0.0;
  aux.infrastructure_frac = 0.0;
  aux.cooling_frac = 0.0;
  const SystemPowerModel sys = make_system_power_model(
      cluster, 2, PsuEfficiencyCurve::platinum(), aux);
  const double compute_mean = cluster.system_core_mean().value();
  EXPECT_NEAR(sys.auxiliary_ac_w(Subsystem::kNetwork, 0.0),
              compute_mean * 0.10, 1e-9);
  EXPECT_DOUBLE_EQ(sys.auxiliary_ac_w(Subsystem::kStorage, 0.0), 0.0);
}

TEST(MakeSystemPowerModel, NodeDcMatchesClusterGroundTruth) {
  const ClusterPowerModel cluster = small_cluster();
  const SystemPowerModel sys = make_system_power_model(
      cluster, 2, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{});
  const double t = cluster.phases().core_begin().value() + 500.0;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(sys.node_dc_w(i, t), cluster.node_power_w(i, t));
  }
}

}  // namespace
}  // namespace pv
