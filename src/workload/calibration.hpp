#pragma once
// Segment-average calibration (DESIGN.md §4).
//
// The paper publishes, per system, the average power over the full core
// phase and over its first and last 20% (Table 2).  We reproduce those
// numbers *exactly in expectation* by writing the system power as
//
//     P(tc) = c0 + c1 * phi_warm(tc) + c2 * phi_tail(tc)
//
// where phi_warm is an exponential warm-up bump and phi_tail is the
// efficiency *deficit* of the HPL LU-progress model (hpl.hpp) — i.e. the
// physically derived tail shape.  The three published segment averages are
// linear in (c0, c1, c2), so a 3x3 solve pins them exactly.  Zero-mean
// AR(1) noise can then be layered on for realism without biasing averages.

#include <array>
#include <cstdint>
#include <string>

#include "trace/time_series.hpp"
#include "workload/hpl.hpp"

namespace pv {

/// The three published segment averages for one system (Table 2).
struct SegmentTargets {
  Watts core_avg{0.0};
  Watts first20_avg{0.0};
  Watts last20_avg{0.0};
};

/// A system-level power profile calibrated to hit SegmentTargets exactly.
class CalibratedSystemProfile final : public Workload {
 public:
  /// `shape` selects the HPL regime donating the tail shape; `phases` give
  /// the run's timing; `targets` are the published averages.
  /// Setup/teardown power are fractions of the core average.
  CalibratedSystemProfile(std::string system_name, HplParams shape,
                          RunPhases run_phases, SegmentTargets targets,
                          double setup_power_frac = 0.6,
                          double teardown_power_frac = 0.5);

  [[nodiscard]] std::string name() const override { return system_name_; }
  [[nodiscard]] RunPhases phases() const override { return phases_; }
  /// Intensity is the power relative to its core-phase maximum.
  [[nodiscard]] double intensity(double t) const override;

  /// Deterministic (noise-free) system power at absolute run time t.
  [[nodiscard]] double system_power_w(double t) const;

  /// The calibrated coefficients (c0, c1, c2) in watts.
  [[nodiscard]] std::array<double, 3> coefficients() const { return coeff_; }

  /// Samples the core phase into a trace at interval dt, optionally
  /// modulated by AR(1) noise: P * (1 + noise), noise sd
  /// `noise_sigma_frac`, lag-1 correlation `noise_rho`.
  [[nodiscard]] PowerTrace core_phase_trace(Seconds dt,
                                            double noise_sigma_frac = 0.0,
                                            double noise_rho = 0.9,
                                            std::uint64_t seed = 1) const;

  /// Same, but covering the whole run (setup + core + teardown).
  [[nodiscard]] PowerTrace full_run_trace(Seconds dt,
                                          double noise_sigma_frac = 0.0,
                                          double noise_rho = 0.9,
                                          std::uint64_t seed = 1) const;

 private:
  std::string system_name_;
  HplWorkload shape_;
  RunPhases phases_;
  SegmentTargets targets_;
  double setup_power_frac_;
  double teardown_power_frac_;
  std::array<double, 3> coeff_{};
  double peak_core_power_ = 0.0;
  double smooth_tail_weight_ = 0.0;

  [[nodiscard]] double phi_warm(double tc) const;
  [[nodiscard]] double phi_tail(double tc) const;
  void calibrate();
  [[nodiscard]] PowerTrace make_trace(Seconds begin, Seconds end, Seconds dt,
                                      double noise_sigma_frac, double noise_rho,
                                      std::uint64_t seed) const;
};

}  // namespace pv
