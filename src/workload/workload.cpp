#include "workload/workload.hpp"

#include "util/expects.hpp"

namespace pv {

double average_over(const std::function<double(double)>& f, double a, double b,
                    std::size_t steps) {
  PV_EXPECTS(f != nullptr, "null integrand");
  PV_EXPECTS(b > a, "empty integration interval");
  PV_EXPECTS(steps > 0, "need at least one panel");
  const double h = (b - a) / static_cast<double>(steps);
  double acc = 0.0;
  for (std::size_t i = 0; i < steps; ++i) {
    acc += f(a + (static_cast<double>(i) + 0.5) * h);
  }
  return acc / static_cast<double>(steps);
}

double Workload::core_mean_intensity() const {
  const RunPhases p = phases();
  return average_over([this](double t) { return intensity(t); },
                      p.core_begin().value(), p.core_end().value());
}

}  // namespace pv
