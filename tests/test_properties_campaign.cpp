// Campaign-level property tests: statements that must hold across many
// seeds rather than for one pinned example.
//
//   * determinism — re-running the exact same campaign configuration
//     (including faults + reconciliation and the threaded fan-out)
//     reproduces every reported byte;
//   * Eq. 1 coverage — the 95% t-CI on the node mean contains the true
//     population mean node power at at least the nominal rate over 200
//     independently seeded L1 campaigns (ignoring the finite-population
//     correction only makes the interval conservative);
//   * monotone cohorts — metering more nodes never widens the expected
//     CI (halfwidth ~ t_{n-1} * s / sqrt(n));
//   * no false convictions — the byzantine defense never quarantines or
//     corrects a meter on a fault-free campaign.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "core/campaign.hpp"
#include "core/plan.hpp"
#include "core/scenario.hpp"

namespace pv {
namespace {

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
};

// The canonical synthetic rig via core/scenario — the historical inline
// construction (typical-CPU fleet at cv 0.03, pinned fleet seed 1234 so
// every trial sees the same machine) expressed as overrides.
Rig make_rig(std::size_t nodes, Level level, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "property-rig";
  spec.nodes = nodes;
  spec.cv = 0.03;
  spec.fleet_seed = 1234;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.plan = built.plan(MethodologySpec::get(level, Revision::kV2015), seed);
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  return rig;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

bool identical_reports(const CampaignResult& a, const CampaignResult& b) {
  if (!bits_equal(a.submitted_power.value(), b.submitted_power.value()))
    return false;
  if (!bits_equal(a.submitted_energy.value(), b.submitted_energy.value()))
    return false;
  if (a.node_mean_powers_w.size() != b.node_mean_powers_w.size()) return false;
  for (std::size_t i = 0; i < a.node_mean_powers_w.size(); ++i) {
    if (!bits_equal(a.node_mean_powers_w[i], b.node_mean_powers_w[i]))
      return false;
  }
  return bits_equal(a.node_mean_ci.lo, b.node_mean_ci.lo) &&
         bits_equal(a.node_mean_ci.hi, b.node_mean_ci.hi) &&
         bits_equal(a.relative_error, b.relative_error) &&
         a.data_quality.integrity.meters_quarantined ==
             b.data_quality.integrity.meters_quarantined;
}

TEST(CampaignProperties, RerunIsByteIdentical) {
  for (const std::uint64_t seed : {3u, 17u, 99u}) {
    const Rig rig = make_rig(96, Level::kL3, seed);
    CampaignConfig cfg;
    cfg.seed = seed;
    cfg.meter_interval_override = Seconds{5.0};
    cfg.faults.spec = FaultSpec::harsh();
    cfg.faults.byzantine_meters = {rig.plan.node_indices[2]};
    cfg.reconcile.enabled = true;
    cfg.threads = 4;
    const auto first =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
    const auto second =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
    EXPECT_TRUE(identical_reports(first, second)) << "seed " << seed;
  }
}

// Coverage of the Eq. 1 interval: each trial draws a fresh L1 plan (fresh
// node selection, fresh window position), runs it with the default
// pdu-grade meters, and checks the reported CI against that trial's true
// population mean node power — computed by re-running the *same plan*
// over all nodes with perfect meters, so estimator and truth integrate
// the identical windows.
TEST(CampaignProperties, Eq1CoverageAtLeastNominal) {
  constexpr std::size_t kTrials = 200;
  constexpr std::size_t kNodes = 120;
  std::size_t contained = 0;
  for (std::size_t trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t seed = 1000 + trial;
    Rig rig = make_rig(kNodes, Level::kL1, seed);

    CampaignConfig cfg;
    cfg.seed = seed;
    cfg.meter_interval_override = Seconds{10.0};
    const auto measured =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);

    MeasurementPlan all = rig.plan;
    all.node_indices.resize(kNodes);
    std::iota(all.node_indices.begin(), all.node_indices.end(), 0);
    CampaignConfig exact = cfg;
    exact.meter_accuracy = MeterAccuracy::perfect();
    const auto census =
        run_campaign(*rig.cluster, *rig.electrical, all, exact);
    const double truth =
        std::accumulate(census.node_mean_powers_w.begin(),
                        census.node_mean_powers_w.end(), 0.0) /
        static_cast<double>(census.node_mean_powers_w.size());

    if (measured.node_mean_ci.contains(truth)) ++contained;
  }
  // Nominal 95%; 200 binomial trials put ~3 sigma at ~0.046, and the
  // ignored finite-population correction only pushes coverage up.
  EXPECT_GE(contained, static_cast<std::size_t>(0.90 * kTrials))
      << "coverage " << contained << "/" << kTrials;
}

// Expected CI halfwidth must shrink (never grow) as the metered cohort
// grows.  Averaged over seeds so the statement is about the estimator,
// not one lucky draw; perfect meters so the only scatter is real
// node-to-node variability.
TEST(CampaignProperties, LargerCohortsNeverWidenExpectedCi) {
  constexpr std::size_t kNodes = 128;
  constexpr std::size_t kSeeds = 20;
  const std::size_t cohorts[] = {8, 16, 32, 64};
  std::vector<double> mean_halfwidth;
  for (const std::size_t n : cohorts) {
    double acc = 0.0;
    for (std::size_t s = 0; s < kSeeds; ++s) {
      const std::uint64_t seed = 500 + s;
      Rig rig = make_rig(kNodes, Level::kL1, seed);
      // Random n-node cohort drawn from the trial's own plan RNG stream.
      std::vector<std::size_t> pool(kNodes);
      std::iota(pool.begin(), pool.end(), 0);
      Rng shuffle_rng(seed ^ 0xC0F0);
      for (std::size_t i = kNodes - 1; i > 0; --i) {
        const auto j = static_cast<std::size_t>(shuffle_rng.uniform() *
                                                static_cast<double>(i + 1));
        std::swap(pool[i], pool[std::min(j, i)]);
      }
      rig.plan.node_indices.assign(pool.begin(),
                                   pool.begin() + static_cast<long>(n));
      CampaignConfig cfg;
      cfg.seed = seed;
      cfg.meter_interval_override = Seconds{10.0};
      cfg.meter_accuracy = MeterAccuracy::perfect();
      const auto r = run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
      acc += 0.5 * r.node_mean_ci.width();
    }
    mean_halfwidth.push_back(acc / static_cast<double>(kSeeds));
  }
  for (std::size_t i = 1; i < mean_halfwidth.size(); ++i) {
    EXPECT_LE(mean_halfwidth[i], mean_halfwidth[i - 1])
        << "cohort " << cohorts[i] << " widened the expected CI";
  }
}

// A defense that convicts honest meters is worse than no defense: with
// fault injection off, reconciliation must quarantine and correct nothing
// at any level, for any seed, on either engine.
TEST(CampaignProperties, QuarantineNeverFiresOnCleanRuns) {
  for (const Level level : {Level::kL1, Level::kL3}) {
    for (const std::uint64_t seed : {1u, 7u, 23u, 101u, 202u}) {
      const Rig rig = make_rig(96, level, seed);
      for (const CampaignEngine engine :
           {CampaignEngine::kEager, CampaignEngine::kStreaming}) {
        CampaignConfig cfg;
        cfg.seed = seed;
        cfg.engine = engine;
        cfg.meter_interval_override = Seconds{5.0};
        cfg.reconcile.enabled = true;
        const auto r =
            run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
        EXPECT_TRUE(r.data_quality.reconcile_ran);
        EXPECT_EQ(r.data_quality.integrity.meters_quarantined, 0u)
            << "level " << static_cast<int>(level) << " seed " << seed;
        EXPECT_EQ(r.data_quality.integrity.meters_corrected, 0u)
            << "level " << static_cast<int>(level) << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace pv
