file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_window_gaming.dir/bench_ablation_window_gaming.cpp.o"
  "CMakeFiles/bench_ablation_window_gaming.dir/bench_ablation_window_gaming.cpp.o.d"
  "bench_ablation_window_gaming"
  "bench_ablation_window_gaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_window_gaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
