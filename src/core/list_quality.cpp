#include "core/list_quality.hpp"

#include "util/expects.hpp"

namespace pv {

double ListQualityBreakdown::measured_fraction() const {
  PV_EXPECTS(total > 0, "empty list");
  return static_cast<double>(total - derived) / static_cast<double>(total);
}

double ListQualityBreakdown::level1_share_of_measured() const {
  const std::size_t measured = level1 + level2 + level3;
  PV_EXPECTS(measured > 0, "no measured entries");
  return static_cast<double>(level1) / static_cast<double>(measured);
}

ListQualityBreakdown summarize_quality(
    const std::vector<Submission>& entries) {
  ListQualityBreakdown b;
  b.total = entries.size();
  for (const Submission& s : entries) {
    if (s.provenance == PowerProvenance::kDerived) {
      ++b.derived;
      continue;
    }
    switch (s.level) {
      case Level::kL1: ++b.level1; break;
      case Level::kL2: ++b.level2; break;
      case Level::kL3: ++b.level3; break;
    }
  }
  return b;
}

ListQualityBreakdown november_2014_green500() {
  ListQualityBreakdown b;
  b.total = 267;
  b.derived = 233;
  b.level1 = 28;
  // "only 6 used a higher measurement level" — split unknown; record all
  // six at Level 2 (the paper does not separate them).
  b.level2 = 6;
  b.level3 = 0;
  return b;
}

double expected_list_uncertainty(const ListQualityBreakdown& mix,
                                 Revision level1_rules,
                                 double derived_uncertainty) {
  PV_EXPECTS(mix.total > 0, "empty list");
  PV_EXPECTS(derived_uncertainty >= 0.0 && derived_uncertainty < 1.0,
             "derived uncertainty in [0,1)");
  // Typical relative uncertainties per class, from the paper's findings:
  // v1.2 Level 1 carries the ~20% timing exposure plus sampling error;
  // under the 2015 rules it collapses to the percent level.  L2/L3 are
  // full-core-phase by construction.
  const double l1 = level1_rules == Revision::kV1_2 ? 0.20 : 0.02;
  const double l2 = 0.015;
  const double l3 = 0.005;
  const double total = static_cast<double>(mix.total);
  return (static_cast<double>(mix.derived) * derived_uncertainty +
          static_cast<double>(mix.level1) * l1 +
          static_cast<double>(mix.level2) * l2 +
          static_cast<double>(mix.level3) * l3) /
         total;
}

}  // namespace pv
