#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace pv {
namespace {

struct Prefix {
  double factor;
  const char* symbol;
};

// Chooses the largest prefix whose scaled magnitude is >= 1, so values print
// in the 1..999 range where possible.
std::string with_prefix(double v, const char* unit) {
  static constexpr std::array<Prefix, 7> kPrefixes{{
      {1e15, "P"}, {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"}, {1.0, ""},
      {1e-3, "m"},
  }};
  const double mag = std::fabs(v);
  char buf[64];
  if (mag == 0.0 || !std::isfinite(v)) {
    std::snprintf(buf, sizeof buf, "%.4g %s", v, unit);
    return buf;
  }
  for (const auto& p : kPrefixes) {
    if (mag >= p.factor) {
      std::snprintf(buf, sizeof buf, "%.4g %s%s", v / p.factor, p.symbol, unit);
      return buf;
    }
  }
  std::snprintf(buf, sizeof buf, "%.4g %s", v, unit);
  return buf;
}

// Durations read better as h/min/s than as kiloseconds.
std::string duration_string(double sec) {
  char buf[64];
  const double mag = std::fabs(sec);
  if (mag >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.4g h", sec / 3600.0);
  } else if (mag >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.4g min", sec / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g s", sec);
  }
  return buf;
}

}  // namespace

std::string to_string(Watts w) { return with_prefix(w.value(), "W"); }
std::string to_string(Joules j) { return with_prefix(j.value(), "J"); }
std::string to_string(Seconds s) { return duration_string(s.value()); }
std::string to_string(Volts v) { return with_prefix(v.value(), "V"); }
std::string to_string(Hertz h) { return with_prefix(h.value(), "Hz"); }
std::string to_string(Flops f) { return with_prefix(f.value(), "FLOPS"); }

std::ostream& operator<<(std::ostream& os, Watts w) { return os << to_string(w); }
std::ostream& operator<<(std::ostream& os, Joules j) { return os << to_string(j); }
std::ostream& operator<<(std::ostream& os, Seconds s) { return os << to_string(s); }
std::ostream& operator<<(std::ostream& os, Volts v) { return os << to_string(v); }
std::ostream& operator<<(std::ostream& os, Hertz h) { return os << to_string(h); }
std::ostream& operator<<(std::ostream& os, Flops f) { return os << to_string(f); }

}  // namespace pv
