#!/usr/bin/env bash
# Guards the CLI's error contract: unknown subcommands and malformed or
# out-of-range flags must print a diagnostic on stderr and exit non-zero,
# never limp on with silently-defaulted values (the old atof behavior
# turned '--dropout abc' into '--dropout 0').
#
# Usage: check_cli_errors.sh /path/to/powervar
set -uo pipefail

powervar="${1:?usage: check_cli_errors.sh /path/to/powervar}"
failures=0

# expect_error <description> <expected-stderr-pattern> -- <args...>
expect_error() {
  local what="$1" pattern="$2"
  shift 3
  local out err rc
  out="$("$powervar" "$@" 2>/tmp/pv_cli_err.$$)"
  rc=$?
  err="$(cat /tmp/pv_cli_err.$$)"
  rm -f /tmp/pv_cli_err.$$
  if [[ "$rc" -eq 0 ]]; then
    echo "FAIL: $what: exited 0" >&2
    failures=$((failures + 1))
    return
  fi
  if ! grep -q "$pattern" <<<"$err"; then
    echo "FAIL: $what: stderr lacks '$pattern':" >&2
    printf '%s\n' "$err" >&2
    failures=$((failures + 1))
    return
  fi
  if [[ -n "$out" ]]; then
    echo "FAIL: $what: produced stdout output despite failing" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok: $what (exit $rc)"
}

expect_error "no arguments prints usage" "usage:" --
expect_error "unknown subcommand" "unknown command" -- frobnicate --x 1
expect_error "malformed number (space form)" "expects a number" \
  -- campaign --nodes 64 --dropout abc
expect_error "malformed number (equals form)" "expects a number" \
  -- campaign --nodes 64 --dropout=abc
expect_error "trailing garbage in number" "expects a number" \
  -- campaign --nodes 64 --dropout 0.1x
expect_error "rate above 1" "must be in \[0, 1\]" \
  -- campaign --nodes 64 --dropout 1.5
expect_error "negative rate" "must be in \[0, 1\]" \
  -- collect --nodes 64 --blackhole -0.2
expect_error "dangling option without value" "missing a value" \
  -- campaign --nodes 64 --dropout
expect_error "non-option argument" "expected --option" \
  -- campaign nodes 64
expect_error "missing required option" "missing required option" \
  -- sample-size --cv 0.02 --lambda 0.01
expect_error "bad fault preset" "must be none, mild or harsh" \
  -- campaign --nodes 64 --faults wild
expect_error "resume without checkpoint" "journal path" \
  -- collect --nodes 64 --resume 1
expect_error "typo'd option name" "unknown option" \
  -- collect --nodes 64 --balckhole 0.2
expect_error "option of a different subcommand" "unknown option" \
  -- collect --nodes 64 --dropout 0.1

# expect_exit <description> <expected-exit-code> <expected-stderr-pattern>
# -- <args...>: exact exit codes are part of the contract (2 usage,
# 3 aborted collection, 4 no usable data).
expect_exit() {
  local what="$1" want_rc="$2" pattern="$3"
  shift 4
  local err rc
  "$powervar" "$@" >/dev/null 2>/tmp/pv_cli_err.$$
  rc=$?
  err="$(cat /tmp/pv_cli_err.$$)"
  rm -f /tmp/pv_cli_err.$$
  if [[ "$rc" -ne "$want_rc" ]]; then
    echo "FAIL: $what: exited $rc, want $want_rc" >&2
    failures=$((failures + 1))
    return
  fi
  if ! grep -q "$pattern" <<<"$err"; then
    echo "FAIL: $what: stderr lacks '$pattern':" >&2
    printf '%s\n' "$err" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok: $what (exit $rc)"
}

# A scenario the builders refuse to construct — a node count past the
# supported fleet scale, which would also overflow exact fleet-sample
# accounting — is bad input (exit 2 with the usage text), caught as the
# typed ScenarioError before any allocation happens.
expect_exit "absurd node count exits 2" 2 \
  "exceeds the supported fleet scale" \
  -- campaign --nodes 99999999 --level 1 --seed 7 --interval 10

# A campaign that loses every meter has no number to submit: that is a
# campaign outcome with its own exit code (4), not the generic catch-all.
expect_exit "all node meters dead exits 4" 4 "every node meter was lost" \
  -- campaign --nodes 64 --level 1 --seed 7 --dead 64 --interval 10
expect_exit "all node meters dead, one-line diagnostic" 4 \
  "nothing to extrapolate from" \
  -- campaign --nodes 64 --level 3 --seed 7 --dead 64 --interval 10

# Every subcommand must reject a typo'd flag, not silently default it.
# audit and normality parse their input files before flag validation, so
# they get small valid inputs.
trace_csv=$(mktemp /tmp/pv_cli_trace.XXXXXX.csv)
values_txt=$(mktemp /tmp/pv_cli_values.XXXXXX.txt)
{
  echo "t_s,power_w"
  for t in $(seq 0 120); do echo "$t,100.0"; done
} >"$trace_csv"
printf '1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n' >"$values_txt"

expect_error "sample-size rejects unknown flag" "unknown option" \
  -- sample-size --nodes 1024 --cv 0.02 --lambda 0.01 --bogus 1
expect_error "accuracy rejects unknown flag" "unknown option" \
  -- accuracy --nodes 210 --cv 0.02 --n 4 --bogus 1
expect_error "audit rejects unknown flag" "unknown option" \
  -- audit --trace "$trace_csv" --core-begin 10 --core-end 110 --bogus 1
expect_error "normality rejects unknown flag" "unknown option" \
  -- normality --values "$values_txt" --bogus 1
expect_error "tco rejects unknown flag" "unknown option" \
  -- tco --power-kw 1000 --accuracy 0.01 --bogus 1
expect_error "campaign rejects unknown flag" "unknown option" \
  -- campaign --nodes 64 --bogus 1
expect_error "reconcile rejects unknown flag" "unknown option" \
  -- reconcile --nodes 64 --bogus 1
expect_error "collect rejects unknown flag" "unknown option" \
  -- collect --nodes 64 --bogus 1
rm -f "$trace_csv" "$values_txt"

# ---- serve exit codes -------------------------------------------------
# The service subcommand maps request outcomes to exact exit codes:
# 2 usage, 5 shed, 6 deadline exceeded, 7 corrupt cache (worst response
# in the batch wins; other failures exit 1).  Each recipe below forces
# the outcome deterministically via the seeded chaos plan.
serve_reqs=$(mktemp /tmp/pv_cli_serve.XXXXXX.jsonl)
{
  echo '{"schema":"powervar-request-v1","id":"r1","nodes":24,"interval":10}'
  echo '{"schema":"powervar-request-v1","id":"r2","nodes":24,"interval":10}'
} >"$serve_reqs"

expect_error "serve without --requests is a usage error" \
  "missing required option --requests" \
  -- serve
expect_error "serve with unreadable requests file" "cannot open" \
  -- serve --requests /nonexistent/requests.jsonl

# expect_serve <description> <expected-exit-code> -- <args...>
expect_serve() {
  local what="$1" want_rc="$2"
  shift 3
  local rc
  "$powervar" serve --requests "$serve_reqs" "$@" >/dev/null 2>&1
  rc=$?
  if [[ "$rc" -ne "$want_rc" ]]; then
    echo "FAIL: $what: exited $rc, want $want_rc" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok: $what (exit $rc)"
}

expect_serve "serve usage error exits 2" 2 -- --workers abc
expect_serve "serve clean batch exits 0" 0 -- --workers 2
expect_serve "serve shed requests exit 5" 5 -- --chaos-drain-after 1
expect_serve "serve exhausted deadlines exit 6" 6 -- --chaos-stall 1
expect_serve "serve corrupt strict cache exits 7" 7 \
  -- --strict-cache --chaos-cache 1
# Severity ranking: a corrupt-cache response outranks a shed one.
expect_serve "serve worst response code wins" 7 \
  -- --strict-cache --chaos-cache 1 --chaos-drain-after 1
# An invalid request line is the generic failure, below the typed codes.
echo 'not json at all' >>"$serve_reqs"
expect_serve "serve invalid request line exits 1" 1 -- --workers 2
rm -f "$serve_reqs"

# ---- serve checkpoint/resume exit codes -------------------------------
# A refused checkpoint is its own failure class (exit 8), distinct from
# the generic 1: the operator must know the journal — not the requests —
# is the problem.  Each refusal names its cause on stderr.
serve_reqs=$(mktemp /tmp/pv_cli_serve.XXXXXX.jsonl)
serve_wal=$(mktemp /tmp/pv_cli_serve.XXXXXX.wal)
{
  echo '{"schema":"powervar-request-v1","id":"c1","nodes":24,"interval":10}'
  echo '{"schema":"powervar-request-v1","id":"c2","nodes":24,"interval":10}'
} >"$serve_reqs"

expect_exit "serve --resume with a missing checkpoint exits 8" 8 \
  "missing or empty" \
  -- serve --resume /nonexistent/drain.wal
expect_exit "serve --crash-after without --checkpoint is a usage error" 2 \
  "needs a --checkpoint journal" \
  -- serve --requests "$serve_reqs" --crash-after 1

# Build a real drain checkpoint (hold everything, exit 0), then torture
# it: a mid-record truncation and a foreign (collect-format) journal must
# both be refused outright, never half-resumed.
if ! "$powervar" serve --requests "$serve_reqs" --drain-after 0 \
     --checkpoint "$serve_wal" >/dev/null 2>&1; then
  echo "FAIL: could not produce a drain checkpoint for the refusal cases" >&2
  failures=$((failures + 1))
else
  wal_bytes=$(wc -c <"$serve_wal")
  head -c "$((wal_bytes - 3))" "$serve_wal" >"$serve_wal.torn"
  expect_exit "serve --resume with a torn checkpoint exits 8" 8 \
    "torn line" \
    -- serve --resume "$serve_wal.torn"
  rm -f "$serve_wal.torn"
fi

collect_wal=$(mktemp /tmp/pv_cli_collect.XXXXXX.wal)
if ! "$powervar" collect --nodes 24 --seed 7 --interval 10 \
     --checkpoint "$collect_wal" >/dev/null 2>&1; then
  echo "FAIL: could not produce a collect journal for the fingerprint case" >&2
  failures=$((failures + 1))
else
  expect_exit "serve --resume refuses a foreign-fingerprint journal" 8 \
    "foreign fingerprint" \
    -- serve --resume "$collect_wal"
fi
rm -f "$collect_wal"

# A simulated crash mid-drain is the dedicated exit 3 (same class as a
# crashed collect), not a checkpoint refusal and not the generic 1.
expect_exit "serve --crash-after dies with exit 3" 3 "crash" \
  -- serve --requests "$serve_reqs" --drain-after 0 \
     --checkpoint "$serve_wal" --crash-after 1

# Malformed lines on the streaming stdin front-end are the generic
# failure (1): the batch keeps going, the exit code remembers.
stream_rc=0
printf '%s\n%s\n' \
  '{"schema":"powervar-request-v1","id":"s1","nodes":24,"interval":10}' \
  'this is not a request' |
  "$powervar" serve --requests - --stream >/dev/null 2>&1 || stream_rc=$?
if [[ "$stream_rc" -ne 1 ]]; then
  echo "FAIL: malformed streamed line: exited $stream_rc, want 1" >&2
  failures=$((failures + 1))
else
  echo "ok: malformed streamed request line exits 1 (exit $stream_rc)"
fi

# An out-of-range priority is invalid at admission, like any bad field.
echo '{"schema":"powervar-request-v1","id":"p0","nodes":24,"interval":10,"priority":0}' \
  >"$serve_reqs"
expect_serve "serve rejects priority 0 with exit 1" 1 -- --workers 1
rm -f "$serve_reqs" "$serve_wal"

# And the happy path must still work, including the --key=value spelling.
if ! "$powervar" accuracy --nodes=210 --cv=0.02 --n=4 >/dev/null; then
  echo "FAIL: valid --key=value invocation failed" >&2
  failures=$((failures + 1))
fi

if [[ "$failures" -ne 0 ]]; then
  echo "FAIL: $failures CLI error-contract case(s) broken" >&2
  exit 1
fi
echo "OK: CLI rejects malformed input loudly"
