#!/usr/bin/env bash
# Guards the seeded-fault reproducibility contract: a faulted campaign run
# twice with the same seed must produce byte-identical output (all fault
# processes draw from (seed, stream) RNG streams, never from global state).
#
# Usage: check_determinism.sh /path/to/powervar
set -euo pipefail

powervar="${1:?usage: check_determinism.sh /path/to/powervar}"
args=(campaign --nodes 64 --cv 0.03 --level 1 --seed 42
      --faults harsh --dropout 0.1 --dead 2 --interval 10)

out_a="$("$powervar" "${args[@]}")"
out_b="$("$powervar" "${args[@]}")"

if [[ "$out_a" != "$out_b" ]]; then
  echo "FAIL: two identically seeded faulted campaigns diverged" >&2
  diff <(printf '%s\n' "$out_a") <(printf '%s\n' "$out_b") >&2 || true
  exit 1
fi

# The run must actually have degraded (otherwise this guards nothing).
if ! grep -q "data quality" <<<"$out_a"; then
  echo "FAIL: faulted campaign printed no data-quality block" >&2
  exit 1
fi

echo "OK: faulted campaign is deterministic under a fixed seed"

# ---------------------------------------------------------------------------
# Kill-and-resume contract: an asynchronous collection killed mid-campaign
# and resumed from its journal must produce a report byte-identical to an
# uninterrupted run of the same campaign.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

collect_args=(collect --nodes 64 --cv 0.03 --level 1 --seed 42
              --blackhole 0.2 --drop 0.05 --interval 10 --threads 4)

clean_out="$("$powervar" "${collect_args[@]}" \
             --checkpoint "$tmpdir/clean.wal" 2>/dev/null)"

# The crashing run must exit with the dedicated simulated-crash status (3).
set +e
"$powervar" "${collect_args[@]}" --checkpoint "$tmpdir/crash.wal" \
    --crash-after 3 >"$tmpdir/crash.out" 2>/dev/null
crash_rc=$?
set -e
if [[ "$crash_rc" -ne 3 ]]; then
  echo "FAIL: --crash-after exited with $crash_rc, expected 3" >&2
  exit 1
fi
if [[ -s "$tmpdir/crash.out" ]]; then
  echo "FAIL: crashed collection printed a (partial) report" >&2
  exit 1
fi

resumed_out="$("$powervar" "${collect_args[@]}" \
               --checkpoint "$tmpdir/crash.wal" --resume 1 2>/dev/null)"

if [[ "$clean_out" != "$resumed_out" ]]; then
  echo "FAIL: kill-and-resume collection diverged from uninterrupted run" >&2
  diff <(printf '%s\n' "$clean_out") <(printf '%s\n' "$resumed_out") >&2 || true
  exit 1
fi

# The collection must actually have fought the flaky channel.
if ! grep -q "collection path" <<<"$clean_out"; then
  echo "FAIL: collect printed no collection-path quality block" >&2
  exit 1
fi

echo "OK: kill-and-resume collection is byte-identical to uninterrupted run"

# ---------------------------------------------------------------------------
# Byzantine-reconciliation contract: detection verdicts are a pure function
# of (seed, plan) — the metering fan-out runs on per-node RNG streams, so
# the worker thread count must not change a single output byte.
reconcile_args=(reconcile --nodes 96 --seed 5 --byzantine 0.05 --interval 10)

serial_out="$("$powervar" "${reconcile_args[@]}" --threads 1)"
fanned_out="$("$powervar" "${reconcile_args[@]}" --threads 4)"

if [[ "$serial_out" != "$fanned_out" ]]; then
  echo "FAIL: reconciled campaign diverged between 1 and 4 threads" >&2
  diff <(printf '%s\n' "$serial_out") <(printf '%s\n' "$fanned_out") >&2 || true
  exit 1
fi

# The run must actually have convicted liars (otherwise this guards nothing).
if ! grep -q "integrity (byzantine defense)" <<<"$serial_out"; then
  echo "FAIL: reconciled campaign printed no integrity block" >&2
  exit 1
fi
if ! grep -Eq "quarantined|corrected" <<<"$serial_out"; then
  echo "FAIL: byzantine campaign convicted nothing" >&2
  exit 1
fi

echo "OK: byzantine reconciliation is thread-count invariant"

# ---------------------------------------------------------------------------
# JSON-mode contract: the machine-readable rendering is as deterministic
# as the text one (stage traces included — wall clock stays out of the
# JSON), and both renderings describe the same campaign.
json_args=(campaign --nodes 64 --cv 0.03 --level 1 --seed 42
           --faults harsh --dropout 0.1 --dead 2 --interval 10
           --json --trace-stages)

json_a="$("$powervar" "${json_args[@]}")"
json_b="$("$powervar" "${json_args[@]}")"

if [[ "$json_a" != "$json_b" ]]; then
  echo "FAIL: two identically seeded --json campaigns diverged" >&2
  diff <(printf '%s\n' "$json_a") <(printf '%s\n' "$json_b") >&2 || true
  exit 1
fi
for key in '"schema":"powervar-assessment-v1"' '"submitted_power_w":' \
           '"data_quality":' '"stages":'; do
  if ! grep -qF "$key" <<<"$json_a"; then
    echo "FAIL: --json output lacks $key" >&2
    exit 1
  fi
done

# Text and JSON must agree on the submitted number: parse the human line
# ("submitted power:   27.43 kW") back to watts and compare with the JSON
# field to ~1% (the text is rounded to 4 significant digits).
text_out="$("$powervar" campaign --nodes 64 --cv 0.03 --level 1 --seed 42 \
            --faults harsh --dropout 0.1 --dead 2 --interval 10)"
text_w="$(awk '/^submitted power:/ {
  v = $3
  if ($4 == "kW") v *= 1e3
  else if ($4 == "MW") v *= 1e6
  print v
}' <<<"$text_out")"
json_w="$(grep -o '"submitted_power_w":[0-9.eE+-]*' <<<"$json_a" |
          head -1 | cut -d: -f2)"
if [[ -z "$text_w" || -z "$json_w" ]]; then
  echo "FAIL: could not extract submitted power from both renderings" >&2
  exit 1
fi
if ! awk -v t="$text_w" -v j="$json_w" \
     'BEGIN { d = (t - j) / j; if (d < 0) d = -d; exit !(d < 0.01) }'; then
  echo "FAIL: text ($text_w W) and JSON ($json_w W) renderings disagree" >&2
  exit 1
fi

echo "OK: JSON rendering is deterministic and agrees with the text report"

# ---------------------------------------------------------------------------
# Service-isolation contract at the CLI level: a campaign served through
# `powervar serve` — sharing a worker pool and the provision cache with
# neighbors — must embed an assessment byte-identical to the same
# campaign run solo through `campaign --json`, and the whole served batch
# must be deterministic across runs even with concurrent workers.
cat >"$tmpdir/serve_reqs.jsonl" <<'REQS'
{"schema":"powervar-request-v1","id":"d1","nodes":64,"cv":0.03,"level":1,"seed":42,"faults":"harsh","dropout":0.1,"dead":2,"interval":10}
{"schema":"powervar-request-v1","id":"d2","nodes":48,"level":2,"seed":7,"interval":10}
{"schema":"powervar-request-v1","id":"d3","nodes":64,"cv":0.03,"seed":42,"interval":30}
REQS

serve_a="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
           --json --workers 4)"
serve_b="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
           --json --workers 4)"
if [[ "$serve_a" != "$serve_b" ]]; then
  echo "FAIL: two identical served batches diverged" >&2
  diff <(printf '%s\n' "$serve_a") <(printf '%s\n' "$serve_b") >&2 || true
  exit 1
fi

# Extract d1's embedded assessment: everything after "assessment": up to
# the response line's closing brace (the assessment is the final field of
# an ok response, so stripping one trailing '}' recovers its exact bytes).
d1_line="$(grep -F '"id":"d1"' <<<"$serve_a")"
d1_assessment="${d1_line#*\"assessment\":}"
d1_assessment="${d1_assessment%\}}"
solo_json="$("$powervar" campaign --nodes 64 --cv 0.03 --level 1 --seed 42 \
             --faults harsh --dropout 0.1 --dead 2 --interval 10 --json)"
if [[ "$d1_assessment" != "$solo_json" ]]; then
  echo "FAIL: served assessment diverged from the solo campaign --json run" >&2
  diff <(printf '%s\n' "$solo_json") <(printf '%s\n' "$d1_assessment") >&2 || true
  exit 1
fi

# The batch must actually have exercised the cache (d3 shares d1's spec).
if ! grep -qF '"cache":{"hits":1,"misses":2' <<<"$serve_a"; then
  echo "FAIL: served batch did not report the expected cache accounting" >&2
  exit 1
fi

echo "OK: served campaigns are deterministic and byte-identical to solo runs"

# ---------------------------------------------------------------------------
# Drain-and-resume contract at the serve level: a batch interrupted by a
# drain (--drain-after K checkpoints every held request to the WAL) and
# finished by a fresh `serve --resume` must produce — as a set — exactly
# the response lines of the uninterrupted batch, byte for byte.  The
# resumed requests run under their original ids and seeds, so nothing in
# the output can betray that the service restarted.
clean_resp="$(grep -F '"code":"ok"' <<<"$serve_a" | sort)"

drain_out="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
             --json --workers 2 --drain-after 1 \
             --checkpoint "$tmpdir/serve_drain.wal")"
if ! grep -qF '"checkpointed":2' <<<"$drain_out"; then
  echo "FAIL: drain run did not checkpoint the two held requests" >&2
  exit 1
fi
resume_out="$("$powervar" serve --resume "$tmpdir/serve_drain.wal" \
              --json --workers 2 2>/dev/null)"
if ! grep -qF '"completed":2' <<<"$resume_out"; then
  echo "FAIL: resume run did not complete the two checkpointed requests" >&2
  exit 1
fi
union_resp="$( { grep -F '"code":"ok"' <<<"$drain_out" || true
                 grep -F '"code":"ok"' <<<"$resume_out" || true; } | sort)"
if [[ "$union_resp" != "$clean_resp" ]]; then
  echo "FAIL: drain+resume responses diverged from the uninterrupted batch" >&2
  diff <(printf '%s\n' "$clean_resp") <(printf '%s\n' "$union_resp") >&2 || true
  exit 1
fi

# Same contract through the text renderer.
clean_text="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
              --workers 2 | grep '^request .*: ok' | sort)"
drain_text="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
              --workers 2 --drain-after 1 \
              --checkpoint "$tmpdir/serve_drain_text.wal")"
resume_text="$("$powervar" serve --resume "$tmpdir/serve_drain_text.wal" \
               --workers 2 2>/dev/null)"
union_text="$( { grep '^request .*: ok' <<<"$drain_text" || true
                 grep '^request .*: ok' <<<"$resume_text" || true; } | sort)"
if [[ "$union_text" != "$clean_text" ]]; then
  echo "FAIL: text-mode drain+resume diverged from the uninterrupted batch" >&2
  diff <(printf '%s\n' "$clean_text") <(printf '%s\n' "$union_text") >&2 || true
  exit 1
fi

echo "OK: serve drain-and-resume is byte-identical to the uninterrupted batch"

# ---------------------------------------------------------------------------
# Crash-mid-drain contract at the serve level: --crash-after K dies (exit
# 3) after journaling K of the held requests, but the journal on disk
# keeps a valid K-record prefix that a fresh --resume finishes — and the
# recovered response is a byte-exact member of the clean batch.
set +e
"$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" --json --workers 2 \
    --drain-after 1 --checkpoint "$tmpdir/serve_crash.wal" --crash-after 1 \
    >"$tmpdir/serve_crash.out" 2>/dev/null
crash_rc=$?
set -e
if [[ "$crash_rc" -ne 3 ]]; then
  echo "FAIL: serve --crash-after exited with $crash_rc, expected 3" >&2
  exit 1
fi
crash_resume="$("$powervar" serve --resume "$tmpdir/serve_crash.wal" \
                --json --workers 2 2>/dev/null)"
recovered="$(grep -F '"code":"ok"' <<<"$crash_resume" || true)"
if [[ -z "$recovered" || "$(wc -l <<<"$recovered")" -ne 1 ]]; then
  echo "FAIL: crash-mid-drain resume recovered $(wc -l <<<"$recovered") requests, expected 1" >&2
  exit 1
fi
if ! grep -qF "$recovered" <<<"$clean_resp"; then
  echo "FAIL: the crash-recovered response is not a member of the clean batch" >&2
  exit 1
fi

echo "OK: serve crash-mid-drain leaves a resumable journal prefix"

# ---------------------------------------------------------------------------
# Streaming front-end contract: --stream prints each response the moment
# it completes, tagged with its submission seq.  Completion order may
# vary with the scheduler, but the *set* of lines is deterministic — and
# stripping the seq tag must recover the batch-mode lines byte for byte.
stream_a="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
            --json --workers 4 --stream | sort)"
stream_b="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
            --json --workers 4 --stream | sort)"
if [[ "$stream_a" != "$stream_b" ]]; then
  echo "FAIL: two identical streamed batches diverged as sets" >&2
  diff <(printf '%s\n' "$stream_a") <(printf '%s\n' "$stream_b") >&2 || true
  exit 1
fi
stream_resp="$(grep -F '"powervar-response-v1"' <<<"$stream_a" |
               sed 's/"seq":[0-9]*,//' | sort)"
batch_resp="$(grep -F '"powervar-response-v1"' <<<"$serve_a" | sort)"
if [[ "$stream_resp" != "$batch_resp" ]]; then
  echo "FAIL: seq-stripped streamed lines diverged from batch-mode lines" >&2
  diff <(printf '%s\n' "$batch_resp") <(printf '%s\n' "$stream_resp") >&2 || true
  exit 1
fi
if ! grep -qF '"seq":' <<<"$stream_a"; then
  echo "FAIL: streamed responses carried no seq tags" >&2
  exit 1
fi

echo "OK: streamed serve output is a deterministic seq-tagged set"

# ---------------------------------------------------------------------------
# Live-assessment contract: `campaign --live` streams partial assessment
# documents on a pinned virtual-time schedule, then a final document that
# must be byte-identical to the plain --json run of the same campaign —
# observing the campaign mid-run may not change a single reported byte.
# The whole transcript (partials included) is deterministic and
# thread-count invariant: partials are emitted between fan-out barriers
# from per-node RNG streams.
live_args=(campaign --nodes 64 --cv 0.03 --level 2 --seed 7 --interval 10
           --json --live --live-every 600)

live_a="$("$powervar" "${live_args[@]}")"
live_b="$("$powervar" "${live_args[@]}")"
live_t="$("$powervar" "${live_args[@]}" --threads 4)"

if [[ "$live_a" != "$live_b" ]]; then
  echo "FAIL: two identically seeded --live campaigns diverged" >&2
  diff <(printf '%s\n' "$live_a") <(printf '%s\n' "$live_b") >&2 || true
  exit 1
fi
if [[ "$live_a" != "$live_t" ]]; then
  echo "FAIL: --live transcript diverged between 1 and 4 threads" >&2
  diff <(printf '%s\n' "$live_a") <(printf '%s\n' "$live_t") >&2 || true
  exit 1
fi

# The run must actually have streamed partials (otherwise this guards a
# plain batch run), every partial must carry the live progress block, and
# the final line must not.
partials="$(head -n -1 <<<"$live_a")"
if [[ -z "$partials" ]]; then
  echo "FAIL: --live run emitted no partial documents" >&2
  exit 1
fi
if grep -qv '"live":' <<<"$partials"; then
  echo "FAIL: a partial document lacks the live progress block" >&2
  exit 1
fi
final_line="$(tail -n 1 <<<"$live_a")"
if grep -qF '"live":' <<<"$final_line"; then
  echo "FAIL: the final document still carries the live block" >&2
  exit 1
fi

# Headline byte-identity at the CLI: the final streamed line IS the batch
# document.
batch_line="$("$powervar" campaign --nodes 64 --cv 0.03 --level 2 --seed 7 \
              --interval 10 --json)"
if [[ "$final_line" != "$batch_line" ]]; then
  echo "FAIL: final --live document diverged from the plain --json run" >&2
  diff <(printf '%s\n' "$batch_line") <(printf '%s\n' "$final_line") >&2 || true
  exit 1
fi

# Same contract under degraded data: harsh faults + dead nodes exercise
# the whole-window live driver (corruption needs materialized windows),
# which must still finish on the batch engine's exact bytes.
faulted_live="$("$powervar" campaign --nodes 64 --cv 0.03 --level 1 --seed 42 \
                --faults harsh --dropout 0.1 --dead 2 --interval 10 \
                --json --live --live-every 900 | tail -n 1)"
faulted_batch="$("$powervar" campaign --nodes 64 --cv 0.03 --level 1 --seed 42 \
                 --faults harsh --dropout 0.1 --dead 2 --interval 10 --json)"
if [[ "$faulted_live" != "$faulted_batch" ]]; then
  echo "FAIL: faulted --live final document diverged from the batch run" >&2
  diff <(printf '%s\n' "$faulted_batch") <(printf '%s\n' "$faulted_live") >&2 || true
  exit 1
fi

echo "OK: live assessment partials are deterministic and the final line is the batch document"

# ---------------------------------------------------------------------------
# Fleet-SoA contract: the fused structure-of-arrays kernels (the default
# engine) must report byte-identical documents to the per-node scalar
# path (--scalar-fleet), and the sharded fleet provision + fused fan-out
# must be thread-count invariant — every lane is a pure function of its
# own node id and RNG streams.
fleet_args=(campaign --nodes 96 --cv 0.03 --level 1 --seed 5
            --reconcile 1 --interval 10 --json)

soa_out="$("$powervar" "${fleet_args[@]}")"
scalar_out="$("$powervar" "${fleet_args[@]}" --scalar-fleet)"
if [[ "$soa_out" != "$scalar_out" ]]; then
  echo "FAIL: fused fleet kernels diverged from the per-node scalar path" >&2
  diff <(printf '%s\n' "$scalar_out") <(printf '%s\n' "$soa_out") >&2 || true
  exit 1
fi

fanned_fleet="$("$powervar" "${fleet_args[@]}" --threads 4)"
if [[ "$soa_out" != "$fanned_fleet" ]]; then
  echo "FAIL: sharded fleet campaign diverged between 1 and 4 threads" >&2
  diff <(printf '%s\n' "$soa_out") <(printf '%s\n' "$fanned_fleet") >&2 || true
  exit 1
fi

# Same contract through the live chunk driver (no reconcile: the live
# fused path covers clean streaming windows).
live_fleet_args=(campaign --nodes 96 --cv 0.03 --level 1 --seed 5
                 --interval 10 --json --live)
live_soa="$("$powervar" "${live_fleet_args[@]}" | tail -n 1)"
live_scalar="$("$powervar" "${live_fleet_args[@]}" --scalar-fleet |
               tail -n 1)"
if [[ "$live_soa" != "$live_scalar" ]]; then
  echo "FAIL: live fused chunk driver diverged from the scalar path" >&2
  diff <(printf '%s\n' "$live_scalar") <(printf '%s\n' "$live_soa") >&2 || true
  exit 1
fi

echo "OK: fleet-SoA kernels match the scalar path and are thread-count invariant"
