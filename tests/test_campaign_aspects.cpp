// Tests for the aspect-1 (timing strategy) and aspect-4 (conversion
// correction) extensions of campaign execution.

#include <gtest/gtest.h>

#include <memory>

#include "core/campaign.hpp"
#include "sim/fleet.hpp"
#include "util/mathx.hpp"
#include "util/expects.hpp"
#include "workload/hpl.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  PlanInputs inputs;
};

Rig make_rig(std::shared_ptr<const Workload> workload,
             std::size_t n_nodes = 64) {
  FleetVariability var = FleetVariability::typical_cpu().scaled_to(0.02);
  var.outlier_prob = 0.0;
  auto powers = generate_node_powers(n_nodes, 400.0, var, 31);
  Rig rig;
  rig.cluster = std::make_unique<ClusterPowerModel>(
      "aspects", std::move(powers), std::move(workload));
  rig.electrical = std::make_unique<SystemPowerModel>(make_system_power_model(
      *rig.cluster, 16, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{}));
  rig.inputs.total_nodes = n_nodes;
  rig.inputs.approx_node_power = Watts{400.0};
  rig.inputs.run = rig.cluster->phases();
  return rig;
}

CampaignConfig quiet_config() {
  CampaignConfig c;
  c.meter_accuracy = MeterAccuracy::perfect();
  c.meter_interval_override = Seconds{5.0};
  return c;
}

TEST(TimingStrategy, PlannerSelectsSpotAveragesForLevel2) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(1);
  const auto l1 = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), rig.inputs, rng);
  const auto l2 = plan_measurement(
      MethodologySpec::get(Level::kL2, Revision::kV1_2), rig.inputs, rng);
  EXPECT_EQ(l1.timing, TimingStrategy::kContinuous);
  EXPECT_EQ(l2.timing, TimingStrategy::kTenSpotAverages);
}

TEST(TimingStrategy, SpotAveragesMatchContinuousOnFlatLoad) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(2);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL2, Revision::kV1_2), rig.inputs, rng);
  const auto spots = run_campaign(*rig.cluster, *rig.electrical, plan,
                                  quiet_config());
  plan.timing = TimingStrategy::kContinuous;
  const auto cont = run_campaign(*rig.cluster, *rig.electrical, plan,
                                 quiet_config());
  // Flat profile: ten spot averages and full integration agree closely.
  EXPECT_NEAR(spots.submitted_power.value() / cont.submitted_power.value(),
              1.0, 0.002);
}

TEST(TimingStrategy, SpotAveragesTrackSlopedProfilesTo) {
  // On the sloped GPU profile the ten equally spaced spots still average
  // out the slope (they span the run) — that is why L2 is acceptable.
  const Rig rig = make_rig(std::make_shared<HplWorkload>(
      HplParams::gpu_incore(), hours(1.0), minutes(4.0), minutes(2.0)));
  Rng rng(3);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL2, Revision::kV1_2), rig.inputs, rng);
  const auto spots = run_campaign(*rig.cluster, *rig.electrical, plan,
                                  quiet_config());
  plan.timing = TimingStrategy::kContinuous;
  const auto cont = run_campaign(*rig.cluster, *rig.electrical, plan,
                                 quiet_config());
  EXPECT_NEAR(spots.submitted_power.value() / cont.submitted_power.value(),
              1.0, 0.03);
}

TEST(TimingStrategy, SpotEnergyScalesToWindow) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(4);
  const auto plan = plan_measurement(
      MethodologySpec::get(Level::kL2, Revision::kV1_2), rig.inputs, rng);
  const auto result = run_campaign(*rig.cluster, *rig.electrical, plan,
                                   quiet_config());
  // Energy ~ mean metered node power * nodes measured * window duration
  // (submitted_power also carries the L2 auxiliary estimate, so derive the
  // node mean from the metered per-node averages).
  const double node_mean = mean_of(result.node_mean_powers_w);
  const double expected = node_mean *
                          static_cast<double>(result.nodes_measured) *
                          result.window_duration.value();
  EXPECT_NEAR(result.submitted_energy.value() / expected, 1.0, 0.01);
}

TEST(Conversion, MeasuredCurveRecoversAcFromDcTap) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(5);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), rig.inputs, rng);
  const auto ac_result =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());

  plan.point = MeasurementPoint::kNodeDc;
  plan.conversion = ConversionCorrection::kMeasuredCurve;
  const auto dc_result =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  // Correcting through the true PSU curve reproduces the AC measurement.
  EXPECT_NEAR(dc_result.submitted_power.value() /
                  ac_result.submitted_power.value(),
              1.0, 0.005);
}

TEST(Conversion, UncorrectedDcUnderstates) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(6);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), rig.inputs, rng);
  plan.point = MeasurementPoint::kNodeDc;
  plan.conversion = ConversionCorrection::kNone;
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  // DC < AC: uncorrected taps flatter the system by the PSU loss (~6-10%).
  EXPECT_GT(result.relative_error, 0.04);
  EXPECT_LT(result.submitted_power.value(), result.true_power.value());
  // And the validator calls it out.
  bool flagged = false;
  for (const auto& issue : validate_plan(plan, rig.inputs)) {
    if (issue.rule == "conversion") flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(Conversion, VendorNominalIsCloseButBiased) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(7);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), rig.inputs, rng);
  plan.point = MeasurementPoint::kNodeDc;
  plan.conversion = ConversionCorrection::kVendorNominal;
  plan.vendor_nominal_efficiency = 0.94;  // the platinum 50%-load point
  const auto vendor =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  plan.conversion = ConversionCorrection::kMeasuredCurve;
  const auto curve =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  // Vendor-nominal is within a couple percent of the measured-curve
  // correction, but not equal — the residual Level 1 aspect-4 error.
  const double ratio =
      vendor.submitted_power.value() / curve.submitted_power.value();
  EXPECT_NEAR(ratio, 1.0, 0.03);
  EXPECT_NE(vendor.submitted_power.value(), curve.submitted_power.value());
}

TEST(Conversion, ValidatorRejectsVendorDataAboveLevel1) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(8);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL2, Revision::kV1_2), rig.inputs, rng);
  plan.point = MeasurementPoint::kNodeDc;
  plan.conversion = ConversionCorrection::kVendorNominal;
  bool flagged = false;
  for (const auto& issue : validate_plan(plan, rig.inputs)) {
    if (issue.rule == "conversion") flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(TimingStrategy, ValidatorRejectsOversizedSpots) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)));
  Rng rng(9);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL2, Revision::kV1_2), rig.inputs, rng);
  plan.spot_duration = Seconds{plan.window.duration().value()};
  bool flagged = false;
  for (const auto& issue : validate_plan(plan, rig.inputs)) {
    if (issue.rule == "timing") flagged = true;
  }
  EXPECT_TRUE(flagged);
}

TEST(FacilityMetering, Level3FeedIsNearExact) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)),
                           /*n_nodes=*/64);
  Rng rng(12);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL3, Revision::kV2015), rig.inputs, rng);
  plan.point = MeasurementPoint::kFacilityFeed;
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  // L3 scope includes auxiliaries; the feed measures them directly:
  // the only error left is the meter (perfect here) and integration.
  EXPECT_LT(result.relative_error, 0.002);
  EXPECT_EQ(result.nodes_measured, 64u);
}

TEST(FacilityMetering, ComputeOnlyScopeDeductsMeasuredAux) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)),
                           /*n_nodes=*/64);
  Rng rng(13);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), rig.inputs, rng);
  plan.point = MeasurementPoint::kFacilityFeed;
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  // After deducting the measured auxiliaries, the feed number matches the
  // compute-only truth.
  EXPECT_LT(result.relative_error, 0.002);
}

TEST(RackMetering, IncludesPduLossAndReducesBias) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)),
                           /*n_nodes=*/128);
  Rng rng(10);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), rig.inputs, rng);
  const auto node_tap =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  plan.point = MeasurementPoint::kRackPdu;
  const auto rack_tap =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  // The rack reading includes the PDU distribution loss node taps miss,
  // so it reads higher and lands closer to the true compute power.
  EXPECT_GT(rack_tap.submitted_power.value(),
            node_tap.submitted_power.value());
  EXPECT_LT(rack_tap.relative_error, node_tap.relative_error);
  EXPECT_LT(rack_tap.relative_error, 0.02);
}

TEST(RackMetering, CoversWholeRacks) {
  const Rig rig = make_rig(std::make_shared<FirestarterWorkload>(hours(1.0)),
                           /*n_nodes=*/128);
  Rng rng(11);
  auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), rig.inputs, rng);
  plan.point = MeasurementPoint::kRackPdu;
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, plan, quiet_config());
  // Every touched rack contributes all of its nodes (racks of 16).
  EXPECT_GE(result.nodes_measured, plan.node_count());
  EXPECT_EQ(result.nodes_measured % 16, 0u);
}

TEST(ToString, NewEnumLabels) {
  EXPECT_STREQ(to_string(TimingStrategy::kTenSpotAverages),
               "ten spot averages");
  EXPECT_STREQ(to_string(ConversionCorrection::kNone), "none");
  EXPECT_STREQ(to_string(ConversionCorrection::kVendorNominal),
               "vendor nominal");
}

}  // namespace
}  // namespace pv
