#include "service/fair.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace pv {

FairShareQueue::FairShareQueue(double age_boost) : age_boost_(age_boost) {}

void FairShareQueue::enqueue(std::size_t ticket, const std::string& tenant,
                             unsigned priority) {
  PV_EXPECTS(priority >= 1 && priority <= 8,
             "fair-share priority out of [1, 8]");
  Lane& lane = lanes_[tenant];
  if (lane.fifo.empty()) {
    // Rejoin at the current virtual time: an idle tenant must not bank
    // credit from its quiet period and then monopolize the pool.
    lane.pass = std::max(lane.pass, vtime_);
  }
  lane.fifo.push_back(Item{ticket, priority, dispatch_clock_});
  ++size_;
}

std::size_t FairShareQueue::pop() {
  PV_EXPECTS(size_ > 0, "pop() on an empty fair-share queue");
  // The lane with the lowest aging-discounted pass wins; std::map
  // iteration order plus strict '<' makes ties fall to the
  // lexicographically smallest tenant.
  Lane* best = nullptr;
  double best_eff = 0.0;
  for (auto& [tenant, lane] : lanes_) {
    if (lane.fifo.empty()) continue;
    const auto age =
        static_cast<double>(dispatch_clock_ - lane.fifo.front().enqueued_at);
    const double eff = static_cast<double>(lane.pass) -
                       age_boost_ * static_cast<double>(kStride) * age;
    if (best == nullptr || eff < best_eff) {
      best = &lane;
      best_eff = eff;
    }
  }
  const Item item = best->fifo.front();
  best->fifo.pop_front();
  vtime_ = std::max(vtime_, best->pass);
  best->pass += kStride / item.priority;
  ++dispatch_clock_;
  --size_;
  return item.ticket;
}

std::vector<std::size_t> FairShareQueue::clear() {
  std::vector<std::size_t> tickets;
  tickets.reserve(size_);
  for (auto& [tenant, lane] : lanes_) {
    for (const Item& item : lane.fifo) tickets.push_back(item.ticket);
    lane.fifo.clear();
  }
  std::sort(tickets.begin(), tickets.end());
  size_ = 0;
  return tickets;
}

std::size_t FairShareQueue::waiting(const std::string& tenant) const {
  const auto it = lanes_.find(tenant);
  return it == lanes_.end() ? 0 : it->second.fifo.size();
}

}  // namespace pv
