# Empty dependencies file for gaming_audit.
# This may be replaced when dependencies are built.
