# Empty dependencies file for bench_fig4_vid_efficiency.
# This may be replaced when dependencies are built.
