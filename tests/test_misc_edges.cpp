// Edge-case tests across modules that the focused suites exercise only on
// their happy paths.

#include <gtest/gtest.h>

#include <memory>

#include "core/campaign.hpp"
#include "core/spec.hpp"
#include "core/submission.hpp"
#include "sim/fleet.hpp"
#include "util/expects.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "workload/calibration.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

TEST(TableEdges, ExplicitAlignmentOverride) {
  TextTable t({"a", "b"}, {Align::Right, Align::Left});
  t.add_row({"1", "x"});
  const std::string out = t.render();
  // Right-aligned "1" under "a": leading space before the cell text.
  EXPECT_NE(out.find(" 1 "), std::string::npos);
  EXPECT_THROW(TextTable({"a"}, {Align::Left, Align::Right}), contract_error);
  EXPECT_THROW(TextTable({}), contract_error);
}

TEST(UnitEdges, NegativeAndInfValuesFormat) {
  EXPECT_EQ(to_string(watts(-398700.0)), "-398.7 kW");
  const std::string inf = to_string(Watts{1.0 / 0.0});
  EXPECT_NE(inf.find("inf"), std::string::npos);
}

TEST(TraceEdges, FromFunctionGuards) {
  EXPECT_THROW(PowerTrace::from_function(Seconds{0.0}, Seconds{1.0}, 0,
                                         [](double) { return 1.0; }),
               contract_error);
  EXPECT_THROW(
      PowerTrace::from_function(Seconds{0.0}, Seconds{1.0}, 5, nullptr),
      contract_error);
}

TEST(MeterEdges, EnergyConsistentWithTraceUnderGainError) {
  Rng cal(1), noise_a(2), noise_b(2);
  const MeterModel meter(MeterAccuracy{0.02, 0.0, 0.0},
                         MeterMode::kIntegrated, Seconds{1.0}, cal);
  const auto f = [](double t) { return 100.0 + t; };
  const auto trace = meter.measure(f, Seconds{0.0}, Seconds{50.0}, noise_a);
  const Joules e = meter.measure_energy(f, Seconds{0.0}, Seconds{50.0},
                                        noise_b);
  EXPECT_NEAR(trace.energy().value(), e.value(), 1e-9);
  // Gain error scales energy linearly.
  EXPECT_NEAR(e.value() / (100.0 * 50.0 + 0.5 * 50.0 * 50.0), meter.gain(),
              1e-9);
}

TEST(ClusterEdges, PsuHeadroomGuardAndNodePsuAccess) {
  auto workload = std::make_shared<FirestarterWorkload>(minutes(10.0));
  std::vector<double> means{300.0, 310.0};
  const ClusterPowerModel cluster("edge", means, workload);
  EXPECT_THROW(make_system_power_model(cluster, 2,
                                       PsuEfficiencyCurve::gold(),
                                       AuxiliaryConfig{}, 0.5),
               contract_error);
  const SystemPowerModel sys = make_system_power_model(
      cluster, 2, PsuEfficiencyCurve::gold(), AuxiliaryConfig{});
  EXPECT_GT(sys.node_psu(0).rated_output().value(), 300.0);
  EXPECT_THROW(sys.node_psu(5), contract_error);
}

TEST(WorkloadEdges, IntensityOutsideRunRejected) {
  const FirestarterWorkload w(minutes(10.0), 1.0, Seconds{10.0},
                              Seconds{10.0});
  EXPECT_NO_THROW(w.intensity(0.0));
  EXPECT_NO_THROW(w.intensity(w.phases().total().value()));
  // HPL enforces its domain explicitly.
  const HplWorkload hpl(HplParams::cpu_traditional(), minutes(10.0));
  EXPECT_THROW(hpl.intensity(-5.0), contract_error);
  EXPECT_THROW(hpl.intensity(hpl.phases().total().value() + 10.0),
               contract_error);
}

TEST(CalibrationEdges, RunBoundaryPowersAreContinuousEnough) {
  const CalibratedSystemProfile prof(
      "x", HplParams::gpu_incore(), {minutes(4.0), hours(1.0), minutes(3.0)},
      SegmentTargets{kilowatts(60.0), kilowatts(64.0), kilowatts(50.0)});
  const RunPhases p = prof.phases();
  // Setup/teardown sit below the core-phase levels near the boundaries.
  const double setup = prof.system_power_w(p.core_begin().value() - 1.0);
  const double core_start = prof.system_power_w(p.core_begin().value() + 1.0);
  EXPECT_LT(setup, core_start);
  const double core_end = prof.system_power_w(p.core_end().value() - 1.0);
  const double teardown = prof.system_power_w(p.core_end().value() + 1.0);
  EXPECT_LT(teardown, core_end);
  EXPECT_THROW(prof.system_power_w(p.total().value() + 100.0),
               contract_error);
}

TEST(RankedListEdges, TiesKeepInsertionOrder) {
  RankedList list("ties");
  Submission a;
  a.system_name = "first-in";
  a.rmax = teraflops(1.0);
  a.power = kilowatts(100.0);
  Submission b = a;
  b.system_name = "second-in";
  list.add(a);
  list.add(b);
  const auto ranked = list.ranked_by_efficiency();
  EXPECT_EQ(ranked[0].system_name, "first-in");  // stable sort
  EXPECT_EQ(list.efficiency_rank("second-in"), 2u);
}

TEST(SpecEdges, DescribeMentions2015Floors) {
  const std::string d =
      MethodologySpec::get(Level::kL1, Revision::kV2015).describe();
  EXPECT_NE(d.find("16 nodes"), std::string::npos);
  EXPECT_NE(d.find("10%"), std::string::npos);
  EXPECT_NE(d.find("2015"), std::string::npos);
}

TEST(RuleEdges, SingleNodeSystem) {
  // Degenerate machines: the rules clamp sanely.
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  EXPECT_EQ(spec.required_node_count(1, Watts{500.0}), 1u);
}

TEST(WorkloadEdges, DefaultCoreMeanIntegrationMatchesOverride) {
  // FirestarterWorkload overrides core_mean_intensity with the exact
  // constant; the base-class numerical integration must agree.
  const FirestarterWorkload w(hours(1.0), 0.97);
  const RunPhases p = w.phases();
  const double integrated = average_over(
      [&](double t) { return w.intensity(t); }, p.core_begin().value(),
      p.core_end().value());
  EXPECT_NEAR(integrated, w.core_mean_intensity(), 1e-12);
}

TEST(CampaignEdges, MismatchedElectricalModelRejected) {
  auto workload = std::make_shared<FirestarterWorkload>(minutes(10.0));
  std::vector<double> means{300.0, 310.0, 290.0, 305.0};
  const ClusterPowerModel cluster("edge4", means, workload);
  std::vector<double> fewer{300.0, 310.0};
  const ClusterPowerModel small("edge2", fewer, workload);
  const SystemPowerModel sys = make_system_power_model(
      small, 2, PsuEfficiencyCurve::gold(), AuxiliaryConfig{});
  PlanInputs in;
  in.total_nodes = 4;
  in.approx_node_power = Watts{300.0};
  in.run = cluster.phases();
  Rng rng(1);
  const auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), in, rng);
  EXPECT_THROW(run_campaign(cluster, sys, plan, CampaignConfig{}),
               contract_error);
}

}  // namespace
}  // namespace pv
