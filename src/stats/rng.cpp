#include "stats/rng.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace pv {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id into the seeding chain; SplitMix64 guarantees any
  // 64-bit seed yields a full-quality state.
  SplitMix64 sm(seed ^ (0xA3C59AC2F1D3B8E5ULL * (stream + 1)));
  for (auto& word : s_) word = sm.next();
  // All-zero state is the one invalid xoshiro state; SplitMix64 cannot
  // produce four consecutive zeros, but keep the guard explicit.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PV_EXPECTS(lo <= hi, "uniform(lo, hi) needs lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PV_EXPECTS(n > 0, "uniform_index needs n > 0");
  // Lemire (2019): multiply-shift with rejection of the biased low range.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method: exact, branch-light, no trig.
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sd) {
  PV_EXPECTS(sd >= 0.0, "standard deviation must be non-negative");
  return mean + sd * normal();
}

bool Rng::bernoulli(double p) {
  PV_EXPECTS(p >= 0.0 && p <= 1.0, "bernoulli probability outside [0,1]");
  return uniform() < p;
}

}  // namespace pv
