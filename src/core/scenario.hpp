#pragma once
// Shared scenario builder.  The CLI, the bench harnesses and the campaign
// tests all exercised the same synthetic machine — a Firestarter-driven
// fleet with typical-CPU variability, 16-node racks, platinum PSUs and no
// auxiliaries — but each hand-rolled its own copy of the construction.
// ScenarioSpec/build_scenario is the single source of that rig: one place
// to read what the canonical 240-node scenario *is*, and one place to
// change it.
//
// This lives in core (not sim) deliberately: the builder also derives
// PlanInputs and can plan a measurement, and plan_measurement is a core
// symbol — a sim-side builder would invert the util -> ... -> sim -> core
// static-library link order.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/plan.hpp"
#include "sim/cluster.hpp"
#include "sim/fleet.hpp"

namespace pv {

/// A ScenarioSpec that cannot be built: zero node count, a fleet beyond
/// the supported scale, or sample accounting that would overflow the
/// exact integer range of a double.  Thrown by the builders before any
/// allocation happens; the CLI maps it to the usage exit code (2) — bad
/// input, not a failed campaign.
class ScenarioError : public std::invalid_argument {
 public:
  explicit ScenarioError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Declarative description of a synthetic measurement scenario.  Defaults
/// match the canonical rig every harness used; callers override the few
/// fields they care about (name, node count, cv, seed).
struct ScenarioSpec {
  std::string name = "synthetic";
  std::size_t nodes = 64;
  /// Fleet node-to-node coefficient of variation; the generated fleet
  /// uses FleetVariability::typical_cpu() rescaled to this, with the
  /// outlier process disabled for reproducible spreads.
  double cv = 0.02;
  double mean_node_w = 400.0;
  /// Seed for the fleet draw (generate_node_powers).  Callers deriving it
  /// from a campaign seed keep their historical mixing (e.g. the CLI's
  /// `seed ^ 0x99`) so existing outputs are unchanged.
  std::uint64_t fleet_seed = 1;
  std::size_t nodes_per_rack = 16;
  /// Firestarter workload phases (minutes): steady core burn, ramp, tail.
  double run_minutes = 30.0;
  double load = 1.0;
  double ramp_minutes = 2.0;
  double tail_minutes = 1.0;
};

/// A built scenario: the cluster, its lowered electrical model, and the
/// PlanInputs every planner call derives from.  The electrical model is
/// lowered through make_system_power_model, so node-tap campaigns pass
/// the streaming probe.
struct Scenario {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  PlanInputs inputs;

  /// Plans a measurement under `spec` with a fresh Rng(plan_seed) — the
  /// common single-plan case.  Callers that thread one Rng across several
  /// plans call plan_measurement(spec, inputs, rng) themselves.
  [[nodiscard]] MeasurementPlan plan(const MethodologySpec& spec,
                                     std::uint64_t plan_seed) const;
};

/// Builds the scenario: generates the fleet, constructs the cluster and
/// its electrical model (platinum PSUs, no auxiliaries), and fills
/// PlanInputs from the cluster's phases.
[[nodiscard]] Scenario build_scenario(const ScenarioSpec& spec);

/// Builds the scenario from an externally supplied fleet draw instead of
/// generating one — `powers.size()` must equal `spec.nodes`.  The fleet
/// means are the only nondeterministic-looking input to a build, so
/// build_scenario(spec) is exactly build_scenario_with_powers(spec,
/// generate_node_powers(...)); the persistent provision cache uses this
/// to reconstruct a scenario bit-identically from spilled node means.
[[nodiscard]] Scenario build_scenario_with_powers(const ScenarioSpec& spec,
                                                  std::vector<double> powers);

}  // namespace pv
