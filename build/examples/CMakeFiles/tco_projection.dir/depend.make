# Empty dependencies file for tco_projection.
# This may be replaced when dependencies are built.
