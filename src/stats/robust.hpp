#pragma once
// Robust location/scale estimators and outlier filtering.
//
// Faulty meters inject spikes, glitches and stuck readings that destroy
// moment-based summaries: a single 10x spike in a 1000-sample trace moves
// the mean by ~1%, an order of magnitude above the accuracy the paper's
// Level 2/3 rules target.  These estimators bound the influence of any
// individual sample, so per-node power summaries survive corrupted
// readings instead of silently absorbing them into the submitted number.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pv {

/// Median absolute deviation around the sample median.  With
/// `normal_consistent` the result is scaled by 1.4826 so it estimates the
/// standard deviation for normally distributed data.
[[nodiscard]] double median_abs_deviation(std::span<const double> xs,
                                          bool normal_consistent = true);

/// Mean of the sample after dropping the lowest and highest
/// floor(trim_frac * n) values.  trim_frac in [0, 0.5).
[[nodiscard]] double trimmed_mean(std::span<const double> xs,
                                  double trim_frac);

/// Winsorized mean: the tails that a trimmed mean would drop are instead
/// clamped to the nearest retained value.  trim_frac in [0, 0.5).
[[nodiscard]] double winsorized_mean(std::span<const double> xs,
                                     double trim_frac);

/// Outcome of a Hampel filter pass.
struct HampelResult {
  std::vector<double> filtered;       ///< outliers replaced by window median
  std::vector<std::uint8_t> outlier;  ///< 1 where a sample was replaced
  std::size_t outlier_count = 0;
};

/// Sliding-window Hampel identifier: sample i is an outlier when
/// |x_i - median(W_i)| > n_sigmas * MAD_sigma(W_i), where W_i is the
/// window of `half_window` samples on each side (truncated at the trace
/// edges) and MAD_sigma is the normal-consistent MAD.  Outliers are
/// replaced by their window median.  A zero-MAD window (locally constant
/// signal) treats any deviating sample as an outlier — exactly the
/// stuck-sensor-then-glitch pattern seen in site PDU logs.
[[nodiscard]] HampelResult hampel_filter(std::span<const double> xs,
                                         std::size_t half_window = 5,
                                         double n_sigmas = 3.0);

}  // namespace pv
