#pragma once
// Quantifying the ways a submission can be (or was) gamed, and the §5
// mitigations:
//   * window gaming — placing the v1.2 Level 1 window over the lowest
//     stretch of the run (TSUBAME-KFC −10.9%, L-CSC −23.9%);
//   * DVFS tuning — legal, but interacts with partial windows;
//   * VID screening — measuring only low-VID nodes biases the result;
//   * fan pinning — removes the dominant node-variability channel.

#include <span>

#include "sim/fleet.hpp"
#include "trace/segment.hpp"
#include "trace/window_select.hpp"

namespace pv {

// --------------------------------------------------------------------------
// Window gaming (§3)

/// Outcome of sweeping every legal v1.2 Level 1 window over a run.
struct WindowGamingResult {
  Watts full_core_avg{0.0};   ///< honest: whole-core-phase average
  WindowAverage best_window;  ///< lowest-average legal window
  WindowAverage worst_window; ///< highest-average legal window
  /// Fractional reduction the best window yields: 1 - best/full.
  double best_reduction = 0.0;
  /// Full spread between extreme legal windows: (worst - best)/full.
  double spread = 0.0;
};

/// Sweeps the minimum-duration Level 1 window across the legal middle-80%
/// region of `core_trace` (which must cover the core phase of `run`).
[[nodiscard]] WindowGamingResult analyze_window_gaming(
    const PowerTrace& core_trace, const RunPhases& run);

// --------------------------------------------------------------------------
// DVFS tuning (§5)

/// Minimum stable GPU voltage at frequency f for a specific ASIC: the
/// fused VID voltage scaled down as frequency drops, clamped to the
/// process's minimum operating voltage.  Linear model
/// V_min(f) = max(V_floor, V_vid * (0.55 + 0.45 f / f_ref)); at the L-CSC
/// numbers this lands a mid-VID ASIC at ~1.02 V for 774 MHz, matching [16],
/// and the floor is what pins the efficiency optimum near 774 MHz.
[[nodiscard]] Volts min_stable_voltage(const GpuModel& gpu, Hertz f);

/// Result of an exhaustive frequency/voltage search on one node.
struct DvfsSearchResult {
  OperatingPoint best_op;
  double best_gflops_per_watt = 0.0;
  double default_gflops_per_watt = 0.0;
  /// Fractional efficiency gain over the default operating point.
  double gain = 0.0;
};

/// Searches frequencies [f_lo, f_hi] in steps of f_step; at each
/// frequency, the node-wide voltage is the smallest that is stable on
/// *every* GPU of the node (boards in a node share a programmed setting).
[[nodiscard]] DvfsSearchResult dvfs_search(const NodeInstance& node,
                                           Hertz f_lo, Hertz f_hi,
                                           Hertz f_step);

// --------------------------------------------------------------------------
// VID screening (§5)

/// Bias obtained by metering only the k lowest-VID nodes.
struct VidScreeningResult {
  double fleet_mean = 0.0;     ///< fleet-wide mean of the metric
  double screened_mean = 0.0;  ///< mean over the k lowest-VID nodes
  double bias = 0.0;           ///< (screened - fleet) / fleet
};

/// Screening bias on node *power* (lower is "better" for a submission).
[[nodiscard]] VidScreeningResult vid_screening_power_bias(
    std::span<const NodeInstance> fleet, const NodeSettings& settings,
    std::size_t k, double activity = 1.0);

/// Screening bias on node *efficiency* (higher is better).
[[nodiscard]] VidScreeningResult vid_screening_efficiency_bias(
    std::span<const NodeInstance> fleet, const NodeSettings& settings,
    std::size_t k);

// --------------------------------------------------------------------------
// Fan policy (§5)

/// Fleet power cv under automatic vs pinned fans, all else equal.
struct FanPolicyImpact {
  double cv_auto = 0.0;
  double cv_pinned = 0.0;
  double mean_fan_power_auto_w = 0.0;
  double mean_fan_power_pinned_w = 0.0;
};

[[nodiscard]] FanPolicyImpact fan_policy_impact(
    std::span<const NodeInstance> fleet, const NodeSettings& base_settings,
    double pinned_speed, double activity = 1.0);

}  // namespace pv
