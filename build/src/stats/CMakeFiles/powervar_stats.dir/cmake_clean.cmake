file(REMOVE_RECURSE
  "CMakeFiles/powervar_stats.dir/autocorr.cpp.o"
  "CMakeFiles/powervar_stats.dir/autocorr.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/powervar_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/descriptive.cpp.o"
  "CMakeFiles/powervar_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/distributions.cpp.o"
  "CMakeFiles/powervar_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/histogram.cpp.o"
  "CMakeFiles/powervar_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/normality.cpp.o"
  "CMakeFiles/powervar_stats.dir/normality.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/rng.cpp.o"
  "CMakeFiles/powervar_stats.dir/rng.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/sampling.cpp.o"
  "CMakeFiles/powervar_stats.dir/sampling.cpp.o.d"
  "CMakeFiles/powervar_stats.dir/special.cpp.o"
  "CMakeFiles/powervar_stats.dir/special.cpp.o.d"
  "libpowervar_stats.a"
  "libpowervar_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powervar_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
