#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/report.hpp"
#include "stats/descriptive.hpp"
#include "stats/fused.hpp"
#include "stats/robust.hpp"
#include "stats/sketch.hpp"
#include "util/expects.hpp"
#include "util/mathx.hpp"
#include "util/parallel.hpp"
#include "util/ring.hpp"
#include "workload/workload.hpp"

namespace pv {
namespace {

// Average of f over [a, b] via midpoint panels — used for ground truth.
double mean_over_window(const std::function<double(double)>& f, double a,
                        double b) {
  return average_over(f, a, b, 2048);
}

// RNG stream salts for the fault processes (the calibration/noise salts
// are kCalibrationSalt / kNoiseSalt from sim/fleet_state.hpp, shared with
// fleet provisioning and the async collector).
constexpr std::uint64_t kFateSalt = 0xFA7E0FA7ULL;
constexpr std::uint64_t kFaultSalt = 0x1FAC7ED0ULL;

// Node-tap Aggregate tail (defined with the other aggregate functions
// below); the live meter stage also runs it on mid-run snapshots so
// partial and final documents cannot drift apart structurally.
void aggregate_nodes(CampaignContext& ctx);

// The common time grid cross-validation compares meters on.  Plans that
// already meter several windows (L2 spot sampling) use those directly;
// single-window plans (L1/L3 continuous) are subdivided.
std::vector<TimeWindow> make_analysis_windows(
    const std::vector<TimeWindow>& metered, std::size_t target) {
  if (metered.size() >= 4 || metered.empty()) return metered;
  const std::size_t per =
      std::max<std::size_t>(1, (std::max<std::size_t>(target, 4) +
                                metered.size() - 1) /
                                   metered.size());
  std::vector<TimeWindow> out;
  out.reserve(metered.size() * per);
  for (const TimeWindow& w : metered) {
    const double step = w.duration().value() / static_cast<double>(per);
    for (std::size_t i = 0; i < per; ++i) {
      out.push_back(TimeWindow{
          Seconds{w.begin.value() + static_cast<double>(i) * step},
          Seconds{w.begin.value() + static_cast<double>(i + 1) * step}});
    }
  }
  return out;
}

// Samples the meter would produce over the windows — used to account for
// meters that never report.
std::size_t expected_samples(const std::vector<TimeWindow>& windows,
                             const MeterModel& meter) {
  std::size_t n = 0;
  for (const TimeWindow& w : windows) n += meter.samples_in(w);
  return n;
}

// Streaming context of one node device: the shared per-window shape
// tables plus this node's mean, PSU curve (null for DC taps) and a
// reusable scratch buffer owned by the worker's chunk.
struct StreamScope {
  const std::vector<ShapeTable>* tables = nullptr;  // parallel to windows
  double mean_w = 0.0;
  const CompiledPsuCurve* curve = nullptr;
  StreamScratch* scratch = nullptr;
};

// Window-fed metering state machine for one device.  The batch stages
// drive it window by window (meter_device below) and the live stage
// drives it chunk by chunk — both end at the identical DeviceReading,
// because every accumulator here chains in the exact order the historical
// metering loop used.  Holds no reference to the meter or the window
// list, so a fleet of these can live in a relocatable slot vector.
//
// With faults disabled a device is fed clean readings (whole traces or
// window chunks); with faults enabled each window's clean trace is
// corrupted, quality-checked, repaired and despiked, and the device may
// finish lost.
class DeviceMeter {
 public:
  DeviceMeter(const FaultPlan& fp, std::uint64_t seed, std::uint64_t stream,
              std::size_t meter_id, TimeWindow campaign_window,
              std::size_t n_windows, std::size_t samples_expected,
              const std::vector<TimeWindow>* analysis)
      : fp_(&fp), analysis_(analysis), n_windows_(n_windows) {
    if (analysis_ != nullptr) {
      bucket_sum_.assign(analysis_->size(), 0.0);
      bucket_n_.assign(analysis_->size(), 0);
    }
    faulty_ = fp.enabled();
    if (!faulty_) return;
    r_.samples_expected = samples_expected;
    if (fp.forced_dead(meter_id)) {
      dead_ = true;
      r_.lost = true;
      r_.samples_lost = r_.samples_expected;
      return;
    }
    Rng fate_rng(seed ^ kFateSalt, stream);
    fault_rng_.emplace(seed ^ kFaultSalt, stream);
    fate_ = draw_meter_fate(fp.spec, campaign_window, fate_rng);
    const std::size_t byz_pos = fp.forced_byzantine(meter_id);
    if (byz_pos != FaultPlan::npos) {
      fp.apply_forced_byzantine(byz_pos, campaign_window, fate_);
    }
  }

  /// Forced dead at provision time: feed nothing, finish() is final.
  [[nodiscard]] bool dead() const { return dead_; }

  /// Clean path, chunk-fed: samples [first, first + readings.size()) of
  /// the current window.  Chunks must arrive in order; the running sum
  /// chains left-to-right, so any chunking reproduces the whole-window
  /// bits.
  void feed_clean_chunk(double t_begin, double dt, std::size_t first,
                        std::span<const double> readings) {
    double s = win_sum_;
    for (const double x : readings) s += x;
    win_sum_ = s;
    win_n_ += readings.size();
    win_dt_ = dt;
    bucket(t_begin, dt, first, readings);
  }

  /// Adopts a chunk the fused fleet kernels already chained: `chained`
  /// is the window's running sum *after* this chunk (the kernels add
  /// into a per-lane accumulator with the exact feed_clean_chunk
  /// chaining), `count` the chunk's samples.  Keeps win_n_/win_dt_ and
  /// therefore the live snapshots and close_clean_window() working
  /// unchanged.  Clean non-reconciling windows only (no buckets).
  void adopt_clean_chunk(double chained, std::size_t count, double dt) {
    win_sum_ = chained;
    win_n_ += count;
    win_dt_ = dt;
  }

  /// Closes the current chunk-fed clean window; returns its mean.
  double close_clean_window() {
    // 0.0 + win_sum_: the exact expression the historical per-window
    // FusedAccumulator produced (bulk push into a fresh accumulator adds
    // the batch sum onto the zero seed), so chunk-fed windows close on
    // the same bits the batch path computed.
    const double total = 0.0 + win_sum_;
    const double window_mean = total / static_cast<double>(win_n_);
    mean_acc_ += window_mean;
    r_.energy_j += total * win_dt_;
    win_sum_ = 0.0;
    win_n_ = 0;
    ++windows_contributing_;
    return window_mean;
  }

  /// Clean path, whole-trace (eager engine); returns the window mean.
  double feed_clean_trace(const PowerTrace& trace) {
    const double window_mean = trace.mean_power().value();
    mean_acc_ += window_mean;
    r_.energy_j += trace.energy().value();
    bucket(trace.t0().value(), trace.dt().value(), 0, trace.watts());
    ++windows_contributing_;
    return window_mean;
  }

  /// Faulted path: corrupt, flag, repair and despike one window's clean
  /// trace.  Returns the window mean when the window contributed, nullopt
  /// when it was fully lost.
  std::optional<double> feed_faulted_window(const PowerTrace& clean,
                                            const TimeWindow& w) {
    GappyTrace gappy = inject_faults(clean, fp_->spec, fate_, *fault_rng_);
    r_.stuck_flagged += flag_stuck_runs(gappy, fp_->stuck_run_min);
    const GapStats gs = gappy.gap_stats();
    valid_total_ += gs.total - gs.missing;
    r_.samples_lost += gs.missing;
    if (gs.missing == gs.total) return std::nullopt;  // window fully lost

    const PowerTrace dense = gappy.repaired(fp_->repair);
    const HampelResult despiked = hampel_filter(
        dense.watts(), fp_->hampel_half_window, fp_->hampel_n_sigmas);
    r_.spikes_filtered += despiked.outlier_count;
    r_.samples_repaired += gs.missing;
    const double window_mean = mean_of(despiked.filtered);
    mean_acc_ += window_mean;
    r_.energy_j += window_mean * w.duration().value();
    ++windows_contributing_;
    bucket(dense.t0().value(), dense.dt().value(), 0, despiked.filtered);
    return window_mean;
  }

  /// Finalizes the reading: clean mean over all windows, or the faulted
  /// coverage-floor verdict.  Call exactly once, after the last window.
  DeviceReading finish() {
    if (dead_) return std::move(r_);
    if (!faulty_) {
      r_.mean_w = mean_acc_ / static_cast<double>(n_windows_);
      finish_buckets();
      return std::move(r_);
    }
    const double coverage =
        r_.samples_expected == 0
            ? 0.0
            : static_cast<double>(valid_total_) /
                  static_cast<double>(r_.samples_expected);
    if (windows_contributing_ == 0 || coverage < fp_->min_coverage) {
      r_.lost = true;
      // A discarded series repairs nothing; its whole record is lost.
      r_.samples_lost = r_.samples_expected;
      r_.samples_repaired = 0;
      r_.energy_j = 0.0;
      return std::move(r_);
    }
    r_.mean_w = mean_acc_ / static_cast<double>(windows_contributing_);
    finish_buckets();
    return std::move(r_);
  }

  // --- read-only mid-run snapshots for partial (live) reporting.  None
  // of these mutate state or draw RNG, so emission cannot perturb the
  // final numbers.

  /// Device has at least one contributing (or open, partially-fed)
  /// window to report on.
  [[nodiscard]] bool live_has_data() const {
    return !dead_ && (windows_contributing_ > 0 || win_n_ > 0);
  }
  /// Running mean over contributing windows, including the open window's
  /// partial samples when present.
  [[nodiscard]] double live_mean_w() const {
    double acc = mean_acc_;
    std::size_t n = windows_contributing_;
    if (win_n_ > 0) {
      acc += (0.0 + win_sum_) / static_cast<double>(win_n_);
      ++n;
    }
    return acc / static_cast<double>(n);
  }
  /// Energy accumulated so far, including the open window's samples.
  [[nodiscard]] double live_energy_j() const {
    double e = r_.energy_j;
    if (win_n_ > 0) e += (0.0 + win_sum_) * win_dt_;
    return e;
  }

 private:
  // Accumulates per-analysis-window sums for cross-validation on the
  // *window-global* sample index.  Reading already-produced values draws
  // no RNG, so enabling reconciliation cannot perturb the metered
  // numbers.
  void bucket(double t0, double dt, std::size_t first,
              std::span<const double> values) {
    if (analysis_ == nullptr) return;
    for (std::size_t j = 0; j < values.size(); ++j) {
      const double t = t0 + (static_cast<double>(first + j) + 0.5) * dt;
      for (std::size_t a = 0; a < analysis_->size(); ++a) {
        const TimeWindow& aw = (*analysis_)[a];
        if (t >= aw.begin.value() && t < aw.end.value()) {
          bucket_sum_[a] += values[j];
          ++bucket_n_[a];
          break;
        }
      }
    }
  }

  void finish_buckets() {
    if (analysis_ == nullptr) return;
    r_.analysis_means_w.assign(analysis_->size(),
                               std::numeric_limits<double>::quiet_NaN());
    for (std::size_t a = 0; a < analysis_->size(); ++a) {
      if (bucket_n_[a] > 0) {
        r_.analysis_means_w[a] =
            bucket_sum_[a] / static_cast<double>(bucket_n_[a]);
      }
    }
  }

  const FaultPlan* fp_;
  const std::vector<TimeWindow>* analysis_;
  std::size_t n_windows_;
  DeviceReading r_;
  std::vector<double> bucket_sum_;
  std::vector<std::size_t> bucket_n_;
  bool faulty_ = false;
  bool dead_ = false;
  double mean_acc_ = 0.0;
  std::size_t windows_contributing_ = 0;
  std::size_t valid_total_ = 0;
  // Open clean window: left-to-right chained sum + sample count.
  double win_sum_ = 0.0;
  double win_dt_ = 0.0;
  std::size_t win_n_ = 0;
  // Faulted state: the fate is drawn once; the fault stream persists
  // across windows exactly like the historical single-loop consumption.
  MeterFate fate_;
  std::optional<Rng> fault_rng_;
};

// Meters `truth` over every window by driving a DeviceMeter through the
// batch feeding order.  With `stream_scope` set the clean readings come
// from the streaming kernels instead of the truth function —
// bit-identical by construction (sim/streaming.hpp), so everything
// downstream is shared verbatim.
DeviceReading meter_device(const MeterModel& meter,
                           const PowerFunction& truth,
                           const std::vector<TimeWindow>& windows,
                           TimeWindow campaign_window, Rng& noise,
                           const CampaignConfig& config,
                           std::uint64_t stream, std::size_t meter_id,
                           const std::vector<TimeWindow>* analysis = nullptr,
                           const StreamScope* stream_scope = nullptr) {
  DeviceMeter dm(config.faults, config.seed, stream, meter_id,
                 campaign_window, windows.size(),
                 expected_samples(windows, meter), analysis);
  if (dm.dead()) return dm.finish();

  if (!config.faults.enabled()) {
    if (stream_scope != nullptr) {
      // Streaming clean path: no PowerTrace, no per-window allocation.
      StreamScratch& scratch = *stream_scope->scratch;
      for (std::size_t wi = 0; wi < windows.size(); ++wi) {
        const ShapeTable& table = (*stream_scope->tables)[wi];
        stream_node_window(table, stream_scope->mean_w, stream_scope->curve,
                           meter, noise, scratch);
        dm.feed_clean_chunk(table.t_begin, table.dt, 0, scratch.readings);
        dm.close_clean_window();
      }
    } else {
      for (const TimeWindow& w : windows) {
        dm.feed_clean_trace(meter.measure(truth, w.begin, w.end, noise));
      }
    }
    return dm.finish();
  }

  for (std::size_t wi = 0; wi < windows.size(); ++wi) {
    const TimeWindow& w = windows[wi];
    // The fault pipeline consumes a materialized trace either way; the
    // streaming engine only swaps how the clean readings are produced.
    const PowerTrace clean = [&] {
      if (stream_scope == nullptr) {
        return meter.measure(truth, w.begin, w.end, noise);
      }
      stream_node_window((*stream_scope->tables)[wi], stream_scope->mean_w,
                         stream_scope->curve, meter, noise,
                         *stream_scope->scratch);
      return PowerTrace(w.begin, meter.interval(),
                        stream_scope->scratch->readings);
    }();
    dm.feed_faulted_window(clean, w);
  }
  return dm.finish();
}

void absorb_tallies(DataQuality& dq, const DeviceReading& r) {
  dq.samples_expected += r.samples_expected;
  dq.samples_lost += r.samples_lost;
  dq.samples_repaired += r.samples_repaired;
  dq.spikes_filtered += r.spikes_filtered;
  dq.stuck_flagged += r.stuck_flagged;
}

void finalize_quality(DataQuality& dq) {
  dq.sample_coverage =
      dq.samples_expected == 0
          ? 1.0
          : static_cast<double>(dq.samples_expected - dq.samples_lost) /
                static_cast<double>(dq.samples_expected);
}

// RNG streams: nodes use their node id, rack taps 1'000'000 + rack, the
// facility feed 9'999'999; the trusted check meters reconciliation reads
// the hierarchy through sit on disjoint streams below.
constexpr std::uint64_t kRackStreamBase = 1'000'000;
constexpr std::uint64_t kFacilityStream = 9'999'999;
constexpr std::uint64_t kRackCheckStreamBase = 3'000'000;
constexpr std::uint64_t kFacilityCheckStream = 9'999'998;

// A fault-free reference meter read over each analysis window: the
// facility-grade instrumentation (Cray PMDB style) the hierarchy check
// trusts.  Its calibration error still applies — the check tolerates it
// because verdicts come from the cohort statistics, and the hierarchy
// residual only confirms them.
std::vector<double> measure_check_meter(const PowerFunction& truth,
                                        const std::vector<TimeWindow>& analysis,
                                        const MeasurementPlan& plan,
                                        const CampaignConfig& config,
                                        Seconds interval,
                                        std::uint64_t stream) {
  Rng calibration(config.seed ^ kCalibrationSalt, stream);
  Rng noise(config.seed ^ kNoiseSalt, stream);
  const MeterModel meter(config.meter_accuracy, plan.meter_mode, interval,
                         calibration);
  std::vector<double> means;
  means.reserve(analysis.size());
  for (const TimeWindow& w : analysis) {
    const PowerTrace trace = meter.measure(truth, w.begin, w.end, noise);
    means.push_back(trace.mean_power().value());
  }
  return means;
}

// Hierarchy checks for a node-AC campaign: one rack-PDU check meter per
// rack whose node meters all produced a series, and — when every rack is
// checkable and no auxiliary subsystems muddy the sum — a facility check
// over the rack check meters.  DC taps are skipped: the per-node PSU
// correction is nonlinear, so the rack sum is not a clean function of the
// DC series (the cohort check still covers those campaigns).
std::vector<HierarchyCheck> build_hierarchy_checks(
    const SystemPowerModel& electrical, const MeasurementPlan& plan,
    const CampaignConfig& config, Seconds interval,
    const std::vector<TimeWindow>& analysis,
    const std::vector<MeterSeries>& node_series) {
  std::vector<HierarchyCheck> checks;
  if (plan.point != MeasurementPoint::kNodeAc) return checks;

  std::vector<const MeterSeries*> by_node(electrical.node_count(), nullptr);
  for (const MeterSeries& s : node_series) by_node[s.meter_id] = &s;

  const double loss_scale = 1.0 / (1.0 - electrical.pdu_loss_fraction());
  bool all_racks_checkable = electrical.rack_count() > 0;
  for (std::size_t rack = 0; rack < electrical.rack_count(); ++rack) {
    const std::size_t first = rack * electrical.nodes_per_rack();
    const std::size_t last =
        std::min(first + electrical.nodes_per_rack(), electrical.node_count());
    bool checkable = true;
    for (std::size_t node = first; node < last; ++node) {
      if (by_node[node] == nullptr) {
        checkable = false;
        break;
      }
    }
    if (!checkable) {
      all_racks_checkable = false;
      continue;
    }
    HierarchyCheck check;
    check.label = "rack " + std::to_string(rack);
    check.parent_id = kRackCheckStreamBase + rack;
    check.parent_means_w = measure_check_meter(
        [&electrical, rack](double t) { return electrical.rack_pdu_w(rack, t); },
        analysis, plan, config, interval, kRackCheckStreamBase + rack);
    for (std::size_t node = first; node < last; ++node) {
      check.child_ids.push_back(node);
      check.child_means_w.push_back(by_node[node]->means_w);
    }
    check.child_scale = loss_scale;
    checks.push_back(std::move(check));
  }

  const double t_mid =
      plan.window.begin.value() + 0.5 * plan.window.duration().value();
  if (all_racks_checkable && electrical.auxiliary_ac_w(t_mid) == 0.0) {
    HierarchyCheck facility;
    facility.label = "facility";
    facility.parent_id = kFacilityCheckStream;
    facility.parent_means_w = measure_check_meter(
        electrical.facility_function(), analysis, plan, config, interval,
        kFacilityCheckStream);
    for (const HierarchyCheck& rack : checks) {
      facility.child_ids.push_back(rack.parent_id);
      facility.child_means_w.push_back(rack.parent_means_w);
    }
    facility.child_scale = 1.0;
    checks.push_back(std::move(facility));
  }
  return checks;
}

// Ground truth for a streaming-verified campaign.  When the electrical
// model is the cluster lowered through make_system_power_model (which the
// streaming probe has checked), compute_ac_w depends on t only through
// the shared shape factor — so panel evaluations over a steady phase are
// the same double over and over.  Memoizing them on the shape's bit
// pattern leaves the integration grid, the summation order and every
// per-panel value untouched: average_over sees a function returning the
// exact doubles compute_ac_w would return, just without recomputing the
// 240-node PSU sum per panel.
Watts streaming_true_scope_power(const ClusterPowerModel& cluster,
                                 const SystemPowerModel& electrical,
                                 const MethodologySpec& spec) {
  const TimeWindow core = cluster.phases().core_window();
  std::unordered_map<std::uint64_t, double> memo;
  const auto compute_memo = [&](double t) {
    const double s = cluster.shape_factor(t);
    std::uint64_t bits = 0;
    std::memcpy(&bits, &s, sizeof bits);
    const auto it = memo.find(bits);
    if (it != memo.end()) return it->second;
    const double v = electrical.compute_ac_w(t);
    memo.emplace(bits, v);
    return v;
  };
  const double compute =
      mean_over_window(compute_memo, core.begin.value(), core.end.value());
  if (spec.subsystems == SubsystemRule::kComputeOnly) return Watts{compute};
  // Auxiliaries are arbitrary functions of t (no shape identity to key
  // on); their panel evaluations stay direct.
  const double aux = mean_over_window(
      [&](double t) { return electrical.auxiliary_ac_w(t); },
      core.begin.value(), core.end.value());
  return Watts{compute + aux};
}

// --- stages ---------------------------------------------------------------

// Worker threads for the node fan-outs: the meter fan-out knob, widened
// by the reconcile knob when the defense is on.
std::size_t node_fanout(const CampaignConfig& config, bool reconciling) {
  return std::max<std::size_t>(
      {config.threads,
       reconciling ? static_cast<std::size_t>(config.reconcile.threads)
                   : std::size_t{1},
       std::size_t{1}});
}

class ProvisionStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "provision"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    const ClusterPowerModel& cluster = *ctx.cluster;
    const SystemPowerModel& electrical = *ctx.electrical;
    const MeasurementPlan& plan = *ctx.plan;
    const CampaignConfig& config = *ctx.config;

    ctx.interval = config.meter_interval_override.value() > 0.0
                       ? config.meter_interval_override
                       : plan.meter_interval;
    ctx.faulty = config.faults.enabled();
    ctx.result.system_name = cluster.name();
    ctx.result.nodes_measured = plan.node_count();
    ctx.result.window_duration = plan.window.duration();
    ctx.dq().faults_enabled = ctx.faulty;

    // The time windows this plan actually meters (aspect 1).
    ctx.windows = metered_windows(plan, ctx.interval);

    switch (plan.point) {
      case MeasurementPoint::kFacilityFeed:
        ctx.dq().meters_planned = 1;
        break;
      case MeasurementPoint::kRackPdu: {
        for (std::size_t node : plan.node_indices) {
          PV_EXPECTS(node < cluster.node_count(),
                     "plan references missing node");
          ctx.racks.push_back(node / electrical.nodes_per_rack());
        }
        std::sort(ctx.racks.begin(), ctx.racks.end());
        ctx.racks.erase(std::unique(ctx.racks.begin(), ctx.racks.end()),
                        ctx.racks.end());
        ctx.dq().meters_planned = ctx.racks.size();
        break;
      }
      default: {
        ctx.dq().meters_planned = plan.node_count();
        ctx.reconciling = config.reconcile.enabled;
        if (ctx.reconciling) {
          ctx.analysis = make_analysis_windows(
              ctx.windows, config.reconcile.analysis_windows);
        }
        // Streaming engine: valid when the electrical model really is the
        // cluster lowered through make_system_power_model, i.e. each
        // node's DC truth is its mean times the shared shape.  Probed
        // exactly — any mismatch (a hand-built SystemPowerModel) falls
        // back to the eager path, whose arithmetic the kernels reproduce
        // bit-for-bit anyway.
        bool streaming = config.engine == CampaignEngine::kStreaming;
        if (streaming) {
          const std::size_t probe = plan.node_indices.front();
          PV_EXPECTS(probe < cluster.node_count(),
                     "plan references missing node");
          // Probe the metered window (the kernels) and the core window
          // (the memoized ground truth) alike.
          const TimeWindow core = cluster.phases().core_window();
          for (const TimeWindow& w : {plan.window, core}) {
            for (double frac : {0.25, 0.5, 0.75}) {
              const double t = w.begin.value() + frac * w.duration().value();
              const double lowered =
                  cluster.node_means()[probe] * cluster.shape_factor(t);
              if (electrical.node_dc_w(probe, t) != lowered) {
                streaming = false;
                break;
              }
            }
            if (!streaming) break;
          }
        }
        ctx.streaming = streaming;
        // The live (bounded-memory) meter stage builds its own per-chunk
        // shape tables on the fly — materializing every window here would
        // defeat its O(nodes + windows) footprint.
        if (streaming && !config.live.enabled) {
          ctx.tables = build_shape_tables(cluster, ctx.windows, ctx.interval,
                                          plan.meter_mode);
        }
        // Transpose the cohort into the fleet table: meter models +
        // calibration columns, per-node noise streams, PSU lanes and
        // fault flags, in plan order.  Built once here, shared by every
        // downstream metering path (batch, live, async collection).
        // Sharded over the fan-out pool; every lane is a pure function
        // of its own node id, so the build is bit-identical at any
        // thread count.
        {
          FleetProvisionSpec fspec;
          fspec.accuracy = config.meter_accuracy;
          fspec.mode = plan.meter_mode;
          fspec.interval = ctx.interval;
          fspec.seed = config.seed;
          fspec.ac_tap = plan.point != MeasurementPoint::kNodeDc;
          const std::size_t fanout = node_fanout(config, ctx.reconciling);
          std::optional<ThreadPool> pool;
          if (fanout > 1) pool.emplace(static_cast<unsigned>(fanout));
          ctx.fleet = std::make_unique<FleetState>(build_fleet_state(
              plan.node_indices, fspec, ctx.windows,
              ctx.faulty ? &config.faults : nullptr, &cluster, &electrical,
              pool ? &*pool : nullptr));
        }
        break;
      }
    }

    // Expected sample count of any one meter: a probe model on a
    // throwaway RNG stream — campaign streams are untouched.
    {
      Rng probe_rng(0, 0);
      const MeterModel probe(config.meter_accuracy, plan.meter_mode,
                             ctx.interval, probe_rng);
      ctx.samples_per_meter = expected_samples(ctx.windows, probe);
    }

    trace.items = ctx.dq().meters_planned;
    trace.samples = ctx.samples_per_meter * ctx.dq().meters_planned;
    trace.virtual_s = plan.window.duration().value();
    trace.counters = {
        {"windows", static_cast<double>(ctx.windows.size())},
        {"analysis_windows", static_cast<double>(ctx.analysis.size())},
        {"streaming", ctx.streaming ? 1.0 : 0.0},
        {"interval_s", ctx.interval.value()},
        {"fleet_nodes",
         ctx.fleet ? static_cast<double>(ctx.fleet->size()) : 0.0},
        {"fleet_psu_shared",
         ctx.fleet && ctx.fleet->bank.shared() ? 1.0 : 0.0},
    };
  }
};

// Virtual seconds a meter stage covered: every meter reads every window.
double metered_virtual_s(const CampaignContext& ctx, std::size_t meters) {
  double s = 0.0;
  for (const TimeWindow& w : ctx.windows) s += w.duration().value();
  return s * static_cast<double>(meters);
}

class NodeMeterStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "meter"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    const SystemPowerModel& electrical = *ctx.electrical;
    const MeasurementPlan& plan = *ctx.plan;
    const CampaignConfig& config = *ctx.config;
    const bool streaming = ctx.streaming;
    const bool reconciling = ctx.reconciling;

    // Meter every selected node through the fleet table Provision built:
    // calibration errors and noise streams were drawn there, keyed by the
    // node id, so this stage only consumes lanes.
    PV_EXPECTS(ctx.fleet != nullptr, "meter stage needs a provisioned fleet");
    FleetState& fleet = *ctx.fleet;
    const std::size_t n = plan.node_count();
    ctx.devices.resize(n);
    ctx.readings.resize(n);
    const std::size_t fanout = node_fanout(config, reconciling);
    // Fused fleet kernels: clean streaming campaigns stream every window
    // sample-major with the node index as the SIMD lane.  Faulted
    // campaigns keep the per-node path — the corruption pipeline needs a
    // materialized trace per node per window.
    const bool fused = streaming && !ctx.faulty && config.fleet_soa;

    // DeviceReading -> NodeReading, identical to the historical tail.
    const auto to_node_reading = [&](std::size_t i) {
      const DeviceReading& reading = ctx.devices[i];
      NodeReading nr;
      nr.node = plan.node_indices[i];
      nr.lost = reading.lost;
      if (!reading.lost) {
        nr.mean_w = reading.mean_w;
        nr.energy_j = reading.energy_j;
        if (plan.timing != TimingStrategy::kContinuous) {
          // Spot sampling: report energy as mean power over the window.
          nr.energy_j = nr.mean_w * plan.window.duration().value();
        }
        apply_dc_conversion(plan, electrical, nr.node, nr.mean_w,
                            nr.energy_j);
      }
      ctx.readings[i] = nr;
    };

    if (fused) {
      // Each lane runs the per-node expressions operand for operand
      // (sim/fleet_state.hpp), so the finished devices carry the same
      // bits meter_device would produce lane by lane.
      std::vector<std::vector<std::int32_t>> analysis_idx;
      FleetAccumulators acc;
      acc.init(n, reconciling ? ctx.analysis.size() : 0);
      if (reconciling) {
        // The sample grid is shared across the clean cohort, so the
        // bucket mapping and counts are computed once per window — the
        // per-node path recomputed them per device.
        analysis_idx.reserve(ctx.tables.size());
        for (const ShapeTable& t : ctx.tables) {
          analysis_idx.push_back(map_analysis_samples(t, ctx.analysis));
          count_analysis_samples(analysis_idx.back(), acc.bucket_n);
        }
      }
      const auto stream_lanes = [&](std::size_t b, std::size_t e) {
        FleetScratch scratch;
        stream_fleet_windows(ctx.tables, analysis_idx, fleet, b, e, acc,
                             scratch);
      };
      if (fanout > 1) {
        ThreadPool pool(static_cast<unsigned>(fanout));
        parallel_chunks(&pool, n, stream_lanes);
      } else {
        stream_lanes(0, n);
      }
      // Finish: the exact DeviceMeter::finish()/finish_buckets()
      // expressions per lane.
      const double n_windows = static_cast<double>(ctx.windows.size());
      for (std::size_t i = 0; i < n; ++i) {
        DeviceReading r;
        r.mean_w = acc.mean_acc[i] / n_windows;
        r.energy_j = acc.energy_j[i];
        if (reconciling) {
          r.analysis_means_w.assign(
              ctx.analysis.size(), std::numeric_limits<double>::quiet_NaN());
          for (std::size_t a = 0; a < ctx.analysis.size(); ++a) {
            if (acc.bucket_n[a] > 0) {
              r.analysis_means_w[a] = acc.bucket_sum[a * n + i] /
                                      static_cast<double>(acc.bucket_n[a]);
            }
          }
        }
        ctx.devices[i] = std::move(r);
        to_node_reading(i);
      }
    } else {
      const auto meter_one = [&](std::size_t i, StreamScratch& scratch) {
        const std::size_t node = plan.node_indices[i];
        PowerFunction truth;  // only the eager path walks the function chain
        StreamScope scope;
        if (streaming) {
          scope.tables = &ctx.tables;
          scope.mean_w = fleet.mean_w[i];
          scope.curve = fleet.curve[i];
          scope.scratch = &scratch;
        } else {
          truth = plan.point == MeasurementPoint::kNodeDc
                      ? PowerFunction([&electrical, node](double t) {
                          return electrical.node_dc_w(node, t);
                        })
                      : electrical.node_ac_function(node);
        }
        ctx.devices[i] = meter_device(
            fleet.meters[i], truth, ctx.windows, plan.window, fleet.noise[i],
            config, node, node, reconciling ? &ctx.analysis : nullptr,
            streaming ? &scope : nullptr);
        to_node_reading(i);
      };
      // Every lane's streams are keyed by its node id and every result
      // lands in its own slot, so the fan-out is bit-identical at any
      // thread count.  Chunked sharding gives each worker one contiguous
      // range and one scratch buffer reused across all of its nodes.
      if (fanout > 1) {
        ThreadPool pool(static_cast<unsigned>(fanout));
        parallel_chunks(&pool, n, [&](std::size_t begin, std::size_t end) {
          StreamScratch scratch;
          for (std::size_t i = begin; i < end; ++i) {
            meter_one(i, scratch);
          }
        });
      } else {
        StreamScratch scratch;
        for (std::size_t i = 0; i < n; ++i) {
          meter_one(i, scratch);
        }
      }
    }

    std::size_t lost = 0;
    for (const NodeReading& nr : ctx.readings) lost += nr.lost ? 1 : 0;
    trace.items = ctx.readings.size();
    trace.samples = ctx.samples_per_meter * ctx.readings.size();
    trace.virtual_s = metered_virtual_s(ctx, ctx.readings.size());
    trace.counters = {
        {"engine_streaming", streaming ? 1.0 : 0.0},
        {"fleet_fused", fused ? 1.0 : 0.0},
        {"fanout", static_cast<double>(fanout)},
        {"lost", static_cast<double>(lost)},
    };
  }
};

// One closed metering window's fleet-level summary, retained in the live
// stage's fixed-capacity ring buffer.
struct WindowSummary {
  std::size_t index = 0;
  double fleet_mean_w = 0.0;
  std::size_t nodes = 0;
};

// Bounded-memory node-tap Meter stage (config.live).  Window-major: the
// outer loop walks metering windows — clean streaming campaigns in
// fixed-size shape chunks — and the inner fan-out walks per-node slots.
// Peak footprint is O(nodes + chunk_samples + analysis windows),
// independent of campaign length, versus the batch stage's O(total
// samples) up-front shape tables.
//
// Byte-identity with NodeMeterStage: every per-node RNG stream is keyed
// identically and consumed in the identical time order (calibration at
// slot build, noise chunk-by-chunk within each node), kernel chunks
// evaluate the window-global sample grid, and DeviceMeter chains every
// accumulator in batch feeding order.  The pool barrier after each chunk
// gives the serial bookkeeping a happens-before edge over every worker
// write.  test_streaming_assessment memcmps the result against the batch
// stage across seeds x levels x threads x fault plans.
class LiveNodeMeterStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "meter"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    const ClusterPowerModel& cluster = *ctx.cluster;
    const SystemPowerModel& electrical = *ctx.electrical;
    const MeasurementPlan& plan = *ctx.plan;
    const CampaignConfig& config = *ctx.config;
    const LiveOptions& live = config.live;
    const bool streaming = ctx.streaming;
    const bool reconciling = ctx.reconciling;
    const bool faulty = ctx.faulty;
    const std::size_t n = plan.node_count();

    // The cohort's meters, noise streams, means and PSU lanes live in the
    // fleet table Provision built; this stage only consumes lanes.
    PV_EXPECTS(ctx.fleet != nullptr, "meter stage needs a provisioned fleet");
    FleetState& fleet = *ctx.fleet;

    // Per-node driver state: everything a worker mutates for node i lives
    // in slot i (or lane i of the fleet), so the window-major fan-out is
    // bit-identical at any thread count.
    struct NodeSlot {
      DeviceMeter dm;
      PowerFunction truth;       // eager truth chain
      double window_mean = 0.0;  // current window's mean (worker-written)
      bool window_contributed = false;
    };
    std::vector<NodeSlot> slots;
    slots.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t node = plan.node_indices[i];
      DeviceMeter dm(config.faults, config.seed, node, node, plan.window,
                     ctx.windows.size(), fleet.samples_expected[i],
                     reconciling ? &ctx.analysis : nullptr);
      NodeSlot slot{std::move(dm), PowerFunction{}, 0.0, false};
      if (!streaming) {
        slot.truth = plan.point == MeasurementPoint::kNodeDc
                         ? PowerFunction([&electrical, node](double t) {
                             return electrical.node_dc_w(node, t);
                           })
                         : electrical.node_ac_function(node);
      }
      slots.push_back(std::move(slot));
    }

    const std::size_t fanout = node_fanout(config, reconciling);
    std::optional<ThreadPool> pool;
    if (fanout > 1) pool.emplace(static_cast<unsigned>(fanout));
    ThreadPool* const pool_ptr = pool ? &*pool : nullptr;

    // Campaign-wide bounded state: a fixed-capacity ring of closed-window
    // fleet summaries plus a mergeable quantile sketch over per-node
    // window means — one small sketch per closed window, merged in, which
    // is exact (sketch-of-stream == merge-of-window-sketches, pinned by
    // the sketch property tests).
    RingBuffer<WindowSummary> ring(
        std::max<std::size_t>(std::size_t{1}, live.history_windows));
    QuantileSketch campaign_sketch(0.01);
    std::size_t windows_closed = 0;
    std::size_t chunks_run = 0;
    std::size_t partials = 0;

    // Ground truth for partial documents, computed once on first use (the
    // final document's truth comes from AssessStage as usual).
    std::optional<double> truth_cache;
    const auto truth_w = [&]() -> double {
      if (!truth_cache) {
        truth_cache =
            (streaming
                 ? streaming_true_scope_power(cluster, electrical, plan.spec)
                 : true_scope_power(cluster, electrical, plan.spec))
                .value();
      }
      return *truth_cache;
    };

    // Emits one partial assessment Document from a read-only snapshot of
    // the slots.  Runs strictly between fan-out barriers; draws no RNG
    // and mutates no metering state, so emission cannot perturb the
    // final numbers.
    const auto emit_partial = [&](double virtual_now) {
      if (!config.live_sink) return;
      std::vector<NodeReading> partial;
      partial.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        const NodeSlot& s = slots[i];
        if (!s.dm.live_has_data()) continue;
        NodeReading nr;
        nr.node = plan.node_indices[i];
        nr.lost = false;
        nr.mean_w = s.dm.live_mean_w();
        nr.energy_j = s.dm.live_energy_j();
        if (plan.timing != TimingStrategy::kContinuous) {
          nr.energy_j = nr.mean_w * plan.window.duration().value();
        }
        apply_dc_conversion(plan, electrical, nr.node, nr.mean_w,
                            nr.energy_j);
        partial.push_back(nr);
      }
      if (partial.empty()) return;

      // Run the snapshot through the exact node-tap Aggregate tail the
      // final result uses, on a scratch context.
      CampaignContext snap;
      snap.cluster = ctx.cluster;
      snap.electrical = ctx.electrical;
      snap.plan = ctx.plan;
      snap.config = ctx.config;
      snap.readings = std::move(partial);
      snap.dq().meters_planned = ctx.dq().meters_planned;
      snap.dq().faults_enabled = faulty;
      aggregate_nodes(snap);
      snap.result.true_power = Watts{truth_w()};
      snap.result.relative_error =
          std::fabs(snap.result.submitted_power.value() - truth_w()) /
          truth_w();

      LiveProgress prog;
      prog.seq = partials;
      prog.virtual_s = virtual_now;
      prog.windows_closed = windows_closed;
      prog.nodes_reporting = snap.readings.size();
      prog.window_capacity = ring.capacity();
      for (std::size_t i = 0; i < ring.size(); ++i) {
        prog.recent_windows.emplace_back(ring[i].index, ring[i].fleet_mean_w);
      }
      prog.sketch_count = campaign_sketch.count();
      if (!campaign_sketch.empty()) {
        prog.sketch_bins = campaign_sketch.bin_count();
        prog.sketch_alpha = campaign_sketch.alpha();
        prog.p05_w = campaign_sketch.quantile(0.05);
        prog.p50_w = campaign_sketch.quantile(0.50);
        prog.p95_w = campaign_sketch.quantile(0.95);
      }
      // One complete rendered line per call — the sink never observes a
      // torn document.
      config.live_sink(
          render_json(live_assessment_document(plan, snap.result, prog)));
      ++partials;
    };

    // Pinned virtual-time emission schedule: thresholds advance from the
    // first window's origin in emit_every_s steps, checked at chunk and
    // window boundaries, so reruns emit identical partials at identical
    // points.
    double next_emit = ctx.windows.empty()
                           ? 0.0
                           : ctx.windows.front().begin.value() +
                                 live.emit_every_s;
    const auto maybe_emit = [&](double virtual_now) {
      if (live.emit_every_s <= 0.0) return;
      if (virtual_now + 1e-9 < next_emit) return;
      emit_partial(virtual_now);
      while (next_emit <= virtual_now + 1e-9) next_emit += live.emit_every_s;
    };

    // Closes window `wi` fleet-wide: per-node window means feed one
    // window sketch (merged into the campaign sketch) and the ring.
    const auto close_window_stats = [&](std::size_t wi) {
      QuantileSketch window_sketch(campaign_sketch.alpha());
      FusedAccumulator fleet;
      for (const NodeSlot& s : slots) {
        if (!s.window_contributed) continue;
        window_sketch.push(s.window_mean);
        fleet.push(s.window_mean);
      }
      campaign_sketch.merge(window_sketch);
      if (!fleet.empty()) {
        ring.push(WindowSummary{wi, fleet.mean(), fleet.count()});
      }
      ++windows_closed;
    };

    double virtual_now =
        ctx.windows.empty() ? 0.0 : ctx.windows.front().begin.value();
    if (streaming && !faulty) {
      // Clean streaming driver: each window streams in fixed-size chunks
      // of the window-global sample grid.  The chunk's shape table is
      // built serially (once, shared by every node) and its storage is
      // reused, so peak memory never depends on the window length.
      //
      // Fused variant (fleet_soa, no reconcile buckets): the chunk
      // streams through the fleet kernels with the node index as the
      // SIMD lane, chaining each lane's running sum in a stage-owned
      // vector; the serial adopt below hands the chained sums to the
      // DeviceMeters between barriers, so live snapshots and window
      // closes observe the exact per-node state.
      const std::size_t chunk_cap =
          std::max<std::size_t>(std::size_t{1}, live.chunk_samples);
      ShapeTable chunk;
      const bool fused = config.fleet_soa && !reconciling;
      std::vector<double> fleet_win_sum;
      if (fused) fleet_win_sum.assign(n, 0.0);
      for (std::size_t wi = 0; wi < ctx.windows.size(); ++wi) {
        const TimeWindow& w = ctx.windows[wi];
        const std::size_t samples = window_sample_count(w, ctx.interval);
        PV_EXPECTS(samples > 0,
                   "window shorter than one reporting interval");
        for (std::size_t first = 0; first < samples; first += chunk_cap) {
          const std::size_t count = std::min(chunk_cap, samples - first);
          build_shape_chunk(cluster, w, ctx.interval, plan.meter_mode, first,
                            count, chunk);
          if (fused) {
            parallel_chunks(pool_ptr, n, [&](std::size_t b, std::size_t e) {
              FleetScratch scratch;
              stream_fleet_chunk(chunk, fleet, b, e,
                                 std::span<double>(fleet_win_sum), scratch);
            });
            for (std::size_t i = 0; i < n; ++i) {
              slots[i].dm.adopt_clean_chunk(fleet_win_sum[i], count,
                                            chunk.dt);
            }
          } else {
            parallel_chunks(pool_ptr, n, [&](std::size_t b, std::size_t e) {
              StreamScratch scratch;
              for (std::size_t i = b; i < e; ++i) {
                NodeSlot& s = slots[i];
                stream_node_window(chunk, fleet.mean_w[i], fleet.curve[i],
                                   fleet.meters[i], fleet.noise[i], scratch);
                s.dm.feed_clean_chunk(chunk.t_begin, chunk.dt, first,
                                      scratch.readings);
              }
            });
          }
          ++chunks_run;
          virtual_now = w.begin.value() +
                        ctx.interval.value() *
                            static_cast<double>(first + count);
          maybe_emit(virtual_now);
        }
        for (NodeSlot& s : slots) {
          s.window_mean = s.dm.close_clean_window();
          s.window_contributed = true;
        }
        if (fused) {
          std::fill(fleet_win_sum.begin(), fleet_win_sum.end(), 0.0);
        }
        close_window_stats(wi);
        virtual_now = w.end.value();
        if (live.emit_every_s <= 0.0) emit_partial(virtual_now);
      }
    } else {
      // Whole-window driver (faulted campaigns need a materialized clean
      // trace per window for the corruption pipeline; eager clean
      // campaigns measure per window anyway).  Only one window per node
      // is ever in flight, so memory stays bounded by the window length.
      ShapeTable chunk;
      for (std::size_t wi = 0; wi < ctx.windows.size(); ++wi) {
        const TimeWindow& w = ctx.windows[wi];
        if (streaming) {
          const std::size_t samples = window_sample_count(w, ctx.interval);
          PV_EXPECTS(samples > 0,
                     "window shorter than one reporting interval");
          build_shape_chunk(cluster, w, ctx.interval, plan.meter_mode, 0,
                            samples, chunk);
        }
        parallel_chunks(pool_ptr, n, [&](std::size_t b, std::size_t e) {
          StreamScratch scratch;
          for (std::size_t i = b; i < e; ++i) {
            NodeSlot& s = slots[i];
            s.window_contributed = false;
            if (s.dm.dead()) continue;
            if (!faulty) {
              s.window_mean = s.dm.feed_clean_trace(fleet.meters[i].measure(
                  s.truth, w.begin, w.end, fleet.noise[i]));
              s.window_contributed = true;
              continue;
            }
            const PowerTrace clean = [&] {
              if (!streaming) {
                return fleet.meters[i].measure(s.truth, w.begin, w.end,
                                               fleet.noise[i]);
              }
              stream_node_window(chunk, fleet.mean_w[i], fleet.curve[i],
                                 fleet.meters[i], fleet.noise[i], scratch);
              return PowerTrace(w.begin, fleet.meters[i].interval(),
                                scratch.readings);
            }();
            const std::optional<double> wm =
                s.dm.feed_faulted_window(clean, w);
            if (wm.has_value()) {
              s.window_mean = *wm;
              s.window_contributed = true;
            }
          }
        });
        ++chunks_run;
        close_window_stats(wi);
        virtual_now = w.end.value();
        if (live.emit_every_s <= 0.0) {
          emit_partial(virtual_now);
        } else {
          maybe_emit(virtual_now);
        }
      }
    }

    // Finish: identical post-processing to NodeMeterStage.
    ctx.devices.resize(n);
    ctx.readings.resize(n);
    std::size_t lost = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ctx.devices[i] = slots[i].dm.finish();
      const DeviceReading& reading = ctx.devices[i];
      NodeReading nr;
      nr.node = plan.node_indices[i];
      nr.lost = reading.lost;
      if (!reading.lost) {
        nr.mean_w = reading.mean_w;
        nr.energy_j = reading.energy_j;
        if (plan.timing != TimingStrategy::kContinuous) {
          // Spot sampling: report energy as mean power over the window.
          nr.energy_j = nr.mean_w * plan.window.duration().value();
        }
        apply_dc_conversion(plan, electrical, nr.node, nr.mean_w,
                            nr.energy_j);
      }
      ctx.readings[i] = nr;
      lost += nr.lost ? 1 : 0;
    }

    trace.items = ctx.readings.size();
    trace.samples = ctx.samples_per_meter * ctx.readings.size();
    trace.virtual_s = metered_virtual_s(ctx, ctx.readings.size());
    trace.counters = {
        {"engine_streaming", streaming ? 1.0 : 0.0},
        {"fleet_fused",
         streaming && !faulty && config.fleet_soa && !reconciling ? 1.0
                                                                  : 0.0},
        {"fanout", static_cast<double>(fanout)},
        {"lost", static_cast<double>(lost)},
        {"live", 1.0},
        {"chunks", static_cast<double>(chunks_run)},
        {"windows_stored", static_cast<double>(ring.size())},
        {"partials_emitted", static_cast<double>(partials)},
    };
  }
};

class RackMeterStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "meter"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    const SystemPowerModel& electrical = *ctx.electrical;
    const MeasurementPlan& plan = *ctx.plan;
    const CampaignConfig& config = *ctx.config;

    // One meter per rack containing a selected node.  The rack reading
    // (which *includes* PDU distribution loss, unlike node taps) is
    // later attributed evenly to the rack's nodes — the standard site
    // practice when only PDU instrumentation exists.
    std::size_t lost = 0;
    for (std::size_t rack : ctx.racks) {
      Rng calibration(config.seed ^ kCalibrationSalt, kRackStreamBase + rack);
      Rng noise(config.seed ^ kNoiseSalt, kRackStreamBase + rack);
      const MeterModel meter(config.meter_accuracy, plan.meter_mode,
                             ctx.interval, calibration);
      const std::size_t first = rack * electrical.nodes_per_rack();
      const std::size_t nodes_in_rack =
          std::min(electrical.nodes_per_rack(),
                   electrical.node_count() - first);
      DeviceReading reading = meter_device(
          meter,
          [&electrical, rack](double t) {
            return electrical.rack_pdu_w(rack, t);
          },
          ctx.windows, plan.window, noise, config, kRackStreamBase + rack,
          rack);
      NodeReading nr;
      nr.node = rack;
      nr.lost = reading.lost;
      nr.mean_w = reading.mean_w;
      nr.energy_j = reading.energy_j;
      lost += nr.lost ? 1 : 0;
      ctx.devices.push_back(std::move(reading));
      ctx.readings.push_back(nr);
      ctx.rack_nodes_in.push_back(nodes_in_rack);
    }

    trace.items = ctx.readings.size();
    trace.samples = ctx.samples_per_meter * ctx.readings.size();
    trace.virtual_s = metered_virtual_s(ctx, ctx.readings.size());
    trace.counters = {{"lost", static_cast<double>(lost)}};
  }
};

class FacilityMeterStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "meter"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    const SystemPowerModel& electrical = *ctx.electrical;
    const MeasurementPlan& plan = *ctx.plan;
    const CampaignConfig& config = *ctx.config;

    // One meter on the whole feed — the realistic Level 3
    // instrumentation.  There is no surviving-node fallback here: losing
    // the only meter ends the campaign.
    if (ctx.faulty && config.faults.forced_dead(kFacilityStream)) {
      throw NoUsableDataError(
          "campaign: the facility-feed meter is dead and no fallback "
          "instrumentation exists");
    }
    Rng calibration(config.seed ^ kCalibrationSalt, kFacilityStream);
    Rng noise(config.seed ^ kNoiseSalt, kFacilityStream);
    const MeterModel meter(config.meter_accuracy, plan.meter_mode,
                           ctx.interval, calibration);
    ctx.devices.push_back(meter_device(
        meter, electrical.facility_function(), ctx.windows, plan.window,
        noise, config, kFacilityStream, kFacilityStream));

    trace.items = 1;
    trace.samples = ctx.samples_per_meter;
    trace.virtual_s = metered_virtual_s(ctx, 1);
    trace.counters = {
        {"lost", ctx.devices.back().lost ? 1.0 : 0.0},
    };
  }
};

class RepairStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "repair"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    // Consolidate the per-device repair accounting.  On the fault-free
    // path every tally is zero, so this is a no-op there — exactly the
    // historical `if (faulty)` guard, without the branch.
    DataQuality& dq = ctx.dq();
    for (const DeviceReading& r : ctx.devices) absorb_tallies(dq, r);

    trace.items = ctx.devices.size();
    trace.samples = dq.samples_repaired;
    trace.counters = {
        {"samples_lost", static_cast<double>(dq.samples_lost)},
        {"samples_repaired", static_cast<double>(dq.samples_repaired)},
        {"spikes_filtered", static_cast<double>(dq.spikes_filtered)},
        {"stuck_flagged", static_cast<double>(dq.stuck_flagged)},
    };
  }
};

class ReconcileStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "reconcile"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    DataQuality& dq = ctx.dq();
    dq.reconcile_ran = true;
    std::vector<MeterSeries> series;
    series.reserve(ctx.readings.size());
    for (std::size_t i = 0; i < ctx.readings.size(); ++i) {
      if (ctx.readings[i].lost || ctx.devices[i].analysis_means_w.empty()) {
        continue;
      }
      series.push_back(
          MeterSeries{ctx.readings[i].node, ctx.devices[i].analysis_means_w});
    }
    const std::vector<HierarchyCheck> checks = build_hierarchy_checks(
        *ctx.electrical, *ctx.plan, *ctx.config, ctx.interval, ctx.analysis,
        series);
    ReconcileReport verdicts =
        reconcile_meters(series, checks, ctx.config->reconcile);

    // Quarantine convicted meters through the existing dead-meter
    // degradation path; undo exactly invertible unit errors in place.
    for (const MeterDiagnosis& d : verdicts.diagnoses) {
      const auto it = std::find_if(
          ctx.readings.begin(), ctx.readings.end(),
          [&](const NodeReading& nr) { return nr.node == d.meter_id; });
      if (it == ctx.readings.end()) continue;
      if (d.quarantined) {
        it->lost = true;
      } else if (d.corrected) {
        it->mean_w /= d.correction_scale;
        it->energy_j /= d.correction_scale;
      }
    }

    trace.items = series.size();
    trace.samples = series.size() * ctx.analysis.size();
    trace.counters = {
        {"hierarchy_checks", static_cast<double>(checks.size())},
        {"quarantined", static_cast<double>(verdicts.meters_quarantined)},
        {"corrected", static_cast<double>(verdicts.meters_corrected)},
    };
    dq.integrity = std::move(verdicts);
  }
};

// Aggregate for the facility-feed tap: no extrapolation at all; the only
// error sources are the meter itself and any scope mismatch.
void aggregate_facility(CampaignContext& ctx) {
  const ClusterPowerModel& cluster = *ctx.cluster;
  const SystemPowerModel& electrical = *ctx.electrical;
  const MeasurementPlan& plan = *ctx.plan;
  CampaignResult& result = ctx.result;
  DataQuality& dq = ctx.dq();

  const DeviceReading& reading = ctx.devices.front();
  if (reading.lost) {
    throw NoUsableDataError(
        "campaign: the facility-feed meter produced " +
        std::to_string(dq.samples_expected - dq.samples_lost) + " of " +
        std::to_string(dq.samples_expected) +
        " expected samples (below the coverage floor); no fallback "
        "instrumentation exists");
  }
  const double mean = reading.mean_w;
  double energy_acc = reading.energy_j;
  if (plan.timing != TimingStrategy::kContinuous) {
    energy_acc = mean * plan.window.duration().value();
  }
  result.nodes_measured = cluster.node_count();
  result.submitted_energy = Joules{energy_acc};
  // The facility feed includes every auxiliary; for compute-only scopes
  // the measured aux must be deducted (it is measured, not estimated).
  double submitted = mean;
  if (plan.spec.subsystems == SubsystemRule::kComputeOnly) {
    const double t_mid =
        plan.window.begin.value() + 0.5 * plan.window.duration().value();
    submitted -= electrical.auxiliary_ac_w(t_mid);
  }
  result.submitted_power = Watts{submitted};
  dq.planned_node_fraction = 1.0;
  dq.achieved_node_fraction = 1.0;
  finalize_quality(dq);
}

// Aggregate for the rack-PDU tap: attribute each surviving rack reading
// evenly to its nodes, then extrapolate.  A dead/degraded rack meter
// loses the whole rack; extrapolation proceeds from the rest.
void aggregate_rack(CampaignContext& ctx) {
  const ClusterPowerModel& cluster = *ctx.cluster;
  const SystemPowerModel& electrical = *ctx.electrical;
  const MeasurementPlan& plan = *ctx.plan;
  CampaignResult& result = ctx.result;
  DataQuality& dq = ctx.dq();

  const std::size_t planned_nodes = plan.node_count();
  double energy_acc = 0.0;
  std::size_t surviving_nodes = 0;
  for (std::size_t i = 0; i < ctx.readings.size(); ++i) {
    const NodeReading& reading = ctx.readings[i];
    if (reading.lost) {
      ++dq.meters_lost;
      dq.lost_meter_ids.push_back(reading.node);
      continue;
    }
    const double rack_mean = reading.mean_w;
    double rack_energy = reading.energy_j;
    if (plan.timing != TimingStrategy::kContinuous) {
      rack_energy = rack_mean * plan.window.duration().value();
    }
    const std::size_t nodes_in_rack = ctx.rack_nodes_in[i];
    const double per_node = rack_mean / static_cast<double>(nodes_in_rack);
    for (std::size_t n = 0; n < nodes_in_rack; ++n) {
      result.node_mean_powers_w.push_back(per_node);
    }
    surviving_nodes += nodes_in_rack;
    energy_acc += rack_energy;
  }
  if (result.node_mean_powers_w.empty()) {
    throw NoUsableDataError(
        "campaign: every rack meter was lost (" +
        std::to_string(dq.meters_lost) + " of " +
        std::to_string(dq.meters_planned) +
        "); nothing to extrapolate from");
  }
  result.nodes_measured = result.node_mean_powers_w.size();
  // Scale energy to the planned metering scope so submissions stay
  // comparable between degraded and clean campaigns.
  if (ctx.faulty && surviving_nodes > 0 && surviving_nodes < planned_nodes) {
    energy_acc *= static_cast<double>(planned_nodes) /
                  static_cast<double>(surviving_nodes);
  }
  result.submitted_energy = Joules{energy_acc};

  const Summary rack_nodes = summarize(result.node_mean_powers_w);
  double rack_submitted =
      rack_nodes.mean * static_cast<double>(cluster.node_count());
  if (plan.spec.subsystems != SubsystemRule::kComputeOnly) {
    const double t_mid =
        plan.window.begin.value() + 0.5 * plan.window.duration().value();
    rack_submitted += electrical.auxiliary_ac_w(t_mid);
  }
  result.submitted_power = Watts{rack_submitted};
  if (result.node_mean_powers_w.size() >= 2 && rack_nodes.stddev > 0.0) {
    result.node_mean_ci =
        t_confidence_interval(result.node_mean_powers_w, 0.05);
    result.relative_halfwidth =
        0.5 * result.node_mean_ci.width() / rack_nodes.mean;
    dq.ci_widened = dq.meters_lost > 0;
  }
  dq.planned_node_fraction =
      static_cast<double>(planned_nodes) /
      static_cast<double>(cluster.node_count());
  dq.achieved_node_fraction =
      static_cast<double>(result.nodes_measured) /
      static_cast<double>(cluster.node_count());
  finalize_quality(dq);
}

// Aggregate for node taps — the shared tail every node campaign (sync or
// async collection) runs: exclusion, extrapolation, energy re-basing,
// the Eq. 1 CI and its corrected-sigma widening, coverage fractions.
void aggregate_nodes(CampaignContext& ctx) {
  const ClusterPowerModel& cluster = *ctx.cluster;
  const SystemPowerModel& electrical = *ctx.electrical;
  const MeasurementPlan& plan = *ctx.plan;
  CampaignResult& result = ctx.result;
  DataQuality& dq = ctx.dq();

  result.system_name = cluster.name();
  result.window_duration = plan.window.duration();

  double energy_j = 0.0;
  result.node_mean_powers_w.reserve(ctx.readings.size());
  for (const NodeReading& r : ctx.readings) {
    if (r.lost) {
      ++dq.meters_lost;
      dq.lost_meter_ids.push_back(r.node);
      continue;
    }
    result.node_mean_powers_w.push_back(r.mean_w);
    energy_j += r.energy_j;
  }
  if (result.node_mean_powers_w.empty()) {
    throw NoUsableDataError(
        "campaign: every node meter was lost (" +
        std::to_string(dq.meters_lost) + " of " +
        std::to_string(dq.meters_planned) +
        "); nothing to extrapolate from");
  }
  result.nodes_measured = result.node_mean_powers_w.size();
  // Scale energy to the planned metering scope so submissions stay
  // comparable between degraded and clean campaigns.
  if (result.nodes_measured < dq.meters_planned) {
    energy_j *= static_cast<double>(dq.meters_planned) /
                static_cast<double>(result.nodes_measured);
  }
  result.submitted_energy = Joules{energy_j};

  const Summary nodes = summarize(result.node_mean_powers_w);
  // Linear extrapolation to the full compute subsystem (§2.2).  Note the
  // per-node AC taps do not see PDU distribution losses, which the true
  // compute power includes — a structural Level 1 bias the benches expose.
  double submitted =
      nodes.mean * static_cast<double>(cluster.node_count());

  // Auxiliary subsystems per the spec's aspect 3.
  if (plan.spec.subsystems != SubsystemRule::kComputeOnly) {
    const double t_mid =
        plan.window.begin.value() + 0.5 * plan.window.duration().value();
    submitted += electrical.auxiliary_ac_w(t_mid);
  }
  result.submitted_power = Watts{submitted};

  // Accuracy assessment: Equation 1 on the metered per-node averages.
  if (result.nodes_measured >= 2 && nodes.stddev > 0.0) {
    result.node_mean_ci =
        t_confidence_interval(result.node_mean_powers_w, /*alpha=*/0.05);
    result.relative_halfwidth =
        0.5 * result.node_mean_ci.width() / nodes.mean;
    dq.ci_widened = dq.meters_lost > 0;
  }
  // Readings reconciliation un-scaled carry residual calibration
  // uncertainty the Eq. 1 spread cannot see (the correction is exact only
  // up to the meter's remaining gain error); widen the CI in quadrature.
  if (dq.reconcile_ran && dq.integrity.meters_corrected > 0 &&
      result.relative_halfwidth > 0.0) {
    const double extra =
        1.96 * dq.integrity.corrected_sigma *
        std::sqrt(static_cast<double>(dq.integrity.meters_corrected)) /
        static_cast<double>(result.nodes_measured);
    result.relative_halfwidth = std::hypot(result.relative_halfwidth, extra);
    const double half = result.relative_halfwidth * nodes.mean;
    result.node_mean_ci = Interval{nodes.mean - half, nodes.mean + half};
    dq.ci_widened = true;
  }
  dq.planned_node_fraction =
      static_cast<double>(dq.meters_planned) /
      static_cast<double>(cluster.node_count());
  dq.achieved_node_fraction =
      static_cast<double>(result.nodes_measured) /
      static_cast<double>(cluster.node_count());
  finalize_quality(dq);
}

class AggregateStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "aggregate"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    switch (ctx.plan->point) {
      case MeasurementPoint::kFacilityFeed:
        aggregate_facility(ctx);
        break;
      case MeasurementPoint::kRackPdu:
        aggregate_rack(ctx);
        break;
      default:
        aggregate_nodes(ctx);
        break;
    }
    const DataQuality& dq = ctx.result.data_quality;
    trace.items = ctx.result.node_mean_powers_w.size();
    trace.counters = {
        {"meters_lost", static_cast<double>(dq.meters_lost)},
        {"ci_widened", dq.ci_widened ? 1.0 : 0.0},
        {"sample_coverage", dq.sample_coverage},
    };
  }
};

class AssessStage final : public CampaignStage {
 public:
  [[nodiscard]] const char* name() const override { return "assess"; }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    CampaignResult& result = ctx.result;
    // Ground truth and error.  The memoized form returns the exact
    // doubles the direct form would (streaming probe holding), faster.
    result.true_power =
        ctx.streaming
            ? streaming_true_scope_power(*ctx.cluster, *ctx.electrical,
                                         ctx.plan->spec)
            : true_scope_power(*ctx.cluster, *ctx.electrical, ctx.plan->spec);
    result.relative_error =
        std::fabs(result.submitted_power.value() - result.true_power.value()) /
        result.true_power.value();

    const TimeWindow core = ctx.cluster->phases().core_window();
    trace.items = 1;
    trace.virtual_s = core.duration().value();
    trace.counters = {
        {"memoized", ctx.streaming ? 1.0 : 0.0},
        {"relative_error", result.relative_error},
    };
  }
};

}  // namespace

Watts true_scope_power(const ClusterPowerModel& cluster,
                       const SystemPowerModel& electrical,
                       const MethodologySpec& spec) {
  const TimeWindow core = cluster.phases().core_window();
  const double compute = mean_over_window(
      [&](double t) { return electrical.compute_ac_w(t); },
      core.begin.value(), core.end.value());
  if (spec.subsystems == SubsystemRule::kComputeOnly) return Watts{compute};
  const double aux = mean_over_window(
      [&](double t) { return electrical.auxiliary_ac_w(t); },
      core.begin.value(), core.end.value());
  return Watts{compute + aux};
}

StagePtr make_provision_stage() { return std::make_unique<ProvisionStage>(); }
StagePtr make_node_meter_stage() { return std::make_unique<NodeMeterStage>(); }
StagePtr make_live_node_meter_stage() {
  return std::make_unique<LiveNodeMeterStage>();
}
StagePtr make_rack_meter_stage() { return std::make_unique<RackMeterStage>(); }
StagePtr make_facility_meter_stage() {
  return std::make_unique<FacilityMeterStage>();
}
StagePtr make_repair_stage() { return std::make_unique<RepairStage>(); }
StagePtr make_reconcile_stage() { return std::make_unique<ReconcileStage>(); }
StagePtr make_aggregate_stage() { return std::make_unique<AggregateStage>(); }
StagePtr make_assess_stage() { return std::make_unique<AssessStage>(); }

std::vector<StagePtr> make_campaign_stages(const MeasurementPlan& plan,
                                           const CampaignConfig& config) {
  const bool node_tap = plan.point != MeasurementPoint::kFacilityFeed &&
                        plan.point != MeasurementPoint::kRackPdu;
  std::vector<StagePtr> stages;
  stages.push_back(make_provision_stage());
  switch (plan.point) {
    case MeasurementPoint::kFacilityFeed:
      stages.push_back(make_facility_meter_stage());
      break;
    case MeasurementPoint::kRackPdu:
      stages.push_back(make_rack_meter_stage());
      break;
    default:
      stages.push_back(config.live.enabled ? make_live_node_meter_stage()
                                           : make_node_meter_stage());
      break;
  }
  stages.push_back(make_repair_stage());
  // Only node-tap campaigns reconcile — rack/facility taps have no
  // sibling cohort to cross-validate against.
  if (node_tap && config.reconcile.enabled) {
    stages.push_back(make_reconcile_stage());
  }
  stages.push_back(make_aggregate_stage());
  stages.push_back(make_assess_stage());
  return stages;
}

CampaignResult run_campaign_stages(const ClusterPowerModel& cluster,
                                   const SystemPowerModel& electrical,
                                   const MeasurementPlan& plan,
                                   const CampaignConfig& config,
                                   const std::vector<StagePtr>& stages,
                                   const CancelToken* cancel) {
  PV_EXPECTS(!plan.node_indices.empty(), "plan selects no nodes");
  PV_EXPECTS(electrical.node_count() == cluster.node_count(),
             "electrical model does not match the cluster");
  PV_EXPECTS(plan.window.valid(), "plan window is empty");

  CampaignContext ctx;
  ctx.cluster = &cluster;
  ctx.electrical = &electrical;
  ctx.plan = &plan;
  ctx.config = &config;
  ctx.cancel = cancel;
  run_pipeline(stages, ctx);
  return std::move(ctx.result);
}

void run_pipeline(const std::vector<StagePtr>& stages, CampaignContext& ctx) {
  for (const StagePtr& stage : stages) {
    if (ctx.cancel != nullptr) ctx.cancel->check(stage->name());
    StageTrace trace;
    trace.stage = stage->name();
    const auto t0 = std::chrono::steady_clock::now();
    stage->run(ctx, trace);
    const auto t1 = std::chrono::steady_clock::now();
    trace.wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    ctx.result.stage_traces.push_back(std::move(trace));
  }
  // The closing boundary: a deadline eaten inside the *last* stage must
  // still surface as DeadlineExceeded, not as a completed result.
  if (ctx.cancel != nullptr) ctx.cancel->check("finish");
}

}  // namespace pv
