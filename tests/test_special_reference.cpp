// Reference-value tolerance tests for the special-function kernels the
// statistics layer is built on.  The existing unit tests check structural
// properties (symmetry, monotonicity, inverses); these pin the actual
// numbers against independently computed high-precision references
// (30-digit mpmath evaluations of Phi^{-1}, I_x(a,b) and the Student-t
// quantile), including far-tail arguments where naive implementations
// lose precision.  Tolerances are relative and deliberately tight —
// these functions feed every Eq. 1 confidence interval in the repo.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/distributions.hpp"
#include "stats/special.hpp"

namespace pv {
namespace {

// Relative-error assertion with an absolute fallback near zero.
void expect_close(double got, double want, double rel_tol) {
  if (std::fabs(want) < 1e-300) {
    EXPECT_NEAR(got, want, rel_tol);
    return;
  }
  EXPECT_NEAR(got / want, 1.0, rel_tol)
      << "got " << got << ", want " << want;
}

TEST(SpecialReference, NormQuantileCentralValues) {
  EXPECT_DOUBLE_EQ(norm_quantile(0.5), 0.0);
  expect_close(norm_quantile(0.975), 1.9599639845400542, 1e-12);
  expect_close(norm_quantile(0.99), 2.3263478740408411, 1e-12);
  expect_close(norm_quantile(0.3), -0.52440051270804078, 1e-12);
  expect_close(norm_quantile(0.025), -1.9599639845400542, 1e-12);
}

TEST(SpecialReference, NormQuantileTails) {
  expect_close(norm_quantile(0.999), 3.0902323061678135, 1e-12);
  expect_close(norm_quantile(0.9999), 3.7190164854556806, 1e-12);
  expect_close(norm_quantile(1e-6), -4.7534243088228989, 1e-11);
  expect_close(norm_quantile(1e-10), -6.3613409024040562, 1e-10);
  // Quantile/CDF are inverses even deep in the tail.
  expect_close(norm_cdf(norm_quantile(1e-6)), 1e-6, 1e-9);
}

TEST(SpecialReference, IncompleteBetaReferenceValues) {
  // Symmetric cases: I_{1/2}(a, a) = 1/2 (to continued-fraction rounding).
  EXPECT_DOUBLE_EQ(incomplete_beta(0.5, 0.5, 0.5), 0.5);
  expect_close(incomplete_beta(10.0, 10.0, 0.5), 0.5, 1e-13);
  expect_close(incomplete_beta(2.0, 3.0, 0.4), 0.5248, 1e-12);
  expect_close(incomplete_beta(5.0, 1.0, 0.9), 0.59049, 1e-12);
  expect_close(incomplete_beta(8.0, 2.0, 0.99), 0.99656426998215371, 1e-12);
}

TEST(SpecialReference, IncompleteBetaHardArguments) {
  // Tiny x with small a: the series must not underflow to zero.
  expect_close(incomplete_beta(0.5, 5.0, 1e-4), 0.024606094045298438, 1e-10);
  // Large symmetric a=b=50 in the tail: continued fraction territory.
  expect_close(incomplete_beta(50.0, 50.0, 0.4), 0.021930442130085196,
               1e-10);
  // Near-degenerate shape parameters.
  expect_close(incomplete_beta(1e-2, 1e-2, 0.5), 0.5, 1e-10);
  // Endpoints are exact.
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(incomplete_beta(3.0, 4.0, 1.0), 1.0);
}

TEST(SpecialReference, StudentTQuantileTableColumn) {
  // The t_{nu,0.975} column every Eq. 1 interval uses.
  expect_close(t_quantile(0.975, 1.0), 12.706204736174705, 1e-10);
  expect_close(t_quantile(0.975, 2.0), 4.3026527297494639, 1e-10);
  expect_close(t_quantile(0.975, 5.0), 2.5705818356363155, 1e-10);
  expect_close(t_quantile(0.975, 10.0), 2.2281388519862747, 1e-10);
  expect_close(t_quantile(0.975, 30.0), 2.0422724563012383, 1e-10);
  expect_close(t_quantile(0.975, 100.0), 1.9839715185235523, 1e-10);
}

TEST(SpecialReference, StudentTQuantileTails) {
  expect_close(t_quantile(0.995, 3.0), 5.8409093097333573, 1e-10);
  expect_close(t_quantile(0.999, 7.0), 4.7852896286383341, 1e-10);
  // Deep lower tail at low degrees of freedom — the heavy-tail regime
  // where the normal-expansion starting point is far from the answer.
  expect_close(t_quantile(1e-5, 4.0), -23.332182700829275, 1e-8);
  expect_close(t_quantile(0.9999, 2.0), 70.700071074964278, 1e-8);
  // Near-center value (the Cornish–Fisher region).
  expect_close(t_quantile(0.6, 12.0), 0.25903274567688706, 1e-10);
}

TEST(SpecialReference, StudentTQuantileCdfRoundTrip) {
  for (const double nu : {1.0, 3.0, 8.0, 25.0, 200.0}) {
    for (const double p : {1e-4, 0.05, 0.4, 0.5, 0.8, 0.999}) {
      const double x = t_quantile(p, nu);
      expect_close(t_cdf(x, nu), p, 1e-9);
    }
  }
}

TEST(SpecialReference, LogNormalMomentInversion) {
  // stats/distributions inverts E[X] = exp(mu + sigma^2/2),
  // Var[X] = (exp(sigma^2)-1) exp(2 mu + sigma^2); pin the (mu, sigma)
  // it derives against 30-digit references, including the near-delta
  // regime (cv = 3.2%) where log1p keeps the subtraction stable.
  {
    const LogNormalDist d(400.0, 50.0);
    expect_close(d.mu_log(), 5.9837124538399994, 1e-14);
    expect_close(d.sigma_log(), 0.1245158083777528, 1e-14);
  }
  {
    const LogNormalDist d(1.0, 1.0);
    expect_close(d.mu_log(), -0.34657359027997265, 1e-14);
    expect_close(d.sigma_log(), 0.83255461115769776, 1e-14);
  }
  {
    const LogNormalDist d(250.0, 8.0);
    expect_close(d.mu_log(), 5.5209491798274268, 1e-14);
    expect_close(d.sigma_log(), 0.031991812540699979, 1e-12);
  }
}

TEST(SpecialReference, SampledMomentsMatchAnalyticTargets) {
  // Seeded sanity on the samplers themselves: 200k draws land on the
  // analytic mean/sd to within a few standard errors.
  Rng rng(2024);
  const NormalDist normal(400.0, 50.0);
  const LogNormalDist lognormal(400.0, 50.0);
  for (const Distribution* d :
       {static_cast<const Distribution*>(&normal),
        static_cast<const Distribution*>(&lognormal)}) {
    double sum = 0.0, sum2 = 0.0;
    constexpr int kN = 200000;
    for (int i = 0; i < kN; ++i) {
      const double x = d->sample(rng);
      sum += x;
      sum2 += x * x;
    }
    const double mean = sum / kN;
    const double sd = std::sqrt(sum2 / kN - mean * mean);
    EXPECT_NEAR(mean, d->mean(), 5.0 * d->stddev() / std::sqrt(double(kN)));
    EXPECT_NEAR(sd, d->stddev(), 0.02 * d->stddev());
  }
}

TEST(SpecialReference, CriticalValueAliases) {
  // z/t criticals are the documented quantile aliases.
  expect_close(z_critical(0.05), 1.9599639845400542, 1e-12);
  expect_close(t_critical(0.05, 10.0), 2.2281388519862747, 1e-10);
}

}  // namespace
}  // namespace pv
