#pragma once
// Accuracy-assessment reports — the paper's §6 asks every submission to
// state how accurate its measurement is.  This module builds a campaign
// result into a structured assessment Document (core/doc) and renders it
// for two audiences: render_text for the reviewer (byte-identical to the
// historical free-text report; golden-test enforced) and render_json for
// machine consumers (vetting tools, bench harnesses, dashboards).

#include <string>

#include "core/campaign.hpp"
#include "core/doc.hpp"
#include "core/plan.hpp"

namespace pv {

/// Rendering knobs for the assessment document.
struct ReportOptions {
  /// Append the per-stage StageTrace block (campaign --trace-stages).
  /// Counters and virtual time are deterministic and appear in the JSON;
  /// wall-clock milliseconds appear in the text rendering only.
  bool trace_stages = false;
};

/// Builds the full assessment document: spec, plan shape, extrapolation,
/// Equation 1 confidence interval, achieved relative accuracy, the true
/// error (simulation only), and — when present — the data-quality,
/// collection-path, integrity and stage-trace blocks.
[[nodiscard]] Document assessment_document(const MeasurementPlan& plan,
                                           const CampaignResult& result,
                                           const ReportOptions& opts = {});

/// Renders the full assessment as text: render_text(assessment_document).
[[nodiscard]] std::string accuracy_report(const MeasurementPlan& plan,
                                          const CampaignResult& result);

/// Renders validator findings as a bulleted block ("(compliant)" if none).
[[nodiscard]] std::string render_issues(
    const std::vector<ValidationIssue>& issues);

/// Renders the data-quality block of a degraded campaign: meters lost,
/// sample coverage, repairs, and whether the Eq. 1 CI was widened.
/// Empty string when neither fault injection nor the async collection
/// path was used.
[[nodiscard]] std::string data_quality_report(const DataQuality& quality);

/// Renders the collection-path block: polls, retries, timeouts, breaker
/// trips, and modeled poll wall clock.  Empty string for the synchronous
/// in-memory path.
[[nodiscard]] std::string collection_quality_report(
    const CollectionQuality& collection);

/// Renders the integrity block of a reconciled campaign: meters checked /
/// quarantined / corrected, per-meter verdicts (sorted by meter id),
/// hierarchy residuals before and after reconciliation, and detection
/// latency.  Empty string when reconciliation never ran.
[[nodiscard]] std::string integrity_quality_report(const DataQuality& quality);

/// Mid-run progress carried by a partial (live) assessment Document.
/// Everything here is a pure function of virtual time and the campaign
/// inputs, so reruns emit identical partials.
struct LiveProgress {
  std::size_t seq = 0;            ///< emission index, 0-based
  double virtual_s = 0.0;         ///< virtual time of the emission point
  std::size_t windows_closed = 0; ///< fleet metering windows fully closed
  std::size_t nodes_reporting = 0;
  /// Fixed-capacity ring of recent closed windows: (window index, fleet
  /// mean watts).  Oldest first; at most the ring capacity entries.
  std::size_t window_capacity = 0;
  std::vector<std::pair<std::size_t, double>> recent_windows;
  /// Campaign-wide quantile sketch over per-node closed-window means
  /// (merged per closed window); count == 0 means no window closed yet.
  std::size_t sketch_count = 0;
  std::size_t sketch_bins = 0;
  double sketch_alpha = 0.0;
  double p05_w = 0.0;
  double p50_w = 0.0;
  double p95_w = 0.0;
};

/// Builds a *partial* assessment Document: the regular assessment blocks
/// over the data metered so far, plus a "live" block carrying the
/// emission schedule position, the closed-window ring and the quantile
/// sketch summary.  The final Document of a live campaign is built by
/// assessment_document as usual and carries no "live" block — which is
/// how it stays byte-identical to the batch Document.
[[nodiscard]] Document live_assessment_document(const MeasurementPlan& plan,
                                                const CampaignResult& result,
                                                const LiveProgress& progress);

/// A line that is not a well-formed powervar-assessment-v1 document.
class AssessmentParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Strictly validates one emitted assessment line (partial or final):
/// exactly one newline-terminated JSON object with the v1 schema tag, an
/// "assessment" block whose required fields are finite numbers, and — if
/// present — a well-formed "live" block.  Returns the parsed Json on
/// success; throws AssessmentParseError otherwise (never crashes, never
/// accepts a torn or truncated write).
[[nodiscard]] Json parse_assessment_line(const std::string& line);

}  // namespace pv
