# Empty dependencies file for powervar_sim.
# This may be replaced when dependencies are built.
