#pragma once
// Measurement planning: turning a MethodologySpec into a concrete plan for
// one system and one run — which nodes, which window, which meters — and
// validating a plan against the rules.
//
// The subset strategies beyond kRandom exist to *study bias*, not to use:
// kLowVid implements the §5 observation that screening for low-VID
// processors yields a favorably biased result, and kFirstRack models the
// lazy choice of metering whatever rack the PDU meter is already on.

#include <string>
#include <vector>

#include "core/spec.hpp"
#include "meter/hierarchy.hpp"
#include "meter/meter.hpp"
#include "stats/rng.hpp"
#include "trace/segment.hpp"

namespace pv {

/// How the measured node subset is chosen.
enum class SubsetStrategy {
  kRandom,     ///< uniform without replacement — what the statistics assume
  kFirstRack,  ///< the first k nodes in rack order
  kLowVid,     ///< the k nodes with the lowest GPU VIDs (biased, §5)
  kLowPower,   ///< adversarial: the k lowest-power nodes
};

[[nodiscard]] const char* to_string(SubsetStrategy s);

/// How the measurement covers its window in time (aspect 1).
enum class TimingStrategy {
  kContinuous,      ///< meter the whole window (L1 v1.2 partial, or full core)
  kTenSpotAverages, ///< L2: ten equally spaced averaged spot measurements
};

[[nodiscard]] const char* to_string(TimingStrategy s);

/// How a DC-side tap is corrected back to AC (aspect 4).
enum class ConversionCorrection {
  kNone,           ///< AC-side tap; nothing to correct
  kVendorNominal,  ///< L1: a single manufacturer-nominal efficiency number
  kMeasuredCurve,  ///< L2/L3: the PSU's (offline-)measured load curve
};

[[nodiscard]] const char* to_string(ConversionCorrection c);

/// A concrete, executable measurement plan.
struct MeasurementPlan {
  MethodologySpec spec;
  std::vector<std::size_t> node_indices;  ///< which nodes are metered
  TimeWindow window;                      ///< power-measurement window
  MeterMode meter_mode = MeterMode::kSampled;
  Seconds meter_interval{1.0};
  MeasurementPoint point = MeasurementPoint::kNodeAc;
  TimingStrategy timing = TimingStrategy::kContinuous;
  /// Duration of each L2 spot average (>= one meter interval).
  Seconds spot_duration{60.0};
  /// Correction applied when `point` is a DC-side tap.
  ConversionCorrection conversion = ConversionCorrection::kNone;
  /// Nominal efficiency used by kVendorNominal.
  double vendor_nominal_efficiency = 0.94;

  [[nodiscard]] std::size_t node_count() const { return node_indices.size(); }
};

/// Inputs the planner needs about the system and run.
struct PlanInputs {
  std::size_t total_nodes = 0;
  Watts approx_node_power{0.0};  ///< for the absolute power floor
  RunPhases run;
  /// Node ordering keys for the biased strategies (optional): VID bin per
  /// node for kLowVid, mean power per node for kLowPower.
  std::vector<std::size_t> vid_bins;
  std::vector<double> node_powers;
};

/// Builds a spec-compliant plan.  `window_position` in [0,1] places the
/// Level 1 (v1.2) window inside the legal middle-80% region; it is ignored
/// when the spec requires the full core phase.
[[nodiscard]] MeasurementPlan plan_measurement(
    const MethodologySpec& spec, const PlanInputs& in, Rng& rng,
    SubsetStrategy strategy = SubsetStrategy::kRandom,
    double window_position = 0.5);

/// The time windows a plan actually meters (aspect 1): the whole window
/// for continuous timing, or Level 2's ten equally spaced spot averages.
/// `meter_interval` floors each spot at one reporting interval.
[[nodiscard]] std::vector<TimeWindow> metered_windows(
    const MeasurementPlan& plan, Seconds meter_interval);

/// A single rule violation found by the validator.
struct ValidationIssue {
  std::string rule;  ///< which aspect ("timing", "fraction", ...)
  std::string what;  ///< human-readable description
};

/// Checks a plan against its own spec for the given system/run.
/// Empty result == compliant.
[[nodiscard]] std::vector<ValidationIssue> validate_plan(
    const MeasurementPlan& plan, const PlanInputs& in);

}  // namespace pv
