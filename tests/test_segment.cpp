// Unit tests for run phases and methodology measurement windows.

#include "trace/segment.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace pv {
namespace {

RunPhases typical_run() {
  return RunPhases{minutes(10.0), hours(2.0), minutes(5.0)};
}

TEST(RunPhases, PhaseBoundaries) {
  const RunPhases p = typical_run();
  EXPECT_DOUBLE_EQ(p.total().value(), 600.0 + 7200.0 + 300.0);
  EXPECT_DOUBLE_EQ(p.core_begin().value(), 600.0);
  EXPECT_DOUBLE_EQ(p.core_end().value(), 7800.0);
  EXPECT_DOUBLE_EQ(p.core_window().duration().value(), 7200.0);
}

TEST(RunPhases, CoreFractions) {
  const RunPhases p = typical_run();
  const TimeWindow first20 = p.core_fraction(0.0, 0.2);
  EXPECT_DOUBLE_EQ(first20.begin.value(), 600.0);
  EXPECT_DOUBLE_EQ(first20.end.value(), 600.0 + 1440.0);
  const TimeWindow last20 = p.core_fraction(0.8, 1.0);
  EXPECT_DOUBLE_EQ(last20.begin.value(), 600.0 + 5760.0);
  EXPECT_DOUBLE_EQ(last20.end.value(), 7800.0);
  EXPECT_THROW(p.core_fraction(0.5, 0.5), contract_error);
  EXPECT_THROW(p.core_fraction(-0.1, 0.5), contract_error);
}

TEST(RunPhases, Middle80) {
  const RunPhases p = typical_run();
  const TimeWindow m = p.middle_80();
  EXPECT_DOUBLE_EQ(m.begin.value(), 600.0 + 720.0);
  EXPECT_DOUBLE_EQ(m.end.value(), 600.0 + 6480.0);
}

TEST(RunPhases, Level1MinimumDuration) {
  // 20% of the middle 80% of 2 h = 0.2 * 5760 s = 1152 s.
  EXPECT_DOUBLE_EQ(typical_run().level1_min_duration().value(), 1152.0);
  // For a 4-minute core phase, the one-minute floor dominates:
  // 0.2 * 0.8 * 240 = 38.4 s < 60 s.
  const RunPhases shortrun{Seconds{0.0}, minutes(4.0), Seconds{0.0}};
  EXPECT_DOUBLE_EQ(shortrun.level1_min_duration().value(), 60.0);
}

TEST(RunPhases, Level1WindowPlacement) {
  const RunPhases p = typical_run();
  const TimeWindow early = p.level1_window(0.0);
  const TimeWindow late = p.level1_window(1.0);
  const TimeWindow mid = p.level1_window(0.5);
  const TimeWindow allowed = p.middle_80();
  EXPECT_DOUBLE_EQ(early.begin.value(), allowed.begin.value());
  EXPECT_DOUBLE_EQ(late.end.value(), allowed.end.value());
  EXPECT_DOUBLE_EQ(early.duration().value(), 1152.0);
  EXPECT_DOUBLE_EQ(late.duration().value(), 1152.0);
  EXPECT_GT(mid.begin.value(), early.begin.value());
  EXPECT_LT(mid.end.value(), late.end.value());
  EXPECT_THROW(p.level1_window(1.5), contract_error);
}

TEST(RunPhases, Level1WindowTooShortCore) {
  // Core phase of 60 s: middle 80% is 48 s < the 60 s minimum window.
  const RunPhases p{Seconds{0.0}, Seconds{60.0}, Seconds{0.0}};
  EXPECT_THROW(p.level1_window(0.5), contract_error);
}

TEST(RunPhases, Level2TenWindowsSpanCore) {
  const RunPhases p = typical_run();
  const auto windows = p.level2_windows();
  ASSERT_EQ(windows.size(), 10u);
  EXPECT_DOUBLE_EQ(windows.front().begin.value(), p.core_begin().value());
  EXPECT_DOUBLE_EQ(windows.back().end.value(), p.core_end().value());
  for (std::size_t i = 0; i + 1 < windows.size(); ++i) {
    EXPECT_DOUBLE_EQ(windows[i].end.value(), windows[i + 1].begin.value());
    EXPECT_NEAR(windows[i].duration().value(), 720.0, 1e-9);
  }
}

TEST(DetectCorePhase, RecoversHighPowerRegion) {
  // 100 samples: idle 100 W, core [20, 80) at 1000 W.
  std::vector<double> w(100, 100.0);
  for (std::size_t i = 20; i < 80; ++i) w[i] = 1000.0;
  const PowerTrace trace(Seconds{0.0}, Seconds{1.0}, std::move(w));
  const TimeWindow core = detect_core_phase(trace);
  EXPECT_DOUBLE_EQ(core.begin.value(), 20.0);
  EXPECT_DOUBLE_EQ(core.end.value(), 80.0);
}

TEST(DetectCorePhase, FlatTraceThrows) {
  const PowerTrace trace(Seconds{0.0}, Seconds{1.0},
                         std::vector<double>(50, 500.0));
  EXPECT_THROW(detect_core_phase(trace), contract_error);
}

}  // namespace
}  // namespace pv
