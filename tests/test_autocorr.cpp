// Tests for autocorrelation / effective sample size — the correction that
// makes time-average uncertainties honest on AR(1)-textured power traces.

#include "stats/autocorr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"
#include "util/expects.hpp"
#include "workload/noise.hpp"

namespace pv {
namespace {

std::vector<double> white_noise(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(100.0, 5.0);
  return xs;
}

std::vector<double> ar1_series(std::size_t n, double rho,
                               std::uint64_t seed) {
  Ar1Noise noise(1.0, rho, Rng(seed));
  auto xs = noise.series(n);
  for (auto& x : xs) x += 100.0;
  return xs;
}

TEST(Autocorr, LagZeroIsOneAndWhiteNoiseDecorrelates) {
  const auto xs = white_noise(20000, 1);
  EXPECT_NEAR(autocorrelation(xs, 0), 1.0, 1e-12);
  EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 10), 0.0, 0.02);
}

TEST(Autocorr, Ar1LagStructure) {
  const auto xs = ar1_series(100000, 0.8, 2);
  EXPECT_NEAR(autocorrelation(xs, 1), 0.8, 0.02);
  EXPECT_NEAR(autocorrelation(xs, 2), 0.64, 0.03);
  EXPECT_NEAR(autocorrelation(xs, 5), std::pow(0.8, 5), 0.04);
}

TEST(Autocorr, IntegratedTimeMatchesAr1ClosedForm) {
  // For AR(1), tau = (1 + rho) / (1 - rho): rho=0.8 -> 9.
  const auto xs = ar1_series(200000, 0.8, 3);
  EXPECT_NEAR(integrated_autocorrelation_time(xs), 9.0, 1.2);
  const auto white = white_noise(50000, 4);
  EXPECT_NEAR(integrated_autocorrelation_time(white), 1.0, 0.3);
}

TEST(Autocorr, EffectiveSampleSizeShrinksWithCorrelation) {
  const auto xs = ar1_series(50000, 0.9, 5);
  const double n_eff = effective_sample_size(xs);
  // tau = 19 for rho=0.9 -> n_eff ~ 2600.
  EXPECT_LT(n_eff, 6000.0);
  EXPECT_GT(n_eff, 1000.0);
  const auto white = white_noise(50000, 6);
  EXPECT_GT(effective_sample_size(white), 30000.0);
}

TEST(Autocorr, TimeAverageSeIsCalibrated) {
  // The corrected SE should cover the true mean ~95% of the time with a
  // 2-sigma band; the naive sd/sqrt(n) would badly under-cover.
  int covered = 0, naive_covered = 0;
  constexpr int kTrials = 200;
  constexpr std::size_t kLen = 4000;
  for (int t = 0; t < kTrials; ++t) {
    const auto xs = ar1_series(kLen, 0.9, 100 + static_cast<std::uint64_t>(t));
    double mean = 0.0;
    for (double x : xs) mean += x;
    mean /= static_cast<double>(kLen);
    const double se = time_average_standard_error(xs);
    if (std::fabs(mean - 100.0) <= 2.0 * se) ++covered;
    double sd = 0.0;
    for (double x : xs) sd += (x - mean) * (x - mean);
    sd = std::sqrt(sd / (kLen - 1.0));
    if (std::fabs(mean - 100.0) <= 2.0 * sd / std::sqrt(double(kLen))) {
      ++naive_covered;
    }
  }
  EXPECT_GT(covered / static_cast<double>(kTrials), 0.85);
  EXPECT_LT(naive_covered / static_cast<double>(kTrials), 0.75);
}

TEST(Autocorr, DomainChecks) {
  const std::vector<double> tiny{1.0};
  EXPECT_THROW(autocorrelation(tiny, 0), contract_error);
  const std::vector<double> xs{1.0, 2.0, 3.0};
  EXPECT_THROW(autocorrelation(xs, 3), contract_error);
  const std::vector<double> constant(10, 5.0);
  EXPECT_THROW(autocorrelation(constant, 1), contract_error);
  EXPECT_THROW(integrated_autocorrelation_time(xs), contract_error);
}

}  // namespace
}  // namespace pv
