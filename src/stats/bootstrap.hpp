#pragma once
// Bootstrap resampling: percentile confidence intervals for arbitrary
// statistics, and the building blocks of the paper's Figure 3 coverage
// study (which lives in core/coverage and composes these primitives).

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace pv {

/// A two-sided interval estimate.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] bool contains(double x) const { return x >= lo && x <= hi; }
  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] double center() const { return 0.5 * (lo + hi); }
};

/// Result of a bootstrap run.
struct BootstrapResult {
  double point_estimate = 0.0;   ///< statistic on the original sample
  Interval ci;                   ///< percentile interval at the given level
  std::vector<double> replicates;  ///< statistic value per resample
};

/// Percentile-bootstrap CI for `statistic` over `data`.
///
/// `replicates` resamples of size data.size() are drawn with replacement;
/// the (alpha/2, 1-alpha/2) percentiles of the statistic's replicates form
/// the interval.  Deterministic given `rng`'s state.
[[nodiscard]] BootstrapResult bootstrap_ci(
    Rng& rng, std::span<const double> data,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double alpha);

/// Convenience: bootstrap CI for the sample mean.
[[nodiscard]] BootstrapResult bootstrap_mean_ci(Rng& rng,
                                                std::span<const double> data,
                                                std::size_t replicates,
                                                double alpha);

}  // namespace pv
