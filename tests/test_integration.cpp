// Integration tests: full pipelines across modules — catalog system ->
// cluster -> electrical model -> plan -> campaign -> submission -> list,
// and the headline §3 + §4 findings end to end.

#include <gtest/gtest.h>

#include <memory>

#include "core/campaign.hpp"
#include "core/gaming.hpp"
#include "core/report.hpp"
#include "core/sample_size.hpp"
#include "core/submission.hpp"
#include "sim/catalog.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"
#include "trace/io.hpp"
#include "trace/window_select.hpp"
#include "util/mathx.hpp"

namespace pv {
namespace {

TEST(Integration, FullGreen500PipelineOnCatalogSystem) {
  // Build TU-Dresden from the catalog, run a compliant 2015-rules Level 1
  // campaign, package it as a submission, validate, and rank it.
  const catalog::FleetSystem& tud = catalog::fleet_system("TU-Dresden");
  auto workload = catalog::make_workload(tud);
  auto powers = catalog::make_fleet_powers(tud, 1, /*condition_exact=*/true);
  const ClusterPowerModel cluster(tud.name, std::move(powers), workload);
  const SystemPowerModel electrical = make_system_power_model(
      cluster, 18, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{});

  PlanInputs in;
  in.total_nodes = tud.total_nodes;
  in.approx_node_power = Watts{tud.mean_w};
  in.run = cluster.phases();
  Rng rng(2);
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  const auto plan = plan_measurement(spec, in, rng);
  EXPECT_TRUE(validate_plan(plan, in).empty());
  EXPECT_EQ(plan.node_count(), 21u);  // max(16, 10% of 210)

  CampaignConfig cfg;
  cfg.meter_interval_override = Seconds{10.0};
  const auto result = run_campaign(cluster, electrical, plan, cfg);
  // Extrapolation + metering error on a compliant campaign: a few percent.
  EXPECT_LT(result.relative_error, 0.05);
  // The accuracy assessment is reportable and small.
  EXPECT_GT(result.relative_halfwidth, 0.0);
  EXPECT_LT(result.relative_halfwidth, 0.02);

  Submission sub;
  sub.system_name = tud.name;
  sub.site = "TU Dresden";
  sub.rmax = teraflops(50.0);
  sub.power = result.submitted_power;
  sub.level = Level::kL1;
  sub.revision = Revision::kV2015;
  sub.total_nodes = tud.total_nodes;
  sub.nodes_measured = result.nodes_measured;
  sub.core_phase_duration = in.run.core;
  sub.window_duration = result.window_duration;
  sub.reported_accuracy = result.relative_halfwidth;
  EXPECT_TRUE(validate_submission(sub, in.approx_node_power).empty());

  RankedList list("IntegrationList");
  list.add(sub);
  EXPECT_EQ(list.efficiency_rank(tud.name), 1u);
  const std::string report = accuracy_report(plan, result);
  EXPECT_NE(report.find(tud.name), std::string::npos);
}

TEST(Integration, HeadlineWindowSpreadOnGpuSystems) {
  // §1/§3 headline: window placement alone moves a Level 1 measurement by
  // up to ~20% on in-core GPU systems.
  for (std::size_t idx : {2u, 3u}) {  // Piz Daint, L-CSC
    const auto prof = catalog::make_profile(catalog::table2_systems()[idx]);
    const PowerTrace trace = prof.full_run_trace(Seconds{10.0});
    const auto gaming = analyze_window_gaming(trace, prof.phases());
    EXPECT_GT(gaming.spread, 0.10)
        << catalog::table2_systems()[idx].name;
  }
}

TEST(Integration, CpuSystemsAreRobustToWindowPlacement) {
  for (std::size_t idx : {0u, 1u}) {  // Colosse, Sequoia
    const auto prof = catalog::make_profile(catalog::table2_systems()[idx]);
    const PowerTrace trace = prof.full_run_trace(Seconds{60.0});
    const auto gaming = analyze_window_gaming(trace, prof.phases());
    EXPECT_LT(gaming.spread, 0.06) << catalog::table2_systems()[idx].name;
  }
}

TEST(Integration, NewRulesEliminateWindowGamingByConstruction) {
  // Under the 2015 rules the window *is* the core phase, so the submitted
  // number equals the honest average regardless of intent.
  const auto prof = catalog::make_profile(catalog::table2_systems()[3]);
  const PowerTrace trace = prof.full_run_trace(Seconds{10.0});
  const RunPhases p = prof.phases();
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  const Seconds required = spec.required_window_duration(p);
  EXPECT_DOUBLE_EQ(required.value(), p.core.value());
  const Watts honest = trace.mean_power(p.core_window());
  EXPECT_NEAR(honest.value(), 59100.0, 59100.0 * 0.005);
}

TEST(Integration, SmallSampleUnderestimatesLikeThePaperSays) {
  // §4: with cv ~2-3%, tiny subsets give CI halfwidths of several percent;
  // the paper quotes a further 10-15% spread from insufficient samples at
  // the extreme.  Check the monotone chain n=2 -> n=16 -> n=64.
  const catalog::FleetSystem& cq = catalog::fleet_system("Calcul Quebec");
  const auto powers = catalog::make_fleet_powers(cq, 3, true);
  Rng rng(4);
  const auto halfwidth = [&](std::size_t n) {
    std::vector<double> sums;
    // Average CI halfwidth over several random subsets.
    double acc = 0.0;
    for (int t = 0; t < 20; ++t) {
      const auto idx = sample_without_replacement(rng, powers.size(), n);
      const auto sub = gather(powers, idx);
      const Interval ci = t_confidence_interval(sub, 0.05);
      acc += 0.5 * ci.width() / mean_of(sub);
    }
    return acc / 20.0;
  };
  const double h2 = halfwidth(2);
  const double h16 = halfwidth(16);
  const double h64 = halfwidth(64);
  EXPECT_GT(h2, h16);
  EXPECT_GT(h16, h64);
  EXPECT_GT(h2, 0.03);   // tiny samples are percent-level unreliable
  EXPECT_LT(h64, 0.012);  // the 2015 rule brings it to ~1% or better
}

TEST(Integration, PilotThenFinalSampleWorkflow) {
  // §4.2 two-step: pilot 10 nodes of LRZ, recommend n, then verify the
  // achieved accuracy with the final sample.
  const catalog::FleetSystem& lrz = catalog::fleet_system("LRZ");
  const auto powers = catalog::make_fleet_powers(lrz, 5, true);
  Rng rng(6);
  const auto pilot_idx = sample_without_replacement(rng, powers.size(), 10);
  const auto pilot = gather(powers, pilot_idx);
  const auto rec = two_step_pilot(pilot, 0.05, 0.01, lrz.total_nodes);
  EXPECT_GE(rec.recommended_n, 4u);
  EXPECT_LE(rec.recommended_n, 60u);

  const auto final_idx =
      sample_without_replacement(rng, powers.size(), rec.recommended_n);
  const auto final_sample = gather(powers, final_idx);
  const Summary s = summarize(final_sample);
  // The extrapolated total is within ~3 lambda of the truth.
  const double extrapolated = s.mean * static_cast<double>(lrz.total_nodes);
  const double truth = mean_of(powers) * static_cast<double>(lrz.total_nodes);
  EXPECT_NEAR(extrapolated / truth, 1.0, 0.03);
}

TEST(Integration, TraceExportDetectAuditRoundTrip) {
  // The external-audit workflow: a site exports its wall-power log, the
  // vetting team reloads it, auto-detects the core phase, and runs the
  // gaming analysis — results must match the in-memory analysis.
  const auto prof = catalog::make_profile(catalog::table2_systems()[3]);
  const PowerTrace original = prof.full_run_trace(Seconds{10.0}, 0.0);
  const std::string path = ::testing::TempDir() + "/pv_lcsc_run.csv";
  save_trace_csv(original, path);
  const PowerTrace reloaded = load_trace_csv(path);

  // L-CSC's tail sinks well below half the dynamic range before the core
  // phase actually ends, so the audit uses a lower detection threshold —
  // the operator knob detect_core_phase exposes for tailing GPU profiles.
  const TimeWindow detected = detect_core_phase(reloaded, 0.2);
  const RunPhases truth = prof.phases();
  // Threshold detection clips a little of the deepest tail; boundaries
  // land within a few percent of the true phase edges.
  EXPECT_NEAR(detected.begin.value(), truth.core_begin().value(),
              0.05 * truth.core.value());
  EXPECT_NEAR(detected.end.value(), truth.core_end().value(),
              0.05 * truth.core.value());

  RunPhases detected_run;
  detected_run.setup = Seconds{detected.begin.value()};
  detected_run.core = detected.duration();
  const auto from_file = analyze_window_gaming(reloaded, detected_run);
  const auto in_memory = analyze_window_gaming(original, truth);
  EXPECT_NEAR(from_file.best_reduction, in_memory.best_reduction, 0.05);
  EXPECT_NEAR(from_file.full_core_avg.value(),
              in_memory.full_core_avg.value(),
              in_memory.full_core_avg.value() * 0.02);
  // Either way the audit verdict is unambiguous: this run was gameable.
  EXPECT_GT(from_file.best_reduction, 0.05);
}

TEST(Integration, Table4StatisticsSurviveTheFullStack) {
  // Generate each catalog fleet and verify the (mu, sigma/mu) pair matches
  // the paper's published Table 4 row after conditioning.
  for (const auto& sys : catalog::table4_systems()) {
    const auto powers = catalog::make_fleet_powers(sys, 7, true);
    const Summary s = summarize(powers);
    EXPECT_NEAR(s.mean, sys.mean_w, 1e-6) << sys.name;
    EXPECT_NEAR(s.stddev, sys.sd_w, 1e-6) << sys.name;
  }
}

}  // namespace
}  // namespace pv
