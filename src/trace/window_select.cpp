#include "trace/window_select.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace pv {
namespace {

std::vector<WindowAverage> sweep_impl(const PowerTrace& trace,
                                      TimeWindow bounds, Seconds width) {
  PV_EXPECTS(bounds.valid(), "bounds must be non-empty");
  PV_EXPECTS(width.value() > 0.0, "window width must be positive");
  PV_EXPECTS(width.value() <= bounds.duration().value() + 1e-9,
             "window wider than the allowed bounds");
  PV_EXPECTS(bounds.begin.value() >= trace.t0().value() - 1e-9 &&
                 bounds.end.value() <= trace.t_end().value() + 1e-9,
             "trace does not cover the sweep bounds");

  const double dt = trace.dt().value();
  std::vector<WindowAverage> out;
  // Advance the window start one sample at a time; include the final
  // placement flush against the right bound even if it is not
  // sample-aligned, so the sweep covers the full legal range.
  double begin = bounds.begin.value();
  const double last_begin = bounds.end.value() - width.value();
  for (;;) {
    TimeWindow w{Seconds{begin}, Seconds{begin + width.value()}};
    out.push_back({w, trace.mean_power(w)});
    if (begin >= last_begin - 1e-9) break;
    begin = std::min(begin + dt, last_begin);
  }
  return out;
}

}  // namespace

std::vector<WindowAverage> sweep_windows(const PowerTrace& trace,
                                         TimeWindow bounds, Seconds width) {
  return sweep_impl(trace, bounds, width);
}

WindowAverage min_average_window(const PowerTrace& trace, TimeWindow bounds,
                                 Seconds width) {
  const auto sweep = sweep_impl(trace, bounds, width);
  return *std::min_element(sweep.begin(), sweep.end(),
                           [](const WindowAverage& a, const WindowAverage& b) {
                             return a.mean < b.mean;
                           });
}

WindowAverage max_average_window(const PowerTrace& trace, TimeWindow bounds,
                                 Seconds width) {
  const auto sweep = sweep_impl(trace, bounds, width);
  return *std::max_element(sweep.begin(), sweep.end(),
                           [](const WindowAverage& a, const WindowAverage& b) {
                             return a.mean < b.mean;
                           });
}

}  // namespace pv
