// Tests for the list measurement-quality composition analysis.

#include "core/list_quality.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace pv {
namespace {

Submission entry(PowerProvenance prov, Level level) {
  Submission s;
  s.system_name = "x";
  s.rmax = teraflops(1.0);
  s.power = kilowatts(100.0);
  s.provenance = prov;
  s.level = level;
  return s;
}

TEST(ListQuality, November2014MatchesThePaper) {
  const ListQualityBreakdown b = november_2014_green500();
  EXPECT_EQ(b.total, 267u);
  EXPECT_EQ(b.derived, 233u);
  EXPECT_EQ(b.level1, 28u);
  EXPECT_EQ(b.level2 + b.level3, 6u);
  // "With the vast majority of actual measurements using Level 1":
  EXPECT_GT(b.level1_share_of_measured(), 0.8);
  EXPECT_NEAR(b.measured_fraction(), 34.0 / 267.0, 1e-12);
}

TEST(ListQuality, SummarizeCountsClasses) {
  std::vector<Submission> entries;
  entries.push_back(entry(PowerProvenance::kDerived, Level::kL1));
  entries.push_back(entry(PowerProvenance::kMeasured, Level::kL1));
  entries.push_back(entry(PowerProvenance::kMeasured, Level::kL2));
  entries.push_back(entry(PowerProvenance::kMeasured, Level::kL3));
  entries.push_back(entry(PowerProvenance::kMeasured, Level::kL1));
  const ListQualityBreakdown b = summarize_quality(entries);
  EXPECT_EQ(b.total, 5u);
  EXPECT_EQ(b.derived, 1u);
  EXPECT_EQ(b.level1, 2u);
  EXPECT_EQ(b.level2, 1u);
  EXPECT_EQ(b.level3, 1u);
  EXPECT_DOUBLE_EQ(b.measured_fraction(), 0.8);
  EXPECT_DOUBLE_EQ(b.level1_share_of_measured(), 0.5);
}

TEST(ListQuality, RulesRevisionImprovesExpectedUncertainty) {
  const ListQualityBreakdown mix = november_2014_green500();
  const double old_rules = expected_list_uncertainty(mix, Revision::kV1_2);
  const double new_rules = expected_list_uncertainty(mix, Revision::kV2015);
  EXPECT_LT(new_rules, old_rules);
  // The derived majority dominates either way — the paper's deeper point.
  EXPECT_GT(new_rules, 0.10);
}

TEST(ListQuality, Guards) {
  EXPECT_THROW(summarize_quality({}).measured_fraction(), contract_error);
  ListQualityBreakdown empty;
  EXPECT_THROW(expected_list_uncertainty(empty, Revision::kV1_2),
               contract_error);
  ListQualityBreakdown all_derived;
  all_derived.total = 3;
  all_derived.derived = 3;
  EXPECT_THROW(all_derived.level1_share_of_measured(), contract_error);
}

}  // namespace
}  // namespace pv
