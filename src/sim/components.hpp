#pragma once
// Component power models: CPU, GPU (with voltage IDs), and fans.
//
// §5 of the paper traces node variability to physical causes:
//   * manufacturing leakage spread (every die leaks differently),
//   * per-ASIC programmed Voltage IDs (VIDs): the vendor-fused minimum
//     stable voltage for the default frequency,
//   * automatic fan-speed regulation, which on L-CSC moves node power by
//     >100 W — more than the silicon spread itself.
// These models implement the standard first-order CMOS power decomposition
//   P = P_static(V, leakage) + P_dynamic(f, V, activity)
// with P_static ∝ V * exp(k (V - V_ref)) * leakage_mult and
// P_dynamic ∝ activity * f * V^2, and a cubic fan law P_fan ∝ speed^3.

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"
#include "util/units.hpp"

namespace pv {

/// A discrete DVFS operating point.
struct OperatingPoint {
  Hertz frequency{0.0};
  Volts voltage{0.0};
};

// --------------------------------------------------------------------------
// CPU

/// Catalog description of a CPU SKU.
struct CpuSpec {
  double static_w_ref = 25.0;   ///< static power at reference voltage
  double dynamic_w_ref = 90.0;  ///< dynamic power at (f_ref, V_ref), activity 1
  OperatingPoint reference{gigahertz(2.7), volts(1.0)};
  std::vector<OperatingPoint> pstates;  ///< available DVFS points (sorted by f)
  double leakage_voltage_slope = 3.0;   ///< k in exp(k (V - V_ref))
  double peak_gflops_ref = 170.0;       ///< DP GFLOP/s per socket at f_ref
  /// Fractional static-power increase per Kelvin above the 25 C reference
  /// (sub-threshold leakage grows with junction temperature).
  double leakage_temp_coeff = 0.006;
};

/// One physical CPU: the spec plus its manufacturing leakage multiplier.
class CpuModel {
 public:
  CpuModel(CpuSpec spec, double leakage_mult);

  /// Die power at the given operating point and activity in [0, 1]
  /// (junction at the 25 C leakage reference).
  [[nodiscard]] Watts power(OperatingPoint op, double activity) const;
  /// Same, with the junction at `temp` (temperature-dependent leakage).
  [[nodiscard]] Watts power_at_temp(OperatingPoint op, double activity,
                                    Celsius temp) const;
  /// Relative compute throughput at an operating point (∝ frequency).
  [[nodiscard]] double throughput(OperatingPoint op) const;

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }
  [[nodiscard]] double leakage_mult() const { return leakage_mult_; }

 private:
  CpuSpec spec_;
  double leakage_mult_;
};

// --------------------------------------------------------------------------
// GPU

/// Catalog description of a GPU SKU (AMD FirePro S9150-like by default).
struct GpuSpec {
  double static_w_ref = 35.0;
  double dynamic_w_ref = 190.0;  ///< at (f_ref, V_ref), activity 1
  OperatingPoint reference{megahertz(900.0), volts(1.05)};
  double peak_gflops_ref = 2530.0;  ///< DP GFLOP/s at the reference frequency
  double leakage_voltage_slope = 4.0;
  /// VID ladder: index b in [0, vid_bins) fuses default voltage
  /// vid_base_v + b * vid_step_v for the reference frequency.
  std::size_t vid_bins = 10;
  double vid_base_v = 1.040;
  double vid_step_v = 0.010;
  /// Minimum operating voltage of the process: below this no frequency
  /// reduction buys a lower voltage (why L-CSC's optimum sits at 774 MHz).
  double min_voltage_v = 1.000;
  /// Fractional static-power increase per Kelvin above the 25 C reference.
  double leakage_temp_coeff = 0.008;
};

/// Per-ASIC identity: the fused VID bin and the silicon draws.
/// `leakage_mult` scales static power; `dynamic_mult` scales dynamic power
/// (switching-capacitance spread) and is what keeps "identical" boards
/// from drawing identical power even at a fixed operating point.
struct GpuAsic {
  std::size_t vid_bin = 0;
  double leakage_mult = 1.0;
  double dynamic_mult = 1.0;
};

/// One physical GPU.
class GpuModel {
 public:
  GpuModel(GpuSpec spec, GpuAsic asic);

  /// The ASIC's fused default voltage at the reference frequency.
  [[nodiscard]] Volts default_voltage() const;
  /// The default operating point (reference frequency, VID voltage).
  [[nodiscard]] OperatingPoint default_operating_point() const;

  [[nodiscard]] Watts power(OperatingPoint op, double activity) const;
  /// Same, with the junction at `temp` (temperature-dependent leakage).
  [[nodiscard]] Watts power_at_temp(OperatingPoint op, double activity,
                                    Celsius temp) const;
  /// Sustained DP GFLOP/s at an operating point (∝ frequency).
  [[nodiscard]] double gflops(OperatingPoint op) const;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }
  [[nodiscard]] const GpuAsic& asic() const { return asic_; }

 private:
  GpuSpec spec_;
  GpuAsic asic_;
};

/// Draws an ASIC identity: a centered-binomial VID bin (process spread is
/// roughly bell-shaped over the ladder) and a log-normal-ish leakage
/// multiplier mildly correlated with the VID (leakier dies need more
/// voltage, hence get fused with higher VIDs).
[[nodiscard]] GpuAsic draw_gpu_asic(const GpuSpec& spec, Rng& rng,
                                    double leakage_cv = 0.03,
                                    double vid_leakage_corr = 0.5,
                                    double dynamic_cv = 0.02);

// --------------------------------------------------------------------------
// Fans

/// Node fan subsystem: cubic power law in speed.
struct FanSpec {
  double max_power_w = 120.0;  ///< all node fans at 100% duty
  double min_speed = 0.25;     ///< controller floor
};

/// Fan control policy — the §5 mitigation is to pin all nodes' fans.
struct FanPolicy {
  enum class Mode { kAuto, kPinned };
  Mode mode = Mode::kAuto;
  double pinned_speed = 0.55;  ///< used when mode == kPinned

  static FanPolicy automatic() { return {Mode::kAuto, 0.0}; }
  static FanPolicy pinned(double speed) { return {Mode::kPinned, speed}; }
};

/// Fan power at a duty-cycle speed in [0, 1].
[[nodiscard]] Watts fan_power(const FanSpec& spec, double speed);

}  // namespace pv
