#include "service/service.hpp"

#include <algorithm>
#include <utility>

#include "core/doc.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "trace/wal.hpp"
#include "util/expects.hpp"

namespace pv {

namespace {

/// Decorator injecting one stage-level fault.  kThrowStage and
/// kWorkerDeath throw before the inner stage runs; kStallStage models a
/// stage that eats the whole deadline budget — it exhausts the token and
/// returns without running the inner stage, so the *next* boundary check
/// in run_pipeline (there is one after the last stage too) unwinds the
/// campaign exactly as a real overrun would.
class ChaosStage final : public CampaignStage {
 public:
  ChaosStage(StagePtr inner, ServiceFault fault, CancelToken* token)
      : inner_(std::move(inner)), fault_(fault), token_(token) {}

  [[nodiscard]] const char* name() const override { return inner_->name(); }

  void run(CampaignContext& ctx, StageTrace& trace) override {
    switch (fault_) {
      case ServiceFault::kThrowStage:
        throw InjectedStageError(std::string("injected failure in stage '") +
                                 inner_->name() + "'");
      case ServiceFault::kWorkerDeath:
        throw WorkerDeathError(std::string("worker died in stage '") +
                               inner_->name() + "'");
      case ServiceFault::kStallStage:
        if (token_ != nullptr) token_->exhaust_deadline();
        return;  // the stalled stage never finishes; boundary check fires
      case ServiceFault::kNone:
      case ServiceFault::kCacheCorrupt:
        break;
    }
    inner_->run(ctx, trace);
  }

 private:
  StagePtr inner_;
  ServiceFault fault_;
  CancelToken* token_;
};

}  // namespace

std::uint64_t service_checkpoint_fingerprint() {
  // FNV-1a of the journal schema tag: binds drain-checkpoint journals to
  // this format so replay rejects journals written by anything else.
  const std::string tag = "powervar-service-checkpoint-v1";
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

CampaignService::CampaignService(ServiceConfig config)
    : config_(std::move(config)),
      pool_(std::make_unique<ThreadPool>(std::max(1u, config_.workers))),
      cache_(config_.cache_capacity, config_.cache_dir),
      fair_(config_.fair_age_boost) {
  config_.workers = pool_->size();
}

CampaignService::~CampaignService() {
  try {
    drain();
  } catch (...) {
    // Destruction must not throw; drain errors are already reflected in
    // per-request responses.
  }
}

AdmissionVerdict CampaignService::submit_line(const std::string& json_line,
                                              bool hold) {
  try {
    return submit(parse_request(json_line), hold);
  } catch (const std::exception& e) {
    // JsonParseError or RequestParseError: the line never reaches
    // admission, but still resolves to exactly one typed response.
    std::unique_lock lock(mu_);
    ++report_.submitted;
    ++report_.invalid;
    auto slot = std::make_unique<Slot>();
    slot->state = State::kDone;
    slot->response.code = ResponseCode::kInvalidRequest;
    slot->response.message = e.what();
    AdmissionVerdict verdict;
    verdict.decision = Admission::kShed;
    verdict.ticket = slots_.size();
    verdict.has_ticket = true;
    slots_.push_back(std::move(slot));
    complete_locked(verdict.ticket);
    return verdict;
  }
}

AdmissionVerdict CampaignService::submit(const ServiceRequest& req,
                                         bool hold) {
  return admit(req, hold, /*resumed=*/false);
}

AdmissionVerdict CampaignService::admit(const ServiceRequest& req, bool hold,
                                        bool resumed) {
  bool dispatchable = false;
  AdmissionVerdict verdict;
  {
    std::unique_lock lock(mu_);
    ++report_.submitted;
    DrainReport::TenantStats& tstats = report_.tenants[req.tenant];
    ++tstats.submitted;
    const std::size_t in_flight = running_ + queued_;
    const bool over_queue =
        in_flight >= config_.workers &&
        in_flight - config_.workers >= config_.max_queue;
    // A resumed request was accepted once already — it bypasses the
    // queue bound (but never a draining service).  The per-tenant cap
    // sheds a flooding tenant even while the global queue has room.
    const bool over_tenant =
        config_.tenant_queue > 0 && !resumed &&
        fair_.waiting(req.tenant) >= config_.tenant_queue;
    if (draining_ || (over_queue && !resumed) || over_tenant) {
      ++report_.shed;
      ++tstats.shed;
      auto slot = std::make_unique<Slot>();
      slot->state = State::kDone;
      slot->response.id = req.id;
      slot->response.code = ResponseCode::kShed;
      slot->response.retry_after_s = config_.retry_after_s;
      slot->response.message = draining_     ? "service is draining"
                               : over_tenant ? "tenant queue is full"
                                             : "admission queue is full";
      verdict.decision = Admission::kShed;
      verdict.ticket = slots_.size();
      verdict.has_ticket = true;
      verdict.retry_after_s = config_.retry_after_s;
      slots_.push_back(std::move(slot));
      complete_locked(verdict.ticket);
      return verdict;
    }

    ++report_.admitted;
    ++tstats.admitted;
    ids_accepted_.insert(req.id);
    auto slot = std::make_unique<Slot>();
    slot->request = req;
    slot->counts_admitted = true;
    slot->held = hold;
    slot->cancel = std::make_unique<CancelToken>();
    const double budget =
        req.deadline_ms > 0.0 ? req.deadline_ms : config_.default_deadline_ms;
    if (budget > 0.0) slot->cancel->arm_deadline(budget);
    const std::size_t ticket = slots_.size();
    ++queued_;
    verdict.decision =
        in_flight < config_.workers ? Admission::kAccepted : Admission::kQueued;
    verdict.ticket = ticket;
    verdict.has_ticket = true;
    verdict.queue_depth =
        in_flight >= config_.workers ? in_flight - config_.workers + 1 : 0;
    slots_.push_back(std::move(slot));
    if (!hold) {
      fair_.enqueue(ticket, req.tenant, req.priority);
      dispatchable = true;
    }

    // Chaos: shutdown-mid-request — trip the drain flag after the Nth
    // admission; later submits shed, queued work gets checkpointed by
    // the (user-initiated) drain.
    if (config_.chaos.drain_after > 0 &&
        report_.admitted >= config_.chaos.drain_after) {
      draining_ = true;
    }
  }
  // One anonymous pool job per dispatchable admission: each job pops
  // whichever ticket the fair-share policy ranks first *at execution
  // time*, so priorities and aging apply to the whole backlog, not just
  // the submission order.
  if (dispatchable) {
    try {
      pool_->submit([this] { run_next(); });
    } catch (const PoolStoppedError&) {
      // Admission raced a concurrent drain: the drain's checkpoint pass
      // resolves this slot (it is still queued), so losing the job is
      // safe — the ticket never dangles.
    }
  }
  return verdict;
}

ResumeOutcome CampaignService::resume_from(const std::string& path) {
  WalReplay replay;
  try {
    replay = replay_wal(path);
  } catch (const std::exception& e) {
    throw CheckpointError(std::string("checkpoint journal is unreadable: ") +
                          e.what());
  }
  if (!replay.exists) {
    throw CheckpointError("checkpoint journal '" + path +
                          "' is missing or empty");
  }
  if (replay.fingerprint != service_checkpoint_fingerprint()) {
    throw CheckpointError(
        "checkpoint journal carries a foreign fingerprint (not a service "
        "drain checkpoint); refusing to resume");
  }
  if (replay.torn_lines != 0) {
    throw CheckpointError("checkpoint journal has " +
                          std::to_string(replay.torn_lines) +
                          " torn line(s); refusing to resume past a tear");
  }
  // Validate the whole journal before submitting anything: a defective
  // record must refuse the resume outright, never leave it half-applied.
  std::vector<ServiceRequest> reqs;
  reqs.reserve(replay.records.size());
  for (const std::string& record : replay.records) {
    try {
      reqs.push_back(parse_request(record));
    } catch (const std::exception& e) {
      throw CheckpointError(
          std::string("checkpoint record is not a valid request: ") +
          e.what());
    }
  }

  ResumeOutcome outcome;
  for (const ServiceRequest& req : reqs) {
    {
      std::unique_lock lock(mu_);
      if (ids_accepted_.contains(req.id)) {
        ++outcome.duplicates;  // keyed dedup: never double-submit an id
        continue;
      }
    }
    outcome.tickets.push_back(admit(req, /*hold=*/false, /*resumed=*/true)
                                  .ticket);
  }
  return outcome;
}

ServiceResponse CampaignService::run_request(const ServiceRequest& req,
                                             CancelToken* token,
                                             ServiceFault fault) {
  ServiceResponse resp;
  resp.id = req.id;
  try {
    token->check("admission");
    const auto scenario =
        cache_.acquire(scenario_spec_of(req), config_.strict_cache,
                       fault == ServiceFault::kCacheCorrupt);
    const MeasurementPlan plan = plan_of(req, *scenario);
    const CampaignConfig config = campaign_config_of(req, plan);
    std::vector<StagePtr> stages = make_campaign_stages(plan, config);
    if (fault == ServiceFault::kThrowStage ||
        fault == ServiceFault::kStallStage ||
        fault == ServiceFault::kWorkerDeath) {
      const std::size_t idx = config_.chaos.stage_of(req.id) % stages.size();
      stages[idx] =
          std::make_unique<ChaosStage>(std::move(stages[idx]), fault, token);
    }
    const CampaignResult result = run_campaign_stages(
        *scenario->cluster, *scenario->electrical, plan, config, stages, token);
    resp.code = ResponseCode::kOk;
    resp.assessment_json = render_json(assessment_document(plan, result));
  } catch (const DeadlineExceededError& e) {
    resp.code = ResponseCode::kDeadlineExceeded;
    resp.message = e.what();
  } catch (const CancelledError& e) {
    resp.code = ResponseCode::kCancelled;
    resp.message = e.what();
  } catch (const CacheCorruptError& e) {
    resp.code = ResponseCode::kCacheCorrupt;
    resp.message = e.what();
  } catch (const WorkerDeathError& e) {
    resp.code = ResponseCode::kWorkerLost;
    resp.message = e.what();
  } catch (const InjectedStageError& e) {
    resp.code = ResponseCode::kStageFailed;
    resp.message = e.what();
  } catch (const NoUsableDataError& e) {
    resp.code = ResponseCode::kNoUsableData;
    resp.message = e.what();
  } catch (const std::exception& e) {
    resp.code = ResponseCode::kStageFailed;
    resp.message = e.what();
  }
  return resp;
}

void CampaignService::run_next() {
  std::size_t ticket = 0;
  std::size_t order = 0;
  ServiceRequest req;
  CancelToken* token = nullptr;
  {
    std::unique_lock lock(mu_);
    // Pop until a still-queued ticket surfaces: drain may have resolved
    // queued slots between this job's submission and its execution.
    for (;;) {
      if (fair_.empty()) return;
      ticket = fair_.pop();
      if (slots_[ticket]->state == State::kQueued) break;
    }
    Slot& slot = *slots_[ticket];
    slot.state = State::kRunning;
    --queued_;
    ++running_;
    order = ++dispatched_;
    req = slot.request;
    token = slot.cancel.get();
  }
  const ServiceFault fault = config_.chaos.decide(req.id);
  ServiceResponse resp = run_request(req, token, fault);
  if (fault != ServiceFault::kNone) resp.fault_injected = to_string(fault);
  resp.dispatch_order = order;
  {
    std::unique_lock lock(mu_);
    if (resp.code == ResponseCode::kWorkerLost) ++report_.workers_replaced;
    --running_;
    finish_locked(ticket, std::move(resp));
  }
}

void CampaignService::finish_locked(std::size_t ticket, ServiceResponse resp) {
  Slot& slot = *slots_[ticket];
  slot.state = State::kDone;
  slot.response = std::move(resp);
  ++report_.completed;
  ++report_.tenants[slot.request.tenant].completed;
  complete_locked(ticket);
  cv_done_.notify_all();
}

void CampaignService::complete_locked(std::size_t ticket) {
  completions_.push_back(ticket);
  cv_completed_.notify_all();
}

ServiceResponse CampaignService::wait(std::size_t ticket) {
  std::unique_lock lock(mu_);
  PV_EXPECTS(ticket < slots_.size(), "wait() on an unknown ticket");
  cv_done_.wait(lock,
                [&] { return slots_[ticket]->state == State::kDone; });
  return slots_[ticket]->response;
}

std::optional<std::size_t> CampaignService::next_completed() {
  std::unique_lock lock(mu_);
  cv_completed_.wait(
      lock, [&] { return !completions_.empty() || completions_closed_; });
  if (completions_.empty()) return std::nullopt;
  const std::size_t ticket = completions_.front();
  completions_.pop_front();
  return ticket;
}

DrainReport CampaignService::drain() {
  std::unique_lock lock(mu_);
  if (drained_) {
    report_.cache = cache_.stats();
    return report_;
  }
  draining_ = true;

  // Checkpoint (or cancel) everything admitted but not yet started, in
  // ticket order — the WAL record order (and therefore a later resume's
  // response order) is a pure function of the submission sequence.  The
  // fair queue is emptied up front so pending run_next jobs become
  // no-ops instead of racing the checkpoint pass.
  (void)fair_.clear();
  std::unique_ptr<WalWriter> wal;
  std::size_t appended = 0;
  bool crashed = false;
  for (std::size_t ticket = 0; ticket < slots_.size(); ++ticket) {
    Slot& slot = *slots_[ticket];
    if (slot.state != State::kQueued) continue;
    slot.cancel->cancel();
    ServiceResponse resp;
    resp.id = slot.request.id;
    if (!crashed && config_.crash_after_checkpoints > 0 &&
        appended >= config_.crash_after_checkpoints) {
      // Simulated crash mid-drain: the journal keeps its valid K-record
      // prefix; everything past it is lost exactly as a real process
      // death would lose it.
      crashed = true;
    }
    if (!config_.checkpoint_path.empty() && !crashed) {
      if (!wal) {
        wal = std::make_unique<WalWriter>(config_.checkpoint_path,
                                          service_checkpoint_fingerprint());
      }
      wal->append(render_request_json(slot.request));
      ++appended;
      resp.code = ResponseCode::kCheckpointed;
      resp.message = "drained before start; request checkpointed";
    } else {
      resp.code = ResponseCode::kCancelled;
      resp.message = crashed
                         ? "lost by the simulated crash mid-drain"
                         : "drained before start (no checkpoint journal)";
    }
    slot.state = State::kDone;
    slot.response = std::move(resp);
    --queued_;
    ++report_.checkpointed;
    ++report_.tenants[slot.request.tenant].checkpointed;
    complete_locked(ticket);
  }
  cv_done_.notify_all();

  // Let running requests finish — they are never torn mid-stage.
  cv_done_.wait(lock, [&] { return running_ == 0 && queued_ == 0; });
  drained_ = true;
  lock.unlock();
  pool_->shutdown();
  lock.lock();
  report_.cache = cache_.stats();
  completions_closed_ = true;
  cv_completed_.notify_all();
  if (crashed) {
    lock.unlock();
    throw ServiceAbortedError(
        "simulated crash after " + std::to_string(appended) +
        " checkpoint append(s); the journal prefix on disk is valid");
  }
  return report_;
}

}  // namespace pv
