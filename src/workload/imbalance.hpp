#pragma once
// Load imbalance across nodes — the boundary of the paper's method.
//
// The §4 statistics assume a *balanced* workload: every node does the same
// work, so per-node power differences reflect only hardware variability
// and stay near-normal.  Davis et al. [3] observed that data-intensive
// workloads violate this badly ("substantial differences in nodes' average
// power"), and the paper's §6 scopes its recommendation to "regular"
// applications.  These helpers generate per-node load shares for an
// irregular workload so benches can show exactly how the machinery
// degrades: cv inflates, the distribution skews, and the Equation 5 sample
// sizes (computed from a hardware-only pilot) stop delivering their
// nominal accuracy.

#include <cstdint>
#include <span>
#include <vector>

namespace pv {

/// Parameters of an imbalanced workload's load distribution.
struct ImbalanceParams {
  /// Coefficient of variation of per-node load shares (0 = balanced).
  double share_cv = 0.0;
  /// Fraction of "straggler-feeder" nodes carrying a multiple of the mean
  /// load (hot partitions in data-intensive runs).
  double hot_node_prob = 0.0;
  /// Load multiple carried by hot nodes.
  double hot_node_factor = 2.0;
};

/// Per-node load shares with mean exactly 1: a log-normal body with the
/// given cv plus the hot-node mixture, renormalized.  share_cv == 0 and
/// hot_node_prob == 0 returns all ones.
[[nodiscard]] std::vector<double> imbalanced_load_shares(
    std::size_t n, const ImbalanceParams& params, std::uint64_t seed);

/// Applies load shares to a balanced fleet's per-node mean powers:
/// p_i <- p_i * (static_fraction + (1 - static_fraction) * share_i).
/// Only the dynamic component of node power follows the load.
void apply_load_shares(std::span<double> node_powers,
                       std::span<const double> shares,
                       double static_fraction);

}  // namespace pv
