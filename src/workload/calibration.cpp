#include "workload/calibration.hpp"

#include <cmath>

#include "util/expects.hpp"
#include "util/mathx.hpp"
#include "workload/noise.hpp"

namespace pv {

CalibratedSystemProfile::CalibratedSystemProfile(
    std::string system_name, HplParams shape, RunPhases run_phases,
    SegmentTargets targets, double setup_power_frac, double teardown_power_frac)
    : system_name_(std::move(system_name)),
      shape_(shape, run_phases.core, run_phases.setup, run_phases.teardown),
      phases_(run_phases),
      targets_(targets),
      setup_power_frac_(setup_power_frac),
      teardown_power_frac_(teardown_power_frac) {
  // Saturated CPU shapes (tiny knee) concentrate their physical deficit in
  // the final instants, so they need the smooth tail component to express
  // sub-percent segment differences with physical (positive) power; GPU
  // in-core shapes carry a broad physical slope and use it directly.
  smooth_tail_weight_ = shape.knee < 0.05 ? 1.0 : 0.0;
  PV_EXPECTS(targets.core_avg.value() > 0.0 &&
                 targets.first20_avg.value() > 0.0 &&
                 targets.last20_avg.value() > 0.0,
             "segment targets must be positive");
  PV_EXPECTS(setup_power_frac > 0.0 && teardown_power_frac > 0.0,
             "idle power fractions must be positive");
  calibrate();
}

double CalibratedSystemProfile::phi_warm(double tc) const {
  const double tau =
      shape_.params().warmup_tau_frac * phases_.core.value();
  return std::exp(-tc / std::max(tau, 1e-9));
}

double CalibratedSystemProfile::phi_tail(double tc) const {
  // Physically derived component: efficiency deficit of the LU-progress
  // model, normalized to [0, 1].  For near-flat CPU shapes this deficit is
  // concentrated in the last instants of the run, which would force huge
  // coefficients (and non-physical negative power) when the published
  // last-20% average sits below the core average; blend in a smooth
  // quadratic time-domain tail so the basis has usable mass across the
  // whole final segment for every shape.
  const double m = shape_.trailing_fraction(tc);
  const auto& p = shape_.params();
  const double physical = (p.e_max - shape_.efficiency(m)) / (p.e_max - p.e_min);
  if (smooth_tail_weight_ == 0.0) return physical;
  const double T = phases_.core.value();
  const double s = (tc / T - 0.75) / 0.25;
  const double smooth = s > 0.0 ? s * s : 0.0;
  return physical + smooth_tail_weight_ * smooth;
}

void CalibratedSystemProfile::calibrate() {
  const double T = phases_.core.value();
  // Segment averages of each basis function, integrated numerically.
  const auto avg_basis = [&](double a_frac, double b_frac) {
    const auto avg = [&](auto&& f) {
      return average_over(f, a_frac * T, b_frac * T, 8192);
    };
    return std::array<double, 3>{
        1.0, avg([&](double tc) { return phi_warm(tc); }),
        avg([&](double tc) { return phi_tail(tc); })};
  };

  const std::array<std::array<double, 3>, 3> a{
      avg_basis(0.0, 1.0),   // full core phase
      avg_basis(0.0, 0.2),   // first 20%
      avg_basis(0.8, 1.0)};  // last 20%
  const std::array<double, 3> b{targets_.core_avg.value(),
                                targets_.first20_avg.value(),
                                targets_.last20_avg.value()};
  coeff_ = solve3x3(a, b);

  // Record the in-core peak for intensity normalization and sanity-check
  // that the calibrated profile stays physical (positive power).
  double peak = 0.0;
  double low = b[0];
  constexpr int kScan = 4096;
  for (int i = 0; i <= kScan; ++i) {
    const double tc = T * static_cast<double>(i) / kScan;
    const double p = coeff_[0] + coeff_[1] * phi_warm(tc) +
                     coeff_[2] * phi_tail(tc);
    peak = std::max(peak, p);
    low = std::min(low, p);
  }
  peak_core_power_ = peak;
  PV_ENSURES(low > 0.0,
             "calibrated profile went non-positive; targets are inconsistent "
             "with the chosen HPL shape");
}

double CalibratedSystemProfile::system_power_w(double t) const {
  PV_EXPECTS(t >= -1e-9 && t <= phases_.total().value() + 1e-9,
             "time outside the run");
  if (t < phases_.core_begin().value()) {
    return targets_.core_avg.value() * setup_power_frac_;
  }
  if (t >= phases_.core_end().value()) {
    return targets_.core_avg.value() * teardown_power_frac_;
  }
  const double tc = t - phases_.core_begin().value();
  return coeff_[0] + coeff_[1] * phi_warm(tc) + coeff_[2] * phi_tail(tc);
}

double CalibratedSystemProfile::intensity(double t) const {
  return system_power_w(t) / peak_core_power_;
}

PowerTrace CalibratedSystemProfile::make_trace(Seconds begin, Seconds end,
                                               Seconds dt,
                                               double noise_sigma_frac,
                                               double noise_rho,
                                               std::uint64_t seed) const {
  PV_EXPECTS(dt.value() > 0.0, "sample interval must be positive");
  PV_EXPECTS(noise_sigma_frac >= 0.0, "noise sd must be non-negative");
  const auto n = static_cast<std::size_t>(
      std::floor((end.value() - begin.value()) / dt.value() + 1e-9));
  PV_EXPECTS(n > 0, "window shorter than one sample");
  Ar1Noise noise(noise_sigma_frac, noise_rho, Rng(seed, /*stream=*/7));
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mid =
        begin.value() + (static_cast<double>(i) + 0.5) * dt.value();
    double p = system_power_w(mid);
    if (noise_sigma_frac > 0.0) p *= 1.0 + noise.next();
    w[i] = p;
  }
  return PowerTrace(begin, dt, std::move(w));
}

PowerTrace CalibratedSystemProfile::core_phase_trace(Seconds dt,
                                                     double noise_sigma_frac,
                                                     double noise_rho,
                                                     std::uint64_t seed) const {
  return make_trace(phases_.core_begin(), phases_.core_end(), dt,
                    noise_sigma_frac, noise_rho, seed);
}

PowerTrace CalibratedSystemProfile::full_run_trace(Seconds dt,
                                                   double noise_sigma_frac,
                                                   double noise_rho,
                                                   std::uint64_t seed) const {
  return make_trace(Seconds{0.0}, phases_.total(), dt, noise_sigma_frac,
                    noise_rho, seed);
}

}  // namespace pv
