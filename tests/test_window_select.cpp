// Unit tests for the sliding-window search behind the gaming analysis.

#include "trace/window_select.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/expects.hpp"

namespace pv {
namespace {

PowerTrace vee_trace() {
  // 100 samples: power dips to a minimum at t=60.
  std::vector<double> w(100);
  for (std::size_t i = 0; i < 100; ++i) {
    w[i] = 100.0 + std::fabs(static_cast<double>(i) - 60.0);
  }
  return PowerTrace(Seconds{0.0}, Seconds{1.0}, std::move(w));
}

TEST(WindowSelect, FindsMinimumAroundTheDip) {
  const PowerTrace t = vee_trace();
  const TimeWindow bounds{Seconds{0.0}, Seconds{100.0}};
  const WindowAverage best = min_average_window(t, bounds, Seconds{10.0});
  // The cheapest 10 s window is centered on the dip at t=60.
  EXPECT_NEAR(best.window.begin.value(), 55.0, 1.01);
  EXPECT_LT(best.mean.value(), 103.0);
}

TEST(WindowSelect, FindsMaximumAtTheEdge) {
  const PowerTrace t = vee_trace();
  const TimeWindow bounds{Seconds{0.0}, Seconds{100.0}};
  const WindowAverage worst = max_average_window(t, bounds, Seconds{10.0});
  // The most expensive window hugs the left edge (power 160 down to 150).
  EXPECT_DOUBLE_EQ(worst.window.begin.value(), 0.0);
}

TEST(WindowSelect, SweepCoversAllPlacements) {
  const PowerTrace t = vee_trace();
  const TimeWindow bounds{Seconds{10.0}, Seconds{90.0}};
  const auto sweep = sweep_windows(t, bounds, Seconds{20.0});
  // Placements 10..70 step 1 -> 61 windows.
  EXPECT_EQ(sweep.size(), 61u);
  EXPECT_DOUBLE_EQ(sweep.front().window.begin.value(), 10.0);
  EXPECT_NEAR(sweep.back().window.end.value(), 90.0, 1e-9);
  for (const auto& wa : sweep) {
    EXPECT_NEAR(wa.window.duration().value(), 20.0, 1e-9);
  }
}

TEST(WindowSelect, WindowEqualToBoundsIsSinglePlacement) {
  const PowerTrace t = vee_trace();
  const TimeWindow bounds{Seconds{20.0}, Seconds{50.0}};
  const auto sweep = sweep_windows(t, bounds, Seconds{30.0});
  ASSERT_EQ(sweep.size(), 1u);
  EXPECT_DOUBLE_EQ(sweep[0].mean.value(),
                   t.mean_power({Seconds{20.0}, Seconds{50.0}}).value());
}

TEST(WindowSelect, MisalignedFinalPlacementIncluded) {
  const PowerTrace t = vee_trace();
  // Bounds of width 15.5 with window 10: final placement at 5.5 exactly.
  const TimeWindow bounds{Seconds{0.0}, Seconds{15.5}};
  const auto sweep = sweep_windows(t, bounds, Seconds{10.0});
  EXPECT_NEAR(sweep.back().window.begin.value(), 5.5, 1e-9);
}

TEST(WindowSelect, DomainChecks) {
  const PowerTrace t = vee_trace();
  const TimeWindow bounds{Seconds{0.0}, Seconds{100.0}};
  EXPECT_THROW(min_average_window(t, bounds, Seconds{0.0}), contract_error);
  EXPECT_THROW(min_average_window(t, bounds, Seconds{200.0}), contract_error);
  const TimeWindow outside{Seconds{50.0}, Seconds{150.0}};
  EXPECT_THROW(min_average_window(t, outside, Seconds{10.0}), contract_error);
}

TEST(WindowSelect, MinNeverExceedsAnySweepEntry) {
  const PowerTrace t = vee_trace();
  const TimeWindow bounds{Seconds{5.0}, Seconds{95.0}};
  const auto sweep = sweep_windows(t, bounds, Seconds{17.0});
  const auto best = min_average_window(t, bounds, Seconds{17.0});
  for (const auto& wa : sweep) {
    EXPECT_LE(best.mean.value(), wa.mean.value() + 1e-12);
  }
}

}  // namespace
}  // namespace pv
