file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fan_and_vid.dir/bench_ablation_fan_and_vid.cpp.o"
  "CMakeFiles/bench_ablation_fan_and_vid.dir/bench_ablation_fan_and_vid.cpp.o.d"
  "bench_ablation_fan_and_vid"
  "bench_ablation_fan_and_vid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fan_and_vid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
