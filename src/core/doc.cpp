#include "core/doc.hpp"

#include <cmath>
#include <cstdio>

#include "util/expects.hpp"

namespace pv {

void Json::push_back(Json v) {
  PV_EXPECTS(kind_ == Kind::kArray, "Json::push_back on a non-array");
  items_.push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  PV_EXPECTS(kind_ == Kind::kObject, "Json::operator[] on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json{});
  return members_.back().second;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return items_.size();
    case Kind::kObject:
      return members_.size();
    default:
      return 0;
  }
}

std::string Json::number_repr(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string Json::quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kUint:
      out += std::to_string(uint_);
      break;
    case Kind::kNumber:
      out += number_repr(num_);
      break;
    case Kind::kString:
      out += quote(str_);
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        items_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += quote(members_[i].first);
        out += ':';
        members_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void DocBlock::text(std::string raw) {
  entries.push_back(DocEntry{std::move(raw), {}, Json{}});
}

void DocBlock::field(std::string field_key, Json value, std::string rendered) {
  entries.push_back(
      DocEntry{std::move(rendered), std::move(field_key), std::move(value)});
}

Json DocBlock::to_json() const {
  Json obj = Json::object();
  for (const DocEntry& e : entries) {
    if (e.key.empty()) continue;
    obj[e.key] = e.value;
  }
  return obj;
}

DocBlock& Document::block(std::string key, std::string heading) {
  blocks.push_back(DocBlock{std::move(key), std::move(heading), {}});
  return blocks.back();
}

std::string render_text(const Document& doc) {
  std::string out;
  for (const DocBlock& b : doc.blocks) {
    out += b.heading;
    for (const DocEntry& e : b.entries) out += e.text;
  }
  return out;
}

std::string render_json(const Document& doc) {
  Json root = Json::object();
  root["schema"] = doc.schema;
  for (const DocBlock& b : doc.blocks) {
    Json obj = b.to_json();
    if (obj.size() == 0) continue;
    root[b.key] = std::move(obj);
  }
  return root.dump() + "\n";
}

}  // namespace pv
