#pragma once
// Measurement-quality composition of a ranked list.
//
// §1: of the 267 submissions on the November 2014 Green500 list, 233 were
// derived from vendor data, 28 used Level 1 and only 6 used a higher
// level — which is why Level 1's accuracy "is extremely important to the
// value of the data collected".  This module summarizes a list's quality
// mix and weights the headline accuracy story by it.

#include <cstddef>
#include <string>
#include <vector>

#include "core/submission.hpp"

namespace pv {

/// Counts of entries per provenance/level class.
struct ListQualityBreakdown {
  std::size_t total = 0;
  std::size_t derived = 0;
  std::size_t level1 = 0;
  std::size_t level2 = 0;
  std::size_t level3 = 0;

  /// Fraction of entries whose power is an actual measurement.
  [[nodiscard]] double measured_fraction() const;
  /// Fraction of *measured* entries that are Level 1 (the population whose
  /// accuracy the paper's rules fix).
  [[nodiscard]] double level1_share_of_measured() const;
};

/// Tallies a list.
[[nodiscard]] ListQualityBreakdown summarize_quality(
    const std::vector<Submission>& entries);

/// The November 2014 Green500 composition the paper cites.
[[nodiscard]] ListQualityBreakdown november_2014_green500();

/// A rough expected-accuracy figure for the list: each class contributes
/// its typical relative uncertainty (derived: `derived_uncertainty`,
/// defaults to 15%; L1 under the given revision: the window exposure or
/// the statistical CI; L2/L3: percent-level).  Returns the entry-weighted
/// mean uncertainty.
[[nodiscard]] double expected_list_uncertainty(
    const ListQualityBreakdown& mix, Revision level1_rules,
    double derived_uncertainty = 0.15);

}  // namespace pv
