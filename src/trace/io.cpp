#include "trace/io.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/csv.hpp"
#include "util/expects.hpp"

namespace pv {

void save_trace_csv(const PowerTrace& trace, const std::string& path) {
  CsvWriter csv({"t_s", "power_w"});
  for (std::size_t i = 0; i < trace.size(); ++i) {
    csv.add_row(std::vector<double>{trace.time_at(i).value(),
                                    trace.watt_at(i)});
  }
  csv.write_file(path);
}

PowerTrace parse_trace_csv(const std::string& csv_text) {
  std::istringstream in(csv_text);
  std::string line;
  std::vector<double> times;
  std::vector<double> watts;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.back() == '\r') {
      if (!line.empty()) line.pop_back();
      if (line.empty()) continue;
    }
    if (first) {  // header
      first = false;
      continue;
    }
    double t = 0.0, w = 0.0;
    if (std::sscanf(line.c_str(), "%lf,%lf", &t, &w) != 2) {
      throw std::runtime_error("trace csv: malformed row at line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    if (!std::isfinite(t) || !std::isfinite(w)) {
      throw std::runtime_error("trace csv: non-finite value at line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    if (t < 0.0) {
      throw std::runtime_error("trace csv: negative timestamp at line " +
                               std::to_string(line_no) + ": '" + line + "'");
    }
    times.push_back(t);
    watts.push_back(w);
  }
  if (watts.size() < 2) {
    throw std::runtime_error("trace csv: need at least two samples");
  }

  // Infer and validate the sampling interval.
  std::vector<double> deltas(times.size() - 1);
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    deltas[i] = times[i + 1] - times[i];
  }
  std::vector<double> sorted = deltas;
  std::sort(sorted.begin(), sorted.end());
  const double dt = sorted[sorted.size() / 2];
  if (dt <= 0.0) {
    throw std::runtime_error("trace csv: timestamps are not increasing");
  }
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    if (std::fabs(deltas[i] - dt) > 0.01 * dt) {
      throw std::runtime_error(
          "trace csv: non-uniform sampling at row " + std::to_string(i + 2) +
          " (dt " + std::to_string(deltas[i]) + " vs " + std::to_string(dt) +
          ")");
    }
  }
  return PowerTrace(Seconds{times.front()}, Seconds{dt}, std::move(watts));
}

PowerTrace load_trace_csv(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open trace csv: " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parse_trace_csv(buf.str());
}

}  // namespace pv
