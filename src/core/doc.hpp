#pragma once
// Structured assessment documents — the machine-readable counterpart of
// the paper's §6 accuracy assessment.  A report is built once as a
// Document (blocks of key/value fields and tables) and rendered twice:
// render_text reproduces the historical free-text report byte-for-byte
// (golden-test enforced), render_json emits the same facts as
// deterministic JSON for downstream consumers (vetting tools, bench
// harnesses, dashboards) in the spirit of the Cray PMDB's structured,
// queryable measurement record.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace pv {

/// Thrown by Json::parse on malformed input, with the byte offset of the
/// failure.  A typed error so request handlers can tell "the bytes were
/// not JSON" (reject the request) apart from programming errors.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A small, deterministic JSON value: object keys keep insertion order,
/// doubles print with max_digits10 precision (lossless round-trip, same
/// convention as CsvWriter), and non-finite doubles render as null (JSON
/// has no NaN/Inf).  parse() is the strict inverse for machine input
/// (service requests): full-input consumption, duplicate object keys
/// rejected, nesting depth bounded — hostile bytes either parse or throw
/// JsonParseError, never crash.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}           // NOLINT(google-explicit-constructor)
  Json(double v) : kind_(Kind::kNumber), num_(v) {}        // NOLINT
  Json(int v) : kind_(Kind::kInt), int_(v) {}              // NOLINT
  Json(long long v) : kind_(Kind::kInt), int_(v) {}        // NOLINT
  Json(unsigned long long v) : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  Json(unsigned long v) : kind_(Kind::kUint), uint_(v) {}  // NOLINT
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : kind_(Kind::kString), str_(s) {}   // NOLINT

  [[nodiscard]] static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  /// Parses one complete JSON text.  Strict where it matters for a
  /// request schema: trailing bytes after the value, duplicate object
  /// keys, raw control characters in strings, nesting beyond 64 levels
  /// and non-finite number spellings all throw JsonParseError.  Numbers
  /// without fraction or exponent parse as kInt/kUint (so dump() of a
  /// parsed document round-trips the serializer's bytes); anything else
  /// parses as kNumber via strtod.
  [[nodiscard]] static Json parse(const std::string& text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kNumber;
  }

  // Read accessors for parsed values.  Kind mismatches are programming
  // errors (contract_error) — schema validation checks kind() first.
  [[nodiscard]] bool bool_value() const;
  [[nodiscard]] double number_value() const;  ///< any numeric kind
  [[nodiscard]] const std::string& string_value() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;
  /// Object lookup without insertion; nullptr when the key is absent.
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Appends to an array (the value must be an array).
  void push_back(Json v);

  /// Object access: returns the value for `key`, inserting a null member
  /// at the end if absent (the value must be an object).
  Json& operator[](const std::string& key);

  [[nodiscard]] std::size_t size() const;

  /// Compact, deterministic serialization.
  [[nodiscard]] std::string dump() const;

  /// Serializes a double exactly as dump() would (shared with tests and
  /// the determinism scripts): max_digits10 %g, null spelling for
  /// non-finite values.
  [[nodiscard]] static std::string number_repr(double v);

  /// Escapes and quotes a string per RFC 8259.
  [[nodiscard]] static std::string quote(const std::string& s);

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  long long int_ = 0;
  unsigned long long uint_ = 0;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;                          // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

/// One entry of a document block: the exact text it contributes to the
/// rendered report (may be empty for JSON-only fields) plus an optional
/// machine-readable field (`key` empty for text-only entries).  A "table"
/// is simply a field whose value is a JSON array of row objects and whose
/// text is the concatenation of its rendered rows.
struct DocEntry {
  std::string text;
  std::string key;
  Json value;
};

/// A titled group of entries — "assessment", "data quality", "integrity".
struct DocBlock {
  std::string key;      ///< JSON member name of the block
  std::string heading;  ///< exact text emitted before the entries ("" = none)
  std::vector<DocEntry> entries;

  /// Appends a text-only entry (emitted verbatim by render_text).
  void text(std::string raw);
  /// Appends a machine field; `rendered` is the exact text the entry
  /// contributes to the report (often a full "label: value\n" line, may
  /// be "" for JSON-only fields).
  void field(std::string key, Json value, std::string rendered = "");

  /// The block as a JSON object (entries with a key, in order).
  [[nodiscard]] Json to_json() const;
};

/// A whole assessment document: ordered blocks under a schema tag.
struct Document {
  std::string schema = "powervar-assessment-v1";
  std::vector<DocBlock> blocks;

  /// Appends a new block and returns it.
  DocBlock& block(std::string key, std::string heading = "");
};

/// Concatenates every block's heading and entry texts — by construction
/// byte-identical to the historical string-built reports.
[[nodiscard]] std::string render_text(const Document& doc);

/// Renders `{"schema": ..., "<block>": {...}, ...}` with a trailing
/// newline.  Deterministic: same document -> same bytes.  Blocks with no
/// keyed entries are omitted.
[[nodiscard]] std::string render_json(const Document& doc);

}  // namespace pv
