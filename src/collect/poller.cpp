#include "collect/poller.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace pv {
namespace {

constexpr std::uint64_t kChunkNoiseSalt = 0xC011EC7EDULL;
constexpr std::uint64_t kBackoffSalt = 0xBAC0FF5ALL;

// One request's worth of trace.
struct Chunk {
  TimeWindow window;
  std::size_t window_index = 0;  ///< which plan window it belongs to
  std::size_t samples = 0;
  double avail_s = 0.0;  ///< virtual time the data exists (chunk end)
};

std::vector<Chunk> build_chunks(const PollJob& job,
                                const PollerConfig& config) {
  const double dt = job.meter->interval().value();
  const auto chunk_samples = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(config.chunk_duration.value() / dt + 1e-9)));
  std::vector<Chunk> chunks;
  for (std::size_t wi = 0; wi < job.windows.size(); ++wi) {
    const TimeWindow& w = job.windows[wi];
    const std::size_t n = job.meter->samples_in(w);
    for (std::size_t first = 0; first < n; first += chunk_samples) {
      const std::size_t len = std::min(chunk_samples, n - first);
      Chunk c;
      c.window = {Seconds{w.begin.value() + dt * static_cast<double>(first)},
                  Seconds{w.begin.value() +
                          dt * static_cast<double>(first + len)}};
      c.window_index = wi;
      c.samples = len;
      c.avail_s = c.window.end.value() - job.campaign_window.begin.value();
      chunks.push_back(c);
    }
  }
  return chunks;
}

}  // namespace

MeterRecord poll_meter(const PollJob& job, const SimTransport& transport,
                       const PollerConfig& config) {
  PV_EXPECTS(job.meter != nullptr, "poll job has no meter");
  PV_EXPECTS(config.timeout_s > 0.0 && config.max_attempts >= 1,
             "poller needs a positive timeout and at least one attempt");
  PV_EXPECTS(config.chunk_duration.value() > 0.0,
             "poll chunk duration must be positive");

  MeterRecord rec;
  rec.reading.node = job.meter_id;

  const std::vector<Chunk> chunks = build_chunks(job, config);
  CircuitBreaker breaker(config.breaker);
  Rng backoff_rng(job.seed ^ kBackoffSalt, job.meter_id);

  // Per-plan-window sums of delivered samples (the sync campaign averages
  // per window, then across windows — mirrored here).
  std::vector<double> window_sum(job.windows.size(), 0.0);
  std::vector<std::size_t> window_count(job.windows.size(), 0);

  double now_s = 0.0;   // virtual clock: 0 == campaign window begin
  double busy_s = 0.0;  // time actually spent waiting on this meter
  std::size_t delivered = 0;
  std::vector<double> readings;  // chunk reply buffer, reused per chunk

  for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
    const Chunk& chunk = chunks[ci];
    rec.samples_expected += chunk.samples;
    now_s = std::max(now_s, chunk.avail_s);  // data must exist first

    bool got = false;
    for (std::size_t attempt = 0; attempt < config.max_attempts; ++attempt) {
      if (!breaker.allow(now_s)) break;  // open: fast-fail, no budget spent
      ++rec.polls;
      if (attempt > 0) ++rec.retries;
      const Exchange ex =
          transport.exchange(job.meter_id, ci, attempt, config.timeout_s);
      now_s += ex.elapsed_s;
      busy_s += ex.elapsed_s;
      if (ex.ok) {
        if (ex.duplicate) ++rec.duplicates;
        breaker.on_success();
        got = true;
        break;
      }
      ++rec.timeouts;
      breaker.on_failure(now_s);
      if (attempt + 1 < config.max_attempts &&
          breaker.state() == BreakerState::kClosed) {
        const double delay = config.backoff.delay_s(attempt, backoff_rng);
        now_s += delay;
        busy_s += delay;
      }
    }
    if (!got) continue;  // chunk lost: its samples become a gap

    // The reply: this chunk's readings, keyed by (seed, meter, chunk) so
    // retries, duplicates and resumed runs see identical values.
    Rng noise(job.seed ^ kChunkNoiseSalt,
              mix_streams(job.meter_id, ci));
    job.meter->measure_into(job.truth, chunk.window.begin, chunk.window.end,
                            noise, readings);
    double sum = 0.0;
    for (double w : readings) sum += w;
    window_sum[chunk.window_index] += sum;
    window_count[chunk.window_index] += readings.size();
    delivered += readings.size();
  }

  rec.busy_s = busy_s;
  rec.breaker_trips = breaker.trips();
  rec.abandoned = breaker.state() == BreakerState::kOpen;
  rec.samples_lost = rec.samples_expected - delivered;

  double mean_acc = 0.0;
  double energy_j = 0.0;
  std::size_t windows_used = 0;
  for (std::size_t wi = 0; wi < job.windows.size(); ++wi) {
    if (window_count[wi] == 0) continue;  // window fully lost
    const double wmean =
        window_sum[wi] / static_cast<double>(window_count[wi]);
    mean_acc += wmean;
    energy_j += wmean * job.windows[wi].duration().value();
    ++windows_used;
  }
  const double coverage =
      rec.samples_expected == 0
          ? 0.0
          : static_cast<double>(delivered) /
                static_cast<double>(rec.samples_expected);
  if (windows_used == 0 || coverage < config.min_coverage) {
    // Below the floor: the whole record is untrustworthy — the dead-meter
    // degradation path excludes this node and re-bases the extrapolation.
    rec.reading.lost = true;
    rec.samples_lost = rec.samples_expected;
    return rec;
  }
  rec.reading.mean_w = mean_acc / static_cast<double>(windows_used);
  rec.reading.energy_j = energy_j;
  return rec;
}

}  // namespace pv
