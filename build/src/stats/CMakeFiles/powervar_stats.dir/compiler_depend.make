# Empty compiler generated dependencies file for powervar_stats.
# This may be replaced when dependencies are built.
