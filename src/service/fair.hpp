#pragma once
// Deficit-weighted fair-share dispatch queue for the campaign service.
//
// PR6's service dispatched admitted requests FIFO through the worker
// pool, so one flooding tenant could starve everyone behind it for the
// whole backlog.  FairShareQueue replaces the FIFO with per-tenant lanes
// scheduled by stride scheduling plus aging:
//
//   lanes      every tenant owns a FIFO lane; requests never reorder
//              within a tenant.
//
//   stride     each dispatch advances the chosen lane's pass by
//              kStride / priority (kStride = lcm(1..8), so the division
//              is exact for every legal priority).  The lane with the
//              lowest pass dispatches next: a priority-p tenant advances
//              1/p as fast and therefore runs p times as often under
//              contention.  Ties break on the lexicographically
//              smallest tenant name — the whole policy is a pure
//              function of the enqueue/pop call sequence.
//
//   aging      a lane's effective pass is discounted by age_boost *
//              kStride per dispatch its head request has waited, so
//              even a weight-1 tenant behind a high-priority flood is
//              dispatched in bounded time (no permanent starvation).
//
//   joining    a lane that goes from empty to non-empty rejoins at the
//              current virtual time (the highest pass already
//              dispatched), so an idle tenant cannot bank credit and
//              then monopolize the pool.
//
// The queue is not thread-safe: CampaignService drives it under its own
// mutex.  Determinism matters more than micro-cost here — the fair-share
// unit tests assert exact dispatch orders.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace pv {

class FairShareQueue {
 public:
  /// Stride numerator: lcm(1..8), so pass increments are exact integers
  /// for every legal priority.
  static constexpr std::uint64_t kStride = 840;

  /// `age_boost` is the starvation discount in strides per dispatch
  /// waited (0 = pure stride scheduling).
  explicit FairShareQueue(double age_boost = 0.0);

  /// Appends a ticket to its tenant's lane.  `priority` must be in
  /// [1, 8] (the request parser enforces it).
  void enqueue(std::size_t ticket, const std::string& tenant,
               unsigned priority);

  /// Picks and removes the next ticket under the policy above.
  /// Precondition: !empty().
  [[nodiscard]] std::size_t pop();

  /// Removes every queued ticket, returned in ascending ticket order —
  /// the drain path, where checkpoint order must match slot order.
  std::vector<std::size_t> clear();

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Queued tickets of one tenant (the per-tenant admission cap).
  [[nodiscard]] std::size_t waiting(const std::string& tenant) const;

 private:
  struct Item {
    std::size_t ticket = 0;
    unsigned priority = 1;
    std::uint64_t enqueued_at = 0;  ///< dispatch-clock reading at enqueue
  };
  struct Lane {
    std::deque<Item> fifo;
    std::uint64_t pass = 0;
  };

  double age_boost_;
  std::size_t size_ = 0;
  std::uint64_t dispatch_clock_ = 0;  ///< pops so far
  std::uint64_t vtime_ = 0;           ///< highest pass ever dispatched at
  std::map<std::string, Lane> lanes_;
};

}  // namespace pv
