// Figure 4 — power efficiency of individual L-CSC nodes in single-node
// Linpack, grouped by the GPUs' VIDs, under three configurations:
//   (a) fixed ASIC settings 774 MHz / 1.018 V (ignoring the VID),
//   (b) default 900 MHz with VID-defined voltage (faster fans),
//   (c) the 900 MHz data corrected for the extra fan power.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "sim/catalog.hpp"
#include "stats/descriptive.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main() {
  using namespace pv;
  bench::banner("Figure 4",
                "L-CSC single-node HPL efficiency vs GPU VID (GFLOPS/W)");

  const auto fleet = build_fleet(catalog::lcsc_node_spec(),
                                 catalog::lcsc_node_count(), /*seed=*/2015,
                                 &default_pool());

  // Configuration (a): fixed frequency/voltage, pinned slow fans.
  const NodeSettings tuned = NodeSettings::tuned_lcsc();
  // Configuration (b): defaults — VID voltage at 900 MHz, auto fans.
  const NodeSettings defaults = NodeSettings::defaults();

  struct Acc {
    RunningStats tuned, def, fan_corrected;
  };
  std::map<std::size_t, Acc> by_vid;
  RunningStats fan_tuned_w, fan_def_w;
  for (const auto& node : fleet) {
    fan_tuned_w.add(node.thermal_state(1.0, tuned).fan_power_w.value());
    fan_def_w.add(node.thermal_state(1.0, defaults).fan_power_w.value());
  }
  // Constant fan-power offset between the two configurations (the paper
  // measures this offset and subtracts it).
  const double fan_offset = fan_def_w.mean() - fan_tuned_w.mean();

  for (const auto& node : fleet) {
    Acc& acc = by_vid[node.vid_bin()];
    acc.tuned.add(node.hpl_gflops_per_watt(tuned));
    acc.def.add(node.hpl_gflops_per_watt(defaults));
    const double p_def = node.dc_power(1.0, defaults).value();
    acc.fan_corrected.add(node.hpl_gflops(defaults) / (p_def - fan_offset));
  }

  TextTable t({"VID (default V @900MHz)", "nodes", "fixed 774MHz/1.018V",
               "default 900MHz/VID", "900MHz fan-corrected"});
  CsvWriter csv({"vid_bin", "default_voltage", "eff_fixed", "eff_default",
                 "eff_fan_corrected"});
  const GpuSpec gpu = catalog::lcsc_node_spec().gpu;
  for (const auto& [vid, acc] : by_vid) {
    const double v = gpu.vid_base_v + gpu.vid_step_v * static_cast<double>(vid);
    char label[48];
    std::snprintf(label, sizeof label, "%zu (%.3f V)", vid, v);
    t.add_row({label, std::to_string(acc.tuned.count()),
               fmt_fixed(acc.tuned.mean(), 3), fmt_fixed(acc.def.mean(), 3),
               fmt_fixed(acc.fan_corrected.mean(), 3)});
    csv.add_row(std::vector<double>{static_cast<double>(vid), v,
                                    acc.tuned.mean(), acc.def.mean(),
                                    acc.fan_corrected.mean()});
  }
  std::cout << t.render();
  csv.write_file("fig4_vid_efficiency.csv");

  // Fleet-level statistics backing the paper's bullet list.
  RunningStats eff_tuned_all, eff_def_all;
  for (const auto& node : fleet) {
    eff_tuned_all.add(node.hpl_gflops_per_watt(tuned));
    eff_def_all.add(node.hpl_gflops_per_watt(defaults));
  }
  std::cout << "\nfan power:   auto-900MHz mean " << fmt_fixed(fan_def_w.mean(), 1)
            << " W vs pinned-774MHz " << fmt_fixed(fan_tuned_w.mean(), 1)
            << " W  (offset " << fmt_fixed(fan_offset, 1) << " W)\n";
  std::cout << "efficiency sd: fixed-voltage configuration "
            << fmt_percent(eff_tuned_all.cv(), 1) << " (paper: 1.2%), default "
            << fmt_percent(eff_def_all.cv(), 1) << "\n";
  std::cout << "\nPaper findings to check against the table:\n"
               "  * fixed-voltage efficiency shows no VID trend;\n"
               "  * default settings trend downward with VID;\n"
               "  * fan-corrected curve parallels the default curve, offset up;\n"
               "  * fan effect >> silicon effect.\n"
               "(series in fig4_vid_efficiency.csv)\n";
  return 0;
}
