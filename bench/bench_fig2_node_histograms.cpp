// Figure 2 — histograms of whole-node power under load across the six
// Table 3/4 systems (plus the Table 3 configuration summary).

#include <iostream>

#include "bench_common.hpp"
#include "sim/catalog.hpp"
#include "stats/descriptive.hpp"
#include "stats/histogram.hpp"
#include "stats/normality.hpp"
#include "util/table.hpp"

int main() {
  using namespace pv;
  bench::banner("Table 3", "test-system configurations");
  TextTable t3({"system", "CPUs per node", "RAM per node",
                "components measured", "workload"});
  for (const auto& sys : catalog::table4_systems()) {
    t3.add_row({sys.name, sys.cpus_per_node, sys.ram_per_node,
                sys.components_measured, sys.workload_name});
  }
  std::cout << t3.render();

  bench::banner("Figure 2", "per-node power histograms under load");
  for (const auto& sys : catalog::table4_systems()) {
    const auto powers =
        catalog::make_fleet_powers(sys, /*seed=*/2015, /*exact=*/true);
    const Summary s = summarize(powers);
    const Histogram h = Histogram::auto_binned(powers);
    std::cout << '\n'
              << sys.name << "  (N=" << powers.size() << ", mean "
              << fmt_fixed(s.mean, 2) << " W, sd " << fmt_fixed(s.stddev, 2)
              << " W, modality " << h.modality() << "):\n";
    // Re-bin to a readable number of rows for the console.
    Histogram coarse(h.lo(), h.hi(),
                     std::min<std::size_t>(18, h.bin_count()));
    coarse.add_all(powers);
    std::cout << coarse.render(48);
  }
  std::cout << "\nDistribution-shape summary (the §4.2 normality question):\n";
  TextTable shape({"system", "skewness", "excess kurtosis", "JB stat",
                   "AD stat", "modality"});
  for (const auto& sys : catalog::table4_systems()) {
    const auto powers = catalog::make_fleet_powers(sys, 2015, true);
    const Histogram h = Histogram::auto_binned(powers);
    shape.add_row({sys.name, fmt_fixed(skewness(powers), 2),
                   fmt_fixed(excess_kurtosis(powers), 2),
                   fmt_fixed(jarque_bera(powers).statistic, 1),
                   fmt_fixed(anderson_darling(powers).statistic, 2),
                   std::to_string(h.modality())});
  }
  std::cout << shape.render();
  std::cout << "\nAll systems are roughly unimodal with few (hot) outliers —\n"
               "mild positive skew from the outlier tail, exactly the Figure 2\n"
               "picture; §4.2 therefore validates the CI machinery by bootstrap\n"
               "(Figure 3) rather than by strict normality.\n";
  return 0;
}
