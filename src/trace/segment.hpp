#pragma once
// Benchmark-run phase structure and the fraction-based measurement windows
// the EE HPC WG methodology is written in terms of.
//
// A run is setup | core phase | teardown.  Performance is always measured
// over the core phase; the methodology levels differ in which *part* of the
// core phase the power measurement must cover:
//   * Level 1 (pre-2015): >= max(1 minute, 20% of the middle 80%) of the
//     core phase, anywhere within that middle 80%.
//   * Level 2: ten equally spaced averaged measurements spanning the run.
//   * Level 3 and the paper's revised rules: the entire core phase.

#include <vector>

#include "trace/time_series.hpp"
#include "util/units.hpp"

namespace pv {

/// Durations of the three phases of a benchmark run.  The run starts at
/// t = 0; the core phase occupies [setup, setup + core).
struct RunPhases {
  Seconds setup{0.0};
  Seconds core{0.0};
  Seconds teardown{0.0};

  [[nodiscard]] Seconds total() const { return setup + core + teardown; }
  [[nodiscard]] Seconds core_begin() const { return setup; }
  [[nodiscard]] Seconds core_end() const { return setup + core; }
  [[nodiscard]] TimeWindow core_window() const {
    return {core_begin(), core_end()};
  }

  /// Sub-window of the core phase by fractional offsets, e.g.
  /// core_fraction(0.0, 0.2) is the first 20% of the core phase (Table 2's
  /// "First 20%" column).
  [[nodiscard]] TimeWindow core_fraction(double begin_frac,
                                         double end_frac) const;

  /// The middle 80% of the core phase — the region Level 1 allows the
  /// measurement window to be placed in.
  [[nodiscard]] TimeWindow middle_80() const { return core_fraction(0.1, 0.9); }

  /// Duration a pre-2015 Level 1 measurement must cover: the longer of one
  /// minute or 20% of the middle 80% of the core phase.
  [[nodiscard]] Seconds level1_min_duration() const;

  /// A Level 1 window of minimum duration placed at `position` in [0, 1]
  /// within the allowed middle-80% region (0 = earliest allowed start,
  /// 1 = latest).  This is the knob the window-gaming analysis sweeps.
  [[nodiscard]] TimeWindow level1_window(double position) const;

  /// The ten equally spaced sub-windows of the core phase that a Level 2
  /// measurement averages.
  [[nodiscard]] std::vector<TimeWindow> level2_windows() const;
};

/// Simple phase detector: given a full-run trace where the core phase runs
/// at distinctly higher power than setup/teardown, recovers the core-phase
/// window by thresholding at `threshold_frac` of the (5th..95th percentile)
/// power range.  Used to check the simulator's phase bookkeeping the way an
/// operator would from a wall-power chart.
[[nodiscard]] TimeWindow detect_core_phase(const PowerTrace& trace,
                                           double threshold_frac = 0.5);

}  // namespace pv
