#include "util/mathx.hpp"

#include <algorithm>
#include <array>
#include <numeric>

namespace pv {

bool approx_equal(double a, double b, double rel_tol, double abs_tol) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= std::max(abs_tol, rel_tol * scale);
}

double relative_error(double a, double b) {
  PV_EXPECTS(b != 0.0, "reference value must be nonzero");
  return std::fabs(a - b) / std::fabs(b);
}

std::vector<double> prefix_sums(std::span<const double> xs) {
  std::vector<double> out(xs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    acc += xs[i];
    out[i] = acc;
  }
  return out;
}

double mean_of(std::span<const double> xs) {
  PV_EXPECTS(!xs.empty(), "mean of empty range");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

std::array<double, 3> solve3x3(const std::array<std::array<double, 3>, 3>& a,
                               const std::array<double, 3>& b) {
  // Augmented matrix with partial pivoting; 3x3 is small enough that a
  // direct elimination is clearer than pulling in a linear-algebra library.
  std::array<std::array<double, 4>, 3> m{};
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) m[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = a[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    m[static_cast<std::size_t>(r)][3] = b[static_cast<std::size_t>(r)];
  }
  for (std::size_t col = 0; col < 3; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < 3; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[piv][col])) piv = r;
    }
    PV_EXPECTS(std::fabs(m[piv][col]) > 1e-14, "singular 3x3 system");
    std::swap(m[piv], m[col]);
    for (std::size_t r = 0; r < 3; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (std::size_t c = col; c < 4; ++c) m[r][c] -= f * m[col][c];
    }
  }
  return {m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]};
}

}  // namespace pv
