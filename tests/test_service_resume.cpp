// Restart/resume contracts for the hardened campaign service
// (src/service): drain checkpoints replayed through resume_from must
// reproduce the uninterrupted run byte for byte, and every defective
// journal — missing, foreign, torn, unparseable — must be refused
// loudly with CheckpointError before anything is submitted.  The
// torture drills reuse the WAL-corruption discipline from test_wal.cpp
// over a *real* drain checkpoint: clean prefix or typed refusal, never
// a forged response.

#include "service/service.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/request.hpp"
#include "stats/rng.hpp"
#include "trace/wal.hpp"

namespace pv {
namespace {

std::string temp_wal(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
}

/// A real (small) campaign request — the byte-identity tests need
/// responses that carry full assessments.
ServiceRequest campaign_request(std::size_t i) {
  ServiceRequest req;
  req.id = "rr-" + std::to_string(i);
  req.nodes = 24 + 8 * (i % 2);
  req.seed = 300 + i;
  req.interval_s = 10.0;
  if (i % 3 == 1) req.faults = "mild";
  if (i == 2) {
    req.tenant = "acme";  // tenant/priority must survive the journal
    req.priority = 3;
  }
  return req;
}

/// A request whose deadline is already spent: it resolves to a typed
/// deadline_exceeded response in microseconds, so the torture drills can
/// resume dozens of journals without paying for real campaigns.
ServiceRequest cheap_request(const std::string& id, std::uint64_t seed) {
  ServiceRequest req;
  req.id = id;
  req.nodes = 24;
  req.seed = seed;
  req.interval_s = 10.0;
  req.deadline_ms = 1e-7;
  return req;
}

/// Writes a genuine drain-checkpoint journal holding `reqs` (held
/// submissions checkpoint in ticket order, deterministically at any
/// worker count) and returns its bytes.
std::string checkpoint_journal(const std::string& path,
                               const std::vector<ServiceRequest>& reqs) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue = reqs.size();
  config.checkpoint_path = path;
  CampaignService service(config);
  for (const ServiceRequest& req : reqs) {
    EXPECT_NE(service.submit(req, /*hold=*/true).decision, Admission::kShed)
        << req.id;
  }
  const DrainReport report = service.drain();
  EXPECT_EQ(report.checkpointed, reqs.size());
  return slurp(path);
}

TEST(ServiceResume, DrainRestartResumeIsByteIdenticalToUninterruptedRun) {
  std::vector<ServiceRequest> reqs;
  for (std::size_t i = 0; i < 6; ++i) reqs.push_back(campaign_request(i));

  for (const unsigned workers : {1u, 4u}) {
    // The reference: one service, no interruption.
    std::vector<std::string> clean;
    {
      ServiceConfig config;
      config.workers = workers;
      config.max_queue = reqs.size();
      CampaignService service(config);
      std::vector<std::size_t> tickets;
      for (const auto& req : reqs) tickets.push_back(service.submit(req).ticket);
      for (const std::size_t t : tickets) {
        const ServiceResponse resp = service.wait(t);
        ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
        clean.push_back(render_response_json(resp));
      }
    }

    // The interrupted run: the first two requests complete, the rest are
    // held (the CLI's --drain-after) and checkpointed by drain.
    const std::string wal = temp_wal("resume_identity_" +
                                     std::to_string(workers) + ".wal");
    std::vector<std::string> pieced;
    {
      ServiceConfig config;
      config.workers = workers;
      config.max_queue = reqs.size();
      config.checkpoint_path = wal;
      CampaignService service(config);
      std::vector<std::size_t> tickets;
      for (std::size_t i = 0; i < reqs.size(); ++i) {
        tickets.push_back(service.submit(reqs[i], /*hold=*/i >= 2).ticket);
      }
      // Let the two dispatchable requests finish before the "crash":
      // drain then checkpoints exactly the held tail.
      for (std::size_t i = 0; i < 2; ++i) (void)service.wait(tickets[i]);
      const DrainReport report = service.drain();
      EXPECT_EQ(report.completed, 2u);
      EXPECT_EQ(report.checkpointed, 4u);
      for (std::size_t i = 0; i < 2; ++i) {
        const ServiceResponse resp = service.wait(tickets[i]);
        ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
        pieced.push_back(render_response_json(resp));
      }
      for (std::size_t i = 2; i < reqs.size(); ++i) {
        EXPECT_EQ(service.wait(tickets[i]).code, ResponseCode::kCheckpointed);
      }
    }

    // The restarted process: resume under the original ids and seeds.
    {
      ServiceConfig config;
      config.workers = workers;
      config.max_queue = reqs.size();
      CampaignService service(config);
      const ResumeOutcome outcome = service.resume_from(wal);
      EXPECT_EQ(outcome.duplicates, 0u);
      ASSERT_EQ(outcome.tickets.size(), 4u);
      for (const std::size_t t : outcome.tickets) {
        const ServiceResponse resp = service.wait(t);
        ASSERT_EQ(resp.code, ResponseCode::kOk) << resp.message;
        pieced.push_back(render_response_json(resp));
      }
    }

    // The union of both halves is the uninterrupted transcript, byte for
    // byte — same ids, same seeds, same assessments.
    std::vector<std::string> want = clean;
    std::sort(want.begin(), want.end());
    std::sort(pieced.begin(), pieced.end());
    EXPECT_EQ(pieced, want) << "with " << workers << " workers";
  }
}

TEST(ServiceResume, HeldSubmissionsAreNeverDispatched) {
  // Without a journal, a held (admitted) request drains to the weaker
  // `cancelled` response; with one it is checkpointed.  Either way its
  // dispatch_order stays 0 — it never touched a worker.
  {
    ServiceConfig config;
    config.workers = 2;
    CampaignService service(config);
    const std::size_t t =
        service.submit(cheap_request("held-0", 1), /*hold=*/true).ticket;
    const DrainReport report = service.drain();
    EXPECT_EQ(report.completed, 0u);
    EXPECT_EQ(report.checkpointed, 1u);
    const ServiceResponse resp = service.wait(t);
    EXPECT_EQ(resp.code, ResponseCode::kCancelled);
    EXPECT_EQ(resp.dispatch_order, 0u);
  }
  {
    ServiceConfig config;
    config.workers = 2;
    config.checkpoint_path = temp_wal("resume_held.wal");
    CampaignService service(config);
    const std::size_t t =
        service.submit(cheap_request("held-1", 1), /*hold=*/true).ticket;
    (void)service.drain();
    const ServiceResponse resp = service.wait(t);
    EXPECT_EQ(resp.code, ResponseCode::kCheckpointed);
    EXPECT_EQ(resp.dispatch_order, 0u);
  }
}

TEST(ServiceResume, MissingOrEmptyJournalIsRefused) {
  ServiceConfig config;
  config.workers = 1;
  CampaignService service(config);
  EXPECT_THROW(service.resume_from(temp_wal("resume_never_written.wal")),
               CheckpointError);
  const std::string empty = temp_wal("resume_empty.wal");
  { std::ofstream f(empty); }
  EXPECT_THROW(service.resume_from(empty), CheckpointError);
  EXPECT_EQ(service.drain().submitted, 0u);  // nothing was submitted
}

TEST(ServiceResume, ForeignFingerprintIsRefused) {
  const std::string path = temp_wal("resume_foreign.wal");
  {
    WalWriter w(path, 0x1234ULL);  // a collect journal, not a drain one
    w.append(render_request_json(cheap_request("f-0", 1)));
  }
  ServiceConfig config;
  config.workers = 1;
  CampaignService service(config);
  try {
    (void)service.resume_from(path);
    FAIL() << "foreign journal was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("foreign fingerprint"),
              std::string::npos);
  }
  EXPECT_EQ(service.drain().submitted, 0u);
}

TEST(ServiceResume, TornJournalIsRefusedNotResumedPastTheTear) {
  const std::string path = temp_wal("resume_torn.wal");
  std::vector<ServiceRequest> reqs = {cheap_request("t-0", 1),
                                      cheap_request("t-1", 2)};
  checkpoint_journal(path, reqs);
  std::ofstream(path, std::ios::app) << "R half-written-before-the-crash";
  ServiceConfig config;
  config.workers = 1;
  CampaignService service(config);
  try {
    (void)service.resume_from(path);
    FAIL() << "torn journal was accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos);
  }
  // Whole-journal validation: even the intact prefix was NOT submitted.
  EXPECT_EQ(service.drain().submitted, 0u);
}

TEST(ServiceResume, UnparseableRecordRefusesTheWholeJournal) {
  const std::string path = temp_wal("resume_badrecord.wal");
  {
    WalWriter w(path, service_checkpoint_fingerprint());
    w.append(render_request_json(cheap_request("b-0", 1)));
    w.append("this CRC-valid record is not a request");
    w.append(render_request_json(cheap_request("b-2", 3)));
  }
  ServiceConfig config;
  config.workers = 1;
  CampaignService service(config);
  EXPECT_THROW(service.resume_from(path), CheckpointError);
  // Neither the record before nor after the bad one was submitted: a
  // defective journal is refused outright, never half-applied.
  EXPECT_EQ(service.drain().submitted, 0u);
}

TEST(ServiceResume, DuplicatedRecordsAreDroppedByKeyedDedup) {
  const std::string path = temp_wal("resume_dup.wal");
  const ServiceRequest a = cheap_request("dup-a", 1);
  const ServiceRequest b = cheap_request("dup-b", 2);
  {
    WalWriter w(path, service_checkpoint_fingerprint());
    w.append(render_request_json(a));
    w.append(render_request_json(b));
    w.append(render_request_json(a));  // a buffered retry re-appended it
  }
  ServiceConfig config;
  config.workers = 2;
  CampaignService service(config);
  const ResumeOutcome outcome = service.resume_from(path);
  EXPECT_EQ(outcome.duplicates, 1u);
  ASSERT_EQ(outcome.tickets.size(), 2u);
  EXPECT_EQ(service.wait(outcome.tickets[0]).id, "dup-a");
  EXPECT_EQ(service.wait(outcome.tickets[1]).id, "dup-b");
  EXPECT_EQ(service.drain().submitted, 2u);
}

TEST(ServiceResume, AlreadyAcceptedIdsAreNeverResubmitted) {
  const std::string path = temp_wal("resume_dedup_live.wal");
  const ServiceRequest a = cheap_request("live-a", 1);
  const ServiceRequest c = cheap_request("live-c", 3);
  {
    WalWriter w(path, service_checkpoint_fingerprint());
    w.append(render_request_json(a));
    w.append(render_request_json(c));
  }
  ServiceConfig config;
  config.workers = 2;
  CampaignService service(config);
  (void)service.wait(service.submit(a).ticket);  // the service saw 'live-a'
  const ResumeOutcome outcome = service.resume_from(path);
  EXPECT_EQ(outcome.duplicates, 1u);
  ASSERT_EQ(outcome.tickets.size(), 1u);
  EXPECT_EQ(service.wait(outcome.tickets[0]).id, "live-c");
  const DrainReport report = service.drain();
  EXPECT_EQ(report.admitted, 2u);  // 'live-a' exactly once
}

TEST(ServiceResume, CrashMidDrainLeavesAValidPrefixJournal) {
  const std::string path = temp_wal("resume_crash.wal");
  std::vector<ServiceRequest> reqs;
  for (std::size_t i = 0; i < 5; ++i) {
    reqs.push_back(cheap_request("crash-" + std::to_string(i), 10 + i));
  }
  std::vector<std::size_t> tickets;
  {
    ServiceConfig config;
    config.workers = 1;
    config.max_queue = reqs.size();
    config.checkpoint_path = path;
    config.crash_after_checkpoints = 2;
    CampaignService service(config);
    for (const auto& req : reqs) {
      tickets.push_back(service.submit(req, /*hold=*/true).ticket);
    }
    EXPECT_THROW(service.drain(), ServiceAbortedError);
    // The first two slots made it into the journal; the crash lost the
    // rest — loudly, as cancelled, never as forged checkpointed/ok.
    EXPECT_EQ(service.wait(tickets[0]).code, ResponseCode::kCheckpointed);
    EXPECT_EQ(service.wait(tickets[1]).code, ResponseCode::kCheckpointed);
    for (std::size_t i = 2; i < tickets.size(); ++i) {
      const ServiceResponse resp = service.wait(tickets[i]);
      EXPECT_EQ(resp.code, ResponseCode::kCancelled);
      EXPECT_NE(resp.message.find("crash"), std::string::npos);
    }
    // A second drain after the simulated crash is a calm no-op report.
    EXPECT_NO_THROW((void)service.drain());
  }

  // The journal on disk is a valid 2-record prefix a restart can resume.
  const WalReplay replay = replay_wal(path);
  ASSERT_TRUE(replay.exists);
  EXPECT_EQ(replay.fingerprint, service_checkpoint_fingerprint());
  EXPECT_EQ(replay.torn_lines, 0u);
  ASSERT_EQ(replay.records.size(), 2u);
  ServiceConfig config;
  config.workers = 1;
  CampaignService service(config);
  const ResumeOutcome outcome = service.resume_from(path);
  ASSERT_EQ(outcome.tickets.size(), 2u);
  EXPECT_EQ(service.wait(outcome.tickets[0]).id, "crash-0");
  EXPECT_EQ(service.wait(outcome.tickets[1]).id, "crash-1");
}

TEST(ServiceResume, CrashRequiresAConfiguredJournal) {
  // crash_after_checkpoints only counts journal appends: without a
  // checkpoint path nothing is ever appended, so the crash never fires.
  ServiceConfig config;
  config.workers = 1;
  config.crash_after_checkpoints = 1;
  CampaignService service(config);
  (void)service.submit(cheap_request("nc-0", 1), /*hold=*/true);
  EXPECT_NO_THROW((void)service.drain());
}

// --- torture: seeded corruption drills over a real drain journal --------

/// Attempts a resume of `path` into a fresh service.  On success the
/// resumed ids must be exactly a prefix of `wrote` (clean prefix, every
/// response typed); on refusal nothing may have been submitted.
void drill_resume(const std::string& path,
                  const std::vector<std::string>& wrote) {
  ServiceConfig config;
  config.workers = 2;
  config.max_queue = wrote.size();
  CampaignService service(config);
  std::optional<ResumeOutcome> outcome;
  try {
    outcome = service.resume_from(path);
  } catch (const CheckpointError&) {
    EXPECT_EQ(service.drain().submitted, 0u);  // loud refusal, no submits
    return;
  }
  ASSERT_LE(outcome->tickets.size(), wrote.size());
  for (std::size_t i = 0; i < outcome->tickets.size(); ++i) {
    const ServiceResponse resp = service.wait(outcome->tickets[i]);
    EXPECT_EQ(resp.id, wrote[i]) << "record " << i << " is not the prefix";
    EXPECT_EQ(resp.code, ResponseCode::kDeadlineExceeded);
  }
  EXPECT_EQ(service.drain().admitted, outcome->tickets.size());
}

TEST(ServiceResumeTorture, SeededTruncationsResumeACleanPrefixOrRefuse) {
  const std::string path = temp_wal("resume_torture_trunc.wal");
  std::vector<ServiceRequest> reqs;
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < 12; ++i) {
    reqs.push_back(cheap_request("tt-" + std::to_string(i), 100 + i));
    ids.push_back(reqs.back().id);
  }
  checkpoint_journal(path, reqs);
  const std::string pristine = slurp(path);
  const std::size_t header_end = pristine.find('\n') + 1;

  Rng rng(0xC0FFEE);
  bool saw_partial_resume = false;
  for (int drill = 0; drill < 30; ++drill) {
    const std::size_t cut =
        header_end + static_cast<std::size_t>(rng.uniform_index(
                         pristine.size() - header_end + 1));
    dump(path, pristine.substr(0, cut));
    drill_resume(path, ids);
    // Track that the corpus actually exercises the clean-prefix branch
    // (a cut on a line boundary), not just refusals.
    if (cut < pristine.size() && cut > header_end &&
        pristine[cut - 1] == '\n') {
      saw_partial_resume = true;
    }
  }
  EXPECT_TRUE(saw_partial_resume) << "corpus never hit a line boundary";
}

TEST(ServiceResumeTorture, SeededBitFlipsNeverForgeARequest) {
  const std::string path = temp_wal("resume_torture_flip.wal");
  std::vector<ServiceRequest> reqs;
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < 12; ++i) {
    reqs.push_back(cheap_request("tf-" + std::to_string(i), 200 + i));
    ids.push_back(reqs.back().id);
  }
  checkpoint_journal(path, reqs);
  const std::string pristine = slurp(path);
  const std::size_t header_end = pristine.find('\n') + 1;

  Rng rng(0xBADC0DE);
  for (int drill = 0; drill < 30; ++drill) {
    std::string text = pristine;
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at =
          header_end + static_cast<std::size_t>(rng.uniform_index(
                           text.size() - header_end));
      text[at] = static_cast<char>(
          text[at] ^ static_cast<char>(1 << rng.uniform_index(8)));
    }
    dump(path, text);
    // Record CRCs catch every flip: the resume refuses (torn) — and must
    // never surface a record that was not journaled.  drill_resume also
    // accepts the (theoretical) clean-prefix outcome.
    drill_resume(path, ids);
  }
}

TEST(ServiceResumeTorture, HeaderFlipIsARefusalNotAFreshStart) {
  const std::string path = temp_wal("resume_torture_header.wal");
  std::vector<ServiceRequest> reqs = {cheap_request("th-0", 1)};
  checkpoint_journal(path, reqs);
  std::string text = slurp(path);
  text[2] ^= 0x01;  // inside the fingerprint hex
  dump(path, text);
  ServiceConfig config;
  config.workers = 1;
  CampaignService service(config);
  EXPECT_THROW(service.resume_from(path), CheckpointError);
  EXPECT_EQ(service.drain().submitted, 0u);
}

TEST(ServiceResume, NextCompletedStreamsEveryTicketExactlyOnce) {
  ServiceConfig config;
  config.workers = 2;
  config.max_queue = 8;
  CampaignService service(config);

  std::vector<std::size_t> consumed;
  std::thread consumer([&] {
    while (const auto ticket = service.next_completed()) {
      consumed.push_back(*ticket);
    }
  });

  std::size_t tickets = 0;
  // One invalid line, four cheap requests, one held — every flavor of
  // terminal state must appear on the stream exactly once.
  ASSERT_TRUE(service.submit_line("not json at all").has_ticket);
  ++tickets;
  for (std::size_t i = 0; i < 4; ++i) {
    (void)service.submit(cheap_request("nc-" + std::to_string(i), i));
    ++tickets;
  }
  (void)service.submit(cheap_request("nc-held", 9), /*hold=*/true);
  ++tickets;

  (void)service.drain();  // closes the stream once everything resolved
  consumer.join();

  ASSERT_EQ(consumed.size(), tickets);
  std::vector<std::size_t> sorted = consumed;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < tickets; ++i) {
    EXPECT_EQ(sorted[i], i);  // each ticket exactly once, none invented
  }
  // A closed, fully consumed stream keeps answering nullopt.
  EXPECT_FALSE(service.next_completed().has_value());
}

}  // namespace
}  // namespace pv
