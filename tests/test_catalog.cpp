// Unit tests for the system catalog — the paper's published numbers must
// be encoded faithfully.

#include "sim/catalog.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/descriptive.hpp"

namespace pv::catalog {
namespace {

TEST(Catalog, Table2SystemsInPaperOrder) {
  const auto& systems = table2_systems();
  ASSERT_EQ(systems.size(), 4u);
  EXPECT_EQ(systems[0].name, "Colosse");
  EXPECT_EQ(systems[1].name, "Sequoia");
  EXPECT_EQ(systems[2].name, "Piz Daint");
  EXPECT_EQ(systems[3].name, "L-CSC");
}

TEST(Catalog, Table2PublishedNumbers) {
  const auto& s = table2_systems();
  EXPECT_DOUBLE_EQ(s[0].hpl_runtime.value(), 7.0 * 3600.0);
  EXPECT_DOUBLE_EQ(s[0].core_avg.value(), 398700.0);
  EXPECT_DOUBLE_EQ(s[1].hpl_runtime.value(), 28.0 * 3600.0);
  EXPECT_DOUBLE_EQ(s[1].first20_avg.value(), 11628700.0);
  EXPECT_DOUBLE_EQ(s[2].last20_avg.value(), 698400.0);
  EXPECT_DOUBLE_EQ(s[3].core_avg.value(), 59100.0);
  EXPECT_DOUBLE_EQ(s[3].first20_avg.value(), 63900.0);
  EXPECT_DOUBLE_EQ(s[3].last20_avg.value(), 46800.0);
  EXPECT_FALSE(s[0].gpu_shape);
  EXPECT_FALSE(s[1].gpu_shape);
  EXPECT_TRUE(s[2].gpu_shape);
  EXPECT_TRUE(s[3].gpu_shape);
}

TEST(Catalog, Table4SystemsInPaperOrder) {
  const auto& systems = table4_systems();
  ASSERT_EQ(systems.size(), 6u);
  EXPECT_EQ(systems[0].name, "Calcul Quebec");
  EXPECT_EQ(systems[1].name, "CEA (Fat)");
  EXPECT_EQ(systems[2].name, "CEA (Thin)");
  EXPECT_EQ(systems[3].name, "LRZ");
  EXPECT_EQ(systems[4].name, "Titan");
  EXPECT_EQ(systems[5].name, "TU-Dresden");
}

TEST(Catalog, Table4PublishedStatistics) {
  struct Row {
    const char* name;
    std::size_t n;
    double mean;
    double sd;
  };
  const Row rows[] = {
      {"Calcul Quebec", 480, 581.93, 11.66}, {"CEA (Fat)", 360, 971.74, 19.81},
      {"CEA (Thin)", 5040, 366.84, 10.41},   {"LRZ", 9216, 209.88, 5.31},
      {"Titan", 18688, 90.74, 1.81},         {"TU-Dresden", 210, 386.86, 5.85},
  };
  for (const Row& row : rows) {
    const FleetSystem& s = fleet_system(row.name);
    EXPECT_EQ(s.total_nodes, row.n) << row.name;
    EXPECT_DOUBLE_EQ(s.mean_w, row.mean) << row.name;
    EXPECT_DOUBLE_EQ(s.sd_w, row.sd) << row.name;
  }
  EXPECT_THROW(fleet_system("Colossus"), std::invalid_argument);
}

TEST(Catalog, Table4CvsAreInThePapersRange) {
  for (const auto& s : table4_systems()) {
    EXPECT_GE(s.cv(), 0.015) << s.name;
    EXPECT_LE(s.cv(), 0.0285) << s.name;
    // The variability decomposition reproduces the published cv.
    EXPECT_NEAR(s.variability.body_cv(), s.cv(), 1e-9) << s.name;
  }
}

TEST(Catalog, Table3WorkloadsMatch) {
  EXPECT_EQ(fleet_system("LRZ").workload_name, "MPrime");
  EXPECT_EQ(fleet_system("Titan").workload_name, "Rodinia CFD");
  EXPECT_EQ(fleet_system("TU-Dresden").workload_name, "FIRESTARTER");
  EXPECT_EQ(fleet_system("Calcul Quebec").workload_name, "HPL");
  EXPECT_EQ(fleet_system("LRZ").measured_nodes, 512u);
  EXPECT_EQ(fleet_system("Titan").measured_nodes, 1000u);
}

TEST(Catalog, MakeWorkloadDispatchesByProfile) {
  EXPECT_EQ(make_workload(fleet_system("LRZ"))->name(), "MPrime");
  EXPECT_EQ(make_workload(fleet_system("Titan"))->name(), "Rodinia CFD");
  EXPECT_EQ(make_workload(fleet_system("TU-Dresden"))->name(), "FIRESTARTER");
  EXPECT_EQ(make_workload(fleet_system("CEA (Fat)"))->name(), "HPL");
}

TEST(Catalog, MakeFleetPowersUnconditionedIsClose) {
  const FleetSystem& lrz = fleet_system("LRZ");
  const auto powers = make_fleet_powers(lrz, 1, /*condition_exact=*/false);
  ASSERT_EQ(powers.size(), lrz.total_nodes);
  const Summary s = summarize(powers);
  EXPECT_NEAR(s.mean, lrz.mean_w, lrz.mean_w * 0.01);
  EXPECT_NEAR(s.cv, lrz.cv(), 0.006);
}

TEST(Catalog, MakeFleetPowersConditionedIsExact) {
  const FleetSystem& titan = fleet_system("Titan");
  const auto powers = make_fleet_powers(titan, 2, /*condition_exact=*/true);
  const Summary s = summarize(powers);
  EXPECT_NEAR(s.mean, 90.74, 1e-9);
  EXPECT_NEAR(s.stddev, 1.81, 1e-9);
}

TEST(Catalog, ProfiledSystemCalibrates) {
  for (const auto& sys : table2_systems()) {
    const CalibratedSystemProfile prof = make_profile(sys);
    EXPECT_EQ(prof.name(), sys.name);
    EXPECT_DOUBLE_EQ(prof.phases().core.value(), sys.hpl_runtime.value());
  }
}

TEST(Catalog, TsubameKfcHasAGamableTail) {
  const ProfiledSystem& kfc = tsubame_kfc();
  EXPECT_TRUE(kfc.gpu_shape);
  EXPECT_GT(kfc.first20_avg.value(), kfc.core_avg.value());
  EXPECT_LT(kfc.last20_avg.value(), kfc.core_avg.value());
}

TEST(Catalog, TitanGpuOnlyScopeReproducesTable4Row) {
  // Bottom-up check of the ORNL row: 1000 metered K20X GPUs under Rodinia
  // land at the published 90.74 W per-GPU mean with a cv in the paper's
  // 1.5-3% band.
  const auto fleet = build_fleet(titan_node_spec(), 1000, 42);
  pv::RunningStats gpu;
  for (const auto& node : fleet) {
    gpu.add(node.gpu_power(titan_rodinia_gpu_activity(),
                           pv::NodeSettings::defaults())
                .value());
  }
  EXPECT_NEAR(gpu.mean(), 90.74, 2.0);
  EXPECT_GT(gpu.cv(), 0.01);
  EXPECT_LT(gpu.cv(), 0.035);
}

TEST(Catalog, TitanSpecShape) {
  const pv::NodeSpec spec = titan_node_spec();
  EXPECT_EQ(spec.cpu_count, 1u);
  EXPECT_EQ(spec.gpu_count, 1u);
  EXPECT_DOUBLE_EQ(spec.gpu.peak_gflops_ref, 1310.0);  // K20X DP
  EXPECT_DOUBLE_EQ(spec.fan.max_power_w, 0.0);  // chassis-cooled blades
}

TEST(Catalog, LcscSpecIsFourGpuNode) {
  const NodeSpec spec = lcsc_node_spec();
  EXPECT_EQ(spec.gpu_count, 4u);
  EXPECT_EQ(spec.cpu_count, 2u);
  EXPECT_DOUBLE_EQ(spec.gpu.reference.frequency.value(), 900e6);
  EXPECT_EQ(lcsc_node_count(), 160u);
}

}  // namespace
}  // namespace pv::catalog
