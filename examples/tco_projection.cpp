// tco_projection — what measurement accuracy is worth in electricity money.
//
// §1 of the paper: "the observed variations of 20% in power consumption
// lead directly to a possible 20% increase in electricity costs".  Measure
// a machine two ways (sloppy v1.2 Level 1 vs 2015 rules), project the
// 5-year energy cost from each, and compare the uncertainty bands.
//
//   $ ./examples/tco_projection

#include <iostream>
#include <memory>

#include "core/campaign.hpp"
#include "core/tco.hpp"
#include "sim/fleet.hpp"
#include "util/table.hpp"
#include "workload/hpl.hpp"

int main() {
  using namespace pv;

  // A 1-ish MW GPU machine with a gameable power profile.
  auto workload = std::make_shared<HplWorkload>(
      HplParams::gpu_incore(), hours(1.5), minutes(4.0), minutes(3.0));
  auto powers = generate_node_powers(
      800, 1200.0, FleetVariability::typical_cpu().scaled_to(0.02), 3);
  const ClusterPowerModel cluster("procurement-eval", std::move(powers),
                                  workload);
  const SystemPowerModel electrical = make_system_power_model(
      cluster, 8, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{});

  PlanInputs in;
  in.total_nodes = cluster.node_count();
  in.approx_node_power = watts(1200.0);
  in.run = cluster.phases();

  TcoParams tco;
  tco.electricity_cost_per_kwh = 0.15;
  tco.pue = 1.35;
  tco.duty_cycle = 0.8;
  tco.years = 5.0;

  std::cout << "5-year energy cost projection (PUE " << tco.pue << ", "
            << tco.electricity_cost_per_kwh << "/kWh, "
            << fmt_percent(tco.duty_cycle, 0) << " duty)\n\n";

  TextTable t({"measurement", "power", "accuracy", "lifetime cost",
               "uncertainty band"});
  for (Revision rev : {Revision::kV1_2, Revision::kV2015}) {
    Rng rng(5);
    const auto spec = MethodologySpec::get(Level::kL1, rev);
    // Worst-case legal window placement for the sloppy rules.
    const auto plan = plan_measurement(spec, in, rng, SubsetStrategy::kRandom,
                                       rev == Revision::kV1_2 ? 1.0 : 0.5);
    CampaignConfig cfg;
    cfg.meter_interval_override = Seconds{10.0};
    const auto result = run_campaign(cluster, electrical, plan, cfg);

    // Under the old rules the window exposure dominates the statistical
    // CI; fold the worst-case timing spread into the reported accuracy.
    double accuracy = result.relative_halfwidth;
    if (rev == Revision::kV1_2) accuracy = std::max(accuracy, 0.10);

    const TcoEstimate est =
        project_energy_cost(result.submitted_power, accuracy, tco);
    char band[64];
    std::snprintf(band, sizeof band, "[%.2fM, %.2fM]",
                  est.lifetime_cost_ci.lo / 1e6,
                  est.lifetime_cost_ci.hi / 1e6);
    t.add_row({to_string(rev), to_string(result.submitted_power),
               fmt_percent(accuracy, 1),
               fmt_fixed(est.lifetime_energy_cost / 1e6, 2) + "M", band});
  }
  std::cout << t.render();

  const TcoEstimate ref = project_energy_cost(megawatts(1.0), 0.0, tco);
  std::cout << "\nEach percentage point of measurement accuracy on a 1 MW\n"
               "machine is worth "
            << fmt_fixed(ref.cost_per_accuracy_point / 1e3, 1)
            << "k over the machine's life — the procurement argument for\n"
               "the 2015 rules.\n";
  return 0;
}
