// Unit tests for measurement planning and validation.

#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/expects.hpp"

namespace pv {
namespace {

PlanInputs typical_inputs() {
  PlanInputs in;
  in.total_nodes = 1024;
  in.approx_node_power = Watts{400.0};
  in.run = RunPhases{minutes(10.0), hours(2.0), minutes(5.0)};
  return in;
}

TEST(Plan, Level1OldRulesShape) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(1);
  const auto plan = plan_measurement(spec, typical_inputs(), rng);
  EXPECT_EQ(plan.node_count(), 16u);  // 1024/64
  EXPECT_DOUBLE_EQ(plan.window.duration().value(), 1152.0);  // 20% of mid-80
  EXPECT_EQ(plan.meter_mode, MeterMode::kSampled);
  EXPECT_DOUBLE_EQ(plan.meter_interval.value(), 1.0);
  EXPECT_TRUE(validate_plan(plan, typical_inputs()).empty());
}

TEST(Plan, Level1NewRulesCoverFullCore) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  Rng rng(2);
  const PlanInputs in = typical_inputs();
  const auto plan = plan_measurement(spec, in, rng);
  EXPECT_EQ(plan.node_count(), 103u);  // 10% of 1024, ceil
  EXPECT_DOUBLE_EQ(plan.window.begin.value(), in.run.core_begin().value());
  EXPECT_DOUBLE_EQ(plan.window.end.value(), in.run.core_end().value());
  EXPECT_TRUE(validate_plan(plan, in).empty());
}

TEST(Plan, Level3PlansEverythingIntegrated) {
  const auto spec = MethodologySpec::get(Level::kL3, Revision::kV1_2);
  Rng rng(3);
  const auto plan = plan_measurement(spec, typical_inputs(), rng);
  EXPECT_EQ(plan.node_count(), 1024u);
  EXPECT_EQ(plan.meter_mode, MeterMode::kIntegrated);
  EXPECT_TRUE(validate_plan(plan, typical_inputs()).empty());
}

TEST(Plan, WindowPositionMovesLevel1Window) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(4);
  const PlanInputs in = typical_inputs();
  const auto early = plan_measurement(spec, in, rng, SubsetStrategy::kRandom, 0.0);
  const auto late = plan_measurement(spec, in, rng, SubsetStrategy::kRandom, 1.0);
  EXPECT_LT(early.window.begin.value(), late.window.begin.value());
  EXPECT_TRUE(validate_plan(early, in).empty());
  EXPECT_TRUE(validate_plan(late, in).empty());
}

TEST(Plan, RandomSubsetIsDistinctAndInRange) {
  const auto spec = MethodologySpec::get(Level::kL2, Revision::kV1_2);
  Rng rng(5);
  const auto plan = plan_measurement(spec, typical_inputs(), rng);
  EXPECT_EQ(plan.node_count(), 128u);  // 1/8
  std::set<std::size_t> uniq(plan.node_indices.begin(),
                             plan.node_indices.end());
  EXPECT_EQ(uniq.size(), plan.node_count());
  for (std::size_t i : plan.node_indices) EXPECT_LT(i, 1024u);
}

TEST(Plan, FirstRackStrategyTakesPrefix) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(6);
  const auto plan = plan_measurement(spec, typical_inputs(), rng,
                                     SubsetStrategy::kFirstRack);
  for (std::size_t i = 0; i < plan.node_count(); ++i) {
    EXPECT_EQ(plan.node_indices[i], i);
  }
}

TEST(Plan, LowVidStrategyPicksLowestBins) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  PlanInputs in = typical_inputs();
  in.total_nodes = 64;
  in.vid_bins.resize(64);
  for (std::size_t i = 0; i < 64; ++i) in.vid_bins[i] = 63 - i;  // reversed
  Rng rng(7);
  const auto plan =
      plan_measurement(spec, in, rng, SubsetStrategy::kLowVid);
  // Requirement: max(1/64 of 64, 2kW/400W) = max(1, 5) = 5 nodes; the
  // lowest VIDs sit at the array tail.
  EXPECT_EQ(plan.node_count(), 5u);
  for (std::size_t i : plan.node_indices) EXPECT_GE(i, 59u);
}

TEST(Plan, LowPowerStrategyNeedsPowers) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(8);
  EXPECT_THROW(plan_measurement(spec, typical_inputs(), rng,
                                SubsetStrategy::kLowPower),
               contract_error);
}

TEST(Validate, FlagsTooFewNodes) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(9);
  const PlanInputs in = typical_inputs();
  auto plan = plan_measurement(spec, in, rng);
  plan.node_indices.resize(3);
  const auto issues = validate_plan(plan, in);
  ASSERT_FALSE(issues.empty());
  EXPECT_EQ(issues[0].rule, "fraction");
}

TEST(Validate, FlagsWindowOutsideMiddle80) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(10);
  const PlanInputs in = typical_inputs();
  auto plan = plan_measurement(spec, in, rng);
  // Slide the window to the very start of the core phase (inside the
  // excluded first 10%).
  plan.window = {in.run.core_begin(),
                 Seconds{in.run.core_begin().value() + 1152.0}};
  bool timing_issue = false;
  for (const auto& issue : validate_plan(plan, in)) {
    if (issue.rule == "timing") timing_issue = true;
  }
  EXPECT_TRUE(timing_issue);
}

TEST(Validate, FlagsPartialCoreUnder2015Rules) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  Rng rng(11);
  const PlanInputs in = typical_inputs();
  auto plan = plan_measurement(spec, in, rng);
  plan.window.end = Seconds{plan.window.end.value() - 600.0};
  const auto issues = validate_plan(plan, in);
  EXPECT_FALSE(issues.empty());
}

TEST(Validate, FlagsCoarseMeter) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(12);
  const PlanInputs in = typical_inputs();
  auto plan = plan_measurement(spec, in, rng);
  plan.meter_interval = Seconds{30.0};
  bool timing_issue = false;
  for (const auto& issue : validate_plan(plan, in)) {
    if (issue.rule == "timing") timing_issue = true;
  }
  EXPECT_TRUE(timing_issue);
}

TEST(Validate, FlagsDcTapWithoutCorrection) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  Rng rng(13);
  const PlanInputs in = typical_inputs();
  auto plan = plan_measurement(spec, in, rng);
  plan.point = MeasurementPoint::kNodeDc;
  bool conversion_issue = false;
  for (const auto& issue : validate_plan(plan, in)) {
    if (issue.rule == "conversion") conversion_issue = true;
  }
  EXPECT_TRUE(conversion_issue);
}

TEST(Validate, FlagsPowerFloorViolation) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV1_2);
  PlanInputs in = typical_inputs();
  in.approx_node_power = Watts{50.0};  // 16 nodes * 50 W = 800 W < 2 kW
  Rng rng(14);
  auto plan = plan_measurement(spec, in, rng);
  plan.node_indices.resize(16);  // force too-small subset
  bool fraction_issue = false;
  for (const auto& issue : validate_plan(plan, in)) {
    if (issue.rule == "fraction") fraction_issue = true;
  }
  EXPECT_TRUE(fraction_issue);
}

TEST(Plan, StrategyNames) {
  EXPECT_STREQ(to_string(SubsetStrategy::kRandom), "random");
  EXPECT_STREQ(to_string(SubsetStrategy::kLowVid), "low-VID screened");
}

}  // namespace
}  // namespace pv
