#include "core/tco.hpp"

#include "util/expects.hpp"

namespace pv {

TcoEstimate project_energy_cost(Watts measured_power,
                                double relative_accuracy,
                                const TcoParams& params) {
  PV_EXPECTS(measured_power.value() > 0.0, "measured power must be positive");
  PV_EXPECTS(relative_accuracy >= 0.0 && relative_accuracy < 1.0,
             "relative accuracy must be in [0,1)");
  PV_EXPECTS(params.electricity_cost_per_kwh > 0.0, "cost must be positive");
  PV_EXPECTS(params.pue >= 1.0, "PUE is at least 1");
  PV_EXPECTS(params.duty_cycle > 0.0 && params.duty_cycle <= 1.0,
             "duty cycle in (0,1]");
  PV_EXPECTS(params.years > 0.0, "lifetime must be positive");

  constexpr double kHoursPerYear = 8766.0;  // averaged over leap years
  const double kw = measured_power.value() / 1000.0;
  const double annual_kwh =
      kw * params.pue * params.duty_cycle * kHoursPerYear;

  TcoEstimate est;
  est.annual_energy_cost = annual_kwh * params.electricity_cost_per_kwh;
  est.lifetime_energy_cost = est.annual_energy_cost * params.years;
  est.lifetime_cost_ci = {
      est.lifetime_energy_cost * (1.0 - relative_accuracy),
      est.lifetime_energy_cost * (1.0 + relative_accuracy)};
  est.cost_per_accuracy_point = est.lifetime_energy_cost * 0.01;
  return est;
}

}  // namespace pv
