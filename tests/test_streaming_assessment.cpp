// Differential harness for the bounded-memory (live) assessment path.
//
// The headline contract: a campaign run through the live window-major
// meter stage must produce a final assessment Document *byte-identical*
// to the batch stage's — memcmp on every reported double and verdict,
// and string equality on the rendered JSON — across seeds x L1/L2/L3 x
// thread counts x {clean, harsh faults + dead + byzantine + reconcile},
// on both the streaming and the eager engine, with chunk sizes small
// enough to force many chunks per window.  Partial documents must parse
// as valid powervar-assessment-v1 lines, follow the pinned virtual-time
// emission schedule, and be byte-identical across thread counts and
// reruns.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/plan.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

namespace pv {
namespace {

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
};

Rig make_rig(std::size_t nodes, Level level, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "live-rig";
  spec.nodes = nodes;
  spec.cv = 0.03;
  spec.fleet_seed = seed ^ 0x99;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.plan = built.plan(MethodologySpec::get(level, Revision::kV2015), seed);
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  return rig;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// Byte-compares everything a campaign reports — per-node means, CI,
// energy, truth, data-quality tallies and reconcile verdicts — then the
// rendered JSON document as a whole.
void expect_identical(const MeasurementPlan& plan, const CampaignResult& a,
                      const CampaignResult& b, const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_TRUE(bits_equal(a.submitted_power.value(), b.submitted_power.value()));
  EXPECT_TRUE(
      bits_equal(a.submitted_energy.value(), b.submitted_energy.value()));
  EXPECT_EQ(a.nodes_measured, b.nodes_measured);
  ASSERT_EQ(a.node_mean_powers_w.size(), b.node_mean_powers_w.size());
  for (std::size_t i = 0; i < a.node_mean_powers_w.size(); ++i) {
    EXPECT_TRUE(bits_equal(a.node_mean_powers_w[i], b.node_mean_powers_w[i]))
        << "node mean " << i;
  }
  EXPECT_TRUE(bits_equal(a.node_mean_ci.lo, b.node_mean_ci.lo));
  EXPECT_TRUE(bits_equal(a.node_mean_ci.hi, b.node_mean_ci.hi));
  EXPECT_TRUE(bits_equal(a.relative_halfwidth, b.relative_halfwidth));
  EXPECT_TRUE(bits_equal(a.true_power.value(), b.true_power.value()));
  EXPECT_TRUE(bits_equal(a.relative_error, b.relative_error));
  const DataQuality& qa = a.data_quality;
  const DataQuality& qb = b.data_quality;
  EXPECT_EQ(qa.meters_lost, qb.meters_lost);
  EXPECT_EQ(qa.lost_meter_ids, qb.lost_meter_ids);
  EXPECT_EQ(qa.samples_lost, qb.samples_lost);
  EXPECT_EQ(qa.samples_repaired, qb.samples_repaired);
  EXPECT_EQ(qa.spikes_filtered, qb.spikes_filtered);
  EXPECT_EQ(qa.stuck_flagged, qb.stuck_flagged);
  EXPECT_TRUE(bits_equal(qa.sample_coverage, qb.sample_coverage));
  EXPECT_EQ(qa.reconcile_ran, qb.reconcile_ran);
  EXPECT_EQ(qa.integrity.meters_checked, qb.integrity.meters_checked);
  EXPECT_EQ(qa.integrity.meters_quarantined, qb.integrity.meters_quarantined);
  EXPECT_EQ(qa.integrity.meters_corrected, qb.integrity.meters_corrected);
  ASSERT_EQ(qa.integrity.diagnoses.size(), qb.integrity.diagnoses.size());
  for (std::size_t i = 0; i < qa.integrity.diagnoses.size(); ++i) {
    EXPECT_EQ(qa.integrity.diagnoses[i].meter_id,
              qb.integrity.diagnoses[i].meter_id);
    EXPECT_EQ(static_cast<int>(qa.integrity.diagnoses[i].verdict),
              static_cast<int>(qb.integrity.diagnoses[i].verdict));
  }
  // The whole rendered document, byte for byte.
  EXPECT_EQ(render_json(assessment_document(plan, a)),
            render_json(assessment_document(plan, b)));
}

CampaignConfig base_config(std::uint64_t seed, std::size_t threads = 1) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.meter_interval_override = Seconds{5.0};
  return cfg;
}

CampaignConfig live_config(std::uint64_t seed, std::size_t threads,
                           std::size_t chunk_samples,
                           std::vector<std::string>* partials = nullptr,
                           double emit_every_s = 0.0) {
  CampaignConfig cfg = base_config(seed, threads);
  cfg.live.enabled = true;
  cfg.live.chunk_samples = chunk_samples;
  cfg.live.emit_every_s = emit_every_s;
  if (partials != nullptr) {
    cfg.live_sink = [partials](const std::string& line) {
      partials->push_back(line);
    };
  }
  return cfg;
}

CampaignConfig with_harsh_faults(CampaignConfig cfg,
                                 const MeasurementPlan& plan) {
  cfg.faults.spec = FaultSpec::harsh();
  cfg.faults.dead_meters = {plan.node_indices[1]};
  cfg.faults.byzantine_meters = {plan.node_indices[0], plan.node_indices[3]};
  cfg.reconcile.enabled = true;
  return cfg;
}

class StreamingAssessment
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Level>> {};

TEST_P(StreamingAssessment, CleanLiveFinalByteIdenticalToBatch) {
  const auto [seed, level] = GetParam();
  const Rig rig = make_rig(96, level, seed);
  const auto batch = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                  base_config(seed));
  // Chunk sizes deliberately small and non-round so every window spans
  // many chunks and the last chunk is ragged.
  for (const std::size_t chunk : {std::size_t{37}, std::size_t{64}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const auto live =
          run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                       live_config(seed, threads, chunk));
      expect_identical(rig.plan, batch, live,
                       "clean, chunk=" + std::to_string(chunk) +
                           ", threads=" + std::to_string(threads));
    }
  }
}

TEST_P(StreamingAssessment, FaultedByzantineReconciledLiveMatchesBatch) {
  const auto [seed, level] = GetParam();
  const Rig rig = make_rig(96, level, seed);
  const auto batch =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                   with_harsh_faults(base_config(seed), rig.plan));
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto live = run_campaign(
        *rig.cluster, *rig.electrical, rig.plan,
        with_harsh_faults(live_config(seed, threads, 37), rig.plan));
    expect_identical(rig.plan, batch, live,
                     "faulted, threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLevels, StreamingAssessment,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(Level::kL1, Level::kL2, Level::kL3)),
    [](const ::testing::TestParamInfo<StreamingAssessment::ParamType>& p) {
      return "seed" + std::to_string(std::get<0>(p.param)) + "_L" +
             std::to_string(static_cast<int>(std::get<1>(p.param)));
    });

TEST(StreamingAssessment, EagerEngineLiveMatchesEagerBatch) {
  // The live stage's whole-window driver must also reproduce the eager
  // engine (models the streaming probe rejects fall back to it).
  const Rig rig = make_rig(64, Level::kL2, 11);
  CampaignConfig batch_cfg = base_config(11);
  batch_cfg.engine = CampaignEngine::kEager;
  const auto batch =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, batch_cfg);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    CampaignConfig cfg = live_config(11, threads, 37);
    cfg.engine = CampaignEngine::kEager;
    const auto live =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
    expect_identical(rig.plan, batch, live,
                     "eager, threads=" + std::to_string(threads));
  }
}

TEST(StreamingAssessment, PartialsParseAndFollowThePinnedSchedule) {
  const Rig rig = make_rig(48, Level::kL2, 7);
  // Timed schedule: one partial every 300 virtual seconds.
  std::vector<std::string> partials;
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                   live_config(7, 1, 37, &partials, /*emit_every_s=*/300.0));
  ASSERT_FALSE(partials.empty());
  for (std::size_t i = 0; i < partials.size(); ++i) {
    SCOPED_TRACE("partial " + std::to_string(i));
    const Json doc = parse_assessment_line(partials[i]);
    const Json* live = doc.find("live");
    ASSERT_NE(live, nullptr);
    EXPECT_EQ(static_cast<std::size_t>(live->find("seq")->number_value()), i);
    // Ring capacity is respected in the emitted document.
    EXPECT_LE(live->find("recent_windows")->size(),
              static_cast<std::size_t>(
                  live->find("window_capacity")->number_value()));
  }
  // The final document carries no live block: it parses as a plain
  // assessment line.
  const std::string final_line =
      render_json(assessment_document(rig.plan, result));
  EXPECT_EQ(parse_assessment_line(final_line).find("live"), nullptr);

  // The schedule is pinned in virtual time: reruns and different thread
  // counts produce the byte-identical partial transcript.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    std::vector<std::string> again;
    (void)run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                       live_config(7, threads, 37, &again, 300.0));
    EXPECT_EQ(partials, again) << "threads=" << threads;
  }
  // A different chunking must not move the numbers, only (possibly) the
  // emission points; with the same schedule the transcript is identical.
  std::vector<std::string> other_chunk;
  (void)run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                     live_config(7, 1, 64, &other_chunk, 300.0));
  ASSERT_EQ(partials.size(), other_chunk.size());
}

TEST(StreamingAssessment, WindowCloseScheduleEmitsOncePerWindow) {
  const Rig rig = make_rig(48, Level::kL2, 13);
  std::vector<std::string> partials;
  const auto result = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                   live_config(13, 1, 4096, &partials));
  // emit_every_s == 0: one partial per closed window, counted by the
  // meter stage's own trace.
  double windows = 0.0;
  double emitted = -1.0;
  for (const StageTrace& t : result.stage_traces) {
    if (t.stage != "meter") continue;
    for (const auto& [k, v] : t.counters) {
      if (k == "windows_stored") windows = v;
      if (k == "partials_emitted") emitted = v;
    }
  }
  EXPECT_EQ(static_cast<double>(partials.size()), emitted);
  EXPECT_GT(windows, 0.0);
  for (const std::string& line : partials) {
    EXPECT_NO_THROW((void)parse_assessment_line(line));
  }
}

TEST(StreamingAssessment, NullSinkStillRunsAndMatchesBatch) {
  // live enabled with no sink: the bounded-memory engine runs, emits
  // nothing, and the final result is still byte-identical.
  const Rig rig = make_rig(48, Level::kL1, 5);
  const auto batch = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                  base_config(5));
  const auto live = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                 live_config(5, 2, 37, nullptr, 300.0));
  expect_identical(rig.plan, batch, live, "null sink");
}

}  // namespace
}  // namespace pv
