#include "stats/autocorr.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"

namespace pv {

double autocorrelation(std::span<const double> xs, std::size_t lag) {
  PV_EXPECTS(xs.size() >= 2, "autocorrelation needs n >= 2");
  PV_EXPECTS(lag < xs.size(), "lag must be smaller than the series");
  const Summary s = summarize(xs);
  PV_EXPECTS(s.stddev > 0.0, "constant series has no autocorrelation");
  const double n = static_cast<double>(xs.size());
  double num = 0.0;
  for (std::size_t i = 0; i + lag < xs.size(); ++i) {
    num += (xs[i] - s.mean) * (xs[i + lag] - s.mean);
  }
  double den = 0.0;
  for (double x : xs) den += (x - s.mean) * (x - s.mean);
  (void)n;
  return num / den;
}

double integrated_autocorrelation_time(std::span<const double> xs) {
  PV_EXPECTS(xs.size() >= 4, "need n >= 4");
  double tau = 1.0;
  const std::size_t max_lag = std::min<std::size_t>(xs.size() / 2, 2000);
  // Geyer: accumulate paired sums Gamma_k = rho_{2k-1} + rho_{2k} while
  // they stay positive.
  for (std::size_t k = 1; 2 * k < max_lag; ++k) {
    const double gamma = autocorrelation(xs, 2 * k - 1) +
                         autocorrelation(xs, 2 * k);
    if (gamma <= 0.0) break;
    tau += 2.0 * gamma;
  }
  return std::max(1.0, tau);
}

double effective_sample_size(std::span<const double> xs) {
  return std::max(1.0, static_cast<double>(xs.size()) /
                           integrated_autocorrelation_time(xs));
}

double time_average_standard_error(std::span<const double> xs) {
  const Summary s = summarize(xs);
  PV_EXPECTS(s.count >= 4, "need n >= 4");
  if (s.stddev == 0.0) return 0.0;
  return s.stddev * std::sqrt(integrated_autocorrelation_time(xs) /
                              static_cast<double>(xs.size()));
}

}  // namespace pv
