
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meter/hierarchy.cpp" "src/meter/CMakeFiles/powervar_meter.dir/hierarchy.cpp.o" "gcc" "src/meter/CMakeFiles/powervar_meter.dir/hierarchy.cpp.o.d"
  "/root/repo/src/meter/meter.cpp" "src/meter/CMakeFiles/powervar_meter.dir/meter.cpp.o" "gcc" "src/meter/CMakeFiles/powervar_meter.dir/meter.cpp.o.d"
  "/root/repo/src/meter/psu.cpp" "src/meter/CMakeFiles/powervar_meter.dir/psu.cpp.o" "gcc" "src/meter/CMakeFiles/powervar_meter.dir/psu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/powervar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/powervar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/powervar_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
