file(REMOVE_RECURSE
  "CMakeFiles/powervar_sim.dir/catalog.cpp.o"
  "CMakeFiles/powervar_sim.dir/catalog.cpp.o.d"
  "CMakeFiles/powervar_sim.dir/cluster.cpp.o"
  "CMakeFiles/powervar_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/powervar_sim.dir/components.cpp.o"
  "CMakeFiles/powervar_sim.dir/components.cpp.o.d"
  "CMakeFiles/powervar_sim.dir/fleet.cpp.o"
  "CMakeFiles/powervar_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/powervar_sim.dir/node.cpp.o"
  "CMakeFiles/powervar_sim.dir/node.cpp.o.d"
  "CMakeFiles/powervar_sim.dir/thermal.cpp.o"
  "CMakeFiles/powervar_sim.dir/thermal.cpp.o.d"
  "CMakeFiles/powervar_sim.dir/transient.cpp.o"
  "CMakeFiles/powervar_sim.dir/transient.cpp.o.d"
  "libpowervar_sim.a"
  "libpowervar_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powervar_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
