
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_dvfs.cpp" "bench/CMakeFiles/bench_ablation_dvfs.dir/bench_ablation_dvfs.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_dvfs.dir/bench_ablation_dvfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/powervar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/powervar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/powervar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/powervar_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/powervar_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/powervar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/powervar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
