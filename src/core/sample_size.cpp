#include "core/sample_size.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

void check_alpha(double alpha) {
  PV_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
}

}  // namespace

Interval t_confidence_interval(double mean, double sd, std::size_t n,
                               double alpha) {
  check_alpha(alpha);
  PV_EXPECTS(n >= 2, "a t interval needs n >= 2");
  PV_EXPECTS(sd >= 0.0, "sd must be non-negative");
  const double half = t_critical(alpha, static_cast<double>(n - 1)) * sd /
                      std::sqrt(static_cast<double>(n));
  return {mean - half, mean + half};
}

Interval z_confidence_interval(double mean, double sd, std::size_t n,
                               double alpha) {
  check_alpha(alpha);
  PV_EXPECTS(n >= 1, "a z interval needs n >= 1");
  PV_EXPECTS(sd >= 0.0, "sd must be non-negative");
  const double half =
      z_critical(alpha) * sd / std::sqrt(static_cast<double>(n));
  return {mean - half, mean + half};
}

Interval t_confidence_interval(std::span<const double> sample, double alpha) {
  PV_EXPECTS(sample.size() >= 2, "a t interval needs n >= 2");
  const Summary s = summarize(sample);
  return t_confidence_interval(s.mean, s.stddev, s.count, alpha);
}

double required_sample_size_infinite(double alpha, double lambda, double cv) {
  check_alpha(alpha);
  PV_EXPECTS(lambda > 0.0, "accuracy lambda must be positive");
  PV_EXPECTS(cv > 0.0, "cv must be positive");
  const double q = z_critical(alpha) / lambda * cv;
  return q * q;
}

std::size_t required_sample_size(double alpha, double lambda, double cv,
                                 std::size_t total_nodes) {
  PV_EXPECTS(total_nodes >= 2, "system must have at least two nodes");
  const double n0 = required_sample_size_infinite(alpha, lambda, cv);
  const double n_real =
      n0 * static_cast<double>(total_nodes) /
      (n0 + static_cast<double>(total_nodes) - 1.0);
  const auto n = static_cast<std::size_t>(std::ceil(n_real - 1e-12));
  return std::clamp<std::size_t>(n, 2, total_nodes);
}

double achievable_accuracy(double alpha, double cv, std::size_t n,
                           std::size_t total_nodes, bool use_t, bool fpc) {
  check_alpha(alpha);
  PV_EXPECTS(cv > 0.0, "cv must be positive");
  PV_EXPECTS(n >= 2 && n <= total_nodes,
             "need 2 <= n <= N to state an accuracy");
  const double quant = use_t
                           ? t_critical(alpha, static_cast<double>(n - 1))
                           : z_critical(alpha);
  double lambda = quant * cv / std::sqrt(static_cast<double>(n));
  if (fpc && total_nodes > 1) {
    lambda *= std::sqrt(static_cast<double>(total_nodes - n) /
                        static_cast<double>(total_nodes - 1));
  }
  return lambda;
}

std::size_t rule_1_64(std::size_t total_nodes) {
  PV_EXPECTS(total_nodes >= 1, "system must have nodes");
  return (total_nodes + 63) / 64;
}

std::size_t rule_2015(std::size_t total_nodes) {
  PV_EXPECTS(total_nodes >= 1, "system must have nodes");
  const std::size_t ten_percent = (total_nodes + 9) / 10;
  return std::min(total_nodes, std::max<std::size_t>(16, ten_percent));
}

double z_vs_t_narrowing(std::size_t n, double alpha) {
  check_alpha(alpha);
  PV_EXPECTS(n >= 2, "need n >= 2");
  const double t = t_critical(alpha, static_cast<double>(n - 1));
  const double z = z_critical(alpha);
  return 1.0 - z / t;
}

PilotRecommendation two_step_pilot(std::span<const double> pilot_sample,
                                   double alpha, double lambda,
                                   std::size_t total_nodes) {
  PV_EXPECTS(pilot_sample.size() >= 2, "pilot needs n >= 2");
  const Summary s = summarize(pilot_sample);
  PV_EXPECTS(s.mean > 0.0, "pilot mean power must be positive");
  PilotRecommendation rec;
  rec.pilot_mean = s.mean;
  rec.pilot_sd = s.stddev;
  rec.pilot_cv = s.cv;
  PV_EXPECTS(rec.pilot_cv > 0.0,
             "pilot sample is constant; cannot recommend a size");
  rec.recommended_n =
      required_sample_size(alpha, lambda, rec.pilot_cv, total_nodes);
  return rec;
}

std::vector<std::vector<std::size_t>> sample_size_table(
    std::span<const double> lambdas, std::span<const double> cvs,
    std::size_t total_nodes, double alpha) {
  PV_EXPECTS(!lambdas.empty() && !cvs.empty(), "table axes must be non-empty");
  std::vector<std::vector<std::size_t>> table;
  table.reserve(lambdas.size());
  for (double lambda : lambdas) {
    std::vector<std::size_t> row;
    row.reserve(cvs.size());
    for (double cv : cvs) {
      row.push_back(required_sample_size(alpha, lambda, cv, total_nodes));
    }
    table.push_back(std::move(row));
  }
  return table;
}

std::vector<double> table5_lambdas() { return {0.005, 0.01, 0.015, 0.02}; }
std::vector<double> table5_cvs() { return {0.02, 0.03, 0.05}; }

}  // namespace pv
