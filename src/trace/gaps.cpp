#include "trace/gaps.hpp"

#include <algorithm>

#include "util/expects.hpp"

namespace pv {

const char* to_string(RepairPolicy p) {
  switch (p) {
    case RepairPolicy::kDrop:
      return "drop";
    case RepairPolicy::kInterpolate:
      return "linear-interpolate";
    case RepairPolicy::kHoldLast:
      return "hold-last";
  }
  return "?";
}

GappyTrace::GappyTrace(PowerTrace trace, std::vector<std::uint8_t> valid)
    : trace_(std::move(trace)), valid_(std::move(valid)) {
  PV_EXPECTS(valid_.size() == trace_.size(),
             "validity mask length does not match trace");
}

GappyTrace GappyTrace::fully_valid(PowerTrace trace) {
  std::vector<std::uint8_t> mask(trace.size(), 1);
  return GappyTrace(std::move(trace), std::move(mask));
}

bool GappyTrace::valid_at(std::size_t i) const {
  PV_EXPECTS(i < valid_.size(), "sample index out of range");
  return valid_[i] != 0;
}

std::size_t GappyTrace::valid_count() const {
  return static_cast<std::size_t>(
      std::count_if(valid_.begin(), valid_.end(),
                    [](std::uint8_t v) { return v != 0; }));
}

void GappyTrace::invalidate(std::size_t i) {
  PV_EXPECTS(i < valid_.size(), "sample index out of range");
  valid_[i] = 0;
}

GapStats GappyTrace::gap_stats() const {
  GapStats s;
  s.total = valid_.size();
  std::size_t run = 0;
  for (std::uint8_t v : valid_) {
    if (v == 0) {
      ++s.missing;
      if (run == 0) ++s.gap_count;
      ++run;
      s.longest_gap = std::max(s.longest_gap, run);
    } else {
      run = 0;
    }
  }
  s.coverage = s.total == 0
                   ? 1.0
                   : static_cast<double>(s.total - s.missing) /
                         static_cast<double>(s.total);
  return s;
}

Watts GappyTrace::mean_power() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < valid_.size(); ++i) {
    if (valid_[i] != 0) {
      sum += trace_.watt_at(i);
      ++n;
    }
  }
  PV_EXPECTS(n > 0, "mean power of a fully invalid trace");
  return Watts{sum / static_cast<double>(n)};
}

Joules GappyTrace::energy() const {
  return Joules{mean_power().value() * trace_.duration().value()};
}

PowerTrace GappyTrace::repaired(RepairPolicy policy) const {
  PV_EXPECTS(valid_count() > 0, "cannot repair a fully invalid trace");
  std::vector<double> w(trace_.watts().begin(), trace_.watts().end());

  if (policy == RepairPolicy::kDrop) {
    const double fill = mean_power().value();
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (valid_[i] == 0) w[i] = fill;
    }
    return PowerTrace(trace_.t0(), trace_.dt(), std::move(w));
  }

  // Index of the previous valid sample for each position (or npos).
  constexpr auto npos = static_cast<std::size_t>(-1);
  std::size_t prev = npos;
  std::vector<std::size_t> prev_valid(w.size(), npos);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (valid_[i] != 0) prev = i;
    prev_valid[i] = prev;
  }
  std::size_t next = npos;
  std::vector<std::size_t> next_valid(w.size(), npos);
  for (std::size_t i = w.size(); i-- > 0;) {
    if (valid_[i] != 0) next = i;
    next_valid[i] = next;
  }

  for (std::size_t i = 0; i < w.size(); ++i) {
    if (valid_[i] != 0) continue;
    const std::size_t p = prev_valid[i];
    const std::size_t q = next_valid[i];
    if (policy == RepairPolicy::kHoldLast) {
      w[i] = p != npos ? w[p] : w[q];  // leading gap: back-fill
      continue;
    }
    // kInterpolate; edge gaps degrade to nearest-valid.
    if (p == npos) {
      w[i] = w[q];
    } else if (q == npos) {
      w[i] = w[p];
    } else {
      const double frac = static_cast<double>(i - p) /
                          static_cast<double>(q - p);
      w[i] = w[p] + frac * (w[q] - w[p]);
    }
  }
  return PowerTrace(trace_.t0(), trace_.dt(), std::move(w));
}

}  // namespace pv
