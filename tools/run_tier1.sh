#!/usr/bin/env bash
# Tier-1 gate in one command: configure, build and run the full ctest
# suite — first the plain build, then (unless PV_SKIP_SANITIZE=1) a
# second build tree with PV_SANITIZE=ON so data races and UB in the
# concurrent collection path fail loudly before review does.
#
# Usage: tools/run_tier1.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "=== tier 1: plain build + ctest ($build_dir) ==="
cmake -B "$build_dir" -S . >/dev/null
cmake --build "$build_dir" -j "$jobs"
# Includes the perf-smoke gate (label `perf`): bench_perf_campaign's
# engine/thread byte-identity contract plus tools/check_perf.sh's diff of
# BENCH_perf.json against the committed baseline.
ctest --test-dir "$build_dir" --output-on-failure -j "$jobs"
# Fleet-SoA smoke at the 1k-node scale: the scalar-vs-SoA byte-identity
# contract on a real campaign (the 10k/100k scenarios stay in the full
# perf gate; the smoke keeps the plain tier fast).
PV_PERF_FLEET_SMOKE=1 PV_PERF_JSON="$build_dir/BENCH_perf_fleet_smoke.json" \
  "$build_dir/bench/bench_perf_fleet"

if [[ "${PV_SKIP_SANITIZE:-0}" == "1" ]]; then
  echo "=== tier 1: sanitizer pass skipped (PV_SKIP_SANITIZE=1) ==="
  exit 0
fi

echo "=== tier 1: sanitized build + ctest (${build_dir}-asan) ==="
cmake -B "${build_dir}-asan" -S . -DPV_SANITIZE=ON >/dev/null
cmake --build "${build_dir}-asan" -j "$jobs"
# Sanitized wall-time ratios are meaningless, so the perf gate is
# excluded here; its identity half is still covered by the plain pass
# and by test_streaming_equivalence (which does run sanitized).
ctest --test-dir "${build_dir}-asan" --output-on-failure -j "$jobs" -LE perf

# Standalone UBSan, non-recoverable: ASan shifts layout and recoverable
# UBSan prints-and-continues, so this third tree is the one that turns
# any UB into a hard test failure.
echo "=== tier 1: UBSan build + ctest (${build_dir}-ubsan) ==="
cmake -B "${build_dir}-ubsan" -S . -DPV_UBSAN=ON >/dev/null
cmake --build "${build_dir}-ubsan" -j "$jobs"
ctest --test-dir "${build_dir}-ubsan" --output-on-failure -j "$jobs" -LE perf

# ThreadSanitizer tree for the genuinely concurrent surfaces: the
# campaign service (soak included), the thread pool, the bounded queue,
# the live streaming assessment (its meter stage fans chunk kernels
# out across worker threads between emission barriers) and the fleet-SoA
# suite (sharded provision + fused batch/live drivers across thread
# counts).  TSan finds the races ASan cannot; the deterministic numeric
# suites gain nothing from it, so the filter keeps this pass fast.
# Wall-time-sensitive gates are excluded as in the other trees.
echo "=== tier 1: TSan build + concurrency ctest (${build_dir}-tsan) ==="
cmake -B "${build_dir}-tsan" -S . -DPV_TSAN=ON >/dev/null
cmake --build "${build_dir}-tsan" -j "$jobs"
ctest --test-dir "${build_dir}-tsan" --output-on-failure -j "$jobs" \
  -R 'ThreadPool|ParallelFor|DefaultPool|BoundedQueue|CampaignService|ServiceChaos|Collector|StreamingAssessment|FleetSoA' \
  -LE perf

echo "=== tier 1: all green ==="
