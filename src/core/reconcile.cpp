#include "core/reconcile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/descriptive.hpp"
#include "stats/robust.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kLn10 = 2.302585092994046;

bool finite(double x) { return std::isfinite(x); }

std::vector<double> finite_of(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (finite(x)) out.push_back(x);
  }
  return out;
}

double median_finite(std::span<const double> xs) {
  const std::vector<double> f = finite_of(xs);
  if (f.empty()) return kNaN;
  return median(f);
}

/// Pearson correlation of the child series shifted by `lag` windows against
/// the reference, over the overlapping finite pairs.  NaN when fewer than
/// three pairs overlap or either side is constant.
double lagged_correlation(std::span<const double> child,
                          std::span<const double> reference, int lag) {
  RunningStats a;
  RunningStats b;
  std::vector<std::pair<double, double>> pairs;
  const auto n = static_cast<std::ptrdiff_t>(reference.size());
  for (std::ptrdiff_t w = 0; w < n; ++w) {
    const std::ptrdiff_t cw = w + lag;
    if (cw < 0 || cw >= static_cast<std::ptrdiff_t>(child.size())) continue;
    const double x = child[static_cast<std::size_t>(cw)];
    const double y = reference[static_cast<std::size_t>(w)];
    if (!finite(x) || !finite(y)) continue;
    pairs.emplace_back(x, y);
    a.add(x);
    b.add(y);
  }
  if (pairs.size() < 3) return kNaN;
  const double sa = a.stddev();
  const double sb = b.stddev();
  if (sa <= 0.0 || sb <= 0.0) return kNaN;
  double cov = 0.0;
  for (const auto& [x, y] : pairs) cov += (x - a.mean()) * (y - b.mean());
  cov /= static_cast<double>(pairs.size() - 1);
  return cov / (sa * sb);
}

/// Best SSE of a single-changepoint two-mean fit to `ys` (already compacted
/// to finite values, in window order).
double best_step_sse(std::span<const double> ys) {
  const std::size_t n = ys.size();
  if (n < 4) return std::numeric_limits<double>::infinity();
  std::vector<double> prefix(n + 1, 0.0);
  std::vector<double> prefix2(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + ys[i];
    prefix2[i + 1] = prefix2[i] + ys[i] * ys[i];
  }
  const auto segment_sse = [&](std::size_t lo, std::size_t hi) {
    // SSE of [lo, hi) around its own mean.
    const double cnt = static_cast<double>(hi - lo);
    const double s = prefix[hi] - prefix[lo];
    const double s2 = prefix2[hi] - prefix2[lo];
    return std::max(0.0, s2 - s * s / cnt);
  };
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 2; c + 2 <= n; ++c) {
    best = std::min(best, segment_sse(0, c) + segment_sse(c, n));
  }
  return best;
}

/// SSE of a robust linear fit (Theil-Sen slope, median intercept) to `ys`.
double linear_fit_sse(std::span<const double> ys, double slope) {
  std::vector<double> detrended;
  detrended.reserve(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) {
    detrended.push_back(ys[i] - slope * static_cast<double>(i));
  }
  const double intercept = median(detrended);
  double sse = 0.0;
  for (double d : detrended) {
    const double r = d - intercept;
    sse += r * r;
  }
  return sse;
}

}  // namespace

const char* to_string(MeterVerdict v) {
  switch (v) {
    case MeterVerdict::kTrusted: return "trusted";
    case MeterVerdict::kDrifting: return "drifting";
    case MeterVerdict::kMiscalibrated: return "miscalibrated";
    case MeterVerdict::kUnitError: return "unit-error";
    case MeterVerdict::kClockSkewed: return "clock-skewed";
  }
  return "unknown";
}

std::vector<double> hierarchy_residuals(
    std::span<const double> parent,
    const std::vector<std::vector<double>>& children, double child_scale) {
  std::vector<double> out(parent.size(), kNaN);
  for (std::size_t w = 0; w < parent.size(); ++w) {
    const double p = parent[w];
    if (!finite(p) || p <= 0.0) continue;
    double sum = 0.0;
    bool ok = true;
    for (const auto& child : children) {
      if (w >= child.size() || !finite(child[w])) {
        ok = false;
        break;
      }
      sum += child[w];
    }
    if (!ok) continue;
    out[w] = (child_scale * sum - p) / p;
  }
  return out;
}

CusumResult cusum_detect(std::span<const double> standardized, double k,
                         double h) {
  PV_EXPECTS(k >= 0.0 && h > 0.0, "CUSUM needs k >= 0 and h > 0");
  CusumResult res;
  double hi = 0.0;
  double lo = 0.0;
  for (std::size_t i = 0; i < standardized.size(); ++i) {
    const double x = standardized[i];
    if (!finite(x)) continue;
    hi = std::max(0.0, hi + x - k);
    lo = std::max(0.0, lo - x - k);
    const double stat = std::max(hi, lo);
    if (stat > res.max_stat) res.max_stat = stat;
    if (!res.crossed && stat > h) {
      res.crossed = true;
      res.first_cross = i;
    }
  }
  return res;
}

double theil_sen_slope(std::span<const double> xs) {
  std::vector<std::pair<std::size_t, double>> pts;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (finite(xs[i])) pts.emplace_back(i, xs[i]);
  }
  PV_EXPECTS(pts.size() >= 2, "Theil-Sen needs >= 2 finite points");
  std::vector<double> slopes;
  slopes.reserve(pts.size() * (pts.size() - 1) / 2);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double dx =
          static_cast<double>(pts[j].first) - static_cast<double>(pts[i].first);
      slopes.push_back((pts[j].second - pts[i].second) / dx);
    }
  }
  return median(slopes);
}

ReconcileReport reconcile_meters(const std::vector<MeterSeries>& meters,
                                 const std::vector<HierarchyCheck>& checks,
                                 const ReconcilePolicy& policy) {
  ReconcileReport report;
  report.meters_checked = meters.size();
  report.corrected_sigma = policy.corrected_sigma;

  std::size_t windows = 0;
  for (const auto& m : meters) windows = std::max(windows, m.means_w.size());
  for (const auto& m : meters) {
    PV_EXPECTS(m.means_w.size() == windows,
               "all meter series must share one window count");
  }

  report.diagnoses.reserve(meters.size());
  for (const auto& m : meters) {
    MeterDiagnosis d;
    d.meter_id = m.meter_id;
    report.diagnoses.push_back(d);
  }
  std::sort(report.diagnoses.begin(), report.diagnoses.end(),
            [](const MeterDiagnosis& a, const MeterDiagnosis& b) {
              return a.meter_id < b.meter_id;
            });

  const bool cohort_viable = meters.size() >= 3 && windows >= 4;
  if (cohort_viable) {
    // Reference series: cross-meter median per window.  Robust to a small
    // byzantine minority — a x1000 meter cannot move the median.
    std::vector<double> reference(windows, kNaN);
    {
      std::vector<double> column;
      for (std::size_t w = 0; w < windows; ++w) {
        column.clear();
        for (const auto& m : meters) {
          const double x = m.means_w[w];
          if (finite(x) && x > 0.0) column.push_back(x);
        }
        if (!column.empty()) reference[w] = median(column);
      }
    }

    // Per-meter log-ratio series and its median level.
    std::vector<std::vector<double>> log_ratio(meters.size());
    std::vector<double> med(meters.size(), kNaN);
    for (std::size_t i = 0; i < meters.size(); ++i) {
      auto& r = log_ratio[i];
      r.assign(windows, kNaN);
      for (std::size_t w = 0; w < windows; ++w) {
        const double x = meters[i].means_w[w];
        const double ref = reference[w];
        if (finite(x) && x > 0.0 && finite(ref) && ref > 0.0) {
          r[w] = std::log(x / ref);
        }
      }
      med[i] = median_finite(r);
    }

    // Cohort level and spread of the median log-ratios.  The spread is
    // dominated by honest fleet variability, so it only backstops gross
    // static errors; the per-meter CUSUM below (where fleet level cancels)
    // is the sensitive detector.
    const std::vector<double> med_finite = finite_of(med);
    const double cohort_level = median(med_finite);
    const double cohort_spread =
        std::max(1e-4, median_abs_deviation(med_finite));

    // Window-to-window noise: per-meter MAD of the level-removed ratios,
    // summarized across the cohort by median (byzantine meters inflate
    // their own MAD, not the cohort's).
    std::vector<double> per_meter_noise;
    std::vector<std::vector<double>> deviation(meters.size());
    for (std::size_t i = 0; i < meters.size(); ++i) {
      auto& dev = deviation[i];
      dev.assign(windows, kNaN);
      if (!finite(med[i])) continue;
      for (std::size_t w = 0; w < windows; ++w) {
        if (finite(log_ratio[i][w])) dev[w] = log_ratio[i][w] - med[i];
      }
      const std::vector<double> f = finite_of(dev);
      if (f.size() >= 4) per_meter_noise.push_back(median_abs_deviation(f));
    }
    const double noise_sigma =
        per_meter_noise.empty()
            ? 1e-5
            : std::max(1e-5, median(per_meter_noise));

    const double ref_cv = [&] {
      const std::vector<double> f = finite_of(reference);
      if (f.size() < 3) return 0.0;
      const Summary s = summarize(f);
      return s.cv;
    }();

    for (auto& d : report.diagnoses) {
      const std::size_t i = [&] {
        for (std::size_t k = 0; k < meters.size(); ++k) {
          if (meters[k].meter_id == d.meter_id) return k;
        }
        return meters.size();
      }();
      PV_EXPECTS(i < meters.size(), "diagnosis refers to a known meter");
      if (!finite(med[i])) continue;  // fully lost meter: nothing to judge
      const std::vector<double> dev_f = finite_of(deviation[i]);
      if (dev_f.size() < 4) continue;

      d.robust_z = (med[i] - cohort_level) / cohort_spread;
      d.gain_estimate = std::exp(med[i] - cohort_level);
      d.drift_per_window = theil_sen_slope(deviation[i]);

      // 1. Power-of-ten unit error: exactly invertible, checked first.
      const double u10 = (med[i] - cohort_level) / kLn10;
      const double p = std::round(u10);
      if (p != 0.0 && std::abs(u10 - p) <= policy.unit_log10_tol) {
        d.verdict = MeterVerdict::kUnitError;
        d.correction_scale = std::pow(10.0, p);
        for (std::size_t w = 0; w < windows; ++w) {
          if (finite(log_ratio[i][w])) {
            d.detection_window = w;
            break;
          }
        }
        continue;
      }

      // 2. Clock skew: the series matches the reference only at a window
      //    offset.  Meaningful only when the workload has structure.
      if (ref_cv > policy.min_signal_cv && policy.max_lag > 0) {
        const double c0 = lagged_correlation(meters[i].means_w, reference, 0);
        int best_lag = 0;
        double best_corr = finite(c0) ? c0 : -1.0;
        const int max_lag = static_cast<int>(policy.max_lag);
        for (int lag = -max_lag; lag <= max_lag; ++lag) {
          if (lag == 0) continue;
          const double c = lagged_correlation(meters[i].means_w, reference, lag);
          if (finite(c) && c > best_corr) {
            best_corr = c;
            best_lag = lag;
          }
        }
        if (best_lag != 0 && finite(c0) &&
            best_corr - c0 > policy.lag_min_gain && best_corr > 0.5) {
          d.verdict = MeterVerdict::kClockSkewed;
          d.clock_lag = best_lag;
          d.detection_window = static_cast<std::size_t>(std::abs(best_lag));
          continue;
        }
      }

      // 3. CUSUM on the meter's own standardized deviations: catches drift
      //    and recalibration steps while they are still far too small to
      //    move the cohort statistics.
      std::vector<double> standardized(windows, kNaN);
      for (std::size_t w = 0; w < windows; ++w) {
        if (finite(deviation[i][w])) {
          standardized[w] = deviation[i][w] / noise_sigma;
        }
      }
      const CusumResult cs =
          cusum_detect(standardized, policy.cusum_k, policy.cusum_h);
      d.cusum_max = cs.max_stat;
      // Practical-significance gate: estimate the head-to-tail shift of the
      // deviation series.  A statistically detectable but sub-min_effect
      // wobble is left alone — quarantining it would only cost coverage.
      const double effect = [&] {
        const std::size_t q = std::max<std::size_t>(2, dev_f.size() / 4);
        if (dev_f.size() < 2 * q) return 0.0;
        const std::vector<double> head(dev_f.begin(),
                                       dev_f.begin() + static_cast<std::ptrdiff_t>(q));
        const std::vector<double> tail(dev_f.end() - static_cast<std::ptrdiff_t>(q),
                                       dev_f.end());
        return std::abs(median(tail) - median(head));
      }();
      if (cs.crossed && effect >= policy.min_effect) {
        // Drift or step?  Compare a robust linear fit against the best
        // single-changepoint two-mean fit on the compacted deviations.
        const double sse_linear = linear_fit_sse(dev_f, theil_sen_slope(dev_f));
        const double sse_step = best_step_sse(dev_f);
        d.verdict = sse_linear <= sse_step ? MeterVerdict::kDrifting
                                           : MeterVerdict::kMiscalibrated;
        d.detection_window = cs.first_cross;
        continue;
      }

      // 4. Robust-z backstop for gross static miscalibration that neither
      //    looks like a power of ten nor moves within the run.
      if (std::abs(d.robust_z) > policy.z_threshold) {
        d.verdict = MeterVerdict::kMiscalibrated;
        for (std::size_t w = 0; w < windows; ++w) {
          if (finite(log_ratio[i][w])) {
            d.detection_window = w;
            break;
          }
        }
      }
    }

    // Apply policy: unit errors are exactly invertible, everything else is
    // quarantined.
    double latency_sum = 0.0;
    std::size_t convicted = 0;
    for (auto& d : report.diagnoses) {
      if (d.verdict == MeterVerdict::kTrusted) continue;
      ++convicted;
      latency_sum += static_cast<double>(d.detection_window);
      if (d.verdict == MeterVerdict::kUnitError && policy.correct_unit_errors) {
        d.corrected = true;
        ++report.meters_corrected;
      } else {
        d.quarantined = true;
        ++report.meters_quarantined;
      }
    }
    if (convicted > 0) {
      report.mean_detection_latency_windows =
          latency_sum / static_cast<double>(convicted);
    }

    // Hierarchy residual checks: confirm the verdicts reconciled the tree,
    // and indict the parent when the children agree but it does not.
    const std::vector<double>& ref_series = reference;
    for (const auto& check : checks) {
      HierarchyResidual hr;
      hr.label = check.label;
      const std::vector<double> before = hierarchy_residuals(
          check.parent_means_w, check.child_means_w, check.child_scale);
      for (double r : before) {
        if (finite(r)) hr.worst_before = std::max(hr.worst_before, std::abs(r));
      }

      // Rebuild the child set as the campaign will use it: corrected
      // children undone exactly, quarantined children imputed with the
      // cohort-typical series (reference x cohort level) so the residual
      // measures remaining disagreement, not the hole quarantine left.
      std::vector<std::vector<double>> after_children = check.child_means_w;
      bool any_child_convicted = false;
      for (std::size_t c = 0; c < check.child_ids.size(); ++c) {
        const auto it = std::find_if(
            report.diagnoses.begin(), report.diagnoses.end(),
            [&](const MeterDiagnosis& d) {
              return d.meter_id == check.child_ids[c];
            });
        if (it == report.diagnoses.end()) continue;
        if (it->corrected) {
          any_child_convicted = true;
          for (double& x : after_children[c]) {
            if (finite(x)) x /= it->correction_scale;
          }
        } else if (it->quarantined) {
          any_child_convicted = true;
          for (std::size_t w = 0; w < after_children[c].size(); ++w) {
            const double ref = w < ref_series.size() ? ref_series[w] : kNaN;
            after_children[c][w] =
                finite(ref) ? ref * std::exp(cohort_level) : kNaN;
          }
        }
      }
      const std::vector<double> after = hierarchy_residuals(
          check.parent_means_w, after_children, check.child_scale);
      for (double r : after) {
        if (finite(r)) hr.worst_after = std::max(hr.worst_after, std::abs(r));
      }

      // Children honest but the level still refuses to add up: the parent
      // meter itself is the liar.
      const double median_before = [&] {
        std::vector<double> mags;
        for (double r : before) {
          if (finite(r)) mags.push_back(std::abs(r));
        }
        return mags.empty() ? 0.0 : median(mags);
      }();
      if (!any_child_convicted && median_before > policy.parent_residual_floor) {
        hr.parent_distrusted = true;
        ++report.parents_distrusted;
      }

      report.worst_residual_before =
          std::max(report.worst_residual_before, hr.worst_before);
      if (!hr.parent_distrusted) {
        report.worst_residual_after =
            std::max(report.worst_residual_after, hr.worst_after);
      }
      report.residuals.push_back(std::move(hr));
    }
  } else {
    // Too small for cohort statistics: still report the hierarchy
    // residuals so a lying parent over a tiny fleet is at least visible.
    for (const auto& check : checks) {
      HierarchyResidual hr;
      hr.label = check.label;
      const std::vector<double> res = hierarchy_residuals(
          check.parent_means_w, check.child_means_w, check.child_scale);
      for (double r : res) {
        if (finite(r)) hr.worst_before = std::max(hr.worst_before, std::abs(r));
      }
      hr.worst_after = hr.worst_before;
      if (hr.worst_before > policy.parent_residual_floor) {
        hr.parent_distrusted = true;
        ++report.parents_distrusted;
      }
      report.worst_residual_before =
          std::max(report.worst_residual_before, hr.worst_before);
      report.worst_residual_after =
          std::max(report.worst_residual_after, hr.worst_after);
      report.residuals.push_back(std::move(hr));
    }
  }

  return report;
}

}  // namespace pv
