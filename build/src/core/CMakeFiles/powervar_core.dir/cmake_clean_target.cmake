file(REMOVE_RECURSE
  "libpowervar_core.a"
)
