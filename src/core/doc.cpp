#include "core/doc.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/expects.hpp"

namespace pv {

namespace {

/// Recursive-descent RFC 8259 parser over a byte string.  Builds values
/// through Json's public API only; duplicate-key detection rides on
/// Json::find so parser and serializer agree on key identity.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != s_.size()) fail("trailing bytes after the JSON value");
    return v;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) +
                         ": " + why);
  }

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  char next() {
    if (eof()) fail("unexpected end of input");
    return s_[pos_++];
  }
  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }
  void expect_literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (eof() || s_[pos_] != *p) {
        fail(std::string("invalid literal (expected '") + lit + "')");
      }
      ++pos_;
    }
  }

  Json parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than 64 levels");
    if (eof()) fail("unexpected end of input");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        expect_literal("true");
        return Json(true);
      case 'f':
        expect_literal("false");
        return Json(false);
      case 'n':
        expect_literal("null");
        return Json{};
      default:
        return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected an object key string");
      std::string key = parse_string();
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      skip_ws();
      if (next() != ':') fail("expected ':' after object key");
      skip_ws();
      obj[key] = parse_value(depth + 1);
      skip_ws();
      const char c = next();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(std::size_t depth) {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      skip_ws();
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = next();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(s_[pos_++]);
      if (c == '"') return out;
      if (c < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        continue;
      }
      const char e = next();
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low half must follow.
            if (eof() || next() != '\\' || eof() || next() != 'u') {
              fail("lone high surrogate");
            }
            const unsigned lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return v;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    // Scan the exact JSON number grammar (strtod alone would also accept
    // "inf", "nan" and hex floats), then convert the validated span.
    const std::size_t begin = pos_;
    bool integral = true;
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) fail("invalid number");
    if (peek() == '0') {
      ++pos_;
    } else if (peek() >= '1' && peek() <= '9') {
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    } else {
      fail("invalid number");
    }
    if (!eof() && peek() == '.') {
      integral = false;
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digits must follow the decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digits must follow the exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string token = s_.substr(begin, pos_ - begin);
    if (integral) {
      errno = 0;
      if (token[0] == '-') {
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && *end == '\0') return Json(v);
      } else {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(token.c_str(), &end, 10);
        if (errno != ERANGE && *end == '\0') {
          constexpr auto kMaxLL = static_cast<unsigned long long>(
              std::numeric_limits<long long>::max());
          if (v <= kMaxLL) return Json(static_cast<long long>(v));
          return Json(v);
        }
      }
      // Integral but outside 64 bits: fall through to a double.
    }
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("invalid number");
    if (!std::isfinite(v)) fail("number outside the double range");
    return Json(v);
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return JsonParser(text).parse_document();
}

bool Json::bool_value() const {
  PV_EXPECTS(kind_ == Kind::kBool, "Json::bool_value on a non-bool");
  return bool_;
}

double Json::number_value() const {
  switch (kind_) {
    case Kind::kInt:
      return static_cast<double>(int_);
    case Kind::kUint:
      return static_cast<double>(uint_);
    case Kind::kNumber:
      return num_;
    default:
      PV_EXPECTS(false, "Json::number_value on a non-number");
      return 0.0;
  }
}

const std::string& Json::string_value() const {
  PV_EXPECTS(kind_ == Kind::kString, "Json::string_value on a non-string");
  return str_;
}

const std::vector<Json>& Json::items() const {
  PV_EXPECTS(kind_ == Kind::kArray, "Json::items on a non-array");
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  PV_EXPECTS(kind_ == Kind::kObject, "Json::members on a non-object");
  return members_;
}

const Json* Json::find(const std::string& key) const {
  PV_EXPECTS(kind_ == Kind::kObject, "Json::find on a non-object");
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json v) {
  PV_EXPECTS(kind_ == Kind::kArray, "Json::push_back on a non-array");
  items_.push_back(std::move(v));
}

Json& Json::operator[](const std::string& key) {
  PV_EXPECTS(kind_ == Kind::kObject, "Json::operator[] on a non-object");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json{});
  return members_.back().second;
}

std::size_t Json::size() const {
  switch (kind_) {
    case Kind::kArray:
      return items_.size();
    case Kind::kObject:
      return members_.size();
    default:
      return 0;
  }
}

std::string Json::number_repr(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string Json::quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kInt:
      out += std::to_string(int_);
      break;
    case Kind::kUint:
      out += std::to_string(uint_);
      break;
    case Kind::kNumber:
      out += number_repr(num_);
      break;
    case Kind::kString:
      out += quote(str_);
      break;
    case Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        items_[i].dump_to(out);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += quote(members_[i].first);
        out += ':';
        members_[i].second.dump_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void DocBlock::text(std::string raw) {
  entries.push_back(DocEntry{std::move(raw), {}, Json{}});
}

void DocBlock::field(std::string field_key, Json value, std::string rendered) {
  entries.push_back(
      DocEntry{std::move(rendered), std::move(field_key), std::move(value)});
}

Json DocBlock::to_json() const {
  Json obj = Json::object();
  for (const DocEntry& e : entries) {
    if (e.key.empty()) continue;
    obj[e.key] = e.value;
  }
  return obj;
}

DocBlock& Document::block(std::string key, std::string heading) {
  blocks.push_back(DocBlock{std::move(key), std::move(heading), {}});
  return blocks.back();
}

std::string render_text(const Document& doc) {
  std::string out;
  for (const DocBlock& b : doc.blocks) {
    out += b.heading;
    for (const DocEntry& e : b.entries) out += e.text;
  }
  return out;
}

std::string render_json(const Document& doc) {
  Json root = Json::object();
  root["schema"] = doc.schema;
  for (const DocBlock& b : doc.blocks) {
    Json obj = b.to_json();
    if (obj.size() == 0) continue;
    root[b.key] = std::move(obj);
  }
  return root.dump() + "\n";
}

}  // namespace pv
