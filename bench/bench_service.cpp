// Throughput bench for the resident campaign service (src/service):
// campaigns/sec through CampaignService, cold provision cache vs warm,
// plus the round-2 hardening scenarios (persistent-cache restart and
// tenant fair-share).
//
// Four scenarios:
//
//   service_cold          PV_SERVICE_REQS requests, 4 workers, every
//                         request names a distinct ScenarioSpec (seeds
//                         differ) — every request pays a Provision build;
//   service_warm          same batch sharing one ScenarioSpec under
//                         distinct ids — only the first request builds,
//                         the rest hit the content-addressed cache;
//   service_restart_warm  an untimed run spills the shared artifact to a
//                         persistent --cache-dir, then a FRESH service on
//                         the same directory serves the timed batch: zero
//                         Provision builds (one disk load, the rest
//                         memory hits) — the warm-restart contract;
//   service_fair          a flooding tenant 10x two steady tenants on 2
//                         workers with a roomy queue: deficit-weighted
//                         fair-share must interleave the steady lanes
//                         ahead of the backlog (bounded dispatch order)
//                         without shedding anyone.
//
// Best-of-PV_PERF_REPS wall time per scenario, a fresh service per rep
// (so the cache genuinely starts cold/warms up inside the timed window).
// Contracts are enforced in-binary (exit 1 on violation):
//
//   1. every response in every rep is `ok` — a bench that sheds or
//      faults is measuring the wrong thing;
//   2. the cold run's cache counts exactly PV_SERVICE_REQS misses and
//      zero hits (no accidental sharing);
//   3. the warm run counts exactly one miss and PV_SERVICE_REQS - 1
//      hits — the deterministic proof that warm requests skip Provision
//      (single-flight stats are interleaving-independent by design);
//   4. the restart-warm run counts zero misses, one disk hit and
//      PV_SERVICE_REQS - 1 memory hits — the proof that a restarted
//      service revalidates the spilled artifact instead of rebuilding;
//   5. the fair run completes every request with the steady tenants'
//      worst dispatch order bounded, and the flood dispatched last.
//
// Results land in BENCH_service.json (override with PV_PERF_JSON) for
// tools/check_perf.sh, which gates on the warm-over-cold speedup
// against the committed bench/BENCH_service_baseline.json.  The ratio —
// not absolute campaigns/sec — is the gated number: both halves are
// measured back-to-back under identical machine load, so the ratio
// survives noisy CI boxes where a millisecond-scale batch time cannot.
// The two hardening scenarios are contract-gated, not time-gated.
//
// Env overrides: PV_SERVICE_REQS (12), PV_SERVICE_NODES (240),
// PV_PERF_REPS (5), PV_PERF_JSON.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "util/table.hpp"

namespace {

using namespace pv;

ServiceRequest make_request(bool cold, std::size_t i, std::size_t nodes) {
  ServiceRequest req;
  req.id = (cold ? "cold-" : "warm-") + std::to_string(i);
  req.nodes = nodes;
  // Cold: distinct seeds -> distinct ScenarioSpec fingerprints -> every
  // request provisions.  Warm: one shared seed -> one fingerprint.
  req.seed = cold ? 1000 + i : 1000;
  req.interval_s = 10.0;
  return req;
}

struct BatchResult {
  std::string name;
  std::size_t requests = 0;
  double best_ms = 0.0;
  double campaigns_per_sec = 0.0;
  std::size_t cache_hits = 0;    // from the final rep (deterministic)
  std::size_t cache_misses = 0;
  std::size_t cache_disk_hits = 0;
  std::size_t steady_max_order = 0;  // service_fair only
  std::size_t flood_max_order = 0;   // service_fair only
  bool all_ok = true;
  // The scenario's hard invariant (cache accounting for the cache
  // scenarios, bounded dispatch order for service_fair) — gated by
  // tools/check_perf.sh under this name.
  bool cache_contract = true;
};

BatchResult run_batch(const std::string& name, bool cold,
                      std::size_t requests, std::size_t nodes,
                      std::size_t reps) {
  BatchResult out;
  out.name = name;
  out.requests = requests;
  out.best_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    ServiceConfig config;
    config.workers = 4;
    config.max_queue = requests;
    config.cache_capacity = requests;  // no capacity-eviction noise
    CampaignService service(config);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::size_t> tickets;
    tickets.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      const AdmissionVerdict verdict =
          service.submit(make_request(cold, i, nodes));
      if (verdict.decision == Admission::kShed) out.all_ok = false;
      tickets.push_back(verdict.ticket);
    }
    for (const std::size_t ticket : tickets) {
      if (service.wait(ticket).code != ResponseCode::kOk) out.all_ok = false;
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.best_ms = std::min(
        out.best_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());

    const DrainReport report = service.drain();
    out.cache_hits = report.cache.hits;
    out.cache_misses = report.cache.misses;
    // Single-flight builder/waiter accounting makes these exact under
    // any interleaving — this IS the skip-Provision proof.
    const std::size_t want_misses = cold ? requests : 1;
    if (report.cache.misses != want_misses ||
        report.cache.hits != requests - want_misses) {
      out.cache_contract = false;
    }
  }
  out.campaigns_per_sec =
      static_cast<double>(requests) / (out.best_ms / 1e3);
  return out;
}

// service_restart_warm: spill the shared artifact to a persistent cache
// directory, then time a fresh service on the same directory.  The timed
// batch must run zero Provision builds: the first acquire revalidates the
// CRC-framed spill from disk, every later request is a memory hit.
BatchResult run_restart_warm(std::size_t requests, std::size_t nodes,
                             std::size_t reps) {
  namespace fs = std::filesystem;
  BatchResult out;
  out.name = "service_restart_warm";
  out.requests = requests;
  out.best_ms = 1e300;
  const fs::path dir = fs::temp_directory_path() / "pv_bench_service_cache";
  for (std::size_t rep = 0; rep < reps; ++rep) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);

    ServiceConfig config;
    config.workers = 4;
    config.max_queue = requests;
    config.cache_capacity = requests;
    config.cache_dir = dir.string();

    {  // Untimed first life: one build, one spill.
      CampaignService warmup(config);
      const AdmissionVerdict verdict =
          warmup.submit(make_request(false, 0, nodes));
      if (warmup.wait(verdict.ticket).code != ResponseCode::kOk) {
        out.all_ok = false;
      }
      const DrainReport pre = warmup.drain();
      if (pre.cache.misses != 1 || pre.cache.spills != 1) {
        out.cache_contract = false;
      }
    }

    // Second life: a fresh service, warm only through the directory.
    CampaignService service(config);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::size_t> tickets;
    tickets.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      const AdmissionVerdict verdict =
          service.submit(make_request(false, i, nodes));
      if (verdict.decision == Admission::kShed) out.all_ok = false;
      tickets.push_back(verdict.ticket);
    }
    for (const std::size_t ticket : tickets) {
      if (service.wait(ticket).code != ResponseCode::kOk) out.all_ok = false;
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.best_ms = std::min(
        out.best_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());

    const DrainReport report = service.drain();
    out.cache_hits = report.cache.hits;
    out.cache_misses = report.cache.misses;
    out.cache_disk_hits = report.cache.disk_hits;
    if (report.cache.misses != 0 || report.cache.disk_hits != 1 ||
        report.cache.hits != requests - 1 || report.cache.spills != 0) {
      out.cache_contract = false;
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
  out.campaigns_per_sec =
      static_cast<double>(requests) / (out.best_ms / 1e3);
  return out;
}

// service_fair: one tenant floods 10x two steady tenants on 2 workers
// with a queue roomy enough that nobody sheds.  Deficit-weighted
// fair-share must interleave the steady lanes ahead of the backlog: the
// steady tenants' worst dispatch order stays bounded (they would sit at
// orders 21..24 under FIFO) while the flood still finishes last.
BatchResult run_fair(std::size_t nodes, std::size_t reps) {
  constexpr std::size_t kFlood = 20;
  constexpr std::size_t kSteadyEach = 2;
  constexpr std::size_t kTotal = kFlood + 2 * kSteadyEach;
  // Up to two flood requests can be popped while submission is still in
  // flight; every later steady dispatch is pure fair-share interleave.
  constexpr std::size_t kSteadyOrderBound = 14;

  BatchResult out;
  out.name = "service_fair";
  out.requests = kTotal;
  out.best_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    ServiceConfig config;
    config.workers = 2;
    config.max_queue = kTotal * 2;
    config.cache_capacity = 8;
    CampaignService service(config);

    const auto request_for = [nodes](const std::string& tenant,
                                     std::size_t i, std::uint64_t seed) {
      ServiceRequest req;
      req.id = tenant + "-" + std::to_string(i);
      req.tenant = tenant;
      req.nodes = nodes;
      req.seed = seed + i;
      req.interval_s = 10.0;
      return req;
    };

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::size_t> flood_tickets;
    std::vector<std::size_t> steady_tickets;
    for (std::size_t i = 0; i < kFlood; ++i) {
      flood_tickets.push_back(
          service.submit(request_for("flood", i, 2000)).ticket);
    }
    for (std::size_t i = 0; i < kSteadyEach; ++i) {
      steady_tickets.push_back(
          service.submit(request_for("steady-a", i, 3000)).ticket);
      steady_tickets.push_back(
          service.submit(request_for("steady-b", i, 4000)).ticket);
    }

    std::size_t steady_max = 0;
    std::size_t flood_max = 0;
    for (const std::size_t ticket : steady_tickets) {
      const ServiceResponse resp = service.wait(ticket);
      if (resp.code != ResponseCode::kOk) out.all_ok = false;
      steady_max = std::max(steady_max, resp.dispatch_order);
    }
    for (const std::size_t ticket : flood_tickets) {
      const ServiceResponse resp = service.wait(ticket);
      if (resp.code != ResponseCode::kOk) out.all_ok = false;
      flood_max = std::max(flood_max, resp.dispatch_order);
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.best_ms = std::min(
        out.best_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());

    out.steady_max_order = steady_max;
    out.flood_max_order = flood_max;
    if (steady_max > kSteadyOrderBound || flood_max != kTotal) {
      out.cache_contract = false;
    }

    const DrainReport report = service.drain();
    out.cache_hits = report.cache.hits;
    out.cache_misses = report.cache.misses;
    if (report.shed != 0) out.all_ok = false;
  }
  out.campaigns_per_sec =
      static_cast<double>(kTotal) / (out.best_ms / 1e3);
  return out;
}

void write_json(const std::string& path,
                const std::vector<BatchResult>& scenarios, std::size_t reps,
                double warm_over_cold) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n  \"schema\": \"powervar-bench-service-v1\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"warm_over_cold\": " << warm_over_cold << ",\n"
      << "  \"scenarios\": {\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const BatchResult& s = scenarios[i];
    out << "    \"" << s.name << "\": {\n"
        << "      \"requests\": " << s.requests << ",\n"
        << "      \"best_ms\": " << s.best_ms << ",\n"
        << "      \"campaigns_per_sec\": " << s.campaigns_per_sec << ",\n"
        << "      \"cache_hits\": " << s.cache_hits << ",\n"
        << "      \"cache_misses\": " << s.cache_misses << ",\n"
        << "      \"cache_disk_hits\": " << s.cache_disk_hits << ",\n";
    if (s.name == "service_fair") {
      out << "      \"steady_max_order\": " << s.steady_max_order << ",\n"
          << "      \"flood_max_order\": " << s.flood_max_order << ",\n";
    }
    out << "      \"all_ok\": " << (s.all_ok ? "true" : "false") << ",\n"
        << "      \"cache_contract\": "
        << (s.cache_contract ? "true" : "false") << "\n    }"
        << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main() {
  bench::banner("service-throughput",
                "campaign service, cold vs warm provision cache");

  const std::size_t requests = bench::env_size("PV_SERVICE_REQS", 12);
  const std::size_t nodes = bench::env_size("PV_SERVICE_NODES", 240);
  const std::size_t reps = bench::env_size("PV_PERF_REPS", 5);
  const char* json_env = std::getenv("PV_PERF_JSON");
  const std::string json_path =
      (json_env != nullptr && *json_env != '\0') ? json_env
                                                 : "BENCH_service.json";

  std::vector<BatchResult> scenarios;
  scenarios.push_back(
      run_batch("service_cold", true, requests, nodes, reps));
  scenarios.push_back(
      run_batch("service_warm", false, requests, nodes, reps));
  scenarios.push_back(run_restart_warm(requests, nodes, reps));
  scenarios.push_back(run_fair(nodes, reps));

  TextTable t({"scenario", "requests", "batch", "campaigns/s", "hits",
               "misses", "all ok"});
  const auto ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f ms", v);
    return std::string(buf);
  };
  const auto rate = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };
  for (const BatchResult& s : scenarios) {
    t.add_row({s.name, std::to_string(s.requests), ms(s.best_ms),
               rate(s.campaigns_per_sec), std::to_string(s.cache_hits),
               std::to_string(s.cache_misses), s.all_ok ? "yes" : "NO"});
  }
  std::cout << t.render();
  const double warm_over_cold = scenarios[0].best_ms / scenarios[1].best_ms;
  std::cout << "\nwarm over cold: " << warm_over_cold << "x ("
            << requests - 1 << " Provision builds skipped)\n";
  std::cout << "restart-warm: " << scenarios[2].cache_disk_hits
            << " disk hit / " << scenarios[2].cache_misses
            << " Provision builds on the second service life\n";
  std::cout << "fair-share: steady tenants' worst dispatch order "
            << scenarios[3].steady_max_order << " of "
            << scenarios[3].requests << " (flood finished at "
            << scenarios[3].flood_max_order << ")\n";

  write_json(json_path, scenarios, reps, warm_over_cold);
  std::cout << "wrote " << json_path << " (best of " << reps
            << " reps per scenario)\n";

  bool ok = true;
  for (const BatchResult& s : scenarios) {
    if (!s.all_ok) {
      std::cout << "CONTRACT VIOLATED: " << s.name
                << " had non-ok responses\n";
      ok = false;
    }
    if (!s.cache_contract) {
      std::cout << "CONTRACT VIOLATED: " << s.name
                << " cache stats off (" << s.cache_misses << " misses, "
                << s.cache_hits << " hits for " << s.requests
                << " requests)\n";
      ok = false;
    }
  }
  std::cout << (ok ? "\nall service cache contracts hold\n"
                   : "\nsome contracts VIOLATED\n");
  return ok ? 0 : 1;
}
