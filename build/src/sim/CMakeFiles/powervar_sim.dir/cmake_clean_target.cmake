file(REMOVE_RECURSE
  "libpowervar_sim.a"
)
