// Campaign-level fault injection and graceful degradation: dead meters
// are excluded, gaps repaired, extrapolation re-based on survivors, and
// the DataQuality block discloses exactly what happened.  The zero-fault
// plan must be bit-identical to the historical fault-free path.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "sim/fleet.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  PlanInputs inputs;
};

Rig make_rig(std::size_t n_nodes, double cv = 0.02) {
  ScenarioSpec spec;
  spec.name = "fault-rig";
  spec.nodes = n_nodes;
  spec.cv = cv;
  spec.fleet_seed = 99;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  rig.inputs = built.inputs;
  return rig;
}

CampaignConfig fast_config() {
  CampaignConfig c;
  c.meter_accuracy = MeterAccuracy::pdu_grade();
  c.meter_interval_override = Seconds{10.0};
  return c;
}

// A plan metering exactly 16 nodes (the acceptance scenario's shape).
MeasurementPlan plan16(const Rig& rig, Rng& rng) {
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  return plan_measurement(spec, rig.inputs, rng);
}

TEST(CampaignFaults, ZeroFaultPlanIsBitIdenticalToFaultFree) {
  const Rig rig = make_rig(128);
  Rng rng(1);
  const auto plan = plan16(rig, rng);
  const auto clean =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());
  CampaignConfig with_default_plan = fast_config();
  with_default_plan.faults = FaultPlan{};  // explicitly disabled
  const auto again =
      run_campaign(*rig.cluster, *rig.electrical, plan, with_default_plan);
  EXPECT_EQ(clean.submitted_power.value(), again.submitted_power.value());
  EXPECT_EQ(clean.submitted_energy.value(), again.submitted_energy.value());
  EXPECT_EQ(clean.relative_halfwidth, again.relative_halfwidth);
  ASSERT_EQ(clean.node_mean_powers_w.size(), again.node_mean_powers_w.size());
  for (std::size_t i = 0; i < clean.node_mean_powers_w.size(); ++i) {
    EXPECT_EQ(clean.node_mean_powers_w[i], again.node_mean_powers_w[i]);
  }
  EXPECT_FALSE(again.data_quality.faults_enabled);
  EXPECT_FALSE(again.data_quality.degraded());
}

TEST(CampaignFaults, AcceptanceTenPercentDropoutTwoDeadOfSixteen) {
  const Rig rig = make_rig(160);  // 10% rule -> 16 metered nodes
  Rng rng(2);
  const auto plan = plan16(rig, rng);
  ASSERT_EQ(plan.node_count(), 16u);

  const auto clean =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());

  CampaignConfig cfg = fast_config();
  cfg.faults.spec.dropout_prob = 0.10;
  cfg.faults.dead_meters = {plan.node_indices[0], plan.node_indices[1]};
  const auto degraded =
      run_campaign(*rig.cluster, *rig.electrical, plan, cfg);

  // The campaign completed and reported what it lost.
  const DataQuality& q = degraded.data_quality;
  EXPECT_TRUE(q.faults_enabled);
  EXPECT_TRUE(q.degraded());
  EXPECT_EQ(q.meters_planned, 16u);
  EXPECT_EQ(q.meters_lost, 2u);
  EXPECT_EQ(degraded.nodes_measured, 14u);
  EXPECT_TRUE(q.ci_widened);
  EXPECT_GT(q.samples_lost, 0u);
  EXPECT_GT(q.samples_repaired, 0u);
  EXPECT_NEAR(q.sample_coverage, 0.9 * 14.0 / 16.0, 0.05);
  EXPECT_NEAR(q.achieved_node_fraction, 14.0 / 160.0, 1e-9);
  EXPECT_NEAR(q.planned_node_fraction, 16.0 / 160.0, 1e-9);

  // The submitted number survived: within 2% of the fault-free run.
  const double shift =
      std::abs(degraded.submitted_power.value() -
               clean.submitted_power.value()) /
      clean.submitted_power.value();
  EXPECT_LT(shift, 0.02);
}

TEST(CampaignFaults, SpikesAreFilteredNotAbsorbed) {
  const Rig rig = make_rig(160);
  Rng rng(3);
  const auto plan = plan16(rig, rng);
  const auto clean =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());

  CampaignConfig cfg = fast_config();
  cfg.faults.spec.spike_prob = 0.01;
  cfg.faults.spec.spike_max_gain = 8.0;
  const auto r = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  EXPECT_GT(r.data_quality.spikes_filtered, 0u);
  // Unfiltered, 1% spikes at ~4.75x mean gain would inflate the mean by
  // ~3-4%; the Hampel filter must hold the shift to a fraction of that.
  const double shift = std::abs(r.submitted_power.value() -
                                clean.submitted_power.value()) /
                       clean.submitted_power.value();
  EXPECT_LT(shift, 0.01);
}

TEST(CampaignFaults, StuckSensorsAreDetected) {
  const Rig rig = make_rig(160);
  Rng rng(4);
  const auto plan = plan16(rig, rng);
  CampaignConfig cfg = fast_config();
  cfg.faults.spec.stuck_prob = 1.0;  // every meter freezes once
  cfg.faults.spec.stuck_mean_s = 300.0;
  const auto r = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  EXPECT_GT(r.data_quality.stuck_flagged, 0u);
  EXPECT_GT(r.data_quality.samples_lost, 0u);  // flagged == lost
}

TEST(CampaignFaults, AllMetersDeadThrowsCleanly) {
  const Rig rig = make_rig(64);
  Rng rng(5);
  const auto plan = plan16(rig, rng);
  CampaignConfig cfg = fast_config();
  cfg.faults.dead_meters = plan.node_indices;  // kill everything
  EXPECT_THROW(run_campaign(*rig.cluster, *rig.electrical, plan, cfg),
               std::runtime_error);
}

TEST(CampaignFaults, DegradedMeterBelowCoverageFloorIsExcluded) {
  const Rig rig = make_rig(160);
  Rng rng(6);
  const auto plan = plan16(rig, rng);
  CampaignConfig cfg = fast_config();
  // Kill meters at a certain point: death_prob 1 means every meter dies
  // at a uniform time; about half land below the 50% coverage floor.
  cfg.faults.spec.death_prob = 1.0;
  const auto r = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  EXPECT_GT(r.data_quality.meters_lost, 0u);
  EXPECT_LT(r.data_quality.meters_lost, 16u);
  EXPECT_EQ(r.data_quality.lost_meter_ids.size(),
            r.data_quality.meters_lost);
  EXPECT_EQ(r.nodes_measured, 16u - r.data_quality.meters_lost);
}

TEST(CampaignFaults, FaultedCampaignIsDeterministic) {
  const Rig rig = make_rig(96);
  Rng rng(7);
  const auto plan = plan16(rig, rng);
  CampaignConfig cfg = fast_config();
  cfg.faults.spec = FaultSpec::harsh();
  cfg.seed = 77;
  const auto a = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  const auto b = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  EXPECT_EQ(a.submitted_power.value(), b.submitted_power.value());
  EXPECT_EQ(a.data_quality.samples_lost, b.data_quality.samples_lost);
  EXPECT_EQ(a.data_quality.meters_lost, b.data_quality.meters_lost);
}

TEST(CampaignFaults, RackPathLosesWholeRack) {
  const Rig rig = make_rig(128);
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  Rng rng(8);
  auto plan = plan_measurement(spec, rig.inputs, rng);
  plan.point = MeasurementPoint::kRackPdu;
  const auto clean =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());
  ASSERT_GT(clean.nodes_measured, 0u);

  // Find a rack the plan actually metered and kill its PDU channel.
  const std::size_t rack =
      plan.node_indices.front() / rig.electrical->nodes_per_rack();
  CampaignConfig cfg = fast_config();
  cfg.faults.dead_meters = {rack};
  const auto r = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  EXPECT_EQ(r.data_quality.meters_lost, 1u);
  EXPECT_LT(r.nodes_measured, clean.nodes_measured);
  // Extrapolation re-based: the submission is still in range.
  const double shift = std::abs(r.submitted_power.value() -
                                clean.submitted_power.value()) /
                       clean.submitted_power.value();
  EXPECT_LT(shift, 0.05);
}

TEST(CampaignFaults, FacilityFeedRepairsButCannotLoseItsOnlyMeter) {
  const Rig rig = make_rig(64);
  const auto spec = MethodologySpec::get(Level::kL3, Revision::kV2015);
  Rng rng(9);
  auto plan = plan_measurement(spec, rig.inputs, rng);
  plan.point = MeasurementPoint::kFacilityFeed;
  const auto clean =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());

  CampaignConfig cfg = fast_config();
  cfg.faults.spec.dropout_prob = 0.15;
  const auto r = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  EXPECT_EQ(r.data_quality.meters_planned, 1u);
  EXPECT_GT(r.data_quality.samples_lost, 0u);
  const double shift = std::abs(r.submitted_power.value() -
                                clean.submitted_power.value()) /
                       clean.submitted_power.value();
  EXPECT_LT(shift, 0.02);

  // A dead facility meter has no fallback: the campaign must refuse.
  CampaignConfig dead = fast_config();
  dead.faults.dead_meters = {9'999'999};
  EXPECT_THROW(run_campaign(*rig.cluster, *rig.electrical, plan, dead),
               std::runtime_error);
}

TEST(CampaignFaults, ReportRendersDataQualityBlock) {
  const Rig rig = make_rig(160);
  Rng rng(10);
  const auto plan = plan16(rig, rng);
  CampaignConfig cfg = fast_config();
  cfg.faults.spec.dropout_prob = 0.10;
  cfg.faults.dead_meters = {plan.node_indices[0]};
  const auto r = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
  const std::string report = accuracy_report(plan, r);
  EXPECT_NE(report.find("data quality"), std::string::npos);
  EXPECT_NE(report.find("meters lost:"), std::string::npos);
  EXPECT_NE(report.find("sample coverage:"), std::string::npos);
  EXPECT_NE(report.find("widened"), std::string::npos);
  // The clean run stays silent about data quality.
  const auto clean =
      run_campaign(*rig.cluster, *rig.electrical, plan, fast_config());
  EXPECT_EQ(accuracy_report(plan, clean).find("data quality"),
            std::string::npos);
}

}  // namespace
}  // namespace pv
