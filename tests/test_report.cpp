// Unit tests for the accuracy-assessment report rendering.

#include "core/report.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/fleet.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

TEST(Report, ContainsAllSections) {
  auto workload = std::make_shared<FirestarterWorkload>(
      minutes(20.0), 1.0, minutes(1.0), minutes(1.0));
  auto powers = generate_node_powers(
      64, 400.0, FleetVariability::typical_cpu(), 1);
  const ClusterPowerModel cluster("rpt", std::move(powers), workload);
  const SystemPowerModel electrical = make_system_power_model(
      cluster, 16, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{});

  PlanInputs in;
  in.total_nodes = 64;
  in.approx_node_power = Watts{400.0};
  in.run = cluster.phases();
  Rng rng(1);
  const auto plan = plan_measurement(
      MethodologySpec::get(Level::kL1, Revision::kV2015), in, rng);
  CampaignConfig cfg;
  cfg.meter_interval_override = Seconds{10.0};
  const auto result = run_campaign(cluster, electrical, plan, cfg);

  const std::string report = accuracy_report(plan, result);
  EXPECT_NE(report.find("accuracy assessment"), std::string::npos);
  EXPECT_NE(report.find("submitted power"), std::string::npos);
  EXPECT_NE(report.find("95% CI"), std::string::npos);
  EXPECT_NE(report.find("achieved accuracy"), std::string::npos);
  EXPECT_NE(report.find("ground truth"), std::string::npos);
  EXPECT_NE(report.find("Level 1"), std::string::npos);
  EXPECT_NE(report.find("2015"), std::string::npos);
}

TEST(Report, RenderIssuesEmptyIsCompliant) {
  EXPECT_EQ(render_issues({}), "(compliant)\n");
}

TEST(Report, RenderIssuesListsRules) {
  const std::vector<ValidationIssue> issues{
      {"timing", "window too short"},
      {"fraction", "too few nodes"},
  };
  const std::string out = render_issues(issues);
  EXPECT_NE(out.find("[timing] window too short"), std::string::npos);
  EXPECT_NE(out.find("[fraction] too few nodes"), std::string::npos);
}

}  // namespace
}  // namespace pv
