// Tests for imbalanced-workload load shares and their effect on the
// sampling machinery (the paper's "regular workload" caveat).

#include "workload/imbalance.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/sample_size.hpp"
#include "sim/fleet.hpp"
#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"
#include "util/expects.hpp"
#include "util/mathx.hpp"

namespace pv {
namespace {

TEST(Imbalance, BalancedParamsGiveUnitShares) {
  const auto shares = imbalanced_load_shares(100, ImbalanceParams{}, 1);
  for (double s : shares) ASSERT_DOUBLE_EQ(s, 1.0);
}

TEST(Imbalance, SharesHaveMeanOneAndRequestedSpread) {
  ImbalanceParams p;
  p.share_cv = 0.3;
  const auto shares = imbalanced_load_shares(20000, p, 2);
  const Summary s = summarize(shares);
  EXPECT_NEAR(s.mean, 1.0, 1e-12);  // exact by renormalization
  EXPECT_NEAR(s.cv, 0.3, 0.01);
  EXPECT_GT(s.min, 0.0);
}

TEST(Imbalance, HotNodesSkewTheDistribution) {
  ImbalanceParams p;
  p.share_cv = 0.1;
  p.hot_node_prob = 0.05;
  p.hot_node_factor = 3.0;
  const auto shares = imbalanced_load_shares(20000, p, 3);
  EXPECT_GT(skewness(shares), 1.0);
  EXPECT_NEAR(mean_of(shares), 1.0, 1e-12);
}

TEST(Imbalance, DeterministicPerSeedAndPrefixStable) {
  ImbalanceParams p;
  p.share_cv = 0.2;
  const auto a = imbalanced_load_shares(100, p, 7);
  const auto b = imbalanced_load_shares(100, p, 7);
  EXPECT_EQ(a, b);
}

TEST(Imbalance, ApplySharesScalesDynamicComponentOnly) {
  std::vector<double> powers{100.0, 100.0};
  const std::vector<double> shares{0.0, 2.0};
  apply_load_shares(powers, shares, /*static_fraction=*/0.4);
  EXPECT_DOUBLE_EQ(powers[0], 40.0);   // static floor survives zero load
  EXPECT_DOUBLE_EQ(powers[1], 160.0);  // 0.4 + 0.6*2
}

TEST(Imbalance, InflatesFleetCvBeyondHardwareAlone) {
  FleetVariability var = FleetVariability::typical_cpu().scaled_to(0.02);
  var.outlier_prob = 0.0;
  auto powers = generate_node_powers(5000, 400.0, var, 4);
  const double cv_hw = summarize(powers).cv;
  ImbalanceParams p;
  p.share_cv = 0.25;
  const auto shares = imbalanced_load_shares(powers.size(), p, 5);
  apply_load_shares(powers, shares, 0.35);
  const double cv_total = summarize(powers).cv;
  EXPECT_GT(cv_total, 3.0 * cv_hw);
}

TEST(Imbalance, HardwarePilotUnderestimatesRequiredSampleSize) {
  // The failure mode the paper warns about: a pilot taken under a balanced
  // benchmark (hardware-only cv ~2%) recommends n; under an imbalanced
  // production workload that n misses the accuracy target far more often
  // than alpha.
  constexpr std::size_t kN = 5000;
  constexpr double lambda = 0.01;
  FleetVariability var = FleetVariability::typical_cpu().scaled_to(0.02);
  var.outlier_prob = 0.0;
  auto powers = generate_node_powers(kN, 400.0, var, 6);
  const std::size_t n_pilot =
      required_sample_size(0.05, lambda, summarize(powers).cv, kN);

  ImbalanceParams p;
  p.share_cv = 0.3;
  p.hot_node_prob = 0.03;
  p.hot_node_factor = 2.5;
  apply_load_shares(powers, imbalanced_load_shares(kN, p, 7), 0.35);
  const double mu = mean_of(powers);

  Rng rng(8);
  int missed = 0;
  constexpr int kTrials = 800;
  for (int t = 0; t < kTrials; ++t) {
    const auto idx = sample_without_replacement(rng, kN, n_pilot);
    const double est = mean_of(gather(powers, idx));
    if (std::fabs(est - mu) > lambda * mu) ++missed;
  }
  // Nominal miss rate would be ~5%; under imbalance it blows up.
  EXPECT_GT(missed / static_cast<double>(kTrials), 0.30);
}

TEST(Imbalance, DomainChecks) {
  EXPECT_THROW(imbalanced_load_shares(0, ImbalanceParams{}, 1),
               contract_error);
  ImbalanceParams bad;
  bad.share_cv = -0.1;
  EXPECT_THROW(imbalanced_load_shares(10, bad, 1), contract_error);
  bad = ImbalanceParams{};
  bad.hot_node_factor = 0.5;
  EXPECT_THROW(imbalanced_load_shares(10, bad, 1), contract_error);
  std::vector<double> powers{1.0};
  const std::vector<double> shares{1.0, 1.0};
  EXPECT_THROW(apply_load_shares(powers, shares, 0.3), contract_error);
}

}  // namespace
}  // namespace pv
