#!/usr/bin/env bash
# Perf-regression gate: runs bench_perf_campaign, then compares the
# BENCH_perf.json it emits against the committed baseline.  Optionally
# also runs bench_service (the campaign-service cold/warm-cache bench)
# and compares its BENCH_service.json the same way.
#
# Usage: tools/check_perf.sh <bench-binary> <baseline-json> [out-json] \
#                            [service-bench] [service-baseline] [service-out] \
#                            [fleet-bench] [fleet-baseline] [fleet-out]
#
# Two classes of checks:
#   hard   engine/thread byte-identity (the bench binary exits nonzero on
#          its own if any report differs), the streaming engine being
#          at least as fast as eager after the noise allowance, and the
#          live path's peak RSS staying flat in campaign length (the
#          rss_flat growth ceiling — memory is not wall-time, so no
#          machine-noise allowance applies);
#   soft   per-scenario speedups may not fall below ALLOWANCE times the
#          committed baseline.  The allowance is deliberately generous
#          (0.5x by default, PV_PERF_ALLOWANCE to override): shared CI
#          boxes show +/-30% wall-time noise between runs, and this gate
#          exists to catch the engine regressing to the eager path
#          (a ~4x ratio collapsing to ~1x), not 10% drifts.
#
# Updating a baseline after an intentional perf change:
#   build/bench/bench_perf_campaign            # writes BENCH_perf.json
#   cp BENCH_perf.json bench/BENCH_perf_baseline.json
#   build/bench/bench_service                  # writes BENCH_service.json
#   cp BENCH_service.json bench/BENCH_service_baseline.json
# then commit the new baseline alongside the change that moved it
# (details in docs/performance.md).
set -euo pipefail

if [[ $# -lt 2 ]]; then
  echo "usage: $0 <bench-binary> <baseline-json> [out-json]" >&2
  exit 2
fi

bench_bin="$1"
baseline="$2"
out_json="${3:-BENCH_perf.json}"
allowance="${PV_PERF_ALLOWANCE:-0.5}"

if [[ ! -f "$baseline" ]]; then
  echo "check_perf: baseline $baseline missing" >&2
  exit 2
fi

# Fewer reps than the default keeps the gate fast; the bench takes the
# best-of so extra reps only tighten, never loosen, the numbers.
PV_PERF_JSON="$out_json" PV_PERF_REPS="${PV_PERF_REPS:-3}" "$bench_bin"

python3 - "$out_json" "$baseline" "$allowance" <<'EOF'
import json
import sys

out_path, base_path, allowance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(out_path) as f:
    got = json.load(f)
with open(base_path) as f:
    base = json.load(f)

failures = []
for name, b in base["scenarios"].items():
    g = got["scenarios"].get(name)
    if g is None:
        failures.append(f"{name}: scenario missing from fresh run")
        continue
    if not g["identical"]:
        failures.append(f"{name}: engine/thread reports not byte-identical")
    # Speedup keys are gated only where the baseline entry carries them:
    # async_collect has no eager reference, so its entry reports wall
    # times and identity only.
    for key in ("speedup_1t", "speedup_8t"):
        if key not in b:
            continue
        if key not in g:
            failures.append(f"{name}: {key} missing from fresh run")
            continue
        # Hard floor: streaming must never lose to eager outright.
        if g[key] < 1.0:
            failures.append(
                f"{name}: {key} = {g[key]:.2f}x — streaming slower than eager")
        # Soft floor: generous fraction of the committed baseline ratio.
        floor = allowance * b[key]
        if g[key] < floor:
            failures.append(
                f"{name}: {key} = {g[key]:.2f}x, below {floor:.2f}x "
                f"(= {allowance} x baseline {b[key]:.2f}x)")

# Memory gate: the live streaming path must stay bounded — peak RSS flat
# in campaign length.  Growth is an absolute ceiling carried in the JSON
# (not a ratio of the baseline: a healthy baseline growth of ~0 MB would
# make any ratio-based floor vacuous or explosive).
rss = got.get("rss_flat")
if rss is None:
    failures.append("rss_flat: scenario missing from fresh run")
else:
    if not rss["identical"]:
        failures.append(
            "rss_flat: live long-run report not byte-identical to batch")
    ceiling = rss.get("growth_ceiling_mb", 16.0)
    if rss["growth_mb"] > ceiling:
        failures.append(
            f"rss_flat: peak RSS grew {rss['growth_mb']:.1f} MB over a "
            f"10x-longer campaign (ceiling {ceiling:.1f} MB) — the live "
            f"path is no longer bounded-memory")
    base_rss = base.get("rss_flat", {})
    print(f"  rss_flat: growth {rss['growth_mb']:.1f} MB over "
          f"{rss['samples_long']} samples "
          f"(baseline {base_rss.get('growth_mb', 0):.1f} MB, "
          f"ceiling {ceiling:.1f} MB), identical={rss['identical']}")

for name, g in got["scenarios"].items():
    if "speedup_1t" in g:
        head = (f"speedup@1 {g['speedup_1t']:.2f}x (baseline "
                f"{base['scenarios'].get(name, {}).get('speedup_1t', 0):.2f}x), "
                f"speedup@8 {g['speedup_8t']:.2f}x")
    else:
        head = (f"1t {g['stream1_ms']:.2f} ms, 8t {g['stream8_ms']:.2f} ms")
    print(f"  {name}: {head}, "
          f"peak rss {g.get('peak_rss_mb', 0):.1f} MB, "
          f"identical={g['identical']}")

if failures:
    print("check_perf: REGRESSION", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("check_perf: within allowance of committed baseline")
EOF

# ---- campaign-service bench (optional second triple) -----------------
if [[ $# -lt 4 ]]; then
  exit 0
fi
service_bin="$4"
service_baseline="${5:?service baseline path required with service bench}"
service_out="${6:-BENCH_service.json}"

if [[ ! -f "$service_baseline" ]]; then
  echo "check_perf: service baseline $service_baseline missing" >&2
  exit 2
fi

# The bench exits nonzero itself if any response is non-ok or the
# cold/warm cache counts are off (the skip-Provision hard contract).
PV_PERF_JSON="$service_out" PV_PERF_REPS="${PV_PERF_REPS:-3}" "$service_bin"

python3 - "$service_out" "$service_baseline" "$allowance" <<'EOF'
import json
import sys

out_path, base_path, allowance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(out_path) as f:
    got = json.load(f)
with open(base_path) as f:
    base = json.load(f)

failures = []
for name, b in base["scenarios"].items():
    g = got["scenarios"].get(name)
    if g is None:
        failures.append(f"{name}: scenario missing from fresh run")
        continue
    # Hard: every response ok, deterministic cache accounting intact.
    if not g["all_ok"]:
        failures.append(f"{name}: non-ok responses in the bench batch")
    if not g["cache_contract"]:
        failures.append(
            f"{name}: cache counts off ({g['cache_misses']} misses, "
            f"{g['cache_hits']} hits for {g['requests']} requests)")

# The gated perf number is the warm-over-cold speedup: both halves run
# back-to-back under identical machine load, so the ratio is robust on
# noisy boxes where absolute campaigns/sec on a millisecond batch is not.
ratio = got["warm_over_cold"]
# Hard floor: the warm cache must never make the batch slower.
if ratio < 1.0:
    failures.append(
        f"warm_over_cold = {ratio:.2f}x — warm cache slower than cold")
# Soft floor: generous fraction of the committed baseline ratio.
floor = allowance * base["warm_over_cold"]
if ratio < floor:
    failures.append(
        f"warm_over_cold = {ratio:.2f}x, below {floor:.2f}x "
        f"(= {allowance} x baseline {base['warm_over_cold']:.2f}x)")

for name, g in got["scenarios"].items():
    b = base["scenarios"].get(name, {})
    print(f"  {name}: {g['campaigns_per_sec']:.1f} campaigns/s "
          f"(baseline {b.get('campaigns_per_sec', 0):.1f}), "
          f"{g['cache_hits']} hits / {g['cache_misses']} misses")
print(f"  warm_over_cold: {ratio:.2f}x "
      f"(baseline {base['warm_over_cold']:.2f}x)")

if failures:
    print("check_perf: SERVICE REGRESSION", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("check_perf: service bench within allowance of committed baseline")
EOF

# ---- fleet-scale SoA bench (optional third triple) -------------------
if [[ $# -lt 7 ]]; then
  exit 0
fi
fleet_bin="$7"
fleet_baseline="${8:?fleet baseline path required with fleet bench}"
fleet_out="${9:-BENCH_perf_fleet.json}"

if [[ ! -f "$fleet_baseline" ]]; then
  echo "check_perf: fleet baseline $fleet_baseline missing" >&2
  exit 2
fi

# The bench exits nonzero itself if any scalar/SoA report pair differs or
# a scenario breaches its absolute peak-RSS ceiling.
PV_PERF_JSON="$fleet_out" PV_PERF_REPS="${PV_PERF_REPS:-3}" "$fleet_bin"

python3 - "$fleet_out" "$fleet_baseline" "$allowance" <<'EOF'
import json
import sys

out_path, base_path, allowance = sys.argv[1], sys.argv[2], float(sys.argv[3])
with open(out_path) as f:
    got = json.load(f)
with open(base_path) as f:
    base = json.load(f)

failures = []
for name, b in base["scenarios"].items():
    g = got["scenarios"].get(name)
    if g is None:
        failures.append(f"{name}: scenario missing from fresh run")
        continue
    if not g["identical"]:
        failures.append(f"{name}: scalar/SoA reports not byte-identical")
    # Hard floor: a gated scenario's 8-thread SoA speedup may never fall
    # below the gate carried in the baseline (the tentpole's 2x contract
    # on fleet10k_l1) — no machine-noise allowance on this one.
    gate = b.get("gate_soa_8t", 0.0)
    if gate > 0.0 and g["speedup_soa_8t"] < gate:
        failures.append(
            f"{name}: speedup_soa_8t = {g['speedup_soa_8t']:.2f}x, "
            f"below the hard {gate:.1f}x gate")
    # Memory ceiling: absolute, carried in the JSON.
    ceiling = b.get("rss_ceiling_mb", 0.0)
    if ceiling > 0.0 and g["peak_rss_mb"] > ceiling:
        failures.append(
            f"{name}: peak RSS {g['peak_rss_mb']:.1f} MB above the "
            f"{ceiling:.0f} MB ceiling")
    # Soft floor: generous fraction of the committed baseline ratios.
    for key in ("speedup_soa_1t", "speedup_soa_8t"):
        floor = allowance * b[key]
        if g[key] < floor:
            failures.append(
                f"{name}: {key} = {g[key]:.2f}x, below {floor:.2f}x "
                f"(= {allowance} x baseline {b[key]:.2f}x)")

for name, g in got["scenarios"].items():
    b = base["scenarios"].get(name, {})
    print(f"  {name}: soa@1 {g['speedup_soa_1t']:.2f}x "
          f"(baseline {b.get('speedup_soa_1t', 0):.2f}x), "
          f"soa@8 {g['speedup_soa_8t']:.2f}x, "
          f"{g['samples_per_sec']:.3g} samples/s, "
          f"peak rss {g['peak_rss_mb']:.1f} MB, identical={g['identical']}")

if failures:
    print("check_perf: FLEET REGRESSION", file=sys.stderr)
    for f_ in failures:
        print(f"  {f_}", file=sys.stderr)
    sys.exit(1)
print("check_perf: fleet bench within allowance of committed baseline")
EOF
