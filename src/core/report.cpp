#include "core/report.hpp"

#include <algorithm>
#include <sstream>

#include "stats/descriptive.hpp"
#include "util/table.hpp"

namespace pv {

std::string accuracy_report(const MeasurementPlan& plan,
                            const CampaignResult& result) {
  std::ostringstream os;
  os << "=== Power measurement accuracy assessment";
  if (!result.system_name.empty()) os << ": " << result.system_name;
  os << " ===\n";
  os << plan.spec.describe();
  os << "plan: " << result.nodes_measured << " nodes metered at "
     << to_string(plan.point) << ", window "
     << to_string(result.window_duration) << " starting at t="
     << to_string(plan.window.begin) << "\n\n";

  os << "submitted power:   " << to_string(result.submitted_power) << '\n';
  os << "window energy:     " << to_string(result.submitted_energy) << '\n';

  if (!result.node_mean_powers_w.empty()) {
    const Summary s = summarize(result.node_mean_powers_w);
    os << "per-node mean:     " << to_string(Watts{s.mean}) << "  (sd "
       << to_string(Watts{s.stddev}) << ", cv " << fmt_percent(s.cv, 2)
       << ")\n";
  }
  if (result.relative_halfwidth > 0.0) {
    os << "95% CI (Eq. 1):    [" << to_string(Watts{result.node_mean_ci.lo})
       << ", " << to_string(Watts{result.node_mean_ci.hi})
       << "] per node\n";
    os << "achieved accuracy: +/-"
       << fmt_percent(result.relative_halfwidth, 2) << " at 95% confidence\n";
  } else {
    os << "achieved accuracy: (not assessable: fewer than 2 nodes metered)\n";
  }
  os << "ground truth:      " << to_string(result.true_power)
     << "  -> actual error " << fmt_percent(result.relative_error, 2)
     << '\n';
  os << data_quality_report(result.data_quality);
  return os.str();
}

std::string data_quality_report(const DataQuality& q) {
  // Rendered when data faults were injected or the async collection path
  // ran (whose transport losses degrade coverage the same way).
  if (!q.faults_enabled && !q.collection.used) return "";
  std::ostringstream os;
  os << "\n--- data quality ---\n";
  os << "meters lost:       " << q.meters_lost << " of " << q.meters_planned;
  if (!q.lost_meter_ids.empty()) {
    // Sorted so the rendering never depends on container iteration or
    // completion order (check_determinism.sh diffs this output).
    std::vector<std::size_t> ids = q.lost_meter_ids;
    std::sort(ids.begin(), ids.end());
    os << " (ids:";
    for (std::size_t id : ids) os << ' ' << id;
    os << ')';
  }
  os << '\n';
  os << "sample coverage:   " << fmt_percent(q.sample_coverage, 2) << " ("
     << q.samples_lost << " of " << q.samples_expected << " samples lost, "
     << q.samples_repaired << " repaired)\n";
  if (q.stuck_flagged > 0) {
    os << "stuck readings:    " << q.stuck_flagged << " flagged invalid\n";
  }
  if (q.spikes_filtered > 0) {
    os << "spikes filtered:   " << q.spikes_filtered << '\n';
  }
  os << "machine coverage:  planned " << fmt_percent(q.planned_node_fraction, 2)
     << " -> achieved " << fmt_percent(q.achieved_node_fraction, 2) << '\n';
  os << "Eq. 1 CI:          "
     << (q.ci_widened
             ? "widened (re-extrapolated from surviving meters)"
             : "as planned")
     << '\n';
  os << collection_quality_report(q.collection);
  os << integrity_quality_report(q);
  return os.str();
}

std::string integrity_quality_report(const DataQuality& q) {
  if (!q.reconcile_ran) return "";
  const ReconcileReport& r = q.integrity;
  std::ostringstream os;
  os << "\n--- integrity (byzantine defense) ---\n";
  os << "meters checked:    " << r.meters_checked << " ("
     << r.meters_quarantined << " quarantined, " << r.meters_corrected
     << " corrected)\n";
  // Diagnoses arrive sorted by meter id; render only the convicted.
  for (const MeterDiagnosis& d : r.diagnoses) {
    if (d.verdict == MeterVerdict::kTrusted) continue;
    os << "  meter " << d.meter_id << ": " << to_string(d.verdict);
    if (d.verdict == MeterVerdict::kUnitError) {
      if (d.correction_scale >= 1.0) {
        os << " (x" << fmt_fixed(d.correction_scale, 0) << ')';
      } else {
        os << " (x1/" << fmt_fixed(1.0 / d.correction_scale, 0) << ')';
      }
    } else if (d.verdict == MeterVerdict::kClockSkewed) {
      os << " (lag " << d.clock_lag << " windows)";
    } else {
      os << " (gain " << fmt_fixed(d.gain_estimate, 3) << ')';
    }
    os << " -> " << (d.corrected ? "corrected" : "quarantined")
       << ", detected at window " << d.detection_window << '\n';
  }
  if (!r.residuals.empty()) {
    os << "hierarchy checks:  " << r.residuals.size()
       << ", worst residual " << fmt_percent(r.worst_residual_before, 2)
       << " -> " << fmt_percent(r.worst_residual_after, 2)
       << " after reconciliation\n";
    for (const HierarchyResidual& hr : r.residuals) {
      if (hr.parent_distrusted) {
        os << "  " << hr.label
           << ": children agree but the parent does not -> parent meter "
              "distrusted\n";
      }
    }
  }
  if (r.any_convicted()) {
    os << "detection latency: "
       << fmt_fixed(r.mean_detection_latency_windows, 1)
       << " windows (mean over convicted meters)\n";
  }
  if (r.meters_corrected > 0) {
    os << "corrections:       residual sigma "
       << fmt_percent(r.corrected_sigma, 2)
       << " per corrected reading folded into the Eq. 1 CI\n";
  }
  return os.str();
}

std::string collection_quality_report(const CollectionQuality& c) {
  if (!c.used) return "";
  std::ostringstream os;
  os << "\n--- collection path ---\n";
  os << "polls:             " << c.polls_attempted << " attempted, "
     << c.polls_timed_out << " timed out, " << c.polls_retried
     << " retries, " << c.duplicates_discarded << " duplicates discarded\n";
  os << "circuit breakers:  " << c.breaker_trips << " trips, "
     << c.meters_abandoned << " meters abandoned\n";
  os << "poll time:         " << fmt_fixed(c.busy_total_s, 2)
     << " s total, slowest meter " << fmt_fixed(c.busy_max_meter_s, 2)
     << " s, modeled wall clock " << fmt_fixed(c.makespan_s, 2) << " s\n";
  return os.str();
}

std::string render_issues(const std::vector<ValidationIssue>& issues) {
  if (issues.empty()) return "(compliant)\n";
  std::ostringstream os;
  for (const auto& issue : issues) {
    os << "  [" << issue.rule << "] " << issue.what << '\n';
  }
  return os.str();
}

}  // namespace pv
