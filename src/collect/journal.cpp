#include "collect/journal.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

namespace pv {

std::string encode_meter_record(const MeterRecord& r) {
  // %.17g (max_digits10 for double) round-trips every finite double
  // bit-exactly through text — required for resume determinism.
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "%zu %d %d %.17g %.17g %zu %zu %zu %zu %zu %zu %zu %.17g",
      r.reading.node, r.reading.lost ? 1 : 0, r.abandoned ? 1 : 0,
      r.reading.mean_w, r.reading.energy_j, r.samples_expected,
      r.samples_lost, r.polls, r.timeouts, r.retries, r.duplicates,
      r.breaker_trips, r.busy_s);
  return buf;
}

MeterRecord decode_meter_record(const std::string& payload) {
  MeterRecord r;
  int lost = 0;
  int abandoned = 0;
  int consumed = 0;
  const int n = std::sscanf(
      payload.c_str(),
      "%zu %d %d %lg %lg %zu %zu %zu %zu %zu %zu %zu %lg%n",
      &r.reading.node, &lost, &abandoned, &r.reading.mean_w,
      &r.reading.energy_j, &r.samples_expected, &r.samples_lost, &r.polls,
      &r.timeouts, &r.retries, &r.duplicates, &r.breaker_trips, &r.busy_s,
      &consumed);
  if (n != 13 ||
      payload.find_first_not_of(" \t", static_cast<std::size_t>(consumed)) !=
          std::string::npos) {
    throw std::runtime_error("collect journal: malformed meter record: '" +
                             payload + "'");
  }
  if (lost != 0 && lost != 1) {
    throw std::runtime_error("collect journal: bad lost flag: '" + payload +
                             "'");
  }
  if (abandoned != 0 && abandoned != 1) {
    throw std::runtime_error("collect journal: bad abandoned flag: '" +
                             payload + "'");
  }
  r.reading.lost = lost == 1;
  r.abandoned = abandoned == 1;
  return r;
}

}  // namespace pv
