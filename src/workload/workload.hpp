#pragma once
// The workload abstraction: what the machine is doing while being metered.
//
// A Workload describes a benchmark run as phases (setup | core | teardown)
// plus a *compute intensity* signal over time.  Intensity is the fraction
// of peak dynamic power the workload drives (1.0 = fully saturated
// execution units); node/component models translate intensity into watts.
// All workloads in the paper are "balanced": every node executes the same
// intensity profile, which is the assumption behind extrapolating a node
// subset (§4) — per-node deviations enter through the node models, not the
// workload.

#include <memory>
#include <string>

#include "trace/segment.hpp"
#include "util/units.hpp"

namespace pv {

/// Abstract benchmark-run description.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual RunPhases phases() const = 0;

  /// Compute intensity in [0, ~1] at absolute run time t (seconds since
  /// run start, setup included).  Must be defined for all t in
  /// [0, phases().total()].
  [[nodiscard]] virtual double intensity(double t) const = 0;

  /// Mean intensity over the core phase (numerically integrated; override
  /// when a closed form exists).
  [[nodiscard]] virtual double core_mean_intensity() const;
};

/// Integration helper shared by Workload implementations: the average of
/// `f` over [a, b] by composite midpoint rule with `steps` panels.
[[nodiscard]] double average_over(const std::function<double(double)>& f,
                                  double a, double b, std::size_t steps = 4096);

}  // namespace pv
