// Unit tests for the table and CSV formatters.

#include <gtest/gtest.h>

#include <fstream>

#include "util/csv.hpp"
#include "util/expects.hpp"
#include "util/table.hpp"

namespace pv {
namespace {

TEST(TextTable, RendersHeaderRuleAndRows) {
  TextTable t({"system", "nodes"});
  t.add_row({"Titan", "18688"});
  t.add_row({"LRZ", "9216"});
  const std::string out = t.render();
  EXPECT_NE(out.find("system"), std::string::npos);
  EXPECT_NE(out.find("Titan"), std::string::npos);
  EXPECT_NE(out.find("18688"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(TextTable, DefaultAlignmentLeftThenRight) {
  TextTable t({"name", "v"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "22"});
  const std::string out = t.render();
  // Left-aligned label: "a" followed by padding; right-aligned number:
  // padding before "1".
  EXPECT_NE(out.find(" a         |"), std::string::npos);
  EXPECT_NE(out.find("  1 "), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), contract_error);
}

TEST(TextTable, SeparatorRowsRender) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // Header rule plus the explicit separator: at least two rules.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("---"); pos != std::string::npos;
       pos = out.find("---", pos + 1)) {
    ++rules;
  }
  EXPECT_GE(rules, 2u);
}

TEST(Format, FixedAndPercent) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-1.0, 0), "-1");
  EXPECT_EQ(fmt_percent(0.035, 1), "3.5%");
  EXPECT_EQ(fmt_percent(0.2039, 2), "20.39%");
}

TEST(Format, GroupedIntegers) {
  EXPECT_EQ(fmt_group(18688), "18,688");
  EXPECT_EQ(fmt_group(999), "999");
  EXPECT_EQ(fmt_group(1000000), "1,000,000");
  EXPECT_EQ(fmt_group(-1234), "-1,234");
  EXPECT_EQ(fmt_group(0), "0");
}

TEST(Csv, EscapesSpecialFields) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, SerializesHeaderAndRows) {
  CsvWriter w({"t", "power_w"});
  w.add_row({"0", "100.5"});
  w.add_row(std::vector<double>{1.0, 101.25});
  EXPECT_EQ(w.row_count(), 2u);
  const std::string s = w.str();
  EXPECT_EQ(s, "t,power_w\n0,100.5\n1,101.25\n");
}

TEST(Csv, RowWidthEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), contract_error);
}

TEST(Csv, WritesFile) {
  CsvWriter w({"x"});
  w.add_row({"42"});
  const std::string path = ::testing::TempDir() + "/powervar_csv_test.csv";
  w.write_file(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::getline(f, line);
  EXPECT_EQ(line, "42");
}

}  // namespace
}  // namespace pv
