#include "meter/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "util/expects.hpp"

namespace pv {

bool FaultSpec::any() const {
  return dropout_prob > 0.0 || burst_rate_per_hour > 0.0 ||
         stuck_prob > 0.0 || spike_prob > 0.0 ||
         std::isfinite(clip_max_w) || death_prob > 0.0 || any_byzantine();
}

bool FaultSpec::any_byzantine() const {
  return drift_prob > 0.0 || recal_prob > 0.0 || unit_error_prob > 0.0 ||
         clock_skew_prob > 0.0 || time_jitter_sd_s > 0.0 ||
         reorder_prob > 0.0 || dup_ts_prob > 0.0;
}

FaultSpec FaultSpec::none() { return FaultSpec{}; }

FaultSpec FaultSpec::mild() {
  FaultSpec s;
  s.dropout_prob = 0.005;
  s.burst_rate_per_hour = 0.2;
  s.burst_mean_s = 15.0;
  s.spike_prob = 0.0005;
  return s;
}

FaultSpec FaultSpec::harsh() {
  FaultSpec s;
  s.dropout_prob = 0.05;
  s.burst_rate_per_hour = 2.0;
  s.burst_mean_s = 60.0;
  s.stuck_prob = 0.15;
  s.stuck_mean_s = 180.0;
  s.spike_prob = 0.005;
  s.spike_max_gain = 6.0;
  s.death_prob = 0.05;
  return s;
}

FaultSpec FaultSpec::byzantine() {
  FaultSpec s;
  s.drift_prob = 0.05;
  s.drift_max_per_hour = 0.05;
  s.recal_prob = 0.02;
  s.recal_max_frac = 0.05;
  s.unit_error_prob = 0.01;
  s.clock_skew_prob = 0.02;
  s.clock_skew_max_s = 60.0;
  return s;
}

MeterFate draw_meter_fate(const FaultSpec& spec, TimeWindow campaign_window,
                          Rng& fate_rng) {
  PV_EXPECTS(campaign_window.valid(), "empty campaign window");
  MeterFate fate;
  fate.byz_origin_s = campaign_window.begin.value();
  if (spec.death_prob > 0.0 && fate_rng.bernoulli(spec.death_prob)) {
    fate.dies = true;
    fate.death_time_s = fate_rng.uniform(campaign_window.begin.value(),
                                         campaign_window.end.value());
  }
  if (spec.stuck_prob > 0.0 && fate_rng.bernoulli(spec.stuck_prob)) {
    fate.sticks = true;
    fate.stuck_begin_s = fate_rng.uniform(campaign_window.begin.value(),
                                          campaign_window.end.value());
    // Exponential episode length via inverse CDF.
    const double u = fate_rng.uniform();
    fate.stuck_end_s =
        fate.stuck_begin_s - spec.stuck_mean_s * std::log(1.0 - u);
  }
  // Byzantine fate.  Each draw is gated on its own knob so specs that never
  // enable a process consume exactly the historical RNG stream.
  if (spec.drift_prob > 0.0 && fate_rng.bernoulli(spec.drift_prob)) {
    fate.drift_rate_per_hour =
        fate_rng.uniform(-spec.drift_max_per_hour, spec.drift_max_per_hour);
  }
  if (spec.recal_prob > 0.0 && fate_rng.bernoulli(spec.recal_prob)) {
    fate.recalibrates = true;
    fate.recal_time_s = fate_rng.uniform(campaign_window.begin.value(),
                                         campaign_window.end.value());
    fate.recal_gain =
        1.0 + fate_rng.uniform(-spec.recal_max_frac, spec.recal_max_frac);
  }
  if (spec.unit_error_prob > 0.0 && fate_rng.bernoulli(spec.unit_error_prob)) {
    fate.unit_scale = fate_rng.bernoulli(0.5) ? spec.unit_scale
                                              : 1.0 / spec.unit_scale;
  }
  if (spec.clock_skew_prob > 0.0 &&
      fate_rng.bernoulli(spec.clock_skew_prob)) {
    fate.clock_skew_s =
        fate_rng.uniform(-spec.clock_skew_max_s, spec.clock_skew_max_s);
  }
  return fate;
}

bool MeterFate::byzantine() const {
  return drift_rate_per_hour != 0.0 || recalibrates || unit_scale != 1.0 ||
         clock_skew_s != 0.0;
}

double MeterFate::byzantine_gain(double t) const {
  double g = unit_scale;
  if (drift_rate_per_hour != 0.0) {
    const double hours = (t - byz_origin_s) / 3600.0;
    // A real gain cannot creep below zero; floor far under any plausible
    // drift so the model stays physical on very long windows.
    g *= std::max(0.05, 1.0 + drift_rate_per_hour * hours);
  }
  if (recalibrates && t >= recal_time_s) g *= recal_gain;
  return g;
}

void FaultEvents::accumulate(const FaultEvents& other) {
  samples_total += other.samples_total;
  samples_dropped += other.samples_dropped;
  samples_dead += other.samples_dead;
  samples_stuck += other.samples_stuck;
  samples_spiked += other.samples_spiked;
  samples_clipped += other.samples_clipped;
  samples_miscalibrated += other.samples_miscalibrated;
  samples_time_shifted += other.samples_time_shifted;
  samples_reordered += other.samples_reordered;
  samples_duplicated_ts += other.samples_duplicated_ts;
}

GappyTrace inject_faults(const PowerTrace& clean, const FaultSpec& spec,
                         const MeterFate& fate, Rng& rng,
                         FaultEvents* events) {
  const std::size_t n = clean.size();
  const double dt = clean.dt().value();
  std::vector<double> w(clean.watts().begin(), clean.watts().end());
  std::vector<std::uint8_t> valid(n, 1);

  FaultEvents ev;
  ev.samples_total = n;

  // --- byzantine timestamp distortions -------------------------------------
  // Applied to the clean signal before the availability faults below, in a
  // fixed pass order so RNG consumption is reproducible.  Every pass is
  // gated on its knob: historical specs draw exactly what they always did.
  if (fate.clock_skew_s != 0.0 || spec.time_jitter_sd_s > 0.0) {
    const auto clamp_index = [n](std::ptrdiff_t j) {
      if (j < 0) return std::size_t{0};
      if (j >= static_cast<std::ptrdiff_t>(n)) return n - 1;
      return static_cast<std::size_t>(j);
    };
    std::vector<double> shifted(n);
    for (std::size_t i = 0; i < n; ++i) {
      double offset_s = fate.clock_skew_s;
      if (spec.time_jitter_sd_s > 0.0) {
        offset_s += rng.normal(0.0, spec.time_jitter_sd_s);
      }
      const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(i) +
                               static_cast<std::ptrdiff_t>(
                                   std::llround(offset_s / dt));
      const std::size_t src = n == 0 ? 0 : clamp_index(j);
      if (src != i) ++ev.samples_time_shifted;
      shifted[i] = clean.watt_at(src);
    }
    w = std::move(shifted);
  }
  if (spec.reorder_prob > 0.0 && n >= 2) {
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (rng.bernoulli(spec.reorder_prob)) {
        std::swap(w[i], w[i + 1]);
        ev.samples_reordered += 2;
        ++i;  // a swapped pair is not re-drawn
      }
    }
  }
  if (spec.dup_ts_prob > 0.0) {
    for (std::size_t i = 1; i < n; ++i) {
      if (rng.bernoulli(spec.dup_ts_prob)) {
        w[i] = w[i - 1];  // delivered under the previous timestamp
        ++ev.samples_duplicated_ts;
      }
    }
  }
  const bool miscalibrated = fate.drift_rate_per_hour != 0.0 ||
                             fate.recalibrates || fate.unit_scale != 1.0;

  // Burst start probability per sample from the Poisson arrival rate.
  const double burst_p = spec.burst_rate_per_hour * dt / 3600.0;
  std::size_t burst_left = 0;

  double last_good = n > 0 ? w[0] : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = clean.time_at(i).value() + 0.5 * dt;

    // Hard death dominates everything after it.
    if (fate.dies && t >= fate.death_time_s) {
      valid[i] = 0;
      ++ev.samples_dead;
      continue;
    }

    // Burst outages and i.i.d. dropout produce missing samples.
    if (burst_left > 0) {
      --burst_left;
      valid[i] = 0;
      ++ev.samples_dropped;
      continue;
    }
    if (burst_p > 0.0 && rng.bernoulli(std::min(burst_p, 1.0))) {
      const double len_s = -spec.burst_mean_s * std::log(1.0 - rng.uniform());
      burst_left = static_cast<std::size_t>(std::ceil(len_s / dt));
      valid[i] = 0;
      ++ev.samples_dropped;
      continue;
    }
    if (spec.dropout_prob > 0.0 && rng.bernoulli(spec.dropout_prob)) {
      valid[i] = 0;
      ++ev.samples_dropped;
      continue;
    }

    // The reading arrives; it may still be wrong.
    if (fate.sticks && t >= fate.stuck_begin_s && t < fate.stuck_end_s) {
      w[i] = last_good;
      ++ev.samples_stuck;
      // A frozen sensor neither spikes nor clips, but the downstream
      // calibration/logging distortion still applies to its repeats.
      if (miscalibrated) {
        w[i] *= fate.byzantine_gain(t);
        ++ev.samples_miscalibrated;
      }
      continue;
    }
    if (spec.spike_prob > 0.0 && rng.bernoulli(spec.spike_prob)) {
      w[i] *= rng.uniform(1.5, std::max(1.5, spec.spike_max_gain));
      ++ev.samples_spiked;
    }
    if (w[i] > spec.clip_max_w) {
      w[i] = spec.clip_max_w;
      ++ev.samples_clipped;
    }
    last_good = w[i];
    // Calibration/logging distortion last: drift and recalibration live in
    // the meter electronics, the unit mixup in the logging path — all
    // downstream of the sensor (and of its full-scale clipping).
    if (miscalibrated) {
      w[i] *= fate.byzantine_gain(t);
      ++ev.samples_miscalibrated;
    }
  }

  if (events != nullptr) events->accumulate(ev);
  return GappyTrace(PowerTrace(clean.t0(), clean.dt(), std::move(w)),
                    std::move(valid));
}

std::size_t flag_stuck_runs(GappyTrace& trace, std::size_t min_run) {
  PV_EXPECTS(min_run >= 2, "stuck-run length must be >= 2");
  const PowerTrace& t = trace.trace();
  std::size_t flagged = 0;
  std::size_t run_start = 0;
  std::size_t run_len = 0;
  const auto flush = [&](std::size_t end) {
    if (run_len >= min_run) {
      // The first sample of a run is the sensor's honest last reading;
      // everything after it is the frozen repeat.
      for (std::size_t i = run_start + 1; i < end; ++i) {
        if (trace.valid_at(i)) {
          trace.invalidate(i);
          ++flagged;
        }
      }
    }
  };
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (trace.valid_at(i) && run_len > 0 &&
        t.watt_at(i) == t.watt_at(run_start)) {
      ++run_len;
      continue;
    }
    flush(i);
    if (trace.valid_at(i)) {
      run_start = i;
      run_len = 1;
    } else {
      run_len = 0;
    }
  }
  flush(trace.size());
  return flagged;
}

bool FaultPlan::forced_dead(std::size_t meter_id) const {
  return std::find(dead_meters.begin(), dead_meters.end(), meter_id) !=
         dead_meters.end();
}

std::size_t FaultPlan::forced_byzantine(std::size_t meter_id) const {
  const auto it = std::find(byzantine_meters.begin(), byzantine_meters.end(),
                            meter_id);
  return it == byzantine_meters.end()
             ? npos
             : static_cast<std::size_t>(it - byzantine_meters.begin());
}

void FaultPlan::apply_forced_byzantine(std::size_t pos,
                                       TimeWindow campaign_window,
                                       MeterFate& fate) const {
  PV_EXPECTS(campaign_window.valid(), "empty campaign window");
  fate.byz_origin_s = campaign_window.begin.value();
  // Alternate the error direction every full drift/unit/clock/step cycle so
  // a forced cohort's lies do not all push the submitted number one way.
  const double sign = (pos / 4) % 2 == 0 ? 1.0 : -1.0;
  switch (pos % 4) {
    case 0:
      fate.drift_rate_per_hour = sign * byz_drift_per_hour;
      break;
    case 1:
      fate.unit_scale = sign > 0.0 ? byz_unit_scale : 1.0 / byz_unit_scale;
      break;
    case 2:
      fate.clock_skew_s = sign * byz_clock_skew_s;
      break;
    default:
      fate.recalibrates = true;
      // A recalibration event at 40% of the window: long enough before it
      // to learn the meter's honest level, long enough after to convict.
      fate.recal_time_s = campaign_window.begin.value() +
                          0.4 * campaign_window.duration().value();
      fate.recal_gain = 1.0 + sign * byz_step_frac;
      break;
  }
}

}  // namespace pv
