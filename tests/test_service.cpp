// Campaign-service contracts: request isolation, admission, deadlines,
// caching and drain (src/service).
//
// The flagship contract is isolation: N campaigns running concurrently
// inside one service — sharing the worker pool and the provision cache —
// must produce assessments byte-identical to the same campaigns run solo
// through run_campaign.  Any cross-request contamination (shared RNG
// state, a torn cache artifact, config bleed) breaks the byte compare.

#include "service/service.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "service/request.hpp"
#include "trace/wal.hpp"

namespace pv {
namespace {

/// The service-free reference: one campaign, materialized and run exactly
/// as the service would, alone in the process.
std::string solo_assessment(const ServiceRequest& req) {
  const Scenario scenario = build_scenario(scenario_spec_of(req));
  const MeasurementPlan plan = plan_of(req, scenario);
  const CampaignConfig config = campaign_config_of(req, plan);
  const CampaignResult result =
      run_campaign(*scenario.cluster, *scenario.electrical, plan, config);
  return render_json(assessment_document(plan, result));
}

/// Eight deliberately heterogeneous campaigns: different seeds, fault
/// presets, engines, levels, thread counts — plus two sharing one
/// scenario spec (same nodes/cv/seed) so the cache serves both.
std::vector<ServiceRequest> mixed_requests() {
  std::vector<ServiceRequest> reqs(8);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    reqs[i].id = "iso-" + std::to_string(i);
    reqs[i].nodes = 24 + 8 * (i % 3);
    reqs[i].seed = 100 + i;
    reqs[i].interval_s = 10.0;
  }
  reqs[1].faults = "mild";
  reqs[2].faults = "harsh";
  reqs[2].dropout = 0.1;
  reqs[3].level = 2;
  reqs[4].engine = "eager";
  reqs[5].faults = "harsh";
  reqs[5].reconcile = true;
  reqs[5].level = 3;
  reqs[5].threads = 2;
  reqs[6].dead = 2;
  // reqs[7] shares reqs[0]'s scenario spec (same nodes/cv/seed) but runs
  // a different campaign on it — cache-shared, campaign-isolated.
  reqs[7].nodes = reqs[0].nodes;
  reqs[7].seed = reqs[0].seed;
  reqs[7].faults = "mild";
  reqs[7].level = 2;
  return reqs;
}

TEST(CampaignService, ConcurrentCampaignsAreBitIdenticalToSoloRuns) {
  const std::vector<ServiceRequest> reqs = mixed_requests();
  std::vector<std::string> solo;
  solo.reserve(reqs.size());
  for (const auto& req : reqs) solo.push_back(solo_assessment(req));

  for (const unsigned workers : {1u, 4u, 8u}) {
    ServiceConfig config;
    config.workers = workers;
    config.max_queue = reqs.size();
    CampaignService service(config);
    std::vector<std::size_t> tickets;
    for (const auto& req : reqs) {
      const AdmissionVerdict verdict = service.submit(req);
      ASSERT_NE(verdict.decision, Admission::kShed);
      tickets.push_back(verdict.ticket);
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const ServiceResponse resp = service.wait(tickets[i]);
      ASSERT_EQ(resp.code, ResponseCode::kOk)
          << reqs[i].id << " with " << workers << " workers: " << resp.message;
      EXPECT_EQ(resp.assessment_json, solo[i])
          << reqs[i].id << " diverged from its solo run with " << workers
          << " workers";
    }
    const DrainReport report = service.drain();
    EXPECT_EQ(report.admitted, reqs.size());
    EXPECT_EQ(report.completed, reqs.size());
    // reqs[7] shares reqs[0]'s fingerprint: at least one cache hit, and
    // never more builds than distinct specs.
    EXPECT_GE(report.cache.hits, 1u);
    EXPECT_LE(report.cache.misses, reqs.size() - 1);
  }
}

TEST(CampaignService, QueuedRequestsAllCompleteInOrderOfTicket) {
  ServiceConfig config;
  config.workers = 1;
  config.max_queue = 8;
  CampaignService service(config);
  std::vector<std::size_t> tickets;
  for (int i = 0; i < 4; ++i) {
    ServiceRequest req;
    req.id = "q-" + std::to_string(i);
    req.nodes = 24;
    req.interval_s = 10.0;
    const AdmissionVerdict verdict = service.submit(req);
    ASSERT_NE(verdict.decision, Admission::kShed);
    tickets.push_back(verdict.ticket);
  }
  for (const std::size_t ticket : tickets) {
    EXPECT_EQ(service.wait(ticket).code, ResponseCode::kOk);
  }
  const DrainReport report = service.drain();
  EXPECT_EQ(report.admitted, 4u);
  EXPECT_EQ(report.completed, 4u);
  EXPECT_EQ(report.shed, 0u);
}

TEST(CampaignService, ShedsWithRetryAfterWhenDraining) {
  ServiceConfig config;
  config.workers = 1;
  config.retry_after_s = 2.5;
  config.chaos.drain_after = 1;  // deterministic: admission 1 trips drain
  CampaignService service(config);

  ServiceRequest req;
  req.id = "first";
  req.nodes = 24;
  req.interval_s = 10.0;
  const AdmissionVerdict first = service.submit(req);
  EXPECT_EQ(first.decision, Admission::kAccepted);

  req.id = "second";
  const AdmissionVerdict second = service.submit(req);
  EXPECT_EQ(second.decision, Admission::kShed);
  EXPECT_TRUE(second.has_ticket);
  EXPECT_DOUBLE_EQ(second.retry_after_s, 2.5);

  const ServiceResponse resp = service.wait(second.ticket);
  EXPECT_EQ(resp.code, ResponseCode::kShed);
  EXPECT_DOUBLE_EQ(resp.retry_after_s, 2.5);

  EXPECT_EQ(service.wait(first.ticket).code, ResponseCode::kOk);
  const DrainReport report = service.drain();
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(report.admitted, 1u);
  EXPECT_EQ(report.completed, 1u);
}

TEST(CampaignService, ExhaustedDeadlineYieldsTypedResponseNotTornResult) {
  ServiceConfig config;
  config.workers = 2;
  CampaignService service(config);
  ServiceRequest req;
  req.id = "tight";
  req.nodes = 24;
  req.interval_s = 10.0;
  req.deadline_ms = 1e-7;  // expired by the first boundary check
  const AdmissionVerdict verdict = service.submit(req);
  ASSERT_NE(verdict.decision, Admission::kShed);
  const ServiceResponse resp = service.wait(verdict.ticket);
  EXPECT_EQ(resp.code, ResponseCode::kDeadlineExceeded);
  EXPECT_TRUE(resp.assessment_json.empty());  // no partial document

  // A deadline casualty must not perturb a healthy neighbor.
  ServiceRequest ok;
  ok.id = "roomy";
  ok.nodes = 24;
  ok.interval_s = 10.0;
  const AdmissionVerdict v2 = service.submit(ok);
  const ServiceResponse r2 = service.wait(v2.ticket);
  EXPECT_EQ(r2.code, ResponseCode::kOk);
  EXPECT_EQ(r2.assessment_json, solo_assessment(ok));
}

TEST(CampaignService, DrainIsIdempotentAndAccountsForEverything) {
  ServiceConfig config;
  config.workers = 2;
  CampaignService service(config);
  ServiceRequest req;
  req.id = "one";
  req.nodes = 24;
  req.interval_s = 10.0;
  const AdmissionVerdict verdict = service.submit(req);
  EXPECT_EQ(service.wait(verdict.ticket).code, ResponseCode::kOk);
  const DrainReport a = service.drain();
  const DrainReport b = service.drain();
  EXPECT_EQ(a.submitted, b.submitted);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.submitted, a.invalid + a.shed + a.admitted);
  EXPECT_EQ(a.admitted, a.completed + a.checkpointed);

  // A drained service sheds everything that still arrives.
  const AdmissionVerdict late = service.submit(req);
  EXPECT_EQ(late.decision, Admission::kShed);
}

}  // namespace
}  // namespace pv
