file(REMOVE_RECURSE
  "CMakeFiles/bench_headline_l1_spread.dir/bench_headline_l1_spread.cpp.o"
  "CMakeFiles/bench_headline_l1_spread.dir/bench_headline_l1_spread.cpp.o.d"
  "bench_headline_l1_spread"
  "bench_headline_l1_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_headline_l1_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
