// Property-based tests: parameterized sweeps over the statistical core and
// the simulation substrates (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "core/campaign.hpp"
#include "core/sample_size.hpp"
#include "sim/catalog.hpp"
#include "sim/transient.hpp"
#include "meter/psu.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"
#include "stats/special.hpp"
#include "trace/time_series.hpp"
#include "util/mathx.hpp"
#include "workload/hpl.hpp"
#include "workload/imbalance.hpp"

namespace pv {
namespace {

// ---------------------------------------------------------------------------
// Property: Equation 5 recommendations actually deliver the promised
// accuracy at roughly the promised confidence, across the (lambda, cv) grid.

class SampleSizeCoverage
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SampleSizeCoverage, RecommendedNDeliversAccuracy) {
  const auto [lambda, cv] = GetParam();
  constexpr std::size_t kN = 4000;
  constexpr int kTrials = 400;
  const std::size_t n = required_sample_size(0.05, lambda, cv, kN);

  // Fleet with the assumed cv.
  Rng fleet_rng(1234);
  std::vector<double> fleet(kN);
  for (auto& x : fleet) x = fleet_rng.normal(100.0, 100.0 * cv);
  const double mu = mean_of(fleet);

  Rng rng(77);
  int within = 0;
  for (int t = 0; t < kTrials; ++t) {
    const auto idx = sample_without_replacement(rng, kN, n);
    const double est = mean_of(gather(fleet, idx));
    if (std::fabs(est - mu) <= lambda * mu) ++within;
  }
  // Nominal coverage is 95%; allow generous Monte-Carlo + z-vs-t slack.
  EXPECT_GE(within / static_cast<double>(kTrials), 0.88)
      << "lambda=" << lambda << " cv=" << cv << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SampleSizeCoverage,
    ::testing::Combine(::testing::Values(0.01, 0.015, 0.02),
                       ::testing::Values(0.02, 0.03, 0.05)));

// ---------------------------------------------------------------------------
// Property: t quantile/CDF round-trip across degrees of freedom and levels.

class TQuantileRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TQuantileRoundTrip, CdfOfQuantileIsIdentity) {
  const auto [nu, p] = GetParam();
  EXPECT_NEAR(t_cdf(t_quantile(p, nu), nu), p, 1e-9);
  // Symmetry: q(1-p) = -q(p).
  EXPECT_NEAR(t_quantile(1.0 - p, nu), -t_quantile(p, nu), 1e-8);
  // t critical value never below the z critical value.
  EXPECT_GE(t_critical(0.05, nu), z_critical(0.05) - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TQuantileRoundTrip,
    ::testing::Combine(::testing::Values(1.0, 2.0, 5.0, 14.0, 30.0, 291.0),
                       ::testing::Values(0.01, 0.05, 0.25, 0.4)));

// ---------------------------------------------------------------------------
// Property: trace energy decomposes additively over adjacent windows.

class TraceAdditivity : public ::testing::TestWithParam<double> {};

TEST_P(TraceAdditivity, EnergySplitsAtAnyCut) {
  const double cut = GetParam();
  Rng rng(5);
  std::vector<double> w(200);
  for (auto& v : w) v = 100.0 + rng.uniform(0.0, 50.0);
  const PowerTrace t(Seconds{0.0}, Seconds{1.0}, std::move(w));
  const TimeWindow whole{Seconds{10.0}, Seconds{190.0}};
  const TimeWindow left{Seconds{10.0}, Seconds{cut}};
  const TimeWindow right{Seconds{cut}, Seconds{190.0}};
  EXPECT_NEAR(t.energy(left).value() + t.energy(right).value(),
              t.energy(whole).value(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cuts, TraceAdditivity,
                         ::testing::Values(10.5, 42.0, 77.25, 100.0, 189.5));

// ---------------------------------------------------------------------------
// Property: PSU AC/DC mapping is monotone and invertible across loads and
// certification curves.

class PsuRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PsuRoundTrip, DcAcDcIsIdentity) {
  const auto [curve_id, load] = GetParam();
  const PsuEfficiencyCurve curve = curve_id == 0
                                       ? PsuEfficiencyCurve::gold()
                                       : curve_id == 1
                                             ? PsuEfficiencyCurve::platinum()
                                             : PsuEfficiencyCurve::titanium();
  const PsuModel psu(Watts{1500.0}, curve);
  const Watts dc{load * 1500.0};
  const Watts ac = psu.ac_input(dc);
  EXPECT_GT(ac.value(), dc.value());
  EXPECT_NEAR(psu.dc_output(ac).value(), dc.value(), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PsuRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0.05, 0.2, 0.5, 0.8, 1.0)));

// ---------------------------------------------------------------------------
// Property: the HPL profile's first-20% average always dominates its
// last-20% average, and the gap grows with the saturation knee.

class HplTailMonotone : public ::testing::TestWithParam<double> {};

TEST_P(HplTailMonotone, FirstSegmentBeatsLast) {
  HplParams p = HplParams::gpu_incore();
  p.knee = GetParam();
  p.osc_depth = 0.0;
  p.warmup_amp = 0.0;
  const HplWorkload hpl(p, hours(1.0));
  const RunPhases run = hpl.phases();
  const double first = average_over(
      [&](double t) { return hpl.intensity(t); }, run.core_begin().value(),
      run.core_begin().value() + 0.2 * run.core.value());
  const double last = average_over(
      [&](double t) { return hpl.intensity(t); },
      run.core_begin().value() + 0.8 * run.core.value(),
      run.core_end().value());
  EXPECT_GT(first, last);
}

INSTANTIATE_TEST_SUITE_P(Knees, HplTailMonotone,
                         ::testing::Values(0.01, 0.05, 0.1, 0.2, 0.4));

TEST(HplTailMonotoneExtra, GapGrowsWithKnee) {
  const auto gap = [](double knee) {
    HplParams p = HplParams::gpu_incore();
    p.knee = knee;
    p.osc_depth = 0.0;
    p.warmup_amp = 0.0;
    const HplWorkload hpl(p, hours(1.0));
    const RunPhases run = hpl.phases();
    const double first = average_over(
        [&](double t) { return hpl.intensity(t); }, run.core_begin().value(),
        run.core_begin().value() + 0.2 * run.core.value());
    const double last = average_over(
        [&](double t) { return hpl.intensity(t); },
        run.core_begin().value() + 0.8 * run.core.value(),
        run.core_end().value());
    return (first - last) / first;
  };
  EXPECT_LT(gap(0.01), gap(0.1));
  EXPECT_LT(gap(0.1), gap(0.4));
}

// ---------------------------------------------------------------------------
// Property: Equation 5's FPC never exceeds the infinite-population size and
// never exceeds N.

class FpcBounds
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {
};

TEST_P(FpcBounds, BoundedByN0AndN) {
  const auto [lambda, cv, total] = GetParam();
  const double n0 = required_sample_size_infinite(0.05, lambda, cv);
  const std::size_t n = required_sample_size(0.05, lambda, cv, total);
  EXPECT_LE(static_cast<double>(n), std::ceil(n0) + 1e-9);
  EXPECT_LE(n, total);
  EXPECT_GE(n, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FpcBounds,
    ::testing::Combine(::testing::Values(0.005, 0.01, 0.02),
                       ::testing::Values(0.015, 0.028, 0.05),
                       ::testing::Values<std::size_t>(210, 5040, 18688)));

// ---------------------------------------------------------------------------
// Property: sample mean of without-replacement subsets is unbiased across
// subset sizes.

class SubsetUnbiasedness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubsetUnbiasedness, MeanOfMeansMatchesPopulation) {
  const std::size_t n = GetParam();
  Rng fleet_rng(9);
  std::vector<double> fleet(1000);
  for (auto& x : fleet) x = fleet_rng.normal(500.0, 20.0);
  const double mu = mean_of(fleet);
  Rng rng(10);
  double acc = 0.0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    acc += mean_of(gather(fleet, sample_without_replacement(rng, 1000, n)));
  }
  const double se = 20.0 / std::sqrt(static_cast<double>(n) * kTrials);
  EXPECT_NEAR(acc / kTrials, mu, 5.0 * se);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubsetUnbiasedness,
                         ::testing::Values<std::size_t>(2, 4, 16, 64, 256));


// ---------------------------------------------------------------------------
// Property: every catalog profile hits its published segment averages.

class CatalogCalibration : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CatalogCalibration, SegmentAveragesExact) {
  const auto& sys = catalog::table2_systems()[GetParam()];
  const CalibratedSystemProfile prof = catalog::make_profile(sys);
  const RunPhases p = prof.phases();
  const auto avg = [&](double a, double b) {
    return average_over([&](double t) { return prof.system_power_w(t); },
                        p.core_begin().value() + a * p.core.value(),
                        p.core_begin().value() + b * p.core.value(), 8192);
  };
  EXPECT_NEAR(avg(0.0, 1.0) / sys.core_avg.value(), 1.0, 2e-4) << sys.name;
  EXPECT_NEAR(avg(0.0, 0.2) / sys.first20_avg.value(), 1.0, 2e-4) << sys.name;
  EXPECT_NEAR(avg(0.8, 1.0) / sys.last20_avg.value(), 1.0, 2e-4) << sys.name;
}

INSTANTIATE_TEST_SUITE_P(AllSystems, CatalogCalibration,
                         ::testing::Values<std::size_t>(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Property: the transient integrator settles to the steady-state thermal
// solve across activity levels (within the temperature-leakage feedback).

class TransientSettle : public ::testing::TestWithParam<double> {};

TEST_P(TransientSettle, TemperatureNearAlgebraicSolve) {
  const double activity = GetParam();
  Rng rng(900);
  const NodeInstance node(catalog::lcsc_node_spec(), rng);
  const TransientNodeSim sim(node, NodeSettings::defaults(),
                             TransientConfig{});
  const TransientState settled = sim.settle(activity);
  const ThermalState algebraic =
      node.thermal_state(activity, NodeSettings::defaults());
  // The leakage feedback raises the settle point somewhat; within 12 C.
  EXPECT_NEAR(settled.component_temp.value(),
              algebraic.component_temp.value(), 12.0)
      << "activity=" << activity;
  EXPECT_GE(settled.component_temp.value(),
            algebraic.component_temp.value() - 1.0);
}

INSTANTIATE_TEST_SUITE_P(Activities, TransientSettle,
                         ::testing::Values(0.2, 0.5, 0.8, 1.0));

// ---------------------------------------------------------------------------
// Property: imbalanced load shares always average to exactly 1.

class ShareConservation
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ShareConservation, MeanShareIsOne) {
  const auto [cv, hot] = GetParam();
  ImbalanceParams p;
  p.share_cv = cv;
  p.hot_node_prob = hot;
  const auto shares = imbalanced_load_shares(3000, p, 77);
  EXPECT_NEAR(mean_of(shares), 1.0, 1e-12);
  for (double s2 : shares) ASSERT_GT(s2, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ShareConservation,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.3, 0.6),
                       ::testing::Values(0.0, 0.05)));

// ---------------------------------------------------------------------------
// Property: campaigns are bit-deterministic for a fixed seed.

class CampaignDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CampaignDeterminism, SameSeedSameSubmission) {
  const std::uint64_t seed = GetParam();
  auto workload = std::make_shared<HplWorkload>(HplParams::cpu_traditional(),
                                                hours(1.0));
  auto powers = generate_node_powers(
      64, 400.0, FleetVariability::typical_cpu(), 5);
  const ClusterPowerModel cluster("det", std::move(powers), workload);
  const SystemPowerModel electrical = make_system_power_model(
      cluster, 16, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{});
  PlanInputs in;
  in.total_nodes = 64;
  in.approx_node_power = Watts{400.0};
  in.run = cluster.phases();
  Rng rng_a(seed), rng_b(seed);
  const auto spec = MethodologySpec::get(Level::kL1, Revision::kV2015);
  const auto plan_a = plan_measurement(spec, in, rng_a);
  const auto plan_b = plan_measurement(spec, in, rng_b);
  EXPECT_EQ(plan_a.node_indices, plan_b.node_indices);
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.meter_interval_override = Seconds{30.0};
  const auto ra = run_campaign(cluster, electrical, plan_a, cfg);
  const auto rb = run_campaign(cluster, electrical, plan_b, cfg);
  EXPECT_DOUBLE_EQ(ra.submitted_power.value(), rb.submitted_power.value());
  EXPECT_EQ(ra.node_mean_powers_w, rb.node_mean_powers_w);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CampaignDeterminism,
                         ::testing::Values<std::uint64_t>(1, 42, 31337));

}  // namespace
}  // namespace pv
