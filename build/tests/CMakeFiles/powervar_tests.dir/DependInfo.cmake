
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_autocorr.cpp" "tests/CMakeFiles/powervar_tests.dir/test_autocorr.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_autocorr.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/powervar_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bootstrap.cpp" "tests/CMakeFiles/powervar_tests.dir/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_bootstrap.cpp.o.d"
  "/root/repo/tests/test_calibration.cpp" "tests/CMakeFiles/powervar_tests.dir/test_calibration.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_calibration.cpp.o.d"
  "/root/repo/tests/test_campaign.cpp" "tests/CMakeFiles/powervar_tests.dir/test_campaign.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_campaign.cpp.o.d"
  "/root/repo/tests/test_campaign_aspects.cpp" "tests/CMakeFiles/powervar_tests.dir/test_campaign_aspects.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_campaign_aspects.cpp.o.d"
  "/root/repo/tests/test_capping.cpp" "tests/CMakeFiles/powervar_tests.dir/test_capping.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_capping.cpp.o.d"
  "/root/repo/tests/test_catalog.cpp" "tests/CMakeFiles/powervar_tests.dir/test_catalog.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_catalog.cpp.o.d"
  "/root/repo/tests/test_cluster.cpp" "tests/CMakeFiles/powervar_tests.dir/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_cluster.cpp.o.d"
  "/root/repo/tests/test_components.cpp" "tests/CMakeFiles/powervar_tests.dir/test_components.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_components.cpp.o.d"
  "/root/repo/tests/test_coverage.cpp" "tests/CMakeFiles/powervar_tests.dir/test_coverage.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_coverage.cpp.o.d"
  "/root/repo/tests/test_descriptive.cpp" "tests/CMakeFiles/powervar_tests.dir/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_descriptive.cpp.o.d"
  "/root/repo/tests/test_distributions.cpp" "tests/CMakeFiles/powervar_tests.dir/test_distributions.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_distributions.cpp.o.d"
  "/root/repo/tests/test_fleet.cpp" "tests/CMakeFiles/powervar_tests.dir/test_fleet.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_fleet.cpp.o.d"
  "/root/repo/tests/test_format.cpp" "tests/CMakeFiles/powervar_tests.dir/test_format.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_format.cpp.o.d"
  "/root/repo/tests/test_gaming.cpp" "tests/CMakeFiles/powervar_tests.dir/test_gaming.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_gaming.cpp.o.d"
  "/root/repo/tests/test_hierarchy.cpp" "tests/CMakeFiles/powervar_tests.dir/test_hierarchy.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_hierarchy.cpp.o.d"
  "/root/repo/tests/test_histogram.cpp" "tests/CMakeFiles/powervar_tests.dir/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_histogram.cpp.o.d"
  "/root/repo/tests/test_imbalance.cpp" "tests/CMakeFiles/powervar_tests.dir/test_imbalance.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_imbalance.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/powervar_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_list_quality.cpp" "tests/CMakeFiles/powervar_tests.dir/test_list_quality.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_list_quality.cpp.o.d"
  "/root/repo/tests/test_mathx.cpp" "tests/CMakeFiles/powervar_tests.dir/test_mathx.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_mathx.cpp.o.d"
  "/root/repo/tests/test_meter.cpp" "tests/CMakeFiles/powervar_tests.dir/test_meter.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_meter.cpp.o.d"
  "/root/repo/tests/test_misc_edges.cpp" "tests/CMakeFiles/powervar_tests.dir/test_misc_edges.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_misc_edges.cpp.o.d"
  "/root/repo/tests/test_node.cpp" "tests/CMakeFiles/powervar_tests.dir/test_node.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_node.cpp.o.d"
  "/root/repo/tests/test_normality.cpp" "tests/CMakeFiles/powervar_tests.dir/test_normality.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_normality.cpp.o.d"
  "/root/repo/tests/test_parallel.cpp" "tests/CMakeFiles/powervar_tests.dir/test_parallel.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_parallel.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/powervar_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/powervar_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_psu.cpp" "tests/CMakeFiles/powervar_tests.dir/test_psu.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_psu.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/powervar_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/powervar_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_sample_size.cpp" "tests/CMakeFiles/powervar_tests.dir/test_sample_size.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_sample_size.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/powervar_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_segment.cpp" "tests/CMakeFiles/powervar_tests.dir/test_segment.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_segment.cpp.o.d"
  "/root/repo/tests/test_spec.cpp" "tests/CMakeFiles/powervar_tests.dir/test_spec.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_spec.cpp.o.d"
  "/root/repo/tests/test_special.cpp" "tests/CMakeFiles/powervar_tests.dir/test_special.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_special.cpp.o.d"
  "/root/repo/tests/test_submission.cpp" "tests/CMakeFiles/powervar_tests.dir/test_submission.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_submission.cpp.o.d"
  "/root/repo/tests/test_tco.cpp" "tests/CMakeFiles/powervar_tests.dir/test_tco.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_tco.cpp.o.d"
  "/root/repo/tests/test_thermal.cpp" "tests/CMakeFiles/powervar_tests.dir/test_thermal.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_thermal.cpp.o.d"
  "/root/repo/tests/test_time_series.cpp" "tests/CMakeFiles/powervar_tests.dir/test_time_series.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_time_series.cpp.o.d"
  "/root/repo/tests/test_trace_io.cpp" "tests/CMakeFiles/powervar_tests.dir/test_trace_io.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_trace_io.cpp.o.d"
  "/root/repo/tests/test_transient.cpp" "tests/CMakeFiles/powervar_tests.dir/test_transient.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_transient.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/powervar_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_window_select.cpp" "tests/CMakeFiles/powervar_tests.dir/test_window_select.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_window_select.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/powervar_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/powervar_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/powervar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/powervar_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/powervar_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/powervar_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/powervar_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/powervar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/powervar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
