# Empty compiler generated dependencies file for green500_submission.
# This may be replaced when dependencies are built.
