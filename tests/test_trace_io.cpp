// Tests for trace CSV import/export.

#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>

#include "stats/rng.hpp"

namespace pv {
namespace {

PowerTrace sample_trace() {
  Rng rng(1);
  std::vector<double> w(50);
  for (auto& v : w) v = 400.0 + rng.uniform(0.0, 100.0);
  return PowerTrace(Seconds{120.0}, Seconds{2.0}, std::move(w));
}

TEST(TraceIo, RoundTripPreservesEverything) {
  const PowerTrace original = sample_trace();
  const std::string path = ::testing::TempDir() + "/pv_trace_roundtrip.csv";
  save_trace_csv(original, path);
  const PowerTrace loaded = load_trace_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_DOUBLE_EQ(loaded.t0().value(), 120.0);
  EXPECT_DOUBLE_EQ(loaded.dt().value(), 2.0);
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_DOUBLE_EQ(loaded.watt_at(i), original.watt_at(i)) << "i=" << i;
  }
  EXPECT_DOUBLE_EQ(loaded.mean_power().value(),
                   original.mean_power().value());
}

TEST(TraceIo, RoundTripIsBitExact) {
  // The exporter prints max_digits10 significant digits, so every finite
  // double survives the text round trip bit-for-bit — not just to within
  // a tolerance.  dt must be binary-representable (the importer re-infers
  // it from the printed timestamps).
  Rng rng(42);
  std::vector<double> w(200);
  for (auto& v : w) v = rng.normal(431.7, 12.9);
  const PowerTrace original(Seconds{0.25}, Seconds{0.25}, std::move(w));
  const std::string path = ::testing::TempDir() + "/pv_trace_bitexact.csv";
  save_trace_csv(original, path);
  const PowerTrace loaded = load_trace_csv(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded.t0().value(), original.t0().value());
  EXPECT_EQ(loaded.dt().value(), original.dt().value());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(loaded.watt_at(i), original.watt_at(i)) << "i=" << i;
  }
  // And a second export of the re-imported trace is byte-identical.
  const std::string path2 = ::testing::TempDir() + "/pv_trace_bitexact2.csv";
  save_trace_csv(loaded, path2);
  std::ifstream a(path), b(path2);
  const std::string text_a((std::istreambuf_iterator<char>(a)),
                           std::istreambuf_iterator<char>());
  const std::string text_b((std::istreambuf_iterator<char>(b)),
                           std::istreambuf_iterator<char>());
  EXPECT_EQ(text_a, text_b);
}

TEST(TraceIo, ParsesMinimalText) {
  const PowerTrace t = parse_trace_csv(
      "t_s,power_w\n0,100\n1,110\n2,120\n");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.dt().value(), 1.0);
  EXPECT_DOUBLE_EQ(t.watt_at(2), 120.0);
}

TEST(TraceIo, ToleratesWindowsLineEndingsAndBlankLines) {
  const PowerTrace t = parse_trace_csv(
      "t_s,power_w\r\n0,100\r\n\r\n1,110\r\n");
  EXPECT_EQ(t.size(), 2u);
}

TEST(TraceIo, RejectsMalformedRows) {
  EXPECT_THROW(parse_trace_csv("h\n0,100\nnot-a-number,5\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace_csv("h\n0,100\n"), std::runtime_error);  // 1 sample
  EXPECT_THROW(parse_trace_csv("h\n"), std::runtime_error);
}

TEST(TraceIo, RejectsNonUniformSampling) {
  EXPECT_THROW(parse_trace_csv("h\n0,1\n1,1\n5,1\n"), std::runtime_error);
  EXPECT_THROW(parse_trace_csv("h\n0,1\n0,1\n0,1\n"), std::runtime_error);
}

TEST(TraceIo, ToleratesSmallTimestampJitter) {
  // 0.5% jitter snaps to the median interval.
  const PowerTrace t = parse_trace_csv(
      "h\n0,1\n1.002,2\n2.000,3\n2.999,4\n");
  EXPECT_EQ(t.size(), 4u);
  EXPECT_NEAR(t.dt().value(), 1.0, 0.01);
}

TEST(TraceIo, RejectsNonFinitePower) {
  EXPECT_THROW(parse_trace_csv("h\n0,100\n1,nan\n2,120\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace_csv("h\n0,100\n1,inf\n2,120\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace_csv("h\n0,100\n1,-inf\n2,120\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsNonFiniteTimestamp) {
  EXPECT_THROW(parse_trace_csv("h\n0,100\nnan,110\n2,120\n"),
               std::runtime_error);
  EXPECT_THROW(parse_trace_csv("h\ninf,100\n1,110\n2,120\n"),
               std::runtime_error);
}

TEST(TraceIo, RejectsNegativeTimestamps) {
  EXPECT_THROW(parse_trace_csv("h\n-1,100\n0,110\n1,120\n"),
               std::runtime_error);
  try {
    parse_trace_csv("h\n-1,100\n0,110\n1,120\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("negative timestamp"),
              std::string::npos);
  }
}

TEST(TraceIo, NegativePowerIsStillAccepted) {
  // Negative *power* readings are real (miscalibrated offset at idle);
  // only non-finite values and negative time are data corruption.
  const PowerTrace t = parse_trace_csv("h\n0,-5\n1,10\n2,12\n");
  EXPECT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t.watt_at(0), -5.0);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_trace_csv("/nonexistent/definitely/missing.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace pv
