#include "trace/wal.hpp"

#include <array>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "util/expects.hpp"

namespace pv {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::string hex32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", v);
  return buf;
}

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// Splits "X <payload> <crc>" and validates the CRC over the payload.
// Returns true and fills `payload` only for a well-formed, uncorrupted line
// carrying tag `tag`.
bool parse_line(const std::string& line, char tag, std::string* payload) {
  if (line.size() < 12 || line[0] != tag || line[1] != ' ') return false;
  const std::size_t crc_at = line.rfind(' ');
  if (crc_at == std::string::npos || crc_at < 2 ||
      line.size() - crc_at - 1 != 8) {
    return false;
  }
  const std::string body = line.substr(2, crc_at - 2);
  const std::string crc_text = line.substr(crc_at + 1);
  std::uint32_t crc = 0;
  if (std::sscanf(crc_text.c_str(), "%8x", &crc) != 1) return false;
  if (crc != crc32(body)) return false;
  *payload = body;
  return true;
}

}  // namespace

std::uint32_t crc32(const std::string& data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

WalWriter::WalWriter(const std::string& path, std::uint64_t fingerprint) {
  out_.open(path, std::ios::out | std::ios::trunc);
  if (!out_) throw std::runtime_error("wal: cannot create journal: " + path);
  const std::string body = hex64(fingerprint);
  out_ << "H " << body << ' ' << hex32(crc32(body)) << '\n';
  out_.flush();
  if (!out_) throw std::runtime_error("wal: header write failed: " + path);
}

WalWriter WalWriter::append_to(const std::string& path,
                               std::uint64_t fingerprint) {
  // Re-validate the header before appending: appending to a journal of a
  // different campaign would interleave incompatible records.
  const WalReplay replay = replay_wal(path);
  if (!replay.exists) {
    throw std::runtime_error("wal: cannot append, no journal at: " + path);
  }
  if (replay.fingerprint != fingerprint) {
    throw std::runtime_error(
        "wal: journal at " + path +
        " belongs to a different campaign configuration");
  }
  WalWriter w;
  w.out_.open(path, std::ios::out | std::ios::app);
  if (!w.out_) throw std::runtime_error("wal: cannot append to: " + path);
  return w;
}

void WalWriter::append(const std::string& payload) {
  PV_EXPECTS(payload.find('\n') == std::string::npos,
             "wal payload must be a single line");
  out_ << "R " << payload << ' ' << hex32(crc32(payload)) << '\n';
  out_.flush();  // a record either lands before a crash or tears visibly
  if (!out_) throw std::runtime_error("wal: record append failed");
  ++written_;
}

WalReplay replay_wal(const std::string& path) {
  WalReplay result;
  std::ifstream in(path);
  if (!in) return result;  // no journal yet: a fresh campaign

  std::string line;
  if (!std::getline(in, line)) {
    // Present but empty: created and crashed before the header flushed.
    return result;
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::string header;
  if (!parse_line(line, 'H', &header)) {
    throw std::runtime_error("wal: " + path + " has no valid journal header");
  }
  unsigned long long fp = 0;
  if (std::sscanf(header.c_str(), "%16llx", &fp) != 1) {
    throw std::runtime_error("wal: " + path + " header fingerprint unreadable");
  }
  result.exists = true;
  result.fingerprint = static_cast<std::uint64_t>(fp);

  bool torn = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::string payload;
    if (torn || !parse_line(line, 'R', &payload)) {
      // First bad line ends the trustworthy prefix (a crash tears at most
      // the tail); count the rest rather than resurrecting it.
      torn = true;
      ++result.torn_lines;
      continue;
    }
    result.records.push_back(std::move(payload));
  }
  return result;
}

}  // namespace pv
