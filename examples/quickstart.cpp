// quickstart — measure a simulated cluster's power the EE HPC WG way.
//
// Builds a 128-node machine running HPL, executes a Level 1 measurement
// under the 2015 rules (random node subset, full core phase), extrapolates
// to the full system, and prints the accuracy assessment next to the
// simulation's ground truth.
//
//   $ ./examples/quickstart

#include <iostream>
#include <memory>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "sim/cluster.hpp"
#include "sim/fleet.hpp"
#include "workload/hpl.hpp"

int main() {
  using namespace pv;

  // 1. Describe the machine: 128 nodes averaging ~420 W under load, with a
  //    typical ~2% node-to-node spread, running a 2-hour CPU HPL.
  auto workload = std::make_shared<HplWorkload>(
      HplParams::cpu_traditional(), hours(2.0), minutes(8.0), minutes(4.0));
  auto node_powers = generate_node_powers(
      128, 420.0, FleetVariability::typical_cpu().scaled_to(0.02),
      /*seed=*/42);
  const ClusterPowerModel cluster("quickstart-cluster", std::move(node_powers),
                                  workload);

  // 2. Lower it into an electrical model: platinum PSUs, racks of 16,
  //    interconnect/storage/service-node auxiliaries.
  const SystemPowerModel electrical = make_system_power_model(
      cluster, /*nodes_per_rack=*/16, PsuEfficiencyCurve::platinum(),
      AuxiliaryConfig{});

  // 3. Plan a Level 1 measurement under the 2015 rules.
  const MethodologySpec spec =
      MethodologySpec::get(Level::kL1, Revision::kV2015);
  PlanInputs inputs;
  inputs.total_nodes = cluster.node_count();
  inputs.approx_node_power = watts(420.0);
  inputs.run = cluster.phases();
  Rng rng(7);
  const MeasurementPlan plan = plan_measurement(spec, inputs, rng);
  std::cout << "planned: " << plan.node_count() << " nodes metered over "
            << to_string(plan.window.duration()) << "\n";
  std::cout << "plan compliance: " << render_issues(validate_plan(plan, inputs));

  // 4. Execute the campaign with 1%-class PDU meters.
  CampaignConfig config;
  config.meter_accuracy = MeterAccuracy::pdu_grade();
  config.meter_interval_override = Seconds{10.0};  // speed over spec fidelity
  const CampaignResult result = run_campaign(cluster, electrical, plan, config);

  // 5. The accuracy assessment the paper wants every submission to carry.
  std::cout << '\n' << accuracy_report(plan, result);
  return 0;
}
