// Tests for the simulated meter transport and its fault model.

#include "collect/transport.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/expects.hpp"

namespace pv {
namespace {

TEST(MixStreams, DistinctIdentitiesGetDistinctStreams) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      for (std::uint64_t c = 0; c < 4; ++c) {
        seen.insert(mix_streams(a, b, c));
      }
    }
  }
  EXPECT_EQ(seen.size(), 16u * 16u * 4u);  // no collisions in a small grid
  EXPECT_NE(mix_streams(1, 2), mix_streams(2, 1));  // order matters
}

TEST(LatencyModel, DrawsStayInPhysicalRange) {
  LatencyModel lat;
  lat.base_s = 0.01;
  lat.jitter_s = 0.02;
  lat.tail_prob = 0.1;
  lat.tail_scale_s = 0.5;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = lat.draw(rng);
    ASSERT_GE(d, lat.base_s);
    ASSERT_LT(d, 60.0);  // exponential tail, but not absurd
  }
}

TEST(SimTransport, ExchangeIsDeterministicPerIdentity) {
  TransportSpec spec;
  spec.drop_prob = 0.3;
  spec.duplicate_prob = 0.1;
  const SimTransport a(spec, 99);
  const SimTransport b(spec, 99);
  for (std::size_t meter = 0; meter < 8; ++meter) {
    for (std::size_t chunk = 0; chunk < 8; ++chunk) {
      for (std::size_t attempt = 0; attempt < 3; ++attempt) {
        const Exchange ea = a.exchange(meter, chunk, attempt, 1.0);
        const Exchange eb = b.exchange(meter, chunk, attempt, 1.0);
        ASSERT_EQ(ea.ok, eb.ok);
        ASSERT_EQ(ea.elapsed_s, eb.elapsed_s);
        ASSERT_EQ(ea.duplicate, eb.duplicate);
      }
    }
  }
  // A different seed gives a different fault pattern somewhere.
  const SimTransport c(spec, 100);
  bool any_difference = false;
  for (std::size_t chunk = 0; chunk < 64 && !any_difference; ++chunk) {
    any_difference = a.exchange(0, chunk, 0, 1.0).ok !=
                     c.exchange(0, chunk, 0, 1.0).ok;
  }
  EXPECT_TRUE(any_difference);
}

TEST(SimTransport, PerfectNetworkAlwaysAnswers) {
  const SimTransport t(TransportSpec{}, 1);
  EXPECT_FALSE(TransportSpec{}.faulty());
  for (std::size_t chunk = 0; chunk < 100; ++chunk) {
    const Exchange ex = t.exchange(3, chunk, 0, 10.0);
    ASSERT_TRUE(ex.ok);
    ASSERT_GT(ex.elapsed_s, 0.0);
    ASSERT_LT(ex.elapsed_s, 10.0);
  }
}

TEST(SimTransport, FailureChargesTheFullTimeout) {
  TransportSpec spec;
  spec.drop_prob = 1.0;
  const SimTransport t(spec, 5);
  const Exchange ex = t.exchange(0, 0, 0, 2.5);
  EXPECT_FALSE(ex.ok);
  EXPECT_EQ(ex.elapsed_s, 2.5);
  EXPECT_FALSE(ex.duplicate);  // a lost exchange cannot also duplicate
}

TEST(SimTransport, TightTimeoutTurnsLatencyIntoTimeouts) {
  const SimTransport t(TransportSpec{}, 8);  // base 20 ms + jitter
  std::size_t failures = 0;
  for (std::size_t chunk = 0; chunk < 200; ++chunk) {
    if (!t.exchange(0, chunk, 0, /*timeout_s=*/0.021).ok) ++failures;
  }
  EXPECT_GT(failures, 0u);   // most jitter draws exceed 1 ms of headroom
  EXPECT_LT(failures, 200u); // but some land under it
}

TEST(SimTransport, ExplicitBlackholeNeverAnswers) {
  TransportSpec spec;
  spec.blackhole_meters = {4, 7};
  const SimTransport t(spec, 11);
  EXPECT_TRUE(t.blackhole(4));
  EXPECT_TRUE(t.blackhole(7));
  EXPECT_FALSE(t.blackhole(5));
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    const Exchange ex = t.exchange(4, 0, attempt, 1.0);
    ASSERT_FALSE(ex.ok);
    ASSERT_EQ(ex.elapsed_s, 1.0);
  }
}

TEST(SimTransport, BlackholeFractionSelectsRoughlyThatShare) {
  TransportSpec spec;
  spec.blackhole_fraction = 0.2;
  const SimTransport t(spec, 21);
  std::size_t dark = 0;
  constexpr std::size_t kMeters = 2000;
  for (std::size_t m = 0; m < kMeters; ++m) {
    if (t.blackhole(m)) ++dark;
  }
  EXPECT_NEAR(static_cast<double>(dark) / kMeters, 0.2, 0.03);
  // The draw is per-meter and stable: asking twice agrees.
  for (std::size_t m = 0; m < 100; ++m) {
    ASSERT_EQ(t.blackhole(m), t.blackhole(m));
  }
}

TEST(SimTransport, DuplicatesOnlyAccompanySuccess) {
  TransportSpec spec;
  spec.duplicate_prob = 0.5;
  spec.drop_prob = 0.3;
  const SimTransport t(spec, 33);
  std::size_t dups = 0;
  for (std::size_t chunk = 0; chunk < 500; ++chunk) {
    const Exchange ex = t.exchange(1, chunk, 0, 5.0);
    if (ex.duplicate) {
      ASSERT_TRUE(ex.ok);
      ++dups;
    }
  }
  EXPECT_GT(dups, 0u);
}

TEST(SimTransport, RejectsOutOfRangeSpecs) {
  TransportSpec bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(SimTransport(bad, 1), contract_error);
  bad = TransportSpec{};
  bad.duplicate_prob = -0.1;
  EXPECT_THROW(SimTransport(bad, 1), contract_error);
  bad = TransportSpec{};
  bad.blackhole_fraction = 2.0;
  EXPECT_THROW(SimTransport(bad, 1), contract_error);
  bad = TransportSpec{};
  bad.latency.base_s = -1.0;
  EXPECT_THROW(SimTransport(bad, 1), contract_error);
}

}  // namespace
}  // namespace pv
