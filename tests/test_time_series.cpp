// Unit tests for PowerTrace: window statistics, energy integration,
// alignment arithmetic.

#include "trace/time_series.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/expects.hpp"

namespace pv {
namespace {

PowerTrace ramp_trace() {
  // 10 samples of 1 s: 0, 10, ..., 90 W.
  std::vector<double> w(10);
  for (std::size_t i = 0; i < 10; ++i) w[i] = 10.0 * static_cast<double>(i);
  return PowerTrace(Seconds{0.0}, Seconds{1.0}, std::move(w));
}

TEST(PowerTrace, BasicAccessors) {
  const PowerTrace t = ramp_trace();
  EXPECT_EQ(t.size(), 10u);
  EXPECT_DOUBLE_EQ(t.duration().value(), 10.0);
  EXPECT_DOUBLE_EQ(t.t_end().value(), 10.0);
  EXPECT_DOUBLE_EQ(t.watt_at(3), 30.0);
  EXPECT_DOUBLE_EQ(t.time_at(3).value(), 3.0);
  EXPECT_THROW(t.watt_at(10), contract_error);
}

TEST(PowerTrace, WholeTraceStatistics) {
  const PowerTrace t = ramp_trace();
  EXPECT_DOUBLE_EQ(t.mean_power().value(), 45.0);
  EXPECT_DOUBLE_EQ(t.energy().value(), 450.0);
  EXPECT_DOUBLE_EQ(t.min_power().value(), 0.0);
  EXPECT_DOUBLE_EQ(t.max_power().value(), 90.0);
}

TEST(PowerTrace, WindowMeanOnSampleBoundaries) {
  const PowerTrace t = ramp_trace();
  // [2, 5): samples 20, 30, 40 -> mean 30.
  EXPECT_DOUBLE_EQ(t.mean_power({Seconds{2.0}, Seconds{5.0}}).value(), 30.0);
  EXPECT_DOUBLE_EQ(t.energy({Seconds{2.0}, Seconds{5.0}}).value(), 90.0);
}

TEST(PowerTrace, FractionalWindowWeighting) {
  const PowerTrace t = ramp_trace();
  // [2.5, 3.5): half of sample 2 (20 W) + half of sample 3 (30 W) = 25 W.
  EXPECT_NEAR(t.mean_power({Seconds{2.5}, Seconds{3.5}}).value(), 25.0, 1e-12);
  // Window inside one sample.
  EXPECT_NEAR(t.mean_power({Seconds{4.25}, Seconds{4.75}}).value(), 40.0, 1e-12);
}

TEST(PowerTrace, WindowClippedToTraceExtent) {
  const PowerTrace t = ramp_trace();
  // [-5, 2) clips to [0, 2): mean of 0 and 10.
  EXPECT_NEAR(t.mean_power({Seconds{-5.0}, Seconds{2.0}}).value(), 5.0, 1e-12);
  // Entirely outside throws.
  EXPECT_THROW(t.mean_power({Seconds{20.0}, Seconds{30.0}}), contract_error);
  EXPECT_THROW(t.mean_power({Seconds{3.0}, Seconds{3.0}}), contract_error);
}

TEST(PowerTrace, FromFunctionSamplesMidpoints) {
  const PowerTrace t = PowerTrace::from_function(
      Seconds{0.0}, Seconds{2.0}, 3, [](double tt) { return tt; });
  EXPECT_DOUBLE_EQ(t.watt_at(0), 1.0);
  EXPECT_DOUBLE_EQ(t.watt_at(1), 3.0);
  EXPECT_DOUBLE_EQ(t.watt_at(2), 5.0);
}

TEST(PowerTrace, AdditionRequiresAlignment) {
  const PowerTrace a = ramp_trace();
  const PowerTrace b = ramp_trace();
  const PowerTrace sum = a + b;
  EXPECT_DOUBLE_EQ(sum.mean_power().value(), 90.0);
  const PowerTrace offset(Seconds{1.0}, Seconds{1.0},
                          std::vector<double>(10, 1.0));
  EXPECT_THROW(a + offset, contract_error);
  const PowerTrace shorter(Seconds{0.0}, Seconds{1.0},
                           std::vector<double>(5, 1.0));
  EXPECT_THROW(a + shorter, contract_error);
}

TEST(PowerTrace, ScalingForExtrapolation) {
  const PowerTrace t = ramp_trace();
  const PowerTrace scaled = t.scaled(64.0);
  EXPECT_DOUBLE_EQ(scaled.mean_power().value(), 45.0 * 64.0);
  EXPECT_THROW(t.scaled(0.0), contract_error);
}

TEST(PowerTrace, DecimationAveragesGroups) {
  const PowerTrace t = ramp_trace();
  const PowerTrace d = t.decimated(2);
  EXPECT_EQ(d.size(), 5u);
  EXPECT_DOUBLE_EQ(d.dt().value(), 2.0);
  EXPECT_DOUBLE_EQ(d.watt_at(0), 5.0);   // (0+10)/2
  EXPECT_DOUBLE_EQ(d.watt_at(4), 85.0);  // (80+90)/2
  // Mean power is preserved by decimation.
  EXPECT_DOUBLE_EQ(d.mean_power().value(), t.mean_power().value());
  EXPECT_THROW(t.decimated(11), contract_error);
}

TEST(PowerTrace, DecimationByOneIsIdentity) {
  const PowerTrace t = ramp_trace();
  const PowerTrace d = t.decimated(1);
  EXPECT_EQ(d.size(), t.size());
  EXPECT_DOUBLE_EQ(d.watt_at(7), t.watt_at(7));
}

TEST(PowerTrace, ConstructionGuards) {
  EXPECT_THROW(PowerTrace(Seconds{0.0}, Seconds{0.0}, {1.0}), contract_error);
  EXPECT_THROW(PowerTrace(Seconds{0.0}, Seconds{1.0}, {}), contract_error);
}

TEST(TimeWindow, Basics) {
  const TimeWindow w{Seconds{2.0}, Seconds{5.0}};
  EXPECT_TRUE(w.valid());
  EXPECT_DOUBLE_EQ(w.duration().value(), 3.0);
  const TimeWindow bad{Seconds{5.0}, Seconds{5.0}};
  EXPECT_FALSE(bad.valid());
}

}  // namespace
}  // namespace pv
