#include "sim/fleet_state.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace pv {

// --------------------------------------------------------------------------
// NodeSpec / NodeSettings gather-scatter

NodeSpecSoA NodeSpecSoA::gather(std::span<const NodeSpec> specs) {
  NodeSpecSoA soa;
  const std::size_t n = specs.size();
  soa.cpu_count.reserve(n);
  soa.gpu_count.reserve(n);
  soa.memory_w.reserve(n);
  soa.misc_w.reserve(n);
  soa.psu_rated_w.reserve(n);
  soa.cpu_leakage_cv.reserve(n);
  soa.gpu_leakage_cv.reserve(n);
  soa.gpu_vid_leakage_corr.reserve(n);
  soa.gpu_dynamic_cv.reserve(n);
  soa.inlet_sd_c.reserve(n);
  soa.memory_cv.reserve(n);
  soa.hpl_efficiency.reserve(n);
  for (const NodeSpec& s : specs) {
    soa.cpu_count.push_back(s.cpu_count);
    soa.gpu_count.push_back(s.gpu_count);
    soa.memory_w.push_back(s.memory_w);
    soa.misc_w.push_back(s.misc_w);
    soa.psu_rated_w.push_back(s.psu_rated_w);
    soa.cpu_leakage_cv.push_back(s.cpu_leakage_cv);
    soa.gpu_leakage_cv.push_back(s.gpu_leakage_cv);
    soa.gpu_vid_leakage_corr.push_back(s.gpu_vid_leakage_corr);
    soa.gpu_dynamic_cv.push_back(s.gpu_dynamic_cv);
    soa.inlet_sd_c.push_back(s.inlet_sd_c);
    soa.memory_cv.push_back(s.memory_cv);
    soa.hpl_efficiency.push_back(s.hpl_efficiency);
  }
  return soa;
}

void NodeSpecSoA::scatter(std::span<NodeSpec> specs) const {
  PV_EXPECTS(specs.size() == size(), "scatter size mismatch");
  for (std::size_t i = 0; i < specs.size(); ++i) {
    NodeSpec& s = specs[i];
    s.cpu_count = cpu_count[i];
    s.gpu_count = gpu_count[i];
    s.memory_w = memory_w[i];
    s.misc_w = misc_w[i];
    s.psu_rated_w = psu_rated_w[i];
    s.cpu_leakage_cv = cpu_leakage_cv[i];
    s.gpu_leakage_cv = gpu_leakage_cv[i];
    s.gpu_vid_leakage_corr = gpu_vid_leakage_corr[i];
    s.gpu_dynamic_cv = gpu_dynamic_cv[i];
    s.inlet_sd_c = inlet_sd_c[i];
    s.memory_cv = memory_cv[i];
    s.hpl_efficiency = hpl_efficiency[i];
  }
}

NodeSettingsSoA NodeSettingsSoA::gather(std::span<const NodeSettings> settings) {
  NodeSettingsSoA soa;
  const std::size_t n = settings.size();
  soa.cpu_op_set.reserve(n);
  soa.cpu_op_hz.reserve(n);
  soa.cpu_op_v.reserve(n);
  soa.gpu_mode.reserve(n);
  soa.gpu_fixed_hz.reserve(n);
  soa.gpu_fixed_v.reserve(n);
  soa.fan_mode.reserve(n);
  soa.fan_pinned_speed.reserve(n);
  for (const NodeSettings& s : settings) {
    soa.cpu_op_set.push_back(s.cpu_op.has_value() ? 1 : 0);
    soa.cpu_op_hz.push_back(s.cpu_op ? s.cpu_op->frequency.value() : 0.0);
    soa.cpu_op_v.push_back(s.cpu_op ? s.cpu_op->voltage.value() : 0.0);
    soa.gpu_mode.push_back(static_cast<std::uint8_t>(s.gpu_mode));
    soa.gpu_fixed_hz.push_back(s.gpu_fixed_op.frequency.value());
    soa.gpu_fixed_v.push_back(s.gpu_fixed_op.voltage.value());
    soa.fan_mode.push_back(static_cast<std::uint8_t>(s.fan_policy.mode));
    soa.fan_pinned_speed.push_back(s.fan_policy.pinned_speed);
  }
  return soa;
}

void NodeSettingsSoA::scatter(std::span<NodeSettings> settings) const {
  PV_EXPECTS(settings.size() == size(), "scatter size mismatch");
  for (std::size_t i = 0; i < settings.size(); ++i) {
    NodeSettings& s = settings[i];
    if (cpu_op_set[i] != 0) {
      s.cpu_op = OperatingPoint{Hertz{cpu_op_hz[i]}, Volts{cpu_op_v[i]}};
    } else {
      s.cpu_op.reset();
    }
    s.gpu_mode = static_cast<NodeSettings::GpuMode>(gpu_mode[i]);
    s.gpu_fixed_op =
        OperatingPoint{Hertz{gpu_fixed_hz[i]}, Volts{gpu_fixed_v[i]}};
    s.fan_policy.mode = static_cast<FanPolicy::Mode>(fan_mode[i]);
    s.fan_policy.pinned_speed = fan_pinned_speed[i];
  }
}

// --------------------------------------------------------------------------
// Provisioning

FleetState build_fleet_state(std::span<const std::size_t> nodes,
                             const FleetProvisionSpec& spec,
                             const std::vector<TimeWindow>& windows,
                             const FaultPlan* faults,
                             const ClusterPowerModel* cluster,
                             const SystemPowerModel* electrical,
                             ThreadPool* pool) {
  const std::size_t n = nodes.size();
  FleetState fs;
  fs.node.assign(nodes.begin(), nodes.end());
  fs.mean_w.assign(n, 0.0);
  fs.gain.assign(n, 1.0);
  fs.offset_w.assign(n, 0.0);
  fs.noise_sd = spec.accuracy.noise_sd;
  fs.meters.resize(n);
  fs.noise.assign(n, Rng(0, 0));
  fs.curve.assign(n, nullptr);
  fs.dead.assign(n, 0);
  fs.samples_expected.assign(n, 0);

  const bool faulty = faults != nullptr && faults->enabled();
  // Every slot is a pure function of its own node id: calibration and
  // noise streams are keyed per node, the mean and curve are lookups, so
  // sharding preserves the per-node RNG streams and is thread-invariant.
  parallel_chunks(pool, n, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      const std::size_t id = fs.node[i];
      Rng calibration(spec.seed ^ kCalibrationSalt, id);
      MeterModel meter(spec.accuracy, spec.mode, spec.interval, calibration);
      fs.gain[i] = meter.gain();
      fs.offset_w[i] = meter.offset_w();
      std::size_t expected = 0;
      for (const TimeWindow& w : windows) expected += meter.samples_in(w);
      fs.samples_expected[i] = expected;
      fs.meters[i] = std::move(meter);
      fs.noise[i] = Rng(spec.seed ^ kNoiseSalt, id);
      if (cluster != nullptr) {
        PV_EXPECTS(id < cluster->node_count(),
                   "plan references missing node");
        fs.mean_w[i] = cluster->node_means()[id];
      }
      if (spec.ac_tap && electrical != nullptr) {
        fs.curve[i] = &electrical->node_psu(id).compiled();
      }
      if (faulty && faults->forced_dead(id)) fs.dead[i] = 1;
    }
  });
  fs.bank = FleetPsuBank::build(fs.curve);
  return fs;
}

// --------------------------------------------------------------------------
// Analysis-window mapping (reconcile buckets)

std::vector<std::int32_t> map_analysis_samples(
    const ShapeTable& table, const std::vector<TimeWindow>& analysis) {
  std::vector<std::int32_t> idx(table.samples, -1);
  for (std::size_t k = 0; k < table.samples; ++k) {
    // The exact DeviceMeter::bucket time expression (first = 0 for whole
    // windows); first match wins, like the per-node linear scan.
    const double t =
        table.t_begin + (static_cast<double>(k) + 0.5) * table.dt;
    for (std::size_t a = 0; a < analysis.size(); ++a) {
      const TimeWindow& aw = analysis[a];
      if (t >= aw.begin.value() && t < aw.end.value()) {
        idx[k] = static_cast<std::int32_t>(a);
        break;
      }
    }
  }
  return idx;
}

void count_analysis_samples(std::span<const std::int32_t> a_idx,
                            std::span<std::size_t> bucket_n) {
  for (const std::int32_t a : a_idx) {
    if (a >= 0) ++bucket_n[static_cast<std::size_t>(a)];
  }
}

// --------------------------------------------------------------------------
// Fused fleet kernels

void FleetAccumulators::init(std::size_t n, std::size_t analysis_windows) {
  nodes = n;
  win_sum.assign(n, 0.0);
  mean_acc.assign(n, 0.0);
  energy_j.assign(n, 0.0);
  bucket_sum.assign(analysis_windows * n, 0.0);
  bucket_n.assign(analysis_windows, 0);
}

namespace {

// Feeds one chunk's samples into win_sum (and bucket rows, when mapped)
// for lanes [begin, end).  Level-indexed tables only — the caller routes
// dense tables through the per-node kernel.  Every lane evaluates the
// per-node expressions of stream_node_window + apply_errors +
// feed_clean_chunk, operand for operand, with that node's own noise
// stream consumed in sample order.
void fused_level_chunk(const ShapeTable& table, FleetState& fleet,
                       std::size_t begin, std::size_t end, double* win_sum,
                       const std::int32_t* a_idx, double* bucket_sum,
                       std::size_t bucket_stride, FleetScratch& scratch) {
  const std::size_t m = end - begin;
  const std::size_t nl = table.levels.size();
  const std::size_t samples = table.samples;
  // AC-at-level matrix: acl[l*m + i] = lane (begin+i)'s clean AC (or DC
  // pass-through) at shape level l — the per-node `acl[l]` table, built
  // fleet-major through the PSU bank (bit-identical per lane).
  scratch.acl.resize(nl * m);
  scratch.dc.resize(m);
  const double* const mean = fleet.mean_w.data() + begin;
  for (std::size_t l = 0; l < nl; ++l) {
    const double level = table.levels[l];
    double* const dc = scratch.dc.data();
    for (std::size_t i = 0; i < m; ++i) dc[i] = mean[i] * level;
    fleet.bank.ac_from_dc_fleet(
        std::span<const double>(scratch.dc.data(), m),
        std::span<double>(scratch.acl.data() + l * m, m), begin, scratch.lf,
        scratch.eff);
  }

  const double* const gain = fleet.gain.data() + begin;
  const double* const off = fleet.offset_w.data() + begin;
  double* const win = win_sum + begin;
  Rng* const noise = fleet.noise.data() + begin;
  const double sd = fleet.noise_sd;
  const std::uint32_t* const idx = table.level_idx.data();
  const double* const acl = scratch.acl.data();

  const auto bucket_row = [&](std::size_t k) -> double* {
    if (a_idx == nullptr) return nullptr;
    const std::int32_t a = a_idx[k];
    if (a < 0) return nullptr;
    return bucket_sum + static_cast<std::size_t>(a) * bucket_stride + begin;
  };

  if (table.mode == MeterMode::kIntegrated) {
    const std::uint32_t* const i0 = idx;
    const std::uint32_t* const i1 = idx + samples;
    const std::uint32_t* const i2 = idx + 2 * samples;
    const std::uint32_t* const i3 = idx + 3 * samples;
    for (std::size_t k = 0; k < samples; ++k) {
      const double* const r0 = acl + static_cast<std::size_t>(i0[k]) * m;
      const double* const r1 = acl + static_cast<std::size_t>(i1[k]) * m;
      const double* const r2 = acl + static_cast<std::size_t>(i2[k]) * m;
      const double* const r3 = acl + static_cast<std::size_t>(i3[k]) * m;
      double* const bs = bucket_row(k);
      if (sd > 0.0) {
        for (std::size_t i = 0; i < m; ++i) {
          const double truth =
              ((gl4::kWs[0] * r0[i] + gl4::kWs[1] * r1[i]) +
               gl4::kWs[2] * r2[i]) +
              gl4::kWs[3] * r3[i];
          double v = truth * gain[i] + off[i];
          v *= 1.0 + noise[i].normal(0.0, sd);
          win[i] += v;
          if (bs != nullptr) bs[i] += v;
        }
      } else if (bs != nullptr) {
        for (std::size_t i = 0; i < m; ++i) {
          const double truth =
              ((gl4::kWs[0] * r0[i] + gl4::kWs[1] * r1[i]) +
               gl4::kWs[2] * r2[i]) +
              gl4::kWs[3] * r3[i];
          const double v = truth * gain[i] + off[i];
          win[i] += v;
          bs[i] += v;
        }
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          const double truth =
              ((gl4::kWs[0] * r0[i] + gl4::kWs[1] * r1[i]) +
               gl4::kWs[2] * r2[i]) +
              gl4::kWs[3] * r3[i];
          const double v = truth * gain[i] + off[i];
          win[i] += v;
        }
      }
    }
  } else {
    for (std::size_t k = 0; k < samples; ++k) {
      const double* const row = acl + static_cast<std::size_t>(idx[k]) * m;
      double* const bs = bucket_row(k);
      if (sd > 0.0) {
        for (std::size_t i = 0; i < m; ++i) {
          double v = row[i] * gain[i] + off[i];
          v *= 1.0 + noise[i].normal(0.0, sd);
          win[i] += v;
          if (bs != nullptr) bs[i] += v;
        }
      } else if (bs != nullptr) {
        for (std::size_t i = 0; i < m; ++i) {
          const double v = row[i] * gain[i] + off[i];
          win[i] += v;
          bs[i] += v;
        }
      } else {
        for (std::size_t i = 0; i < m; ++i) {
          const double v = row[i] * gain[i] + off[i];
          win[i] += v;
        }
      }
    }
  }
}

// Dense-table fallback: one per-node pass through the proven scalar
// kernel, chained into the fleet accumulators exactly as
// DeviceMeter::feed_clean_chunk would chain them.
void dense_chunk(const ShapeTable& table, FleetState& fleet,
                 std::size_t begin, std::size_t end, double* win_sum,
                 const std::int32_t* a_idx, double* bucket_sum,
                 std::size_t bucket_stride, FleetScratch& scratch) {
  for (std::size_t lane = begin; lane < end; ++lane) {
    stream_node_window(table, fleet.mean_w[lane], fleet.curve[lane],
                       fleet.meters[lane], fleet.noise[lane], scratch.node);
    const std::vector<double>& readings = scratch.node.readings;
    double s = win_sum[lane];
    for (const double x : readings) s += x;
    win_sum[lane] = s;
    if (a_idx != nullptr) {
      for (std::size_t j = 0; j < readings.size(); ++j) {
        const std::int32_t a = a_idx[j];
        if (a >= 0) {
          bucket_sum[static_cast<std::size_t>(a) * bucket_stride + lane] +=
              readings[j];
        }
      }
    }
  }
}

void feed_chunk(const ShapeTable& table, FleetState& fleet, std::size_t begin,
                std::size_t end, double* win_sum, const std::int32_t* a_idx,
                double* bucket_sum, std::size_t bucket_stride,
                FleetScratch& scratch) {
  if (!table.levels.empty()) {
    fused_level_chunk(table, fleet, begin, end, win_sum, a_idx, bucket_sum,
                      bucket_stride, scratch);
  } else {
    dense_chunk(table, fleet, begin, end, win_sum, a_idx, bucket_sum,
                bucket_stride, scratch);
  }
}

}  // namespace

void stream_fleet_windows(
    const std::vector<ShapeTable>& tables,
    const std::vector<std::vector<std::int32_t>>& analysis_idx,
    FleetState& fleet, std::size_t begin, std::size_t end,
    FleetAccumulators& acc, FleetScratch& scratch) {
  PV_EXPECTS(end <= fleet.size() && begin <= end, "lane range out of fleet");
  PV_EXPECTS(analysis_idx.empty() || analysis_idx.size() == tables.size(),
             "analysis index not parallel to tables");
  double* const win_sum = acc.win_sum.data();
  double* const mean_acc = acc.mean_acc.data();
  double* const energy = acc.energy_j.data();
  for (std::size_t wi = 0; wi < tables.size(); ++wi) {
    const ShapeTable& table = tables[wi];
    const std::int32_t* a_idx =
        analysis_idx.empty() ? nullptr : analysis_idx[wi].data();
    feed_chunk(table, fleet, begin, end, win_sum, a_idx,
               acc.bucket_sum.data(), acc.nodes, scratch);
    // Close the window fleet-wide: the exact close_clean_window
    // expressions, elementwise across lanes.
    const double inv_n = static_cast<double>(table.samples);
    const double dt = table.dt;
    for (std::size_t i = begin; i < end; ++i) {
      const double total = 0.0 + win_sum[i];
      const double window_mean = total / inv_n;
      mean_acc[i] += window_mean;
      energy[i] += total * dt;
      win_sum[i] = 0.0;
    }
  }
}

void stream_fleet_chunk(const ShapeTable& chunk, FleetState& fleet,
                        std::size_t begin, std::size_t end,
                        std::span<double> win_sum, FleetScratch& scratch) {
  PV_EXPECTS(end <= fleet.size() && begin <= end, "lane range out of fleet");
  PV_EXPECTS(win_sum.size() >= end, "win_sum span too short");
  feed_chunk(chunk, fleet, begin, end, win_sum.data(), nullptr, nullptr, 0,
             scratch);
}

}  // namespace pv
