// Deterministic fuzz corpus for the service request parser — the same
// discipline as test_fuzz_trace_io applied to the third external-input
// surface: powervar-request-v1 JSON lines.  Every input must either
// parse into a valid ServiceRequest or throw a typed error
// (JsonParseError for malformed bytes, RequestParseError for
// schema-level violations) — never crash, never accept-and-mangle.

#include "service/request.hpp"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/doc.hpp"

namespace pv {
namespace {

// Tiny deterministic generator for the mutation schedule, kept
// self-contained so the corpus is independent of any library change.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

std::string valid_line() {
  ServiceRequest req;
  req.id = "fuzz-base";
  req.nodes = 48;
  req.cv = 0.03;
  req.level = 2;
  req.seed = 42;
  req.faults = "harsh";
  req.dropout = 0.1;
  req.dead = 2;
  req.byzantine = 0.05;
  req.reconcile = true;
  req.threads = 2;
  req.interval_s = 10.0;
  req.deadline_ms = 5000.0;
  return render_request_json(req);
}

/// Either a clean parse or one of the two typed rejections — any other
/// exception type (or a crash) fails the test.
void expect_parse_or_typed_reject(const std::string& line) {
  try {
    const ServiceRequest req = parse_request(line);
    // Accepted requests must respect every documented invariant.
    EXPECT_FALSE(req.id.empty());
    EXPECT_GE(req.nodes, 2u);
    EXPECT_GE(req.level, 1);
    EXPECT_LE(req.level, 3);
    EXPECT_GE(req.cv, 0.0);
    EXPECT_LE(req.cv, 1.0);
    EXPECT_TRUE(req.faults == "none" || req.faults == "mild" ||
                req.faults == "harsh");
    EXPECT_TRUE(req.engine == "eager" || req.engine == "streaming");
  } catch (const JsonParseError&) {
  } catch (const RequestParseError&) {
  }
}

TEST(FuzzServiceRequest, CanonicalRoundTrip) {
  const std::string line = valid_line();
  const ServiceRequest req = parse_request(line);
  EXPECT_EQ(render_request_json(req), line);
  EXPECT_EQ(req.id, "fuzz-base");
  EXPECT_EQ(req.nodes, 48u);
  EXPECT_EQ(req.level, 2);
  EXPECT_EQ(req.seed, 42u);
  ASSERT_TRUE(req.dropout.has_value());
  EXPECT_DOUBLE_EQ(*req.dropout, 0.1);
  EXPECT_TRUE(req.reconcile);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 5000.0);
}

TEST(FuzzServiceRequest, HandCraftedHostileInputs) {
  const std::vector<std::string> must_reject = {
      "",                                        // empty
      "   ",                                     // whitespace only
      "{",                                       // truncated object
      "null",                                    // non-object root
      "[]",                                      // array root
      "42",                                      // number root
      "\"powervar-request-v1\"",                 // string root
      "{}",                                      // missing schema and id
      R"({"schema":"powervar-request-v1"})",     // missing id
      R"({"id":"x"})",                           // missing schema
      R"({"schema":"powervar-request-v2","id":"x"})",   // wrong schema
      R"({"schema":42,"id":"x"})",               // schema type confusion
      R"({"schema":"powervar-request-v1","id":""})",    // empty id
      R"({"schema":"powervar-request-v1","id":"x","nodes":"64"})",  // string
      R"({"schema":"powervar-request-v1","id":"x","nodes":1})",     // < 2
      R"({"schema":"powervar-request-v1","id":"x","nodes":-64})",
      R"({"schema":"powervar-request-v1","id":"x","nodes":64.5})",
      R"({"schema":"powervar-request-v1","id":"x","nodes":1e30})",  // cap
      R"({"schema":"powervar-request-v1","id":"x","cv":1.5})",      // > 1
      R"({"schema":"powervar-request-v1","id":"x","level":4})",
      R"({"schema":"powervar-request-v1","id":"x","level":0})",
      R"({"schema":"powervar-request-v1","id":"x","seed":1e300})",
      R"({"schema":"powervar-request-v1","id":"x","faults":"brutal"})",
      R"({"schema":"powervar-request-v1","id":"x","engine":"warp"})",
      R"({"schema":"powervar-request-v1","id":"x","reconcile":1})",  // int
      R"({"schema":"powervar-request-v1","id":"x","threads":1e6})",
      R"({"schema":"powervar-request-v1","id":"x","interval":-1})",
      R"({"schema":"powervar-request-v1","id":"x","deadline_ms":-1})",
      R"({"schema":"powervar-request-v1","id":"x","tenant":""})",
      R"({"schema":"powervar-request-v1","id":"x","tenant":42})",
      "{\"schema\":\"powervar-request-v1\",\"id\":\"x\",\"tenant\":\"a\\nb\"}",
      R"({"schema":"powervar-request-v1","id":"x","priority":0})",
      R"({"schema":"powervar-request-v1","id":"x","priority":9})",
      R"({"schema":"powervar-request-v1","id":"x","priority":2.5})",
      R"({"schema":"powervar-request-v1","id":"x","priority":"3"})",
      R"({"schema":"powervar-request-v1","id":"x","wibble":1})",    // unknown
      R"({"schema":"powervar-request-v1","id":"x","nodes":64,"nodes":32})",
      R"({"schema":"powervar-request-v1","id":"x"} trailing)",
      R"({"schema":"powervar-request-v1","id":"x","nodes":})",
      R"({"schema":"powervar-request-v1","id":{"deep":"object"}})",
      R"({"schema":"powervar-request-v1","id":"x","nodes":Infinity})",
      R"({"schema":"powervar-request-v1","id":"x","nodes":NaN})",
      "{\"schema\":\"powervar-request-v1\",\"id\":\"a\nb\"}",  // raw newline
  };
  for (const std::string& line : must_reject) {
    EXPECT_THROW(parse_request(line), std::runtime_error)
        << "accepted: " << line.substr(0, 60);
  }
  // The id length cap (128 bytes) is enforced.
  std::string long_id(129, 'a');
  EXPECT_THROW(
      parse_request(R"({"schema":"powervar-request-v1","id":")" + long_id +
                    R"("})"),
      RequestParseError);
  // So is the tenant cap (64 bytes).
  std::string long_tenant(65, 't');
  EXPECT_THROW(
      parse_request(R"({"schema":"powervar-request-v1","id":"x","tenant":")" +
                    long_tenant + R"("})"),
      RequestParseError);
  // A nesting bomb must be a loud parse error, not a stack overflow.
  std::string bomb = R"({"schema":"powervar-request-v1","id":)";
  for (int i = 0; i < 200; ++i) bomb += "[";
  EXPECT_THROW(parse_request(bomb), JsonParseError);
  // Escaped-newline ids are fine bytes-wise but violate the single-line
  // contract after unescaping.
  EXPECT_THROW(
      parse_request(R"({"schema":"powervar-request-v1","id":"a\nb"})"),
      RequestParseError);
}

TEST(FuzzServiceRequest, MinimalRequestGetsCliDefaults) {
  const ServiceRequest req =
      parse_request(R"({"schema":"powervar-request-v1","id":"min"})");
  EXPECT_EQ(req.nodes, 64u);
  EXPECT_DOUBLE_EQ(req.cv, 0.02);
  EXPECT_EQ(req.level, 1);
  EXPECT_EQ(req.seed, 1u);
  EXPECT_EQ(req.faults, "none");
  EXPECT_FALSE(req.dropout.has_value());
  EXPECT_EQ(req.engine, "streaming");
  EXPECT_DOUBLE_EQ(req.deadline_ms, 0.0);
}

TEST(FuzzServiceRequest, TruncationAtEveryByte) {
  const std::string base = valid_line();
  for (std::size_t cut = 0; cut <= base.size(); ++cut) {
    expect_parse_or_typed_reject(base.substr(0, cut));
  }
}

TEST(FuzzServiceRequest, DeterministicMutationSchedule) {
  const std::string base = valid_line();
  static constexpr char kAlphabet[] = "0123456789.,-+eE{}[]\":\\tfn \0u";
  Lcg rng{0x5E7F00Du};
  for (int iter = 0; iter < 2500; ++iter) {
    std::string s = base;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      switch (rng.below(4)) {
        case 0:  // overwrite a byte
          s[rng.below(s.size())] = kAlphabet[rng.below(sizeof kAlphabet - 1)];
          break;
        case 1:  // delete a byte
          s.erase(rng.below(s.size()), 1);
          break;
        case 2:  // insert a byte
          s.insert(rng.below(s.size() + 1), 1,
                   kAlphabet[rng.below(sizeof kAlphabet - 1)]);
          break;
        default:  // splice a random chunk over another position
          if (s.size() > 8) {
            const std::size_t from = rng.below(s.size() - 4);
            const std::size_t len = 1 + rng.below(4);
            s.insert(rng.below(s.size()), s.substr(from, len));
          }
          break;
      }
    }
    expect_parse_or_typed_reject(s);
  }
}

TEST(FuzzServiceRequest, TenantAndPriorityRoundTripWhenNonDefault) {
  ServiceRequest req;
  req.id = "fair";
  req.tenant = "acme";
  req.priority = 5;
  const std::string line = render_request_json(req);
  EXPECT_NE(line.find("\"tenant\":\"acme\""), std::string::npos);
  EXPECT_NE(line.find("\"priority\":5"), std::string::npos);
  const ServiceRequest back = parse_request(line);
  EXPECT_EQ(back.tenant, "acme");
  EXPECT_EQ(back.priority, 5u);
  EXPECT_EQ(render_request_json(back), line);
}

TEST(FuzzServiceRequest, DefaultTenantAndPriorityKeepTheOldWireBytes) {
  // Backward compatibility with PR6 drain journals and goldens: a
  // default-tenant, priority-1 request renders the exact pre-fair-share
  // line — the new fields appear only when they say something.
  const std::string line = valid_line();
  EXPECT_EQ(line.find("tenant"), std::string::npos);
  EXPECT_EQ(line.find("priority"), std::string::npos);
  const ServiceRequest req = parse_request(line);
  EXPECT_EQ(req.tenant, "default");
  EXPECT_EQ(req.priority, 1u);
}

TEST(ServiceResponseJson, SeqTagSplicesOntoTheExactBatchLine) {
  ServiceResponse resp;
  resp.id = "stream-1";
  resp.code = ResponseCode::kShed;
  resp.message = "admission queue is full";
  resp.retry_after_s = 1.5;
  const std::string batch = render_response_json(resp);
  const std::string tagged = render_response_json(resp, 7);
  EXPECT_EQ(tagged.rfind("{\"schema\":\"powervar-response-v1\",\"seq\":7,", 0),
            0u);
  // Stripping the seq field recovers the batch line byte for byte — the
  // contract the determinism gate's sed pipeline relies on.
  std::string stripped = tagged;
  const std::size_t at = stripped.find("\"seq\":7,");
  ASSERT_NE(at, std::string::npos);
  stripped.erase(at, std::string("\"seq\":7,").size());
  EXPECT_EQ(stripped, batch);
}

TEST(FuzzServiceRequest, JsonParserRoundTripsSerializerOutput) {
  // The strict parser must accept (and reproduce byte-for-byte through
  // dump()) everything the serializer emits — objects, arrays, the three
  // number kinds, escapes and unicode.
  Json doc = Json::object();
  doc["text"] = "quote \" slash \\ newline \n tab \t unicode µ";
  doc["int"] = static_cast<long long>(-42);
  doc["uint"] = static_cast<unsigned long long>(1) << 63;
  doc["num"] = 0.1;
  doc["tiny"] = 5e-324;
  doc["huge"] = 1.7976931348623157e308;
  doc["yes"] = true;
  doc["no"] = false;
  doc["nil"] = Json();  // null member
  Json arr = Json::array();
  arr.push_back(1.5);
  arr.push_back("two");
  Json inner = Json::object();
  inner["k"] = "v";
  arr.push_back(std::move(inner));
  doc["arr"] = std::move(arr);
  const std::string dumped = doc.dump();
  const Json parsed = Json::parse(dumped);
  EXPECT_EQ(parsed.dump(), dumped);
}

}  // namespace
}  // namespace pv
