#include "core/baselines.hpp"

#include <cmath>

#include "core/sample_size.hpp"
#include "util/expects.hpp"

namespace pv {

std::size_t hoeffding_required_sample_size(double alpha, double lambda,
                                           double mean_w, double range_w) {
  PV_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  PV_EXPECTS(lambda > 0.0, "accuracy lambda must be positive");
  PV_EXPECTS(mean_w > 0.0, "mean power must be positive");
  PV_EXPECTS(range_w > 0.0, "power range must be positive");
  const double t = lambda * mean_w;
  const double n = range_w * range_w * std::log(2.0 / alpha) / (2.0 * t * t);
  return static_cast<std::size_t>(std::ceil(n - 1e-12));
}

std::size_t chebyshev_required_sample_size(double alpha, double lambda,
                                           double cv) {
  PV_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  PV_EXPECTS(lambda > 0.0, "accuracy lambda must be positive");
  PV_EXPECTS(cv > 0.0, "cv must be positive");
  const double n = cv * cv / (alpha * lambda * lambda);
  return static_cast<std::size_t>(std::ceil(n - 1e-12));
}

double conservatism_vs_normal(std::size_t baseline_n, double alpha,
                              double lambda, double cv,
                              std::size_t total_nodes) {
  const std::size_t normal_n =
      required_sample_size(alpha, lambda, cv, total_nodes);
  PV_EXPECTS(normal_n > 0, "normal-theory recommendation must be positive");
  return static_cast<double>(baseline_n) / static_cast<double>(normal_n);
}

}  // namespace pv
