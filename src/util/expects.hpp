#pragma once
// Contract-checking macros (C++ Core Guidelines I.6/I.8 style).
//
// PV_EXPECTS(cond, msg)  -- precondition; throws pv::contract_error.
// PV_ENSURES(cond, msg)  -- postcondition; throws pv::contract_error.
//
// Contracts are *always on*: this library's correctness claims are
// statistical, and silently accepting nonsense inputs (negative power,
// sample size of zero, confidence outside (0,1)) would corrupt results in
// ways no downstream assertion can catch.

#include <sstream>
#include <stdexcept>
#include <string>

namespace pv {

/// Thrown when a precondition or postcondition is violated.
class contract_error : public std::logic_error {
 public:
  explicit contract_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* cond,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " violated: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw contract_error(os.str());
}
}  // namespace detail

}  // namespace pv

#define PV_EXPECTS(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pv::detail::contract_fail("precondition", #cond, __FILE__,          \
                                  __LINE__, (msg));                         \
  } while (0)

#define PV_ENSURES(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::pv::detail::contract_fail("postcondition", #cond, __FILE__,         \
                                  __LINE__, (msg));                         \
  } while (0)
