#pragma once
// The resident campaign service: a multi-tenant front end over the
// staged pipeline.  `powervar serve` (and the soak tests) construct one
// CampaignService, feed it request lines, and collect typed responses.
//
// Design pillars (docs/robustness.md, "The campaign service"):
//
//   admission      a bounded queue in front of a fixed worker pool.
//                  submit() returns an immediate verdict: accepted
//                  (a worker slot was free), queued (waiting, queue
//                  depth reported), or shed (queue full / draining —
//                  the response carries retry_after_s, and the service
//                  did NOT take the work).
//
//   deadlines      each request runs under its own CancelToken, armed
//                  with the request's deadline budget (or the service
//                  default).  The pipeline checks the token at every
//                  stage boundary, so an exhausted budget unwinds
//                  between stages — never a torn Document — and maps to
//                  the deadline_exceeded response.
//
//   isolation      requests share nothing mutable: every campaign's RNG
//                  is keyed by its own request seed, scratch state
//                  lives in its own CampaignContext, and the only
//                  shared artifact — the provisioned scenario — is
//                  immutable behind shared_ptr<const>.  N concurrent
//                  campaigns are bit-identical to N solo runs; a ctest
//                  enforces it.
//
//   caching        expensive Provision artifacts come from the
//                  content-addressed ScenarioCache (CRC-revalidated,
//                  quarantine on corruption — see service/cache.hpp).
//
//   drain          drain() stops admission (late submits are shed),
//                  lets running requests finish, and checkpoints
//                  still-queued ones to the PR2 WAL so no accepted
//                  request is silently lost.  The DrainReport accounts
//                  for every request the service ever saw.
//
//   chaos          a seeded ServiceFaultPlan (service/chaos.hpp) wraps
//                  pipeline stages and poisons cache reads; the soak
//                  test asserts each injected fault maps to exactly one
//                  typed response with zero cross-request contamination.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/cache.hpp"
#include "service/chaos.hpp"
#include "service/request.hpp"
#include "util/cancel.hpp"
#include "util/parallel.hpp"

namespace pv {

struct ServiceConfig {
  unsigned workers = 4;           ///< worker threads running campaigns
  std::size_t max_queue = 8;      ///< waiting requests beyond the workers
  double default_deadline_ms = 0.0;  ///< per-request budget (0 = none)
  double retry_after_s = 1.0;     ///< hint attached to shed responses
  std::size_t cache_capacity = 8;
  bool strict_cache = false;      ///< corrupt cache refuses, not rebuilds
  /// WAL path for drain checkpoints ("" = drained-but-unstarted requests
  /// get the weaker `cancelled` response instead of `checkpointed`).
  std::string checkpoint_path;
  ServiceFaultPlan chaos;         ///< all-zeros = no injection
};

/// submit()'s immediate verdict.
enum class Admission { kAccepted, kQueued, kShed };

struct AdmissionVerdict {
  Admission decision = Admission::kShed;
  std::size_t ticket = 0;       ///< handle for wait(); valid unless kShed...
  bool has_ticket = false;      ///< ...but shed submits get a ticket too
                                ///  (their response is pre-written)
  std::size_t queue_depth = 0;  ///< waiting requests after this verdict
  double retry_after_s = 0.0;   ///< kShed only
};

/// Everything that happened across the service's lifetime, returned by
/// drain().  The accounting identity the chaos soak asserts:
///   submitted == invalid + shed + completed + checkpointed.
struct DrainReport {
  std::size_t submitted = 0;     ///< submit() calls, valid or not
  std::size_t invalid = 0;       ///< rejected before admission
  std::size_t shed = 0;          ///< load-shed at admission
  std::size_t admitted = 0;      ///< accepted or queued
  std::size_t completed = 0;     ///< ran to a terminal response
  std::size_t checkpointed = 0;  ///< drained before start (journaled or
                                 ///  cancelled)
  std::size_t workers_replaced = 0;  ///< worker deaths survived
  CacheStats cache;
};

/// Fingerprint drain-checkpoint journals are written under — exposed so
/// resuming tools (and the tests) can validate a replayed journal's
/// header against it.
[[nodiscard]] std::uint64_t service_checkpoint_fingerprint();

class CampaignService {
 public:
  explicit CampaignService(ServiceConfig config);
  ~CampaignService();

  CampaignService(const CampaignService&) = delete;
  CampaignService& operator=(const CampaignService&) = delete;

  /// Parses and submits one request line.  A line that fails to parse is
  /// not admitted: it gets a ticket whose response is already
  /// `invalid_request` (decision kShed, has_ticket true).
  AdmissionVerdict submit_line(const std::string& json_line);

  /// Admits a parsed request.  Never blocks: the verdict is immediate
  /// and sheds carry retry_after_s.  Every non-shed verdict's ticket
  /// resolves to exactly one response via wait().
  AdmissionVerdict submit(const ServiceRequest& req);

  /// Blocks until the ticket's request reaches a terminal state and
  /// returns its response.  Tickets from shed/invalid submits return
  /// immediately.
  [[nodiscard]] ServiceResponse wait(std::size_t ticket);

  /// Graceful shutdown: stops admission, cancels queued requests
  /// (checkpointing them to the WAL when configured), waits for running
  /// requests to finish, and shuts the pool down.  Idempotent; the
  /// report covers the whole lifetime.
  DrainReport drain();

 private:
  enum class State { kQueued, kRunning, kDone };

  struct Slot {
    ServiceRequest request;
    State state = State::kQueued;
    bool counts_admitted = false;
    ServiceResponse response;
    std::unique_ptr<CancelToken> cancel;
  };

  void execute(std::size_t ticket);
  void finish_locked(Slot& slot, ServiceResponse resp);
  ServiceResponse run_request(const ServiceRequest& req, CancelToken* token,
                              ServiceFault fault);

  ServiceConfig config_;
  std::unique_ptr<ThreadPool> pool_;
  ScenarioCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_done_;
  std::vector<std::unique_ptr<Slot>> slots_;  ///< ticket -> slot
  std::size_t running_ = 0;
  std::size_t queued_ = 0;
  bool draining_ = false;
  bool drained_ = false;
  DrainReport report_;
};

}  // namespace pv
