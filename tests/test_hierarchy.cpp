// Unit tests for the system power hierarchy.

#include "meter/hierarchy.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace pv {
namespace {

SystemPowerModel two_rack_system() {
  SystemPowerModel m("testsys", /*nodes_per_rack=*/2);
  for (int i = 0; i < 4; ++i) {
    const double base = 100.0 + 10.0 * i;
    m.add_node([base](double) { return base; },
               PsuModel(Watts{400.0}, PsuEfficiencyCurve::platinum()));
  }
  m.set_pdu_loss_fraction(0.02);
  return m;
}

TEST(SystemPowerModel, CountsAndStructure) {
  const SystemPowerModel m = two_rack_system();
  EXPECT_EQ(m.node_count(), 4u);
  EXPECT_EQ(m.rack_count(), 2u);
  EXPECT_EQ(m.nodes_per_rack(), 2u);
  EXPECT_EQ(m.name(), "testsys");
}

TEST(SystemPowerModel, DcAndAcNodePower) {
  const SystemPowerModel m = two_rack_system();
  EXPECT_DOUBLE_EQ(m.node_dc_w(0, 0.0), 100.0);
  // AC exceeds DC by the PSU loss.
  EXPECT_GT(m.node_ac_w(0, 0.0), 100.0);
  EXPECT_LT(m.node_ac_w(0, 0.0), 100.0 / 0.80);
  EXPECT_THROW(m.node_dc_w(4, 0.0), contract_error);
}

TEST(SystemPowerModel, RackPduIncludesDistributionLoss) {
  const SystemPowerModel m = two_rack_system();
  const double nodes_ac = m.node_ac_w(0, 0.0) + m.node_ac_w(1, 0.0);
  EXPECT_NEAR(m.rack_pdu_w(0, 0.0), nodes_ac / 0.98, 1e-9);
  EXPECT_THROW(m.rack_pdu_w(2, 0.0), contract_error);
}

TEST(SystemPowerModel, ComputeSumsRacks) {
  const SystemPowerModel m = two_rack_system();
  EXPECT_NEAR(m.compute_ac_w(0.0), m.rack_pdu_w(0, 0.0) + m.rack_pdu_w(1, 0.0),
              1e-9);
}

TEST(SystemPowerModel, AuxiliariesByKind) {
  SystemPowerModel m = two_rack_system();
  m.add_subsystem(Subsystem::kNetwork, "switches", [](double) { return 50.0; });
  m.add_subsystem(Subsystem::kStorage, "lustre", [](double) { return 30.0; });
  m.add_subsystem(Subsystem::kNetwork, "directors", [](double) { return 20.0; });
  EXPECT_DOUBLE_EQ(m.auxiliary_ac_w(0.0), 100.0);
  EXPECT_DOUBLE_EQ(m.auxiliary_ac_w(Subsystem::kNetwork, 0.0), 70.0);
  EXPECT_DOUBLE_EQ(m.auxiliary_ac_w(Subsystem::kCooling, 0.0), 0.0);
  EXPECT_NEAR(m.facility_w(0.0), m.compute_ac_w(0.0) + 100.0, 1e-9);
}

TEST(SystemPowerModel, ComputeNodesNotAddableAsSubsystem) {
  SystemPowerModel m("x", 1);
  EXPECT_THROW(
      m.add_subsystem(Subsystem::kComputeNode, "nodes", [](double) { return 1.0; }),
      contract_error);
}

TEST(SystemPowerModel, PduLossValidation) {
  SystemPowerModel m("x", 1);
  EXPECT_THROW(m.set_pdu_loss_fraction(0.5), contract_error);
  EXPECT_THROW(m.set_pdu_loss_fraction(-0.1), contract_error);
}

TEST(SystemPowerModel, FunctionViewsMatchDirectCalls) {
  SystemPowerModel m = two_rack_system();
  m.add_subsystem(Subsystem::kNetwork, "sw", [](double) { return 10.0; });
  const auto nf = m.node_ac_function(2);
  EXPECT_DOUBLE_EQ(nf(1.0), m.node_ac_w(2, 1.0));
  const auto ff = m.facility_function();
  EXPECT_DOUBLE_EQ(ff(1.0), m.facility_w(1.0));
}

TEST(SystemPowerModel, PartialLastRack) {
  SystemPowerModel m("odd", /*nodes_per_rack=*/2);
  for (int i = 0; i < 3; ++i) {
    m.add_node([](double) { return 100.0; },
               PsuModel(Watts{400.0}, PsuEfficiencyCurve::gold()));
  }
  EXPECT_EQ(m.rack_count(), 2u);
  // Last rack holds a single node.
  EXPECT_LT(m.rack_pdu_w(1, 0.0), m.rack_pdu_w(0, 0.0));
}

TEST(SystemPowerModel, EmptySystemHasNoRacksAndZeroComputePower) {
  SystemPowerModel m("empty", /*nodes_per_rack=*/4);
  EXPECT_EQ(m.node_count(), 0u);
  EXPECT_EQ(m.rack_count(), 0u);
  EXPECT_DOUBLE_EQ(m.compute_ac_w(0.0), 0.0);
  // The facility feed of a nodeless machine room is its auxiliaries alone.
  m.add_subsystem(Subsystem::kCooling, "crac", [](double) { return 80.0; });
  EXPECT_DOUBLE_EQ(m.facility_w(0.0), 80.0);
  EXPECT_THROW(m.node_ac_w(0, 0.0), contract_error);
  EXPECT_THROW(m.rack_pdu_w(0, 0.0), contract_error);
}

TEST(SystemPowerModel, SingleNodeSystemIsItsOwnRack) {
  SystemPowerModel m("lonely", /*nodes_per_rack=*/8);
  m.add_node([](double) { return 250.0; },
             PsuModel(Watts{400.0}, PsuEfficiencyCurve::titanium()));
  m.set_pdu_loss_fraction(0.03);
  EXPECT_EQ(m.rack_count(), 1u);
  EXPECT_NEAR(m.rack_pdu_w(0, 0.0), m.node_ac_w(0, 0.0) / 0.97, 1e-9);
  EXPECT_NEAR(m.compute_ac_w(0.0), m.rack_pdu_w(0, 0.0), 1e-9);
  EXPECT_NEAR(m.facility_w(0.0), m.compute_ac_w(0.0), 1e-9);
}

TEST(SystemPowerModel, PowerIsMonotoneInThePduLoss) {
  const auto facility_at_loss = [](double loss) {
    SystemPowerModel m = two_rack_system();
    m.set_pdu_loss_fraction(loss);
    return m.facility_w(0.0);
  };
  double prev = facility_at_loss(0.0);
  for (double loss : {0.01, 0.02, 0.05, 0.10}) {
    const double cur = facility_at_loss(loss);
    EXPECT_GT(cur, prev) << "loss " << loss;
    prev = cur;
  }
  // Zero loss means the rack tap reads exactly the node sum — the
  // child_scale reconciliation uses degenerates to 1.
  SystemPowerModel m = two_rack_system();
  m.set_pdu_loss_fraction(0.0);
  EXPECT_DOUBLE_EQ(m.pdu_loss_fraction(), 0.0);
  EXPECT_NEAR(m.rack_pdu_w(0, 0.0), m.node_ac_w(0, 0.0) + m.node_ac_w(1, 0.0),
              1e-9);
}

TEST(SystemPowerModel, HierarchyRoundTripsFromNodesToFacility) {
  // The invariant hierarchical cross-validation rests on: at every level,
  // the parent tap equals the scaled sum of its children, exactly.
  SystemPowerModel m = two_rack_system();
  m.add_subsystem(Subsystem::kNetwork, "sw", [](double) { return 40.0; });
  const double scale = 1.0 / (1.0 - m.pdu_loss_fraction());
  for (double t : {0.0, 10.0, 3600.0}) {
    double facility_rebuilt = m.auxiliary_ac_w(t);
    for (std::size_t rack = 0; rack < m.rack_count(); ++rack) {
      double rack_rebuilt = 0.0;
      for (std::size_t i = 0; i < m.nodes_per_rack(); ++i) {
        rack_rebuilt += m.node_ac_w(rack * m.nodes_per_rack() + i, t);
      }
      EXPECT_NEAR(m.rack_pdu_w(rack, t), rack_rebuilt * scale, 1e-9);
      facility_rebuilt += m.rack_pdu_w(rack, t);
    }
    EXPECT_NEAR(m.facility_w(t), facility_rebuilt, 1e-9);
  }
}

TEST(EnumsToString, HumanReadable) {
  EXPECT_STREQ(to_string(Subsystem::kComputeNode), "compute-node");
  EXPECT_STREQ(to_string(Subsystem::kCooling), "cooling");
  EXPECT_STREQ(to_string(MeasurementPoint::kFacilityFeed), "facility-feed");
  EXPECT_STREQ(to_string(MeasurementPoint::kNodeDc), "node-DC");
}

}  // namespace
}  // namespace pv
