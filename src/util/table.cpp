#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/expects.hpp"

namespace pv {

TextTable::TextTable(std::vector<std::string> headers,
                     std::vector<Align> aligns)
    : headers_(std::move(headers)), aligns_(std::move(aligns)) {
  PV_EXPECTS(!headers_.empty(), "table needs at least one column");
  if (aligns_.empty()) {
    // Default: first column left (labels), the rest right (numbers).
    aligns_.assign(headers_.size(), Align::Right);
    aligns_[0] = Align::Left;
  }
  PV_EXPECTS(aligns_.size() == headers_.size(),
             "alignment list must match header count");
}

void TextTable::add_row(std::vector<std::string> cells) {
  PV_EXPECTS(cells.size() == headers_.size(),
             "row width must match header count");
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  const auto pad = [&](const std::string& s, std::size_t w, Align a) {
    std::string out;
    if (a == Align::Left) {
      out = s + std::string(w - s.size(), ' ');
    } else {
      out = std::string(w - s.size(), ' ') + s;
    }
    return out;
  };
  const auto rule = [&] {
    std::string s;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      s += std::string(widths[c] + 2, '-');
      if (c + 1 < widths.size()) s += '+';
    }
    return s + '\n';
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << ' ' << pad(headers_[c], widths[c], aligns_[c]) << ' ';
    if (c + 1 < headers_.size()) os << '|';
  }
  os << '\n' << rule();
  for (const auto& row : rows_) {
    if (row.separator) {
      os << rule();
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      os << ' ' << pad(row.cells[c], widths[c], aligns_[c]) << ' ';
      if (c + 1 < row.cells.size()) os << '|';
    }
    os << '\n';
  }
  return os.str();
}

std::string fmt_fixed(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

std::string fmt_percent(double fraction, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", prec, fraction * 100.0);
  return buf;
}

std::string fmt_group(long long v) {
  const bool neg = v < 0;
  unsigned long long u =
      neg ? 0ULL - static_cast<unsigned long long>(v) : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace pv
