// Throughput bench for the resident campaign service (src/service):
// campaigns/sec through CampaignService, cold provision cache vs warm.
//
// Two scenarios, each a batch of PV_SERVICE_REQS requests on 4 workers:
//
//   service_cold   every request names a distinct ScenarioSpec (seeds
//                  differ), so every request pays a full Provision build;
//   service_warm   every request shares one ScenarioSpec under distinct
//                  ids, so only the first request builds — the rest hit
//                  the content-addressed cache and skip Provision.
//
// Best-of-PV_PERF_REPS wall time per scenario, a fresh service per rep
// (so the cache genuinely starts cold/warms up inside the timed window).
// Three contracts are enforced in-binary (exit 1 on violation):
//
//   1. every response in every rep is `ok` — a bench that sheds or
//      faults is measuring the wrong thing;
//   2. the cold run's cache counts exactly PV_SERVICE_REQS misses and
//      zero hits (no accidental sharing);
//   3. the warm run counts exactly one miss and PV_SERVICE_REQS - 1
//      hits — the deterministic proof that warm requests skip Provision
//      (single-flight stats are interleaving-independent by design).
//
// Results land in BENCH_service.json (override with PV_PERF_JSON) for
// tools/check_perf.sh, which gates on the warm-over-cold speedup
// against the committed bench/BENCH_service_baseline.json.  The ratio —
// not absolute campaigns/sec — is the gated number: both halves are
// measured back-to-back under identical machine load, so the ratio
// survives noisy CI boxes where a millisecond-scale batch time cannot.
//
// Env overrides: PV_SERVICE_REQS (12), PV_SERVICE_NODES (240),
// PV_PERF_REPS (5), PV_PERF_JSON.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "util/table.hpp"

namespace {

using namespace pv;

ServiceRequest make_request(bool cold, std::size_t i, std::size_t nodes) {
  ServiceRequest req;
  req.id = (cold ? "cold-" : "warm-") + std::to_string(i);
  req.nodes = nodes;
  // Cold: distinct seeds -> distinct ScenarioSpec fingerprints -> every
  // request provisions.  Warm: one shared seed -> one fingerprint.
  req.seed = cold ? 1000 + i : 1000;
  req.interval_s = 10.0;
  return req;
}

struct BatchResult {
  std::string name;
  std::size_t requests = 0;
  double best_ms = 0.0;
  double campaigns_per_sec = 0.0;
  std::size_t cache_hits = 0;    // from the final rep (deterministic)
  std::size_t cache_misses = 0;
  bool all_ok = true;
  bool cache_contract = true;
};

BatchResult run_batch(const std::string& name, bool cold,
                      std::size_t requests, std::size_t nodes,
                      std::size_t reps) {
  BatchResult out;
  out.name = name;
  out.requests = requests;
  out.best_ms = 1e300;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    ServiceConfig config;
    config.workers = 4;
    config.max_queue = requests;
    config.cache_capacity = requests;  // no capacity-eviction noise
    CampaignService service(config);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::size_t> tickets;
    tickets.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      const AdmissionVerdict verdict =
          service.submit(make_request(cold, i, nodes));
      if (verdict.decision == Admission::kShed) out.all_ok = false;
      tickets.push_back(verdict.ticket);
    }
    for (const std::size_t ticket : tickets) {
      if (service.wait(ticket).code != ResponseCode::kOk) out.all_ok = false;
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.best_ms = std::min(
        out.best_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());

    const DrainReport report = service.drain();
    out.cache_hits = report.cache.hits;
    out.cache_misses = report.cache.misses;
    // Single-flight builder/waiter accounting makes these exact under
    // any interleaving — this IS the skip-Provision proof.
    const std::size_t want_misses = cold ? requests : 1;
    if (report.cache.misses != want_misses ||
        report.cache.hits != requests - want_misses) {
      out.cache_contract = false;
    }
  }
  out.campaigns_per_sec =
      static_cast<double>(requests) / (out.best_ms / 1e3);
  return out;
}

void write_json(const std::string& path,
                const std::vector<BatchResult>& scenarios, std::size_t reps,
                double warm_over_cold) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n  \"schema\": \"powervar-bench-service-v1\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"warm_over_cold\": " << warm_over_cold << ",\n"
      << "  \"scenarios\": {\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const BatchResult& s = scenarios[i];
    out << "    \"" << s.name << "\": {\n"
        << "      \"requests\": " << s.requests << ",\n"
        << "      \"best_ms\": " << s.best_ms << ",\n"
        << "      \"campaigns_per_sec\": " << s.campaigns_per_sec << ",\n"
        << "      \"cache_hits\": " << s.cache_hits << ",\n"
        << "      \"cache_misses\": " << s.cache_misses << ",\n"
        << "      \"all_ok\": " << (s.all_ok ? "true" : "false") << ",\n"
        << "      \"cache_contract\": "
        << (s.cache_contract ? "true" : "false") << "\n    }"
        << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main() {
  bench::banner("service-throughput",
                "campaign service, cold vs warm provision cache");

  const std::size_t requests = bench::env_size("PV_SERVICE_REQS", 12);
  const std::size_t nodes = bench::env_size("PV_SERVICE_NODES", 240);
  const std::size_t reps = bench::env_size("PV_PERF_REPS", 5);
  const char* json_env = std::getenv("PV_PERF_JSON");
  const std::string json_path =
      (json_env != nullptr && *json_env != '\0') ? json_env
                                                 : "BENCH_service.json";

  std::vector<BatchResult> scenarios;
  scenarios.push_back(
      run_batch("service_cold", true, requests, nodes, reps));
  scenarios.push_back(
      run_batch("service_warm", false, requests, nodes, reps));

  TextTable t({"scenario", "requests", "batch", "campaigns/s", "hits",
               "misses", "all ok"});
  const auto ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f ms", v);
    return std::string(buf);
  };
  const auto rate = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };
  for (const BatchResult& s : scenarios) {
    t.add_row({s.name, std::to_string(s.requests), ms(s.best_ms),
               rate(s.campaigns_per_sec), std::to_string(s.cache_hits),
               std::to_string(s.cache_misses), s.all_ok ? "yes" : "NO"});
  }
  std::cout << t.render();
  const double warm_over_cold = scenarios[0].best_ms / scenarios[1].best_ms;
  std::cout << "\nwarm over cold: " << warm_over_cold << "x ("
            << requests - 1 << " Provision builds skipped)\n";

  write_json(json_path, scenarios, reps, warm_over_cold);
  std::cout << "wrote " << json_path << " (best of " << reps
            << " reps per scenario)\n";

  bool ok = true;
  for (const BatchResult& s : scenarios) {
    if (!s.all_ok) {
      std::cout << "CONTRACT VIOLATED: " << s.name
                << " had non-ok responses\n";
      ok = false;
    }
    if (!s.cache_contract) {
      std::cout << "CONTRACT VIOLATED: " << s.name
                << " cache stats off (" << s.cache_misses << " misses, "
                << s.cache_hits << " hits for " << s.requests
                << " requests)\n";
      ok = false;
    }
  }
  std::cout << (ok ? "\nall service cache contracts hold\n"
                   : "\nsome contracts VIOLATED\n");
  return ok ? 0 : 1;
}
