#pragma once
// Shared helpers for the reproduction benches.

#include <sys/resource.h>

#include <cstdlib>
#include <iostream>
#include <string>

namespace pv::bench {

/// Peak resident set size of this process in MB, from getrusage.  The
/// kernel reports a monotone high-watermark (ru_maxrss never decreases),
/// so memory-growth comparisons must take both readings before anything
/// larger runs in the same process.
inline double peak_rss_mb() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  // Linux reports ru_maxrss in KiB.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
}

/// Reads a std::size_t from the environment, with a default — used to let
/// CI shrink Monte-Carlo counts (e.g. PV_FIG3_SIMS=5000).
inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

/// Standard bench banner.
inline void banner(const std::string& id, const std::string& what) {
  std::cout << "\n================================================================\n"
            << id << " — " << what << '\n'
            << "================================================================\n";
}

}  // namespace pv::bench
