#include "workload/hpl.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace pv {

HplParams HplParams::cpu_traditional() {
  HplParams p;
  p.e_max = 0.96;
  p.e_min = 0.30;
  p.knee = 0.004;  // saturation knee deep in the tail: flat profile
  p.hill_gamma = 2.0;
  p.warmup_amp = 0.015;
  p.warmup_tau_frac = 0.03;
  p.osc_depth = 0.01;
  p.osc_cycles = 600.0;
  return p;
}

HplParams HplParams::gpu_incore() {
  HplParams p;
  p.e_max = 0.97;
  p.e_min = 0.30;
  p.knee = 0.60;  // GPUs need large trailing panels: pronounced sag + tail
  p.hill_gamma = 2.0;
  p.warmup_amp = 0.02;
  p.warmup_tau_frac = 0.04;
  p.osc_depth = 0.06;
  p.osc_cycles = 150.0;
  return p;
}

HplWorkload::HplWorkload(HplParams params, Seconds core_duration,
                         Seconds setup, Seconds teardown)
    : params_(params) {
  PV_EXPECTS(core_duration.value() > 0.0, "core duration must be positive");
  PV_EXPECTS(setup.value() >= 0.0 && teardown.value() >= 0.0,
             "phase durations must be non-negative");
  PV_EXPECTS(params.e_max > 0.0 && params.e_max <= 1.0, "e_max in (0,1]");
  PV_EXPECTS(params.e_min > 0.0 && params.e_min <= params.e_max,
             "e_min in (0, e_max]");
  PV_EXPECTS(params.knee > 0.0 && params.knee < 1.0, "knee in (0,1)");
  PV_EXPECTS(params.hill_gamma > 0.0, "hill_gamma must be positive");
  phases_ = RunPhases{setup, core_duration, teardown};
  build_progress_table();
}

double HplWorkload::efficiency(double m) const {
  PV_EXPECTS(m >= 0.0 && m <= 1.0, "trailing fraction outside [0,1]");
  const double mg = std::pow(m, params_.hill_gamma);
  const double hg = std::pow(params_.knee, params_.hill_gamma);
  return params_.e_min + (params_.e_max - params_.e_min) * mg / (mg + hg);
}

void HplWorkload::build_progress_table() {
  // Accumulate t(c) = K * int_0^c 3 m^2 / e(m) dc' on a uniform column grid,
  // then normalize to [0, 1].  4k panels keep the tail (where e collapses)
  // well resolved.
  constexpr std::size_t kPanels = 4096;
  time_frac_.assign(kPanels + 1, 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < kPanels; ++i) {
    const double c_mid =
        (static_cast<double>(i) + 0.5) / static_cast<double>(kPanels);
    const double m = 1.0 - c_mid;
    acc += 3.0 * m * m / efficiency(m);
    time_frac_[i + 1] = acc;
  }
  for (auto& v : time_frac_) v /= acc;
}

double HplWorkload::trailing_fraction(double tc) const {
  const double T = phases_.core.value();
  PV_EXPECTS(tc >= -1e-9 && tc <= T * (1.0 + 1e-9),
             "core time outside the core phase");
  const double target = std::clamp(tc / T, 0.0, 1.0);
  // time_frac_ is increasing in the column index; invert by binary search.
  const auto it =
      std::lower_bound(time_frac_.begin(), time_frac_.end(), target);
  if (it == time_frac_.begin()) return 1.0;
  if (it == time_frac_.end()) return 0.0;
  const auto hi_idx = static_cast<std::size_t>(it - time_frac_.begin());
  const double t_lo = time_frac_[hi_idx - 1];
  const double t_hi = time_frac_[hi_idx];
  const double frac =
      t_hi > t_lo ? (target - t_lo) / (t_hi - t_lo) : 0.0;
  const double c = (static_cast<double>(hi_idx - 1) + frac) /
                   static_cast<double>(time_frac_.size() - 1);
  return 1.0 - c;
}

double HplWorkload::intensity(double t) const {
  const RunPhases& p = phases_;
  PV_EXPECTS(t >= -1e-9 && t <= p.total().value() * (1.0 + 1e-9) + 1e-9,
             "time outside the run");
  if (t < p.core_begin().value()) return params_.setup_intensity;
  if (t >= p.core_end().value()) return params_.teardown_intensity;

  const double tc = t - p.core_begin().value();
  const double T = p.core.value();
  const double m = trailing_fraction(tc);
  double e = efficiency(m);

  // Warm-up: clocks/temperatures settling at the very beginning of the run.
  if (params_.warmup_amp != 0.0) {
    e += params_.warmup_amp * std::exp(-tc / (params_.warmup_tau_frac * T));
  }
  // Panel-factorization vs trailing-update oscillation.  Panels matter more
  // (relative to DGEMM work) as the trailing matrix shrinks, so the
  // modulation deepens toward the end of the run.
  if (params_.osc_depth != 0.0) {
    const double weight = 1.0 - m;  // grows toward the end
    const double phase = 2.0 * M_PI * params_.osc_cycles * (tc / T);
    e *= 1.0 - params_.osc_depth * weight * 0.5 * (1.0 + std::sin(phase));
  }
  return std::clamp(e, 0.0, 1.2);
}

}  // namespace pv
