#include "meter/psu.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"
#include "util/mathx.hpp"

namespace pv {

PsuEfficiencyCurve::PsuEfficiencyCurve(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  PV_EXPECTS(points_.size() >= 2, "efficiency curve needs >= 2 points");
  for (std::size_t i = 0; i < points_.size(); ++i) {
    PV_EXPECTS(points_[i].first >= 0.0 && points_[i].first <= 1.0,
               "load fractions must lie in [0,1]");
    PV_EXPECTS(points_[i].second > 0.0 && points_[i].second <= 1.0,
               "efficiencies must lie in (0,1]");
    if (i > 0) {
      PV_EXPECTS(points_[i].first > points_[i - 1].first,
                 "load fractions must be strictly increasing");
    }
  }
}

PsuEfficiencyCurve PsuEfficiencyCurve::gold() {
  return PsuEfficiencyCurve({{0.02, 0.60},
                             {0.10, 0.82},
                             {0.20, 0.87},
                             {0.50, 0.90},
                             {1.00, 0.87}});
}

PsuEfficiencyCurve PsuEfficiencyCurve::platinum() {
  return PsuEfficiencyCurve({{0.02, 0.65},
                             {0.10, 0.86},
                             {0.20, 0.90},
                             {0.50, 0.94},
                             {1.00, 0.91}});
}

PsuEfficiencyCurve PsuEfficiencyCurve::titanium() {
  return PsuEfficiencyCurve({{0.02, 0.70},
                             {0.10, 0.90},
                             {0.20, 0.94},
                             {0.50, 0.96},
                             {1.00, 0.94}});
}

double PsuEfficiencyCurve::efficiency_at(double load_fraction) const {
  PV_EXPECTS(load_fraction >= 0.0, "load fraction must be non-negative");
  if (load_fraction <= points_.front().first) return points_.front().second;
  if (load_fraction >= points_.back().first) return points_.back().second;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (load_fraction <= points_[i].first) {
      const auto& [x0, y0] = points_[i - 1];
      const auto& [x1, y1] = points_[i];
      const double t = (load_fraction - x0) / (x1 - x0);
      return lerp01(y0, y1, t);
    }
  }
  return points_.back().second;  // unreachable
}

PsuModel::PsuModel(Watts rated_dc_output, PsuEfficiencyCurve curve)
    : rated_(rated_dc_output), curve_(std::move(curve)) {
  PV_EXPECTS(rated_dc_output.value() > 0.0, "rated output must be positive");
}

Watts PsuModel::ac_input(Watts dc_load) const {
  PV_EXPECTS(dc_load.value() >= 0.0, "DC load must be non-negative");
  if (dc_load.value() == 0.0) return Watts{0.0};
  const double load_frac = dc_load / rated_;
  return Watts{dc_load.value() / curve_.efficiency_at(load_frac)};
}

Watts PsuModel::dc_output(Watts ac) const {
  PV_EXPECTS(ac.value() >= 0.0, "AC input must be non-negative");
  if (ac.value() == 0.0) return Watts{0.0};
  // ac_input is strictly increasing in the DC load, so bisect.
  double lo = 0.0;
  double hi = rated_.value() * 1.5;
  while (ac_input(Watts{hi}).value() < ac.value()) {
    hi *= 2.0;
    PV_EXPECTS(hi < 1e12, "AC input beyond any plausible PSU operating point");
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (ac_input(Watts{mid}).value() < ac.value()) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-9 * (1.0 + hi)) break;
  }
  return Watts{0.5 * (lo + hi)};
}

Watts PsuModel::loss(Watts dc_load) const {
  return ac_input(dc_load) - dc_load;
}

}  // namespace pv
