#pragma once
// Sliding-window search over power traces.
//
// §3 of the paper shows that submitters could "game" Level 1 by placing the
// 20% measurement window over the lowest-power stretch of an HPL run
// (TSUBAME-KFC: -10.9%; L-CSC: -23.9%).  These helpers find the extreme
// windows so the gaming analysis (core/gaming) can quantify the exposure.

#include <vector>

#include "trace/segment.hpp"
#include "trace/time_series.hpp"

namespace pv {

/// A window together with its average power.
struct WindowAverage {
  TimeWindow window;
  Watts mean{0.0};
};

/// Sweeps every placement (sample-aligned) of a `width`-long window inside
/// `bounds` and returns the one with the lowest average power.
/// The trace must cover `bounds`; width must fit inside bounds.
[[nodiscard]] WindowAverage min_average_window(const PowerTrace& trace,
                                               TimeWindow bounds,
                                               Seconds width);

/// Same sweep, returning the window with the highest average power.
[[nodiscard]] WindowAverage max_average_window(const PowerTrace& trace,
                                               TimeWindow bounds,
                                               Seconds width);

/// Every sample-aligned placement and its average, in time order — the raw
/// series behind the BoF-style "measured power vs window position" charts.
[[nodiscard]] std::vector<WindowAverage> sweep_windows(const PowerTrace& trace,
                                                       TimeWindow bounds,
                                                       Seconds width);

}  // namespace pv
