# Empty dependencies file for bench_baseline_bounds.
# This may be replaced when dependencies are built.
