// Unit tests for the special functions: normal CDF/quantile, incomplete
// beta, and Student-t CDF/quantile.  Reference values from standard
// statistical tables (checked against R's qnorm/qt/pbeta).

#include "stats/special.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expects.hpp"

namespace pv {
namespace {

TEST(Normal, PdfPeakAndSymmetry) {
  EXPECT_NEAR(norm_pdf(0.0), 0.3989422804, 1e-10);
  EXPECT_DOUBLE_EQ(norm_pdf(1.5), norm_pdf(-1.5));
}

TEST(Normal, CdfReferenceValues) {
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(norm_cdf(1.0), 0.8413447461, 1e-9);
  EXPECT_NEAR(norm_cdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(norm_cdf(-2.326347874), 0.01, 1e-9);
  EXPECT_NEAR(norm_cdf(5.0), 0.9999997133, 1e-9);
}

TEST(Normal, QuantileReferenceValues) {
  EXPECT_NEAR(norm_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(norm_quantile(0.975), 1.959963985, 1e-9);
  EXPECT_NEAR(norm_quantile(0.995), 2.575829304, 1e-9);
  EXPECT_NEAR(norm_quantile(0.9), 1.281551566, 1e-9);
  EXPECT_NEAR(norm_quantile(0.025), -1.959963985, 1e-9);
  EXPECT_NEAR(norm_quantile(1e-6), -4.753424309, 1e-7);
}

TEST(Normal, QuantileCdfRoundTrip) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(norm_cdf(norm_quantile(p)), p, 1e-13) << "p=" << p;
  }
}

TEST(Normal, QuantileDomainChecks) {
  EXPECT_THROW(norm_quantile(0.0), contract_error);
  EXPECT_THROW(norm_quantile(1.0), contract_error);
  EXPECT_THROW(norm_quantile(-0.5), contract_error);
}

TEST(Normal, ZCritical) {
  EXPECT_NEAR(z_critical(0.05), 1.959963985, 1e-9);
  EXPECT_NEAR(z_critical(0.01), 2.575829304, 1e-9);
  EXPECT_NEAR(z_critical(0.20), 1.281551566, 1e-9);
  EXPECT_THROW(z_critical(0.0), contract_error);
}

TEST(IncompleteBeta, ClosedFormCases) {
  // I_x(1,1) = x.
  for (double x : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, x), x, 1e-12) << "x=" << x;
  }
  // I_x(2,2) = x^2 (3 - 2x).
  for (double x : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(incomplete_beta(2.0, 2.0, x), x * x * (3.0 - 2.0 * x), 1e-12);
  }
}

TEST(IncompleteBeta, SymmetryIdentity) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  for (double x : {0.05, 0.3, 0.7, 0.95}) {
    EXPECT_NEAR(incomplete_beta(2.5, 4.0, x),
                1.0 - incomplete_beta(4.0, 2.5, 1.0 - x), 1e-12);
  }
}

TEST(IncompleteBeta, ReferenceValue) {
  // pbeta(0.4, 2, 5) in R = 0.76672.
  EXPECT_NEAR(incomplete_beta(2.0, 5.0, 0.4), 0.76672, 1e-5);
  EXPECT_THROW(incomplete_beta(0.0, 1.0, 0.5), contract_error);
  EXPECT_THROW(incomplete_beta(1.0, 1.0, 1.5), contract_error);
}

TEST(StudentT, CdfBasics) {
  EXPECT_DOUBLE_EQ(t_cdf(0.0, 5.0), 0.5);
  // Symmetry.
  EXPECT_NEAR(t_cdf(1.3, 7.0) + t_cdf(-1.3, 7.0), 1.0, 1e-12);
  // With nu=1 (Cauchy): F(1) = 0.75.
  EXPECT_NEAR(t_cdf(1.0, 1.0), 0.75, 1e-9);
}

TEST(StudentT, CdfApproachesNormalForLargeNu) {
  for (double x : {-2.0, -0.5, 0.7, 1.96}) {
    EXPECT_NEAR(t_cdf(x, 1e6), norm_cdf(x), 1e-5) << "x=" << x;
  }
}

TEST(StudentT, QuantileReferenceValues) {
  // qt(0.975, df): 12.7062, 4.302653, 3.182446, 2.570582, 2.228139,
  // 2.144787, 2.085963, 1.983972.
  EXPECT_NEAR(t_quantile(0.975, 1.0), 12.7062047, 1e-5);
  EXPECT_NEAR(t_quantile(0.975, 2.0), 4.30265273, 1e-7);
  EXPECT_NEAR(t_quantile(0.975, 3.0), 3.18244631, 1e-7);
  EXPECT_NEAR(t_quantile(0.975, 5.0), 2.57058184, 1e-7);
  EXPECT_NEAR(t_quantile(0.975, 10.0), 2.22813885, 1e-7);
  EXPECT_NEAR(t_quantile(0.975, 14.0), 2.14478669, 1e-7);
  EXPECT_NEAR(t_quantile(0.975, 20.0), 2.08596345, 1e-7);
  EXPECT_NEAR(t_quantile(0.975, 100.0), 1.98397152, 1e-7);
}

TEST(StudentT, QuantileOtherLevels) {
  EXPECT_NEAR(t_quantile(0.9, 4.0), 1.53320627, 1e-7);    // qt(0.9, 4)
  EXPECT_NEAR(t_quantile(0.995, 9.0), 3.24983554, 1e-7);  // qt(0.995, 9)
  EXPECT_NEAR(t_quantile(0.5, 3.0), 0.0, 1e-12);
  EXPECT_NEAR(t_quantile(0.025, 7.0), -t_quantile(0.975, 7.0), 1e-9);
}

TEST(StudentT, QuantileCdfRoundTrip) {
  for (double nu : {1.0, 2.0, 4.0, 14.0, 291.0}) {
    for (double p : {0.01, 0.1, 0.4, 0.6, 0.9, 0.99}) {
      EXPECT_NEAR(t_cdf(t_quantile(p, nu), nu), p, 1e-10)
          << "nu=" << nu << " p=" << p;
    }
  }
}

TEST(StudentT, CriticalValueForPaperExamples) {
  // §4 intro: 4 of 210 nodes -> t_{3,0.975} = 3.1824; 292 of 18688 nodes
  // -> t_{291,0.975} ~ 1.9681.
  EXPECT_NEAR(t_critical(0.05, 3.0), 3.18244631, 1e-7);
  EXPECT_NEAR(t_critical(0.05, 291.0), 1.96807, 1e-4);
}

TEST(StudentT, PdfIntegratesToCdf) {
  // Midpoint integration of the pdf on [-4, 1.2] vs cdf difference.
  const double nu = 6.0;
  double acc = 0.0;
  const double a = -4.0, b = 1.2;
  const int n = 20000;
  const double h = (b - a) / n;
  for (int i = 0; i < n; ++i) acc += t_pdf(a + (i + 0.5) * h, nu) * h;
  EXPECT_NEAR(acc, t_cdf(b, nu) - t_cdf(a, nu), 1e-6);
}

TEST(StudentT, DomainChecks) {
  EXPECT_THROW(t_cdf(1.0, 0.0), contract_error);
  EXPECT_THROW(t_quantile(0.0, 5.0), contract_error);
  EXPECT_THROW(t_quantile(0.5, -1.0), contract_error);
  EXPECT_THROW(t_critical(1.0, 5.0), contract_error);
}

}  // namespace
}  // namespace pv
