
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/catalog.cpp" "src/sim/CMakeFiles/powervar_sim.dir/catalog.cpp.o" "gcc" "src/sim/CMakeFiles/powervar_sim.dir/catalog.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/powervar_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/powervar_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/components.cpp" "src/sim/CMakeFiles/powervar_sim.dir/components.cpp.o" "gcc" "src/sim/CMakeFiles/powervar_sim.dir/components.cpp.o.d"
  "/root/repo/src/sim/fleet.cpp" "src/sim/CMakeFiles/powervar_sim.dir/fleet.cpp.o" "gcc" "src/sim/CMakeFiles/powervar_sim.dir/fleet.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/powervar_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/powervar_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/thermal.cpp" "src/sim/CMakeFiles/powervar_sim.dir/thermal.cpp.o" "gcc" "src/sim/CMakeFiles/powervar_sim.dir/thermal.cpp.o.d"
  "/root/repo/src/sim/transient.cpp" "src/sim/CMakeFiles/powervar_sim.dir/transient.cpp.o" "gcc" "src/sim/CMakeFiles/powervar_sim.dir/transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/powervar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/powervar_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/powervar_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/powervar_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/powervar_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
