#pragma once
// A bounded MPMC queue with blocking backpressure.
//
// Pollers produce finished meter readings faster than the journal thread
// can fsync them; an unbounded buffer would hide that and grow without
// limit on a slow disk.  A bounded queue makes the pressure visible: push
// blocks once `capacity` readings are waiting, throttling the pollers to
// the journal's sustainable rate — the same discipline a real collector
// needs so a dying disk degrades collection speed instead of memory.

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <queue>
#include <utility>

#include "util/expects.hpp"

namespace pv {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    PV_EXPECTS(capacity >= 1, "queue capacity must be at least 1");
  }

  /// Blocks while the queue is full.  Returns false (dropping the item)
  /// when the queue was closed — producers treat that as "stop working".
  bool push(T item) {
    std::unique_lock lock(mu_);
    cv_space_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push(std::move(item));
    cv_item_.notify_one();
    return true;
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    cv_item_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop();
    cv_space_.notify_one();
    return item;
  }

  /// Wakes every blocked producer (push fails) and consumer (pop drains
  /// whatever is queued, then returns nullopt).  Idempotent.  The
  /// close-while-full contract (regression-tested): producers blocked on
  /// a full queue all return false without their item entering the
  /// queue, items already queued all survive to be popped, and no push
  /// that returned true is ever lost — every item is either popped
  /// exactly once or was rejected with push() == false.
  void close() {
    {
      std::unique_lock lock(mu_);
      closed_ = true;
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    std::unique_lock lock(mu_);
    return items_.size();
  }

 private:
  const std::size_t capacity_;
  std::queue<T> items_;
  mutable std::mutex mu_;
  std::condition_variable cv_item_;
  std::condition_variable cv_space_;
  bool closed_ = false;
};

}  // namespace pv
