#include "workload/profiles.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace pv {
namespace {

constexpr double kSetupIntensity = 0.15;
constexpr double kTeardownIntensity = 0.10;

double phase_gate(const RunPhases& p, double t, double core_value) {
  if (t < p.core_begin().value()) return kSetupIntensity;
  if (t >= p.core_end().value()) return kTeardownIntensity;
  return core_value;
}

}  // namespace

FirestarterWorkload::FirestarterWorkload(Seconds core_duration, double level,
                                         Seconds setup, Seconds teardown)
    : phases_{setup, core_duration, teardown}, level_(level) {
  PV_EXPECTS(core_duration.value() > 0.0, "core duration must be positive");
  PV_EXPECTS(level > 0.0 && level <= 1.0, "intensity level in (0,1]");
}

double FirestarterWorkload::intensity(double t) const {
  return phase_gate(phases_, t, level_);
}

MprimeWorkload::MprimeWorkload(Seconds core_duration, double level,
                               double drift_amp, Seconds setup,
                               Seconds teardown)
    : phases_{setup, core_duration, teardown},
      level_(level),
      drift_amp_(drift_amp) {
  PV_EXPECTS(core_duration.value() > 0.0, "core duration must be positive");
  PV_EXPECTS(level > 0.0 && level <= 1.0, "intensity level in (0,1]");
  PV_EXPECTS(drift_amp >= 0.0 && drift_amp < level,
             "drift amplitude must be small and non-negative");
}

double MprimeWorkload::intensity(double t) const {
  const double tc = t - phases_.core_begin().value();
  const double T = phases_.core.value();
  // Slow sweep through FFT working-set sizes: one full cycle per ~40 min,
  // at least two cycles per run.
  const double period = std::min(2400.0, T / 2.0);
  const double core =
      level_ + drift_amp_ * std::sin(2.0 * M_PI * tc / period);
  return phase_gate(phases_, t, core);
}

RodiniaCfdWorkload::RodiniaCfdWorkload(Seconds core_duration, double level,
                                       double ripple, Seconds iteration,
                                       Seconds setup, Seconds teardown)
    : phases_{setup, core_duration, teardown},
      level_(level),
      ripple_(ripple),
      iteration_s_(iteration.value()) {
  PV_EXPECTS(core_duration.value() > 0.0, "core duration must be positive");
  PV_EXPECTS(level > 0.0 && level <= 1.0, "intensity level in (0,1]");
  PV_EXPECTS(ripple >= 0.0 && ripple < level, "ripple must be small");
  PV_EXPECTS(iteration.value() > 0.0, "iteration period must be positive");
}

double RodiniaCfdWorkload::intensity(double t) const {
  const double tc = t - phases_.core_begin().value();
  // Sawtooth: ramp through the compute burst, drop at the exchange.
  const double frac = tc / iteration_s_ - std::floor(tc / iteration_s_);
  const double core = level_ + ripple_ * (frac - 0.5);
  return phase_gate(phases_, t, core);
}

}  // namespace pv
