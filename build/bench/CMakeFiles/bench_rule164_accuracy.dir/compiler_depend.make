# Empty compiler generated dependencies file for bench_rule164_accuracy.
# This may be replaced when dependencies are built.
