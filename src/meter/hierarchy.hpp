#pragma once
// The measured-system model: which subsystems exist, where power can be
// tapped, and what a measurement at each tap sees.
//
// Methodology aspects 2-4 are about structure, not statistics:
//   * aspect 2 (machine fraction): measure >= 1/64 (L1) or 1/8 (L2) of the
//     compute-node subsystem, or all of it (L3);
//   * aspect 3 (subsystems): L1 may ignore network/storage/infrastructure,
//     L2 may estimate them, L3 must measure them;
//   * aspect 4 (point of measurement): upstream of power conversion, or
//     corrected for conversion losses.
// SystemPowerModel is the ground truth those rules are evaluated against:
// per-node DC power functions behind per-node PSUs, grouped into racks with
// PDU distribution losses, plus AC-side auxiliary subsystems.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "meter/meter.hpp"
#include "meter/psu.hpp"
#include "util/units.hpp"

namespace pv {

/// Subsystem classes the methodology distinguishes.
enum class Subsystem {
  kComputeNode,
  kNetwork,
  kStorage,
  kInfrastructure,  ///< login/management nodes and similar
  kCooling,         ///< in-machine cooling (fans external to nodes, pumps)
};

[[nodiscard]] const char* to_string(Subsystem s);

/// Where a measurement is taken.
enum class MeasurementPoint {
  kNodeDc,      ///< downstream of the node PSU (DC rail instrumentation)
  kNodeAc,      ///< upstream of the node PSU (per-node AC metering)
  kRackPdu,     ///< rack PDU output (sum of the rack's node AC + PDU loss)
  kFacilityFeed,  ///< whole-system feed incl. auxiliary subsystems
};

[[nodiscard]] const char* to_string(MeasurementPoint p);

/// Ground-truth electrical model of one system under benchmark.
class SystemPowerModel {
 public:
  SystemPowerModel(std::string name, std::size_t nodes_per_rack);

  /// Registers one compute node (in rack order: node i lives in rack
  /// i / nodes_per_rack).  `dc_power_w(t)` is the node's DC draw.
  void add_node(PowerFunction dc_power_w, PsuModel psu);

  /// Registers an AC-side auxiliary subsystem (switches, storage, ...).
  void add_subsystem(Subsystem kind, std::string label,
                     PowerFunction ac_power_w);

  /// Fractional PDU distribution loss applied to each rack's AC total
  /// (default 2%).
  void set_pdu_loss_fraction(double f);
  /// The loss fraction in effect — the factor hierarchical cross-validation
  /// needs to compare a rack reading against the sum of its node taps.
  [[nodiscard]] double pdu_loss_fraction() const { return pdu_loss_fraction_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t rack_count() const;
  [[nodiscard]] std::size_t nodes_per_rack() const { return nodes_per_rack_; }

  // --- Ground-truth power at each tap point -------------------------------

  [[nodiscard]] double node_dc_w(std::size_t node, double t) const;
  [[nodiscard]] double node_ac_w(std::size_t node, double t) const;
  [[nodiscard]] double rack_pdu_w(std::size_t rack, double t) const;
  /// All compute racks (including PDU losses), excluding auxiliaries.
  [[nodiscard]] double compute_ac_w(double t) const;
  /// Sum of all registered auxiliary subsystems.
  [[nodiscard]] double auxiliary_ac_w(double t) const;
  [[nodiscard]] double auxiliary_ac_w(Subsystem kind, double t) const;
  /// Facility feed: compute + auxiliaries.
  [[nodiscard]] double facility_w(double t) const;

  /// Convenience PowerFunction views for metering.
  [[nodiscard]] PowerFunction node_ac_function(std::size_t node) const;
  [[nodiscard]] PowerFunction facility_function() const;

  /// Per-node PSU access (e.g. for conversion-loss correction).
  [[nodiscard]] const PsuModel& node_psu(std::size_t node) const;

 private:
  struct Node {
    PowerFunction dc_power;
    PsuModel psu;
  };
  struct Auxiliary {
    Subsystem kind;
    std::string label;
    PowerFunction ac_power;
  };

  std::string name_;
  std::size_t nodes_per_rack_;
  double pdu_loss_fraction_ = 0.02;
  std::vector<Node> nodes_;
  std::vector<Auxiliary> auxiliaries_;
};

}  // namespace pv
