#pragma once
// Meter fault models: what happens between a working sensor and the trace
// a campaign actually receives.
//
// Submitted power numbers assume every meter worked for the whole run;
// real site logs (the Cray PMDB validation work, "Part-time Power
// Measurements") are full of dropouts, stuck sensors, spikes and dead PDU
// channels.  This module corrupts a clean MeterModel trace with
// composable, seeded fault processes so campaigns can be tested — and
// hardened — against realistic data-quality failures.
//
// Fault taxonomy:
//   * dropout        — per-sample i.i.d. loss (lossy collection path);
//   * burst outages  — Poisson-arriving outages of exponential length
//                      (network partitions, logger restarts);
//   * stuck-at       — the sensor freezes at its last reading for a
//                      while; readings keep arriving but carry no signal;
//   * spikes         — transient glitches multiplying a reading;
//   * clipping       — saturation at the converter's full-scale value;
//   * death          — the meter dies at a random time and never returns.
//
// Byzantine taxonomy — readings that *lie* instead of going missing
// (the error class the Cray PMDB facility-vs-in-band validation and
// "Part-time Power Measurements" document in real site logs):
//   * gain drift     — slow multiplicative calibration creep over the run;
//   * step recal     — a one-shot recalibration offset at a random time;
//   * unit error     — a W-vs-kW mixup scaling every reading x1000/÷1000;
//   * clock skew     — readings timestamped with a constant clock offset,
//                      plus optional per-sample timestamp jitter;
//   * reorder/dup    — adjacent samples swapped, or a reading delivered
//                      under the previous sample's timestamp.
// None of these invalidate samples: the trace arrives fully "valid" and
// plausible-looking.  Catching them is the job of core/reconcile's
// hierarchical cross-validation, not of any per-trace filter.
//
// All randomness flows through Rng streams keyed by the meter identity,
// so faulted campaigns are bit-reproducible at any thread count.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "stats/rng.hpp"
#include "trace/gaps.hpp"
#include "trace/time_series.hpp"

namespace pv {

/// Per-meter fault process parameters.  Default-constructed == fault-free.
struct FaultSpec {
  double dropout_prob = 0.0;        ///< per-sample i.i.d. loss probability
  double burst_rate_per_hour = 0.0; ///< expected burst outages per hour
  double burst_mean_s = 30.0;       ///< mean outage length (exponential)
  double stuck_prob = 0.0;          ///< P(meter freezes once during run)
  double stuck_mean_s = 120.0;      ///< mean stuck-episode length
  double spike_prob = 0.0;          ///< per-sample transient probability
  double spike_max_gain = 4.0;      ///< spikes multiply by U(1.5, this)
  double clip_max_w =
      std::numeric_limits<double>::infinity();  ///< saturation ceiling
  double death_prob = 0.0;          ///< P(meter dies at a U(0,1) run point)

  // --- byzantine fault processes: readings that lie ----------------------
  double drift_prob = 0.0;          ///< P(slow multiplicative gain creep)
  double drift_max_per_hour = 0.05; ///< |creep rate| bound; sign is random
  double recal_prob = 0.0;          ///< P(step recalibration mid-run)
  double recal_max_frac = 0.05;     ///< step gain drawn 1 + U(-max, max)
  double unit_error_prob = 0.0;     ///< P(unit-scale mixup)
  double unit_scale = 1000.0;       ///< W-vs-kW; x scale or ÷ scale, coin flip
  double clock_skew_prob = 0.0;     ///< P(constant timestamp offset)
  double clock_skew_max_s = 60.0;   ///< |offset| bound; sign is random
  double time_jitter_sd_s = 0.0;    ///< per-sample timestamp jitter (all meters)
  double reorder_prob = 0.0;        ///< per-sample P(swap with next sample)
  double dup_ts_prob = 0.0;         ///< per-sample P(repeat previous timestamp)

  /// True when any fault process is active.
  [[nodiscard]] bool any() const;
  /// True when any byzantine (semantic) fault process is active.
  [[nodiscard]] bool any_byzantine() const;

  static FaultSpec none();
  /// Occasional dropouts and rare glitches — a healthy production site.
  static FaultSpec mild();
  /// Heavy dropout, bursts, stuck sensors and meter deaths — a site log
  /// nobody has looked at in months.
  static FaultSpec harsh();
  /// Lying meters only: drift, recalibration steps, unit mixups and clock
  /// trouble at rates a large unaudited fleet plausibly accumulates.
  static FaultSpec byzantine();
};

/// Fate drawn once per meter for the whole campaign window: whether and
/// when this device dies or sticks.  Drawing it once (rather than per
/// metered sub-window) keeps L2 spot measurements consistent — a meter
/// dead in spot 3 stays dead in spot 7.
struct MeterFate {
  bool dies = false;
  double death_time_s = std::numeric_limits<double>::infinity();
  bool sticks = false;
  double stuck_begin_s = 0.0;
  double stuck_end_s = 0.0;

  // --- byzantine fate (also one draw per meter per campaign) -------------
  double drift_rate_per_hour = 0.0;  ///< 0 = no drift
  bool recalibrates = false;
  double recal_time_s = std::numeric_limits<double>::infinity();
  double recal_gain = 1.0;
  double unit_scale = 1.0;           ///< 1 = units are right
  double clock_skew_s = 0.0;
  /// Campaign start: the reference time drift and recalibration are
  /// measured from, so L2 spot windows see one continuous story.
  double byz_origin_s = 0.0;

  [[nodiscard]] bool byzantine() const;
  /// The multiplicative calibration distortion this fate applies at time t
  /// (unit scale x accumulated drift x post-recalibration step).
  [[nodiscard]] double byzantine_gain(double t) const;
};

/// Draws a meter's fate over `campaign_window` from `fate_rng`.
[[nodiscard]] MeterFate draw_meter_fate(const FaultSpec& spec,
                                        TimeWindow campaign_window,
                                        Rng& fate_rng);

/// Tally of what fault injection did to one or more traces.
struct FaultEvents {
  std::size_t samples_total = 0;
  std::size_t samples_dropped = 0;  ///< dropout + burst outages
  std::size_t samples_dead = 0;     ///< after meter death
  std::size_t samples_stuck = 0;    ///< frozen-at-last-value readings
  std::size_t samples_spiked = 0;
  std::size_t samples_clipped = 0;
  // --- byzantine ----------------------------------------------------------
  std::size_t samples_miscalibrated = 0;  ///< drift/step/unit gain != 1
  std::size_t samples_time_shifted = 0;   ///< skew/jitter moved the source
  std::size_t samples_reordered = 0;      ///< swapped with a neighbour
  std::size_t samples_duplicated_ts = 0;  ///< repeated the previous timestamp

  void accumulate(const FaultEvents& other);
};

/// Applies `spec` (and the meter's drawn `fate`) to a clean trace.
/// Dropped/burst/dead samples come back invalid in the result's mask;
/// stuck, spiked and clipped readings come back *valid but corrupted* —
/// detecting them is the consumer's job (see flag_stuck_runs and
/// stats/robust.hpp), exactly as with a real log.
[[nodiscard]] GappyTrace inject_faults(const PowerTrace& clean,
                                       const FaultSpec& spec,
                                       const MeterFate& fate, Rng& rng,
                                       FaultEvents* events = nullptr);

/// Stuck-sensor detection: marks every run of >= `min_run` consecutive
/// identical valid readings invalid (a real power signal with meter noise
/// never repeats exactly).  Returns the number of samples invalidated.
std::size_t flag_stuck_runs(GappyTrace& trace, std::size_t min_run = 5);

/// Campaign-level fault policy: the fault process applied to every meter
/// plus the degradation knobs the campaign uses to survive it.
struct FaultPlan {
  FaultSpec spec;
  /// How surviving meters' gaps are filled before window statistics.
  RepairPolicy repair = RepairPolicy::kInterpolate;
  /// A meter whose trace coverage falls below this is declared degraded
  /// and its node excluded from extrapolation.
  double min_coverage = 0.5;
  /// Consecutive identical readings flagged as a stuck sensor.
  std::size_t stuck_run_min = 5;
  /// Hampel despiking parameters applied to repaired traces.
  std::size_t hampel_half_window = 5;
  double hampel_n_sigmas = 4.0;
  /// Meters (node ids / rack ids as used by the plan) forced dead from
  /// t=0 — deterministic dead-channel scenarios for tests and benches.
  std::vector<std::size_t> dead_meters;
  /// Meters forced byzantine from t=0, cycling gain drift -> unit-scale
  /// error -> clock skew -> recalibration step by list position —
  /// deterministic lying-meter scenarios for tests and benches.
  std::vector<std::size_t> byzantine_meters;
  double byz_drift_per_hour = 0.05;  ///< forced drift rate (sign alternates)
  double byz_unit_scale = 1000.0;    ///< forced W-vs-kW factor
  double byz_clock_skew_s = 45.0;    ///< forced clock offset (sign alternates)
  double byz_step_frac = 0.04;       ///< forced recalibration step size

  [[nodiscard]] bool enabled() const {
    return spec.any() || !dead_meters.empty() || !byzantine_meters.empty();
  }
  [[nodiscard]] bool forced_dead(std::size_t meter_id) const;
  /// Position of `meter_id` in `byzantine_meters`, or npos.
  [[nodiscard]] std::size_t forced_byzantine(std::size_t meter_id) const;
  /// Overwrites `fate`'s byzantine fields with the forced fault for list
  /// position `pos` (cycling drift/unit/clock/step; signs alternate every
  /// full cycle so errors do not all push the same way).
  void apply_forced_byzantine(std::size_t pos, TimeWindow campaign_window,
                              MeterFate& fate) const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace pv
