# Empty compiler generated dependencies file for bench_ablation_window_gaming.
# This may be replaced when dependencies are built.
