# Empty compiler generated dependencies file for bench_fig1_table2_power_over_time.
# This may be replaced when dependencies are built.
