#include "core/campaign.hpp"

#include <utility>
#include <vector>

#include "core/pipeline.hpp"
#include "util/expects.hpp"

namespace pv {

// run_campaign is now a thin conductor over the staged pipeline
// (core/pipeline): it picks the Meter stage for the plan's tap point and
// lets run_pipeline drive Provision -> Meter -> Repair -> [Reconcile] ->
// Aggregate -> Assess.  The stages carry the exact historical arithmetic
// and RNG consumption order, so results stay bit-identical.
CampaignResult run_campaign(const ClusterPowerModel& cluster,
                            const SystemPowerModel& electrical,
                            const MeasurementPlan& plan,
                            const CampaignConfig& config) {
  PV_EXPECTS(!plan.node_indices.empty(), "plan selects no nodes");
  PV_EXPECTS(electrical.node_count() == cluster.node_count(),
             "electrical model does not match the cluster");
  PV_EXPECTS(plan.window.valid(), "plan window is empty");

  CampaignContext ctx;
  ctx.cluster = &cluster;
  ctx.electrical = &electrical;
  ctx.plan = &plan;
  ctx.config = &config;

  const bool node_tap = plan.point != MeasurementPoint::kFacilityFeed &&
                        plan.point != MeasurementPoint::kRackPdu;
  std::vector<StagePtr> stages;
  stages.push_back(make_provision_stage());
  switch (plan.point) {
    case MeasurementPoint::kFacilityFeed:
      stages.push_back(make_facility_meter_stage());
      break;
    case MeasurementPoint::kRackPdu:
      stages.push_back(make_rack_meter_stage());
      break;
    default:
      stages.push_back(make_node_meter_stage());
      break;
  }
  stages.push_back(make_repair_stage());
  // Only node-tap campaigns reconcile — rack/facility taps have no
  // sibling cohort to cross-validate against.
  if (node_tap && config.reconcile.enabled) {
    stages.push_back(make_reconcile_stage());
  }
  stages.push_back(make_aggregate_stage());
  stages.push_back(make_assess_stage());

  run_pipeline(stages, ctx);
  return std::move(ctx.result);
}

void apply_dc_conversion(const MeasurementPlan& plan,
                         const SystemPowerModel& electrical, std::size_t node,
                         double& mean_w, double& energy_j) {
  if (plan.point != MeasurementPoint::kNodeDc) return;
  switch (plan.conversion) {
    case ConversionCorrection::kNone:
      break;  // uncorrected — the validator flags this
    case ConversionCorrection::kVendorNominal: {
      const NominalConversionModel vendor{plan.vendor_nominal_efficiency};
      energy_j *= vendor.ac_from_dc(Watts{mean_w}).value() / mean_w;
      mean_w = vendor.ac_from_dc(Watts{mean_w}).value();
      break;
    }
    case ConversionCorrection::kMeasuredCurve: {
      const Watts ac = electrical.node_psu(node).ac_input(Watts{mean_w});
      energy_j *= ac.value() / mean_w;
      mean_w = ac.value();
      break;
    }
  }
}

// The shared tail every node-tap campaign runs, exposed for collection
// layers (src/collect) that produced the readings themselves: just the
// Aggregate and Assess stages of the pipeline over a ready-made context.
CampaignResult finalize_node_campaign(const ClusterPowerModel& cluster,
                                      const SystemPowerModel& electrical,
                                      const MeasurementPlan& plan,
                                      const std::vector<NodeReading>& readings,
                                      DataQuality dq, bool streaming) {
  CampaignContext ctx;
  ctx.cluster = &cluster;
  ctx.electrical = &electrical;
  ctx.plan = &plan;
  ctx.streaming = streaming;
  ctx.readings = readings;
  ctx.result.data_quality = std::move(dq);

  std::vector<StagePtr> stages;
  stages.push_back(make_aggregate_stage());
  stages.push_back(make_assess_stage());
  run_pipeline(stages, ctx);
  return std::move(ctx.result);
}

}  // namespace pv
