// Unit tests for the workload models: HPL LU-progress profile, stress
// profiles, AR(1) noise.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"
#include "workload/hpl.hpp"
#include "workload/noise.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

TEST(Hpl, EfficiencyMonotoneInTrailingFraction) {
  const HplWorkload hpl(HplParams::gpu_incore(), hours(1.5));
  double prev = -1.0;
  for (double m = 0.0; m <= 1.0; m += 0.05) {
    const double e = hpl.efficiency(m);
    EXPECT_GE(e, hpl.params().e_min - 1e-12);
    EXPECT_LE(e, hpl.params().e_max + 1e-12);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(Hpl, TrailingFractionDecreasesOverTime) {
  const HplWorkload hpl(HplParams::cpu_traditional(), hours(7.0));
  EXPECT_NEAR(hpl.trailing_fraction(0.0), 1.0, 1e-3);
  EXPECT_NEAR(hpl.trailing_fraction(hours(7.0).value()), 0.0, 1e-3);
  double prev = 2.0;
  for (double f = 0.0; f <= 1.0; f += 0.1) {
    const double m = hpl.trailing_fraction(f * hours(7.0).value());
    EXPECT_LE(m, prev + 1e-12);
    prev = m;
  }
}

TEST(Hpl, CpuProfileIsFlatGpuProfileSags) {
  const HplWorkload cpu(HplParams::cpu_traditional(), hours(7.0));
  const HplWorkload gpu(HplParams::gpu_incore(), hours(1.5));
  const auto spread = [](const HplWorkload& w) {
    const RunPhases p = w.phases();
    const double first = average_over(
        [&](double t) { return w.intensity(t); }, p.core_begin().value(),
        p.core_begin().value() + 0.2 * p.core.value());
    const double last = average_over(
        [&](double t) { return w.intensity(t); },
        p.core_begin().value() + 0.8 * p.core.value(), p.core_end().value());
    return (first - last) / first;
  };
  EXPECT_LT(spread(cpu), 0.05);   // Colosse/Sequoia-like: < 5%
  EXPECT_GT(spread(gpu), 0.15);   // Piz Daint/L-CSC-like: > 15%
}

TEST(Hpl, SetupAndTeardownIntensities) {
  const HplWorkload hpl(HplParams::cpu_traditional(), hours(2.0),
                        minutes(10.0), minutes(5.0));
  const RunPhases p = hpl.phases();
  EXPECT_DOUBLE_EQ(hpl.intensity(10.0), hpl.params().setup_intensity);
  EXPECT_DOUBLE_EQ(hpl.intensity(p.core_end().value() + 1.0),
                   hpl.params().teardown_intensity);
  EXPECT_GT(hpl.intensity(p.core_begin().value() + 60.0), 0.5);
}

TEST(Hpl, ParameterValidation) {
  HplParams bad = HplParams::cpu_traditional();
  bad.e_min = 0.0;
  EXPECT_THROW(HplWorkload(bad, hours(1.0)), contract_error);
  bad = HplParams::cpu_traditional();
  bad.knee = 1.5;
  EXPECT_THROW(HplWorkload(bad, hours(1.0)), contract_error);
  EXPECT_THROW(HplWorkload(HplParams::cpu_traditional(), Seconds{0.0}),
               contract_error);
}

TEST(Hpl, OscillationDeepensTowardTheEnd) {
  HplParams p = HplParams::gpu_incore();
  p.osc_depth = 0.10;
  p.warmup_amp = 0.0;
  const HplWorkload hpl(p, hours(1.0));
  // Local ripple amplitude near the start vs near the end.
  const auto ripple = [&](double frac) {
    double lo = 1e9, hi = -1e9;
    const double t0 = frac * hours(1.0).value();
    for (double dt = 0.0; dt < 60.0; dt += 1.0) {
      const double v = hpl.intensity(t0 + dt);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    return hi - lo;
  };
  EXPECT_GT(ripple(0.9), ripple(0.05) + 0.01);
}

TEST(Firestarter, ConstantCoreIntensity) {
  const FirestarterWorkload w(hours(1.0), 0.98);
  const RunPhases p = w.phases();
  EXPECT_DOUBLE_EQ(w.intensity(p.core_begin().value() + 1.0), 0.98);
  EXPECT_DOUBLE_EQ(w.intensity(p.core_begin().value() + 1800.0), 0.98);
  EXPECT_DOUBLE_EQ(w.core_mean_intensity(), 0.98);
  EXPECT_THROW(FirestarterWorkload(hours(1.0), 0.0), contract_error);
}

TEST(Mprime, DriftsAroundLevelWithinBounds) {
  const MprimeWorkload w(hours(2.0), 0.93, 0.02);
  const RunPhases p = w.phases();
  double lo = 1e9, hi = -1e9;
  for (double t = p.core_begin().value(); t < p.core_end().value();
       t += 30.0) {
    const double v = w.intensity(t);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GE(lo, 0.91 - 1e-9);
  EXPECT_LE(hi, 0.95 + 1e-9);
  EXPECT_GT(hi - lo, 0.02);  // it does actually drift
  EXPECT_NEAR(w.core_mean_intensity(), 0.93, 0.01);
}

TEST(Rodinia, SawtoothRipplePeriod) {
  const RodiniaCfdWorkload w(minutes(30.0), 0.88, 0.08, Seconds{2.0});
  const RunPhases p = w.phases();
  const double t0 = p.core_begin().value();
  // One iteration later the intensity repeats.
  EXPECT_NEAR(w.intensity(t0 + 10.3), w.intensity(t0 + 12.3), 1e-12);
  // Within an iteration it ramps.
  EXPECT_LT(w.intensity(t0 + 10.1), w.intensity(t0 + 11.9));
  EXPECT_NEAR(w.core_mean_intensity(), 0.88, 0.01);
}

TEST(Ar1Noise, StationaryMomentsAndCorrelation) {
  Ar1Noise noise(0.05, 0.9, Rng(1));
  const auto xs = noise.series(200000);
  const Summary s = summarize(xs);
  EXPECT_NEAR(s.mean, 0.0, 0.005);
  EXPECT_NEAR(s.stddev, 0.05, 0.005);
  // Lag-1 autocorrelation ~ rho.
  double acc = 0.0;
  for (std::size_t i = 1; i < xs.size(); ++i) acc += xs[i] * xs[i - 1];
  const double rho_hat = acc / static_cast<double>(xs.size() - 1) /
                         (s.stddev * s.stddev);
  EXPECT_NEAR(rho_hat, 0.9, 0.02);
}

TEST(Ar1Noise, ZeroSigmaIsSilent) {
  Ar1Noise noise(0.0, 0.5, Rng(2));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(noise.next(), 0.0);
}

TEST(Ar1Noise, Validation) {
  EXPECT_THROW(Ar1Noise(-0.1, 0.5, Rng(3)), contract_error);
  EXPECT_THROW(Ar1Noise(0.1, 1.0, Rng(3)), contract_error);
}

TEST(AverageOver, MatchesClosedForm) {
  // Mean of t^2 over [0, 3] = 3.
  EXPECT_NEAR(average_over([](double t) { return t * t; }, 0.0, 3.0), 3.0,
              1e-6);
  EXPECT_THROW(average_over(nullptr, 0.0, 1.0), contract_error);
  EXPECT_THROW(average_over([](double) { return 1.0; }, 1.0, 1.0),
               contract_error);
}

}  // namespace
}  // namespace pv
