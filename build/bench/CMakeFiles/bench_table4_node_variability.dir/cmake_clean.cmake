file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_node_variability.dir/bench_table4_node_variability.cpp.o"
  "CMakeFiles/bench_table4_node_variability.dir/bench_table4_node_variability.cpp.o.d"
  "bench_table4_node_variability"
  "bench_table4_node_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_node_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
