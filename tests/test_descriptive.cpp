// Unit tests for descriptive statistics.

#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, CvMatchesDefinition) {
  RunningStats s;
  for (double x : {90.0, 110.0}) s.add(x);
  // mean 100, sample sd = sqrt(200) = 14.142...
  EXPECT_NEAR(s.cv(), std::sqrt(200.0) / 100.0, 1e-12);
}

TEST(RunningStats, EmptyAndSmallGuards) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.mean(), contract_error);
  EXPECT_THROW(s.min(), contract_error);
  s.add(1.0);
  EXPECT_THROW(s.variance(), contract_error);
  EXPECT_NO_THROW(s.population_variance());
}

TEST(RunningStats, MergeEqualsBulk) {
  Rng rng(3);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(10.0, 2.0);
    all.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(5.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(Summarize, MatchesRunningStats) {
  const std::vector<double> xs{581.0, 583.5, 580.2, 584.1, 582.2};
  const Summary s = summarize(xs);
  RunningStats r;
  for (double x : xs) r.add(x);
  EXPECT_DOUBLE_EQ(s.mean, r.mean());
  EXPECT_DOUBLE_EQ(s.stddev, r.stddev());
  EXPECT_DOUBLE_EQ(s.cv, r.cv());
  EXPECT_DOUBLE_EQ(s.min, r.min());
  EXPECT_DOUBLE_EQ(s.max, r.max());
  EXPECT_EQ(s.count, xs.size());
}

TEST(Summarize, SingleElement) {
  const std::vector<double> xs{42.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.cv, 0.0);
}

TEST(Quantile, Type7Interpolation) {
  const std::vector<double> xs{3.0, 1.0, 4.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Quantile, DomainChecks) {
  const std::vector<double> xs{1.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.7), 1.0);
  EXPECT_THROW(quantile(xs, 1.5), contract_error);
  EXPECT_THROW(quantile(std::vector<double>{}, 0.5), contract_error);
}

TEST(Skewness, SymmetricSampleNearZero) {
  Rng rng(17);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(skewness(xs), 0.0, 0.05);
}

TEST(Skewness, RightSkewedPositive) {
  Rng rng(19);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = std::exp(rng.normal());  // log-normal
  EXPECT_GT(skewness(xs), 1.0);
}

TEST(Kurtosis, NormalNearZeroHeavyTailsPositive) {
  Rng rng(23);
  std::vector<double> gauss(40000), heavy(40000);
  for (auto& x : gauss) x = rng.normal();
  for (auto& x : heavy) {
    // 5% contamination with a wide component -> leptokurtic.
    x = rng.bernoulli(0.05) ? rng.normal(0.0, 5.0) : rng.normal();
  }
  EXPECT_NEAR(excess_kurtosis(gauss), 0.0, 0.15);
  EXPECT_GT(excess_kurtosis(heavy), 1.0);
}

TEST(Moments, GuardsOnDegenerateInput) {
  const std::vector<double> constant{5.0, 5.0, 5.0, 5.0};
  EXPECT_THROW(skewness(constant), contract_error);
  EXPECT_THROW(excess_kurtosis(constant), contract_error);
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW(skewness(two), contract_error);
}

}  // namespace
}  // namespace pv
