// Byzantine meter defense: the reconciliation statistics in isolation
// (CUSUM, Theil-Sen, hierarchy residuals, cohort verdicts) and the full
// campaign integration (quarantine through the dead-meter path, exact
// unit-error correction, thread-count invariance, zero-fault identity).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/campaign.hpp"
#include "core/reconcile.hpp"
#include "core/report.hpp"
#include "sim/fleet.hpp"
#include "stats/rng.hpp"
#include "workload/profiles.hpp"

namespace pv {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- statistical building blocks ------------------------------------------

TEST(Cusum, QuietSeriesStaysBelowThreshold) {
  Rng rng(1);
  std::vector<double> z;
  for (int i = 0; i < 64; ++i) z.push_back(rng.normal(0.0, 1.0));
  const CusumResult r = cusum_detect(z, 0.5, 8.0);
  EXPECT_FALSE(r.crossed);
}

TEST(Cusum, MeanShiftCrossesNearTheChangepoint) {
  std::vector<double> z(40, 0.0);
  for (std::size_t i = 20; i < z.size(); ++i) z[i] = 3.0;  // +3 sigma step
  const CusumResult r = cusum_detect(z, 0.5, 8.0);
  ASSERT_TRUE(r.crossed);
  EXPECT_GE(r.first_cross, 20u);
  EXPECT_LE(r.first_cross, 25u);
  EXPECT_GT(r.max_stat, 8.0);
}

TEST(Cusum, NegativeShiftCaughtByLowerArm) {
  std::vector<double> z(40, 0.0);
  for (std::size_t i = 10; i < z.size(); ++i) z[i] = -2.0;
  EXPECT_TRUE(cusum_detect(z, 0.5, 8.0).crossed);
}

TEST(Cusum, NanSamplesAreSkipped) {
  std::vector<double> z(30, 4.0);
  z[3] = kNaN;
  z[17] = kNaN;
  EXPECT_TRUE(cusum_detect(z, 0.5, 8.0).crossed);
}

TEST(TheilSen, ExactOnALine) {
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(3.0 + 0.25 * i);
  EXPECT_NEAR(theil_sen_slope(xs), 0.25, 1e-12);
}

TEST(TheilSen, RobustToAnOutlierAndSkipsNans) {
  std::vector<double> xs;
  for (int i = 0; i < 21; ++i) xs.push_back(0.5 * i);
  xs[10] = 1e6;   // one wild sample
  xs[15] = kNaN;  // one missing window
  EXPECT_NEAR(theil_sen_slope(xs), 0.5, 0.05);
}

TEST(HierarchyResiduals, ExactWhenChildrenSumToParent) {
  const std::vector<double> parent = {1000.0, 1020.0, 980.0};
  const std::vector<std::vector<double>> children = {
      {490.0, 500.0, 480.0}, {490.0, 499.6, 480.4}};
  // children sum to 980/999.6/960.4; scale 1/0.98 corrects the 2% loss.
  const auto res = hierarchy_residuals(parent, children, 1.0 / 0.98);
  ASSERT_EQ(res.size(), 3u);
  EXPECT_NEAR(res[0], 0.0, 1e-9);
  EXPECT_NEAR(res[1], 1.0 / 0.98 * 999.6 / 1020.0 - 1.0, 1e-9);
}

TEST(HierarchyResiduals, NanParentOrChildYieldsNanWindow) {
  const std::vector<double> parent = {1000.0, kNaN, 1000.0};
  const std::vector<std::vector<double>> children = {
      {500.0, 500.0, kNaN}, {500.0, 500.0, 500.0}};
  const auto res = hierarchy_residuals(parent, children, 1.0);
  EXPECT_TRUE(std::isfinite(res[0]));
  EXPECT_TRUE(std::isnan(res[1]));
  EXPECT_TRUE(std::isnan(res[2]));
}

// --- cohort verdicts on synthetic series ----------------------------------

// An honest cohort: per-meter static level spread (fleet variability) plus
// tiny window noise.
std::vector<MeterSeries> honest_cohort(std::size_t meters,
                                       std::size_t windows,
                                       std::uint64_t seed = 3) {
  std::vector<MeterSeries> out;
  for (std::size_t i = 0; i < meters; ++i) {
    Rng rng(seed, i);
    const double level = 400.0 * (1.0 + 0.03 * rng.normal(0.0, 1.0));
    MeterSeries s;
    s.meter_id = i;
    for (std::size_t w = 0; w < windows; ++w) {
      s.means_w.push_back(level + rng.normal(0.0, 0.4));
    }
    out.push_back(std::move(s));
  }
  return out;
}

TEST(Reconcile, HonestCohortStaysTrusted) {
  const auto meters = honest_cohort(24, 16);
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.meters_checked, 24u);
  EXPECT_EQ(rep.meters_quarantined, 0u);
  EXPECT_EQ(rep.meters_corrected, 0u);
  for (const auto& d : rep.diagnoses) {
    EXPECT_EQ(d.verdict, MeterVerdict::kTrusted) << "meter " << d.meter_id;
  }
}

TEST(Reconcile, UnitErrorConvictedAndExactlyInvertible) {
  auto meters = honest_cohort(24, 16);
  for (double& x : meters[5].means_w) x *= 1000.0;  // W reported as mW
  for (double& x : meters[9].means_w) x /= 1000.0;  // W reported as kW
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.meters_corrected, 2u);
  EXPECT_EQ(rep.meters_quarantined, 0u);
  EXPECT_EQ(rep.diagnoses[5].verdict, MeterVerdict::kUnitError);
  EXPECT_DOUBLE_EQ(rep.diagnoses[5].correction_scale, 1000.0);
  EXPECT_TRUE(rep.diagnoses[5].corrected);
  EXPECT_EQ(rep.diagnoses[9].verdict, MeterVerdict::kUnitError);
  EXPECT_DOUBLE_EQ(rep.diagnoses[9].correction_scale, 0.001);
}

TEST(Reconcile, UnitErrorQuarantinedWhenCorrectionDisabled) {
  auto meters = honest_cohort(24, 16);
  for (double& x : meters[5].means_w) x *= 1000.0;
  ReconcilePolicy policy;
  policy.correct_unit_errors = false;
  const auto rep = reconcile_meters(meters, {}, policy);
  EXPECT_EQ(rep.meters_corrected, 0u);
  EXPECT_EQ(rep.meters_quarantined, 1u);
  EXPECT_TRUE(rep.diagnoses[5].quarantined);
}

TEST(Reconcile, SlowGainDriftConvictedAsDrifting) {
  auto meters = honest_cohort(24, 16);
  for (std::size_t w = 0; w < meters[7].means_w.size(); ++w) {
    // 3% creep across the run — far below the z backstop, pure CUSUM.
    meters[7].means_w[w] *= 1.0 + 0.002 * static_cast<double>(w);
  }
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.diagnoses[7].verdict, MeterVerdict::kDrifting);
  EXPECT_TRUE(rep.diagnoses[7].quarantined);
  EXPECT_GT(rep.diagnoses[7].drift_per_window, 0.0);
  EXPECT_EQ(rep.meters_quarantined, 1u);
}

TEST(Reconcile, RecalibrationStepConvictedAsMiscalibrated) {
  auto meters = honest_cohort(24, 16);
  for (std::size_t w = 8; w < meters[3].means_w.size(); ++w) {
    meters[3].means_w[w] *= 1.04;  // one-shot 4% recalibration
  }
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.diagnoses[3].verdict, MeterVerdict::kMiscalibrated);
  EXPECT_TRUE(rep.diagnoses[3].quarantined);
}

TEST(Reconcile, SubThresholdWobbleIsNotConvicted) {
  // Statistically detectable but immaterial: a 0.3% step is below the
  // practical-significance floor and must not cost a meter its coverage.
  auto meters = honest_cohort(24, 16);
  for (std::size_t w = 8; w < meters[6].means_w.size(); ++w) {
    meters[6].means_w[w] *= 1.003;
  }
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.diagnoses[6].verdict, MeterVerdict::kTrusted);
  EXPECT_EQ(rep.meters_quarantined, 0u);
}

TEST(Reconcile, GrossStaticGainCaughtByZBackstop) {
  auto meters = honest_cohort(24, 16);
  for (double& x : meters[11].means_w) x *= 1.6;  // not a power of ten
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.diagnoses[11].verdict, MeterVerdict::kMiscalibrated);
  EXPECT_NEAR(rep.diagnoses[11].gain_estimate, 1.6, 0.1);
}

TEST(Reconcile, ClockSkewDetectedOnStructuredSignal) {
  // A strongly time-varying workload: every honest meter tracks it, the
  // skewed meter reports it one window late.
  std::vector<MeterSeries> meters;
  const auto signal = [](std::size_t w) {
    return 400.0 + 80.0 * std::sin(0.7 * static_cast<double>(w));
  };
  for (std::size_t i = 0; i < 12; ++i) {
    Rng rng(17, i);
    MeterSeries s;
    s.meter_id = i;
    for (std::size_t w = 0; w < 24; ++w) {
      const std::size_t src = (i == 4 && w > 0) ? w - 1 : w;  // meter 4 lags
      s.means_w.push_back(signal(src) + rng.normal(0.0, 0.5));
    }
    meters.push_back(std::move(s));
  }
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.diagnoses[4].verdict, MeterVerdict::kClockSkewed);
  EXPECT_EQ(rep.diagnoses[4].clock_lag, 1);
  EXPECT_TRUE(rep.diagnoses[4].quarantined);
}

TEST(Reconcile, TinyCohortComesBackTrusted) {
  const auto meters = honest_cohort(2, 16);
  const auto rep = reconcile_meters(meters, {}, ReconcilePolicy{});
  EXPECT_EQ(rep.meters_quarantined, 0u);
  for (const auto& d : rep.diagnoses) {
    EXPECT_EQ(d.verdict, MeterVerdict::kTrusted);
  }
}

TEST(Reconcile, HierarchyResidualShrinksAfterCorrection) {
  auto meters = honest_cohort(16, 16);
  for (double& x : meters[2].means_w) x *= 1000.0;
  HierarchyCheck check;
  check.label = "rack 0";
  check.parent_id = 9000;
  check.child_scale = 1.0;
  for (std::size_t w = 0; w < 16; ++w) {
    double sum = 0.0;
    for (std::size_t i = 0; i < meters.size(); ++i) {
      // The parent sees the *true* child powers (meter 2's lie is its own).
      sum += meters[i].means_w[w] / (i == 2 ? 1000.0 : 1.0);
    }
    check.parent_means_w.push_back(sum);
  }
  for (const auto& m : meters) {
    check.child_ids.push_back(m.meter_id);
    check.child_means_w.push_back(m.means_w);
  }
  const auto rep = reconcile_meters(meters, {check}, ReconcilePolicy{});
  ASSERT_EQ(rep.residuals.size(), 1u);
  EXPECT_GT(rep.residuals[0].worst_before, 10.0);   // x1000 child: huge
  EXPECT_LT(rep.residuals[0].worst_after, 0.01);    // exactly undone
  EXPECT_FALSE(rep.residuals[0].parent_distrusted);
}

TEST(Reconcile, HonestChildrenIndictTheLyingParent) {
  const auto meters = honest_cohort(16, 16);
  HierarchyCheck check;
  check.label = "rack 0";
  check.parent_id = 9000;
  check.child_scale = 1.0;
  for (std::size_t w = 0; w < 16; ++w) {
    double sum = 0.0;
    for (const auto& m : meters) sum += m.means_w[w];
    check.parent_means_w.push_back(sum * 1.15);  // parent reads 15% high
  }
  for (const auto& m : meters) {
    check.child_ids.push_back(m.meter_id);
    check.child_means_w.push_back(m.means_w);
  }
  const auto rep = reconcile_meters(meters, {check}, ReconcilePolicy{});
  ASSERT_EQ(rep.residuals.size(), 1u);
  EXPECT_TRUE(rep.residuals[0].parent_distrusted);
  EXPECT_EQ(rep.parents_distrusted, 1u);
  EXPECT_EQ(rep.meters_quarantined, 0u);  // the children stay trusted
}

TEST(Reconcile, PureFunctionOfItsInputs) {
  auto meters = honest_cohort(24, 16);
  for (double& x : meters[5].means_w) x *= 1000.0;
  const auto a = reconcile_meters(meters, {}, ReconcilePolicy{});
  const auto b = reconcile_meters(meters, {}, ReconcilePolicy{});
  ASSERT_EQ(a.diagnoses.size(), b.diagnoses.size());
  for (std::size_t i = 0; i < a.diagnoses.size(); ++i) {
    EXPECT_EQ(a.diagnoses[i].verdict, b.diagnoses[i].verdict);
    EXPECT_EQ(a.diagnoses[i].robust_z, b.diagnoses[i].robust_z);
    EXPECT_EQ(a.diagnoses[i].cusum_max, b.diagnoses[i].cusum_max);
  }
}

// --- campaign integration --------------------------------------------------

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
};

Rig make_l3_rig(std::size_t n_nodes) {
  auto workload = std::make_shared<FirestarterWorkload>(
      minutes(30.0), 1.0, minutes(2.0), minutes(1.0));
  FleetVariability var = FleetVariability::typical_cpu().scaled_to(0.03);
  var.outlier_prob = 0.0;
  Rig rig;
  rig.cluster = std::make_unique<ClusterPowerModel>(
      "byz-rig", generate_node_powers(n_nodes, 400.0, var, 99), workload);
  rig.electrical = std::make_unique<SystemPowerModel>(make_system_power_model(
      *rig.cluster, 16, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{}));
  PlanInputs in;
  in.total_nodes = n_nodes;
  in.approx_node_power = watts(400.0);
  in.run = rig.cluster->phases();
  Rng rng(1);
  rig.plan = plan_measurement(MethodologySpec::get(Level::kL3, Revision::kV2015),
                              in, rng);
  return rig;
}

CampaignConfig byz_config() {
  CampaignConfig c;
  c.seed = 5;
  c.meter_interval_override = Seconds{10.0};
  // Forced cycle by list position: 0 drift, 8 unit, 24 clock, 40 step.
  c.faults.byzantine_meters = {0, 8, 24, 40};
  c.reconcile.enabled = true;
  return c;
}

TEST(CampaignReconcile, ConvictsTheForcedLiarsAndRestoresTheSubmission) {
  const Rig rig = make_l3_rig(48);
  const CampaignConfig cfg = byz_config();

  CampaignConfig undefended = cfg;
  undefended.reconcile.enabled = false;
  const auto before =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, undefended);
  const auto after =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);

  ASSERT_TRUE(after.data_quality.reconcile_ran);
  const ReconcileReport& ir = after.data_quality.integrity;
  EXPECT_EQ(ir.meters_checked, 48u);

  const auto find = [&](std::size_t id) -> const MeterDiagnosis& {
    for (const auto& d : ir.diagnoses) {
      if (d.meter_id == id) return d;
    }
    ADD_FAILURE() << "no diagnosis for meter " << id;
    static MeterDiagnosis dummy;
    return dummy;
  };
  // Meter 0 drifts, meter 40 takes a recalibration step: quarantined.
  EXPECT_TRUE(find(0).quarantined);
  EXPECT_NE(find(0).verdict, MeterVerdict::kTrusted);
  EXPECT_TRUE(find(40).quarantined);
  // Meter 8 reports milliwatts: corrected exactly.
  EXPECT_EQ(find(8).verdict, MeterVerdict::kUnitError);
  EXPECT_TRUE(find(8).corrected);
  EXPECT_DOUBLE_EQ(find(8).correction_scale, 1000.0);
  // Meter 24's clock skew is invisible — and harmless — on the constant
  // FIRESTARTER profile: it must NOT be convicted (false-positive safety).
  EXPECT_EQ(find(24).verdict, MeterVerdict::kTrusted);

  // Quarantine flows through the dead-meter degradation path.
  const auto& lost = after.data_quality.lost_meter_ids;
  EXPECT_NE(std::find(lost.begin(), lost.end(), 0u), lost.end());
  EXPECT_NE(std::find(lost.begin(), lost.end(), 40u), lost.end());
  EXPECT_TRUE(after.data_quality.ci_widened);

  // The defense must beat the undefended pipeline by a wide margin.
  EXPECT_GT(before.relative_error, 0.10);
  EXPECT_LT(after.relative_error, 0.03);
}

TEST(CampaignReconcile, DiagnosesAreSortedByMeterId) {
  const Rig rig = make_l3_rig(48);
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, byz_config());
  const auto& ds = result.data_quality.integrity.diagnoses;
  for (std::size_t i = 1; i < ds.size(); ++i) {
    EXPECT_LT(ds[i - 1].meter_id, ds[i].meter_id);
  }
}

TEST(CampaignReconcile, VerdictsAreThreadCountInvariant) {
  const Rig rig = make_l3_rig(48);
  CampaignConfig serial = byz_config();
  serial.reconcile.threads = 1;
  CampaignConfig fanned = byz_config();
  fanned.reconcile.threads = 4;
  const auto a = run_campaign(*rig.cluster, *rig.electrical, rig.plan, serial);
  const auto b = run_campaign(*rig.cluster, *rig.electrical, rig.plan, fanned);
  EXPECT_EQ(a.submitted_power.value(), b.submitted_power.value());
  EXPECT_EQ(a.submitted_energy.value(), b.submitted_energy.value());
  const auto& da = a.data_quality.integrity.diagnoses;
  const auto& db = b.data_quality.integrity.diagnoses;
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].meter_id, db[i].meter_id);
    EXPECT_EQ(da[i].verdict, db[i].verdict);
    EXPECT_EQ(da[i].robust_z, db[i].robust_z);
    EXPECT_EQ(da[i].cusum_max, db[i].cusum_max);
  }
}

TEST(CampaignReconcile, EnablingReconcileOnACleanCampaignChangesNothing) {
  const Rig rig = make_l3_rig(48);
  CampaignConfig plain;
  plain.seed = 5;
  plain.meter_interval_override = Seconds{10.0};
  CampaignConfig watched = plain;
  watched.reconcile.enabled = true;
  const auto a = run_campaign(*rig.cluster, *rig.electrical, rig.plan, plain);
  const auto b = run_campaign(*rig.cluster, *rig.electrical, rig.plan, watched);
  // Reconciliation reads the already-produced traces; a clean campaign's
  // submission must be bit-identical with the watchdog on.
  EXPECT_EQ(a.submitted_power.value(), b.submitted_power.value());
  EXPECT_EQ(a.submitted_energy.value(), b.submitted_energy.value());
  EXPECT_EQ(b.data_quality.integrity.meters_quarantined, 0u);
  EXPECT_EQ(b.data_quality.integrity.meters_corrected, 0u);
  EXPECT_TRUE(b.data_quality.reconcile_ran);
  EXPECT_FALSE(a.data_quality.reconcile_ran);
}

TEST(CampaignReconcile, IntegrityBlockRendersVerdictsSorted) {
  const Rig rig = make_l3_rig(48);
  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, byz_config());
  const std::string report = integrity_quality_report(result.data_quality);
  EXPECT_NE(report.find("integrity (byzantine defense)"), std::string::npos);
  EXPECT_NE(report.find("unit-error"), std::string::npos);
  EXPECT_NE(report.find("corrected"), std::string::npos);
  // Meter 0 must be listed before meter 40.
  EXPECT_LT(report.find("meter 0:"), report.find("meter 40:"));
}

}  // namespace
}  // namespace pv
