// Deterministic fuzz corpus for the live-Document path: every line a
// `campaign --live` consumer might read — a partial mid-run document, the
// final document, or any mutation/truncation of either — must parse as a
// valid powervar-assessment-v1 line or be refused loudly with
// AssessmentParseError.  Never a crash, never a torn write accepted.
// The corpus is generated from a real live run (no corpus files) and the
// mutation schedule is seeded, so failures reproduce exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/plan.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

namespace pv {
namespace {

// Tiny deterministic generator for the mutation schedule (matches the
// trace-io fuzzer's convention: self-contained, library-independent).
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return s >> 33;
  }
  std::size_t below(std::size_t n) { return n == 0 ? 0 : next() % n; }
};

// One real live campaign's emitted lines: every partial plus the final
// document — the honest corpus the mutations start from.
std::vector<std::string> live_corpus() {
  ScenarioSpec spec;
  spec.name = "fuzz-live";
  spec.nodes = 32;
  spec.cv = 0.03;
  spec.fleet_seed = 41 ^ 0x99;
  Scenario built = build_scenario(spec);
  const MeasurementPlan plan =
      built.plan(MethodologySpec::get(Level::kL2, Revision::kV2015), 41);

  std::vector<std::string> lines;
  CampaignConfig cfg;
  cfg.seed = 41;
  cfg.meter_interval_override = Seconds{10.0};
  cfg.live.enabled = true;
  cfg.live.chunk_samples = 37;
  cfg.live.emit_every_s = 300.0;
  cfg.live_sink = [&lines](const std::string& line) {
    lines.push_back(line);
  };
  const auto result =
      run_campaign(*built.cluster, *built.electrical, plan, cfg);
  lines.push_back(render_json(assessment_document(plan, result)));
  return lines;
}

// Either a valid document or a loud AssessmentParseError (which includes
// wrapped JsonParseError) — anything else fails the test.
void expect_parse_or_refuse(const std::string& line) {
  try {
    const Json doc = parse_assessment_line(line);
    // Accepted lines really carry the schema and a numeric assessment.
    const Json* schema = doc.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->string_value(), "powervar-assessment-v1");
    const Json* assessment = doc.find("assessment");
    ASSERT_NE(assessment, nullptr);
    EXPECT_TRUE(assessment->find("submitted_power_w")->is_number());
  } catch (const AssessmentParseError&) {
    // loud refusal is the other acceptable outcome
  }
}

TEST(FuzzLiveDoc, HonestCorpusAllParses) {
  const std::vector<std::string> corpus = live_corpus();
  ASSERT_GE(corpus.size(), 3u);  // at least two partials + the final
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    SCOPED_TRACE("line " + std::to_string(i));
    EXPECT_NO_THROW((void)parse_assessment_line(corpus[i]));
  }
  // Partials carry the live block; the final must not.
  EXPECT_NE(parse_assessment_line(corpus.front()).find("live"), nullptr);
  EXPECT_EQ(parse_assessment_line(corpus.back()).find("live"), nullptr);
}

TEST(FuzzLiveDoc, TruncationAtEveryByteIsRefused) {
  // A torn write is a strict prefix of a valid line.  Every proper prefix
  // must be refused — a complete line ends in '\n', so no prefix is also
  // a valid document.
  const std::vector<std::string> corpus = live_corpus();
  for (const std::string& line : {corpus.front(), corpus.back()}) {
    for (std::size_t cut = 0; cut < line.size(); ++cut) {
      EXPECT_THROW((void)parse_assessment_line(line.substr(0, cut)),
                   AssessmentParseError)
          << "accepted torn prefix of " << cut << " bytes";
    }
    EXPECT_NO_THROW((void)parse_assessment_line(line));
  }
}

TEST(FuzzLiveDoc, HandCraftedHostileLines) {
  const std::vector<std::string> must_refuse = {
      "",                                     // empty
      "\n",                                   // newline only
      "{}\n",                                 // no schema
      "null\n",                               // not an object
      "[1,2,3]\n",                            // array, not an object
      "{\"schema\":\"powervar-assessment-v1\"}\n",  // no assessment block
      "{\"schema\":\"powervar-drain-v1\",\"assessment\":{}}\n",  // wrong tag
      "{\"schema\":\"powervar-assessment-v1\",\"assessment\":[]}\n",
      "{\"schema\":\"powervar-assessment-v1\",\"assessment\":{"
      "\"nodes_measured\":\"ten\"}}\n",       // non-numeric field
      "{\"schema\":\"powervar-assessment-v1\",\"assessment\":{}}\n{}\n",
      // two lines in one read: an embedded newline is a framing error
      "{\"schema\":\"powervar-assessment-v1\",\"asse",  // torn mid-key
  };
  for (const std::string& line : must_refuse) {
    EXPECT_THROW((void)parse_assessment_line(line), AssessmentParseError)
        << "accepted: '" << line.substr(0, 60) << "'";
  }
  // A valid partial whose live block was half-overwritten must refuse,
  // not return a document with a mangled live section.
  std::string doctored = live_corpus().front();
  const std::size_t pos = doctored.find("\"live\"");
  ASSERT_NE(pos, std::string::npos);
  doctored.replace(pos, 6, "\"live\":0,\"x\"");
  EXPECT_THROW((void)parse_assessment_line(doctored), AssessmentParseError);
}

TEST(FuzzLiveDoc, DeterministicMutationSchedule) {
  const std::vector<std::string> corpus = live_corpus();
  static constexpr char kAlphabet[] = "0123456789.,-+eE\"{}[]:\n\0 nifNIF";
  Lcg rng{0x11FEC0DEu};
  for (int iter = 0; iter < 3000; ++iter) {
    std::string s = corpus[rng.below(corpus.size())];
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      switch (rng.below(4)) {
        case 0:  // overwrite a byte
          s[rng.below(s.size())] =
              kAlphabet[rng.below(sizeof kAlphabet - 1)];
          break;
        case 1:  // delete a byte
          s.erase(rng.below(s.size()), 1);
          break;
        case 2:  // insert a byte
          s.insert(rng.below(s.size() + 1), 1,
                   kAlphabet[rng.below(sizeof kAlphabet - 1)]);
          break;
        default:  // splice a random chunk over another position
          if (s.size() > 8) {
            const std::size_t from = rng.below(s.size() - 4);
            const std::size_t len = 1 + rng.below(4);
            s.insert(rng.below(s.size()), s.substr(from, len));
          }
          break;
      }
    }
    expect_parse_or_refuse(s);
  }
}

}  // namespace
}  // namespace pv
