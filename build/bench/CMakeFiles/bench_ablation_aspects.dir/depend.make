# Empty dependencies file for bench_ablation_aspects.
# This may be replaced when dependencies are built.
