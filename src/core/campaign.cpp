#include "core/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"
#include "workload/workload.hpp"

namespace pv {
namespace {

// Average of f over [a, b] via midpoint panels — used for ground truth.
double mean_over_window(const std::function<double(double)>& f, double a,
                        double b) {
  return average_over(f, a, b, 2048);
}

}  // namespace

Watts true_scope_power(const ClusterPowerModel& cluster,
                       const SystemPowerModel& electrical,
                       const MethodologySpec& spec) {
  const TimeWindow core = cluster.phases().core_window();
  const double compute = mean_over_window(
      [&](double t) { return electrical.compute_ac_w(t); },
      core.begin.value(), core.end.value());
  if (spec.subsystems == SubsystemRule::kComputeOnly) return Watts{compute};
  const double aux = mean_over_window(
      [&](double t) { return electrical.auxiliary_ac_w(t); },
      core.begin.value(), core.end.value());
  return Watts{compute + aux};
}

CampaignResult run_campaign(const ClusterPowerModel& cluster,
                            const SystemPowerModel& electrical,
                            const MeasurementPlan& plan,
                            const CampaignConfig& config) {
  PV_EXPECTS(!plan.node_indices.empty(), "plan selects no nodes");
  PV_EXPECTS(electrical.node_count() == cluster.node_count(),
             "electrical model does not match the cluster");
  PV_EXPECTS(plan.window.valid(), "plan window is empty");

  const Seconds interval = config.meter_interval_override.value() > 0.0
                               ? config.meter_interval_override
                               : plan.meter_interval;

  CampaignResult result;
  result.system_name = cluster.name();
  result.nodes_measured = plan.node_count();
  result.window_duration = plan.window.duration();

  // The time windows this plan actually meters (aspect 1): either the
  // whole window, or Level 2's ten equally spaced spot averages.
  std::vector<TimeWindow> metered_windows;
  if (plan.timing == TimingStrategy::kContinuous) {
    metered_windows.push_back(plan.window);
  } else {
    const double span = plan.window.duration().value();
    const double spot =
        std::max(plan.spot_duration.value(), interval.value());
    PV_EXPECTS(spot * 10.0 <= span + 1e-9,
               "ten spot averages do not fit in the plan window");
    for (int k = 0; k < 10; ++k) {
      const double center =
          plan.window.begin.value() + (k + 0.5) * span / 10.0;
      metered_windows.push_back(
          {Seconds{center - 0.5 * spot}, Seconds{center + 0.5 * spot}});
    }
  }

  // Facility-feed tap: one meter on the whole feed — the realistic Level 3
  // instrumentation.  No extrapolation happens at all; the only error
  // sources are the meter itself and any scope mismatch.
  if (plan.point == MeasurementPoint::kFacilityFeed) {
    Rng calibration(config.seed ^ 0x5CA1AB1EULL, 9'999'999);
    Rng noise(config.seed ^ 0xBADCAB1EULL, 9'999'999);
    const MeterModel meter(config.meter_accuracy, plan.meter_mode, interval,
                           calibration);
    double mean_acc = 0.0;
    double energy_acc = 0.0;
    for (const TimeWindow& w : metered_windows) {
      const PowerTrace trace =
          meter.measure(electrical.facility_function(), w.begin, w.end, noise);
      mean_acc += trace.mean_power().value();
      energy_acc += trace.energy().value();
    }
    const double mean =
        mean_acc / static_cast<double>(metered_windows.size());
    if (plan.timing != TimingStrategy::kContinuous) {
      energy_acc = mean * plan.window.duration().value();
    }
    result.nodes_measured = cluster.node_count();
    result.submitted_energy = Joules{energy_acc};
    // The facility feed includes every auxiliary; for compute-only scopes
    // the measured aux must be deducted (it is measured, not estimated).
    double submitted = mean;
    if (plan.spec.subsystems == SubsystemRule::kComputeOnly) {
      const double t_mid =
          plan.window.begin.value() + 0.5 * plan.window.duration().value();
      submitted -= electrical.auxiliary_ac_w(t_mid);
    }
    result.submitted_power = Watts{submitted};
    result.true_power = true_scope_power(cluster, electrical, plan.spec);
    result.relative_error =
        std::fabs(result.submitted_power.value() - result.true_power.value()) /
        result.true_power.value();
    return result;
  }

  // Rack-PDU tap: one meter per rack containing a selected node.  The
  // rack reading (which *includes* PDU distribution loss, unlike node
  // taps) is attributed evenly to the rack's nodes — the standard site
  // practice when only PDU instrumentation exists.
  if (plan.point == MeasurementPoint::kRackPdu) {
    std::vector<std::size_t> racks;
    for (std::size_t node : plan.node_indices) {
      PV_EXPECTS(node < cluster.node_count(), "plan references missing node");
      racks.push_back(node / electrical.nodes_per_rack());
    }
    std::sort(racks.begin(), racks.end());
    racks.erase(std::unique(racks.begin(), racks.end()), racks.end());

    double energy_acc = 0.0;
    for (std::size_t rack : racks) {
      Rng calibration(config.seed ^ 0x5CA1AB1EULL, 1'000'000 + rack);
      Rng noise(config.seed ^ 0xBADCAB1EULL, 1'000'000 + rack);
      const MeterModel meter(config.meter_accuracy, plan.meter_mode, interval,
                             calibration);
      const std::size_t first = rack * electrical.nodes_per_rack();
      const std::size_t nodes_in_rack =
          std::min(electrical.nodes_per_rack(),
                   electrical.node_count() - first);
      double mean_acc = 0.0;
      double rack_energy = 0.0;
      for (const TimeWindow& w : metered_windows) {
        const PowerTrace trace = meter.measure(
            [&electrical, rack](double t) {
              return electrical.rack_pdu_w(rack, t);
            },
            w.begin, w.end, noise);
        mean_acc += trace.mean_power().value();
        rack_energy += trace.energy().value();
      }
      const double rack_mean =
          mean_acc / static_cast<double>(metered_windows.size());
      if (plan.timing != TimingStrategy::kContinuous) {
        rack_energy = rack_mean * plan.window.duration().value();
      }
      const double per_node =
          rack_mean / static_cast<double>(nodes_in_rack);
      for (std::size_t i = 0; i < nodes_in_rack; ++i) {
        result.node_mean_powers_w.push_back(per_node);
      }
      energy_acc += rack_energy;
    }
    result.nodes_measured = result.node_mean_powers_w.size();
    result.submitted_energy = Joules{energy_acc};

    const Summary rack_nodes = summarize(result.node_mean_powers_w);
    double rack_submitted =
        rack_nodes.mean * static_cast<double>(cluster.node_count());
    if (plan.spec.subsystems != SubsystemRule::kComputeOnly) {
      const double t_mid =
          plan.window.begin.value() + 0.5 * plan.window.duration().value();
      rack_submitted += electrical.auxiliary_ac_w(t_mid);
    }
    result.submitted_power = Watts{rack_submitted};
    if (result.node_mean_powers_w.size() >= 2 && rack_nodes.stddev > 0.0) {
      result.node_mean_ci =
          t_confidence_interval(result.node_mean_powers_w, 0.05);
      result.relative_halfwidth =
          0.5 * result.node_mean_ci.width() / rack_nodes.mean;
    }
    result.true_power = true_scope_power(cluster, electrical, plan.spec);
    result.relative_error =
        std::fabs(result.submitted_power.value() - result.true_power.value()) /
        result.true_power.value();
    return result;
  }

  // Meter every selected node.  Each node gets its own meter device whose
  // calibration errors are drawn from a stream keyed by the node id, and a
  // separate per-sample noise stream.
  double energy_j = 0.0;
  result.node_mean_powers_w.reserve(plan.node_count());
  for (std::size_t node : plan.node_indices) {
    PV_EXPECTS(node < cluster.node_count(), "plan references missing node");
    Rng calibration(config.seed ^ 0x5CA1AB1EULL, node);
    Rng noise(config.seed ^ 0xBADCAB1EULL, node);
    const MeterModel meter(config.meter_accuracy, plan.meter_mode, interval,
                           calibration);
    const PowerFunction truth =
        plan.point == MeasurementPoint::kNodeDc
            ? PowerFunction([&electrical, node](double t) {
                return electrical.node_dc_w(node, t);
              })
            : electrical.node_ac_function(node);

    double mean_acc = 0.0;
    double node_energy = 0.0;
    for (const TimeWindow& w : metered_windows) {
      const PowerTrace trace = meter.measure(truth, w.begin, w.end, noise);
      mean_acc += trace.mean_power().value();
      node_energy += trace.energy().value();
    }
    double node_mean = mean_acc / static_cast<double>(metered_windows.size());
    if (plan.timing != TimingStrategy::kContinuous) {
      // Spot sampling: report energy as mean power over the whole window.
      node_energy = node_mean * plan.window.duration().value();
    }

    // Aspect 4: correct a DC-side reading back to AC.
    if (plan.point == MeasurementPoint::kNodeDc) {
      switch (plan.conversion) {
        case ConversionCorrection::kNone:
          break;  // uncorrected — the validator flags this
        case ConversionCorrection::kVendorNominal: {
          const NominalConversionModel vendor{plan.vendor_nominal_efficiency};
          node_energy *= vendor.ac_from_dc(Watts{node_mean}).value() / node_mean;
          node_mean = vendor.ac_from_dc(Watts{node_mean}).value();
          break;
        }
        case ConversionCorrection::kMeasuredCurve: {
          const Watts ac = electrical.node_psu(node).ac_input(Watts{node_mean});
          node_energy *= ac.value() / node_mean;
          node_mean = ac.value();
          break;
        }
      }
    }
    result.node_mean_powers_w.push_back(node_mean);
    energy_j += node_energy;
  }
  result.submitted_energy = Joules{energy_j};

  const Summary nodes = summarize(result.node_mean_powers_w);
  // Linear extrapolation to the full compute subsystem (§2.2).  Note the
  // per-node AC taps do not see PDU distribution losses, which the true
  // compute power includes — a structural Level 1 bias the benches expose.
  double submitted =
      nodes.mean * static_cast<double>(cluster.node_count());

  // Auxiliary subsystems per the spec's aspect 3.
  if (plan.spec.subsystems != SubsystemRule::kComputeOnly) {
    const double t_mid =
        plan.window.begin.value() + 0.5 * plan.window.duration().value();
    submitted += electrical.auxiliary_ac_w(t_mid);
  }
  result.submitted_power = Watts{submitted};

  // Accuracy assessment: Equation 1 on the metered per-node averages.
  if (plan.node_count() >= 2 && nodes.stddev > 0.0) {
    result.node_mean_ci =
        t_confidence_interval(result.node_mean_powers_w, /*alpha=*/0.05);
    result.relative_halfwidth =
        0.5 * result.node_mean_ci.width() / nodes.mean;
  }

  // Ground truth and error.
  result.true_power = true_scope_power(cluster, electrical, plan.spec);
  result.relative_error =
      std::fabs(result.submitted_power.value() - result.true_power.value()) /
      result.true_power.value();
  return result;
}

}  // namespace pv
