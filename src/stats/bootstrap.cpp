#include "stats/bootstrap.hpp"

#include "stats/descriptive.hpp"
#include "stats/sampling.hpp"
#include "util/expects.hpp"
#include "util/mathx.hpp"

namespace pv {

BootstrapResult bootstrap_ci(
    Rng& rng, std::span<const double> data,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t replicates, double alpha) {
  PV_EXPECTS(!data.empty(), "bootstrap over empty data");
  PV_EXPECTS(replicates >= 2, "bootstrap needs at least two replicates");
  PV_EXPECTS(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
  PV_EXPECTS(statistic != nullptr, "null statistic");

  BootstrapResult out;
  out.point_estimate = statistic(data);
  out.replicates.reserve(replicates);
  std::vector<double> buf(data.size());
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& v : buf) v = data[rng.uniform_index(data.size())];
    out.replicates.push_back(statistic(buf));
  }
  out.ci.lo = quantile(out.replicates, alpha / 2.0);
  out.ci.hi = quantile(out.replicates, 1.0 - alpha / 2.0);
  return out;
}

BootstrapResult bootstrap_mean_ci(Rng& rng, std::span<const double> data,
                                  std::size_t replicates, double alpha) {
  return bootstrap_ci(
      rng, data, [](std::span<const double> xs) { return mean_of(xs); },
      replicates, alpha);
}

}  // namespace pv
