// Differential harness for the SoA fleet engine.
//
// The headline contract: a campaign run through the fused fleet kernels
// (CampaignConfig::fleet_soa, the default) must produce a final
// assessment byte-identical to the per-node scalar path (fleet_soa off)
// — memcmp on every reported double and verdict, string equality on the
// rendered JSON — across seeds x L1/L2/L3 x thread counts x {clean,
// harsh faults + dead + byzantine + reconcile, clean reconcile, live}.
// Alongside the differential: the SoA gather/scatter round-trips are
// bit-exact, dead-lane masking matches the per-node dead-meter path,
// the sharded fleet provision is thread-count invariant (the FleetSoA
// suite, run under TSan), and stats merge_all reduces shards exactly
// left-to-right.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/plan.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "sim/fleet_state.hpp"
#include "stats/fused.hpp"
#include "util/parallel.hpp"

namespace pv {
namespace {

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
};

Rig make_rig(std::size_t nodes, Level level, std::uint64_t seed) {
  ScenarioSpec spec;
  spec.name = "fleet-rig";
  spec.nodes = nodes;
  spec.cv = 0.03;
  spec.fleet_seed = seed ^ 0x99;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.plan = built.plan(MethodologySpec::get(level, Revision::kV2015), seed);
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  return rig;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// Byte-compares everything a campaign reports — per-node means, CI,
// energy, truth, data-quality tallies and reconcile verdicts — then the
// rendered JSON document as a whole.
void expect_identical(const MeasurementPlan& plan, const CampaignResult& a,
                      const CampaignResult& b, const std::string& what) {
  SCOPED_TRACE(what);
  EXPECT_TRUE(bits_equal(a.submitted_power.value(), b.submitted_power.value()));
  EXPECT_TRUE(
      bits_equal(a.submitted_energy.value(), b.submitted_energy.value()));
  EXPECT_EQ(a.nodes_measured, b.nodes_measured);
  ASSERT_EQ(a.node_mean_powers_w.size(), b.node_mean_powers_w.size());
  for (std::size_t i = 0; i < a.node_mean_powers_w.size(); ++i) {
    EXPECT_TRUE(bits_equal(a.node_mean_powers_w[i], b.node_mean_powers_w[i]))
        << "node mean " << i;
  }
  EXPECT_TRUE(bits_equal(a.node_mean_ci.lo, b.node_mean_ci.lo));
  EXPECT_TRUE(bits_equal(a.node_mean_ci.hi, b.node_mean_ci.hi));
  EXPECT_TRUE(bits_equal(a.relative_halfwidth, b.relative_halfwidth));
  EXPECT_TRUE(bits_equal(a.true_power.value(), b.true_power.value()));
  EXPECT_TRUE(bits_equal(a.relative_error, b.relative_error));
  const DataQuality& qa = a.data_quality;
  const DataQuality& qb = b.data_quality;
  EXPECT_EQ(qa.meters_lost, qb.meters_lost);
  EXPECT_EQ(qa.lost_meter_ids, qb.lost_meter_ids);
  EXPECT_EQ(qa.samples_lost, qb.samples_lost);
  EXPECT_EQ(qa.samples_repaired, qb.samples_repaired);
  EXPECT_EQ(qa.spikes_filtered, qb.spikes_filtered);
  EXPECT_EQ(qa.stuck_flagged, qb.stuck_flagged);
  EXPECT_TRUE(bits_equal(qa.sample_coverage, qb.sample_coverage));
  EXPECT_EQ(qa.reconcile_ran, qb.reconcile_ran);
  EXPECT_EQ(qa.integrity.meters_checked, qb.integrity.meters_checked);
  EXPECT_EQ(qa.integrity.meters_quarantined, qb.integrity.meters_quarantined);
  EXPECT_EQ(qa.integrity.meters_corrected, qb.integrity.meters_corrected);
  ASSERT_EQ(qa.integrity.diagnoses.size(), qb.integrity.diagnoses.size());
  for (std::size_t i = 0; i < qa.integrity.diagnoses.size(); ++i) {
    EXPECT_EQ(qa.integrity.diagnoses[i].meter_id,
              qb.integrity.diagnoses[i].meter_id);
    EXPECT_EQ(static_cast<int>(qa.integrity.diagnoses[i].verdict),
              static_cast<int>(qb.integrity.diagnoses[i].verdict));
  }
  // The whole rendered document, byte for byte.
  EXPECT_EQ(render_json(assessment_document(plan, a)),
            render_json(assessment_document(plan, b)));
}

CampaignConfig base_config(std::uint64_t seed, std::size_t threads = 1,
                           bool soa = true) {
  CampaignConfig cfg;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.fleet_soa = soa;
  cfg.meter_interval_override = Seconds{5.0};
  return cfg;
}

CampaignConfig with_harsh_faults(CampaignConfig cfg,
                                 const MeasurementPlan& plan) {
  cfg.faults.spec = FaultSpec::harsh();
  cfg.faults.dead_meters = {plan.node_indices[1]};
  cfg.faults.byzantine_meters = {plan.node_indices[0], plan.node_indices[3]};
  cfg.reconcile.enabled = true;
  return cfg;
}

// ---------------------------------------------------------------------------
// Differential: fused SoA engine vs the per-node scalar path.

class FleetEngineDifferential
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Level>> {};

TEST_P(FleetEngineDifferential, CleanFusedMatchesScalarPath) {
  const auto [seed, level] = GetParam();
  const Rig rig = make_rig(96, level, seed);
  const auto scalar = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                   base_config(seed, 1, /*soa=*/false));
  for (const std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
    const auto fused = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                    base_config(seed, threads, /*soa=*/true));
    expect_identical(rig.plan, scalar, fused,
                     "clean, threads=" + std::to_string(threads));
  }
}

TEST_P(FleetEngineDifferential, FaultedByzantineReconciledMatchesScalarPath) {
  const auto [seed, level] = GetParam();
  const Rig rig = make_rig(96, level, seed);
  const auto scalar =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                   with_harsh_faults(base_config(seed, 1, false), rig.plan));
  for (const std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
    const auto fused = run_campaign(
        *rig.cluster, *rig.electrical, rig.plan,
        with_harsh_faults(base_config(seed, threads, true), rig.plan));
    expect_identical(rig.plan, scalar, fused,
                     "faulted, threads=" + std::to_string(threads));
  }
}

TEST_P(FleetEngineDifferential, CleanReconcileFusedBucketsMatchScalarPath) {
  // Reconciliation without faults drives the fused kernels' analysis
  // buckets (the faulted runs above fall back to the per-node path).
  const auto [seed, level] = GetParam();
  const Rig rig = make_rig(96, level, seed);
  CampaignConfig ref = base_config(seed, 1, false);
  ref.reconcile.enabled = true;
  const auto scalar =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, ref);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
    CampaignConfig cfg = base_config(seed, threads, true);
    cfg.reconcile.enabled = true;
    const auto fused =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
    expect_identical(rig.plan, scalar, fused,
                     "reconcile, threads=" + std::to_string(threads));
  }
}

TEST_P(FleetEngineDifferential, LiveFusedChunkDriverMatchesScalarPath) {
  const auto [seed, level] = GetParam();
  const Rig rig = make_rig(96, level, seed);
  CampaignConfig ref = base_config(seed, 1, false);
  ref.live.enabled = true;
  ref.live.chunk_samples = 37;
  const auto scalar =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, ref);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
    CampaignConfig cfg = base_config(seed, threads, true);
    cfg.live.enabled = true;
    cfg.live.chunk_samples = 37;
    const auto fused =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
    expect_identical(rig.plan, scalar, fused,
                     "live, threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndLevels, FleetEngineDifferential,
    ::testing::Combine(::testing::Values(1u, 3u),
                       ::testing::Values(Level::kL1, Level::kL2, Level::kL3)),
    [](const ::testing::TestParamInfo<FleetEngineDifferential::ParamType>& p) {
      return "seed" + std::to_string(std::get<0>(p.param)) + "_L" +
             std::to_string(static_cast<int>(std::get<1>(p.param)));
    });

TEST(FleetEngineDifferential, DeadMeterMaskingMatchesScalarPath) {
  // Dead lanes (quarantined at provision) must drop out of the fused
  // cohort exactly as the per-node path drops dead DeviceMeters: same
  // lost-meter ids, same coverage, same submitted numbers.
  const Rig rig = make_rig(64, Level::kL1, 5);
  CampaignConfig ref = base_config(5, 1, false);
  ref.faults.dead_meters = {rig.plan.node_indices[0],
                            rig.plan.node_indices[7]};
  const auto scalar =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, ref);
  EXPECT_EQ(scalar.data_quality.meters_lost, 2u);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{5}}) {
    CampaignConfig cfg = base_config(5, threads, true);
    cfg.faults.dead_meters = ref.faults.dead_meters;
    const auto fused =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
    expect_identical(rig.plan, scalar, fused,
                     "dead, threads=" + std::to_string(threads));
  }
}

// ---------------------------------------------------------------------------
// SoA layout: gather/scatter round-trips are bit-exact.

std::vector<NodeSpec> varied_specs() {
  std::vector<NodeSpec> specs(5);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    NodeSpec& s = specs[i];
    const double f = static_cast<double>(i + 1);
    s.cpu_count = i + 1;
    s.gpu_count = i % 3;
    s.memory_w = 40.0 + 0.1 * f;
    s.misc_w = 25.0 / f;
    s.psu_rated_w = 1200.0 + f;
    s.cpu_leakage_cv = 0.04 * f;
    s.gpu_leakage_cv = 0.03 / f;
    s.gpu_vid_leakage_corr = 0.5 - 0.01 * f;
    s.gpu_dynamic_cv = 0.02 + 1e-9 * f;
    s.inlet_sd_c = 1.5 * f;
    s.memory_cv = 0.02 / f;
    s.hpl_efficiency = 0.80 + 0.007 * f;
  }
  // Signed zero and a subnormal must survive the transpose bitwise.
  specs[2].misc_w = -0.0;
  specs[3].memory_cv = 5e-324;
  return specs;
}

TEST(FleetLayout, NodeSpecRoundTripIsBitExact) {
  const std::vector<NodeSpec> original = varied_specs();
  const NodeSpecSoA soa = NodeSpecSoA::gather(original);
  ASSERT_EQ(soa.size(), original.size());
  // Scatter into defaulted specs: every mirrored column must restore.
  std::vector<NodeSpec> restored(original.size());
  soa.scatter(restored);
  for (std::size_t i = 0; i < original.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    EXPECT_EQ(restored[i].cpu_count, original[i].cpu_count);
    EXPECT_EQ(restored[i].gpu_count, original[i].gpu_count);
    EXPECT_TRUE(bits_equal(restored[i].memory_w, original[i].memory_w));
    EXPECT_TRUE(bits_equal(restored[i].misc_w, original[i].misc_w));
    EXPECT_TRUE(bits_equal(restored[i].psu_rated_w, original[i].psu_rated_w));
    EXPECT_TRUE(
        bits_equal(restored[i].cpu_leakage_cv, original[i].cpu_leakage_cv));
    EXPECT_TRUE(
        bits_equal(restored[i].gpu_leakage_cv, original[i].gpu_leakage_cv));
    EXPECT_TRUE(bits_equal(restored[i].gpu_vid_leakage_corr,
                           original[i].gpu_vid_leakage_corr));
    EXPECT_TRUE(
        bits_equal(restored[i].gpu_dynamic_cv, original[i].gpu_dynamic_cv));
    EXPECT_TRUE(bits_equal(restored[i].inlet_sd_c, original[i].inlet_sd_c));
    EXPECT_TRUE(bits_equal(restored[i].memory_cv, original[i].memory_cv));
    EXPECT_TRUE(
        bits_equal(restored[i].hpl_efficiency, original[i].hpl_efficiency));
  }
}

TEST(FleetLayout, NodeSettingsRoundTripIsBitExact) {
  std::vector<NodeSettings> original(4);
  original[0] = NodeSettings::defaults();
  original[1] = NodeSettings::tuned_lcsc();
  original[2].cpu_op = OperatingPoint{megahertz(2100.0), volts(0.9875)};
  original[2].gpu_mode = NodeSettings::GpuMode::kFixed;
  original[2].gpu_fixed_op = OperatingPoint{megahertz(700.0), volts(-0.0)};
  original[3].fan_policy = FanPolicy::pinned(0.37);

  const NodeSettingsSoA soa = NodeSettingsSoA::gather(original);
  ASSERT_EQ(soa.size(), original.size());
  std::vector<NodeSettings> restored(original.size());
  soa.scatter(restored);
  for (std::size_t i = 0; i < original.size(); ++i) {
    SCOPED_TRACE("node " + std::to_string(i));
    ASSERT_EQ(restored[i].cpu_op.has_value(), original[i].cpu_op.has_value());
    if (original[i].cpu_op.has_value()) {
      EXPECT_TRUE(bits_equal(restored[i].cpu_op->frequency.value(),
                             original[i].cpu_op->frequency.value()));
      EXPECT_TRUE(bits_equal(restored[i].cpu_op->voltage.value(),
                             original[i].cpu_op->voltage.value()));
    }
    EXPECT_EQ(restored[i].gpu_mode, original[i].gpu_mode);
    EXPECT_TRUE(bits_equal(restored[i].gpu_fixed_op.frequency.value(),
                           original[i].gpu_fixed_op.frequency.value()));
    EXPECT_TRUE(bits_equal(restored[i].gpu_fixed_op.voltage.value(),
                           original[i].gpu_fixed_op.voltage.value()));
    EXPECT_EQ(restored[i].fan_policy.mode, original[i].fan_policy.mode);
    EXPECT_TRUE(bits_equal(restored[i].fan_policy.pinned_speed,
                           original[i].fan_policy.pinned_speed));
  }
}

// ---------------------------------------------------------------------------
// FleetSoA: the sharded provision and the fused drivers under threads.
// These run in the TSan tier (run_tier1.sh matches the suite name).

void expect_same_fleet(const FleetState& a, const FleetState& b,
                       const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.samples_expected, b.samples_expected);
  EXPECT_EQ(a.dead, b.dead);
  EXPECT_TRUE(bits_equal(a.noise_sd, b.noise_sd));
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("lane " + std::to_string(i));
    EXPECT_TRUE(bits_equal(a.mean_w[i], b.mean_w[i]));
    EXPECT_TRUE(bits_equal(a.gain[i], b.gain[i]));
    EXPECT_TRUE(bits_equal(a.offset_w[i], b.offset_w[i]));
    EXPECT_TRUE(bits_equal(a.meters[i].gain(), b.meters[i].gain()));
    EXPECT_TRUE(bits_equal(a.meters[i].offset_w(), b.meters[i].offset_w()));
    EXPECT_EQ(a.curve[i], b.curve[i]);
    // The noise streams must be positioned identically: drawing from
    // copies yields the same sequence.
    Rng ra = a.noise[i];
    Rng rb = b.noise[i];
    for (int k = 0; k < 4; ++k) EXPECT_EQ(ra.next(), rb.next());
  }
}

TEST(FleetSoA, ShardedProvisionIsThreadCountInvariant) {
  const Rig rig = make_rig(64, Level::kL1, 9);
  FaultPlan faults;
  faults.dead_meters = {rig.plan.node_indices[3], rig.plan.node_indices[11]};
  const std::vector<TimeWindow> windows = {
      TimeWindow{Seconds{120.0}, Seconds{300.0}},
      TimeWindow{Seconds{300.0}, Seconds{480.0}}};
  FleetProvisionSpec spec;
  spec.accuracy = MeterAccuracy::pdu_grade();
  spec.interval = Seconds{5.0};
  spec.seed = 9;
  const FleetState serial =
      build_fleet_state(rig.plan.node_indices, spec, windows, &faults,
                        rig.cluster.get(), rig.electrical.get(), nullptr);
  // Dead lanes mirror the fault plan, in plan order.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial.dead[i] != 0, faults.forced_dead(serial.node[i]))
        << "lane " << i;
  }
  for (const unsigned threads : {2u, 8u}) {
    ThreadPool pool(threads);
    const FleetState sharded =
        build_fleet_state(rig.plan.node_indices, spec, windows, &faults,
                          rig.cluster.get(), rig.electrical.get(), &pool);
    expect_same_fleet(serial, sharded,
                      "threads=" + std::to_string(threads));
  }
}

TEST(FleetSoA, FusedBatchIsThreadCountInvariant) {
  // The fused batch stage shards lanes across the pool; any thread count
  // must report the byte-identical document (TSan races this).
  const Rig rig = make_rig(96, Level::kL1, 17);
  const auto one = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                base_config(17, 1, true));
  const auto eight = run_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                  base_config(17, 8, true));
  expect_identical(rig.plan, one, eight, "batch 1 vs 8 threads");
}

TEST(FleetSoA, FusedLiveChunkDriverIsThreadCountInvariant) {
  const Rig rig = make_rig(96, Level::kL1, 17);
  CampaignConfig a = base_config(17, 1, true);
  a.live.enabled = true;
  a.live.chunk_samples = 37;
  CampaignConfig b = base_config(17, 8, true);
  b.live.enabled = true;
  b.live.chunk_samples = 37;
  const auto one = run_campaign(*rig.cluster, *rig.electrical, rig.plan, a);
  const auto eight = run_campaign(*rig.cluster, *rig.electrical, rig.plan, b);
  expect_identical(rig.plan, one, eight, "live 1 vs 8 threads");
}

// ---------------------------------------------------------------------------
// merge_all: shard reduction is exactly left-to-right merge().

TEST(FleetMergeAll, ReducesShardsLeftToRight) {
  std::vector<FusedAccumulator> shards(4);
  Rng rng(123);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (int k = 0; k < 17; ++k) {
      shards[s].push(rng.uniform(100.0, 900.0));
    }
  }
  FusedAccumulator manual;
  for (const FusedAccumulator& s : shards) manual.merge(s);
  const FusedAccumulator merged = merge_all(shards);
  EXPECT_EQ(merged.count(), manual.count());
  EXPECT_TRUE(bits_equal(merged.sum(), manual.sum()));
  EXPECT_TRUE(bits_equal(merged.mean(), manual.mean()));
  EXPECT_TRUE(bits_equal(merged.variance(), manual.variance()));
  EXPECT_TRUE(bits_equal(merged.min(), manual.min()));
}

TEST(FleetMergeAll, EmptySpanYieldsEmptyAccumulator) {
  const FusedAccumulator merged = merge_all({});
  EXPECT_EQ(merged.count(), 0u);
}

// ---------------------------------------------------------------------------
// Scenario-scale guard rails (the typed error the CLI maps to exit 2).

TEST(ScenarioScale, GuardsRejectAbsurdSpecs) {
  ScenarioSpec spec;
  spec.nodes = 0;
  EXPECT_THROW((void)build_scenario(spec), ScenarioError);
  spec.nodes = (std::size_t{1} << 22) + 1;  // past the fleet-scale cap
  EXPECT_THROW((void)build_scenario(spec), ScenarioError);
  spec.nodes = 64;
  spec.run_minutes = 0.0;
  EXPECT_THROW((void)build_scenario(spec), ScenarioError);
  // A fleet-wide sample count past 2^53 throws before any allocation.
  spec.nodes = std::size_t{1} << 22;
  spec.run_minutes = 4e7;
  EXPECT_THROW((void)build_scenario(spec), ScenarioError);
  // Externally supplied fleet draws must match the node count.
  spec = ScenarioSpec{};
  spec.nodes = 8;
  EXPECT_THROW(
      (void)build_scenario_with_powers(spec, std::vector<double>(7, 400.0)),
      ScenarioError);
  EXPECT_NO_THROW(
      (void)build_scenario_with_powers(spec, std::vector<double>(8, 400.0)));
}

}  // namespace
}  // namespace pv
