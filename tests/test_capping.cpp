// Tests for the power provisioning/capping analysis.

#include "core/capping.hpp"

#include <gtest/gtest.h>

#include "sim/fleet.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

std::vector<double> fleet_2pct(std::size_t n, std::uint64_t seed) {
  FleetVariability var = FleetVariability::typical_cpu().scaled_to(0.02);
  var.outlier_prob = 0.0;
  return generate_node_powers(n, 400.0, var, seed);
}

TEST(Provisioning, StatisticalBoundBetweenObservedAndNameplate) {
  const auto fleet = fleet_2pct(4096, 1);
  const auto a = analyze_provisioning(fleet, /*nameplate=*/600.0);
  EXPECT_GT(a.statistical_bound_w, a.observed_peak_w * 0.999);
  EXPECT_LT(a.statistical_bound_w, a.nameplate_w);
  // ~400/600 usage: roughly a third of the budget is headroom.
  EXPECT_GT(a.headroom_frac, 0.25);
  EXPECT_LT(a.headroom_frac, 0.40);
}

TEST(Provisioning, BoundConcentratesWithFleetSize) {
  // Relative slack of the bound over the observed sum shrinks ~1/sqrt(N).
  const auto small = fleet_2pct(64, 2);
  const auto large = fleet_2pct(16384, 2);
  const auto sa = analyze_provisioning(small, 600.0);
  const auto la = analyze_provisioning(large, 600.0);
  const double slack_small =
      sa.statistical_bound_w / sa.observed_peak_w - 1.0;
  const double slack_large =
      la.statistical_bound_w / la.observed_peak_w - 1.0;
  EXPECT_GT(slack_small, 5.0 * slack_large);
}

TEST(Provisioning, RejectsOverNameplateMeasurements) {
  const std::vector<double> fleet{500.0, 700.0};
  EXPECT_THROW(analyze_provisioning(fleet, 600.0), contract_error);
  EXPECT_THROW(analyze_provisioning(fleet, 800.0, 0.6), contract_error);
  const std::vector<double> one{500.0};
  EXPECT_THROW(analyze_provisioning(one, 600.0), contract_error);
}

TEST(Capping, CapQuantileMatchesNormalModel) {
  // 1% throttle fraction: cap = mu + 2.326 sigma.
  const double cap = node_cap_for_throttle_fraction(400.0, 8.0, 0.01);
  EXPECT_NEAR(cap, 400.0 + 2.326347874 * 8.0, 1e-6);
  // Median cap throttles half the fleet.
  EXPECT_NEAR(node_cap_for_throttle_fraction(400.0, 8.0, 0.5), 400.0, 1e-9);
}

TEST(Capping, EmpiricalThrottleFractionMatches) {
  const auto fleet = fleet_2pct(20000, 3);
  const Summary s = summarize(fleet);
  const double cap = node_cap_for_throttle_fraction(s.mean, s.stddev, 0.05);
  std::size_t over = 0;
  for (double p : fleet) {
    if (p > cap) ++over;
  }
  EXPECT_NEAR(static_cast<double>(over) / static_cast<double>(fleet.size()),
              0.05, 0.01);
}

TEST(Capping, ExpectedThrottledNodes) {
  // Cap at mu: half the fleet throttles in expectation.
  EXPECT_NEAR(expected_throttled_nodes(400.0, 8.0, 400.0, 1000), 500.0, 1e-6);
  // Cap far above: nobody.
  EXPECT_NEAR(expected_throttled_nodes(400.0, 8.0, 480.0, 1000), 0.0, 1e-6);
  EXPECT_THROW(expected_throttled_nodes(400.0, 0.0, 410.0, 10),
               contract_error);
}

}  // namespace
}  // namespace pv
