file(REMOVE_RECURSE
  "libpowervar_util.a"
)
