// Headline (§1) — the total spread a pre-2015 Level 1 measurement could
// exhibit on the same system: up to ~20% from window timing plus a further
// ~10-15% from small-sample extrapolation; and what the 2015 rules reduce
// it to.  Full campaign simulation on an L-CSC-like machine.

#include <algorithm>
#include <iostream>
#include <memory>
#include <tuple>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/report.hpp"
#include "sim/catalog.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"
#include "workload/hpl.hpp"

int main() {
  using namespace pv;
  bench::banner("Headline (§1)",
                "Level 1 measurement spread: v1.2 rules vs 2015 rules");

  // An L-CSC-like machine: 160 nodes, in-core GPU HPL, cv ~2%.
  const std::size_t kNodes = 160;
  auto workload = std::make_shared<HplWorkload>(
      HplParams::gpu_incore(), hours(1.5), minutes(4.0), minutes(3.0));
  FleetVariability var = FleetVariability::typical_cpu().scaled_to(0.02);
  auto powers = generate_node_powers(kNodes, 1100.0, var, 5);
  const ClusterPowerModel cluster("L-CSC-like", std::move(powers), workload,
                                  /*static_fraction=*/0.35);
  const SystemPowerModel electrical = make_system_power_model(
      cluster, 8, PsuEfficiencyCurve::platinum(), AuxiliaryConfig{});

  PlanInputs in;
  in.total_nodes = kNodes;
  in.approx_node_power = Watts{1100.0};
  in.run = cluster.phases();

  const std::size_t reps = bench::env_size("PV_HEADLINE_REPS", 40);
  const auto spread_for = [&](Revision rev) {
    const auto spec = MethodologySpec::get(Level::kL1, rev);
    std::vector<double> submitted;
    Rng rng(17);
    for (std::size_t r = 0; r < reps; ++r) {
      // Vary everything a site legitimately could: subset draw, window
      // position (v1.2 only), meter devices.
      const double pos = static_cast<double>(r) / std::max<std::size_t>(1, reps - 1);
      const auto plan = plan_measurement(spec, in, rng,
                                         SubsetStrategy::kRandom, pos);
      CampaignConfig cfg;
      cfg.seed = 1000 + r;
      cfg.meter_interval_override = Seconds{10.0};
      const auto result = run_campaign(cluster, electrical, plan, cfg);
      submitted.push_back(result.submitted_power.value());
    }
    const auto [mn, mx] = std::minmax_element(submitted.begin(), submitted.end());
    const Summary s = summarize(submitted);
    const Watts truth = true_scope_power(
        cluster, electrical, spec);
    return std::tuple<double, double, double>{
        (*mx - *mn) / s.mean, s.cv,
        (s.mean - truth.value()) / truth.value()};
  };

  TextTable t({"rules", "min-max spread", "cv of submissions", "mean bias"});
  {
    const auto [spread, cv, bias] = spread_for(Revision::kV1_2);
    t.add_row({"Level 1, v1.2 (20% window, 1/64 nodes)", fmt_percent(spread, 1),
               fmt_percent(cv, 1), fmt_percent(bias, 1)});
  }
  {
    const auto [spread, cv, bias] = spread_for(Revision::kV2015);
    t.add_row({"Level 1, 2015 (full core, max(16,10%))", fmt_percent(spread, 1),
               fmt_percent(cv, 1), fmt_percent(bias, 1)});
  }
  std::cout << t.render();
  std::cout <<
      "\nUnder the v1.2 rules, identical hardware + honest procedures can\n"
      "report numbers ~20% apart (window placement dominates; small subsets\n"
      "add several points more).  The 2015 rules collapse the spread to the\n"
      "percent level.  The residual negative bias is structural: per-node AC\n"
      "taps do not see PDU distribution losses.\n";
  return 0;
}
