#!/usr/bin/env bash
# Guards the CLI's error contract: unknown subcommands and malformed or
# out-of-range flags must print a diagnostic on stderr and exit non-zero,
# never limp on with silently-defaulted values (the old atof behavior
# turned '--dropout abc' into '--dropout 0').
#
# Usage: check_cli_errors.sh /path/to/powervar
set -uo pipefail

powervar="${1:?usage: check_cli_errors.sh /path/to/powervar}"
failures=0

# expect_error <description> <expected-stderr-pattern> -- <args...>
expect_error() {
  local what="$1" pattern="$2"
  shift 3
  local out err rc
  out="$("$powervar" "$@" 2>/tmp/pv_cli_err.$$)"
  rc=$?
  err="$(cat /tmp/pv_cli_err.$$)"
  rm -f /tmp/pv_cli_err.$$
  if [[ "$rc" -eq 0 ]]; then
    echo "FAIL: $what: exited 0" >&2
    failures=$((failures + 1))
    return
  fi
  if ! grep -q "$pattern" <<<"$err"; then
    echo "FAIL: $what: stderr lacks '$pattern':" >&2
    printf '%s\n' "$err" >&2
    failures=$((failures + 1))
    return
  fi
  if [[ -n "$out" ]]; then
    echo "FAIL: $what: produced stdout output despite failing" >&2
    failures=$((failures + 1))
    return
  fi
  echo "ok: $what (exit $rc)"
}

expect_error "no arguments prints usage" "usage:" --
expect_error "unknown subcommand" "unknown command" -- frobnicate --x 1
expect_error "malformed number (space form)" "expects a number" \
  -- campaign --nodes 64 --dropout abc
expect_error "malformed number (equals form)" "expects a number" \
  -- campaign --nodes 64 --dropout=abc
expect_error "trailing garbage in number" "expects a number" \
  -- campaign --nodes 64 --dropout 0.1x
expect_error "rate above 1" "must be in \[0, 1\]" \
  -- campaign --nodes 64 --dropout 1.5
expect_error "negative rate" "must be in \[0, 1\]" \
  -- collect --nodes 64 --blackhole -0.2
expect_error "dangling option without value" "missing a value" \
  -- campaign --nodes 64 --dropout
expect_error "non-option argument" "expected --option" \
  -- campaign nodes 64
expect_error "missing required option" "missing required option" \
  -- sample-size --cv 0.02 --lambda 0.01
expect_error "bad fault preset" "must be none, mild or harsh" \
  -- campaign --nodes 64 --faults wild
expect_error "resume without checkpoint" "journal path" \
  -- collect --nodes 64 --resume 1
expect_error "typo'd option name" "unknown option" \
  -- collect --nodes 64 --balckhole 0.2
expect_error "option of a different subcommand" "unknown option" \
  -- collect --nodes 64 --dropout 0.1

# And the happy path must still work, including the --key=value spelling.
if ! "$powervar" accuracy --nodes=210 --cv=0.02 --n=4 >/dev/null; then
  echo "FAIL: valid --key=value invocation failed" >&2
  failures=$((failures + 1))
fi

if [[ "$failures" -ne 0 ]]; then
  echo "FAIL: $failures CLI error-contract case(s) broken" >&2
  exit 1
fi
echo "OK: CLI rejects malformed input loudly"
