// Collection-resilience bench: what does a flaky collection channel cost,
// and does the circuit breaker keep that cost bounded?
//
// The scenario from the PR contract: a campaign where 20% of the meters
// answer nothing, ever (blackholes), next to a fault-free baseline.  Time
// is virtual — the transport charges latency and timeouts to a per-meter
// clock — so "wall clock" here is the modeled makespan of the poller pool:
// max(slowest meter, total poll time / workers).  Contracts checked:
//
//   * with the breaker ON, the 20%-blackhole campaign's makespan stays
//     within 2x the fault-free campaign's;
//   * the breaker strictly beats running without it (fewer timeouts paid);
//   * the surviving meters still produce a submission near ground truth,
//     and the DataQuality block discloses retries/trips/coverage.
//
// Env overrides: PV_COLLECT_NODES (default 256 -> 25 metered), PV_COLLECT_WORKERS.

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "collect/collector.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "sim/cluster.hpp"
#include "sim/fleet.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace pv;

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
};

Rig make_rig(std::size_t n_nodes) {
  ScenarioSpec spec;
  spec.name = "collect-rig";
  spec.nodes = n_nodes;
  spec.cv = 0.03;
  spec.fleet_seed = 7;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  rig.plan = built.plan(MethodologySpec::get(Level::kL1, Revision::kV2015), 11);
  return rig;
}

struct Row {
  std::string name;
  CollectionOutcome outcome;
};

}  // namespace

int main() {
  bench::banner("collection-resilience",
                "poll-time cost of a flaky channel, with/without breakers");
  const std::size_t nodes = bench::env_size("PV_COLLECT_NODES", 256);
  const auto workers =
      static_cast<unsigned>(bench::env_size("PV_COLLECT_WORKERS", 8));
  const Rig rig = make_rig(nodes);
  std::cout << "cluster: " << nodes << " nodes, " << rig.plan.node_count()
            << " metered; " << workers << " poller workers; 1 s deadline, "
            << "3 attempts, breaker opens after 3\n";

  CollectorConfig base;
  base.campaign.meter_interval_override = Seconds{5.0};
  base.threads = workers;
  base.transport.drop_prob = 0.02;  // everyday losses even when healthy

  CollectorConfig dark = base;
  dark.transport.blackhole_fraction = 0.2;

  CollectorConfig dark_unguarded = dark;
  dark_unguarded.poller.breaker.enabled = false;

  std::vector<Row> rows;
  rows.push_back({"fault-free", collect_campaign(*rig.cluster,
                                                 *rig.electrical, rig.plan,
                                                 base)});
  rows.push_back({"20% blackhole, breaker on",
                  collect_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                   dark)});
  rows.push_back({"20% blackhole, breaker OFF",
                  collect_campaign(*rig.cluster, *rig.electrical, rig.plan,
                                   dark_unguarded)});

  const double base_makespan =
      rows[0].outcome.result.data_quality.collection.makespan_s;
  TextTable t({"scenario", "makespan", "vs clean", "timeouts", "retries",
               "trips", "lost", "coverage", "error"});
  for (const Row& row : rows) {
    const DataQuality& dq = row.outcome.result.data_quality;
    const CollectionQuality& cq = dq.collection;
    t.add_row({row.name, fmt_fixed(cq.makespan_s, 2) + " s",
               fmt_fixed(cq.makespan_s / base_makespan, 2) + "x",
               std::to_string(cq.polls_timed_out),
               std::to_string(cq.polls_retried),
               std::to_string(cq.breaker_trips),
               std::to_string(dq.meters_lost) + "/" +
                   std::to_string(dq.meters_planned),
               fmt_percent(dq.sample_coverage, 1),
               fmt_percent(row.outcome.result.relative_error, 2)});
  }
  std::cout << t.render();

  const CollectionQuality& guarded =
      rows[1].outcome.result.data_quality.collection;
  const CollectionQuality& unguarded =
      rows[2].outcome.result.data_quality.collection;
  const double guarded_ratio = guarded.makespan_s / base_makespan;

  std::cout << "\nbreaker effect: " << unguarded.polls_timed_out << " -> "
            << guarded.polls_timed_out << " timeouts paid, makespan "
            << fmt_fixed(unguarded.makespan_s, 2) << " s -> "
            << fmt_fixed(guarded.makespan_s, 2) << " s\n";
  std::cout << "data quality of the guarded degraded run:\n"
            << data_quality_report(rows[1].outcome.result.data_quality);

  bool ok = true;
  if (guarded_ratio > 2.0) {
    std::cout << "CONTRACT VIOLATED: breaker-guarded makespan is "
              << fmt_fixed(guarded_ratio, 2) << "x fault-free (limit 2x)\n";
    ok = false;
  }
  if (guarded.polls_timed_out >= unguarded.polls_timed_out) {
    std::cout << "CONTRACT VIOLATED: breaker did not reduce timeouts\n";
    ok = false;
  }
  if (rows[1].outcome.result.relative_error > 0.10) {
    std::cout << "CONTRACT VIOLATED: degraded submission strayed "
              << fmt_percent(rows[1].outcome.result.relative_error, 2)
              << " from ground truth\n";
    ok = false;
  }
  std::cout << (ok ? "\nall collection-resilience contracts hold\n"
                   : "\nsome contracts VIOLATED\n");
  return ok ? 0 : 1;
}
