// Unit tests for the CPU/GPU/fan component models.

#include "sim/components.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

TEST(CpuModel, PowerDecomposition) {
  CpuSpec spec;
  spec.static_w_ref = 20.0;
  spec.dynamic_w_ref = 80.0;
  const CpuModel cpu(spec, /*leakage=*/1.0);
  // At the reference point: idle = static, full = static + dynamic.
  EXPECT_NEAR(cpu.power(spec.reference, 0.0).value(), 20.0, 1e-9);
  EXPECT_NEAR(cpu.power(spec.reference, 1.0).value(), 100.0, 1e-9);
}

TEST(CpuModel, DynamicPowerScalesWithFV2) {
  CpuSpec spec;
  spec.static_w_ref = 0.0;  // isolate dynamic
  spec.dynamic_w_ref = 100.0;
  spec.leakage_voltage_slope = 0.0;
  const CpuModel cpu(spec, 1.0);
  const OperatingPoint half_f{Hertz{spec.reference.frequency.value() * 0.5},
                              spec.reference.voltage};
  EXPECT_NEAR(cpu.power(half_f, 1.0).value(), 50.0, 1e-9);
  const OperatingPoint low_v{spec.reference.frequency,
                             Volts{spec.reference.voltage.value() * 0.9}};
  EXPECT_NEAR(cpu.power(low_v, 1.0).value(), 81.0, 1e-9);
}

TEST(CpuModel, LeakageMultiplierScalesStaticOnly) {
  CpuSpec spec;
  spec.static_w_ref = 30.0;
  spec.dynamic_w_ref = 70.0;
  const CpuModel hot(spec, 1.2);
  const CpuModel cool(spec, 0.8);
  const double diff = hot.power(spec.reference, 1.0).value() -
                      cool.power(spec.reference, 1.0).value();
  EXPECT_NEAR(diff, 30.0 * 0.4, 1e-9);
  EXPECT_THROW(CpuModel(spec, 0.0), contract_error);
}

TEST(CpuModel, ThroughputProportionalToFrequency) {
  const CpuSpec spec;
  const CpuModel cpu(spec, 1.0);
  EXPECT_DOUBLE_EQ(cpu.throughput(spec.reference), 1.0);
  const OperatingPoint slower{Hertz{spec.reference.frequency.value() / 2.0},
                              spec.reference.voltage};
  EXPECT_DOUBLE_EQ(cpu.throughput(slower), 0.5);
}

TEST(GpuModel, DefaultVoltageFollowsVid) {
  GpuSpec spec;
  spec.vid_base_v = 1.040;
  spec.vid_step_v = 0.010;
  const GpuModel low(spec, GpuAsic{0, 1.0});
  const GpuModel high(spec, GpuAsic{9, 1.0});
  EXPECT_NEAR(low.default_voltage().value(), 1.040, 1e-12);
  EXPECT_NEAR(high.default_voltage().value(), 1.130, 1e-12);
  EXPECT_THROW(GpuModel(spec, GpuAsic{10, 1.0}), contract_error);
}

TEST(GpuModel, HigherVidDrawsMorePowerAtDefaults) {
  const GpuSpec spec;
  const GpuModel low(spec, GpuAsic{1, 1.0});
  const GpuModel high(spec, GpuAsic{8, 1.0});
  EXPECT_GT(high.power(high.default_operating_point(), 1.0).value(),
            low.power(low.default_operating_point(), 1.0).value());
  // At a *fixed* operating point, equal leakage => equal power.
  const OperatingPoint fixed{megahertz(774.0), volts(1.018)};
  EXPECT_DOUBLE_EQ(high.power(fixed, 1.0).value(),
                   low.power(fixed, 1.0).value());
}

TEST(GpuModel, GflopsScalesWithFrequency) {
  const GpuSpec spec;  // 2530 GF at 900 MHz
  const GpuModel gpu(spec, GpuAsic{5, 1.0});
  EXPECT_NEAR(gpu.gflops({megahertz(900.0), volts(1.05)}), 2530.0, 1e-9);
  EXPECT_NEAR(gpu.gflops({megahertz(450.0), volts(1.0)}), 1265.0, 1e-9);
}

TEST(DrawGpuAsic, VidDistributionIsCenteredAndBellShaped) {
  const GpuSpec spec;  // 10 bins
  Rng rng(42);
  std::vector<double> bins;
  RunningStats leak;
  std::vector<int> counts(spec.vid_bins, 0);
  for (int i = 0; i < 20000; ++i) {
    const GpuAsic a = draw_gpu_asic(spec, rng);
    ++counts[a.vid_bin];
    bins.push_back(static_cast<double>(a.vid_bin));
    leak.add(a.leakage_mult);
  }
  const Summary s = summarize(bins);
  EXPECT_NEAR(s.mean, 4.5, 0.1);           // centered binomial over 0..9
  EXPECT_NEAR(s.stddev, 1.5, 0.1);         // sqrt(9 * 0.25)
  EXPECT_GT(counts[4] + counts[5], counts[0] + counts[9]);  // bell shape
  EXPECT_NEAR(leak.mean(), 1.0, 0.01);
}

TEST(DrawGpuAsic, LeakageCorrelatesWithVid) {
  const GpuSpec spec;
  Rng rng(43);
  RunningStats low_leak, high_leak;
  for (int i = 0; i < 20000; ++i) {
    const GpuAsic a = draw_gpu_asic(spec, rng, 0.05, 0.7);
    if (a.vid_bin <= 2) low_leak.add(a.leakage_mult);
    if (a.vid_bin >= 7) high_leak.add(a.leakage_mult);
  }
  EXPECT_GT(high_leak.mean(), low_leak.mean() + 0.02);
}

TEST(FanPower, CubicLaw) {
  const FanSpec fan{120.0, 0.25};
  EXPECT_DOUBLE_EQ(fan_power(fan, 1.0).value(), 120.0);
  EXPECT_DOUBLE_EQ(fan_power(fan, 0.5).value(), 15.0);
  EXPECT_DOUBLE_EQ(fan_power(fan, 0.0).value(), 0.0);
  EXPECT_THROW(fan_power(fan, 1.5), contract_error);
}

TEST(FanPolicy, Factories) {
  const FanPolicy a = FanPolicy::automatic();
  EXPECT_EQ(a.mode, FanPolicy::Mode::kAuto);
  const FanPolicy p = FanPolicy::pinned(0.6);
  EXPECT_EQ(p.mode, FanPolicy::Mode::kPinned);
  EXPECT_DOUBLE_EQ(p.pinned_speed, 0.6);
}

TEST(DiePower, ActivityRangeGuard) {
  const CpuSpec spec;
  const CpuModel cpu(spec, 1.0);
  EXPECT_THROW(cpu.power(spec.reference, -0.1), contract_error);
  EXPECT_THROW(cpu.power(spec.reference, 2.0), contract_error);
  EXPECT_THROW(cpu.power({Hertz{0.0}, volts(1.0)}, 0.5), contract_error);
}

}  // namespace
}  // namespace pv
