#include "core/submission.hpp"

#include <algorithm>
#include <sstream>

#include "util/expects.hpp"
#include "util/table.hpp"

namespace pv {

double Submission::mflops_per_watt() const {
  PV_EXPECTS(power.value() > 0.0, "submission power must be positive");
  return rmax.value() / 1e6 / power.value();
}

double Submission::gflops_per_watt() const {
  return mflops_per_watt() / 1e3;
}

std::vector<ValidationIssue> validate_submission(const Submission& sub,
                                                 Watts approx_node_power) {
  std::vector<ValidationIssue> issues;
  if (sub.provenance == PowerProvenance::kDerived) {
    issues.push_back(
        {"provenance",
         "power is derived from vendor data, not measured; ranked lists "
         "accept it but it carries no accuracy guarantee"});
    return issues;
  }
  const MethodologySpec spec = MethodologySpec::get(sub.level, sub.revision);

  const std::size_t need =
      spec.required_node_count(sub.total_nodes, approx_node_power);
  if (sub.nodes_measured < need) {
    std::ostringstream os;
    os << "measured " << sub.nodes_measured << " nodes; "
       << to_string(sub.level) << "/" << to_string(sub.revision)
       << " requires " << need << " of " << sub.total_nodes;
    issues.push_back({"fraction", os.str()});
  }

  const RunPhases run{Seconds{0.0}, sub.core_phase_duration, Seconds{0.0}};
  const Seconds need_dur = spec.required_window_duration(run);
  if (sub.window_duration.value() < need_dur.value() - 1e-6) {
    std::ostringstream os;
    os << "measurement window " << to_string(sub.window_duration)
       << " shorter than required " << to_string(need_dur);
    issues.push_back({"timing", os.str()});
  }

  if (sub.revision == Revision::kV2015 && !sub.reported_accuracy) {
    issues.push_back({"reporting",
                      "2015 rules ask submissions to include an accuracy "
                      "assessment; none was reported"});
  }
  return issues;
}

RankedList::RankedList(std::string name) : name_(std::move(name)) {}

void RankedList::add(Submission sub) {
  PV_EXPECTS(!sub.system_name.empty(), "submission needs a system name");
  PV_EXPECTS(sub.power.value() > 0.0, "submission power must be positive");
  PV_EXPECTS(sub.rmax.value() > 0.0, "submission Rmax must be positive");
  entries_.push_back(std::move(sub));
}

std::vector<Submission> RankedList::ranked_by_efficiency() const {
  std::vector<Submission> sorted = entries_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Submission& a, const Submission& b) {
                     return a.mflops_per_watt() > b.mflops_per_watt();
                   });
  return sorted;
}

std::vector<Submission> RankedList::ranked_by_performance() const {
  std::vector<Submission> sorted = entries_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Submission& a, const Submission& b) {
                     return a.rmax.value() > b.rmax.value();
                   });
  return sorted;
}

std::size_t RankedList::efficiency_rank(const std::string& system) const {
  const auto ranked = ranked_by_efficiency();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].system_name == system) return i + 1;
  }
  return 0;
}

std::string RankedList::render() const {
  TextTable t({"#", "system", "site", "Rmax", "power", "MFLOPS/W", "quality"});
  const auto ranked = ranked_by_efficiency();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const Submission& s = ranked[i];
    const std::string quality =
        s.provenance == PowerProvenance::kDerived
            ? "derived"
            : std::string(to_string(s.level));
    t.add_row({std::to_string(i + 1), s.system_name, s.site,
               to_string(s.rmax), to_string(s.power),
               fmt_fixed(s.mflops_per_watt(), 1), quality});
  }
  std::ostringstream os;
  os << name_ << " — ranked by energy efficiency\n" << t.render();
  return os.str();
}

}  // namespace pv
