// Unit tests for robust estimators (MAD, trimmed/winsorized means,
// Hampel filter).

#include "stats/robust.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/rng.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

TEST(Robust, MadOfConstantSampleIsZero) {
  const std::vector<double> xs(20, 5.0);
  EXPECT_DOUBLE_EQ(median_abs_deviation(xs), 0.0);
}

TEST(Robust, MadEstimatesSigmaForNormalData) {
  Rng rng(1);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.normal(100.0, 7.0);
  EXPECT_NEAR(median_abs_deviation(xs), 7.0, 0.3);
  // Unscaled MAD is the raw median deviation (consistency factor
  // 1/Phi^-1(3/4) ~= 1.4826).
  EXPECT_NEAR(median_abs_deviation(xs, false) * 1.4826,
              median_abs_deviation(xs), 1e-4);
}

TEST(Robust, MadIgnoresGrossOutliers) {
  Rng rng(2);
  std::vector<double> xs(1000);
  for (auto& x : xs) x = rng.normal(100.0, 5.0);
  const double before = median_abs_deviation(xs);
  for (int i = 0; i < 50; ++i) xs[static_cast<std::size_t>(i)] = 1e6;
  EXPECT_NEAR(median_abs_deviation(xs), before, 1.0);
}

TEST(Robust, TrimmedMeanDropsTails) {
  // 1..10 plus one huge outlier.
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 1e9};
  const double tm = trimmed_mean(xs, 0.1);  // drops 1 low, 1 high
  EXPECT_NEAR(tm, (2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 10) / 9.0, 1e-12);
  // Zero trim reduces to the plain mean.
  const std::vector<double> ys{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(trimmed_mean(ys, 0.0), 2.5);
}

TEST(Robust, WinsorizedMeanClampsTails) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 1e9};
  // cut = 1: clamp to [2, 9]; the 1e9 becomes 9 and the 1 becomes 2.
  const double wm = winsorized_mean(xs, 0.1);
  EXPECT_NEAR(wm, (2 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9 + 9) / 10.0, 1e-12);
}

TEST(Robust, EstimatorsRejectBadArguments) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_THROW(trimmed_mean(xs, 0.5), contract_error);
  EXPECT_THROW(winsorized_mean(xs, -0.1), contract_error);
  EXPECT_THROW(median_abs_deviation({}), contract_error);
  EXPECT_THROW(hampel_filter({}), contract_error);
}

TEST(Robust, HampelReplacesIsolatedSpikes) {
  Rng rng(3);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.normal(400.0, 2.0);
  xs[100] = 4000.0;
  xs[350] = 0.0;
  const HampelResult r = hampel_filter(xs, 5, 3.0);
  EXPECT_EQ(r.outlier[100], 1);
  EXPECT_EQ(r.outlier[350], 1);
  EXPECT_NEAR(r.filtered[100], 400.0, 10.0);
  EXPECT_NEAR(r.filtered[350], 400.0, 10.0);
  EXPECT_GE(r.outlier_count, 2u);
  // Clean samples dominate: very few false positives at 3 sigma.
  EXPECT_LT(r.outlier_count, 20u);
}

TEST(Robust, HampelLeavesCleanSignalAlone) {
  // A smooth ramp has no outliers.
  std::vector<double> xs(200);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = 100.0 + 0.5 * static_cast<double>(i);
  }
  const HampelResult r = hampel_filter(xs, 5, 3.0);
  EXPECT_EQ(r.outlier_count, 0u);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.filtered[i], xs[i]);
  }
}

TEST(Robust, HampelFlagsGlitchOnLocallyConstantSignal) {
  // Zero-MAD window: any deviation is an outlier (stuck sensor + glitch).
  std::vector<double> xs(50, 250.0);
  xs[25] = 251.0;
  const HampelResult r = hampel_filter(xs, 5, 3.0);
  EXPECT_EQ(r.outlier[25], 1);
  EXPECT_DOUBLE_EQ(r.filtered[25], 250.0);
}

}  // namespace
}  // namespace pv
