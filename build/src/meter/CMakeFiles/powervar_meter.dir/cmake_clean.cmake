file(REMOVE_RECURSE
  "CMakeFiles/powervar_meter.dir/hierarchy.cpp.o"
  "CMakeFiles/powervar_meter.dir/hierarchy.cpp.o.d"
  "CMakeFiles/powervar_meter.dir/meter.cpp.o"
  "CMakeFiles/powervar_meter.dir/meter.cpp.o.d"
  "CMakeFiles/powervar_meter.dir/psu.cpp.o"
  "CMakeFiles/powervar_meter.dir/psu.cpp.o.d"
  "libpowervar_meter.a"
  "libpowervar_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powervar_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
