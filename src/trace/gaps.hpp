#pragma once
// Gappy power traces: a PowerTrace plus a per-sample validity mask.
//
// Real site logs are full of holes — dropped samples, burst outages,
// meters that die mid-run (the Cray PMDB validation work spends much of
// its length on exactly these defects).  A GappyTrace keeps the regular
// time base of a PowerTrace, marks which samples actually arrived, and
// provides gap-aware statistics plus repair policies so the §3 window
// statistics stay computable over holes instead of silently averaging
// garbage.

#include <cstdint>
#include <vector>

#include "trace/time_series.hpp"

namespace pv {

/// How invalid samples are filled when a dense trace is required.
enum class RepairPolicy {
  kDrop,         ///< fill with the gap-aware mean (gaps carry no signal)
  kInterpolate,  ///< linear between the bracketing valid samples
  kHoldLast,     ///< repeat the last valid reading (PDU logger behaviour)
};

[[nodiscard]] const char* to_string(RepairPolicy p);

/// Shape of the missingness in a GappyTrace.
struct GapStats {
  std::size_t total = 0;        ///< samples in the underlying trace
  std::size_t missing = 0;      ///< invalid samples
  std::size_t gap_count = 0;    ///< maximal runs of invalid samples
  std::size_t longest_gap = 0;  ///< length of the longest run (samples)
  double coverage = 1.0;        ///< valid / total
};

/// A PowerTrace in which some samples never arrived.
class GappyTrace {
 public:
  /// `valid[i]` nonzero iff sample i of `trace` is a real reading.
  /// The mask must match the trace length.
  GappyTrace(PowerTrace trace, std::vector<std::uint8_t> valid);

  /// Wraps a trace in which every sample is valid.
  [[nodiscard]] static GappyTrace fully_valid(PowerTrace trace);

  [[nodiscard]] const PowerTrace& trace() const { return trace_; }
  [[nodiscard]] std::size_t size() const { return valid_.size(); }
  [[nodiscard]] bool valid_at(std::size_t i) const;
  [[nodiscard]] std::size_t valid_count() const;
  [[nodiscard]] const std::vector<std::uint8_t>& mask() const {
    return valid_;
  }

  /// Marks sample i invalid (used by quality checks, e.g. stuck-run
  /// detection, after construction).
  void invalidate(std::size_t i);

  [[nodiscard]] GapStats gap_stats() const;

  /// Mean power over valid samples only.  Requires >= 1 valid sample.
  [[nodiscard]] Watts mean_power() const;

  /// Energy over the trace extent, treating missing samples as drawing
  /// the gap-aware mean power — the standard treatment when a logger
  /// drops samples but the machine kept running.
  [[nodiscard]] Joules energy() const;

  /// A dense PowerTrace with invalid samples filled per `policy`.
  /// Leading/trailing gaps fall back to the nearest valid sample for
  /// kInterpolate/kHoldLast.  Requires >= 1 valid sample.
  [[nodiscard]] PowerTrace repaired(RepairPolicy policy) const;

 private:
  PowerTrace trace_;
  std::vector<std::uint8_t> valid_;
};

}  // namespace pv
