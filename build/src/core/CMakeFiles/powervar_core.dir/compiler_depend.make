# Empty compiler generated dependencies file for powervar_core.
# This may be replaced when dependencies are built.
