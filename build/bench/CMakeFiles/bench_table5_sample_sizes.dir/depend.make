# Empty dependencies file for bench_table5_sample_sizes.
# This may be replaced when dependencies are built.
