#pragma once
// The staged campaign pipeline.  run_campaign historically was one long
// function; this module breaks it into explicit stages —
//
//   Provision -> Meter -> Repair -> [Reconcile] -> Aggregate -> Assess
//
// — connected by a typed CampaignContext that carries each stage's
// artifacts to the next.  The decomposition is behavior-preserving by
// construction: stage boundaries fall on points where the historical code
// already handed one representation to the next (windows -> traces ->
// readings -> extrapolation), so RNG consumption order and every
// arithmetic expression are unchanged and results stay bit-identical at
// any thread count.
//
// Why stages?  The Meter slot is the only part that differs between
// execution modes: the eager per-device loop, the streaming kernels, the
// rack-PDU and facility-feed taps, and src/collect's asynchronous
// transport are all just different ways to fill `devices`/`readings`.
// Making that slot explicit lets the async collector reuse the exact
// Repair/Aggregate/Assess tail (finalize_node_campaign is now a thin
// wrapper over those stages), and gives every mode the same per-stage
// observability: each stage records a StageTrace (items, samples,
// virtual time, deterministic counters, wall clock) surfaced through
// `powervar campaign --trace-stages` and the JSON assessment document.
//
// One deliberate asymmetry: sample-level repair (gap fill, despiking,
// stuck-run flagging) runs *inside* the Meter stage, per device, because
// hoisting it out would require materializing every raw trace at once —
// the Repair stage consolidates the per-device tallies into the
// campaign's DataQuality and owns the repair accounting.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/campaign.hpp"
#include "core/plan.hpp"
#include "sim/fleet_state.hpp"
#include "sim/streaming.hpp"
#include "util/cancel.hpp"

namespace pv {

/// One device's metered series after optional fault injection and repair —
/// the Meter stage's per-meter artifact, consolidated by Repair and (for
/// reconciling campaigns) cross-validated by Reconcile.
struct DeviceReading {
  bool lost = false;      ///< dead or below the coverage floor
  double mean_w = 0.0;    ///< per-window-averaged mean power
  double energy_j = 0.0;  ///< summed over metered windows
  // Per-device quality tallies (zero on the fault-free path).
  std::size_t samples_expected = 0;
  std::size_t samples_lost = 0;
  std::size_t samples_repaired = 0;
  std::size_t spikes_filtered = 0;
  std::size_t stuck_flagged = 0;
  /// Per-analysis-window means for cross-validation (empty unless the
  /// campaign reconciles); windows with no valid sample are NaN.
  std::vector<double> analysis_means_w;
};

/// Everything the stages share.  Inputs are non-owning (the caller keeps
/// them alive across run_pipeline); artifacts are owned and filled as the
/// pipeline advances.
struct CampaignContext {
  // --- inputs (set by the caller, never mutated by stages) --------------
  const ClusterPowerModel* cluster = nullptr;
  const SystemPowerModel* electrical = nullptr;
  const MeasurementPlan* plan = nullptr;
  /// Null for the tail-only path (finalize_node_campaign): Aggregate and
  /// Assess are pure functions of readings + dq and never look at it.
  const CampaignConfig* config = nullptr;
  /// Optional cooperative cancellation: run_pipeline consults it at
  /// every stage boundary (null = never cancelled).  Checking only at
  /// boundaries is what makes unwinding safe — between stages the
  /// context is consistent by construction, so a fired token throws out
  /// of run_pipeline without ever exposing a torn artifact.
  const CancelToken* cancel = nullptr;

  // --- Provision artifacts ----------------------------------------------
  Seconds interval{0.0};              ///< effective meter reporting interval
  std::vector<TimeWindow> windows;    ///< the windows the plan meters
  std::vector<TimeWindow> analysis;   ///< cross-validation grid (reconcile)
  bool faulty = false;                ///< fault injection enabled
  bool reconciling = false;           ///< byzantine defense enabled
  bool streaming = false;             ///< streaming probe accepted the model
  std::vector<ShapeTable> tables;     ///< shared shapes (streaming only)
  std::size_t samples_per_meter = 0;  ///< expected samples, any one meter
  std::vector<std::size_t> racks;     ///< racks metered (rack-PDU tap only)
  /// The node-tap cohort transposed to structure-of-arrays (null for the
  /// rack/facility taps): meter models + calibration columns, per-node
  /// noise streams, PSU curve lanes and fault flags, all in plan order.
  /// Provision builds it (sharded over the fan-out pool); the Meter
  /// stages consume it as views — per-node paths index lanes, the fused
  /// kernels stream whole lane ranges.  unique_ptr so the context stays
  /// cheap to default-construct for tail-only snapshots.
  std::unique_ptr<FleetState> fleet;

  // --- Meter artifacts ---------------------------------------------------
  /// One per meter, in plan order (nodes), rack order, or the single
  /// facility meter.  Tallies feed Repair; series feed Reconcile.
  std::vector<DeviceReading> devices;
  /// Collection-layer view of the same meters (node id, or rack id for
  /// the rack tap), already DC->AC corrected where the plan requires it.
  std::vector<NodeReading> readings;
  /// Nodes attributed to each rack reading (rack-PDU tap only).
  std::vector<std::size_t> rack_nodes_in;

  // --- output ------------------------------------------------------------
  CampaignResult result;

  [[nodiscard]] DataQuality& dq() { return result.data_quality; }
};

/// One pipeline stage.  run() reads/writes the context and fills its
/// trace's deterministic fields (items, samples, virtual_s, counters);
/// run_pipeline stamps the wall clock around it.
class CampaignStage {
 public:
  virtual ~CampaignStage() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  virtual void run(CampaignContext& ctx, StageTrace& trace) = 0;
};

using StagePtr = std::unique_ptr<CampaignStage>;

/// Derives the campaign's execution parameters: effective interval,
/// metered windows, the analysis grid, the streaming probe + shape
/// tables (node taps), the rack list (rack tap) and meters_planned.
[[nodiscard]] StagePtr make_provision_stage();

/// Node-tap Meter stage: one meter device per selected node, eager or
/// streaming per the provision probe, fanned out over config.threads
/// (bit-identical at any thread count).
[[nodiscard]] StagePtr make_node_meter_stage();

/// Bounded-memory node-tap Meter stage (config.live): window-major over
/// per-node window accumulators, streaming each window in fixed-size
/// shape chunks, so peak memory is O(nodes + windows) independent of
/// campaign length.  Emits partial assessment Documents to
/// config.live_sink on the pinned virtual-time schedule.  The finished
/// devices/readings — and therefore the final Document — are
/// byte-identical to make_node_meter_stage's.
[[nodiscard]] StagePtr make_live_node_meter_stage();

/// Rack-PDU Meter stage: one meter per rack containing a selected node;
/// the reading is later attributed evenly to the rack's nodes.
[[nodiscard]] StagePtr make_rack_meter_stage();

/// Facility-feed Meter stage: the single whole-feed meter.  Throws
/// NoUsableDataError when the meter is forced dead — there is no fallback
/// instrumentation at Level 3.
[[nodiscard]] StagePtr make_facility_meter_stage();

/// Consolidates the per-device repair/quality tallies into DataQuality.
/// (Sample-level gap fill runs inside Meter, per device — see the header
/// comment; this stage owns the accounting.)
[[nodiscard]] StagePtr make_repair_stage();

/// Byzantine defense: builds per-meter analysis series, cross-validates
/// them against the cohort and the meter hierarchy, quarantines convicted
/// meters and undoes exactly invertible unit errors.
[[nodiscard]] StagePtr make_reconcile_stage();

/// Excludes lost meters, extrapolates the survivors to the machine,
/// re-bases energy to the planned scope and computes the Eq. 1 CI
/// (dispatching on the plan's tap point).  Throws NoUsableDataError when
/// every meter was lost.
[[nodiscard]] StagePtr make_aggregate_stage();

/// Ground truth and relative error — the simulation-only assessment.
/// Uses the memoized integrand when the streaming probe held.
[[nodiscard]] StagePtr make_assess_stage();

/// Assembles the full stage list run_campaign executes for `plan`:
/// Provision, the tap-point Meter stage, Repair, Reconcile (node taps
/// with the defense enabled), Aggregate, Assess.  Exposed so callers —
/// the campaign service's chaos harness foremost — can decorate or
/// replace individual stages before running them.
[[nodiscard]] std::vector<StagePtr> make_campaign_stages(
    const MeasurementPlan& plan, const CampaignConfig& config);

/// Runs a caller-assembled stage list as run_campaign would: validates
/// the rig, wires the context and returns the result.  `cancel` (may be
/// null) is checked at every stage boundary; a fired token throws
/// CancelledError / DeadlineExceededError with no result produced.
[[nodiscard]] CampaignResult run_campaign_stages(
    const ClusterPowerModel& cluster, const SystemPowerModel& electrical,
    const MeasurementPlan& plan, const CampaignConfig& config,
    const std::vector<StagePtr>& stages, const CancelToken* cancel = nullptr);

/// Runs the stages in order, appending one StageTrace per stage (with
/// wall clock) to ctx.result.stage_traces.  Exceptions propagate.
/// Consults ctx.cancel (when set) before every stage and once after the
/// last — so a deadline spent *inside* a stage is still detected at the
/// next boundary, wherever that stage sits in the list.
void run_pipeline(const std::vector<StagePtr>& stages, CampaignContext& ctx);

}  // namespace pv
