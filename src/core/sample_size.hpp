#pragma once
// The paper's statistical core (§4): confidence intervals for extrapolated
// mean node power (Equations 1-2), and the required-sample-size formulas
// with finite-population correction (Equations 3-5) that became the
// Green500/Top500 node-count rules.
//
// Notation follows the paper: N total nodes, n sampled nodes, mu-hat and
// sigma-hat the sample mean/sd, alpha the complement of the confidence
// level, lambda the target relative accuracy.

#include <cstddef>
#include <span>
#include <vector>

#include "stats/bootstrap.hpp"  // Interval

namespace pv {

/// Equation 1: two-sided t confidence interval for the mean,
/// mu-hat ± t_{n-1,1-alpha/2} * sigma-hat / sqrt(n).  Requires n >= 2.
[[nodiscard]] Interval t_confidence_interval(double mean, double sd,
                                             std::size_t n, double alpha);

/// Equation 2: the large-n normal approximation,
/// mu-hat ± z_{1-alpha/2} * sigma-hat / sqrt(n).
[[nodiscard]] Interval z_confidence_interval(double mean, double sd,
                                             std::size_t n, double alpha);

/// Convenience: Equation 1 evaluated on a raw sample.
[[nodiscard]] Interval t_confidence_interval(std::span<const double> sample,
                                             double alpha);

/// Equation 4: n0 = (z_{1-alpha/2} / lambda * cv)^2 — the (real-valued)
/// required sample size for an infinite population.
[[nodiscard]] double required_sample_size_infinite(double alpha, double lambda,
                                                   double cv);

/// Equation 5: the two-step rule — n0 from Equation 4, then the finite
/// population correction n = n0 N / (n0 + N - 1), rounded up.  The result
/// is clamped to [2, N].
[[nodiscard]] std::size_t required_sample_size(double alpha, double lambda,
                                               double cv, std::size_t total_nodes);

/// Inverse question (§4's intro example): with n of N nodes sampled and
/// node-power cv, the achievable relative accuracy lambda at confidence
/// 1-alpha.  `use_t` selects the exact t quantile (what the paper's 3.2% /
/// 0.2% example uses) vs the z approximation; `fpc` applies the finite
/// population correction factor sqrt((N-n)/(N-1)).
[[nodiscard]] double achievable_accuracy(double alpha, double cv,
                                         std::size_t n, std::size_t total_nodes,
                                         bool use_t = true, bool fpc = false);

/// The pre-2015 Green500 rule: ceil(N / 64) nodes.
[[nodiscard]] std::size_t rule_1_64(std::size_t total_nodes);

/// The paper's adopted recommendation: max(16, ceil(0.10 * N)), capped at N.
[[nodiscard]] std::size_t rule_2015(std::size_t total_nodes);

/// How much narrower (fractionally) a z-based CI is than the exact t-based
/// one at sample size n: 1 - z/t.  The paper: ~9% for n = 15 at 95%.
[[nodiscard]] double z_vs_t_narrowing(std::size_t n, double alpha);

/// The two-step pilot procedure of §4.2: estimate (mu, sigma) from a small
/// pilot sample, then recommend the final sample size via Equation 5.
struct PilotRecommendation {
  double pilot_mean = 0.0;
  double pilot_sd = 0.0;
  double pilot_cv = 0.0;
  std::size_t recommended_n = 0;
};
[[nodiscard]] PilotRecommendation two_step_pilot(
    std::span<const double> pilot_sample, double alpha, double lambda,
    std::size_t total_nodes);

/// Table 5: required sample sizes over a (lambda x cv) grid.
/// Row i corresponds to lambdas[i], column j to cvs[j].
[[nodiscard]] std::vector<std::vector<std::size_t>> sample_size_table(
    std::span<const double> lambdas, std::span<const double> cvs,
    std::size_t total_nodes, double alpha);

/// The paper's published Table 5 axes: lambda in {0.5,1,1.5,2}%,
/// sigma/mu in {2,3,5}%, N = 10000, alpha = 0.05.
[[nodiscard]] std::vector<double> table5_lambdas();
[[nodiscard]] std::vector<double> table5_cvs();
inline constexpr std::size_t kTable5Nodes = 10000;

}  // namespace pv
