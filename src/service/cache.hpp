#pragma once
// Content-addressed cache of provisioned scenarios.
//
// Building a scenario — generating the calibrated fleet, lowering it
// into the electrical model with its compiled PSU curves, deriving
// PlanInputs — dominates a short campaign's cost and is a pure function
// of the ScenarioSpec.  The service therefore caches built scenarios
// keyed by a fingerprint of the spec.  Safety over speed:
//
//   revalidation   every hit recomputes the CRC32 of the entry's sealed
//                  snapshot (the canonical serialization of the fleet it
//                  was built from) before handing the artifact out;
//   quarantine     a CRC mismatch evicts the entry on the spot and
//                  counts it; the request then either rebuilds from
//                  scratch (default) or is refused with a typed
//                  CacheCorruptError (strict mode) — a corrupted
//                  artifact is never served;
//   single-flight  concurrent misses on one fingerprint build once; the
//                  builder counts the miss, waiters count hits — so
//                  cache statistics are deterministic under any
//                  interleaving, which the bench's skip-Provision
//                  contract measures.
//
// Entries are shared immutable (shared_ptr<const Scenario>); campaigns
// never write through them, which is half of the per-request isolation
// story (the other half is per-request RNG seeding).

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/scenario.hpp"

namespace pv {

/// Thrown (strict mode only) when revalidation catches a corrupted
/// cache entry.  The service maps it to the `cache_corrupt` response
/// and the CLI to its own exit code — refusing data beats serving it.
class CacheCorruptError : public std::runtime_error {
 public:
  explicit CacheCorruptError(const std::string& what)
      : std::runtime_error(what) {}
};

struct CacheStats {
  std::size_t hits = 0;         ///< revalidated hits served
  std::size_t misses = 0;       ///< scenario builds (cold or post-quarantine)
  std::size_t quarantined = 0;  ///< entries evicted on CRC mismatch
                                ///  (in-memory or on-disk)
  std::size_t evicted = 0;      ///< entries displaced by capacity pressure
  std::size_t disk_hits = 0;    ///< rebuilt from a spilled artifact
                                ///  (skipped the fleet draw; not a miss)
  std::size_t spills = 0;       ///< artifacts persisted to the cache dir
};

class ScenarioCache {
 public:
  /// `dir` enables the persistent tier: misses probe `dir` for a spilled
  /// artifact before building, and fresh builds are spilled back.  Disk
  /// artifacts are CRC-framed WAL files (one record per node mean, bit
  /// patterns in hex) revalidated on every load; a torn, truncated or
  /// foreign file is quarantined on the spot (renamed *.quarantined) and
  /// either rebuilt from scratch (strict = false) or refused with
  /// CacheCorruptError (strict = true) — the same taxonomy as the
  /// in-memory tier.  Capacity eviction only ever drops the in-memory
  /// entry; the spilled file survives, which is what makes a warm
  /// restart skip Provision.
  explicit ScenarioCache(std::size_t capacity = 8, std::string dir = "");

  ScenarioCache(const ScenarioCache&) = delete;
  ScenarioCache& operator=(const ScenarioCache&) = delete;

  /// Content address of a spec: a 64-bit FNV-1a over its canonical
  /// serialization (every field, doubles by their bit patterns).
  [[nodiscard]] static std::uint64_t fingerprint(const ScenarioSpec& spec);

  /// Returns the built scenario for `spec`, building it on a miss.
  /// Every hit is revalidated; corruption quarantines the entry and
  /// either rebuilds (strict = false) or throws CacheCorruptError
  /// (strict = true).  `inject_corruption` is the chaos hook: it flips a
  /// snapshot byte right before revalidation (inserting first on a
  /// cold entry), so the corruption path fires deterministically for
  /// this acquire whatever the cache temperature.
  [[nodiscard]] std::shared_ptr<const Scenario> acquire(
      const ScenarioSpec& spec, bool strict = false,
      bool inject_corruption = false);

  [[nodiscard]] CacheStats stats() const;

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const Scenario>> ready;
    std::string snapshot;     ///< canonical bytes the CRC covers
    std::uint32_t crc = 0;
    bool sealed = false;      ///< snapshot + crc written by the builder
    std::uint64_t last_use = 0;
  };

  void evict_if_full_locked();
  [[nodiscard]] std::string disk_path(std::uint64_t fp) const;
  /// Probes the persistent tier.  Returns true and fills `means` on a
  /// valid spilled artifact; quarantines a corrupt one (throwing in
  /// strict mode); returns false when there is nothing usable.
  bool try_load_disk(const ScenarioSpec& spec, std::uint64_t fp, bool strict,
                     std::vector<double>& means);
  /// Best-effort spill of a fresh build (a failed spill never fails the
  /// request — the artifact just stays memory-only).
  void spill_to_disk(std::uint64_t fp, const Scenario& built);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::string dir_;
  std::uint64_t use_clock_ = 0;
  std::map<std::uint64_t, Entry> entries_;
  CacheStats stats_;
};

}  // namespace pv
