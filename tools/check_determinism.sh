#!/usr/bin/env bash
# Guards the seeded-fault reproducibility contract: a faulted campaign run
# twice with the same seed must produce byte-identical output (all fault
# processes draw from (seed, stream) RNG streams, never from global state).
#
# Usage: check_determinism.sh /path/to/powervar
set -euo pipefail

powervar="${1:?usage: check_determinism.sh /path/to/powervar}"
args=(campaign --nodes 64 --cv 0.03 --level 1 --seed 42
      --faults harsh --dropout 0.1 --dead 2 --interval 10)

out_a="$("$powervar" "${args[@]}")"
out_b="$("$powervar" "${args[@]}")"

if [[ "$out_a" != "$out_b" ]]; then
  echo "FAIL: two identically seeded faulted campaigns diverged" >&2
  diff <(printf '%s\n' "$out_a") <(printf '%s\n' "$out_b") >&2 || true
  exit 1
fi

# The run must actually have degraded (otherwise this guards nothing).
if ! grep -q "data quality" <<<"$out_a"; then
  echo "FAIL: faulted campaign printed no data-quality block" >&2
  exit 1
fi

echo "OK: faulted campaign is deterministic under a fixed seed"

# ---------------------------------------------------------------------------
# Kill-and-resume contract: an asynchronous collection killed mid-campaign
# and resumed from its journal must produce a report byte-identical to an
# uninterrupted run of the same campaign.
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

collect_args=(collect --nodes 64 --cv 0.03 --level 1 --seed 42
              --blackhole 0.2 --drop 0.05 --interval 10 --threads 4)

clean_out="$("$powervar" "${collect_args[@]}" \
             --checkpoint "$tmpdir/clean.wal" 2>/dev/null)"

# The crashing run must exit with the dedicated simulated-crash status (3).
set +e
"$powervar" "${collect_args[@]}" --checkpoint "$tmpdir/crash.wal" \
    --crash-after 3 >"$tmpdir/crash.out" 2>/dev/null
crash_rc=$?
set -e
if [[ "$crash_rc" -ne 3 ]]; then
  echo "FAIL: --crash-after exited with $crash_rc, expected 3" >&2
  exit 1
fi
if [[ -s "$tmpdir/crash.out" ]]; then
  echo "FAIL: crashed collection printed a (partial) report" >&2
  exit 1
fi

resumed_out="$("$powervar" "${collect_args[@]}" \
               --checkpoint "$tmpdir/crash.wal" --resume 1 2>/dev/null)"

if [[ "$clean_out" != "$resumed_out" ]]; then
  echo "FAIL: kill-and-resume collection diverged from uninterrupted run" >&2
  diff <(printf '%s\n' "$clean_out") <(printf '%s\n' "$resumed_out") >&2 || true
  exit 1
fi

# The collection must actually have fought the flaky channel.
if ! grep -q "collection path" <<<"$clean_out"; then
  echo "FAIL: collect printed no collection-path quality block" >&2
  exit 1
fi

echo "OK: kill-and-resume collection is byte-identical to uninterrupted run"

# ---------------------------------------------------------------------------
# Byzantine-reconciliation contract: detection verdicts are a pure function
# of (seed, plan) — the metering fan-out runs on per-node RNG streams, so
# the worker thread count must not change a single output byte.
reconcile_args=(reconcile --nodes 96 --seed 5 --byzantine 0.05 --interval 10)

serial_out="$("$powervar" "${reconcile_args[@]}" --threads 1)"
fanned_out="$("$powervar" "${reconcile_args[@]}" --threads 4)"

if [[ "$serial_out" != "$fanned_out" ]]; then
  echo "FAIL: reconciled campaign diverged between 1 and 4 threads" >&2
  diff <(printf '%s\n' "$serial_out") <(printf '%s\n' "$fanned_out") >&2 || true
  exit 1
fi

# The run must actually have convicted liars (otherwise this guards nothing).
if ! grep -q "integrity (byzantine defense)" <<<"$serial_out"; then
  echo "FAIL: reconciled campaign printed no integrity block" >&2
  exit 1
fi
if ! grep -Eq "quarantined|corrected" <<<"$serial_out"; then
  echo "FAIL: byzantine campaign convicted nothing" >&2
  exit 1
fi

echo "OK: byzantine reconciliation is thread-count invariant"

# ---------------------------------------------------------------------------
# JSON-mode contract: the machine-readable rendering is as deterministic
# as the text one (stage traces included — wall clock stays out of the
# JSON), and both renderings describe the same campaign.
json_args=(campaign --nodes 64 --cv 0.03 --level 1 --seed 42
           --faults harsh --dropout 0.1 --dead 2 --interval 10
           --json --trace-stages)

json_a="$("$powervar" "${json_args[@]}")"
json_b="$("$powervar" "${json_args[@]}")"

if [[ "$json_a" != "$json_b" ]]; then
  echo "FAIL: two identically seeded --json campaigns diverged" >&2
  diff <(printf '%s\n' "$json_a") <(printf '%s\n' "$json_b") >&2 || true
  exit 1
fi
for key in '"schema":"powervar-assessment-v1"' '"submitted_power_w":' \
           '"data_quality":' '"stages":'; do
  if ! grep -qF "$key" <<<"$json_a"; then
    echo "FAIL: --json output lacks $key" >&2
    exit 1
  fi
done

# Text and JSON must agree on the submitted number: parse the human line
# ("submitted power:   27.43 kW") back to watts and compare with the JSON
# field to ~1% (the text is rounded to 4 significant digits).
text_out="$("$powervar" campaign --nodes 64 --cv 0.03 --level 1 --seed 42 \
            --faults harsh --dropout 0.1 --dead 2 --interval 10)"
text_w="$(awk '/^submitted power:/ {
  v = $3
  if ($4 == "kW") v *= 1e3
  else if ($4 == "MW") v *= 1e6
  print v
}' <<<"$text_out")"
json_w="$(grep -o '"submitted_power_w":[0-9.eE+-]*' <<<"$json_a" |
          head -1 | cut -d: -f2)"
if [[ -z "$text_w" || -z "$json_w" ]]; then
  echo "FAIL: could not extract submitted power from both renderings" >&2
  exit 1
fi
if ! awk -v t="$text_w" -v j="$json_w" \
     'BEGIN { d = (t - j) / j; if (d < 0) d = -d; exit !(d < 0.01) }'; then
  echo "FAIL: text ($text_w W) and JSON ($json_w W) renderings disagree" >&2
  exit 1
fi

echo "OK: JSON rendering is deterministic and agrees with the text report"

# ---------------------------------------------------------------------------
# Service-isolation contract at the CLI level: a campaign served through
# `powervar serve` — sharing a worker pool and the provision cache with
# neighbors — must embed an assessment byte-identical to the same
# campaign run solo through `campaign --json`, and the whole served batch
# must be deterministic across runs even with concurrent workers.
cat >"$tmpdir/serve_reqs.jsonl" <<'REQS'
{"schema":"powervar-request-v1","id":"d1","nodes":64,"cv":0.03,"level":1,"seed":42,"faults":"harsh","dropout":0.1,"dead":2,"interval":10}
{"schema":"powervar-request-v1","id":"d2","nodes":48,"level":2,"seed":7,"interval":10}
{"schema":"powervar-request-v1","id":"d3","nodes":64,"cv":0.03,"seed":42,"interval":30}
REQS

serve_a="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
           --json --workers 4)"
serve_b="$("$powervar" serve --requests "$tmpdir/serve_reqs.jsonl" \
           --json --workers 4)"
if [[ "$serve_a" != "$serve_b" ]]; then
  echo "FAIL: two identical served batches diverged" >&2
  diff <(printf '%s\n' "$serve_a") <(printf '%s\n' "$serve_b") >&2 || true
  exit 1
fi

# Extract d1's embedded assessment: everything after "assessment": up to
# the response line's closing brace (the assessment is the final field of
# an ok response, so stripping one trailing '}' recovers its exact bytes).
d1_line="$(grep -F '"id":"d1"' <<<"$serve_a")"
d1_assessment="${d1_line#*\"assessment\":}"
d1_assessment="${d1_assessment%\}}"
solo_json="$("$powervar" campaign --nodes 64 --cv 0.03 --level 1 --seed 42 \
             --faults harsh --dropout 0.1 --dead 2 --interval 10 --json)"
if [[ "$d1_assessment" != "$solo_json" ]]; then
  echo "FAIL: served assessment diverged from the solo campaign --json run" >&2
  diff <(printf '%s\n' "$solo_json") <(printf '%s\n' "$d1_assessment") >&2 || true
  exit 1
fi

# The batch must actually have exercised the cache (d3 shares d1's spec).
if ! grep -qF '"cache":{"hits":1,"misses":2' <<<"$serve_a"; then
  echo "FAIL: served batch did not report the expected cache accounting" >&2
  exit 1
fi

echo "OK: served campaigns are deterministic and byte-identical to solo runs"
