file(REMOVE_RECURSE
  "libpowervar_meter.a"
)
