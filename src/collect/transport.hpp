#pragma once
// Simulated meter transport: the lossy channel between a poller and a
// meter.
//
// Real campaigns read meters over BMC/IPMI, SNMP or serial PDU channels
// that add latency, lose requests, and occasionally answer twice.  The
// paper's submission rules silently assume this path works; production
// experience (Cray PMDB validation, flux-power-monitor's polling loops)
// says it is where collections actually die.  SimTransport models that
// channel with seeded, per-exchange randomness so every retry storm is
// bit-reproducible: the outcome of (meter, chunk, attempt) is a pure
// function of the campaign seed, independent of thread interleaving and
// of whatever happened before — which is also what makes kill-and-resume
// collections replay identically.
//
// Time is virtual.  An exchange *charges* the caller its latency (or the
// full timeout) rather than sleeping, so a simulated hour of flaky
// polling costs milliseconds of real CPU while preserving the wall-clock
// arithmetic the circuit-breaker contract is about.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace pv {

/// Mixes up to three identity components (meter id, chunk, attempt) into
/// one RNG stream id so every exchange/chunk gets an independent stream.
[[nodiscard]] std::uint64_t mix_streams(std::uint64_t a, std::uint64_t b,
                                        std::uint64_t c = 0);

/// Reply-latency distribution: a fixed floor plus uniform jitter plus an
/// occasional exponential heavy tail (the overloaded-BMC case).
struct LatencyModel {
  double base_s = 0.02;      ///< minimum round trip
  double jitter_s = 0.03;    ///< uniform extra, U(0, jitter)
  double tail_prob = 0.02;   ///< P(reply comes from a slow meter moment)
  double tail_scale_s = 0.3; ///< exponential tail scale when it does

  /// Draws one reply latency.
  [[nodiscard]] double draw(Rng& rng) const;
};

/// Fault model of the collection channel.  Default-constructed == a
/// perfect network with the default latency floor.
struct TransportSpec {
  LatencyModel latency;
  double drop_prob = 0.0;       ///< request or reply lost -> caller times out
  double duplicate_prob = 0.0;  ///< reply delivered twice (dedup downstream)
  /// Fraction of meters that never answer any request (seeded draw per
  /// meter id) — the "20% of meters time out on every poll" scenario.
  double blackhole_fraction = 0.0;
  /// Specific meter ids forced to never answer (deterministic scenarios;
  /// the collector also routes FaultPlan::dead_meters here).
  std::vector<std::size_t> blackhole_meters;

  [[nodiscard]] bool faulty() const {
    return drop_prob > 0.0 || duplicate_prob > 0.0 ||
           blackhole_fraction > 0.0 || !blackhole_meters.empty();
  }
};

/// What one request/reply exchange did.
struct Exchange {
  bool ok = false;         ///< reply arrived inside the deadline
  double elapsed_s = 0.0;  ///< latency charged (full timeout on failure)
  bool duplicate = false;  ///< the reply also arrived a second time
};

/// Seeded simulated transport shared by every poller of a campaign.
/// Stateless between calls: safe to use from any thread.
class SimTransport {
 public:
  SimTransport(TransportSpec spec, std::uint64_t seed);

  /// Performs one exchange for `meter_id`'s chunk `chunk`, attempt
  /// `attempt`, with the caller willing to wait `timeout_s`.  Outcomes are
  /// deterministic per (seed, meter, chunk, attempt).
  [[nodiscard]] Exchange exchange(std::size_t meter_id, std::size_t chunk,
                                  std::size_t attempt, double timeout_s) const;

  /// Whether this meter answers at all (blackhole list or seeded draw).
  [[nodiscard]] bool blackhole(std::size_t meter_id) const;

  [[nodiscard]] const TransportSpec& spec() const { return spec_; }

 private:
  TransportSpec spec_;
  std::uint64_t seed_;
};

}  // namespace pv
