# Empty compiler generated dependencies file for powervar_meter.
# This may be replaced when dependencies are built.
