#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "stats/descriptive.hpp"
#include "util/expects.hpp"

namespace pv {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  PV_EXPECTS(bins > 0, "histogram needs at least one bin");
  PV_EXPECTS(hi > lo, "histogram range must be non-empty");
}

Histogram Histogram::auto_binned(std::span<const double> xs) {
  PV_EXPECTS(xs.size() >= 2, "auto-binned histogram needs n >= 2");
  const double q1 = quantile(xs, 0.25);
  const double q3 = quantile(xs, 0.75);
  const double iqr = q3 - q1;
  const double n = static_cast<double>(xs.size());
  const auto [mn_it, mx_it] = std::minmax_element(xs.begin(), xs.end());
  double lo = *mn_it, hi = *mx_it;
  if (hi == lo) {  // constant sample: widen artificially
    lo -= 0.5;
    hi += 0.5;
  }
  std::size_t bins;
  if (iqr > 0.0) {
    const double width = 2.0 * iqr / std::cbrt(n);  // Freedman–Diaconis
    bins = static_cast<std::size_t>(std::ceil((hi - lo) / width));
  } else {
    bins = static_cast<std::size_t>(std::ceil(std::log2(n) + 1.0));  // Sturges
  }
  bins = std::clamp<std::size_t>(bins, 1, 512);
  // Nudge hi so the max value falls inside the last bin rather than on the
  // open right edge.
  const double pad = (hi - lo) * 1e-9 + 1e-12;
  Histogram h(lo, hi + pad, bins);
  h.add_all(xs);
  return h;
}

void Histogram::add(double x) {
  double idx_f = (x - lo_) / bin_width_;
  auto idx = static_cast<long long>(std::floor(idx_f));
  idx = std::clamp<long long>(idx, 0, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

std::size_t Histogram::count(std::size_t bin) const {
  PV_EXPECTS(bin < counts_.size(), "bin index out of range");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  PV_EXPECTS(bin < counts_.size(), "bin index out of range");
  return lo_ + bin_width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + bin_width_; }

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::size_t Histogram::modality() const {
  // Smooth with a 3-tap moving average to suppress single-bin jitter, then
  // count strict local maxima above 5% of the peak.
  const std::size_t n = counts_.size();
  if (n < 3) return n > 0 && total_ > 0 ? 1 : 0;
  std::vector<double> smooth(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = static_cast<double>(counts_[i]);
    double cnt = 1.0;
    if (i > 0) {
      acc += static_cast<double>(counts_[i - 1]);
      cnt += 1.0;
    }
    if (i + 1 < n) {
      acc += static_cast<double>(counts_[i + 1]);
      cnt += 1.0;
    }
    smooth[i] = acc / cnt;
  }
  const double peak = *std::max_element(smooth.begin(), smooth.end());
  if (peak <= 0.0) return 0;
  const double floor_level = 0.05 * peak;
  std::size_t modes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double left = i > 0 ? smooth[i - 1] : -1.0;
    const double right = i + 1 < n ? smooth[i + 1] : -1.0;
    if (smooth[i] > floor_level && smooth[i] > left && smooth[i] >= right) {
      ++modes;
      // Skip the plateau so a flat top counts once.
      while (i + 1 < n && smooth[i + 1] == smooth[i]) ++i;
    }
  }
  return modes;
}

std::string Histogram::render(std::size_t width) const {
  PV_EXPECTS(width >= 1, "render width must be positive");
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    char label[64];
    std::snprintf(label, sizeof label, "[%9.2f, %9.2f)", bin_lo(b), bin_hi(b));
    std::size_t bar =
        peak == 0 ? 0 : (counts_[b] * width + peak - 1) / peak;  // ceil
    os << label << ' ' << std::string(bar, '#');
    if (counts_[b] > 0) os << ' ' << counts_[b];
    os << '\n';
  }
  return os.str();
}

}  // namespace pv
