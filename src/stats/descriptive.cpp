#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/expects.hpp"

namespace pv {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  PV_EXPECTS(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double RunningStats::variance() const {
  PV_EXPECTS(n_ >= 2, "sample variance needs n >= 2");
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::population_variance() const {
  PV_EXPECTS(n_ >= 1, "population variance needs n >= 1");
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::cv() const {
  PV_EXPECTS(n_ >= 2, "cv needs n >= 2");
  PV_EXPECTS(mean_ != 0.0, "cv undefined for zero mean");
  return stddev() / std::fabs(mean_);
}

double RunningStats::min() const {
  PV_EXPECTS(n_ > 0, "min of empty accumulator");
  return min_;
}

double RunningStats::max() const {
  PV_EXPECTS(n_ > 0, "max of empty accumulator");
  return max_;
}

double RunningStats::sum() const { return sum_; }

Summary summarize(std::span<const double> xs) {
  PV_EXPECTS(!xs.empty(), "summarize of empty sample");
  RunningStats acc;
  for (double x : xs) acc.add(x);
  Summary s;
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.count() >= 2 ? acc.stddev() : 0.0;
  s.cv = (s.mean != 0.0) ? s.stddev / std::fabs(s.mean) : 0.0;
  s.min = acc.min();
  s.max = acc.max();
  s.sum = acc.sum();
  return s;
}

double quantile(std::span<const double> xs, double q) {
  PV_EXPECTS(!xs.empty(), "quantile of empty sample");
  PV_EXPECTS(q >= 0.0 && q <= 1.0, "quantile level outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double h = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double skewness(std::span<const double> xs) {
  PV_EXPECTS(xs.size() >= 3, "skewness needs n >= 3");
  const Summary s = summarize(xs);
  PV_EXPECTS(s.stddev > 0.0, "skewness undefined for constant sample");
  const double n = static_cast<double>(xs.size());
  double m3 = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    m3 += d * d * d;
  }
  m3 /= n;
  const double g1 = m3 / std::pow(s.stddev * std::sqrt((n - 1.0) / n), 3.0);
  return std::sqrt(n * (n - 1.0)) / (n - 2.0) * g1;
}

double excess_kurtosis(std::span<const double> xs) {
  PV_EXPECTS(xs.size() >= 4, "kurtosis needs n >= 4");
  const Summary s = summarize(xs);
  PV_EXPECTS(s.stddev > 0.0, "kurtosis undefined for constant sample");
  const double n = static_cast<double>(xs.size());
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  const double g2 = m4 / (m2 * m2) - 3.0;
  return ((n + 1.0) * g2 + 6.0) * (n - 1.0) / ((n - 2.0) * (n - 3.0));
}

}  // namespace pv
