#pragma once
// Small numeric helpers shared across modules.

#include <array>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "util/expects.hpp"

namespace pv {

/// Linear interpolation: lerp01(a, b, 0) == a, lerp01(a, b, 1) == b.
[[nodiscard]] constexpr double lerp01(double a, double b, double t) {
  return a + (b - a) * t;
}

/// True when |a - b| <= max(abs_tol, rel_tol * max(|a|, |b|)).
[[nodiscard]] bool approx_equal(double a, double b, double rel_tol = 1e-9,
                                double abs_tol = 1e-12);

/// Relative difference |a - b| / |b| (b is the reference). b must be nonzero.
[[nodiscard]] double relative_error(double a, double b);

/// Inclusive prefix sums: out[i] = sum of xs[0..i].  Empty input -> empty.
[[nodiscard]] std::vector<double> prefix_sums(std::span<const double> xs);

/// Mean of a range; range must be non-empty.
[[nodiscard]] double mean_of(std::span<const double> xs);

/// Solves the 3x3 linear system A x = b by Gaussian elimination with partial
/// pivoting.  Used by the workload calibration layer (DESIGN.md §4).
/// Throws pv::contract_error on a (numerically) singular system.
[[nodiscard]] std::array<double, 3> solve3x3(
    const std::array<std::array<double, 3>, 3>& a,
    const std::array<double, 3>& b);

/// Newton–Raphson root find of f on [lo, hi] with bisection fallback;
/// f must be monotone on the bracket and change sign across it.
template <class F, class DF>
[[nodiscard]] double newton_bisect(F f, DF df, double lo, double hi,
                                   double x0, int max_iter = 100,
                                   double tol = 1e-12) {
  PV_EXPECTS(lo < hi, "bracket must be non-empty");
  double flo = f(lo);
  double fhi = f(hi);
  PV_EXPECTS(flo * fhi <= 0.0, "root must be bracketed");
  double x = x0;
  if (x < lo || x > hi) x = 0.5 * (lo + hi);
  for (int i = 0; i < max_iter; ++i) {
    const double fx = f(x);
    if (std::fabs(fx) < tol) return x;
    // Maintain the bracket.
    if ((fx < 0.0) == (flo < 0.0)) {
      lo = x;
      flo = fx;
    } else {
      hi = x;
      fhi = fx;
    }
    const double d = df(x);
    double next = (d != 0.0) ? x - fx / d : 0.5 * (lo + hi);
    if (next <= lo || next >= hi) next = 0.5 * (lo + hi);  // bisection fallback
    if (std::fabs(next - x) < tol * (1.0 + std::fabs(x))) return next;
    x = next;
  }
  return x;
}

}  // namespace pv
