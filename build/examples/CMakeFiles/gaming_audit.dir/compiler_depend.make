# Empty compiler generated dependencies file for gaming_audit.
# This may be replaced when dependencies are built.
