#pragma once
// Fixed-capacity ring buffer for bounded-memory window storage.
//
// The live meter stage keeps only the last few closed windows of fleet
// state (the circular_buffer idiom from flux's node_power_profile.h):
// capacity is fixed at construction, pushing into a full buffer
// overwrites the oldest entry, and iteration order is oldest-first.
// Nothing here allocates after construction, so peak memory stays
// O(capacity) no matter how many windows a campaign closes.

#include <cstddef>
#include <vector>

#include "util/expects.hpp"

namespace pv {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity) {
    PV_EXPECTS(capacity > 0, "RingBuffer capacity must be positive");
  }

  /// Appends `value`; when full, the oldest entry is overwritten.
  void push(T value) {
    slots_[next_] = std::move(value);
    next_ = (next_ + 1) % slots_.size();
    if (size_ < slots_.size()) ++size_;
  }

  /// Element `i` counted from the oldest retained entry (0 = oldest).
  [[nodiscard]] const T& operator[](std::size_t i) const {
    PV_EXPECTS(i < size_, "RingBuffer index out of range");
    const std::size_t oldest = (next_ + slots_.size() - size_) % slots_.size();
    return slots_[(oldest + i) % slots_.size()];
  }

  [[nodiscard]] const T& back() const {
    PV_EXPECTS(size_ > 0, "RingBuffer::back on empty buffer");
    return slots_[(next_ + slots_.size() - 1) % slots_.size()];
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == slots_.size(); }

  void clear() {
    size_ = 0;
    next_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

}  // namespace pv
