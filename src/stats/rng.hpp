#pragma once
// Deterministic, splittable pseudo-random generation.
//
// Every stochastic component in the library draws from an Rng seeded from a
// (experiment seed, stream id) pair, so fleet simulations are reproducible
// bit-for-bit regardless of thread count: node i always uses stream i.
//
// The generator is xoshiro256** (Blackman & Vigna, public domain algorithm),
// seeded through SplitMix64 as its authors recommend.  It satisfies
// std::uniform_random_bit_generator, so it composes with <random>
// distributions, but the helpers below avoid libstdc++-specific
// distribution quirks for the few distributions we rely on for calibration.

#include <array>
#include <cstdint>
#include <limits>

namespace pv {

/// SplitMix64: a tiny 64-bit generator used for seeding xoshiro streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library-wide PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 from (seed, stream).
  /// Different streams of the same seed are statistically independent.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of mantissa.
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n); n must be > 0.  Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t uniform_index(std::uint64_t n);
  /// Standard normal deviate (Marsaglia polar method, cached pair).
  double normal();
  /// Normal deviate with the given mean and standard deviation (sd >= 0).
  double normal(double mean, double sd);
  /// True with probability p (p in [0, 1]).
  bool bernoulli(double p);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace pv
