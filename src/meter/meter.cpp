#include "meter/meter.hpp"

#include <cmath>

#include "util/expects.hpp"

namespace pv {

MeterAccuracy MeterAccuracy::reference_grade() {
  return {/*gain*/ 0.001, /*offset W*/ 0.1, /*noise*/ 0.0005};
}

MeterAccuracy MeterAccuracy::pdu_grade() {
  return {/*gain*/ 0.01, /*offset W*/ 1.0, /*noise*/ 0.003};
}

MeterAccuracy MeterAccuracy::commodity_grade() {
  return {/*gain*/ 0.015, /*offset W*/ 2.0, /*noise*/ 0.005};
}

MeterAccuracy MeterAccuracy::perfect() { return {0.0, 0.0, 0.0}; }

MeterModel::MeterModel(MeterAccuracy accuracy, MeterMode mode,
                       Seconds interval, Rng& calibration_rng)
    : accuracy_(accuracy), mode_(mode), interval_(interval) {
  PV_EXPECTS(interval.value() > 0.0, "reporting interval must be positive");
  PV_EXPECTS(accuracy.gain_error_sd >= 0.0 && accuracy.offset_error_sd_w >= 0.0 &&
                 accuracy.noise_sd >= 0.0,
             "accuracy parameters must be non-negative");
  gain_ = 1.0 + calibration_rng.normal(0.0, accuracy.gain_error_sd);
  offset_w_ = calibration_rng.normal(0.0, accuracy.offset_error_sd_w);
}

void MeterModel::measure_into(const PowerFunction& truth_w, Seconds t_begin,
                              Seconds t_end, Rng& noise_rng,
                              std::vector<double>& readings) const {
  PV_EXPECTS(truth_w != nullptr, "null ground-truth function");
  PV_EXPECTS(t_end.value() > t_begin.value(), "empty metering window");
  const double dt = interval_.value();
  const auto n = static_cast<std::size_t>(
      std::floor((t_end.value() - t_begin.value()) / dt + 1e-9));
  PV_EXPECTS(n > 0, "window shorter than one reporting interval");

  // The streaming kernels evaluate the exact sample times and quadrature
  // below in a different translation unit; -ffp-contract=off project-wide
  // keeps every multiply-add here and there rounding identically.
  readings.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = t_begin.value() + dt * static_cast<double>(i);
    double truth;
    if (mode_ == MeterMode::kIntegrated) {
      // Average of the signal over the interval via 4-point Gauss-Legendre
      // quadrature — accurate for the smooth-plus-noise profiles we meter.
      truth = 0.0;
      for (int q = 0; q < 4; ++q) {
        truth += gl4::kWs[q] * truth_w(a + gl4::kXs[q] * dt);
      }
    } else {
      truth = truth_w(a + 0.5 * dt);
    }
    readings[i] = apply_errors(truth, noise_rng);
  }
}

PowerTrace MeterModel::measure(const PowerFunction& truth_w, Seconds t_begin,
                               Seconds t_end, Rng& noise_rng) const {
  std::vector<double> readings;
  measure_into(truth_w, t_begin, t_end, noise_rng, readings);
  return PowerTrace(t_begin, interval_, std::move(readings));
}

std::size_t MeterModel::samples_in(TimeWindow w) const {
  if (!w.valid()) return 0;
  return static_cast<std::size_t>(
      std::floor(w.duration().value() / interval_.value() + 1e-9));
}

Joules MeterModel::measure_energy(const PowerFunction& truth_w,
                                  Seconds t_begin, Seconds t_end,
                                  Rng& noise_rng) const {
  return measure(truth_w, t_begin, t_end, noise_rng).energy();
}

}  // namespace pv
