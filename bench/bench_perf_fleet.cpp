// Fleet-scale perf bench for the SoA engine refactor.
//
// Times whole campaigns at 1k / 10k / 100k nodes, each through the fused
// structure-of-arrays fleet kernels (CampaignConfig::fleet_soa, the
// default) and through the per-node scalar path (the pre-refactor hot
// loop, kept as the reference implementation), single-threaded and on 8
// worker threads:
//
//   fleet1k_l1       1k nodes, L1, perfect meters — the smoke scale
//                    run_tier1.sh exercises in the plain tier
//                    (PV_PERF_FLEET_SMOKE=1 runs only this scenario);
//   fleet10k_l1      10k nodes, L1, perfect meters — the gated headline:
//                    check_perf.sh enforces soa-vs-scalar speedup at 8
//                    threads >= the gate_soa_8t carried in the baseline
//                    (2x).  Perfect meters because the per-sample noise
//                    draw (Marsaglia polar, cached pair) is inherently
//                    scalar and identical in both engines — it would only
//                    dilute the kernel ratio being gated;
//   fleet10k_l1_pdu  10k nodes with pdu-grade meters — the realistic mix,
//                    reported and soft-gated only;
//   fleet100k_l3     100k nodes, every node metered, 30 s interval, one
//                    rep — the scale contract: the campaign completes and
//                    peak RSS stays under an absolute ceiling
//                    (O(nodes + windows), never O(total samples)).
//
// Hard in-binary contract: for every scenario the scalar and SoA paths
// (at any thread count) produce byte-identical campaign reports — this
// binary exits 1 otherwise.  Ratios are only *reported* here;
// tools/check_perf.sh compares them to bench/BENCH_perf_fleet_baseline.json.
//
// Env overrides: PV_PERF_REPS (3), PV_PERF_JSON (BENCH_perf_fleet.json),
// PV_PERF_FLEET_SMOKE=1 (run fleet1k_l1 only).

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/campaign.hpp"
#include "core/plan.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace pv;

struct Rig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
};

Rig make_rig(std::size_t nodes, Level level) {
  ScenarioSpec spec;
  spec.name = "fleet-perf-rig";
  spec.nodes = nodes;
  spec.cv = 0.03;
  spec.fleet_seed = 7;
  Scenario built = build_scenario(spec);
  Rig rig;
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);
  rig.plan = built.plan(MethodologySpec::get(level, Revision::kV2015), 11);
  return rig;
}

std::size_t planned_samples(const Rig& rig, const MeterAccuracy& acc,
                            Seconds interval) {
  Rng probe_rng(0);
  const MeterModel probe(acc, rig.plan.meter_mode, interval, probe_rng);
  std::size_t per_node = 0;
  for (const TimeWindow& w : metered_windows(rig.plan, interval)) {
    per_node += probe.samples_in(w);
  }
  return per_node * rig.plan.node_count();
}

bool identical_reports(const CampaignResult& a, const CampaignResult& b) {
  const auto bits = [](const double& x, const double& y) {
    return std::memcmp(&x, &y, sizeof x) == 0;
  };
  if (!bits(a.submitted_power.value(), b.submitted_power.value())) return false;
  if (!bits(a.submitted_energy.value(), b.submitted_energy.value()))
    return false;
  if (a.nodes_measured != b.nodes_measured) return false;
  if (a.node_mean_powers_w.size() != b.node_mean_powers_w.size()) return false;
  for (std::size_t i = 0; i < a.node_mean_powers_w.size(); ++i) {
    if (!bits(a.node_mean_powers_w[i], b.node_mean_powers_w[i])) return false;
  }
  if (!bits(a.node_mean_ci.lo, b.node_mean_ci.lo)) return false;
  if (!bits(a.node_mean_ci.hi, b.node_mean_ci.hi)) return false;
  if (!bits(a.relative_halfwidth, b.relative_halfwidth)) return false;
  if (!bits(a.true_power.value(), b.true_power.value())) return false;
  if (!bits(a.relative_error, b.relative_error)) return false;
  return true;
}

struct Timed {
  CampaignResult result;
  double best_ms = 0.0;
};

Timed run_best_of(const Rig& rig, const CampaignConfig& cfg,
                  std::size_t reps) {
  Timed out;
  out.best_ms = 1e300;
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    CampaignResult res =
        run_campaign(*rig.cluster, *rig.electrical, rig.plan, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    out.best_ms = std::min(
        out.best_ms,
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    out.result = std::move(res);
  }
  return out;
}

struct FleetScenario {
  std::string name;
  std::size_t nodes = 0;
  Level level = Level::kL1;
  MeterAccuracy acc;
  double interval_s = 5.0;
  std::size_t reps = 0;          ///< 0 = the global PV_PERF_REPS
  double gate_soa_8t = 0.0;      ///< hard speedup floor (0 = ungated)
  double rss_ceiling_mb = 0.0;   ///< absolute peak-RSS cap (0 = uncapped)
};

struct FleetResult {
  FleetScenario spec;
  std::size_t samples = 0;
  double scalar1_ms = 0.0;
  double scalar8_ms = 0.0;
  double soa1_ms = 0.0;
  double soa8_ms = 0.0;
  double speedup_soa_1t = 0.0;  ///< scalar@1 / soa@1
  double speedup_soa_8t = 0.0;  ///< scalar@8 / soa@8 (the gated ratio)
  double samples_per_sec = 0.0;  ///< soa@1 throughput
  double makespan_ms = 0.0;      ///< soa@8 end-to-end wall (provision in)
  double peak_rss_mb = 0.0;
  bool identical = false;
};

FleetResult run_fleet_scenario(const FleetScenario& fs,
                               std::size_t default_reps) {
  const std::size_t reps = fs.reps > 0 ? fs.reps : default_reps;
  const Rig rig = make_rig(fs.nodes, fs.level);

  CampaignConfig base;
  base.seed = 5;
  base.meter_accuracy = fs.acc;
  base.meter_interval_override = Seconds{fs.interval_s};

  CampaignConfig scalar1 = base;
  scalar1.fleet_soa = false;
  CampaignConfig scalar8 = scalar1;
  scalar8.threads = 8;
  CampaignConfig soa1 = base;
  soa1.fleet_soa = true;
  CampaignConfig soa8 = soa1;
  soa8.threads = 8;

  const Timed ts1 = run_best_of(rig, scalar1, reps);
  const Timed ts8 = run_best_of(rig, scalar8, reps);
  const Timed tf1 = run_best_of(rig, soa1, reps);
  const Timed tf8 = run_best_of(rig, soa8, reps);

  FleetResult r;
  r.spec = fs;
  r.samples = planned_samples(rig, fs.acc, Seconds{fs.interval_s});
  r.scalar1_ms = ts1.best_ms;
  r.scalar8_ms = ts8.best_ms;
  r.soa1_ms = tf1.best_ms;
  r.soa8_ms = tf8.best_ms;
  r.speedup_soa_1t = ts1.best_ms / tf1.best_ms;
  r.speedup_soa_8t = ts8.best_ms / tf8.best_ms;
  r.samples_per_sec = static_cast<double>(r.samples) / (tf1.best_ms / 1e3);
  r.makespan_ms = tf8.best_ms;
  r.identical = identical_reports(ts1.result, tf1.result) &&
                identical_reports(ts1.result, ts8.result) &&
                identical_reports(ts1.result, tf8.result);
  r.peak_rss_mb = bench::peak_rss_mb();
  return r;
}

void write_json(const std::string& path,
                const std::vector<FleetResult>& results, std::size_t reps) {
  std::ofstream out(path);
  out.precision(6);
  out << "{\n  \"schema\": \"powervar-bench-perf-fleet-v1\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"scenarios\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetResult& r = results[i];
    out << "    \"" << r.spec.name << "\": {\n"
        << "      \"nodes\": " << r.spec.nodes << ",\n"
        << "      \"samples\": " << r.samples << ",\n"
        << "      \"scalar1_ms\": " << r.scalar1_ms << ",\n"
        << "      \"scalar8_ms\": " << r.scalar8_ms << ",\n"
        << "      \"soa1_ms\": " << r.soa1_ms << ",\n"
        << "      \"soa8_ms\": " << r.soa8_ms << ",\n"
        << "      \"speedup_soa_1t\": " << r.speedup_soa_1t << ",\n"
        << "      \"speedup_soa_8t\": " << r.speedup_soa_8t << ",\n";
    if (r.spec.gate_soa_8t > 0.0) {
      out << "      \"gate_soa_8t\": " << r.spec.gate_soa_8t << ",\n";
    }
    if (r.spec.rss_ceiling_mb > 0.0) {
      out << "      \"rss_ceiling_mb\": " << r.spec.rss_ceiling_mb << ",\n";
    }
    out << "      \"samples_per_sec\": " << r.samples_per_sec << ",\n"
        << "      \"makespan_ms\": " << r.makespan_ms << ",\n"
        << "      \"peak_rss_mb\": " << r.peak_rss_mb << ",\n"
        << "      \"identical\": " << (r.identical ? "true" : "false")
        << "\n    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace

int main() {
  bench::banner("perf-fleet",
                "SoA fleet kernels vs the per-node scalar path, 1k-100k nodes");

  const std::size_t reps = bench::env_size("PV_PERF_REPS", 3);
  const bool smoke = bench::env_size("PV_PERF_FLEET_SMOKE", 0) != 0;
  const char* json_env = std::getenv("PV_PERF_JSON");
  const std::string json_path =
      (json_env != nullptr && *json_env != '\0') ? json_env
                                                 : "BENCH_perf_fleet.json";

  // 1 s meter interval at the small scales: the headline ratio gates the
  // window kernels, so the fixed provision cost must not dominate the
  // sampled work (at 5 s an L1 campaign meters only ~36 samples/node and
  // the ratio mostly measures provisioning).
  std::vector<FleetScenario> specs;
  specs.push_back({"fleet1k_l1", 1000, Level::kL1, MeterAccuracy::perfect(),
                   1.0, 0, 0.0, 0.0});
  if (!smoke) {
    specs.push_back({"fleet10k_l1", 10000, Level::kL1,
                     MeterAccuracy::perfect(), 1.0, 0, /*gate=*/2.0, 0.0});
    specs.push_back({"fleet10k_l1_pdu", 10000, Level::kL1,
                     MeterAccuracy::pdu_grade(), 1.0, 0, 0.0, 0.0});
    // 100k nodes, every node metered: one rep — the contract here is
    // completion within an absolute memory ceiling, not a tight ratio.
    specs.push_back({"fleet100k_l3", 100000, Level::kL3,
                     MeterAccuracy::perfect(), 30.0, 1, 0.0,
                     /*rss ceiling=*/1024.0});
  }

  std::vector<FleetResult> results;
  for (const FleetScenario& fs : specs) {
    results.push_back(run_fleet_scenario(fs, reps));
  }

  TextTable t({"scenario", "nodes", "samples", "scalar@1", "soa@1", "soa@8",
               "soa x@1", "soa x@8", "samples/s", "makespan", "peak rss",
               "identical"});
  const auto ms = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f ms", v);
    return std::string(buf);
  };
  const auto x = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2fx", v);
    return std::string(buf);
  };
  const auto mb = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f MB", v);
    return std::string(buf);
  };
  const auto rate = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3g/s", v);
    return std::string(buf);
  };
  for (const FleetResult& r : results) {
    t.add_row({r.spec.name, std::to_string(r.spec.nodes),
               std::to_string(r.samples), ms(r.scalar1_ms), ms(r.soa1_ms),
               ms(r.soa8_ms), x(r.speedup_soa_1t), x(r.speedup_soa_8t),
               rate(r.samples_per_sec), ms(r.makespan_ms),
               mb(r.peak_rss_mb), r.identical ? "yes" : "NO"});
  }
  std::cout << t.render();

  write_json(json_path, results, reps);
  std::cout << "\nwrote " << json_path << " (best of " << reps
            << " reps per variant"
            << (smoke ? ", smoke scale only" : "") << ")\n";

  bool ok = true;
  for (const FleetResult& r : results) {
    if (!r.identical) {
      std::cout << "CONTRACT VIOLATED: " << r.spec.name
                << " scalar and SoA reports differ\n";
      ok = false;
    }
    if (r.spec.rss_ceiling_mb > 0.0 && r.peak_rss_mb > r.spec.rss_ceiling_mb) {
      std::cout << "CONTRACT VIOLATED: " << r.spec.name << " peak RSS "
                << r.peak_rss_mb << " MB above the " << r.spec.rss_ceiling_mb
                << " MB ceiling\n";
      ok = false;
    }
  }
  std::cout << (ok ? "\nall fleet identity/memory contracts hold\n"
                   : "\nsome contracts VIOLATED\n");
  return ok ? 0 : 1;
}
