// §4 intro example — the accuracy the old 1/64 rule actually delivers on a
// small vs a large machine (210 vs 18,688 nodes, sigma/mu = 2%), plus the
// t-vs-z narrowing claim of §4.2, verified against Monte-Carlo.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/sample_size.hpp"
#include "stats/special.hpp"
#include "sim/fleet.hpp"
#include "stats/sampling.hpp"
#include "util/mathx.hpp"
#include "util/table.hpp"

int main() {
  using namespace pv;
  bench::banner("§4 intro example",
                "accuracy of the 1/64 rule vs system size (cv = 2%)");

  TextTable t({"N (nodes)", "1/64 rule n", "lambda @95% (t)",
               "2015 rule n", "lambda @95% (t)", "paper (old rule)"});
  struct Case {
    std::size_t n_total;
    const char* paper;
  };
  for (const Case c : {Case{210, "3.2%"}, Case{18688, "0.2%"}}) {
    const std::size_t n_old = rule_1_64(c.n_total);
    const std::size_t n_new = rule_2015(c.n_total);
    t.add_row({fmt_group(static_cast<long long>(c.n_total)),
               std::to_string(n_old),
               fmt_percent(achievable_accuracy(0.05, 0.02, n_old, c.n_total), 1),
               std::to_string(n_new),
               fmt_percent(achievable_accuracy(0.05, 0.02, n_new, c.n_total), 1),
               c.paper});
  }
  std::cout << t.render();

  // Monte-Carlo confirmation: empirical 97.5th percentile of |error|.
  bench::banner("§4 intro example (Monte-Carlo)",
                "empirical |extrapolation error| quantiles");
  const std::size_t trials = bench::env_size("PV_RULE164_TRIALS", 20000);
  TextTable mc({"N", "n", "empirical 95% |error|", "formula lambda"});
  for (std::size_t n_total : {std::size_t{210}, std::size_t{18688}}) {
    FleetVariability var = FleetVariability::typical_cpu().scaled_to(0.02);
    var.outlier_prob = 0.0;
    const auto fleet = generate_node_powers(n_total, 500.0, var, 7);
    const double mu = mean_of(fleet);
    const std::size_t n = rule_1_64(n_total);
    Rng rng(11);
    std::vector<double> errs;
    errs.reserve(trials);
    for (std::size_t tr = 0; tr < trials; ++tr) {
      const auto idx = sample_without_replacement(rng, n_total, n);
      errs.push_back(std::fabs(mean_of(gather(fleet, idx)) - mu) / mu);
    }
    std::sort(errs.begin(), errs.end());
    const double q95 = errs[static_cast<std::size_t>(0.95 * (errs.size() - 1))];
    mc.add_row({fmt_group(static_cast<long long>(n_total)), std::to_string(n),
                fmt_percent(q95, 2),
                fmt_percent(achievable_accuracy(0.05, 0.02, n, n_total), 2)});
  }
  std::cout << mc.render();

  bench::banner("§4.2", "z-vs-t confidence-interval narrowing");
  TextTable zt({"n", "t_{n-1,0.975}", "z_{0.975}", "narrowing"});
  for (std::size_t n : {std::size_t{4}, std::size_t{10}, std::size_t{15},
                        std::size_t{20}, std::size_t{50}}) {
    zt.add_row({std::to_string(n),
                fmt_fixed(t_critical(0.05, static_cast<double>(n - 1)), 4),
                fmt_fixed(z_critical(0.05), 4),
                fmt_percent(z_vs_t_narrowing(n, 0.05), 1)});
  }
  std::cout << zt.render();
  std::cout << "\nPaper: for n = 15 the z approximation yields 95% CIs ~9% "
               "too narrow — row above reads "
            << fmt_percent(z_vs_t_narrowing(15, 0.05), 1) << ".\n";
  return 0;
}
