// Tests for the TCO energy-cost projection.

#include "core/tco.hpp"

#include <gtest/gtest.h>

#include "util/expects.hpp"

namespace pv {
namespace {

TEST(Tco, HandComputedProjection) {
  // 1 MW, PUE 1.0, 100% duty, 1 year, 0.10/kWh:
  // 1000 kW * 8766 h * 0.10 = 876,600.
  TcoParams p;
  p.electricity_cost_per_kwh = 0.10;
  p.pue = 1.0;
  p.duty_cycle = 1.0;
  p.years = 1.0;
  const TcoEstimate est = project_energy_cost(megawatts(1.0), 0.0, p);
  EXPECT_NEAR(est.annual_energy_cost, 876600.0, 1e-6);
  EXPECT_NEAR(est.lifetime_energy_cost, 876600.0, 1e-6);
  EXPECT_DOUBLE_EQ(est.lifetime_cost_ci.lo, est.lifetime_cost_ci.hi);
}

TEST(Tco, PueAndDutyCycleScaleLinearly) {
  TcoParams base;
  base.pue = 1.0;
  base.duty_cycle = 1.0;
  TcoParams facility = base;
  facility.pue = 1.5;
  facility.duty_cycle = 0.8;
  const double a =
      project_energy_cost(kilowatts(100.0), 0.0, base).annual_energy_cost;
  const double b =
      project_energy_cost(kilowatts(100.0), 0.0, facility).annual_energy_cost;
  EXPECT_NEAR(b / a, 1.5 * 0.8, 1e-12);
}

TEST(Tco, MeasurementAccuracyPropagatesToCost) {
  // §1: a 20% power variation is a 20% electricity-cost variation.
  const TcoEstimate est =
      project_energy_cost(megawatts(2.0), 0.20, TcoParams{});
  EXPECT_NEAR(est.lifetime_cost_ci.hi / est.lifetime_energy_cost, 1.20, 1e-12);
  EXPECT_NEAR(est.lifetime_cost_ci.lo / est.lifetime_energy_cost, 0.80, 1e-12);
  EXPECT_NEAR(est.lifetime_cost_ci.width(), 0.4 * est.lifetime_energy_cost,
              1e-6);
}

TEST(Tco, CostPerAccuracyPoint) {
  const TcoEstimate est =
      project_energy_cost(megawatts(1.0), 0.05, TcoParams{});
  EXPECT_NEAR(est.cost_per_accuracy_point, est.lifetime_energy_cost * 0.01,
              1e-9);
  // 5 points of accuracy are worth 5x one point.
  EXPECT_NEAR(0.5 * est.lifetime_cost_ci.width(),
              5.0 * est.cost_per_accuracy_point, 1e-6);
}

TEST(Tco, DomainChecks) {
  EXPECT_THROW(project_energy_cost(Watts{0.0}, 0.0, TcoParams{}),
               contract_error);
  EXPECT_THROW(project_energy_cost(Watts{100.0}, 1.0, TcoParams{}),
               contract_error);
  TcoParams bad;
  bad.pue = 0.9;
  EXPECT_THROW(project_energy_cost(Watts{100.0}, 0.0, bad), contract_error);
  bad = TcoParams{};
  bad.duty_cycle = 0.0;
  EXPECT_THROW(project_energy_cost(Watts{100.0}, 0.0, bad), contract_error);
  bad = TcoParams{};
  bad.years = -1.0;
  EXPECT_THROW(project_energy_cost(Watts{100.0}, 0.0, bad), contract_error);
}

}  // namespace
}  // namespace pv
