// powervar — command-line front end for the measurement methodology.
//
//   powervar sample-size --nodes N --cv F --lambda F [--alpha F]
//       Required metered-node counts under every rule (Eq. 5, 1/64, 2015,
//       Chebyshev, Hoeffding).
//
//   powervar accuracy --nodes N --cv F --n K [--alpha F]
//       Achievable relative accuracy with K metered nodes (Eq. 1, t-based).
//
//   powervar audit --trace FILE --core-begin S --core-end S
//       Window-gaming audit of a wall-power CSV trace (t_s,power_w rows):
//       honest core-phase average vs best/worst legal v1.2 L1 windows.
//
//   powervar normality --values FILE [--alpha F]
//       Jarque-Bera + Anderson-Darling normality check of a per-node power
//       sample (one value per line) — the §4.2 pilot-sample sanity check.
//
//   powervar tco --power-kw F --accuracy F [--cost-per-kwh F] [--pue F]
//                [--duty F] [--years F]
//       Energy-cost projection with measurement uncertainty propagated.
//
//   powervar campaign --nodes N --cv F --level 1|2|3 [--seed S]
//                     [--faults none|mild|harsh] [--dropout F] [--dead N]
//                     [--byzantine F] [--reconcile 1] [--threads N]
//                     [--engine eager|streaming] [--live] [--live-every S]
//       Simulates a full measurement campaign on a synthetic cluster and
//       prints the accuracy assessment; with faults, also the data-quality
//       block (meters lost, coverage, repairs).  --live runs the
//       bounded-memory window-major engine and streams partial assessment
//       documents (JSON lines) to stdout as the campaign advances — every
//       --live-every virtual seconds, or at every closed window when
//       omitted — before the final (byte-identical) report.
//
//   powervar reconcile --nodes N [--cv F] [--seed S] [--byzantine F]
//                      [--defend 0|1] [--windows K] [--threads N]
//       Byzantine-defense demonstration: a Level 3 campaign (every node
//       metered) with a fraction of meters forced to lie (gain drift,
//       unit mixups, clock skew, recalibration steps), cross-validated
//       against the meter hierarchy, quarantined and reconciled.  The
//       report gains an integrity block; --defend 0 shows the undefended
//       damage.
//
//   powervar collect --nodes N [--cv F] [--level 1|2|3] [--seed S]
//                    [--drop F] [--dup F] [--blackhole F] [--dead N]
//                    [--latency MS] [--jitter MS] [--timeout S]
//                    [--retries K] [--chunk S] [--breaker-after K]
//                    [--cooldown S] [--threads N] [--interval S]
//                    [--checkpoint FILE] [--resume 1] [--crash-after K]
//       Same synthetic campaign, collected through the asynchronous
//       pipeline: flaky transport, retry/backoff, circuit breakers, and a
//       crash-safe journal.  The accuracy report goes to stdout (it is
//       byte-identical between a clean run and a kill-and-resume pair);
//       collection progress goes to stderr.
//
//   powervar serve --requests FILE|- [--resume CHECKPOINT] [--stream]
//                  [--once] [--workers N] [--queue N] [--tenant-queue N]
//                  [--deadline-ms MS] [--retry-after S] [--cache N]
//                  [--strict-cache] [--cache-dir DIR] [--checkpoint FILE]
//                  [--drain-after K] [--crash-after K] [--json]
//                  [--chaos-* ...]
//       The resident campaign service.  Each input line is a
//       powervar-request-v1 JSON object; each gets exactly one
//       powervar-response-v1 line — in submission order by default, or
//       in completion order tagged with a "seq" submission index under
//       --stream — then a drain report.  Admission is bounded globally
//       (--queue) and per tenant (--tenant-queue, fair-share dispatch by
//       the request's tenant/priority fields), deadlines cooperative
//       (--deadline-ms), Provision artifacts cached, CRC-revalidated and
//       optionally spilled to a persistent tier (--cache/--strict-cache/
//       --cache-dir), drained work checkpointed to the WAL
//       (--checkpoint, --drain-after K holds all but the first K
//       submissions for the drain), and --resume CHECKPOINT replays a
//       drain journal — byte-identical responses under the original
//       ids/seeds, torn or foreign journals refused.  --crash-after K
//       simulates dying mid-drain after K checkpoint appends (exit 3).
//       Exit code is the worst outcome: 8 checkpoint refused, 7 corrupt
//       cache refused, 6 deadline exceeded, 5 shed, 3 simulated crash,
//       1 other failures, 0 all ok.

#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "collect/collector.hpp"
#include "core/baselines.hpp"
#include "service/request.hpp"
#include "service/service.hpp"
#include "core/campaign.hpp"
#include "core/gaming.hpp"
#include "core/report.hpp"
#include "core/sample_size.hpp"
#include "core/scenario.hpp"
#include "core/tco.hpp"
#include "sim/fleet.hpp"
#include "stats/normality.hpp"
#include "trace/io.hpp"
#include "util/table.hpp"
#include "workload/profiles.hpp"

namespace {

using namespace pv;

/// A bad command line (as opposed to a campaign that ran and failed):
/// maps to the usage text and exit code 2.
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Strict --key value / --key=value argument map.  Numbers must parse in
/// full (no silent atof-to-zero), rates must land in [0, 1], and every
/// option needs a value — violations throw and the CLI exits non-zero.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    // Boolean switches that may appear bare (no value); anything else
    // keeps the strict --key value contract.
    static const std::set<std::string> kBareFlags = {
        "json", "trace-stages", "once",        "strict-cache",
        "stream", "live",       "scalar-fleet"};
    for (int i = first; i < argc; ++i) {
      const std::string token = argv[i];
      if (token.rfind("--", 0) != 0 || token.size() <= 2) {
        throw std::runtime_error("expected --option, got '" + token + "'");
      }
      const std::string body = token.substr(2);
      const std::size_t eq = body.find('=');
      if (eq != std::string::npos) {
        values_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (kBareFlags.contains(body) &&
                 (i + 1 >= argc ||
                  std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        values_[body] = "1";
      } else {
        if (i + 1 >= argc) {
          throw std::runtime_error("option " + token + " is missing a value");
        }
        values_[body] = argv[++i];
      }
    }
  }

  [[nodiscard]] double number(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::runtime_error("missing required option --" + key);
    }
    used_.insert(key);
    return parse_number(key, it->second);
  }
  [[nodiscard]] double number_or(const std::string& key, double fallback) const {
    used_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : parse_number(key, it->second);
  }
  /// A boolean switch: bare `--key`, `--key 1` and `--key=1` all enable.
  [[nodiscard]] bool flag_or(const std::string& key,
                             bool fallback = false) const {
    return number_or(key, fallback ? 1.0 : 0.0) > 0.0;
  }
  /// A probability/fraction knob: a number constrained to [0, 1].
  [[nodiscard]] double rate_or(const std::string& key, double fallback) const {
    const double v = number_or(key, fallback);
    if (v < 0.0 || v > 1.0) {
      throw std::runtime_error("option --" + key + " must be in [0, 1], got " +
                               std::to_string(v));
    }
    return v;
  }
  [[nodiscard]] std::string text(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::runtime_error("missing required option --" + key);
    }
    used_.insert(key);
    return it->second;
  }
  [[nodiscard]] std::string text_or(const std::string& key,
                                    const std::string& fallback) const {
    used_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  /// Call once every option has been read: a leftover key means a typo'd
  /// or misplaced flag, which must fail loudly rather than silently run
  /// with defaults.
  void reject_unknown() const {
    for (const auto& [key, value] : values_) {
      if (!used_.contains(key)) {
        throw std::runtime_error("unknown option --" + key);
      }
    }
  }

 private:
  static double parse_number(const std::string& key, const std::string& raw) {
    const char* begin = raw.c_str();
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || errno == ERANGE) {
      throw std::runtime_error("option --" + key + " expects a number, got '" +
                               raw + "'");
    }
    return v;
  }

  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

int cmd_sample_size(const Args& args) {
  const auto nodes = static_cast<std::size_t>(args.number("nodes"));
  const double cv = args.number("cv");
  const double lambda = args.number("lambda");
  const double alpha = args.number_or("alpha", 0.05);
  args.reject_unknown();

  TextTable t({"rule", "metered nodes"});
  t.add_row({"Equation 5 (paper)",
             std::to_string(required_sample_size(alpha, lambda, cv, nodes))});
  t.add_row({"old 1/64 rule", std::to_string(rule_1_64(nodes))});
  t.add_row({"2015 rule max(16, 10%)", std::to_string(rule_2015(nodes))});
  t.add_row({"Chebyshev (distribution-free)",
             std::to_string(chebyshev_required_sample_size(alpha, lambda, cv))});
  t.add_row({"Hoeffding (6-sigma range)",
             std::to_string(hoeffding_required_sample_size(
                 alpha, lambda, 1.0, 6.0 * cv))});
  std::cout << "N = " << nodes << ", sigma/mu = " << fmt_percent(cv, 2)
            << ", target lambda = " << fmt_percent(lambda, 2)
            << " at confidence " << fmt_percent(1.0 - alpha, 0) << "\n\n"
            << t.render();
  return 0;
}

int cmd_accuracy(const Args& args) {
  const auto nodes = static_cast<std::size_t>(args.number("nodes"));
  const double cv = args.number("cv");
  const auto n = static_cast<std::size_t>(args.number("n"));
  const double alpha = args.number_or("alpha", 0.05);
  args.reject_unknown();
  const double lambda = achievable_accuracy(alpha, cv, n, nodes);
  std::cout << "metering " << n << " of " << nodes << " nodes (sigma/mu "
            << fmt_percent(cv, 2) << "): +/-" << fmt_percent(lambda, 2)
            << " at " << fmt_percent(1.0 - alpha, 0) << " confidence\n";
  return 0;
}

int cmd_audit(const Args& args) {
  const PowerTrace trace = load_trace_csv(args.text("trace"));
  RunPhases run;
  if (args.number_or("auto-phases", 0.0) > 0.0) {
    const TimeWindow core =
        detect_core_phase(trace, args.number_or("phase-threshold", 0.5));
    run.setup = Seconds{core.begin.value() - trace.t0().value()};
    run.core = core.duration();
    std::cout << "detected core phase: [" << to_string(core.begin) << ", "
              << to_string(core.end) << ")\n";
  } else {
    const double begin = args.number("core-begin");
    const double end = args.number("core-end");
    run.setup = Seconds{begin - trace.t0().value()};
    run.core = Seconds{end - begin};
  }
  args.reject_unknown();
  const auto g = analyze_window_gaming(trace, run);
  TextTable t({"quantity", "value"});
  t.add_row({"core phase average", to_string(g.full_core_avg)});
  t.add_row({"best legal window", to_string(g.best_window.mean)});
  t.add_row({"  at t =", to_string(g.best_window.window.begin)});
  t.add_row({"worst legal window", to_string(g.worst_window.mean)});
  t.add_row({"best-window reduction", fmt_percent(g.best_reduction, 1)});
  t.add_row({"legal-window spread", fmt_percent(g.spread, 1)});
  std::cout << t.render();
  std::cout << (g.best_reduction > 0.02
                    ? "verdict: window choice materially affects this run; "
                      "require the full core phase.\n"
                    : "verdict: profile is flat; window choice immaterial.\n");
  return 0;
}

int cmd_normality(const Args& args) {
  std::ifstream f(args.text("values"));
  if (!f) throw std::runtime_error("cannot open values file");
  std::vector<double> xs;
  double v;
  while (f >> v) xs.push_back(v);
  if (xs.size() < 8) throw std::runtime_error("need at least 8 values");
  const double alpha = args.number_or("alpha", 0.05);
  args.reject_unknown();
  const NormalityResult jb = jarque_bera(xs);
  const NormalityResult ad = anderson_darling(xs);
  TextTable t({"test", "statistic", "p-value", "verdict"});
  const auto verdict = [&](const NormalityResult& r) {
    return r.consistent_with_normal(alpha)
               ? std::string("consistent with normal")
               : std::string("REJECTS normality");
  };
  t.add_row({"Jarque-Bera", fmt_fixed(jb.statistic, 3),
             fmt_fixed(jb.p_value, 4), verdict(jb)});
  t.add_row({"Anderson-Darling", fmt_fixed(ad.statistic, 3),
             fmt_fixed(ad.p_value, 4), verdict(ad)});
  std::cout << "n = " << xs.size() << "\n" << t.render();
  std::cout << "(If normality is rejected, validate the sample-size rule by\n"
               "bootstrap coverage before trusting Equation 5 — see §4.2.)\n";
  return 0;
}

int cmd_tco(const Args& args) {
  TcoParams p;
  p.electricity_cost_per_kwh = args.number_or("cost-per-kwh", 0.15);
  p.pue = args.number_or("pue", 1.4);
  p.duty_cycle = args.number_or("duty", 0.85);
  p.years = args.number_or("years", 5.0);
  const TcoEstimate est = project_energy_cost(
      kilowatts(args.number("power-kw")), args.number("accuracy"), p);
  args.reject_unknown();
  TextTable t({"quantity", "value"});
  t.add_row({"annual energy cost", fmt_fixed(est.annual_energy_cost, 0)});
  t.add_row({"lifetime energy cost", fmt_fixed(est.lifetime_energy_cost, 0)});
  t.add_row({"uncertainty band",
             "[" + fmt_fixed(est.lifetime_cost_ci.lo, 0) + ", " +
                 fmt_fixed(est.lifetime_cost_ci.hi, 0) + "]"});
  t.add_row({"value of 1 accuracy point",
             fmt_fixed(est.cost_per_accuracy_point, 0)});
  std::cout << t.render();
  return 0;
}

/// The synthetic campaign rig shared by `campaign` and `collect`: a
/// FIRESTARTER-style constant-load run, typical CPU fleet spread scaled to
/// the requested cv, planned per the requested methodology level.
struct SyntheticRig {
  std::unique_ptr<ClusterPowerModel> cluster;
  std::unique_ptr<SystemPowerModel> electrical;
  MeasurementPlan plan;
  std::uint64_t seed = 1;
};

SyntheticRig make_synthetic_rig(const Args& args, int default_level = 1) {
  const auto nodes = static_cast<std::size_t>(args.number("nodes"));
  if (nodes < 2) throw std::runtime_error("--nodes must be >= 2");
  const int level =
      static_cast<int>(args.number_or("level", default_level));
  if (level < 1 || level > 3) {
    throw std::runtime_error("--level must be 1, 2 or 3");
  }
  SyntheticRig rig;
  rig.seed = static_cast<std::uint64_t>(args.number_or("seed", 1.0));

  ScenarioSpec scenario;
  scenario.nodes = nodes;
  scenario.cv = args.number_or("cv", 0.02);
  scenario.fleet_seed = rig.seed ^ 0x99;  // historical mixing, kept as-is
  Scenario built = build_scenario(scenario);
  rig.cluster = std::move(built.cluster);
  rig.electrical = std::move(built.electrical);

  const Level lvl = level == 3   ? Level::kL3
                    : level == 2 ? Level::kL2
                                 : Level::kL1;
  const auto spec = MethodologySpec::get(lvl, Revision::kV2015);
  rig.plan = built.plan(spec, rig.seed);
  return rig;
}

int cmd_campaign(const Args& args) {
  const SyntheticRig rig = make_synthetic_rig(args);

  CampaignConfig config;
  config.seed = rig.seed;
  config.meter_interval_override = Seconds{args.number_or("interval", 0.0)};

  // Fault knobs: a named preset, optionally overridden field by field.
  const std::string preset = args.text_or("faults", "none");
  if (preset == "mild") {
    config.faults.spec = FaultSpec::mild();
  } else if (preset == "harsh") {
    config.faults.spec = FaultSpec::harsh();
  } else if (preset != "none") {
    throw std::runtime_error("--faults must be none, mild or harsh");
  }
  config.faults.spec.dropout_prob =
      args.rate_or("dropout", config.faults.spec.dropout_prob);
  const auto dead = static_cast<std::size_t>(args.number_or("dead", 0.0));
  for (std::size_t i = 0; i < dead && i < rig.plan.node_indices.size(); ++i) {
    config.faults.dead_meters.push_back(rig.plan.node_indices[i]);
  }
  force_byzantine_meters(config, rig.plan, args.rate_or("byzantine", 0.0));
  config.reconcile.enabled = args.number_or("reconcile", 0.0) > 0.0;
  // --threads drives both the node-metering fan-out and (when
  // reconciling) the cross-validation pool.
  const auto threads =
      static_cast<unsigned>(args.number_or("threads", 0.0));
  config.reconcile.threads = threads;
  config.threads = std::max<std::size_t>(1, threads);
  const std::string engine = args.text_or("engine", "streaming");
  if (engine == "eager") {
    config.engine = CampaignEngine::kEager;
  } else if (engine != "streaming") {
    throw std::runtime_error("--engine must be eager or streaming");
  }
  // The fused SoA fleet kernels are the default; --scalar-fleet forces
  // the per-node path (the check_determinism.sh differential uses this —
  // both paths must report identical bytes).
  config.fleet_soa = !args.flag_or("scalar-fleet");
  // Live (bounded-memory) mode: partial assessment documents stream to
  // stdout as JSON lines while the campaign runs; the final document
  // (printed last) is byte-identical to a non-live run's.
  config.live.enabled = args.flag_or("live");
  const double live_every = args.number_or("live-every", 0.0);
  if (live_every > 0.0 && !config.live.enabled) {
    throw std::runtime_error("--live-every requires --live");
  }
  if (live_every < 0.0) {
    throw std::runtime_error("--live-every must be >= 0");
  }
  config.live.emit_every_s = live_every;
  if (config.live.enabled) {
    config.live_sink = [](const std::string& line) { std::cout << line; };
  }
  const bool json = args.flag_or("json");
  ReportOptions ropts;
  ropts.trace_stages = args.flag_or("trace-stages");
  args.reject_unknown();

  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  const Document doc = assessment_document(rig.plan, result, ropts);
  std::cout << (json ? render_json(doc) : render_text(doc));
  return 0;
}

int cmd_reconcile(const Args& args) {
  // Level 3 by default: full node metering gives reconciliation both the
  // sibling cohort and fully metered racks to cross-validate.
  const SyntheticRig rig = make_synthetic_rig(args, /*default_level=*/3);

  CampaignConfig config;
  config.seed = rig.seed;
  config.meter_interval_override = Seconds{args.number_or("interval", 0.0)};
  force_byzantine_meters(config, rig.plan, args.rate_or("byzantine", 0.05));
  config.reconcile.enabled = args.number_or("defend", 1.0) > 0.0;
  config.reconcile.analysis_windows =
      static_cast<std::size_t>(args.number_or("windows", 16.0));
  config.reconcile.threads =
      static_cast<unsigned>(args.number_or("threads", 0.0));
  const bool json = args.flag_or("json");
  ReportOptions ropts;
  ropts.trace_stages = args.flag_or("trace-stages");
  args.reject_unknown();

  const auto result =
      run_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  const Document doc = assessment_document(rig.plan, result, ropts);
  std::cout << (json ? render_json(doc) : render_text(doc));
  return 0;
}

int cmd_collect(const Args& args) {
  const SyntheticRig rig = make_synthetic_rig(args);

  CollectorConfig config;
  config.campaign.seed = rig.seed;
  config.campaign.meter_interval_override =
      Seconds{args.number_or("interval", 0.0)};

  config.transport.latency.base_s = args.number_or("latency", 20.0) / 1000.0;
  config.transport.latency.jitter_s = args.number_or("jitter", 30.0) / 1000.0;
  config.transport.drop_prob = args.rate_or("drop", 0.0);
  config.transport.duplicate_prob = args.rate_or("dup", 0.0);
  config.transport.blackhole_fraction = args.rate_or("blackhole", 0.0);
  const auto dead = static_cast<std::size_t>(args.number_or("dead", 0.0));
  for (std::size_t i = 0; i < dead && i < rig.plan.node_indices.size(); ++i) {
    config.campaign.faults.dead_meters.push_back(rig.plan.node_indices[i]);
  }

  config.poller.timeout_s = args.number_or("timeout", 1.0);
  config.poller.max_attempts =
      static_cast<std::size_t>(args.number_or("retries", 2.0)) + 1;
  config.poller.chunk_duration = Seconds{args.number_or("chunk", 60.0)};
  config.poller.breaker.open_after =
      static_cast<std::size_t>(args.number_or("breaker-after", 3.0));
  config.poller.breaker.cooldown_s = args.number_or("cooldown", 60.0);

  config.journal_path = args.text_or("checkpoint", "");
  config.resume = args.number_or("resume", 0.0) > 0.0;
  config.crash_after_meters =
      static_cast<std::size_t>(args.number_or("crash-after", 0.0));
  config.threads = static_cast<unsigned>(args.number_or("threads", 4.0));
  const bool json = args.flag_or("json");
  ReportOptions ropts;
  ropts.trace_stages = args.flag_or("trace-stages");
  args.reject_unknown();

  const CollectionOutcome outcome =
      collect_campaign(*rig.cluster, *rig.electrical, rig.plan, config);
  // Progress to stderr; the report alone on stdout so a clean run and a
  // kill-and-resume pair diff byte-identical.
  std::cerr << "collect: " << outcome.meters_polled << " meters polled, "
            << outcome.meters_resumed << " resumed from journal";
  if (outcome.journal_torn_lines > 0) {
    std::cerr << ", " << outcome.journal_torn_lines << " torn journal lines";
  }
  std::cerr << "\n";
  const Document doc = assessment_document(rig.plan, outcome.result, ropts);
  std::cout << (json ? render_json(doc) : render_text(doc));
  return 0;
}

/// Severity order for the batch exit code: the worst thing that happened
/// to any request wins.  Corrupt cache (refused data) outranks a blown
/// deadline outranks load shedding outranks other failures.
int serve_exit_code(const std::vector<ServiceResponse>& responses) {
  int worst = 0;
  for (const auto& resp : responses) {
    int rank = 0;
    switch (resp.code) {
      case ResponseCode::kOk:
      case ResponseCode::kCheckpointed:
        rank = 0;
        break;
      case ResponseCode::kCacheCorrupt:
        rank = 7;
        break;
      case ResponseCode::kDeadlineExceeded:
        rank = 6;
        break;
      case ResponseCode::kShed:
        rank = 5;
        break;
      default:
        rank = 1;
        break;
    }
    worst = std::max(worst, rank);
  }
  return worst;
}

/// One response as its human-readable line.  `seq` tags streaming-mode
/// lines with the request's submission index ("#N "), mirroring the
/// JSON rendering's "seq" field.
void print_response_text(const ServiceResponse& resp, long seq = -1) {
  if (seq >= 0) std::cout << "#" << seq << " ";
  std::cout << "request " << (resp.id.empty() ? "(invalid)" : resp.id) << ": "
            << to_string(resp.code);
  if (resp.code == ResponseCode::kShed) {
    std::cout << " (retry after " << fmt_fixed(resp.retry_after_s, 1) << "s)";
  }
  if (!resp.fault_injected.empty()) {
    std::cout << " [chaos: " << resp.fault_injected << "]";
  }
  if (!resp.message.empty()) std::cout << " — " << resp.message;
  std::cout << "\n";
}

void print_drain_report(const DrainReport& report, bool json) {
  if (json) {
    std::cout << "{\"schema\":\"powervar-drain-v1\",\"submitted\":"
              << report.submitted << ",\"invalid\":" << report.invalid
              << ",\"shed\":" << report.shed
              << ",\"admitted\":" << report.admitted
              << ",\"completed\":" << report.completed
              << ",\"checkpointed\":" << report.checkpointed
              << ",\"workers_replaced\":" << report.workers_replaced
              << ",\"cache\":{\"hits\":" << report.cache.hits
              << ",\"misses\":" << report.cache.misses
              << ",\"quarantined\":" << report.cache.quarantined
              << ",\"evicted\":" << report.cache.evicted
              << ",\"disk_hits\":" << report.cache.disk_hits
              << ",\"spills\":" << report.cache.spills << "}";
    // std::map iteration: tenants render sorted by name, deterministic.
    std::cout << ",\"tenants\":{";
    bool first = true;
    for (const auto& [tenant, t] : report.tenants) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "\"" << tenant << "\":{\"submitted\":" << t.submitted
                << ",\"shed\":" << t.shed << ",\"admitted\":" << t.admitted
                << ",\"completed\":" << t.completed
                << ",\"checkpointed\":" << t.checkpointed << "}";
    }
    std::cout << "}}\n";
  } else {
    std::cout << "drain: " << report.submitted << " submitted, "
              << report.invalid << " invalid, " << report.shed << " shed, "
              << report.admitted << " admitted, " << report.completed
              << " completed, " << report.checkpointed << " checkpointed, "
              << report.workers_replaced << " workers replaced; cache "
              << report.cache.hits << " hits / " << report.cache.misses
              << " misses / " << report.cache.quarantined
              << " quarantined / " << report.cache.evicted << " evicted / "
              << report.cache.disk_hits << " disk hits / "
              << report.cache.spills << " spills\n";
    for (const auto& [tenant, t] : report.tenants) {
      std::cout << "tenant " << tenant << ": " << t.submitted
                << " submitted, " << t.shed << " shed, " << t.admitted
                << " admitted, " << t.completed << " completed, "
                << t.checkpointed << " checkpointed\n";
    }
  }
}

int cmd_serve(const Args& args) {
  std::string requests_path;
  std::string resume_path;
  ServiceConfig config;
  bool json = false;
  bool stream = false;
  double drain_after = -1.0;  // < 0: disabled; K >= 0: hold past the Kth
  try {
    resume_path = args.text_or("resume", "");
    requests_path = args.text_or("requests", "");
    if (requests_path.empty() && resume_path.empty()) {
      throw std::runtime_error("missing required option --requests");
    }
    config.workers = static_cast<unsigned>(args.number_or("workers", 2.0));
    config.max_queue = static_cast<std::size_t>(args.number_or("queue", 8.0));
    config.default_deadline_ms = args.number_or("deadline-ms", 0.0);
    config.retry_after_s = args.number_or("retry-after", 1.0);
    config.cache_capacity =
        static_cast<std::size_t>(args.number_or("cache", 8.0));
    config.strict_cache = args.flag_or("strict-cache");
    config.cache_dir = args.text_or("cache-dir", "");
    config.checkpoint_path = args.text_or("checkpoint", "");
    config.tenant_queue =
        static_cast<std::size_t>(args.number_or("tenant-queue", 0.0));
    config.crash_after_checkpoints =
        static_cast<std::size_t>(args.number_or("crash-after", 0.0));
    drain_after = args.number_or("drain-after", -1.0);
    config.chaos.seed =
        static_cast<std::uint64_t>(args.number_or("chaos-seed", 0.0));
    config.chaos.throw_prob = args.rate_or("chaos-throw", 0.0);
    config.chaos.stall_prob = args.rate_or("chaos-stall", 0.0);
    config.chaos.cache_corrupt_prob = args.rate_or("chaos-cache", 0.0);
    config.chaos.worker_death_prob = args.rate_or("chaos-death", 0.0);
    config.chaos.drain_after =
        static_cast<std::size_t>(args.number_or("chaos-drain-after", 0.0));
    json = args.flag_or("json");
    stream = args.flag_or("stream");
    // Accepted for forward compatibility: the CLI always runs one batch
    // (submit every line, answer every ticket, drain) — a resident
    // deployment drives CampaignService directly.
    (void)args.flag_or("once");
    if (config.crash_after_checkpoints > 0 && config.checkpoint_path.empty()) {
      throw std::runtime_error("--crash-after needs a --checkpoint journal");
    }
    args.reject_unknown();
  } catch (const std::exception& e) {
    // Everything above is command-line validation, not campaign failure.
    throw UsageError(e.what());
  }

  // The cache treats an unusable directory as memory-only; the CLI's
  // job is to make a merely-absent one usable.  Best effort: if the
  // path cannot be created the batch still runs, just without spills.
  if (!config.cache_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config.cache_dir, ec);
  }

  std::ifstream file;
  std::istream* in = nullptr;
  if (!requests_path.empty()) {
    if (requests_path == "-") {
      in = &std::cin;
    } else {
      file.open(requests_path);
      if (!file) {
        throw UsageError("cannot open requests file '" + requests_path + "'");
      }
      in = &file;
    }
  }

  CampaignService service(config);

  // The streaming front-end prints each response the moment it
  // completes, tagged with its submission index ("seq"), from a single
  // consumer thread; batch mode collects everything and prints in
  // submission order.  Either way the transcript is a deterministic
  // *set* of lines.
  std::vector<ServiceResponse> responses;  // for the exit code
  std::mutex resp_mu;
  std::thread consumer;
  if (stream) {
    consumer = std::thread([&] {
      while (const auto ticket = service.next_completed()) {
        const ServiceResponse resp = service.wait(*ticket);
        if (json) {
          std::cout << render_response_json(resp, *ticket) << "\n";
        } else {
          print_response_text(resp, static_cast<long>(*ticket));
        }
        std::cout.flush();
        std::unique_lock lock(resp_mu);
        responses.push_back(resp);
      }
    });
  }

  // Submission sequence: resumed checkpoint records first (their WAL
  // order), then the request file.  --drain-after K dispatches the first
  // K submissions normally and admits the rest held-for-drain, making
  // the completed-vs-checkpointed split deterministic at any worker
  // count.
  std::vector<std::size_t> tickets;
  std::vector<std::size_t> dispatched;
  const auto held = [&] {
    return drain_after >= 0.0 &&
           tickets.size() >= static_cast<std::size_t>(drain_after);
  };
  if (!resume_path.empty()) {
    const ResumeOutcome resumed = service.resume_from(resume_path);
    std::cerr << "serve: resumed " << resumed.tickets.size()
              << " checkpointed request(s)";
    if (resumed.duplicates > 0) {
      std::cerr << ", dropped " << resumed.duplicates << " duplicate(s)";
    }
    std::cerr << "\n";
    for (const std::size_t ticket : resumed.tickets) {
      tickets.push_back(ticket);
      dispatched.push_back(ticket);
    }
  }
  if (in != nullptr) {
    std::string line;
    while (std::getline(*in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const bool hold = held();
      tickets.push_back(service.submit_line(line, hold).ticket);
      if (!hold) dispatched.push_back(tickets.back());
    }
  }

  // Wait for everything dispatchable, then drain (checkpointing the
  // held remainder).  A simulated crash-mid-drain must still join the
  // consumer before unwinding to the exit-code mapping.
  for (const std::size_t ticket : dispatched) (void)service.wait(ticket);
  DrainReport report;
  try {
    report = service.drain();
  } catch (...) {
    if (consumer.joinable()) consumer.join();
    throw;
  }
  if (consumer.joinable()) consumer.join();

  if (!stream) {
    responses.reserve(tickets.size());
    for (const std::size_t ticket : tickets) {
      responses.push_back(service.wait(ticket));
    }
    for (const auto& resp : responses) {
      if (json) {
        std::cout << render_response_json(resp) << "\n";
      } else {
        print_response_text(resp);
      }
    }
  }
  print_drain_report(report, json);
  std::unique_lock lock(resp_mu);
  return serve_exit_code(responses);
}

int usage() {
  std::cerr <<
      "usage: powervar <command> [--option value ...]\n"
      "commands:\n"
      "  sample-size --nodes N --cv F --lambda F [--alpha F]\n"
      "  accuracy    --nodes N --cv F --n K [--alpha F]\n"
      "  audit       --trace FILE (--core-begin S --core-end S |\n"
      "               --auto-phases 1 [--phase-threshold F])\n"
      "  normality   --values FILE [--alpha F]\n"
      "  tco         --power-kw F --accuracy F [--cost-per-kwh F] [--pue F]"
      " [--duty F] [--years F]\n"
      "  campaign    --nodes N [--cv F] [--level 1|2|3] [--seed S]\n"
      "              [--engine eager|streaming]\n"
      "              [--faults none|mild|harsh] [--dropout F] [--dead N]"
      " [--interval S]\n"
      "              [--byzantine F] [--reconcile 1] [--threads N]\n"
      "              [--live] [--live-every S] [--scalar-fleet]\n"
      "              [--json] [--trace-stages]\n"
      "  reconcile   --nodes N [--cv F] [--seed S] [--byzantine F]\n"
      "              [--defend 0|1] [--windows K] [--threads N]"
      " [--interval S]\n"
      "              [--json] [--trace-stages]\n"
      "  collect     --nodes N [--cv F] [--level 1|2|3] [--seed S]\n"
      "              [--drop F] [--dup F] [--blackhole F] [--dead N]\n"
      "              [--latency MS] [--jitter MS] [--timeout S]"
      " [--retries K]\n"
      "              [--chunk S] [--breaker-after K] [--cooldown S]\n"
      "              [--threads N] [--interval S] [--checkpoint FILE]\n"
      "              [--resume 1] [--crash-after K] [--json]"
      " [--trace-stages]\n"
      "  serve       --requests FILE|- [--resume CHECKPOINT] [--stream]\n"
      "              [--once] [--workers N] [--queue N] [--tenant-queue N]\n"
      "              [--deadline-ms MS] [--retry-after S] [--cache N]\n"
      "              [--strict-cache] [--cache-dir DIR]"
      " [--checkpoint FILE]\n"
      "              [--drain-after K] [--crash-after K] [--json]\n"
      "              [--chaos-seed S] [--chaos-throw F] [--chaos-stall F]\n"
      "              [--chaos-cache F] [--chaos-death F]"
      " [--chaos-drain-after K]\n"
      "options accept '--key value' or '--key=value';\n"
      "--json, --trace-stages, --once, --stream, --strict-cache and --live "
      "may also appear bare.\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    if (cmd == "sample-size") return cmd_sample_size(args);
    if (cmd == "accuracy") return cmd_accuracy(args);
    if (cmd == "audit") return cmd_audit(args);
    if (cmd == "normality") return cmd_normality(args);
    if (cmd == "tco") return cmd_tco(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "reconcile") return cmd_reconcile(args);
    if (cmd == "collect") return cmd_collect(args);
    if (cmd == "serve") return cmd_serve(args);
    std::cerr << "unknown command: " << cmd << "\n";
    return usage();
  } catch (const UsageError& e) {
    std::cerr << "powervar " << cmd << ": " << e.what() << '\n';
    return usage();
  } catch (const pv::ScenarioError& e) {
    // A scenario the builders refuse to construct (zero/absurd node
    // count, sample accounting past 2^53): bad input, exit code 2.
    std::cerr << "powervar " << cmd << ": " << e.what() << '\n';
    return usage();
  } catch (const pv::CollectionAborted& e) {
    // The simulated crash (--crash-after): the journal on disk is valid
    // and a --resume run will finish the campaign.
    std::cerr << "powervar " << cmd << ": " << e.what() << '\n';
    return 3;
  } catch (const pv::ServiceAbortedError& e) {
    // serve's simulated crash-mid-drain: same contract as collect's —
    // the checkpoint journal keeps a valid prefix, resume finishes it.
    std::cerr << "powervar " << cmd << ": " << e.what() << '\n';
    return 3;
  } catch (const pv::CheckpointError& e) {
    // A resume journal the service refuses to trust (missing, torn,
    // foreign fingerprint, bad record): a distinct exit code, and no
    // partial or forged responses were emitted.
    std::cerr << "powervar " << cmd << ": " << e.what() << '\n';
    return 8;
  } catch (const pv::NoUsableDataError& e) {
    // Every meter in scope was lost: there is no number to submit, which
    // is a campaign outcome, not a usage error.
    std::cerr << "powervar " << cmd << ": " << e.what() << '\n';
    return 4;
  } catch (const std::exception& e) {
    std::cerr << "powervar " << cmd << ": " << e.what() << '\n'
              << "(run 'powervar' without arguments for usage)\n";
    return 1;
  }
}
