#pragma once
// AR(1) noise: the "jagged" texture of real wall-power charts.
//
// Measured system power wanders around the workload's deterministic shape
// with short-range correlation (OS jitter, memory phases, cooling).  An
// AR(1) process x_{k+1} = rho x_k + sqrt(1 - rho^2) sigma eps_k has
// stationary sd sigma and correlation time dt / (1 - rho) — enough realism
// for every analysis in the paper while keeping segment averages unbiased.

#include <vector>

#include "stats/rng.hpp"

namespace pv {

/// Stationary zero-mean AR(1) noise generator.
class Ar1Noise {
 public:
  /// `sigma`: stationary standard deviation; `rho` in [0, 1): lag-1
  /// correlation between consecutive samples.
  Ar1Noise(double sigma, double rho, Rng rng);

  /// Next deviate.
  double next();

  /// A whole correlated series of length n.
  [[nodiscard]] std::vector<double> series(std::size_t n);

  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] double rho() const { return rho_; }

 private:
  double sigma_;
  double rho_;
  double innovation_sd_;
  double state_;
  Rng rng_;
};

}  // namespace pv
