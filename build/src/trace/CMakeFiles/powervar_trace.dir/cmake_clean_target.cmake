file(REMOVE_RECURSE
  "libpowervar_trace.a"
)
