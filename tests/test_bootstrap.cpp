// Unit tests for percentile-bootstrap confidence intervals.

#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

TEST(Interval, ContainsAndWidth) {
  const Interval iv{1.0, 3.0};
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_TRUE(iv.contains(3.0));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_DOUBLE_EQ(iv.width(), 2.0);
  EXPECT_DOUBLE_EQ(iv.center(), 2.0);
}

TEST(Bootstrap, PointEstimateIsStatisticOnOriginal) {
  Rng rng(1);
  const std::vector<double> xs{10.0, 12.0, 14.0, 16.0};
  const auto result = bootstrap_mean_ci(rng, xs, 500, 0.05);
  EXPECT_DOUBLE_EQ(result.point_estimate, 13.0);
  EXPECT_EQ(result.replicates.size(), 500u);
}

TEST(Bootstrap, CiBracketsTheMeanForWellBehavedData) {
  Rng data_rng(2);
  std::vector<double> xs(200);
  for (auto& x : xs) x = data_rng.normal(100.0, 10.0);
  Rng rng(3);
  const auto result = bootstrap_mean_ci(rng, xs, 2000, 0.05);
  EXPECT_LT(result.ci.lo, result.point_estimate);
  EXPECT_GT(result.ci.hi, result.point_estimate);
  // Width should be roughly 2 * 1.96 * sd/sqrt(n) ~ 2.77.
  EXPECT_NEAR(result.ci.width(), 2.0 * 1.96 * 10.0 / std::sqrt(200.0), 0.8);
}

TEST(Bootstrap, HigherConfidenceGivesWiderInterval) {
  Rng data_rng(4);
  std::vector<double> xs(100);
  for (auto& x : xs) x = data_rng.normal(0.0, 1.0);
  Rng rng_a(5), rng_b(5);
  const auto ci95 = bootstrap_mean_ci(rng_a, xs, 3000, 0.05);
  const auto ci99 = bootstrap_mean_ci(rng_b, xs, 3000, 0.01);
  EXPECT_GT(ci99.ci.width(), ci95.ci.width());
}

TEST(Bootstrap, CustomStatistic) {
  Rng rng(6);
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  const auto result = bootstrap_ci(
      rng, xs, [](std::span<const double> s) { return median(s); }, 1000,
      0.05);
  EXPECT_DOUBLE_EQ(result.point_estimate, 3.0);
  // The median is robust: even with the outlier the CI stays small.
  EXPECT_LE(result.ci.hi, 100.0);
}

TEST(Bootstrap, DeterministicGivenRngState) {
  const std::vector<double> xs{5.0, 7.0, 9.0, 11.0};
  Rng a(7), b(7);
  const auto ra = bootstrap_mean_ci(a, xs, 200, 0.1);
  const auto rb = bootstrap_mean_ci(b, xs, 200, 0.1);
  EXPECT_EQ(ra.replicates, rb.replicates);
  EXPECT_DOUBLE_EQ(ra.ci.lo, rb.ci.lo);
  EXPECT_DOUBLE_EQ(ra.ci.hi, rb.ci.hi);
}

TEST(Bootstrap, DomainChecks) {
  Rng rng(8);
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW(bootstrap_mean_ci(rng, {}, 100, 0.05), contract_error);
  EXPECT_THROW(bootstrap_mean_ci(rng, xs, 1, 0.05), contract_error);
  EXPECT_THROW(bootstrap_mean_ci(rng, xs, 100, 0.0), contract_error);
  EXPECT_THROW(
      bootstrap_ci(rng, xs, nullptr, 100, 0.05), contract_error);
}

TEST(Bootstrap, CoverageIsApproximatelyNominal) {
  // Repeatedly draw data with known mean 0 and check that the 90% interval
  // covers it close to 90% of the time.
  int covered = 0;
  constexpr int kTrials = 300;
  for (int t = 0; t < kTrials; ++t) {
    Rng data_rng(1000 + t);
    std::vector<double> xs(60);
    for (auto& x : xs) x = data_rng.normal(0.0, 1.0);
    Rng rng(2000 + t);
    const auto result = bootstrap_mean_ci(rng, xs, 400, 0.10);
    if (result.ci.contains(0.0)) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(kTrials), 0.90, 0.06);
}

}  // namespace
}  // namespace pv
