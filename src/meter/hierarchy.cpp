#include "meter/hierarchy.hpp"

#include "util/expects.hpp"

namespace pv {

const char* to_string(Subsystem s) {
  switch (s) {
    case Subsystem::kComputeNode: return "compute-node";
    case Subsystem::kNetwork: return "network";
    case Subsystem::kStorage: return "storage";
    case Subsystem::kInfrastructure: return "infrastructure";
    case Subsystem::kCooling: return "cooling";
  }
  return "unknown";
}

const char* to_string(MeasurementPoint p) {
  switch (p) {
    case MeasurementPoint::kNodeDc: return "node-DC";
    case MeasurementPoint::kNodeAc: return "node-AC";
    case MeasurementPoint::kRackPdu: return "rack-PDU";
    case MeasurementPoint::kFacilityFeed: return "facility-feed";
  }
  return "unknown";
}

SystemPowerModel::SystemPowerModel(std::string name, std::size_t nodes_per_rack)
    : name_(std::move(name)), nodes_per_rack_(nodes_per_rack) {
  PV_EXPECTS(nodes_per_rack_ > 0, "racks must hold at least one node");
}

void SystemPowerModel::add_node(PowerFunction dc_power_w, PsuModel psu) {
  PV_EXPECTS(dc_power_w != nullptr, "null node power function");
  nodes_.push_back(Node{std::move(dc_power_w), std::move(psu)});
}

void SystemPowerModel::add_subsystem(Subsystem kind, std::string label,
                                     PowerFunction ac_power_w) {
  PV_EXPECTS(ac_power_w != nullptr, "null subsystem power function");
  PV_EXPECTS(kind != Subsystem::kComputeNode,
             "compute nodes are registered via add_node");
  auxiliaries_.push_back(Auxiliary{kind, std::move(label), std::move(ac_power_w)});
}

void SystemPowerModel::set_pdu_loss_fraction(double f) {
  PV_EXPECTS(f >= 0.0 && f < 0.5, "PDU loss fraction must be in [0, 0.5)");
  pdu_loss_fraction_ = f;
}

std::size_t SystemPowerModel::rack_count() const {
  return (nodes_.size() + nodes_per_rack_ - 1) / nodes_per_rack_;
}

double SystemPowerModel::node_dc_w(std::size_t node, double t) const {
  PV_EXPECTS(node < nodes_.size(), "node index out of range");
  return nodes_[node].dc_power(t);
}

double SystemPowerModel::node_ac_w(std::size_t node, double t) const {
  PV_EXPECTS(node < nodes_.size(), "node index out of range");
  const auto& n = nodes_[node];
  return n.psu.ac_input(Watts{n.dc_power(t)}).value();
}

double SystemPowerModel::rack_pdu_w(std::size_t rack, double t) const {
  PV_EXPECTS(rack < rack_count(), "rack index out of range");
  const std::size_t begin = rack * nodes_per_rack_;
  const std::size_t end = std::min(begin + nodes_per_rack_, nodes_.size());
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += node_ac_w(i, t);
  return sum / (1.0 - pdu_loss_fraction_);
}

double SystemPowerModel::compute_ac_w(double t) const {
  double sum = 0.0;
  for (std::size_t r = 0; r < rack_count(); ++r) sum += rack_pdu_w(r, t);
  return sum;
}

double SystemPowerModel::auxiliary_ac_w(double t) const {
  double sum = 0.0;
  for (const auto& a : auxiliaries_) sum += a.ac_power(t);
  return sum;
}

double SystemPowerModel::auxiliary_ac_w(Subsystem kind, double t) const {
  double sum = 0.0;
  for (const auto& a : auxiliaries_) {
    if (a.kind == kind) sum += a.ac_power(t);
  }
  return sum;
}

double SystemPowerModel::facility_w(double t) const {
  return compute_ac_w(t) + auxiliary_ac_w(t);
}

PowerFunction SystemPowerModel::node_ac_function(std::size_t node) const {
  PV_EXPECTS(node < nodes_.size(), "node index out of range");
  return [this, node](double t) { return node_ac_w(node, t); };
}

PowerFunction SystemPowerModel::facility_function() const {
  return [this](double t) { return facility_w(t); };
}

const PsuModel& SystemPowerModel::node_psu(std::size_t node) const {
  PV_EXPECTS(node < nodes_.size(), "node index out of range");
  return nodes_[node].psu;
}

}  // namespace pv
