// Property tests for the mergeable quantile sketch (stats/sketch) and the
// fixed-capacity ring buffer (util/ring) the streaming assessment path is
// built from.
//
//   * rank-error bound — over seeded random and adversarial streams, the
//     reported q-quantile is within alpha relative error of the true
//     order statistic at floor(q * (n - 1));
//   * merge order never changes the result — Chan-style associativity:
//     any grouping and ordering of partial sketches yields the identical
//     state (integer counters), checked bit-for-bit via identical() and
//     on the reported quantile bits;
//   * sketch-of-full-stream equals merge-of-window-sketches bit-for-bit —
//     the exactness claim the per-window streaming engine relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "stats/sketch.hpp"
#include "util/ring.hpp"
#include "stats/rng.hpp"

namespace pv {
namespace {

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

// True order statistic at the sketch's rank convention.
double exact_quantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(xs.size() - 1));
  return xs[std::min(rank, xs.size() - 1)];
}

// The DDSketch guarantee: |est - true| <= alpha * |true|.  A hair of
// slack covers the double rounding in the bin-midpoint evaluation.
void expect_within_alpha(const QuantileSketch& sk,
                         const std::vector<double>& xs, double q,
                         const std::string& what) {
  const double truth = exact_quantile(xs, q);
  const double est = sk.quantile(q);
  EXPECT_LE(std::fabs(est - truth), sk.alpha() * std::fabs(truth) + 1e-12)
      << what << ": q=" << q << " true=" << truth << " est=" << est;
}

const double kQuantiles[] = {0.0, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99,
                             1.0};

TEST(QuantileSketch, RankErrorBoundOnSeededRandomStreams) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    std::vector<double> xs;
    for (std::size_t i = 0; i < 5000; ++i) {
      // Node-power-like values spanning several orders of magnitude.
      xs.push_back(std::exp(4.0 + 4.0 * rng.uniform()));
    }
    QuantileSketch sk(0.01);
    sk.push(std::span<const double>(xs));
    ASSERT_EQ(sk.count(), xs.size());
    for (const double q : kQuantiles) {
      expect_within_alpha(sk, xs, q, "seed " + std::to_string(seed));
    }
  }
}

TEST(QuantileSketch, RankErrorBoundOnAdversarialStreams) {
  // Streams chosen to stress the binning: sorted both ways, constant,
  // geometric across the whole bin range, alternating huge/tiny, and
  // sign-mixed.
  std::vector<std::pair<std::string, std::vector<double>>> streams;
  {
    std::vector<double> asc;
    for (std::size_t i = 1; i <= 4000; ++i) {
      asc.push_back(static_cast<double>(i) * 0.37);
    }
    streams.emplace_back("sorted-ascending", asc);
    std::vector<double> desc(asc.rbegin(), asc.rend());
    streams.emplace_back("sorted-descending", desc);
  }
  streams.emplace_back("constant", std::vector<double>(1000, 432.5));
  {
    std::vector<double> geo;
    for (int k = -120; k <= 120; ++k) geo.push_back(std::pow(1.25, k));
    streams.emplace_back("geometric", geo);
  }
  {
    std::vector<double> alt;
    for (std::size_t i = 0; i < 1000; ++i) {
      alt.push_back(i % 2 == 0 ? 1e12 : 1e-12);
    }
    streams.emplace_back("huge-tiny-alternating", alt);
  }
  {
    std::vector<double> mixed;
    Rng rng(77);
    for (std::size_t i = 0; i < 3000; ++i) {
      const double mag = std::exp(6.0 * rng.uniform());
      mixed.push_back(rng.uniform() < 0.5 ? -mag : mag);
    }
    streams.emplace_back("sign-mixed", mixed);
  }
  for (const auto& [name, xs] : streams) {
    QuantileSketch sk(0.01);
    sk.push(std::span<const double>(xs));
    for (const double q : kQuantiles) expect_within_alpha(sk, xs, q, name);
  }
}

TEST(QuantileSketch, ExactMinMaxAndEdgeQuantiles) {
  QuantileSketch sk(0.02);
  const std::vector<double> xs = {3.0, -7.5, 1e6, 0.0, 42.0};
  sk.push(std::span<const double>(xs));
  // min/max are tracked exactly and clamp the estimates, so the extreme
  // quantiles are exact, not merely alpha-close.
  EXPECT_TRUE(bits_equal(sk.min(), -7.5));
  EXPECT_TRUE(bits_equal(sk.max(), 1e6));
  EXPECT_TRUE(bits_equal(sk.quantile(0.0), -7.5));
  EXPECT_TRUE(bits_equal(sk.quantile(1.0), 1e6));
}

TEST(QuantileSketch, MergeOrderNeverChangesTheResult) {
  // Build 8 partial sketches over different slices of one stream, then
  // merge them under several groupings/orders (left fold, right fold,
  // pairwise tree, interleaved).  All must be bit-identical.
  Rng rng(99);
  std::vector<std::vector<double>> parts(8);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const std::size_t len = 100 + 37 * p;
    for (std::size_t i = 0; i < len; ++i) {
      parts[p].push_back(350.0 + 120.0 * rng.uniform());
    }
  }
  const auto sketch_of = [&](const std::vector<double>& xs) {
    QuantileSketch sk(0.01);
    sk.push(std::span<const double>(xs));
    return sk;
  };

  QuantileSketch left(0.01);
  for (const auto& p : parts) left.merge(sketch_of(p));

  QuantileSketch right(0.01);
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    right.merge(sketch_of(*it));
  }

  // Pairwise tree: ((0+1)+(2+3)) + ((4+5)+(6+7)).
  std::vector<QuantileSketch> level;
  for (const auto& p : parts) level.push_back(sketch_of(p));
  while (level.size() > 1) {
    std::vector<QuantileSketch> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      QuantileSketch m = level[i];
      m.merge(level[i + 1]);
      next.push_back(m);
    }
    level = std::move(next);
  }

  EXPECT_TRUE(left.identical(right));
  EXPECT_TRUE(left.identical(level.front()));
  for (const double q : kQuantiles) {
    EXPECT_TRUE(bits_equal(left.quantile(q), right.quantile(q))) << q;
    EXPECT_TRUE(bits_equal(left.quantile(q), level.front().quantile(q))) << q;
  }
}

TEST(QuantileSketch, FullStreamEqualsMergedWindowSketchesBitForBit) {
  // The streaming engine's exactness claim: sketching the whole campaign
  // in one pass and merging per-window sketches are the same state.
  for (const std::uint64_t seed : {5u, 21u}) {
    Rng rng(seed);
    std::vector<double> stream;
    for (std::size_t i = 0; i < 6000; ++i) {
      stream.push_back(380.0 + 90.0 * rng.uniform() -
                       (i % 97 == 0 ? 500.0 : 0.0));  // some negatives
    }
    QuantileSketch full(0.01);
    full.push(std::span<const double>(stream));

    QuantileSketch merged(0.01);
    const std::size_t window = 229;  // deliberately not a divisor
    for (std::size_t first = 0; first < stream.size(); first += window) {
      const std::size_t len = std::min(window, stream.size() - first);
      QuantileSketch win(0.01);
      win.push(std::span<const double>(stream).subspan(first, len));
      merged.merge(win);
    }
    EXPECT_TRUE(full.identical(merged)) << "seed " << seed;
    for (const double q : kQuantiles) {
      EXPECT_TRUE(bits_equal(full.quantile(q), merged.quantile(q)))
          << "seed " << seed << " q " << q;
    }
  }
}

TEST(QuantileSketch, FootprintStaysLogarithmicInRange) {
  // 1e6 pushes spanning 12 decades land in O(log range / log gamma) bins.
  QuantileSketch sk(0.01);
  Rng rng(3);
  for (std::size_t i = 0; i < 1000000; ++i) {
    sk.push(std::exp(-14.0 + 28.0 * rng.uniform()));
  }
  EXPECT_EQ(sk.count(), 1000000u);
  // gamma ~ 1.0202 -> ~50 bins per decade -> ~1400 for 28 e-folds.
  EXPECT_LT(sk.bin_count(), 1500u);
}

TEST(WindowStats, MergesMomentsAndQuantilesTogether) {
  WindowStats a(0.01);
  WindowStats b(0.01);
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  a.push(std::span<const double>(xs).subspan(0, 3));
  b.push(std::span<const double>(xs).subspan(3, 3));
  a.merge(b);
  WindowStats full(0.01);
  full.push(std::span<const double>(xs));
  EXPECT_EQ(a.count(), full.count());
  EXPECT_TRUE(a.quantiles.identical(full.quantiles));
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> ring(3);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 3u);
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0], 1);
  EXPECT_EQ(ring.back(), 2);
  ring.push(3);
  EXPECT_TRUE(ring.full());
  ring.push(4);  // evicts 1
  ring.push(5);  // evicts 2
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0], 3);
  EXPECT_EQ(ring[1], 4);
  EXPECT_EQ(ring[2], 5);
  EXPECT_EQ(ring.back(), 5);
  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 3u);
}

TEST(RingBuffer, CapacityOneKeepsOnlyTheNewest) {
  RingBuffer<double> ring(1);
  for (int i = 0; i < 10; ++i) ring.push(static_cast<double>(i));
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0], 9.0);
}

}  // namespace
}  // namespace pv
