// Figure 1 + Table 2 — system average power over time for HPL on Colosse,
// Sequoia(-25), Piz Daint and L-CSC, and the segment-average table
// (full core phase / first 20% / last 20%).
//
// Prints Table 2 with paper-vs-measured rows, an ASCII rendering of each
// power profile, and writes fig1_<system>.csv series for plotting.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "sim/catalog.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace {

// Downsamples a trace to `cols` columns and renders power as a vertical
// ASCII chart (rows from max to min).
void ascii_chart(const pv::PowerTrace& trace, std::size_t cols,
                 std::size_t rows) {
  const std::size_t group = std::max<std::size_t>(1, trace.size() / cols);
  std::vector<double> v;
  for (std::size_t i = 0; i + group <= trace.size(); i += group) {
    double acc = 0.0;
    for (std::size_t j = 0; j < group; ++j) acc += trace.watt_at(i + j);
    v.push_back(acc / static_cast<double>(group));
  }
  const double lo = *std::min_element(v.begin(), v.end());
  const double hi = *std::max_element(v.begin(), v.end());
  for (std::size_t r = 0; r < rows; ++r) {
    const double level = hi - (hi - lo) * static_cast<double>(r) /
                                  static_cast<double>(rows - 1);
    std::string line;
    for (double x : v) line += (x >= level - (hi - lo) * 0.5 / rows) ? '*' : ' ';
    std::printf("%9.1f kW |%s\n", level / 1000.0, line.c_str());
  }
  std::printf("%14s+%s\n", "", std::string(v.size(), '-').c_str());
  std::printf("%15st = 0 .. core-phase end\n", "");
}

}  // namespace

int main() {
  using namespace pv;
  bench::banner("Table 2 + Figure 1",
                "HPL power over time: runtime and segment averages");

  TextTable table({"system", "HPL runtime", "core phase power (kW)",
                   "first 20% (kW)", "last 20% (kW)", "paper core/first/last"});
  for (const auto& sys : catalog::table2_systems()) {
    const CalibratedSystemProfile prof = catalog::make_profile(sys);
    const PowerTrace trace = prof.core_phase_trace(
        Seconds{sys.hpl_runtime.value() >= 3600.0 * 10.0 ? 60.0 : 10.0},
        sys.noise_sigma_frac, 0.9, /*seed=*/2015);
    const RunPhases p = prof.phases();
    const Watts core = trace.mean_power(p.core_window());
    const Watts first20 = trace.mean_power(p.core_fraction(0.0, 0.2));
    const Watts last20 = trace.mean_power(p.core_fraction(0.8, 1.0));
    char paper[64];
    std::snprintf(paper, sizeof paper, "%.1f / %.1f / %.1f",
                  sys.core_avg.value() / 1000.0,
                  sys.first20_avg.value() / 1000.0,
                  sys.last20_avg.value() / 1000.0);
    table.add_row({sys.name, to_string(sys.hpl_runtime),
                   fmt_fixed(core.value() / 1000.0, 1),
                   fmt_fixed(first20.value() / 1000.0, 1),
                   fmt_fixed(last20.value() / 1000.0, 1), paper});

    // Figure 1 series for external plotting.
    CsvWriter csv({"t_s", "power_w"});
    const PowerTrace full = prof.full_run_trace(
        Seconds{p.total().value() / 2000.0}, sys.noise_sigma_frac, 0.9, 2015);
    for (std::size_t i = 0; i < full.size(); ++i) {
      csv.add_row(std::vector<double>{full.time_at(i).value(), full.watt_at(i)});
    }
    std::string fname = "fig1_" + sys.name + ".csv";
    for (auto& c : fname) {
      if (c == ' ') c = '_';
    }
    csv.write_file(fname);
  }
  std::cout << table.render();

  std::cout << "\nFigure 1 — power profiles (core phase, ASCII):\n";
  for (const auto& sys : catalog::table2_systems()) {
    const CalibratedSystemProfile prof = catalog::make_profile(sys);
    const PowerTrace trace = prof.core_phase_trace(
        Seconds{sys.hpl_runtime.value() / 1000.0}, sys.noise_sigma_frac, 0.9,
        2015);
    std::cout << '\n' << sys.name << ":\n";
    ascii_chart(trace, 64, 10);
  }
  std::cout << "\n(series written to fig1_<system>.csv)\n";
  return 0;
}
