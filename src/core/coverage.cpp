#include "core/coverage.hpp"

#include <atomic>
#include <cmath>

#include "core/sample_size.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "stats/special.hpp"
#include "util/expects.hpp"

namespace pv {

std::vector<CoveragePoint> coverage_study(std::span<const double> pilot,
                                          const CoverageConfig& config,
                                          ThreadPool* pool) {
  PV_EXPECTS(pilot.size() >= 2, "pilot sample too small");
  PV_EXPECTS(config.full_system_nodes >= 2, "simulated machine too small");
  PV_EXPECTS(!config.sample_sizes.empty(), "no sample sizes requested");
  PV_EXPECTS(!config.confidence_levels.empty(), "no confidence levels");
  PV_EXPECTS(config.simulations >= 100, "too few simulations to estimate coverage");
  for (std::size_t n : config.sample_sizes) {
    PV_EXPECTS(n >= 2 && n <= config.full_system_nodes,
               "sample sizes must satisfy 2 <= n <= N");
  }
  for (double level : config.confidence_levels) {
    PV_EXPECTS(level > 0.0 && level < 1.0, "levels must lie in (0,1)");
  }

  const std::size_t n_sizes = config.sample_sizes.size();
  const std::size_t n_levels = config.confidence_levels.size();
  const std::size_t big_n = config.full_system_nodes;

  // Precompute the t critical values: quantile evaluation is the only
  // expensive special-function call and it is loop-invariant.
  std::vector<double> t_crit(n_sizes * n_levels);
  for (std::size_t si = 0; si < n_sizes; ++si) {
    const double nu = static_cast<double>(config.sample_sizes[si] - 1);
    for (std::size_t li = 0; li < n_levels; ++li) {
      t_crit[si * n_levels + li] =
          t_critical(1.0 - config.confidence_levels[li], nu);
    }
  }

  std::vector<std::atomic<std::size_t>> hits(n_sizes * n_levels);
  for (auto& h : hits) h.store(0);

  parallel_for(
      pool, config.simulations,
      [&](std::size_t sim) {
        Rng rng(config.seed, /*stream=*/sim);
        // Step 1: simulate the complete machine; track its true mean.
        std::vector<double> machine(big_n);
        double total = 0.0;
        for (auto& v : machine) {
          v = pilot[rng.uniform_index(pilot.size())];
          total += v;
        }
        const double true_mean = total / static_cast<double>(big_n);

        for (std::size_t si = 0; si < n_sizes; ++si) {
          const std::size_t n = config.sample_sizes[si];
          // Step 2: sample n nodes without replacement via a partial
          // Fisher-Yates over the machine itself (restored afterwards is
          // unnecessary — order does not matter for later draws of this
          // same simulation because each si re-samples fresh positions).
          RunningStats stats;
          for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j =
                i + rng.uniform_index(big_n - i);
            std::swap(machine[i], machine[j]);
            stats.add(machine[i]);
          }
          const double mean = stats.mean();
          const double sd = stats.count() >= 2 ? stats.stddev() : 0.0;
          const double se = sd / std::sqrt(static_cast<double>(n));
          // Steps 3-4: Equation 1 intervals at each level.
          for (std::size_t li = 0; li < n_levels; ++li) {
            const double half = t_crit[si * n_levels + li] * se;
            if (true_mean >= mean - half && true_mean <= mean + half) {
              hits[si * n_levels + li].fetch_add(1,
                                                 std::memory_order_relaxed);
            }
          }
        }
      },
      /*grain=*/64);

  std::vector<CoveragePoint> out;
  out.reserve(n_sizes * n_levels);
  for (std::size_t si = 0; si < n_sizes; ++si) {
    for (std::size_t li = 0; li < n_levels; ++li) {
      out.push_back(
          {config.sample_sizes[si], config.confidence_levels[li],
           static_cast<double>(hits[si * n_levels + li].load()) /
               static_cast<double>(config.simulations)});
    }
  }
  return out;
}

}  // namespace pv
