#include "core/plan.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "stats/sampling.hpp"
#include "util/expects.hpp"
#include "util/units.hpp"

namespace pv {

const char* to_string(TimingStrategy s) {
  switch (s) {
    case TimingStrategy::kContinuous: return "continuous window";
    case TimingStrategy::kTenSpotAverages: return "ten spot averages";
  }
  return "unknown";
}

const char* to_string(ConversionCorrection c) {
  switch (c) {
    case ConversionCorrection::kNone: return "none";
    case ConversionCorrection::kVendorNominal: return "vendor nominal";
    case ConversionCorrection::kMeasuredCurve: return "measured PSU curve";
  }
  return "unknown";
}

const char* to_string(SubsetStrategy s) {
  switch (s) {
    case SubsetStrategy::kRandom: return "random";
    case SubsetStrategy::kFirstRack: return "first-rack";
    case SubsetStrategy::kLowVid: return "low-VID screened";
    case SubsetStrategy::kLowPower: return "lowest-power screened";
  }
  return "unknown";
}

namespace {

std::vector<std::size_t> pick_subset(const PlanInputs& in, std::size_t k,
                                     SubsetStrategy strategy, Rng& rng) {
  const std::size_t n = in.total_nodes;
  switch (strategy) {
    case SubsetStrategy::kRandom:
      return sample_without_replacement(rng, n, k);
    case SubsetStrategy::kFirstRack: {
      std::vector<std::size_t> idx(k);
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      return idx;
    }
    case SubsetStrategy::kLowVid: {
      PV_EXPECTS(in.vid_bins.size() == n,
                 "low-VID strategy needs per-node VID bins");
      std::vector<std::size_t> idx(n);
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return in.vid_bins[a] < in.vid_bins[b];
                       });
      idx.resize(k);
      return idx;
    }
    case SubsetStrategy::kLowPower: {
      PV_EXPECTS(in.node_powers.size() == n,
                 "low-power strategy needs per-node powers");
      std::vector<std::size_t> idx(n);
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         return in.node_powers[a] < in.node_powers[b];
                       });
      idx.resize(k);
      return idx;
    }
  }
  PV_ENSURES(false, "unhandled subset strategy");
  return {};
}

}  // namespace

MeasurementPlan plan_measurement(const MethodologySpec& spec,
                                 const PlanInputs& in, Rng& rng,
                                 SubsetStrategy strategy,
                                 double window_position) {
  PV_EXPECTS(in.total_nodes > 0, "system must have nodes");
  PV_EXPECTS(in.run.core.value() > 0.0, "run must have a core phase");

  MeasurementPlan plan;
  plan.spec = spec;
  const std::size_t k =
      spec.required_node_count(in.total_nodes, in.approx_node_power);
  plan.node_indices = pick_subset(in, k, strategy, rng);
  std::sort(plan.node_indices.begin(), plan.node_indices.end());

  if (spec.timing.full_core_phase) {
    plan.window = in.run.core_window();
  } else {
    plan.window = in.run.level1_window(window_position);
  }
  plan.meter_mode = spec.timing.integrated_energy_required
                        ? MeterMode::kIntegrated
                        : MeterMode::kSampled;
  plan.meter_interval = spec.timing.max_reporting_interval;
  plan.point = MeasurementPoint::kNodeAc;
  // Level 2's aspect-1 wording is "ten equally spaced power averaged
  // measurements spanning the full run"; emulate that sampling pattern.
  plan.timing = spec.level == Level::kL2 ? TimingStrategy::kTenSpotAverages
                                         : TimingStrategy::kContinuous;
  return plan;
}

std::vector<ValidationIssue> validate_plan(const MeasurementPlan& plan,
                                           const PlanInputs& in) {
  std::vector<ValidationIssue> issues;
  const MethodologySpec& spec = plan.spec;

  // Aspect 2: machine fraction.
  const std::size_t need =
      spec.required_node_count(in.total_nodes, in.approx_node_power);
  if (plan.node_count() < need) {
    std::ostringstream os;
    os << "plan meters " << plan.node_count() << " nodes but the spec needs "
       << need << " of " << in.total_nodes;
    issues.push_back({"fraction", os.str()});
  }
  const double measured_power =
      in.approx_node_power.value() * static_cast<double>(plan.node_count());
  if (!spec.fraction.whole_system &&
      measured_power < spec.fraction.min_measured_power.value()) {
    std::ostringstream os;
    os << "measured power ~" << to_string(Watts{measured_power})
       << " is below the " << to_string(spec.fraction.min_measured_power)
       << " floor";
    issues.push_back({"fraction", os.str()});
  }
  for (std::size_t i : plan.node_indices) {
    if (i >= in.total_nodes) {
      issues.push_back({"fraction", "plan references a nonexistent node"});
      break;
    }
  }

  // Aspect 1: timing.
  const Seconds need_dur = spec.required_window_duration(in.run);
  if (plan.window.duration().value() < need_dur.value() - 1e-6) {
    std::ostringstream os;
    os << "window of " << to_string(plan.window.duration())
       << " is shorter than the required " << to_string(need_dur);
    issues.push_back({"timing", os.str()});
  }
  if (spec.timing.full_core_phase) {
    const TimeWindow core = in.run.core_window();
    if (plan.window.begin.value() > core.begin.value() + 1e-6 ||
        plan.window.end.value() < core.end.value() - 1e-6) {
      issues.push_back(
          {"timing", "window does not cover the entire core phase"});
    }
  } else {
    const TimeWindow allowed = in.run.middle_80();
    if (plan.window.begin.value() < allowed.begin.value() - 1e-6 ||
        plan.window.end.value() > allowed.end.value() + 1e-6) {
      issues.push_back(
          {"timing",
           "window leaves the middle 80% of the core phase (v1.2 L1 rule)"});
    }
  }
  if (plan.meter_interval.value() >
      spec.timing.max_reporting_interval.value() + 1e-9) {
    issues.push_back({"timing", "meter reporting interval too coarse"});
  }
  if (spec.timing.integrated_energy_required &&
      plan.meter_mode != MeterMode::kIntegrated) {
    issues.push_back(
        {"timing", "Level 3 requires continuously integrated energy"});
  }

  // Aspect 4: point of measurement.  Node-DC taps are only legal when a
  // conversion-loss correction is applied — and Levels 2/3 do not accept
  // the vendor-nominal shortcut.
  if (plan.point == MeasurementPoint::kNodeDc) {
    if (plan.conversion == ConversionCorrection::kNone) {
      issues.push_back(
          {"conversion",
           "DC-side tap requires a conversion-loss correction per aspect 4"});
    } else if (plan.conversion == ConversionCorrection::kVendorNominal &&
               spec.conversion != ConversionRule::kUpstreamOrVendorData) {
      issues.push_back(
          {"conversion",
           "vendor-nominal conversion data is only acceptable at Level 1"});
    }
  }

  // Aspect 1: spot-average plans must fit their ten spots in the window.
  if (plan.timing == TimingStrategy::kTenSpotAverages &&
      plan.spot_duration.value() * 10.0 >
          plan.window.duration().value() + 1e-9) {
    issues.push_back(
        {"timing", "ten spot averages do not fit in the plan window"});
  }
  return issues;
}

std::vector<TimeWindow> metered_windows(const MeasurementPlan& plan,
                                        Seconds meter_interval) {
  std::vector<TimeWindow> windows;
  if (plan.timing == TimingStrategy::kContinuous) {
    windows.push_back(plan.window);
    return windows;
  }
  const double span = plan.window.duration().value();
  const double spot =
      std::max(plan.spot_duration.value(), meter_interval.value());
  PV_EXPECTS(spot * 10.0 <= span + 1e-9,
             "ten spot averages do not fit in the plan window");
  for (int k = 0; k < 10; ++k) {
    const double center = plan.window.begin.value() + (k + 0.5) * span / 10.0;
    windows.push_back(
        {Seconds{center - 0.5 * spot}, Seconds{center + 0.5 * spot}});
  }
  return windows;
}

}  // namespace pv
