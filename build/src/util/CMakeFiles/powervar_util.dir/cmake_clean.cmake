file(REMOVE_RECURSE
  "CMakeFiles/powervar_util.dir/csv.cpp.o"
  "CMakeFiles/powervar_util.dir/csv.cpp.o.d"
  "CMakeFiles/powervar_util.dir/mathx.cpp.o"
  "CMakeFiles/powervar_util.dir/mathx.cpp.o.d"
  "CMakeFiles/powervar_util.dir/parallel.cpp.o"
  "CMakeFiles/powervar_util.dir/parallel.cpp.o.d"
  "CMakeFiles/powervar_util.dir/table.cpp.o"
  "CMakeFiles/powervar_util.dir/table.cpp.o.d"
  "CMakeFiles/powervar_util.dir/units.cpp.o"
  "CMakeFiles/powervar_util.dir/units.cpp.o.d"
  "libpowervar_util.a"
  "libpowervar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/powervar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
