// Tests for the crash-safe write-ahead journal and the meter-record codec.

#include "trace/wal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <string>

#include "collect/journal.hpp"
#include "util/expects.hpp"

namespace pv {
namespace {

std::string temp_wal(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void append_raw(const std::string& path, const std::string& line) {
  std::ofstream f(path, std::ios::app);
  f << line;
}

TEST(Crc32, MatchesKnownVectors) {
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);  // the classic check value
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(Wal, WriteThenReplayRoundTrips) {
  const std::string path = temp_wal("wal_roundtrip.wal");
  {
    WalWriter w(path, 0xDEADBEEFCAFEF00DULL);
    w.append("first record");
    w.append("second 3.14159 record");
    EXPECT_EQ(w.records_written(), 2u);
  }
  const WalReplay r = replay_wal(path);
  ASSERT_TRUE(r.exists);
  EXPECT_EQ(r.fingerprint, 0xDEADBEEFCAFEF00DULL);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0], "first record");
  EXPECT_EQ(r.records[1], "second 3.14159 record");
  EXPECT_EQ(r.torn_lines, 0u);
}

TEST(Wal, MissingFileIsAFreshCampaign) {
  const WalReplay r = replay_wal(temp_wal("wal_never_created.wal"));
  EXPECT_FALSE(r.exists);
  EXPECT_TRUE(r.records.empty());
}

TEST(Wal, EmptyFileIsAFreshCampaign) {
  const std::string path = temp_wal("wal_empty.wal");
  { std::ofstream f(path); }
  EXPECT_FALSE(replay_wal(path).exists);
}

TEST(Wal, TornTrailingLineIsDroppedAndCounted) {
  const std::string path = temp_wal("wal_torn.wal");
  {
    WalWriter w(path, 42);
    w.append("complete record");
  }
  append_raw(path, "R half-written-before-the-crash");  // no CRC, no newline
  const WalReplay r = replay_wal(path);
  ASSERT_TRUE(r.exists);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "complete record");
  EXPECT_EQ(r.torn_lines, 1u);
}

TEST(Wal, CorruptedRecordEndsTheTrustworthyPrefix) {
  const std::string path = temp_wal("wal_corrupt.wal");
  {
    WalWriter w(path, 42);
    w.append("good one");
    w.append("about to corrupt");
    w.append("after the corruption");
  }
  // Flip a payload byte of the middle record: its CRC no longer matches,
  // and the final (intact) record must NOT be resurrected past the tear.
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::size_t at = text.find("about");
  ASSERT_NE(at, std::string::npos);
  text[at] = 'X';
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.close();

  const WalReplay r = replay_wal(path);
  ASSERT_TRUE(r.exists);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0], "good one");
  EXPECT_EQ(r.torn_lines, 2u);  // the corrupted line and everything after
}

TEST(Wal, GarbageFileIsNotAJournal) {
  const std::string path = temp_wal("wal_garbage.wal");
  { std::ofstream f(path); f << "t_s,power_w\n0,100\n"; }
  EXPECT_THROW(replay_wal(path), std::runtime_error);
}

TEST(Wal, AppendToContinuesAnExistingJournal) {
  const std::string path = temp_wal("wal_append.wal");
  {
    WalWriter w(path, 7);
    w.append("from the first run");
  }
  {
    WalWriter w = WalWriter::append_to(path, 7);
    w.append("from the resumed run");
  }
  const WalReplay r = replay_wal(path);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[0], "from the first run");
  EXPECT_EQ(r.records[1], "from the resumed run");
}

TEST(Wal, AppendToRejectsFingerprintMismatch) {
  const std::string path = temp_wal("wal_mismatch.wal");
  { WalWriter w(path, 7); }
  EXPECT_THROW(WalWriter::append_to(path, 8), std::runtime_error);
  EXPECT_THROW(WalWriter::append_to(temp_wal("wal_absent.wal"), 7),
               std::runtime_error);
}

TEST(Wal, RejectsMultilinePayloads) {
  WalWriter w(temp_wal("wal_multiline.wal"), 1);
  EXPECT_THROW(w.append("two\nlines"), contract_error);
}

// --- torture: seeded corruption drills ------------------------------------
//
// The journal's contract under arbitrary tail damage: replay returns an
// exact prefix of what was written (resume cleanly), or throws (refuse
// loudly).  It must never surface a record that was not appended, drop a
// record silently, or let a duplicated chunk double-count a meter.

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  out << text;
}

std::vector<std::string> write_journal(const std::string& path,
                                       std::size_t n_records) {
  std::vector<std::string> payloads;
  WalWriter w(path, 0xF00DULL);
  for (std::size_t i = 0; i < n_records; ++i) {
    payloads.push_back("record " + std::to_string(i) + " payload 3.14159");
    w.append(payloads.back());
  }
  return payloads;
}

// True iff `got` is an exact prefix of `wrote`.
bool is_prefix(const std::vector<std::string>& got,
               const std::vector<std::string>& wrote) {
  if (got.size() > wrote.size()) return false;
  for (std::size_t i = 0; i < got.size(); ++i) {
    if (got[i] != wrote[i]) return false;
  }
  return true;
}

TEST(WalTorture, SeededTruncationsAlwaysLeaveACleanPrefix) {
  const std::string path = temp_wal("wal_torture_trunc.wal");
  const std::vector<std::string> wrote = write_journal(path, 20);
  const std::string pristine = slurp(path);
  const std::size_t header_end = pristine.find('\n') + 1;

  Rng rng(0xC0FFEE);
  for (int drill = 0; drill < 50; ++drill) {
    // Cut anywhere after the header — mid-payload, mid-CRC, mid-newline.
    const std::size_t cut =
        header_end + static_cast<std::size_t>(rng.uniform_index(
                         pristine.size() - header_end));
    dump(path, pristine.substr(0, cut));
    const WalReplay r = replay_wal(path);
    ASSERT_TRUE(r.exists);
    EXPECT_TRUE(is_prefix(r.records, wrote)) << "cut at byte " << cut;
    // Nothing between the last good record and the cut goes uncounted.
    if (r.records.size() < wrote.size() && cut > header_end) {
      const bool cut_mid_line = pristine[cut - 1] != '\n';
      if (cut_mid_line) EXPECT_GE(r.torn_lines, 1u) << "cut at byte " << cut;
    }
  }
}

TEST(WalTorture, SeededBitFlipsNeverSurfaceACorruptedRecord) {
  const std::string path = temp_wal("wal_torture_flip.wal");
  const std::vector<std::string> wrote = write_journal(path, 20);
  const std::string pristine = slurp(path);
  const std::size_t header_end = pristine.find('\n') + 1;

  Rng rng(0xBADC0DE);
  for (int drill = 0; drill < 50; ++drill) {
    std::string text = pristine;
    // A handful of bit flips anywhere in the record region.
    const int flips = 1 + static_cast<int>(rng.uniform_index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t at =
          header_end + static_cast<std::size_t>(rng.uniform_index(
                           text.size() - header_end));
      text[at] = static_cast<char>(
          text[at] ^ static_cast<char>(1 << rng.uniform_index(8)));
    }
    dump(path, text);
    const WalReplay r = replay_wal(path);
    ASSERT_TRUE(r.exists);
    // Every surfaced record is one we wrote, in order, from the start:
    // the CRC tear ends the trustworthy prefix, it never invents data.
    EXPECT_TRUE(is_prefix(r.records, wrote)) << "drill " << drill;
    EXPECT_EQ(r.records.size() == wrote.size(), r.torn_lines == 0u);
  }
}

TEST(WalTorture, HeaderBitFlipRefusesLoudly) {
  const std::string path = temp_wal("wal_torture_header.wal");
  write_journal(path, 3);
  std::string text = slurp(path);
  text[2] ^= 0x01;  // inside the fingerprint hex
  dump(path, text);
  // A journal whose identity cannot be verified is not a journal: loud
  // refusal, not a silent fresh start that would re-poll and double-log.
  EXPECT_THROW(replay_wal(path), std::runtime_error);
}

TEST(WalTorture, DuplicatedChunkIsVisibleAndDedupByKeyIsExact) {
  const std::string path = temp_wal("wal_torture_dup.wal");
  // Real meter records, so the consumer-level dedup can be exercised.
  std::vector<MeterRecord> recs(6);
  {
    WalWriter w(path, 0xF00DULL);
    for (std::size_t i = 0; i < recs.size(); ++i) {
      recs[i].reading.node = 100 + i;
      recs[i].reading.mean_w = 400.0 + 0.125 * static_cast<double>(i);
      recs[i].reading.energy_j = 7.0e5 + static_cast<double>(i);
      w.append(encode_meter_record(recs[i]));
    }
  }
  // A buffered retry re-appends the last three complete lines.
  std::string text = slurp(path);
  std::size_t tail_start = text.size();
  for (int lines = 0; lines < 3; ++lines) {
    tail_start = text.rfind('\n', tail_start - 2) + 1;
  }
  dump(path, text + text.substr(tail_start));

  const WalReplay r = replay_wal(path);
  ASSERT_TRUE(r.exists);
  // The WAL layer reports what is on disk — 9 valid lines, no tears.
  EXPECT_EQ(r.records.size(), 9u);
  EXPECT_EQ(r.torn_lines, 0u);
  // Keyed dedup (what the collector's resume does) must reconstruct each
  // meter exactly once, bit-identical to what was first journaled.
  std::vector<bool> seen(recs.size(), false);
  std::size_t kept = 0;
  for (const std::string& payload : r.records) {
    const MeterRecord rec = decode_meter_record(payload);
    const std::size_t i = rec.reading.node - 100;
    ASSERT_LT(i, recs.size());
    if (seen[i]) {
      // The duplicate must be byte-identical, so keep-first cannot lose
      // information, and keep-any cannot double-count.
      EXPECT_EQ(rec.reading.mean_w, recs[i].reading.mean_w);
      EXPECT_EQ(rec.reading.energy_j, recs[i].reading.energy_j);
      continue;
    }
    seen[i] = true;
    ++kept;
    EXPECT_EQ(rec.reading.mean_w, recs[i].reading.mean_w);
    EXPECT_EQ(rec.reading.energy_j, recs[i].reading.energy_j);
  }
  EXPECT_EQ(kept, recs.size());
}

TEST(MeterRecordCodec, RoundTripsBitExactly) {
  MeterRecord rec;
  rec.reading.node = 137;
  rec.reading.lost = false;
  rec.reading.mean_w = 431.72839456120031;  // full-precision doubles
  rec.reading.energy_j = 777013.00000000012;
  rec.abandoned = true;
  rec.samples_expected = 1800;
  rec.samples_lost = 63;
  rec.polls = 40;
  rec.timeouts = 9;
  rec.retries = 7;
  rec.duplicates = 2;
  rec.breaker_trips = 1;
  rec.busy_s = 12.000000000000302;

  const MeterRecord back = decode_meter_record(encode_meter_record(rec));
  EXPECT_EQ(back.reading.node, rec.reading.node);
  EXPECT_EQ(back.reading.lost, rec.reading.lost);
  EXPECT_EQ(back.reading.mean_w, rec.reading.mean_w);    // bit-exact
  EXPECT_EQ(back.reading.energy_j, rec.reading.energy_j);
  EXPECT_EQ(back.abandoned, rec.abandoned);
  EXPECT_EQ(back.samples_expected, rec.samples_expected);
  EXPECT_EQ(back.samples_lost, rec.samples_lost);
  EXPECT_EQ(back.polls, rec.polls);
  EXPECT_EQ(back.timeouts, rec.timeouts);
  EXPECT_EQ(back.retries, rec.retries);
  EXPECT_EQ(back.duplicates, rec.duplicates);
  EXPECT_EQ(back.breaker_trips, rec.breaker_trips);
  EXPECT_EQ(back.busy_s, rec.busy_s);
}

TEST(MeterRecordCodec, RejectsMalformedPayloads) {
  EXPECT_THROW(decode_meter_record(""), std::runtime_error);
  EXPECT_THROW(decode_meter_record("1 2 3"), std::runtime_error);
  EXPECT_THROW(decode_meter_record("not a record at all"),
               std::runtime_error);
  // A well-formed record with trailing garbage is a different format.
  MeterRecord rec;
  EXPECT_THROW(decode_meter_record(encode_meter_record(rec) + " extra"),
               std::runtime_error);
  // Flags must be exactly 0 or 1.
  EXPECT_THROW(decode_meter_record("5 2 0 1 1 0 0 0 0 0 0 0 0"),
               std::runtime_error);
}

TEST(MeterRecordCodec, SurvivesTheWalRoundTrip) {
  const std::string path = temp_wal("wal_meter_record.wal");
  MeterRecord rec;
  rec.reading.node = 9;
  rec.reading.mean_w = 1.0 / 3.0;
  rec.reading.energy_j = std::sqrt(2.0) * 1e6;
  rec.busy_s = 0.1 + 0.2;  // famously unrepresentable
  {
    WalWriter w(path, 5);
    w.append(encode_meter_record(rec));
  }
  const WalReplay r = replay_wal(path);
  ASSERT_EQ(r.records.size(), 1u);
  const MeterRecord back = decode_meter_record(r.records[0]);
  EXPECT_EQ(back.reading.mean_w, rec.reading.mean_w);
  EXPECT_EQ(back.reading.energy_j, rec.reading.energy_j);
  EXPECT_EQ(back.busy_s, rec.busy_s);
}

}  // namespace
}  // namespace pv
