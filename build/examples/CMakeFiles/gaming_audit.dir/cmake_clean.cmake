file(REMOVE_RECURSE
  "CMakeFiles/gaming_audit.dir/gaming_audit.cpp.o"
  "CMakeFiles/gaming_audit.dir/gaming_audit.cpp.o.d"
  "gaming_audit"
  "gaming_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaming_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
