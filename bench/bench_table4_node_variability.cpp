// Table 4 — N, mu-hat, sigma-hat, sigma/mu for the six studied fleets,
// paper-exact (conditioned generator) and as-generated (statistical).

#include <iostream>

#include "bench_common.hpp"
#include "sim/catalog.hpp"
#include "stats/descriptive.hpp"
#include "util/table.hpp"

int main() {
  using namespace pv;
  bench::banner("Table 4", "per-node power statistics across systems");

  TextTable t({"system", "Nodes/Blades (N)", "Sample mean", "Std. deviation",
               "sigma/mu", "paper sigma/mu"});
  for (const auto& sys : catalog::table4_systems()) {
    const auto powers = catalog::make_fleet_powers(sys, 2015, /*exact=*/true);
    const Summary s = summarize(powers);
    t.add_row({sys.name, fmt_group(static_cast<long long>(powers.size())),
               fmt_fixed(s.mean, 2), fmt_fixed(s.stddev, 2),
               fmt_percent(s.cv, 2), fmt_percent(sys.cv(), 2)});
  }
  std::cout << t.render();

  std::cout << "\nUnconditioned generator (moments in expectation only, "
               "channel decomposition visible):\n";
  TextTable u({"system", "sigma/mu (generated)", "silicon", "fan", "room",
               "other"});
  for (const auto& sys : catalog::table4_systems()) {
    const auto powers = catalog::make_fleet_powers(sys, 99, /*exact=*/false);
    const Summary s = summarize(powers);
    u.add_row({sys.name, fmt_percent(s.cv, 2),
               fmt_percent(sys.variability.cv_silicon, 2),
               fmt_percent(sys.variability.cv_fan, 2),
               fmt_percent(sys.variability.cv_room, 2),
               fmt_percent(sys.variability.cv_other, 2)});
  }
  std::cout << u.render();
  std::cout << "\nAll sigma/mu within the paper's 1.5%-3% band.\n";
  return 0;
}
