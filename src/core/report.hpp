#pragma once
// Accuracy-assessment reports — the paper's §6 asks every submission to
// state how accurate its measurement is.  This module builds a campaign
// result into a structured assessment Document (core/doc) and renders it
// for two audiences: render_text for the reviewer (byte-identical to the
// historical free-text report; golden-test enforced) and render_json for
// machine consumers (vetting tools, bench harnesses, dashboards).

#include <string>

#include "core/campaign.hpp"
#include "core/doc.hpp"
#include "core/plan.hpp"

namespace pv {

/// Rendering knobs for the assessment document.
struct ReportOptions {
  /// Append the per-stage StageTrace block (campaign --trace-stages).
  /// Counters and virtual time are deterministic and appear in the JSON;
  /// wall-clock milliseconds appear in the text rendering only.
  bool trace_stages = false;
};

/// Builds the full assessment document: spec, plan shape, extrapolation,
/// Equation 1 confidence interval, achieved relative accuracy, the true
/// error (simulation only), and — when present — the data-quality,
/// collection-path, integrity and stage-trace blocks.
[[nodiscard]] Document assessment_document(const MeasurementPlan& plan,
                                           const CampaignResult& result,
                                           const ReportOptions& opts = {});

/// Renders the full assessment as text: render_text(assessment_document).
[[nodiscard]] std::string accuracy_report(const MeasurementPlan& plan,
                                          const CampaignResult& result);

/// Renders validator findings as a bulleted block ("(compliant)" if none).
[[nodiscard]] std::string render_issues(
    const std::vector<ValidationIssue>& issues);

/// Renders the data-quality block of a degraded campaign: meters lost,
/// sample coverage, repairs, and whether the Eq. 1 CI was widened.
/// Empty string when neither fault injection nor the async collection
/// path was used.
[[nodiscard]] std::string data_quality_report(const DataQuality& quality);

/// Renders the collection-path block: polls, retries, timeouts, breaker
/// trips, and modeled poll wall clock.  Empty string for the synchronous
/// in-memory path.
[[nodiscard]] std::string collection_quality_report(
    const CollectionQuality& collection);

/// Renders the integrity block of a reconciled campaign: meters checked /
/// quarantined / corrected, per-meter verdicts (sorted by meter id),
/// hierarchy residuals before and after reconciliation, and detection
/// latency.  Empty string when reconciliation never ran.
[[nodiscard]] std::string integrity_quality_report(const DataQuality& quality);

}  // namespace pv
