#include "util/csv.hpp"

#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/expects.hpp"

namespace pv {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  PV_EXPECTS(!header_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  PV_EXPECTS(cells.size() == header_.size(),
             "csv row width must match header");
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(std::span<const double> values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    // max_digits10 significant digits round-trip every finite double
    // bit-exactly through text, so import(export(trace)) == trace.
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    cells.emplace_back(buf);
  }
  add_row(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  const auto emit_row = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << csv_escape(cells[i]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open csv output file: " + path);
  f << str();
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace pv
