// Unit tests for the structured assessment documents: the deterministic
// Json value, Document assembly, and the JSON rendering of a full
// campaign assessment (required keys, rerun determinism).

#include "core/doc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>

#include "core/report.hpp"
#include "core/scenario.hpp"

namespace pv {
namespace {

TEST(Json, ScalarsDump) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7LL).dump(), "-7");
  EXPECT_EQ(Json(18446744073709551615ULL).dump(), "18446744073709551615");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json obj = Json::object();
  obj["zebra"] = 1;
  obj["alpha"] = 2;
  obj["mid"] = 3;
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, ObjectBracketUpdatesInPlace) {
  Json obj = Json::object();
  obj["a"] = 1;
  obj["a"] = 2;  // overwrite, not duplicate
  EXPECT_EQ(obj.dump(), "{\"a\":2}");
  EXPECT_EQ(obj.size(), 1u);
}

TEST(Json, ArrayPushBack) {
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json());
  EXPECT_EQ(arr.dump(), "[1,\"two\",null]");
  EXPECT_EQ(arr.size(), 3u);
}

TEST(Json, DoublesRoundTripLosslessly) {
  const double v = 430.94133024955102;
  const std::string repr = Json(v).dump();
  EXPECT_EQ(std::stod(repr), v);  // max_digits10 precision
  EXPECT_EQ(Json(0.5).dump(), "0.5");
}

TEST(Json, NonFiniteDoublesAreNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Json(-std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json::quote("a\"b\\c"), "\"a\\\"b\\\\c\"");
  EXPECT_EQ(Json::quote("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
  EXPECT_EQ(Json::quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(Document, TextConcatenatesHeadingsAndEntries) {
  Document doc;
  DocBlock& b = doc.block("demo", "== demo ==\n");
  b.text("plain line\n");
  b.field("x", 1, "x: 1\n");
  b.field("hidden", 2);  // JSON-only, contributes no text
  EXPECT_EQ(render_text(doc), "== demo ==\nplain line\nx: 1\n");
}

TEST(Document, JsonOmitsTextOnlyEntriesAndEmptyBlocks) {
  Document doc;
  DocBlock& b = doc.block("demo");
  b.text("text only\n");
  b.field("x", 1);
  doc.block("empty", "no keyed entries\n").text("invisible to JSON\n");
  EXPECT_EQ(render_json(doc),
            "{\"schema\":\"powervar-assessment-v1\",\"demo\":{\"x\":1}}\n");
}

// A full campaign assessment rendered as JSON: the machine-consumer
// contract is (a) the required keys are present and (b) reruns of the
// same campaign produce the same bytes.
TEST(Document, CampaignJsonSmokeAndDeterminism) {
  ScenarioSpec spec;
  spec.name = "doc-rig";
  spec.nodes = 64;
  spec.fleet_seed = 99;
  const Scenario rig = build_scenario(spec);
  const MeasurementPlan plan =
      rig.plan(MethodologySpec::get(Level::kL2, Revision::kV2015), 1);
  CampaignConfig cfg;
  cfg.meter_interval_override = Seconds{10.0};

  ReportOptions opts;
  opts.trace_stages = true;
  const auto render = [&] {
    const auto result = run_campaign(*rig.cluster, *rig.electrical, plan, cfg);
    return render_json(assessment_document(plan, result, opts));
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);

  for (const char* key :
       {"\"schema\":\"powervar-assessment-v1\"", "\"assessment\":",
        "\"system\":\"doc-rig\"", "\"submitted_power_w\":",
        "\"window_energy_j\":", "\"node_mean\":", "\"node_mean_ci\":",
        "\"relative_halfwidth\":", "\"true_power_w\":", "\"relative_error\":",
        "\"trace\":", "\"stages\":", "\"stage\":\"provision\"",
        "\"stage\":\"meter\"", "\"stage\":\"aggregate\"",
        "\"stage\":\"assess\""}) {
    EXPECT_NE(first.find(key), std::string::npos) << "missing " << key;
  }
  // Host wall clock must not leak into the JSON rendering.
  EXPECT_EQ(first.find("wall_ms"), std::string::npos);
  EXPECT_EQ(first.back(), '\n');
}

}  // namespace
}  // namespace pv
