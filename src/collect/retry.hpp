#pragma once
// Retry policy and per-meter circuit breaker for the collection path.
//
// A flaky meter must be retried (transient losses are common and cheap to
// recover); a dead meter must *stop* being retried (every retry burns a
// full timeout of poll budget that healthy meters could have used).  The
// standard production answer is capped exponential backoff between
// attempts plus a circuit breaker per endpoint:
//
//   closed ──(N consecutive failures)──> open
//   open   ──(cooldown elapses)────────> half-open
//   half-open ──success──> closed        (cooldown resets)
//   half-open ──failure──> open          (cooldown escalates, capped)
//
// While open, requests are rejected instantly — no timeout is paid — so a
// meter that never answers costs O(failures-to-open + log(run length))
// timeouts instead of one per poll.  That bound is what keeps campaign
// wall clock within a small factor of the fault-free run even when a
// fifth of the fleet is unreachable (the bench_collection_resilience
// contract).
//
// Backoff jitter is drawn from a seeded Rng, not wall clock, so identical
// campaigns schedule identical retries.

#include <cstddef>

#include "stats/rng.hpp"

namespace pv {

/// Capped exponential backoff with deterministic jitter.
struct BackoffPolicy {
  double initial_s = 0.25;   ///< delay before the first retry
  double multiplier = 2.0;   ///< growth per further retry
  double max_s = 4.0;        ///< cap on any single delay
  double jitter_frac = 0.1;  ///< +/- fraction drawn from the seeded rng

  /// Delay inserted before retry number `retry` (0-based).
  [[nodiscard]] double delay_s(std::size_t retry, Rng& rng) const;
};

/// Circuit-breaker tuning.
struct BreakerConfig {
  bool enabled = true;
  std::size_t open_after = 3;        ///< consecutive failures to trip
  double cooldown_s = 60.0;          ///< first open period
  double cooldown_multiplier = 2.0;  ///< escalation on a failed probe
  double cooldown_max_s = 900.0;     ///< escalation ceiling
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] const char* to_string(BreakerState s);

/// Per-meter breaker over a virtual clock (seconds since collection
/// start).  Not thread-safe: each meter's poller owns its breaker.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config);

  /// Whether a request may be issued at virtual time `now_s`.  An open
  /// breaker whose cooldown has elapsed transitions to half-open and
  /// admits the probe.
  [[nodiscard]] bool allow(double now_s);

  /// Records a successful exchange: closes a half-open breaker and resets
  /// the failure count and cooldown escalation.
  void on_success();

  /// Records a failed exchange ending at virtual time `now_s`: trips a
  /// closed breaker after `open_after` consecutive failures; re-opens a
  /// half-open breaker with an escalated cooldown.
  void on_failure(double now_s);

  [[nodiscard]] BreakerState state() const { return state_; }
  /// Transitions into the open state so far.
  [[nodiscard]] std::size_t trips() const { return trips_; }
  [[nodiscard]] double open_until_s() const { return open_until_s_; }

 private:
  void trip(double now_s);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  double open_until_s_ = 0.0;
  double next_cooldown_s_ = 0.0;
  std::size_t trips_ = 0;
};

}  // namespace pv
