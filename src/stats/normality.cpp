#include "stats/normality.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/special.hpp"
#include "util/expects.hpp"

namespace pv {

double chi_square_sf(double x, double k) {
  PV_EXPECTS(k > 0.0, "degrees of freedom must be positive");
  PV_EXPECTS(x >= 0.0, "chi-square statistic must be non-negative");
  return incomplete_gamma_q(0.5 * k, 0.5 * x);
}

NormalityResult jarque_bera(std::span<const double> xs) {
  PV_EXPECTS(xs.size() >= 8, "Jarque-Bera needs n >= 8");
  const double n = static_cast<double>(xs.size());
  const double s = skewness(xs);
  const double k = excess_kurtosis(xs);
  NormalityResult r;
  r.statistic = n / 6.0 * (s * s + 0.25 * k * k);
  r.p_value = chi_square_sf(r.statistic, 2.0);
  return r;
}

NormalityResult anderson_darling(std::span<const double> xs) {
  PV_EXPECTS(xs.size() >= 8, "Anderson-Darling needs n >= 8");
  const Summary stats = summarize(xs);
  PV_EXPECTS(stats.stddev > 0.0, "constant sample has no distribution shape");

  std::vector<double> z(xs.begin(), xs.end());
  std::sort(z.begin(), z.end());
  const double n = static_cast<double>(z.size());

  double a2 = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    const double u = (z[i] - stats.mean) / stats.stddev;
    // Clamp the CDF away from {0, 1} so extreme outliers do not produce
    // log(0); the clamp value is beyond 8 sigma and does not affect the
    // verdict (the statistic is already enormous there).
    const double f = std::clamp(norm_cdf(u), 1e-15, 1.0 - 1e-15);
    const double fr = std::clamp(
        norm_cdf((z[z.size() - 1 - i] - stats.mean) / stats.stddev), 1e-15,
        1.0 - 1e-15);
    a2 += (2.0 * static_cast<double>(i) + 1.0) *
          (std::log(f) + std::log1p(-fr));
  }
  a2 = -n - a2 / n;

  // Stephens' finite-sample correction for estimated mean/variance.
  const double a2_star = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));

  // D'Agostino & Stephens (1986) case-3 p-value fit (valid to A* ~ 10;
  // beyond that the p-value is indistinguishable from zero).
  double p;
  if (a2_star >= 10.0) {
    p = 0.0;
  } else if (a2_star < 0.2) {
    p = 1.0 - std::exp(-13.436 + 101.14 * a2_star - 223.73 * a2_star * a2_star);
  } else if (a2_star < 0.34) {
    p = 1.0 - std::exp(-8.318 + 42.796 * a2_star - 59.938 * a2_star * a2_star);
  } else if (a2_star < 0.6) {
    p = std::exp(0.9177 - 4.279 * a2_star - 1.38 * a2_star * a2_star);
  } else {
    p = std::exp(1.2937 - 5.709 * a2_star + 0.0186 * a2_star * a2_star);
  }
  NormalityResult r;
  r.statistic = a2_star;
  r.p_value = std::clamp(p, 0.0, 1.0);
  return r;
}

}  // namespace pv
