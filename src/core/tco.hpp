#pragma once
// Total-cost-of-ownership extrapolation (§1).
//
// The paper motivates measurement accuracy with procurement: "the observed
// variations of 20% in power consumption lead directly to a possible 20%
// increase in electricity costs".  This module turns a power measurement
// (with its accuracy assessment) into an energy-cost projection with the
// uncertainty propagated, so a procurement team can see what a percentage
// point of measurement accuracy is worth in currency.

#include "stats/bootstrap.hpp"  // Interval
#include "util/units.hpp"

namespace pv {

/// Facility/economics parameters of a TCO projection.
struct TcoParams {
  double electricity_cost_per_kwh = 0.15;  ///< currency units per kWh
  double pue = 1.4;             ///< facility power usage effectiveness
  double duty_cycle = 0.85;     ///< long-run average load relative to measured
  double years = 5.0;           ///< operating lifetime
};

/// An energy-cost projection with propagated measurement uncertainty.
struct TcoEstimate {
  double annual_energy_cost = 0.0;
  double lifetime_energy_cost = 0.0;
  /// Lifetime cost interval induced by the measurement's relative accuracy
  /// (a relative +/- lambda on power maps to +/- lambda on cost).
  Interval lifetime_cost_ci;
  /// Currency value of one percentage point of measurement accuracy.
  double cost_per_accuracy_point = 0.0;
};

/// Projects energy cost from a measured system power and the measurement's
/// achieved relative accuracy (CI halfwidth / mean; 0 = exact).
[[nodiscard]] TcoEstimate project_energy_cost(Watts measured_power,
                                              double relative_accuracy,
                                              const TcoParams& params);

}  // namespace pv
