#pragma once
// Minimal CSV emission for bench outputs that downstream plotting tools
// (gnuplot, pandas) can consume directly.

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace pv {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// separators, quotes or newlines; doubles printed with %.17g).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats each double with %.17g (lossless round-trip).
  void add_row(std::span<const double> values);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Serializes header + rows.
  [[nodiscard]] std::string str() const;

  /// Writes to a file; throws std::runtime_error when the file can't be
  /// opened.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a single CSV field per RFC 4180.
[[nodiscard]] std::string csv_escape(const std::string& field);

}  // namespace pv
